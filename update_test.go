package elsa

import (
	"testing"
	"time"
)

func TestUpdaterFacade(t *testing.T) {
	log := GenerateBGL(70, apiStart, 8*24*time.Hour)
	cut := apiStart.Add(4 * 24 * time.Hour)
	train, test, _ := log.Split(cut)
	model := Train(train, apiStart, cut, DefaultTrainConfig())
	before := len(model.Chains())

	cfg := DefaultUpdateConfig()
	cfg.Window = 4 * 24 * time.Hour
	cfg.Interval = 24 * time.Hour
	u := model.NewUpdater(cfg)

	for day := 0; day < 4; day++ {
		dayStart := cut.Add(time.Duration(day) * 24 * time.Hour)
		dayEnd := dayStart.Add(24 * time.Hour)
		var window []Record
		for _, r := range test {
			if !r.Time.Before(dayStart) && r.Time.Before(dayEnd) {
				window = append(window, r)
			}
		}
		u.Ingest(window, dayEnd)
	}
	st := u.Stats()
	if st.Rounds == 0 {
		t.Fatal("no retraining rounds")
	}
	if st.Renewed == 0 {
		t.Error("stable system renewed nothing")
	}
	live := u.Model()
	if len(live.Chains()) == 0 {
		t.Error("live model lost all chains")
	}
	_ = before
	// The live model must still predict.
	result := live.Predict(test, cut, log.End)
	if len(result.Predictions) == 0 {
		t.Error("updated model emits no predictions")
	}
}

func TestUpdaterStampsNewTemplates(t *testing.T) {
	log := GenerateBGL(71, apiStart, 3*24*time.Hour)
	model := Train(log.Records, apiStart, log.End, DefaultTrainConfig())
	u := model.NewUpdater(DefaultUpdateConfig())
	before := model.EventCount()
	// A message shape never seen in training.
	novel := []Record{{
		Time:     log.End.Add(time.Minute),
		Severity: Severe,
		Message:  "entirely new subsystem reported fault code 77",
		EventID:  -1,
	}}
	u.Ingest(novel, log.End.Add(2*time.Minute))
	if model.EventCount() != before+1 {
		t.Errorf("event count %d, want %d (online template learning)", model.EventCount(), before+1)
	}
}
