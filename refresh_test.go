package elsa

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestMonitorRefreshRetrainsFromStream exercises incremental retraining
// at the public API: a monitor fed live records accumulates statistics
// as a side effect, and Refresh rebuilds the chain set from those
// counters without replaying the stream.
func TestMonitorRefreshRetrainsFromStream(t *testing.T) {
	log := GenerateBGL(90, apiStart, 4*24*time.Hour)
	cut := apiStart.Add(2 * 24 * time.Hour)
	train, test, _ := log.Split(cut)
	model := Train(train, apiStart, cut, DefaultTrainConfig())
	mon := model.NewMonitor(cut)

	// Before any tick has closed there is nothing to retrain from.
	if st := mon.Refresh(); st != (RefreshStats{}) {
		t.Fatalf("refresh before any tick = %+v, want zero", st)
	}

	var preds []Prediction
	half := len(test) / 2
	for _, r := range test[:half] {
		preds = append(preds, feedOK(t, mon, r)...)
	}
	st := mon.Refresh()
	if st.Dirty == 0 || st.Scored == 0 {
		t.Fatalf("refresh saw no dirty pairs: %+v", st)
	}
	if st.Seeds == 0 || st.Chains == 0 {
		t.Fatalf("refresh mined nothing from a 2-day BG/L stream: %+v", st)
	}
	if !st.Remined {
		t.Errorf("first refresh must run the full miner: %+v", st)
	}
	if st.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", st.Duration)
	}
	if st.Pairs.Scored+st.Pairs.Pruned() != st.Pairs.Candidates {
		t.Errorf("pair telemetry does not partition: %+v", st.Pairs)
	}
	if got := len(model.Chains()); got != st.Chains {
		t.Errorf("model holds %d chains, refresh reported %d", got, st.Chains)
	}

	// The refreshed chain set is live: the monitor keeps predicting.
	for _, r := range test[half:] {
		preds = append(preds, feedOK(t, mon, r)...)
	}
	preds = append(preds, mon.AdvanceTo(log.End)...)
	mon.Close()
	if len(preds) == 0 {
		t.Fatal("monitor emitted no predictions after refresh")
	}
}

// TestResumedMonitorRefreshMatchesUninterrupted is the crash-resume
// acceptance test for incremental retraining. The model file is saved at
// training time — before any refresh — so the refreshed chains, the
// merged severity view and the refresher's seed state can only reach the
// second incarnation through the monitor snapshot. The resumed monitor
// must emit the uninterrupted monitor's predictions exactly, and its
// next Refresh must behave identically (fast path and all).
func TestResumedMonitorRefreshMatchesUninterrupted(t *testing.T) {
	log := GenerateBGL(91, apiStart, 4*24*time.Hour)
	cut := apiStart.Add(2 * 24 * time.Hour)
	train, test, _ := log.Split(cut)
	half := len(test) / 2

	// Uninterrupted reference: refresh mid-stream, finish, refresh again.
	ref := Train(train, apiStart, cut, DefaultTrainConfig()).NewMonitor(cut)
	var want []Prediction
	for _, r := range test[:half] {
		want = append(want, feedOK(t, ref, r)...)
	}
	wantMid := ref.Refresh()
	for _, r := range test[half:] {
		want = append(want, feedOK(t, ref, r)...)
	}
	want = append(want, ref.AdvanceTo(log.End)...)
	wantEnd := ref.Refresh()
	wantChains := ref.model.Chains()
	ref.Close()
	if wantMid.Chains == 0 || len(want) == 0 {
		t.Fatal("fixture too quiet: reference run refreshed or predicted nothing")
	}

	// First incarnation. The model blob is written before the monitor
	// runs, as a daemon would: train once, save, then watch.
	model := Train(train, apiStart, cut, DefaultTrainConfig())
	var modelBlob strings.Builder
	if err := model.Save(&modelBlob); err != nil {
		t.Fatalf("Save: %v", err)
	}
	mon := model.NewMonitor(cut)
	var got []Prediction
	for _, r := range test[:half] {
		got = append(got, feedOK(t, mon, r)...)
	}
	gotMid := mon.Refresh()
	wantMid.Duration, gotMid.Duration = 0, 0
	if gotMid != wantMid {
		t.Fatalf("mid-stream refresh diverged:\ncrashed       %+v\nuninterrupted %+v", gotMid, wantMid)
	}
	var snapBlob strings.Builder
	if err := mon.Snapshot(&snapBlob); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// Second incarnation: stale model file + post-refresh snapshot.
	reloaded, err := LoadModel(strings.NewReader(modelBlob.String()))
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	resumed, err := reloaded.ResumeMonitor(strings.NewReader(snapBlob.String()))
	if err != nil {
		t.Fatalf("ResumeMonitor: %v", err)
	}
	if !reflect.DeepEqual(reloaded.Chains(), model.Chains()) {
		t.Fatal("resume did not install the refreshed chains from the snapshot")
	}
	for _, r := range test[half:] {
		got = append(got, feedOK(t, resumed, r)...)
	}
	got = append(got, resumed.AdvanceTo(log.End)...)
	gotEnd := resumed.Refresh()
	resumed.Close()

	if len(got) != len(want) {
		t.Fatalf("resumed stream emitted %d predictions, uninterrupted %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("prediction %d differs:\nresumed       %+v\nuninterrupted %+v", i, got[i], want[i])
		}
	}
	wantEnd.Duration, gotEnd.Duration = 0, 0
	if gotEnd != wantEnd {
		t.Fatalf("post-resume refresh diverged:\nresumed       %+v\nuninterrupted %+v", gotEnd, wantEnd)
	}
	if !reflect.DeepEqual(reloaded.Chains(), wantChains) {
		t.Fatal("post-resume refresh produced different chains than the uninterrupted run")
	}
}
