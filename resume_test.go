package elsa

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestResumedMonitorMatchesUninterrupted is the crash-resume acceptance
// test at the public API: run a monitor over half the stream, snapshot
// it (mid-stream, wherever the split lands), save and reload the model,
// resume a fresh monitor from the snapshot, feed the second half — and
// the combined prediction stream must match an uninterrupted monitor's
// exactly: no prediction repeated, none missing, every field identical.
func TestResumedMonitorMatchesUninterrupted(t *testing.T) {
	log := GenerateBGL(85, apiStart, 4*24*time.Hour)
	cut := apiStart.Add(2 * 24 * time.Hour)
	train, test, _ := log.Split(cut)

	// Uninterrupted reference (fresh identical model: monitors mutate
	// organizer state by learning online).
	ref := Train(train, apiStart, cut, DefaultTrainConfig()).NewMonitor(cut)
	var want []Prediction
	for _, r := range test {
		want = append(want, feedOK(t, ref, r)...)
	}
	want = append(want, ref.AdvanceTo(log.End)...)
	ref.Close()
	if len(want) == 0 {
		t.Fatal("reference monitor emitted no predictions; the fixture is too quiet to test resume")
	}

	// First incarnation: half the stream, then the crash artefacts — a
	// saved model and a monitor snapshot.
	model := Train(train, apiStart, cut, DefaultTrainConfig())
	mon := model.NewMonitor(cut)
	var got []Prediction
	half := len(test) / 2
	for _, r := range test[:half] {
		got = append(got, feedOK(t, mon, r)...)
	}
	var modelBlob, snapBlob strings.Builder
	if err := model.Save(&modelBlob); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := mon.Snapshot(&snapBlob); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// Second incarnation: a new process — model reloaded from disk,
	// monitor resumed from the snapshot, rest of the stream fed.
	reloaded, err := LoadModel(strings.NewReader(modelBlob.String()))
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	resumed, err := reloaded.ResumeMonitor(strings.NewReader(snapBlob.String()))
	if err != nil {
		t.Fatalf("ResumeMonitor: %v", err)
	}
	for _, r := range test[half:] {
		got = append(got, feedOK(t, resumed, r)...)
	}
	got = append(got, resumed.AdvanceTo(log.End)...)
	res := resumed.Close()

	if len(got) != len(want) {
		t.Fatalf("resumed stream emitted %d predictions, uninterrupted %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("prediction %d differs:\nresumed       %+v\nuninterrupted %+v", i, got[i], want[i])
		}
	}
	// The accumulated result carries the full history across the crash.
	if len(res.Predictions) != len(want) {
		t.Errorf("resumed result holds %d predictions, want %d", len(res.Predictions), len(want))
	}
}

func TestSnapshotOfClosedMonitorFails(t *testing.T) {
	model, _, cut := trainSmallModel(t, 86)
	mon := model.NewMonitor(cut)
	mon.Close()
	var sb strings.Builder
	if err := mon.Snapshot(&sb); err == nil {
		t.Fatal("Snapshot of a closed monitor did not fail")
	}
}

func TestResumeMonitorRejectsBadSnapshots(t *testing.T) {
	model, _, cut := trainSmallModel(t, 87)

	if _, err := model.ResumeMonitor(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}

	var vErr *ErrVersionMismatch
	_, err := model.ResumeMonitor(strings.NewReader(`{"version": 99}`))
	if !errors.As(err, &vErr) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	if vErr.Got != 99 || vErr.Want != monitorFormatVersion || vErr.Kind != "monitor snapshot" {
		t.Errorf("ErrVersionMismatch = %+v, want Got 99 / Want %d / Kind %q", vErr, monitorFormatVersion, "monitor snapshot")
	}

	if _, err := model.ResumeMonitor(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Error("snapshot without session state accepted")
	}
	if _, err := model.ResumeMonitor(strings.NewReader(`{"version": 1, "bogus": true}`)); err == nil {
		t.Error("snapshot with unknown fields accepted")
	}

	// A snapshot referencing state the model does not have (here: a
	// detector for an event the model never mined) must be refused, not
	// resumed into silent corruption.
	mon := model.NewMonitor(cut)
	var snap strings.Builder
	if err := mon.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(snap.String(), `"detectors": {`, `"detectors": {"999999": {"raw": [1]},`, 1)
	if doctored == snap.String() {
		t.Fatal("could not doctor the snapshot; envelope layout changed?")
	}
	if _, err := model.ResumeMonitor(strings.NewReader(doctored)); err == nil {
		t.Error("snapshot referencing an unknown detector accepted")
	}
}

func TestMonitorCloseIdempotent(t *testing.T) {
	model, log, cut := trainSmallModel(t, 89)
	_, test, _ := log.Split(cut)
	if len(test) > 2000 {
		test = test[:2000]
	}
	mon := model.NewMonitor(cut)
	for _, r := range test {
		mon.Feed(r)
	}
	res1 := mon.Close()
	res2 := mon.Close()
	if res1 != res2 {
		t.Fatal("second Close returned a different result pointer")
	}
	preds, err := mon.Feed(Record{Time: log.End, EventID: 0})
	if err != ErrClosed {
		t.Errorf("Feed after Close: err = %v, want ErrClosed", err)
	}
	if preds != nil {
		t.Error("closed monitor accepted a record")
	}
	if preds := mon.AdvanceTo(log.End.Add(time.Hour)); preds != nil {
		t.Error("closed monitor advanced")
	}
}
