package elsa

import (
	"testing"
	"time"
)

func TestAbsenceFacade(t *testing.T) {
	log := GenerateBGL(90, apiStart, 4*24*time.Hour)
	cut := apiStart.Add(2 * 24 * time.Hour)
	train, test, _ := log.Split(cut)
	model := Train(train, apiStart, cut, DefaultTrainConfig())

	ev, ok := model.FindEvent("rack watchdog heartbeat ok slot 17")
	if !ok {
		t.Fatal("heartbeat template not found")
	}
	if _, ok := model.FindEvent("a message shape that was never ever logged anywhere"); ok {
		t.Error("bogus message matched a template")
	}

	mon := NewAbsenceMonitor(HeartbeatWatch{Event: ev, Period: 2 * time.Minute})
	// Stamp the test records through the model's organizer and replay.
	stamped := append([]Record(nil), test...)
	for i := range stamped {
		if stamped[i].EventID < 0 {
			id, _ := model.FindEvent(stamped[i].Message)
			stamped[i].EventID = id
		}
	}
	alerts := mon.Run(stamped, cut, log.End, 30*time.Second)
	// Whether alerts fire depends on whether a rack crash landed in the
	// window; either way the monitor must be tracking all 64 racks.
	if mon.Tracked() != 64 {
		t.Errorf("Tracked = %d, want 64 racks", mon.Tracked())
	}
	for _, a := range alerts {
		if a.Latency() <= 0 {
			t.Errorf("non-positive alert latency: %+v", a)
		}
	}
}
