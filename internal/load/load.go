// Package load is the replay-at-scale soak harness for the serving
// path: it generates months of synthetic BG/L-profile logs, streams them
// through a pluggable ingest backend into a live Monitor, and records
// what serving at scale actually costs — sustained throughput, per-feed
// latency percentiles, shed/quarantine rates and backend accounting —
// as one committed point of the perf record (BENCH_serve.json), in the
// same document format the training trajectory (BENCH_train.json) uses.
//
// The harness replays as fast as the monitor can swallow unless a target
// rate throttles it, so the headline records_per_sec number is the
// serving path's real capacity on the measuring machine, not a
// configured rate echoed back.
package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	elsa "github.com/elsa-hpc/elsa"
	"github.com/elsa-hpc/elsa/internal/bench"
	"github.com/elsa-hpc/elsa/internal/fleet"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/ingest"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Options configures a soak run.
type Options struct {
	// Backend selects the ingest path: "segdir" (default), "file" or
	// "socket".
	Backend string
	// Dir is the working directory for backend artifacts (segment
	// directory, log file, unix socket). Empty selects a throwaway
	// directory under os.TempDir, removed after the run.
	Dir string
	// Days is the serve-stream length in generated days (default 30 — a
	// month of BG/L traffic; the generator streams day by day, so the
	// whole stream is never in memory).
	Days int
	// EventTypes scales the generator profile as in the training
	// benchmarks; <= 0 keeps the base Blue Gene/L profile.
	EventTypes int
	// Rate throttles the replay to a target records/second; <= 0 replays
	// unthrottled (the capacity measurement).
	Rate float64
	// MaxDuration stops the replay after this much wall clock even if the
	// stream has records left (the CI smoke budget); <= 0 replays
	// everything.
	MaxDuration time.Duration
	// Shards, when positive, replays through a sharded fleet coordinator
	// (internal/fleet) partitioned at rack scope instead of a single
	// monitor — the serving capacity of the fleet path, with its routing,
	// journaling and supervision overhead on the clock.
	Shards int
	// Seed drives the generators.
	Seed int64
	// Progress, when non-nil, receives one line per replayed day.
	Progress io.Writer
}

// Report is the JSON document elsaload writes: the environment header
// BENCH_train.json carries, plus the serving measurements.
type Report struct {
	Profile    string              `json:"profile"`
	EventTypes int                 `json:"event_types"`
	Records    int                 `json:"records"`
	Backend    string              `json:"backend"`
	Days       int                 `json:"days"`
	Shards     int                 `json:"shards,omitempty"`
	GoVersion  string              `json:"go_version"`
	GOOS       string              `json:"goos"`
	GOARCH     string              `json:"goarch"`
	NumCPU     int                 `json:"num_cpu"`
	Benchmarks []bench.Measurement `json:"benchmarks"`
}

// latencyHist is a power-of-two-bucketed latency histogram: enough
// resolution for p50/p99 over millions of feeds without keeping a
// sample per record.
type latencyHist struct {
	buckets [40]int64 // bucket i counts durations in [2^i, 2^(i+1)) ns
	total   int64
}

func (h *latencyHist) add(d time.Duration) {
	n := int64(d)
	if n < 1 {
		n = 1
	}
	i := 0
	for n > 1 && i < len(h.buckets)-1 {
		n >>= 1
		i++
	}
	h.buckets[i]++
	h.total++
}

// quantile returns the q-quantile as the geometric midpoint of the
// bucket holding it.
func (h *latencyHist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			lo := int64(1) << uint(i)
			return time.Duration(lo + lo/2)
		}
	}
	return 0
}

// Run executes one soak: train on day zero, stream Days more days
// through the chosen backend into a live monitor, measure.
func Run(opts Options) (*Report, error) {
	if opts.Backend == "" {
		opts.Backend = "segdir"
	}
	if opts.Days <= 0 {
		opts.Days = 30
	}
	dir := opts.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "elsaload")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	profile := gen.BlueGeneL()
	if opts.EventTypes > 0 {
		profile = bench.ScaledBGL(opts.EventTypes)
	}
	start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

	// Day zero trains the model the live monitor serves with.
	trainRes := gen.New(profile, opts.Seed).Generate(start, 24*time.Hour)
	model := elsa.Train(trainRes.Records, trainRes.Start, trainRes.End, elsa.DefaultTrainConfig())

	rep := &Report{
		Profile:    profile.Name,
		EventTypes: model.EventCount(),
		Backend:    opts.Backend,
		Days:       opts.Days,
		Shards:     opts.Shards,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
	}

	serveStart := trainRes.End
	b, appendMeas, err := stageBackend(dir, profile, opts, serveStart)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	if appendMeas != nil {
		rep.Benchmarks = append(rep.Benchmarks, *appendMeas)
	}

	res, err := replay(b, model, opts)
	if err != nil {
		return nil, err
	}
	rep.Records = res.fed
	rep.Benchmarks = append(rep.Benchmarks, res.measurements(b.Stats())...)
	return rep, nil
}

// stageBackend materialises the serve stream behind the chosen backend.
// For file and segdir the stream is written out first (the segdir write
// is itself a measurement); for socket a producer goroutine frames the
// generated records live.
func stageBackend(dir string, profile gen.Profile, opts Options, start time.Time) (ingest.Backend, *bench.Measurement, error) {
	switch opts.Backend {
	case "segdir":
		segs := filepath.Join(dir, "segs")
		w, err := ingest.CreateSegmentDir(segs, ingest.SegmentOptions{})
		if err != nil {
			return nil, nil, err
		}
		t0 := time.Now()
		n, err := generate(profile, opts, start, func(rec logs.Record) error { return w.Append(rec) })
		if err != nil {
			w.Close()
			return nil, nil, err
		}
		if err := w.Close(); err != nil {
			return nil, nil, err
		}
		wall := time.Since(t0)
		meas := &bench.Measurement{
			Name:    "serve/segdir_append",
			N:       n,
			NsPerOp: float64(wall.Nanoseconds()) / float64(n),
			Extra: map[string]float64{
				"records_per_sec": float64(n) / wall.Seconds(),
			},
		}
		b, err := ingest.OpenSegDir(segs, ingest.SegDirOptions{})
		return b, meas, err
	case "file":
		path := filepath.Join(dir, "stream.log")
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		bw := logs.NewWriter(f)
		if _, err := generate(profile, opts, start, bw.Write); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Close(); err != nil {
			return nil, nil, err
		}
		b, err := ingest.OpenFile(path)
		return b, nil, err
	case "socket":
		sock := filepath.Join(dir, "elsa.sock")
		b, err := ingest.ListenSocket("unix", sock, 4096)
		if err != nil {
			return nil, nil, err
		}
		go func() {
			// The producer dials with the shared backoff schedule
			// (ingest.DialFrame), so a listener that is slow to come up —
			// or drops the connection mid-soak — costs spaced redials, not
			// a dead producer.
			ctx := context.Background()
			rc, err := ingest.DialFrame(ctx, "unix", sock, ingest.RedialOptions{Seed: opts.Seed})
			if err != nil {
				return
			}
			defer rc.Close()
			write := func(rec logs.Record) error { return rc.WriteRecord(ctx, rec) }
			if _, err := generate(profile, opts, start, write); err != nil {
				return
			}
			rc.End()
		}()
		return b, nil, nil
	default:
		return nil, nil, fmt.Errorf("load: unknown backend %q (want segdir, file or socket)", opts.Backend)
	}
}

// generate streams opts.Days days of synthetic records into emit, one
// generated day in memory at a time.
func generate(profile gen.Profile, opts Options, start time.Time, emit func(logs.Record) error) (int, error) {
	n := 0
	day := start
	for d := 0; d < opts.Days; d++ {
		res := gen.New(profile, opts.Seed+int64(d)+1).Generate(day, 24*time.Hour)
		for _, rec := range res.Records {
			if err := emit(rec); err != nil {
				return n, err
			}
			n++
		}
		day = res.End
	}
	return n, nil
}

// replayResult carries the replay-side measurements.
type replayResult struct {
	fed         int
	wall        time.Duration
	hist        latencyHist
	predictions int
	stats       predict.Stats
	fleet       *fleet.Stats // set when the replay ran through a sharded fleet
}

// replay drives the monitor from the backend as fast as allowed,
// timing every Feed.
func replay(b ingest.Backend, model *elsa.Model, opts Options) (*replayResult, error) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if opts.MaxDuration > 0 {
		ctx, cancel = context.WithTimeout(ctx, opts.MaxDuration)
		defer cancel()
	}

	var monitor *elsa.Monitor
	var coord *fleet.Coordinator
	res := &replayResult{}
	t0 := time.Now()
	nextReport := 0
	for {
		rec, err := b.Next(ctx)
		if err == io.EOF || err == context.DeadlineExceeded {
			break
		}
		if err != nil {
			return nil, err
		}
		if monitor == nil && coord == nil {
			start := rec.Time.Truncate(10 * time.Second)
			if opts.Shards > 0 {
				coord, err = fleet.New(model, start, fleet.Config{Shards: opts.Shards, Scope: topology.ScopeRack})
				if err != nil {
					return nil, err
				}
			} else {
				monitor = model.NewMonitor(start)
			}
		}
		f0 := time.Now()
		var emitted int
		if coord != nil {
			emitted = len(coord.Feed(rec))
		} else {
			preds, ferr := monitor.Feed(rec)
			if ferr != nil {
				return nil, ferr
			}
			emitted = len(preds)
		}
		res.hist.add(time.Since(f0))
		res.predictions += emitted
		res.fed++
		if opts.Rate > 0 {
			// Coarse-grained throttle: compare progress against the target
			// schedule every 1024 records and sleep off any lead.
			if res.fed%1024 == 0 {
				ahead := time.Duration(float64(res.fed)/opts.Rate*float64(time.Second)) - time.Since(t0)
				if ahead > time.Millisecond {
					time.Sleep(ahead)
				}
			}
		}
		if opts.Progress != nil && res.fed >= nextReport {
			elapsed := time.Since(t0)
			fmt.Fprintf(opts.Progress, "elsaload: %d records in %s (%.0f rec/s)\n",
				res.fed, elapsed.Round(time.Millisecond), float64(res.fed)/elapsed.Seconds())
			nextReport = res.fed + 500000
		}
	}
	res.wall = time.Since(t0)
	if monitor == nil && coord == nil {
		return nil, fmt.Errorf("load: backend delivered no records")
	}
	if coord != nil {
		out := coord.Close()
		st := out.Stats
		res.fleet = &st
		res.predictions = int(st.Predictions)
		// Aggregate the pipeline counters the measurements report across
		// the per-shard runs.
		for _, pr := range out.PerShard {
			res.stats.Ticks += pr.Stats.Ticks
			res.stats.ShedRecords += pr.Stats.ShedRecords
			res.stats.QuarantinedRecords += pr.Stats.QuarantinedRecords
			res.stats.DedupedRecords += pr.Stats.DedupedRecords
			res.stats.LateRecords += pr.Stats.LateRecords
			res.stats.DegradedTicks += pr.Stats.DegradedTicks
		}
		return res, nil
	}
	out := monitor.Close()
	// Close flushes the still-open ticks; the accumulated result holds
	// every prediction of the run, surfaced or not.
	res.predictions = len(out.Predictions)
	res.stats = out.Stats
	return res, nil
}

// measurements renders the replay as committed-point entries.
func (r *replayResult) measurements(bs ingest.Stats) []bench.Measurement {
	perRec := float64(r.wall.Nanoseconds()) / float64(r.fed)
	feed := bench.Measurement{
		Name:    "serve/replay",
		N:       r.fed,
		NsPerOp: perRec,
		Extra: map[string]float64{
			"records_per_sec":    float64(r.fed) / r.wall.Seconds(),
			"predictions":        float64(r.predictions),
			"ticks":              float64(r.stats.Ticks),
			"feed_p50_us":        float64(r.hist.quantile(0.50)) / 1e3,
			"feed_p99_us":        float64(r.hist.quantile(0.99)) / 1e3,
			"shed_records":       float64(r.stats.ShedRecords),
			"quarantined_feed":   float64(r.stats.QuarantinedRecords),
			"deduped_records":    float64(r.stats.DedupedRecords),
			"late_records":       float64(r.stats.LateRecords),
			"degraded_ticks":     float64(r.stats.DegradedTicks),
			"ingest_quarantined": float64(bs.Quarantined),
			"ingest_resyncs":     float64(bs.Resyncs),
		},
	}
	if r.fleet != nil {
		feed.Extra["shards"] = float64(len(r.fleet.Shards))
		feed.Extra["scope_keys"] = float64(r.fleet.Scopes)
		feed.Extra["degraded_predictions"] = float64(r.fleet.Degraded)
		feed.Extra["misrouted"] = float64(r.fleet.Misrouted)
		feed.Extra["lost_entries"] = float64(r.fleet.Lost)
	}
	return []bench.Measurement{feed}
}

// Summary renders a one-screen digest of the report.
func (r *Report) Summary() string {
	s := fmt.Sprintf("profile %s over %s: %d records, %d days (%s, %d cpu)\n",
		r.Profile, r.Backend, r.Records, r.Days, r.GoVersion, r.NumCPU)
	for _, m := range r.Benchmarks {
		s += fmt.Sprintf("  %-20s %10.0f ns/op", m.Name, m.NsPerOp)
		if rps, ok := m.Extra["records_per_sec"]; ok {
			s += fmt.Sprintf("  %9.0f rec/s", rps)
		}
		if p50, ok := m.Extra["feed_p50_us"]; ok {
			s += fmt.Sprintf("  p50=%.1fus p99=%.1fus", p50, m.Extra["feed_p99_us"])
		}
		s += "\n"
	}
	return s
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
