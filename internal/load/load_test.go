package load

import (
	"strings"
	"testing"
	"time"
)

func TestHistQuantile(t *testing.T) {
	var h latencyHist
	for i := 0; i < 199; i++ {
		h.add(1 * time.Microsecond)
	}
	h.add(1 * time.Millisecond)
	if p50 := h.quantile(0.50); p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1us", p50)
	}
	if p99 := h.quantile(0.99); p99 > 4*time.Microsecond {
		t.Errorf("p99 = %v, want within the fast bucket range", p99)
	}
	// The single outlier owns the very tail.
	if tail := h.quantile(0.999); tail < 512*time.Microsecond || tail > 2*time.Millisecond {
		t.Errorf("p99.9 = %v, want ~1ms", tail)
	}
	var empty latencyHist
	if empty.quantile(0.5) != 0 {
		t.Error("empty histogram has a nonzero quantile")
	}
}

// TestRunSegdirSmoke is the in-process shape of the CI soak smoke: one
// generated day through the segmented store into a live monitor, with
// the report carrying the committed-point fields.
func TestRunSegdirSmoke(t *testing.T) {
	rep, err := Run(Options{Backend: "segdir", Days: 1, Seed: 3, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records == 0 {
		t.Fatal("soak replayed no records")
	}
	if rep.Backend != "segdir" || rep.GoVersion == "" || rep.NumCPU == 0 {
		t.Errorf("report header incomplete: %+v", rep)
	}
	var replay bool
	for _, m := range rep.Benchmarks {
		if m.Name == "serve/segdir_append" && m.Extra["records_per_sec"] <= 0 {
			t.Errorf("append measurement has no throughput: %+v", m)
		}
		if m.Name == "serve/replay" {
			replay = true
			if m.Extra["records_per_sec"] <= 0 || m.NsPerOp <= 0 {
				t.Errorf("replay measurement has no throughput: %+v", m)
			}
			if m.Extra["feed_p99_us"] < m.Extra["feed_p50_us"] {
				t.Errorf("p99 below p50: %+v", m.Extra)
			}
			if int(m.Extra["ticks"]) == 0 {
				t.Errorf("replay closed no ticks: %+v", m.Extra)
			}
		}
	}
	if !replay {
		t.Fatalf("no serve/replay measurement in %+v", rep.Benchmarks)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "serve/replay") {
		t.Error("JSON report missing the replay measurement")
	}
	if !strings.Contains(rep.Summary(), "rec/s") {
		t.Error("summary missing the throughput column")
	}
}

// TestRunSocketSmoke exercises the live-producer path: the generator
// frames records over a unix socket while the monitor drains it.
func TestRunSocketSmoke(t *testing.T) {
	rep, err := Run(Options{Backend: "socket", Days: 1, Seed: 5, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records == 0 {
		t.Fatal("socket soak replayed no records")
	}
}

// TestRunFleetSmoke replays through the sharded fleet path: the report
// must carry the shard count and the fleet columns, with nothing lost
// or misrouted on a clean run.
func TestRunFleetSmoke(t *testing.T) {
	rep, err := Run(Options{Backend: "segdir", Days: 1, Seed: 3, Shards: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records == 0 {
		t.Fatal("fleet soak replayed no records")
	}
	if rep.Shards != 4 {
		t.Errorf("report shards = %d, want 4", rep.Shards)
	}
	for _, m := range rep.Benchmarks {
		if m.Name != "serve/replay" {
			continue
		}
		if m.Extra["shards"] != 4 {
			t.Errorf("replay measurement shards = %v, want 4", m.Extra["shards"])
		}
		if m.Extra["scope_keys"] <= 0 {
			t.Errorf("replay measurement saw no scope keys: %+v", m.Extra)
		}
		if m.Extra["misrouted"] != 0 || m.Extra["lost_entries"] != 0 {
			t.Errorf("clean fleet soak lost or misrouted entries: %+v", m.Extra)
		}
		if int(m.Extra["ticks"]) == 0 {
			t.Errorf("fleet replay closed no ticks: %+v", m.Extra)
		}
		return
	}
	t.Fatalf("no serve/replay measurement in %+v", rep.Benchmarks)
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	if _, err := Run(Options{Backend: "kafka", Days: 1}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
