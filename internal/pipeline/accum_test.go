package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/sig"
)

// accumConfigFor derives the accumulator arming matching a model's
// cross-correlation settings, as the monitor does.
func accumConfigFor() *sig.AccumConfig {
	cc := sig.DefaultCrossCorrConfig()
	return &sig.AccumConfig{MaxLag: cc.MaxLag, MinCount: cc.MinCount}
}

// TestSessionAccumulatorTapIsPassive: arming the accumulator must not
// change a single emitted prediction — the tap only reads the hit
// stream — while the accumulator itself fills with the stream's outlier
// statistics.
func TestSessionAccumulatorTapIsPassive(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 511)

	plain := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig())
	if plain.Accumulator() != nil {
		t.Fatal("accumulator armed without Config.Accumulate")
	}
	sp := plain.NewSession(cut)
	var want []predict.Prediction
	for _, r := range test {
		want = append(want, feedOK(t, sp, r)...)
	}
	want = append(want, sp.AdvanceTo(end)...)

	cfg := DefaultConfig()
	cfg.Accumulate = accumConfigFor()
	armed := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, cfg)
	sa := armed.NewSession(cut)
	var got []predict.Prediction
	for _, r := range test {
		got = append(got, feedOK(t, sa, r)...)
	}
	got = append(got, sa.AdvanceTo(end)...)

	samePredictions(t, got, want, "armed", "plain")

	ac := armed.Accumulator()
	if ac == nil || ac.Ticks() == 0 || ac.Events() == 0 {
		t.Fatalf("accumulator empty after a full stream: %+v", ac)
	}
	// The severity tap must have recorded error-severity events (the
	// stream contains failures).
	worst := 0
	for _, es := range ac.EventStats() {
		if es.MaxSeverity > worst {
			worst = es.MaxSeverity
		}
	}
	if logs.Severity(worst) < logs.Error {
		t.Fatalf("worst recorded severity = %v, want >= Error", logs.Severity(worst))
	}
}

// TestSessionAccumulatorDedupInvariant: a record stream duplicated the
// way collector retry bursts duplicate it — exact copies within the
// dedup window — must leave the accumulator byte-identical to the clean
// stream's: the dedup ring admits one copy, the tick tap sees one spike.
func TestSessionAccumulatorDedupInvariant(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 512)
	test = test[:len(test)/3] // keep the duplicated run fast

	run := func(recs []logs.Record) *sig.AccumState {
		cfg := DefaultConfig()
		cfg.DedupWindow = 8
		cfg.Accumulate = accumConfigFor()
		p := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, cfg)
		s := p.NewSession(cut)
		for _, r := range recs {
			s.Feed(r)
		}
		s.AdvanceTo(end)
		return p.Accumulator().State()
	}

	clean := run(test)
	dup := make([]logs.Record, 0, 2*len(test))
	for _, r := range test {
		dup = append(dup, r, r)
	}
	noisy := run(dup)

	b1, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("duplicated stream perturbed the accumulator state")
	}
}

// TestResumedAccumulatorMatchesUninterrupted extends the crash-resume
// contract to the incremental statistics: kill a session mid-stream
// with in-flight accumulator state (live ring, dirty pairs), resume on
// a fresh pipeline, finish the stream — the final accumulator must be
// byte-identical to the uninterrupted run's, and the predictions too.
func TestResumedAccumulatorMatchesUninterrupted(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 513)

	cfg := DefaultConfig()
	cfg.Accumulate = accumConfigFor()

	ref := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, cfg)
	rs := ref.NewSession(cut)
	var want []predict.Prediction
	for _, r := range test {
		want = append(want, feedOK(t, rs, r)...)
	}
	want = append(want, rs.AdvanceTo(end)...)
	wantAcc, err := json.Marshal(ref.Accumulator().State())
	if err != nil {
		t.Fatal(err)
	}

	half := len(test) / 2
	p1 := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, cfg)
	s1 := p1.NewSession(cut)
	var got []predict.Prediction
	for _, r := range test[:half] {
		got = append(got, feedOK(t, s1, r)...)
	}
	st, err := s1.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.Accum == nil {
		t.Fatal("snapshot missing accumulator state")
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var loaded SessionState
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}

	p2 := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, cfg)
	s2, err := p2.ResumeSession(&loaded)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range test[half:] {
		got = append(got, feedOK(t, s2, r)...)
	}
	got = append(got, s2.AdvanceTo(end)...)

	samePredictions(t, got, want, "resumed", "uninterrupted")
	gotAcc, err := json.Marshal(p2.Accumulator().State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotAcc, wantAcc) {
		t.Fatal("resumed accumulator state diverges from uninterrupted run")
	}
}

// TestSessionSyncChainsAfterRefresh: a mid-session Model.Refresh from
// the live accumulator plus SyncChains leaves the session predicting
// with the refreshed chain set and an updated chain inventory.
func TestSessionSyncChainsAfterRefresh(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 514)

	cfg := DefaultConfig()
	cfg.Accumulate = accumConfigFor()
	p := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, cfg)
	s := p.NewSession(cut)

	half := len(test) / 2
	var preds []predict.Prediction
	for _, r := range test[:half] {
		preds = append(preds, feedOK(t, s, r)...)
	}
	if p.Accumulator().Ticks() == 0 {
		t.Fatal("no ticks accumulated before refresh")
	}
	rst := model.Refresh(p.Accumulator(), trainCfgForTest())
	if rst.Chains == 0 {
		t.Fatalf("refresh produced no chains: %+v", rst)
	}
	if n := s.SyncChains(); n != s.Result().Stats.ChainsLoaded {
		t.Fatalf("SyncChains = %d, stats say %d", n, s.Result().Stats.ChainsLoaded)
	}
	for _, r := range test[half:] {
		preds = append(preds, feedOK(t, s, r)...)
	}
	preds = append(preds, s.AdvanceTo(end)...)
	if len(preds) == 0 {
		t.Fatal("no predictions after mid-session refresh")
	}
}

func trainCfgForTest() correlate.Config { return correlate.DefaultConfig() }
