package pipeline

import (
	"errors"
	"fmt"
	"time"

	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/sig"
)

// SessionState is the serialisable mid-stream state of a Session: the
// sampler cursor (tick position, high-water mark, still-open tick
// aggregates), the ingest dedup memory, the shedding flag, the engine's
// online state and the accumulated result. A monitor that snapshots it
// periodically can be killed and resumed without retraining and without
// re-emitting or losing predictions: the resumed session continues
// tick-for-tick where the snapshot was taken.
//
// The state is pure data — it references the model only through stable
// keys (event ids, chain keys), which Pipeline.ResumeSession resolves
// and validates against the model it runs over.
//
//elsa:snapshot-envelope
type SessionState struct {
	Origin    time.Time             `json:"origin"`
	Step      time.Duration         `json:"step"`
	Grace     int                   `json:"grace"`
	NextTick  int                   `json:"next_tick"`
	HighWater time.Time             `json:"high_water"`
	Open      map[int]*predict.Tick `json:"open,omitempty"`
	Late      int64                 `json:"late,omitempty"`
	Outside   int64                 `json:"outside,omitempty"`

	Dedup    []uint64 `json:"dedup,omitempty"`
	Shedding bool     `json:"shedding,omitempty"`

	// Accum carries the incremental training statistics mid-stream when
	// the pipeline was armed with Config.Accumulate.
	Accum *sig.AccumState `json:"accum,omitempty"`

	Engine *predict.EngineState `json:"engine"`
	Result *predict.Result      `json:"result"`
}

// State snapshots the session mid-stream. The snapshot is a deep copy —
// feeding the session afterwards cannot mutate it. Snapshotting a closed
// session is an error: its open ticks were already flushed, so resuming
// from it would double-emit their predictions.
//
//elsa:snapshotter encode
//elsa:requires open
func (s *Session) State() (*SessionState, error) {
	if s.closed {
		return nil, errors.New("pipeline: cannot snapshot a closed session")
	}
	st := &SessionState{
		Origin:    s.smp.origin,
		Step:      s.smp.step,
		Grace:     s.smp.grace,
		NextTick:  s.smp.next,
		HighWater: s.smp.hw,
		Late:      s.smp.late,
		Outside:   s.smp.outside,
		Shedding:  s.p.shedding.Load(),
		Engine:    s.p.eng.State(),
	}
	if len(s.smp.open) > 0 {
		st.Open = make(map[int]*predict.Tick, len(s.smp.open))
		for idx, t := range s.smp.open {
			st.Open[idx] = copyTick(t)
		}
	}
	if s.p.dedup != nil {
		st.Dedup = s.p.dedup.keys()
	}
	if s.p.accum != nil {
		st.Accum = s.p.accum.State()
	}
	res := &predict.Result{
		Predictions: append([]predict.Prediction(nil), s.res.Predictions...),
		Stats:       s.res.Stats,
	}
	res.Stats.ChainsUsed = copyCounts(s.res.Stats.ChainsUsed)
	s.p.fillStats(&res.Stats)
	st.Result = res
	return st, nil
}

// ResumeSession arms the pipeline mid-stream from a snapshot taken by
// Session.State. The pipeline must be freshly built over the same model
// the snapshot came from: engine state is resolved by event id and chain
// key, and any mismatch is an error rather than a silently corrupted
// resume. The first tick the resumed session closes is exactly the one
// the snapshotted session would have closed next.
//
//elsa:snapshotter decode
func (p *Pipeline) ResumeSession(st *SessionState) (*Session, error) {
	if st == nil {
		return nil, errors.New("pipeline: nil session state")
	}
	if st.Step != p.eng.Step() {
		return nil, fmt.Errorf("pipeline: snapshot step %v does not match engine step %v",
			st.Step, p.eng.Step())
	}
	if st.Engine == nil {
		return nil, errors.New("pipeline: snapshot missing engine state")
	}
	if err := p.eng.Restore(st.Engine); err != nil {
		return nil, err
	}
	smp := newSampler(st.Origin, st.Step, st.Grace, -1)
	smp.next = st.NextTick
	smp.hw = st.HighWater
	smp.late = st.Late
	smp.outside = st.Outside
	for idx, t := range st.Open {
		if t == nil {
			continue
		}
		if idx < st.NextTick {
			return nil, fmt.Errorf("pipeline: snapshot holds open tick %d behind its cursor %d",
				idx, st.NextTick)
		}
		smp.open[idx] = copyTick(t)
		smp.buffered += t.N
	}
	p.shedding.Store(st.Shedding)
	if p.dedup != nil {
		p.dedup.restore(st.Dedup)
	}
	if p.accum != nil && st.Accum != nil {
		acc, err := sig.RestoreAccumulator(*p.cfg.Accumulate, st.Accum)
		if err != nil {
			return nil, err
		}
		p.accum = acc
	}
	res := p.eng.NewResult()
	if st.Result != nil {
		chainsUsed := res.Stats.ChainsUsed
		res.Predictions = append(res.Predictions, st.Result.Predictions...)
		res.Stats = st.Result.Stats
		if cu := copyCounts(st.Result.Stats.ChainsUsed); cu != nil {
			res.Stats.ChainsUsed = cu
		} else {
			res.Stats.ChainsUsed = chainsUsed
		}
		p.restoreCounters(st.Result.Stats.Stages)
	}
	return &Session{p: p, smp: smp, res: res}, nil
}

// restoreCounters reloads the per-stage throughput counters from a stage
// snapshot, matching stages by name. Supervision health is not restored:
// a resumed process starts with closed breakers and a fresh failure
// budget (the panics of a previous incarnation say nothing about this
// one), while the cumulative panic counts live on in the snapshot's
// result history.
//
//elsa:snapshotter decode
func (p *Pipeline) restoreCounters(stages []predict.StageStats) {
	for _, ss := range stages {
		for i := range stageNames {
			if stageNames[i] != ss.Name {
				continue
			}
			c := &p.counters[i]
			c.in.Store(ss.In)
			c.out.Store(ss.Out)
			c.dropped.Store(ss.Dropped)
			c.maxQueue.Store(int64(ss.MaxQueue))
			c.wallNanos.Store(int64(ss.Wall))
			c.quarantined.Store(ss.Quarantined)
			c.deduped.Store(ss.Deduped)
			c.shed.Store(ss.Shed)
		}
	}
}

// copyTick deep-copies one open tick aggregate.
func copyTick(t *predict.Tick) *predict.Tick {
	c := predict.NewTick()
	c.N = t.N
	for k, v := range t.Counts {
		c.Counts[k] = v
	}
	for k, v := range t.FirstLoc {
		c.FirstLoc[k] = v
	}
	return c
}

func copyCounts(m map[string]int) map[string]int {
	if m == nil {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
