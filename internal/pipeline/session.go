package pipeline

import (
	"errors"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
)

// ErrClosed is returned by Feed after Close: the declared lifecycle
// (//elsa:state open closed) surfaced at runtime. It is a package-level
// sentinel so the hot path pays no allocation to report it.
var ErrClosed = errors.New("pipeline: session is closed")

// Session is the incremental driver of the stage graph: the same stage
// bodies Run executes across goroutines, executed synchronously one
// record per Feed call. It is the deployment shape of a monitor daemon
// tailing a live log, and the backing of the public Monitor API.
//
// Ingest contract: records should arrive roughly in time order. A record
// up to Config.GraceTicks sampling ticks older than the newest record
// seen is still accepted into its (still open) tick; older records are
// dropped and counted in the sample stage's Dropped counter and the
// result's LateRecords. AdvanceTo is wall-clock-authoritative: ticks it
// closes are final regardless of grace. A Session is not safe for
// concurrent use.
//
//elsa:state open closed
//elsa:snapshot
type Session struct {
	p   *Pipeline
	smp *sampler
	res *predict.Result
	//elsa:ephemeral snapshots of closed sessions are rejected, so a resumed session always starts open
	closed bool
}

// NewSession arms the pipeline for incremental feeding, with tick 0
// starting at start.
func (p *Pipeline) NewSession(start time.Time) *Session {
	return &Session{
		p:   p,
		smp: newSampler(start, p.eng.Step(), p.cfg.GraceTicks, -1),
		res: p.eng.NewResult(),
	}
}

// Feed ingests one record and returns any predictions that became
// visible by closing ticks. Feeding a closed session returns ErrClosed
// and ingests nothing.
//
//elsa:hotpath
//elsa:requires open
func (s *Session) Feed(rec logs.Record) ([]predict.Prediction, error) {
	if s.closed {
		return nil, ErrClosed
	}
	src := &s.p.counters[stageSource]
	src.in.Add(1)
	if !s.p.ingest(&rec) { //nolint:elsaalloc // ingest and stampSafe never retain the pointer: go build -gcflags=-m shows rec is not moved to the heap
		return nil, nil
	}
	src.out.Add(1)
	c := &s.p.counters[stageSample]
	if s.p.shouldShed(s.smp.buffered) {
		// Overload: drop the record before template work, but let its
		// timestamp drive tick progress so the buffer drains.
		c.shed.Add(1)
		return s.runBatches(s.smp.bump(rec.Time)), nil
	}
	s.p.stampSafe(&rec)
	if s.p.accum != nil && rec.EventID >= 0 {
		s.p.accum.NoteSeverity(rec.EventID, int(rec.Severity))
	}
	c.in.Add(1)
	batches, accepted := s.smp.add(rec)
	if !accepted {
		c.dropped.Add(1)
		s.res.Stats.LateRecords++
	}
	c.observeQueue(s.smp.buffered)
	return s.runBatches(batches), nil
}

// AdvanceTo closes every tick that ends at or before now, returning the
// predictions they emitted. Call it periodically even without records so
// tick processing and chain expiry keep pace with the clock during quiet
// spells. Advancing a closed session is a benign no-op.
//
//elsa:requires open
func (s *Session) AdvanceTo(now time.Time) []predict.Prediction {
	if s.closed {
		return nil
	}
	return s.runBatches(s.smp.advanceTo(now))
}

// Close flushes every still-open tick and returns the accumulated
// result, with the per-stage counters in Stats.Stages. The session
// cannot be fed afterwards; Close is idempotent.
//
//elsa:transition open->closed closed->closed
func (s *Session) Close() *predict.Result {
	if !s.closed {
		s.runBatches(s.smp.flush())
		s.closed = true
		s.p.fillStats(&s.res.Stats)
	}
	return s.res
}

// Result returns the accumulated result so far without closing, with a
// current snapshot of the stage counters.
func (s *Session) Result() *predict.Result {
	s.p.fillStats(&s.res.Stats)
	return s.res
}

// runBatches pushes closed ticks through the filter and match stages,
// teeing each closed tick's hit set into the statistics accumulator
// when one is armed.
func (s *Session) runBatches(batches []tickBatch) []predict.Prediction {
	var out []predict.Prediction
	for _, b := range batches {
		s.p.counters[stageSample].out.Add(1)
		hits := s.p.detectSafe(b.sample, b.start)
		if s.p.accum != nil {
			s.p.observeTick(b, hits)
		}
		out = append(out, s.p.matchSafe(b, hits, s.res)...)
	}
	return out
}

// SyncChains re-derives the engine's chain wiring after the model's
// chain set changed underneath it (Model.Refresh): surviving partial
// matches keep matching, instances of dropped chains expire, and the
// result's chain inventory is updated. Returns the number of
// prediction-capable chains now loaded.
func (s *Session) SyncChains() int {
	n := s.p.eng.SwapChains()
	s.res.Stats.ChainsLoaded = n
	return n
}
