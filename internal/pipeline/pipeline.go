// Package pipeline is the streaming core of ELSA's online phase: a typed,
// staged graph
//
//	Source → TemplateAssign (helo) → Sample/Signal (sig) → OutlierFilter → ChainMatch → PredictionSink
//
// with context cancellation, bounded-channel backpressure and per-stage
// counters (records in/out, drops, max queue depth, wall time). The hot
// filtering stage shards its per-event-type signal state across workers.
//
// The graph has exactly one set of stage bodies and two drivers:
//
//   - Run pulls records from a logs.RecordSource and pushes them through
//     goroutine-per-stage bounded channels — the batch path. Batch
//     prediction is therefore a replay of the same stage graph the live
//     monitor runs, not a separate code path.
//   - Session executes the same stage bodies synchronously, one record
//     per Feed call — the deployment shape of a monitor daemon tailing a
//     live log.
//
// Tick mechanics (sampling, outlier observation, chain matching, the
// analysis-time model) live in internal/predict as exported stage steps;
// this package owns ingest, ordering, concurrency and accounting.
package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/resilience"
	"github.com/elsa-hpc/elsa/internal/sig"
)

// Stage indices, in graph order.
const (
	stageSource = iota
	stageTemplate
	stageSample
	stageFilter
	stageMatch
	stageSink
	numStages
)

var stageNames = [numStages]string{"source", "template", "sample", "filter", "match", "sink"}

// TemplateLearner is the online-learning slice of *helo.Organizer the
// TemplateAssign stage needs: match a message against the template set,
// merging or creating as HELO does online, and return the template.
type TemplateLearner interface {
	Learn(msg string, sev logs.Severity) *helo.Template
}

// StampEventID is the single ingest point shared by batch replay and the
// live monitor: a record without an event id is stamped by the model's
// template organizer (which keeps learning new message shapes online).
// Records arriving with an id — replayed from an already-stamped log —
// pass through untouched.
func StampEventID(rec *logs.Record, org TemplateLearner) {
	if rec.EventID < 0 && org != nil {
		rec.EventID = org.Learn(rec.Message, rec.Severity).ID
	}
}

// Config tunes the pipeline drivers. The engine-level parameters (step,
// tolerance, analysis-cost model) stay in predict.Config.
type Config struct {
	// Buffer is the capacity of each inter-stage channel in the async
	// driver; it bounds how far any stage can run ahead (backpressure).
	// <= 0 selects DefaultBuffer.
	Buffer int

	// Workers caps the filter stage's fan-out across detector shards.
	// <= 0 selects runtime.NumCPU(). The effective width also never
	// exceeds one worker per minShardSize detectors, so small models run
	// sequentially.
	Workers int

	// GraceTicks is how many sampling ticks a record may lag the newest
	// record seen and still be accepted into its (still open) tick.
	// Records older than that are dropped and counted. Wall-clock
	// advancement (Session.AdvanceTo) is authoritative and ignores the
	// grace. Negative values are treated as 0.
	GraceTicks int

	// OnPrediction, when set, is invoked from the sink stage for every
	// prediction as soon as its tick closes (both drivers).
	OnPrediction func(predict.Prediction)

	// Supervise wraps the template, filter and match stage bodies in
	// panic barriers with restart budgets and circuit breakers
	// (internal/resilience). A stage whose breaker trips runs in bypass
	// mode — records flow through unstamped, ticks produce no hits, or
	// matching is skipped — instead of killing the monitor, and the
	// degradation is visible in the stage's Health and the result's
	// Degraded flag. DefaultConfig enables it; the zero Config does not.
	Supervise bool

	// Supervision tunes the per-stage supervisors. Zero-value fields
	// select the resilience package defaults.
	Supervision resilience.Policy

	// DedupWindow > 0 enables exact-duplicate suppression at ingest: a
	// record identical in every field to one of the last DedupWindow
	// accepted records is dropped and counted (collector retry bursts).
	// It is off by default — a batch replay must see the stream
	// verbatim to stay tick-for-tick identical to the reference engine.
	DedupWindow int

	// MaxBuffered bounds how many records the open (not yet closed)
	// sampling ticks may hold before the sample stage starts shedding
	// new records. Shedding stops once the buffer drains to half
	// (hysteresis); everything emitted while shedding carries the
	// Degraded flag. <= 0 disables shedding; DefaultConfig sets
	// DefaultMaxBuffered.
	MaxBuffered int

	// Accumulate, when set, arms an incremental statistics accumulator
	// on the synchronous Session driver: every closed tick's outlier hit
	// set and per-event counts are folded into it, so Model.Refresh can
	// rebuild chains from live counters without replaying the horizon.
	// Its MaxLag/MinCount must match the model's cross-correlation
	// configuration. The async Run driver ignores it (batch replay
	// retrains offline).
	Accumulate *sig.AccumConfig
}

// DefaultBuffer is the default inter-stage channel capacity.
const DefaultBuffer = 256

// DefaultGraceTicks is the default out-of-order tolerance: one sampling
// tick, per the monitor's documented ingest contract.
const DefaultGraceTicks = 1

// minShardSize is the fewest detectors worth giving a filter worker.
const minShardSize = 16

// DefaultConfig returns the standard driver configuration.
func DefaultConfig() Config {
	return Config{
		Buffer:      DefaultBuffer,
		Workers:     runtime.NumCPU(),
		GraceTicks:  DefaultGraceTicks,
		Supervise:   true,
		MaxBuffered: DefaultMaxBuffered,
	}
}

// Pipeline binds an armed prediction engine, a template organizer and a
// driver configuration into a runnable stage graph. A Pipeline carries
// the engine's (stateful) signal and chain state: use one Pipeline per
// run — either a single Run call or a single Session.
//
//elsa:snapshot
type Pipeline struct {
	eng *predict.Engine
	//elsa:ephemeral the resume path restores the organizer from the snapshot's HELO envelope before the pipeline is built
	org TemplateLearner
	//elsa:ephemeral driver configuration is a constructor argument, not stream state
	cfg Config

	//elsa:ephemeral model-derived wiring rebuilt by New
	ids []int // all dense-detector event ids, ascending
	//elsa:ephemeral model-derived wiring rebuilt by New
	shards [][]int // ids partitioned for the filter fan-out

	counters [numStages]stageCounter

	// accum collects incremental training statistics from the Session
	// driver's closed ticks; nil when Config.Accumulate is unset. Its
	// state rides SessionState.Accum.
	accum *sig.Accumulator
	//elsa:ephemeral per-tick outlier id scratch for the accumulator tap
	accEvents []int

	// Input hardening and supervision state (see harden.go).
	//elsa:ephemeral ingest diagnostics; the aggregate counts persist via the stage counters
	quar  quarantine
	dedup *dedupRing // nil when Config.DedupWindow <= 0
	//elsa:ephemeral supervision health is deliberately not restored; see restoreCounters
	sups     [numStages]*resilience.Supervisor // nil when unsupervised
	shedding atomic.Bool
}

// New builds a pipeline over an engine. org may be nil when every record
// arrives pre-stamped with an event id.
func New(eng *predict.Engine, org TemplateLearner, cfg Config) *Pipeline {
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.GraceTicks < 0 {
		cfg.GraceTicks = 0
	}
	p := &Pipeline{eng: eng, org: org, cfg: cfg, ids: eng.DetectorIDs()}
	w := cfg.Workers
	if max := len(p.ids) / minShardSize; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	p.shards = make([][]int, w)
	for i, id := range p.ids {
		p.shards[i%w] = append(p.shards[i%w], id)
	}
	if cfg.DedupWindow > 0 {
		p.dedup = newDedupRing(cfg.DedupWindow)
	}
	if cfg.Accumulate != nil {
		p.accum = sig.NewAccumulator(*cfg.Accumulate)
	}
	if cfg.Supervise {
		for _, st := range []int{stageTemplate, stageFilter, stageMatch} {
			pol := cfg.Supervision
			pol.Seed += int64(st) // decorrelate backoff jitter across stages
			p.sups[st] = resilience.New(stageNames[st], pol)
		}
	}
	return p
}

// Engine returns the wrapped prediction engine.
func (p *Pipeline) Engine() *predict.Engine { return p.eng }

// Accumulator returns the incremental statistics accumulator, or nil
// when Config.Accumulate was unset.
func (p *Pipeline) Accumulator() *sig.Accumulator { return p.accum }

// observeTick feeds one closed tick to the accumulator: the sorted hit
// set becomes the tick's outlier ids, the tick sample its per-event
// record counts.
func (p *Pipeline) observeTick(b tickBatch, hits []predict.Hit) {
	ev := p.accEvents[:0]
	for _, h := range hits {
		ev = append(ev, h.Event)
	}
	p.accEvents = ev
	p.accum.ObserveTick(b.idx, b.sample.Counts, ev)
}

// FilterWorkers returns the filter stage's effective fan-out width.
func (p *Pipeline) FilterWorkers() int { return len(p.shards) }

// Stats returns a point-in-time snapshot of the per-stage counters, in
// graph order, with each supervised stage's health merged in. Safe to
// call concurrently with a running driver.
func (p *Pipeline) Stats() []predict.StageStats {
	out := make([]predict.StageStats, numStages)
	for i := range p.counters {
		out[i] = p.counters[i].snapshot(stageNames[i])
		if sup := p.sups[i]; sup != nil {
			ss := sup.Stats()
			out[i].Panics = ss.Panics
			out[i].Restarts = ss.Restarts
			out[i].Bypassed = ss.Bypassed
			out[i].Trips = ss.Trips
			out[i].Probes = ss.Probes
			out[i].Health = ss.Health.String()
		}
	}
	return out
}

// fillStats populates a result's stage snapshot plus the run-level
// hardening aggregates from the pipeline counters.
//
//elsa:snapshotter encode
func (p *Pipeline) fillStats(st *predict.Stats) {
	st.Stages = p.Stats()
	st.QuarantinedRecords = int(p.counters[stageSource].quarantined.Load())
	st.DedupedRecords = int(p.counters[stageSource].deduped.Load())
	st.ShedRecords = int(p.counters[stageSample].shed.Load())
	if st.DegradedTicks > 0 || p.degradedNow() {
		st.Degraded = true
	}
}

// stageCounter tracks one stage's throughput; all fields are atomics so
// the async driver's goroutines and Stats snapshots never race.
type stageCounter struct {
	in, out, dropped atomic.Int64
	maxQueue         atomic.Int64
	wallNanos        atomic.Int64

	quarantined, deduped, shed atomic.Int64
}

func (c *stageCounter) observeQueue(depth int) {
	d := int64(depth)
	for {
		cur := c.maxQueue.Load()
		if d <= cur || c.maxQueue.CompareAndSwap(cur, d) {
			return
		}
	}
}

func (c *stageCounter) addWall(d time.Duration) { c.wallNanos.Add(int64(d)) }

func (c *stageCounter) snapshot(name string) predict.StageStats {
	return predict.StageStats{
		Name:        name,
		In:          c.in.Load(),
		Out:         c.out.Load(),
		Dropped:     c.dropped.Load(),
		MaxQueue:    int(c.maxQueue.Load()),
		Wall:        time.Duration(c.wallNanos.Load()),
		Quarantined: c.quarantined.Load(),
		Deduped:     c.deduped.Load(),
		Shed:        c.shed.Load(),
	}
}

// stamp runs the TemplateAssign stage body for one record.
//
//elsa:hotpath
func (p *Pipeline) stamp(rec *logs.Record) {
	c := &p.counters[stageTemplate]
	c.in.Add(1)
	t := time.Now()
	StampEventID(rec, p.org)
	c.addWall(time.Since(t))
	c.out.Add(1)
}

// stampSafe is the supervised template stage: a panicking organizer
// counts against the stage's restart budget instead of killing the
// driver, and once the breaker trips records flow through unstamped
// (EventID -1, which tick aggregation ignores) until the cooldown
// probe succeeds.
func (p *Pipeline) stampSafe(rec *logs.Record) {
	sup := p.sups[stageTemplate]
	if sup == nil {
		p.stamp(rec)
		return
	}
	if !sup.Allow() {
		return
	}
	defer sup.Recover()
	p.stamp(rec)
	sup.OK()
}

// detect runs the OutlierFilter stage body for one tick: every dense
// detector observes its sampled value (sharded across the filter workers
// when the model is wide enough), sparse events pass straight through,
// and the merged hit set is sorted for deterministic matching. The
// result is identical to Engine.DetectOutliers.
func (p *Pipeline) detect(t *predict.Tick, tickStart time.Time) []predict.Hit {
	c := &p.counters[stageFilter]
	c.in.Add(1)
	start := time.Now()
	var hits []predict.Hit
	if len(p.shards) <= 1 {
		for _, id := range p.ids {
			if h, ok := p.eng.ObserveDetector(id, t, tickStart); ok {
				hits = append(hits, h)
			}
		}
	} else {
		partial := make([][]predict.Hit, len(p.shards))
		var wg sync.WaitGroup
		for w := range p.shards {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// A panic on a worker goroutine cannot be recovered by
				// the caller; the barrier must sit here. The shard's
				// hits are lost for this tick, the process survives.
				if sup := p.sups[stageFilter]; sup != nil {
					defer sup.Recover()
				}
				var hs []predict.Hit
				for _, id := range p.shards[w] {
					if h, ok := p.eng.ObserveDetector(id, t, tickStart); ok {
						hs = append(hs, h)
					}
				}
				partial[w] = hs
			}(w)
		}
		wg.Wait()
		for _, hs := range partial {
			hits = append(hits, hs...)
		}
	}
	hits = p.eng.SparseHits(t, hits)
	predict.SortHits(hits)
	c.addWall(time.Since(start))
	c.out.Add(int64(len(hits)))
	return hits
}

// detectSafe is the supervised filter stage: with the breaker tripped
// the tick yields no hits (signal windows simply do not advance), which
// downstream matching handles as a quiet tick.
func (p *Pipeline) detectSafe(t *predict.Tick, tickStart time.Time) []predict.Hit {
	sup := p.sups[stageFilter]
	if sup == nil {
		return p.detect(t, tickStart)
	}
	if !sup.Allow() {
		return nil
	}
	var hits []predict.Hit
	func() {
		defer sup.Recover()
		hits = p.detect(t, tickStart)
		sup.OK()
	}()
	return hits
}

// match runs the ChainMatch + PredictionSink stage bodies for one closed
// tick, appending into res and returning the predictions the tick fired.
//
//elsa:hotpath
func (p *Pipeline) match(b tickBatch, hits []predict.Hit, res *predict.Result) []predict.Prediction {
	cm := &p.counters[stageMatch]
	cm.in.Add(1)
	start := time.Now()
	checks := p.eng.MatchChains(hits, b.idx)
	before := len(res.Predictions)
	p.eng.FinishTick(b.sample, checks, b.idx, b.end, res)
	cm.addWall(time.Since(start))
	fired := res.Predictions[before:]
	cm.out.Add(int64(len(fired)))
	if p.degradedNow() {
		res.Stats.DegradedTicks++
		res.Stats.Degraded = true
		for i := range fired {
			fired[i].Degraded = true
		}
	}

	cs := &p.counters[stageSink]
	cs.in.Add(int64(len(fired)))
	if p.cfg.OnPrediction != nil {
		for _, pr := range fired {
			p.cfg.OnPrediction(pr)
		}
	}
	cs.out.Add(int64(len(fired)))
	return fired
}

// matchSafe is the supervised match/sink stage: with the breaker
// tripped the tick is skipped entirely — no chain advancement, no
// emission — until the cooldown probe succeeds.
func (p *Pipeline) matchSafe(b tickBatch, hits []predict.Hit, res *predict.Result) []predict.Prediction {
	sup := p.sups[stageMatch]
	if sup == nil {
		return p.match(b, hits, res)
	}
	if !sup.Allow() {
		return nil
	}
	var fired []predict.Prediction
	func() {
		defer sup.Recover()
		fired = p.match(b, hits, res)
		sup.OK()
	}()
	return fired
}
