package pipeline

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// feedOK feeds one record, failing the test on an unexpected error —
// these tests never feed a closed session.
func feedOK(t *testing.T, s *Session, r logs.Record) []predict.Prediction {
	t.Helper()
	preds, err := s.Feed(r)
	if err != nil {
		t.Fatalf("Feed: %v", err)
	}
	return preds
}

func TestSessionMatchesRun(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)

	batch, err := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).
		Run(context.Background(), logs.NewSliceSource(test), cut, end)
	if err != nil {
		t.Fatal(err)
	}

	s := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(cut)
	var streamed []predict.Prediction
	for _, r := range test {
		streamed = append(streamed, feedOK(t, s, r)...)
	}
	streamed = append(streamed, s.AdvanceTo(end)...)
	final := s.Close()

	samePredictions(t, streamed, batch.Predictions, "session", "batch")
	if final.Stats.Messages != batch.Stats.Messages {
		t.Errorf("message counts differ: %d vs %d", final.Stats.Messages, batch.Stats.Messages)
	}
	if len(final.Stats.ChainsUsed) != len(batch.Stats.ChainsUsed) {
		t.Errorf("chains used differ: %d vs %d", len(final.Stats.ChainsUsed), len(batch.Stats.ChainsUsed))
	}
	if len(final.Stats.Stages) != numStages {
		t.Errorf("stage counters missing: %d rows", len(final.Stats.Stages))
	}
}

func TestSessionIncrementalDelivery(t *testing.T) {
	model, profiles, test, cut, _ := trained(t, 501)
	s := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(cut)

	sawMidRun := false
	half := len(test) / 2
	for i, r := range test {
		if preds := feedOK(t, s, r); len(preds) > 0 && i < half {
			sawMidRun = true
		}
	}
	s.Close()
	if !sawMidRun {
		t.Error("no prediction delivered before the stream ended")
	}
}

func TestSessionDropsStragglersBehindWallClock(t *testing.T) {
	model, profiles, _, _, _ := trained(t, 501)
	s := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(t0)
	// The wall clock is authoritative: after AdvanceTo closed a tick, a
	// record from it is a straggler even within the grace.
	s.AdvanceTo(t0.Add(time.Minute))
	s.Feed(logs.Record{Time: t0.Add(time.Second), EventID: 0, Location: topology.System})
	if got := s.Result().Stats.LateRecords; got != 1 {
		t.Errorf("LateRecords = %d, want 1", got)
	}
}

func TestSessionClosedIsInert(t *testing.T) {
	model, profiles, _, _, _ := trained(t, 501)
	s := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(t0)
	res1 := s.Close()
	if preds := s.AdvanceTo(t0.Add(time.Hour)); preds != nil {
		t.Error("closed session advanced")
	}
	preds, err := s.Feed(logs.Record{Time: t0, EventID: 0})
	if err != ErrClosed {
		t.Errorf("Feed after Close: err = %v, want ErrClosed", err)
	}
	if preds != nil {
		t.Error("closed session accepted a record")
	}
	res2 := s.Close()
	if res1 != res2 {
		t.Error("Close not idempotent")
	}
}

func TestSessionQuietAdvance(t *testing.T) {
	model, profiles, _, _, _ := trained(t, 501)
	s := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(t0)
	// An hour of silence: ticks must still close.
	s.AdvanceTo(t0.Add(time.Hour))
	if got := s.Result().Stats.Ticks; got != 360 {
		t.Errorf("Ticks = %d, want 360", got)
	}
}

// pairModel is a minimal hand-built model (one pair chain 1 → 2, silent
// signals, 10 s step) for targeted ingest-contract tests.
func pairModel() *correlate.Model {
	return &correlate.Model{
		Mode: correlate.Hybrid,
		Step: 10 * time.Second,
		Chains: []correlate.Chain{{
			Itemset: gradual.Itemset{Items: []gradual.Item{
				{Event: 1, Delay: 0}, {Event: 2, Delay: 6},
			}},
			Predictive:  true,
			MaxSeverity: logs.Failure,
		}},
		Profiles:   map[int]sig.Profile{1: {Class: sig.Silent}, 2: {Class: sig.Silent}},
		Thresholds: map[int]float64{1: 0.5, 2: 0.5},
		Severity:   map[int]logs.Severity{1: logs.Warning, 2: logs.Failure},
	}
}

func TestSessionToleratesOneTickLateRecord(t *testing.T) {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	s := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(t0)

	// A record at tick 4 arrives first, then a straggler from tick 3 —
	// one tick late, within the default grace. Both must be sampled.
	s.Feed(logs.Record{Time: t0.Add(45 * time.Second), EventID: 0, Location: node})
	s.Feed(logs.Record{Time: t0.Add(35 * time.Second), EventID: 1, Location: node})
	res := s.Close()
	if res.Stats.LateRecords != 0 {
		t.Errorf("LateRecords = %d, want 0 (straggler within grace)", res.Stats.LateRecords)
	}
	if res.Stats.Messages != 2 {
		t.Errorf("Messages = %d, want 2", res.Stats.Messages)
	}
	// The straggler landed in its own tick, so the pair chain fired from
	// tick 3 and forecasts the start of tick 3+6.
	if len(res.Predictions) != 1 {
		t.Fatalf("predictions = %d, want 1", len(res.Predictions))
	}
	want := t0.Add(90 * time.Second)
	if got := res.Predictions[0].ExpectedAt; !got.Equal(want) {
		t.Errorf("ExpectedAt = %v, want %v", got, want)
	}
}

func TestSessionDropsRecordsBeyondGrace(t *testing.T) {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	s := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(t0)

	// A record at tick 5 closes ticks 0..3 (grace 1 keeps tick 4 and 5
	// open); a straggler from tick 2 is beyond the grace and must be
	// dropped and counted, not corrupt closed-tick state.
	s.Feed(logs.Record{Time: t0.Add(55 * time.Second), EventID: 0, Location: node})
	preds := feedOK(t, s, logs.Record{Time: t0.Add(25 * time.Second), EventID: 1, Location: node})
	if len(preds) != 0 {
		t.Errorf("dropped straggler fired %d predictions", len(preds))
	}
	res := s.Close()
	if res.Stats.LateRecords != 1 {
		t.Errorf("LateRecords = %d, want 1", res.Stats.LateRecords)
	}
	if res.Stats.Messages != 1 {
		t.Errorf("Messages = %d, want 1 (straggler excluded)", res.Stats.Messages)
	}
	if len(res.Predictions) != 0 {
		t.Errorf("predictions = %d, want 0", len(res.Predictions))
	}
}

// cancellingLearner wraps a real organizer and cancels the run's context
// from inside the template stage after a fixed number of Learn calls —
// the cancellation lands deterministically between stamp and match.
type cancellingLearner struct {
	inner  *helo.Organizer
	after  int
	calls  int
	cancel context.CancelFunc
}

func (c *cancellingLearner) Learn(msg string, sev logs.Severity) *helo.Template {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	return c.inner.Learn(msg, sev)
}

// TestRunCancelledMidTickEmitsNoPartialPredictions cancels the pipeline
// between the template and match stages, mid-stream: the run must stop
// without leaking goroutines, and everything emitted up to that point
// must be an exact prefix of the uninterrupted run — a tick either
// completes the full filter→match→sink path or contributes nothing.
func TestRunCancelledMidTickEmitsNoPartialPredictions(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)

	// Strip the event ids so the template stage must consult the
	// organizer for every record (that is where the cancel fires).
	unstamped := make([]logs.Record, len(test))
	for i, r := range test {
		r.EventID = -1
		unstamped[i] = r
	}

	refCfg := DefaultConfig()
	var want []predict.Prediction
	refCfg.OnPrediction = func(p predict.Prediction) { want = append(want, p) }
	if _, err := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), helo.New(0), refCfg).
		Run(context.Background(), logs.NewSliceSource(unstamped), cut, end); err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("reference run emitted no predictions; the test needs some")
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	learner := &cancellingLearner{inner: helo.New(0), after: len(unstamped) / 2, cancel: cancel}

	cfg := DefaultConfig()
	var got []predict.Prediction
	cfg.OnPrediction = func(p predict.Prediction) { got = append(got, p) }
	res, err := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), learner, cfg).
		Run(ctx, logs.NewSliceSource(unstamped), cut, end)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled Run returned nil partial result")
	}
	if len(got) >= len(want) {
		t.Fatalf("cancelled run emitted %d predictions, reference %d — cancellation came too late to test anything", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("prediction %d differs from the reference prefix:\ncancelled %+v\nreference %+v", i, got[i], want[i])
		}
	}

	// Every stage goroutine must be joined; allow the runtime a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSessionOutOfOrderWithinGraceMatchesSorted(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)

	ref, err := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).
		Run(context.Background(), logs.NewSliceSource(test), cut, end)
	if err != nil {
		t.Fatal(err)
	}

	// Perturb arrival order: swap adjacent records whenever the pair is
	// at most one tick apart, so every record stays within the one-tick
	// grace the ingest contract promises to absorb.
	step := predict.DefaultConfig().Step
	shuffled := append([]logs.Record(nil), test...)
	for i := 0; i+1 < len(shuffled); i += 2 {
		ta := int(shuffled[i].Time.Sub(cut) / step)
		tb := int(shuffled[i+1].Time.Sub(cut) / step)
		if tb-ta <= 1 {
			shuffled[i], shuffled[i+1] = shuffled[i+1], shuffled[i]
		}
	}
	s := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(cut)
	var streamed []predict.Prediction
	for _, r := range shuffled {
		streamed = append(streamed, feedOK(t, s, r)...)
	}
	streamed = append(streamed, s.AdvanceTo(end)...)
	res := s.Close()
	if res.Stats.LateRecords != 0 {
		t.Fatalf("LateRecords = %d, want 0", res.Stats.LateRecords)
	}
	samePredictions(t, streamed, ref.Predictions, "out-of-order", "sorted")
}
