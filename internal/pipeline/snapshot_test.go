package pipeline

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/outlier"
	"github.com/elsa-hpc/elsa/internal/predict"
)

// TestResumedSessionMatchesUninterrupted is the crash-resume contract:
// kill a session mid-stream (mid-tick, not at a tick boundary), carry
// its snapshot through a JSON round trip, resume on a fresh pipeline
// over the same model, and the combined prediction stream must be
// exactly the uninterrupted run's — nothing double-emitted, nothing
// missing, every field identical.
func TestResumedSessionMatchesUninterrupted(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)

	ref := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(cut)
	var want []predict.Prediction
	for _, r := range test {
		want = append(want, feedOK(t, ref, r)...)
	}
	want = append(want, ref.AdvanceTo(end)...)
	refRes := ref.Close()

	// First incarnation: half the stream, then a snapshot (the split
	// lands mid-tick for any realistic record density).
	half := len(test) / 2
	s1 := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(cut)
	var got []predict.Prediction
	for _, r := range test[:half] {
		got = append(got, feedOK(t, s1, r)...)
	}
	st, err := s1.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}

	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var loaded SessionState
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}

	// Second incarnation: fresh engine over the same model, resumed from
	// the decoded snapshot, fed the rest of the stream.
	p2 := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig())
	s2, err := p2.ResumeSession(&loaded)
	if err != nil {
		t.Fatalf("ResumeSession: %v", err)
	}
	preFeed := len(s2.res.Predictions)
	if preFeed != len(got) {
		t.Fatalf("resumed session carries %d predictions, first incarnation emitted %d", preFeed, len(got))
	}
	for _, r := range test[half:] {
		got = append(got, feedOK(t, s2, r)...)
	}
	got = append(got, s2.AdvanceTo(end)...)
	res := s2.Close()

	samePredictions(t, got, want, "resumed", "uninterrupted")
	samePredictions(t, res.Predictions, refRes.Predictions, "resumed result", "uninterrupted result")
	if res.Stats.Messages != refRes.Stats.Messages {
		t.Errorf("Messages = %d, want %d", res.Stats.Messages, refRes.Stats.Messages)
	}
	if res.Stats.Ticks != refRes.Stats.Ticks {
		t.Errorf("Ticks = %d, want %d", res.Stats.Ticks, refRes.Stats.Ticks)
	}
}

func TestSnapshotOfClosedSessionFails(t *testing.T) {
	s := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(t0)
	s.Close()
	if _, err := s.State(); err == nil {
		t.Fatal("State on a closed session did not fail")
	}
}

func TestResumeRejectsMismatchedSnapshot(t *testing.T) {
	p := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, DefaultConfig())

	if _, err := p.ResumeSession(nil); err == nil {
		t.Error("nil snapshot accepted")
	}

	s := p.NewSession(t0)
	st, err := s.State()
	if err != nil {
		t.Fatal(err)
	}

	wrongStep := *st
	wrongStep.Step = time.Hour
	if _, err := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, DefaultConfig()).
		ResumeSession(&wrongStep); err == nil {
		t.Error("snapshot with mismatched step accepted")
	}

	wrongModel := *st
	eng := *st.Engine
	eng.Detectors = map[int]outlier.DetectorState{123456: {Raw: []float64{1}}}
	wrongModel.Engine = &eng
	if _, err := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, DefaultConfig()).
		ResumeSession(&wrongModel); err == nil {
		t.Error("snapshot referencing an unknown detector accepted")
	}
}
