package pipeline

import (
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// Input hardening: the syslog-class collectors a monitor daemon sits
// behind routinely deliver corrupt records, exact-duplicate bursts and
// multi-minute floods. The ingest stage therefore classifies every
// record before it can touch sampler or signal state:
//
//   - malformed records are quarantined — counted, a few sampled for
//     diagnosis, never fatal and never sampled into ticks;
//   - exact duplicates of a recently seen record are suppressed
//     (duplicate-burst dedup, a bounded ring of record fingerprints);
//   - when the open-tick buffer exceeds Config.MaxBuffered the sample
//     stage sheds new records instead of growing without bound, and
//     everything emitted while shedding is flagged Degraded.

// MaxMessageLen is the quarantine bound on message bodies. It matches
// the largest line the monitor daemon's scanner accepts; anything bigger
// did not come out of a sane log collector.
const MaxMessageLen = 1 << 20

// DefaultDedupWindow is how many recently accepted record fingerprints
// the duplicate filter remembers.
const DefaultDedupWindow = 4096

// DefaultMaxBuffered bounds how many records the open ticks may hold
// before overload shedding starts.
const DefaultMaxBuffered = 1 << 16

// quarantineSampleCap is how many quarantined records are kept verbatim
// for diagnosis; the rest are only counted.
const quarantineSampleCap = 8

// quarantineReason classifies a malformed record ("" = well-formed).
// The checks mirror the corruptions chaos injection produces and real
// collectors emit: zero/absurd timestamps (clock skew past any grace),
// non-UTF-8 or NUL-spliced message bytes, runaway message sizes, and
// event ids no organizer could have stamped.
func quarantineReason(rec *logs.Record) string {
	switch {
	case rec.Time.IsZero():
		return "zero timestamp"
	case rec.Time.Year() < 1970 || rec.Time.Year() > 9999:
		return "timestamp out of range"
	case rec.EventID < -1:
		return "invalid event id"
	case len(rec.Message) > MaxMessageLen:
		return "oversized message"
	case strings.IndexByte(rec.Message, 0) >= 0:
		return "NUL byte in message"
	case !utf8.ValidString(rec.Message):
		return "invalid UTF-8 in message"
	}
	return ""
}

// QuarantinedRecord is one sampled malformed record.
type QuarantinedRecord struct {
	Reason  string    `json:"reason"`
	Time    time.Time `json:"time"`
	Message string    `json:"message"` // truncated to 128 bytes
}

// quarantine counts malformed records and keeps a small sample.
type quarantine struct {
	mu     sync.Mutex
	sample []QuarantinedRecord
}

func (q *quarantine) add(reason string, rec *logs.Record) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.sample) >= quarantineSampleCap {
		return
	}
	msg := rec.Message
	if len(msg) > 128 {
		msg = msg[:128]
	}
	q.sample = append(q.sample, QuarantinedRecord{Reason: reason, Time: rec.Time, Message: msg})
}

func (q *quarantine) snapshot() []QuarantinedRecord {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]QuarantinedRecord(nil), q.sample...)
}

// Quarantined returns up to quarantineSampleCap sampled malformed
// records diverted by the ingest stage (the full count is in the source
// stage's Quarantined counter).
func (p *Pipeline) Quarantined() []QuarantinedRecord { return p.quar.snapshot() }

// dedupRing is a bounded set of the last-N accepted record fingerprints.
// Membership is by 64-bit FNV-1a over every record field; a collision
// (~2^-64 per pair) drops a legitimate record, which the monitor's loss
// model already tolerates — the paper's signals are per-tick counts, not
// individual messages.
type dedupRing struct {
	ring []uint64
	seen map[uint64]int // fingerprint -> occurrences currently in ring
	head int
	n    int
}

func newDedupRing(window int) *dedupRing {
	return &dedupRing{ring: make([]uint64, window), seen: make(map[uint64]int, window)}
}

// observe reports whether key duplicates a remembered record; novel keys
// are inserted, evicting the oldest fingerprint once full.
func (d *dedupRing) observe(key uint64) (dup bool) {
	if d.seen[key] > 0 {
		return true
	}
	if d.n == len(d.ring) {
		old := d.ring[d.head]
		if c := d.seen[old]; c <= 1 {
			delete(d.seen, old)
		} else {
			d.seen[old] = c - 1
		}
	} else {
		d.n++
	}
	d.ring[d.head] = key
	d.head = (d.head + 1) % len(d.ring)
	d.seen[key]++
	return false
}

// keys returns the remembered fingerprints oldest first (snapshot use).
func (d *dedupRing) keys() []uint64 {
	if d.n == 0 {
		return nil
	}
	out := make([]uint64, 0, d.n)
	start := (d.head - d.n + len(d.ring)) % len(d.ring)
	for i := 0; i < d.n; i++ {
		out = append(out, d.ring[(start+i)%len(d.ring)])
	}
	return out
}

// restore refills the ring from a snapshot taken by keys.
func (d *dedupRing) restore(keys []uint64) {
	for _, k := range keys {
		if len(d.ring) > 0 {
			d.observe(k)
		}
	}
}

// fingerprint hashes every record field with FNV-1a.
func fingerprint(rec *logs.Record) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(rec.Time.UnixNano()))
	mix(uint64(int64(rec.Severity)))
	mix(uint64(int64(rec.EventID)))
	mix(uint64(int64(rec.Location.Rack))<<40 ^ uint64(int64(rec.Location.Midplane))<<32 ^
		uint64(int64(rec.Location.NodeCard))<<24 ^ uint64(int64(rec.Location.Card))<<16 ^
		uint64(int64(rec.Location.Slot))<<8 ^ uint64(int64(rec.Location.Unit)))
	for i := 0; i < len(rec.Location.Flat); i++ {
		h ^= uint64(rec.Location.Flat[i])
		h *= prime64
	}
	for i := 0; i < len(rec.Component); i++ {
		h ^= uint64(rec.Component[i])
		h *= prime64
	}
	for i := 0; i < len(rec.Message); i++ {
		h ^= uint64(rec.Message[i])
		h *= prime64
	}
	return h
}

// ingest classifies one record at the source stage: quarantine
// malformed input, suppress exact duplicates, admit the rest. It must be
// called from a single goroutine per driver (the source stage or Feed).
func (p *Pipeline) ingest(rec *logs.Record) (admitted bool) {
	c := &p.counters[stageSource]
	if reason := quarantineReason(rec); reason != "" {
		c.quarantined.Add(1)
		p.quar.add(reason, rec)
		return false
	}
	if p.dedup != nil && p.dedup.observe(fingerprint(rec)) {
		c.deduped.Add(1)
		return false
	}
	return true
}

// shouldShed implements overload shedding with hysteresis: shedding
// starts when the open ticks hold MaxBuffered records and stops once the
// buffer has drained to half. The flag is shared state so the match
// stage can flag predictions emitted while shedding.
func (p *Pipeline) shouldShed(buffered int) bool {
	max := p.cfg.MaxBuffered
	if max <= 0 {
		return false
	}
	if p.shedding.Load() {
		if buffered <= max/2 {
			p.shedding.Store(false)
			return false
		}
		return true
	}
	if buffered >= max {
		p.shedding.Store(true)
		return true
	}
	return false
}

// degradedNow reports whether the pipeline is currently in any degraded
// condition: overload shedding, or a stage breaker open.
func (p *Pipeline) degradedNow() bool {
	if p.shedding.Load() {
		return true
	}
	for _, sup := range p.sups {
		if sup != nil && sup.Degraded() {
			return true
		}
	}
	return false
}
