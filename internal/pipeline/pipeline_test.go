package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

// trainedFixture caches one trained model per seed: training dominates
// the suite's runtime (badly so under -race), and the model, profiles
// and stamped test window are read-only — every test builds its own
// engine on top.
type trainedFixture struct {
	model    *correlate.Model
	profiles map[string]*location.Profile
	test     []logs.Record
	cut, end time.Time
}

var (
	fixMu    sync.Mutex
	fixtures = map[int64]*trainedFixture{}
)

// trained builds (or reuses) a model, its profiles and a stamped test
// window from a seeded BG/L-profile log. The returned record slice is a
// fresh copy, safe for callers to reorder.
func trained(t testing.TB, seed int64) (*correlate.Model, map[string]*location.Profile, []logs.Record, time.Time, time.Time) {
	t.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	f := fixtures[seed]
	if f == nil {
		total := 6 * 24 * time.Hour
		cut := t0.Add(3 * 24 * time.Hour)
		res := gen.New(gen.BlueGeneL(), seed).Generate(t0, total)
		org := helo.New(0)
		org.Assign(res.Records)
		train, test, _ := res.Split(cut)
		model := correlate.Train(train, t0, cut, correlate.Hybrid, correlate.DefaultConfig())
		profiles := location.Extract(train, model.Chains, t0, model.Step, 1)
		f = &trainedFixture{model: model, profiles: profiles, test: test, cut: cut, end: res.End}
		fixtures[seed] = f
	}
	return f.model, f.profiles, append([]logs.Record(nil), f.test...), f.cut, f.end
}

func samePredictions(t *testing.T, got, want []predict.Prediction, gotName, wantName string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s emitted %d predictions, %s %d", gotName, len(got), wantName, len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("prediction %d differs:\n%s %+v\n%s %+v", i, gotName, got[i], wantName, want[i])
		}
	}
}

func TestRunMatchesEngineRun(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)

	ref := predict.NewEngine(model, profiles, predict.DefaultConfig()).Run(test, cut, end)

	p := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig())
	got, err := p.Run(context.Background(), logs.NewSliceSource(test), cut, end)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	samePredictions(t, got.Predictions, ref.Predictions, "pipeline", "engine")
	if got.Stats.Ticks != ref.Stats.Ticks {
		t.Errorf("Ticks = %d, want %d", got.Stats.Ticks, ref.Stats.Ticks)
	}
	if got.Stats.Messages != ref.Stats.Messages {
		t.Errorf("Messages = %d, want %d", got.Stats.Messages, ref.Stats.Messages)
	}
	if len(got.Stats.ChainsUsed) != len(ref.Stats.ChainsUsed) {
		t.Errorf("ChainsUsed = %d, want %d", len(got.Stats.ChainsUsed), len(ref.Stats.ChainsUsed))
	}
}

func TestRunStageCounters(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)
	p := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig())
	res, err := p.Run(context.Background(), logs.NewSliceSource(test), cut, end)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := res.Stats.Stages
	if len(st) != numStages {
		t.Fatalf("got %d stage rows, want %d", len(st), numStages)
	}
	byName := map[string]predict.StageStats{}
	for _, sg := range st {
		byName[sg.Name] = sg
	}
	if got := byName["source"].In; got != int64(len(test)) {
		t.Errorf("source in = %d, want %d", got, len(test))
	}
	if got := byName["template"].Out; got != int64(len(test)) {
		t.Errorf("template out = %d, want %d", got, len(test))
	}
	if got := byName["sample"].Out; got != int64(res.Stats.Ticks) {
		t.Errorf("sample out = %d ticks, want %d", got, res.Stats.Ticks)
	}
	if got := byName["filter"].In; got != int64(res.Stats.Ticks) {
		t.Errorf("filter in = %d ticks, want %d", got, res.Stats.Ticks)
	}
	if got := byName["match"].Out; got != int64(len(res.Predictions)) {
		t.Errorf("match out = %d, want %d predictions", got, len(res.Predictions))
	}
	if got := byName["sink"].Out; got != int64(len(res.Predictions)) {
		t.Errorf("sink out = %d, want %d predictions", got, len(res.Predictions))
	}
}

func TestRunBackpressureTinyBuffers(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)

	ref := predict.NewEngine(model, profiles, predict.DefaultConfig()).Run(test, cut, end)

	cfg := DefaultConfig()
	cfg.Buffer = 1 // every edge becomes a rendezvous-ish queue
	p := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, cfg)
	got, err := p.Run(context.Background(), logs.NewSliceSource(test), cut, end)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	samePredictions(t, got.Predictions, ref.Predictions, "buffered-1", "engine")
	// The observed queue depth can never exceed the bound (capacity plus
	// the item being handed over).
	for _, sg := range got.Stats.Stages {
		if sg.MaxQueue > cfg.Buffer+1 {
			t.Errorf("stage %s max queue %d exceeds bound %d", sg.Name, sg.MaxQueue, cfg.Buffer+1)
		}
	}
}

// endlessSource yields synthetic stamped records forever; it never
// exhausts, so only cancellation can end a Run over it.
type endlessSource struct {
	i    int
	base time.Time
}

func (s *endlessSource) Next() (logs.Record, bool) {
	r := logs.Record{
		Time:    s.base.Add(time.Duration(s.i) * 100 * time.Millisecond),
		EventID: s.i % 50,
	}
	s.i++
	return r, true
}

func (s *endlessSource) Err() error { return nil }

func TestRunCancellationTerminatesAllStages(t *testing.T) {
	model, profiles, _, _, _ := trained(t, 501)

	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		p := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig())
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		var res *predict.Result
		var err error
		//elsa:chanowner done
		go func() {
			defer close(done)
			res, err = p.Run(ctx, &endlessSource{base: t0}, t0, t0.Add(365*24*time.Hour))
		}()
		time.Sleep(20 * time.Millisecond) // let the stream spin up mid-run
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Run did not return after cancellation")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res == nil {
			t.Fatal("cancelled Run returned nil partial result")
		}
	}

	// All stage goroutines must be gone; allow the runtime a moment to
	// reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunSurfacesSourceError(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)
	wantErr := errors.New("tail interrupted")
	i := 0
	src := logs.NewFuncSource(func() (logs.Record, bool, error) {
		if i < len(test)/2 {
			r := test[i]
			i++
			return r, true, nil
		}
		return logs.Record{}, false, wantErr
	})
	p := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig())
	res, err := p.Run(context.Background(), src, cut, end)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if res == nil || res.Stats.Messages == 0 {
		t.Fatal("partial result missing")
	}
}

func TestRunDropsRecordsOutsideWindow(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)
	// Prepend and append records outside [cut, end): both must be dropped
	// by the sample stage without corrupting the replay.
	outside := append([]logs.Record{{Time: cut.Add(-time.Hour), EventID: 0}}, test...)
	outside = append(outside, logs.Record{Time: end.Add(time.Hour), EventID: 0})

	ref := predict.NewEngine(model, profiles, predict.DefaultConfig()).Run(test, cut, end)
	p := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, DefaultConfig())
	got, err := p.Run(context.Background(), logs.NewSliceSource(outside), cut, end)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	samePredictions(t, got.Predictions, ref.Predictions, "windowed", "engine")
	var sample predict.StageStats
	for _, sg := range got.Stats.Stages {
		if sg.Name == "sample" {
			sample = sg
		}
	}
	if sample.Dropped != 2 {
		t.Errorf("sample dropped = %d, want 2", sample.Dropped)
	}
}

func TestFilterShardingMatchesSequential(t *testing.T) {
	model, profiles, test, cut, end := trained(t, 501)

	seq := DefaultConfig()
	seq.Workers = 1
	p1 := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, seq)
	r1, err := p1.Run(context.Background(), logs.NewSliceSource(test), cut, end)
	if err != nil {
		t.Fatal(err)
	}

	wide := DefaultConfig()
	wide.Workers = 8
	p2 := New(predict.NewEngine(model, profiles, predict.DefaultConfig()), nil, wide)
	r2, err := p2.Run(context.Background(), logs.NewSliceSource(test), cut, end)
	if err != nil {
		t.Fatal(err)
	}
	samePredictions(t, r2.Predictions, r1.Predictions, "sharded", "sequential")
}
