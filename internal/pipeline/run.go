package pipeline

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/resilience"
)

// filteredTick carries a closed tick plus its outlier hits from the
// filter stage to the match/sink stage.
type filteredTick struct {
	batch tickBatch
	hits  []predict.Hit
}

// Run drives the full stage graph over a record source covering
// [start, end): one goroutine per stage, bounded channels between them,
// cancellation via ctx. It blocks until the source is exhausted and all
// ticks in the window are processed (trailing empty ticks included, so a
// replay is tick-for-tick identical to the live monitor), the context is
// cancelled, or the source fails.
//
// With Config.Supervise set, the template, filter and match stage loops
// run under a resilience.Supervisor: a stage-body panic restarts the
// loop after a jittered exponential backoff, and a stage that exhausts
// its failure budget degrades to a bypass loop (records flow unstamped,
// ticks yield no hits, or matching is skipped) with half-open probes —
// the run keeps going instead of crashing. Channel closes stay outside
// the supervised loops so a restart can never double-close an edge.
//
// The returned result is complete on nil error and partial otherwise;
// its Stats.Stages carry the per-stage counters either way. All stage
// goroutines are joined before Run returns — cancellation never leaks.
func (p *Pipeline) Run(ctx context.Context, src logs.RecordSource, start, end time.Time) (*predict.Result, error) {
	res := p.eng.NewResult()
	step := p.eng.Step()
	nTicks := 0
	if end.After(start) {
		nTicks = int(end.Sub(start) / step)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	recCh := make(chan logs.Record, p.cfg.Buffer)     // source → template
	stampedCh := make(chan logs.Record, p.cfg.Buffer) // template → sample
	tickCh := make(chan tickBatch, p.cfg.Buffer)      // sample → filter
	hitCh := make(chan filteredTick, p.cfg.Buffer)    // filter → match/sink

	var wg sync.WaitGroup

	// Source: pull records, divert malformed and duplicate ones, feed
	// the graph.
	wg.Add(1)
	//elsa:chanowner recCh
	go func() {
		defer wg.Done()
		defer close(recCh)
		c := &p.counters[stageSource]
		for {
			rec, ok := src.Next()
			if !ok {
				return
			}
			c.in.Add(1)
			if !p.ingest(&rec) {
				continue
			}
			select {
			case recCh <- rec:
				c.out.Add(1)
			case <-ctx.Done():
				return
			}
		}
	}()

	// TemplateAssign: stamp event ids via the organizer.
	wg.Add(1)
	//elsa:chanowner stampedCh
	go func() {
		defer wg.Done()
		defer close(stampedCh)
		c := &p.counters[stageTemplate]
		forward := func(rec logs.Record) bool {
			select {
			case stampedCh <- rec:
				return true
			case <-ctx.Done():
				return false
			}
		}
		loop := func() error {
			for {
				select {
				case rec, ok := <-recCh:
					if !ok {
						return nil
					}
					c.observeQueue(len(recCh) + 1)
					p.stamp(&rec)
					if !forward(rec) {
						return nil
					}
				case <-ctx.Done():
					return nil
				}
			}
		}
		sup := p.sups[stageTemplate]
		if sup == nil {
			loop()
			return
		}
		if err := sup.Run(ctx, loop); !errors.Is(err, resilience.ErrTripped) {
			return
		}
		// Degraded: keep records flowing through the per-record guard,
		// which bypasses (unstamped pass-through) while the breaker is
		// open and probes the organizer again after the cooldown.
		for {
			select {
			case rec, ok := <-recCh:
				if !ok {
					return
				}
				c.observeQueue(len(recCh) + 1)
				p.stampSafe(&rec)
				if !forward(rec) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Sample: fold records into ticks, closing them in order; shed new
	// records while the open ticks hold more than Config.MaxBuffered.
	smp := newSampler(start, step, p.cfg.GraceTicks, nTicks)
	wg.Add(1)
	//elsa:chanowner tickCh
	go func() {
		defer wg.Done()
		defer close(tickCh)
		c := &p.counters[stageSample]
		send := func(batches []tickBatch) bool {
			for _, b := range batches {
				select {
				case tickCh <- b:
					c.out.Add(1)
				case <-ctx.Done():
					return false
				}
			}
			return true
		}
		for {
			select {
			case rec, ok := <-stampedCh:
				if !ok {
					// Input done: seal the remaining window.
					if send(smp.flush()) {
						c.dropped.Store(smp.late + smp.outside)
					}
					return
				}
				c.observeQueue(len(stampedCh) + 1)
				if p.shouldShed(smp.buffered) {
					c.shed.Add(1)
					if !send(smp.bump(rec.Time)) {
						return
					}
					continue
				}
				c.in.Add(1)
				batches, accepted := smp.add(rec)
				if !accepted {
					c.dropped.Store(smp.late + smp.outside)
				}
				if !send(batches) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// OutlierFilter: sharded signal filtering per tick.
	wg.Add(1)
	//elsa:chanowner hitCh
	go func() {
		defer wg.Done()
		defer close(hitCh)
		fc := &p.counters[stageFilter]
		forward := func(b tickBatch, hits []predict.Hit) bool {
			select {
			case hitCh <- filteredTick{batch: b, hits: hits}:
				return true
			case <-ctx.Done():
				return false
			}
		}
		loop := func() error {
			for {
				select {
				case b, ok := <-tickCh:
					if !ok {
						return nil
					}
					fc.observeQueue(len(tickCh) + 1)
					if !forward(b, p.detect(b.sample, b.start)) {
						return nil
					}
				case <-ctx.Done():
					return nil
				}
			}
		}
		sup := p.sups[stageFilter]
		if sup == nil {
			loop()
			return
		}
		if err := sup.Run(ctx, loop); !errors.Is(err, resilience.ErrTripped) {
			return
		}
		// Degraded: ticks still flow so matching and expiry keep pace,
		// but yield no hits while the breaker is open.
		for {
			select {
			case b, ok := <-tickCh:
				if !ok {
					return
				}
				fc.observeQueue(len(tickCh) + 1)
				if !forward(b, p.detectSafe(b.sample, b.start)) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// ChainMatch + PredictionSink: strictly ordered, accumulates res.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := &p.counters[stageMatch]
		loop := func() error {
			for {
				select {
				case ft, ok := <-hitCh:
					if !ok {
						return nil
					}
					c.observeQueue(len(hitCh) + 1)
					p.match(ft.batch, ft.hits, res)
				case <-ctx.Done():
					return nil
				}
			}
		}
		sup := p.sups[stageMatch]
		if sup == nil {
			loop()
			return
		}
		if err := sup.Run(ctx, loop); !errors.Is(err, resilience.ErrTripped) {
			return
		}
		for {
			select {
			case ft, ok := <-hitCh:
				if !ok {
					return
				}
				c.observeQueue(len(hitCh) + 1)
				p.matchSafe(ft.batch, ft.hits, res)
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Wait()
	res.Stats.LateRecords += int(smp.late)
	p.fillStats(&res.Stats)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if err := src.Err(); err != nil {
		return res, err
	}
	return res, nil
}
