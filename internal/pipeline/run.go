package pipeline

import (
	"context"
	"sync"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
)

// filteredTick carries a closed tick plus its outlier hits from the
// filter stage to the match/sink stage.
type filteredTick struct {
	batch tickBatch
	hits  []predict.Hit
}

// Run drives the full stage graph over a record source covering
// [start, end): one goroutine per stage, bounded channels between them,
// cancellation via ctx. It blocks until the source is exhausted and all
// ticks in the window are processed (trailing empty ticks included, so a
// replay is tick-for-tick identical to the live monitor), the context is
// cancelled, or the source fails.
//
// The returned result is complete on nil error and partial otherwise;
// its Stats.Stages carry the per-stage counters either way. All stage
// goroutines are joined before Run returns — cancellation never leaks.
func (p *Pipeline) Run(ctx context.Context, src logs.RecordSource, start, end time.Time) (*predict.Result, error) {
	res := p.eng.NewResult()
	step := p.eng.Step()
	nTicks := 0
	if end.After(start) {
		nTicks = int(end.Sub(start) / step)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	recCh := make(chan logs.Record, p.cfg.Buffer)     // source → template
	stampedCh := make(chan logs.Record, p.cfg.Buffer) // template → sample
	tickCh := make(chan tickBatch, p.cfg.Buffer)      // sample → filter
	hitCh := make(chan filteredTick, p.cfg.Buffer)    // filter → match/sink

	var wg sync.WaitGroup

	// Source: pull records and feed the graph.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(recCh)
		c := &p.counters[stageSource]
		for {
			rec, ok := src.Next()
			if !ok {
				return
			}
			c.in.Add(1)
			select {
			case recCh <- rec:
				c.out.Add(1)
			case <-ctx.Done():
				return
			}
		}
	}()

	// TemplateAssign: stamp event ids via the organizer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stampedCh)
		c := &p.counters[stageTemplate]
		for {
			select {
			case rec, ok := <-recCh:
				if !ok {
					return
				}
				c.observeQueue(len(recCh) + 1)
				p.stamp(&rec)
				select {
				case stampedCh <- rec:
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Sample: fold records into ticks, closing them in order.
	smp := newSampler(start, step, p.cfg.GraceTicks, nTicks)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(tickCh)
		c := &p.counters[stageSample]
		send := func(batches []tickBatch) bool {
			for _, b := range batches {
				select {
				case tickCh <- b:
					c.out.Add(1)
				case <-ctx.Done():
					return false
				}
			}
			return true
		}
		for {
			select {
			case rec, ok := <-stampedCh:
				if !ok {
					// Input done: seal the remaining window.
					if send(smp.flush()) {
						c.dropped.Store(smp.late + smp.outside)
					}
					return
				}
				c.observeQueue(len(stampedCh) + 1)
				c.in.Add(1)
				batches, accepted := smp.add(rec)
				if !accepted {
					c.dropped.Store(smp.late + smp.outside)
				}
				if !send(batches) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// OutlierFilter: sharded signal filtering per tick.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(hitCh)
		fc := &p.counters[stageFilter]
		for {
			select {
			case b, ok := <-tickCh:
				if !ok {
					return
				}
				fc.observeQueue(len(tickCh) + 1)
				hits := p.detect(b.sample, b.start)
				select {
				case hitCh <- filteredTick{batch: b, hits: hits}:
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// ChainMatch + PredictionSink: strictly ordered, accumulates res.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := &p.counters[stageMatch]
		for {
			select {
			case ft, ok := <-hitCh:
				if !ok {
					return
				}
				c.observeQueue(len(hitCh) + 1)
				p.match(ft.batch, ft.hits, res)
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Wait()
	res.Stats.LateRecords += int(smp.late)
	res.Stats.Stages = p.Stats()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if err := src.Err(); err != nil {
		return res, err
	}
	return res, nil
}
