package pipeline

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/topology"
)

func TestQuarantineReasonClassifiesCorruption(t *testing.T) {
	now := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		rec  logs.Record
		want string
	}{
		{"clean", logs.Record{Time: now, EventID: 1, Message: "ciod error"}, ""},
		{"clean unstamped", logs.Record{Time: now, EventID: -1, Message: "new shape"}, ""},
		{"zero time", logs.Record{EventID: 1}, "zero timestamp"},
		{"absurd time", logs.Record{Time: time.Date(12345, 1, 1, 0, 0, 0, 0, time.UTC)}, "timestamp out of range"},
		{"bad event id", logs.Record{Time: now, EventID: -1337}, "invalid event id"},
		{"oversized", logs.Record{Time: now, Message: strings.Repeat("x", MaxMessageLen+1)}, "oversized message"},
		{"nul byte", logs.Record{Time: now, Message: "a\x00b"}, "NUL byte in message"},
		{"bad utf8", logs.Record{Time: now, Message: "a\xff\xfeb"}, "invalid UTF-8 in message"},
	}
	for _, tc := range cases {
		if got := quarantineReason(&tc.rec); got != tc.want {
			t.Errorf("%s: quarantineReason = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestDedupRingEvictsOldest(t *testing.T) {
	d := newDedupRing(3)
	for k := uint64(1); k <= 3; k++ {
		if d.observe(k) {
			t.Fatalf("fresh key %d reported duplicate", k)
		}
	}
	if !d.observe(2) {
		t.Fatal("remembered key 2 not reported duplicate")
	}
	// 2 was re-inserted, evicting 1 (oldest); 1 is novel again.
	if d.observe(4) {
		t.Fatal("fresh key 4 reported duplicate")
	}
	if d.observe(1) {
		t.Fatal("evicted key 1 still reported duplicate")
	}
}

func TestDedupRingSnapshotRoundTrip(t *testing.T) {
	d := newDedupRing(4)
	for k := uint64(10); k < 16; k++ { // overflows: keeps 12..15
		d.observe(k)
	}
	r := newDedupRing(4)
	r.restore(d.keys())
	for k := uint64(12); k < 16; k++ {
		if !r.observe(k) {
			t.Errorf("restored ring forgot key %d", k)
		}
	}
	if r.observe(11) {
		t.Error("restored ring remembers evicted key 11")
	}
}

func TestSessionQuarantinesMalformedRecords(t *testing.T) {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	s := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, DefaultConfig()).NewSession(t0)

	s.Feed(logs.Record{Time: t0.Add(5 * time.Second), EventID: 1, Location: node})
	s.Feed(logs.Record{EventID: 1, Location: node})                                     // zero time
	s.Feed(logs.Record{Time: t0.Add(6 * time.Second), EventID: -9, Location: node})     // bad id
	s.Feed(logs.Record{Time: t0.Add(7 * time.Second), Message: "a\x00b", EventID: 1})   // NUL
	s.Feed(logs.Record{Time: t0.Add(8 * time.Second), Message: "\xff\xfe", EventID: 1}) // bad UTF-8

	res := s.Close()
	if res.Stats.QuarantinedRecords != 4 {
		t.Errorf("QuarantinedRecords = %d, want 4", res.Stats.QuarantinedRecords)
	}
	if res.Stats.Messages != 1 {
		t.Errorf("Messages = %d, want 1 (quarantined records must not be sampled)", res.Stats.Messages)
	}
	if got := res.Stats.Stages[stageSource].Quarantined; got != 4 {
		t.Errorf("source stage Quarantined = %d, want 4", got)
	}
	sample := s.p.Quarantined()
	if len(sample) != 4 {
		t.Fatalf("quarantine sample holds %d records, want 4", len(sample))
	}
	if sample[0].Reason != "zero timestamp" {
		t.Errorf("first sampled reason = %q, want %q", sample[0].Reason, "zero timestamp")
	}
}

func TestSessionDedupSuppressesExactDuplicateBursts(t *testing.T) {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	cfg := DefaultConfig()
	cfg.DedupWindow = 64
	s := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, cfg).NewSession(t0)

	burst := logs.Record{Time: t0.Add(5 * time.Second), EventID: 1, Location: node, Message: "retry storm"}
	for i := 0; i < 5; i++ {
		s.Feed(burst)
	}
	// Any differing field makes the record novel again.
	other := burst
	other.Message = "retry storm 2"
	s.Feed(other)

	res := s.Close()
	if res.Stats.DedupedRecords != 4 {
		t.Errorf("DedupedRecords = %d, want 4", res.Stats.DedupedRecords)
	}
	if res.Stats.Messages != 2 {
		t.Errorf("Messages = %d, want 2 (one per distinct record)", res.Stats.Messages)
	}
}

func TestSessionShedsUnderOverloadAndRecovers(t *testing.T) {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	cfg := DefaultConfig()
	cfg.MaxBuffered = 8
	s := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, cfg).NewSession(t0)

	var preds []predict.Prediction
	// The chain trigger, then a flood that fills the open-tick buffer.
	preds = append(preds, feedOK(t, s, logs.Record{Time: t0.Add(5 * time.Second), EventID: 1, Location: node})...)
	for i := 0; i < 9; i++ {
		preds = append(preds, feedOK(t, s, logs.Record{
			Time: t0.Add(6 * time.Second), EventID: 3, Location: node,
			Message: fmt.Sprintf("flood %d", i),
		})...)
	}
	// Buffer full: this record is shed, but its timestamp still closes
	// ticks — including tick 0, whose trigger fires a degraded prediction.
	preds = append(preds, feedOK(t, s, logs.Record{Time: t0.Add(65 * time.Second), EventID: 2, Location: node})...)

	if len(preds) != 1 {
		t.Fatalf("predictions = %d, want 1", len(preds))
	}
	if !preds[0].Degraded {
		t.Error("prediction fired while shedding is not flagged Degraded")
	}

	// The flood drained with tick 0; shedding clears below half the bound
	// and clean operation resumes: a fresh trigger fires undegraded.
	preds = preds[:0]
	preds = append(preds, feedOK(t, s, logs.Record{Time: t0.Add(85 * time.Second), EventID: 1, Location: node})...)
	preds = append(preds, s.AdvanceTo(t0.Add(200*time.Second))...)
	if len(preds) != 1 {
		t.Fatalf("post-recovery predictions = %d, want 1", len(preds))
	}
	if preds[0].Degraded {
		t.Error("prediction after recovery still flagged Degraded")
	}

	res := s.Close()
	if res.Stats.ShedRecords != 3 {
		t.Errorf("ShedRecords = %d, want 3", res.Stats.ShedRecords)
	}
	if !res.Stats.Degraded {
		t.Error("Stats.Degraded not set for a run that shed load")
	}
	if res.Stats.DegradedTicks == 0 {
		t.Error("DegradedTicks = 0, want > 0")
	}
}

// panickyLearner is a TemplateLearner whose implementation is broken.
type panickyLearner struct{ calls int }

func (p *panickyLearner) Learn(msg string, sev logs.Severity) *helo.Template {
	p.calls++
	panic("organizer bug")
}

func TestSupervisedTemplateStagePanicsDegradeNotCrash(t *testing.T) {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	org := &panickyLearner{}
	s := New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), org, DefaultConfig()).NewSession(t0)

	// Unstamped records force the organizer; every call panics. The
	// stream must keep flowing: panics are recovered and counted until
	// the breaker trips, then records pass through unstamped.
	for i := 0; i < 8; i++ {
		s.Feed(logs.Record{
			Time: t0.Add(time.Duration(i) * time.Second), EventID: -1,
			Location: node, Message: "unseen shape",
		})
	}
	res := s.Close()
	st := res.Stats.Stages[stageTemplate]
	if st.Panics != 5 { // resilience.DefaultMaxFailures
		t.Errorf("template Panics = %d, want 5", st.Panics)
	}
	if st.Bypassed != 3 {
		t.Errorf("template Bypassed = %d, want 3", st.Bypassed)
	}
	if st.Health != "degraded" {
		t.Errorf("template Health = %q, want %q", st.Health, "degraded")
	}
	if org.calls != 5 {
		t.Errorf("organizer invoked %d times, want 5 (breaker must bypass after trip)", org.calls)
	}
	// Unstamped records carry no signal; nothing was sampled, nothing
	// fired, and — the point — nothing crashed.
	if res.Stats.Messages != 0 {
		t.Errorf("Messages = %d, want 0", res.Stats.Messages)
	}
	if !res.Stats.Degraded {
		t.Error("Stats.Degraded not set with a tripped stage breaker")
	}
}
