package pipeline

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
)

// tickBatch is one closed sampling tick flowing from the Sample stage to
// the OutlierFilter stage.
type tickBatch struct {
	idx        int
	start, end time.Time
	sample     *predict.Tick
}

// sampler is the Sample/Signal stage body: it folds records into
// per-tick aggregates and decides when a tick is closed.
//
// Ordering contract: record timestamps are treated as an unreliable
// clock. A tick closes only once a record stamped at least GraceTicks
// full steps past its end has been seen (high-water mark), so records up
// to GraceTicks late still land in their open tick. Records older than
// the newest closed tick are dropped and counted — they can no longer be
// sampled without corrupting already-filtered signal state. Explicit
// wall-clock advancement (advanceTo) is authoritative and closes ticks
// without grace.
//
//elsa:snapshot
type sampler struct {
	origin time.Time
	step   time.Duration
	grace  int
	//elsa:ephemeral run-window bound is a constructor argument; resumed sessions are always unbounded
	limit int // ticks in the run window; < 0 means unbounded (live session)

	next int // next tick index to close
	hw   time.Time
	open map[int]*predict.Tick
	//elsa:ephemeral derived from the open tick aggregates; recomputed on resume
	buffered int // records currently held in open ticks

	late    int64 // dropped: older than the newest closed tick
	outside int64 // dropped: outside the [start, end) run window
}

// newSampler is also the first half of the resume path: ResumeSession
// rebuilds the cursor through it before overlaying the snapshot fields.
//
//elsa:snapshotter decode
func newSampler(origin time.Time, step time.Duration, grace, limit int) *sampler {
	return &sampler{
		origin: origin,
		step:   step,
		grace:  grace,
		limit:  limit,
		open:   make(map[int]*predict.Tick),
	}
}

func (s *sampler) tickStart(idx int) time.Time {
	return s.origin.Add(time.Duration(idx) * s.step)
}

// add folds one record in and returns the ticks its arrival closed, in
// order. ok is false when the record was dropped.
func (s *sampler) add(rec logs.Record) (ready []tickBatch, ok bool) {
	if rec.Time.Before(s.origin) {
		s.outside++
		return nil, false
	}
	idx := int(rec.Time.Sub(s.origin) / s.step)
	if s.limit >= 0 && idx >= s.limit {
		s.outside++
		return nil, false
	}
	if idx < s.next {
		s.late++
		return nil, false
	}
	t := s.open[idx]
	if t == nil {
		t = predict.NewTick()
		s.open[idx] = t
	}
	n0 := t.N
	t.Add(rec)
	s.buffered += t.N - n0
	if rec.Time.After(s.hw) {
		s.hw = rec.Time
	}
	// Close every tick whose grace window the high-water mark has passed:
	// tick i closes once hw >= end(i) + grace*step.
	for !s.hw.Before(s.tickStart(s.next + 1 + s.grace)) {
		ready = append(ready, s.closeNext())
	}
	return ready, true
}

// bump advances the high-water mark without sampling a record, closing
// any ticks whose grace window it passed. The overload-shedding path
// uses it: a flood's records are dropped, but their timestamps still
// drive tick progress so the buffer drains and shedding can stop.
func (s *sampler) bump(ts time.Time) (ready []tickBatch) {
	if ts.After(s.hw) {
		s.hw = ts
	}
	for !s.hw.Before(s.tickStart(s.next + 1 + s.grace)) {
		if s.limit >= 0 && s.next >= s.limit {
			break
		}
		ready = append(ready, s.closeNext())
	}
	return ready
}

// advanceTo closes every tick that ends at or before now — the wall
// clock is authoritative, so no grace applies. Call it periodically
// during quiet spells so chain expiry keeps pace with real time.
func (s *sampler) advanceTo(now time.Time) (ready []tickBatch) {
	for {
		if s.limit >= 0 && s.next >= s.limit {
			return ready
		}
		if now.Before(s.tickStart(s.next + 1)) {
			return ready
		}
		ready = append(ready, s.closeNext())
	}
}

// flush closes everything still pending: through the run window's end
// when bounded (emitting trailing empty ticks so signal state evolves
// exactly as a full replay), or through the last tick holding records
// when unbounded.
func (s *sampler) flush() (ready []tickBatch) {
	target := s.limit
	if s.limit < 0 {
		target = s.next
		for idx := range s.open {
			if idx >= target {
				target = idx + 1
			}
		}
	}
	for s.next < target {
		ready = append(ready, s.closeNext())
	}
	return ready
}

// closeNext seals the next tick (empty if no records landed in it).
func (s *sampler) closeNext() tickBatch {
	idx := s.next
	t := s.open[idx]
	if t == nil {
		t = predict.NewTick()
	} else {
		delete(s.open, idx)
		s.buffered -= t.N
	}
	s.next++
	return tickBatch{idx: idx, start: s.tickStart(idx), end: s.tickStart(idx + 1), sample: t}
}
