package pipeline

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// The benchmarks share one trained BG/L-profile model: training is
// seconds of work and must not pollute per-op timings.
var (
	benchOnce     sync.Once
	benchModel    *correlate.Model
	benchProfiles map[string]*location.Profile
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchModel, benchProfiles, _, _, _ = trained(b, 501)
	})
}

// syntheticStream emits stamped records at a constant rate over dur,
// cycling event ids and node locations — the paper's §VI.A traffic
// profiles (5 msg/s sustained, ~100 msg/s bursts) without generator
// noise, so the benchmark isolates pipeline cost.
func syntheticStream(start time.Time, rate int, dur time.Duration, events int) []logs.Record {
	locs := []topology.Location{
		topology.MustParse("R00-M0-N0-C:J02-U01"),
		topology.MustParse("R01-M1-N2-C:J05-U11"),
		topology.MustParse("R02-M0-N3-C:J00-U01"),
	}
	n := int(dur.Seconds()) * rate
	gap := time.Second / time.Duration(rate)
	out := make([]logs.Record, n)
	for i := range out {
		out[i] = logs.Record{
			Time:     start.Add(time.Duration(i) * gap),
			Severity: logs.Info,
			Location: locs[i%len(locs)],
			EventID:  i % events,
		}
	}
	return out
}

// BenchmarkPipelineThroughput measures sustained records/sec through the
// full async stage graph at the paper's average and burst message rates,
// with allocation counts — the baseline later perf PRs diff against.
func BenchmarkPipelineThroughput(b *testing.B) {
	benchSetup(b)
	for _, bc := range []struct {
		name string
		rate int
	}{
		{"avg5msgs", 5},
		{"burst100msgs", 100},
	} {
		b.Run(bc.name, func(b *testing.B) {
			start := t0.Add(30 * 24 * time.Hour)
			dur := 10 * time.Minute
			events := len(benchModel.Profiles)
			if events == 0 {
				events = 200
			}
			recs := syntheticStream(start, bc.rate, dur, events)
			end := start.Add(dur)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := predict.NewEngine(benchModel, benchProfiles, predict.DefaultConfig())
				p := New(eng, nil, DefaultConfig())
				res, err := p.Run(context.Background(), logs.NewSliceSource(recs), start, end)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Messages != len(recs) {
					b.Fatalf("processed %d of %d records", res.Stats.Messages, len(recs))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(recs)*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkMonitorFeed measures the synchronous per-record ingest path
// (the live monitor's Feed) at burst rate.
func BenchmarkMonitorFeed(b *testing.B) {
	benchSetup(b)
	start := t0.Add(30 * 24 * time.Hour)
	recs := syntheticStream(start, 100, 10*time.Minute, max(len(benchModel.Profiles), 1))
	b.ReportAllocs()
	b.ResetTimer()
	fed := 0
	for i := 0; i < b.N; i++ {
		eng := predict.NewEngine(benchModel, benchProfiles, predict.DefaultConfig())
		s := New(eng, nil, DefaultConfig()).NewSession(start)
		for _, r := range recs {
			s.Feed(r)
		}
		s.Close()
		fed += len(recs)
	}
	b.StopTimer()
	b.ReportMetric(float64(fed)/b.Elapsed().Seconds(), "records/s")
}
