// Package gen synthesises HPC system logs with known ground truth. It
// stands in for the gated evaluation data (Blue Gene/L RAS logs and NCSA
// Mercury logs): a machine profile describes background daemons and fault
// archetypes, and the generator produces a time-ordered record stream plus
// the list of injected failures the prediction experiments score against.
//
// The archetypes encode the failure behaviours the paper reports:
//
//   - memory faults announce themselves with a burst of correctable-error
//     messages about a minute ahead and propagate within a midplane;
//   - node-card faults produce warning/severe cascades up to an hour ahead
//     and stay on one node card;
//   - network/NFS faults strike near-simultaneously on many nodes with
//     weak precursors (and generate the message bursts that stress the
//     online analysis);
//   - cache faults have unreliable precursors seconds ahead;
//   - CIODB/job-control faults emit everything at the same instant (no
//     prediction window);
//   - restart and multiline sequences are correlated but informational.
package gen

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// DaemonSpec describes one background message source.
type DaemonSpec struct {
	Name      string
	Component string
	Message   string
	Severity  logs.Severity

	// Period > 0 makes the daemon strictly periodic; otherwise it emits
	// Poisson chatter at Rate events per second.
	Period time.Duration
	Rate   float64

	// PerNode daemons emit from a fresh random node each time; otherwise
	// they emit from the fixed service location.
	PerNode bool

	// PerRack daemons emit one periodic message per rack (heartbeats);
	// each rack keeps its own phase. Requires Period > 0. A fault with
	// SilenceRack set mutes the origin rack's PerRack daemons — the
	// paper's "node crash = lack of messages" syndrome.
	PerRack bool
}

// EventSpec is one message of a fault cascade.
type EventSpec struct {
	Message   string
	Component string
	Severity  logs.Severity

	// Delay is the mean gap after the previous cascade event; Jitter is
	// the lognormal sigma applied to it (0 = deterministic).
	Delay  time.Duration
	Jitter float64

	// Burst emits this many copies of the message (minimum 1).
	Burst int

	// Scope places copies within this scope of the fault origin; FanOut
	// is how many distinct locations are hit (minimum 1 = origin only).
	Scope  topology.Scope
	FanOut int
}

// FaultArchetype describes one failure mode of the machine.
type FaultArchetype struct {
	Name     string // unique key, e.g. "memory"
	Category string // reporting category for the recall breakdown

	// MTBF is the system-wide mean time between faults of this type.
	MTBF time.Duration

	// Precursors is the symptom cascade; PrecursorProb is the probability
	// that a given fault instance shows it at all (unheralded instances
	// are unpredictable by construction).
	Precursors    []EventSpec
	PrecursorProb float64

	// Final is the failure (or terminal) event of the cascade.
	Final EventSpec

	// IsFailure distinguishes real faults from informational sequences
	// (restarts, multiline messages) that correlate but predict nothing.
	IsFailure bool

	// OriginScope is the granularity at which the fault strikes: a node,
	// a node card, or the whole system (service-level faults).
	OriginScope topology.Scope

	// SilenceRack mutes the origin rack's PerRack daemons for this long,
	// starting at the fault instant: the crash's only early symptom is
	// the missing heartbeats.
	SilenceRack time.Duration
}

// Profile bundles a machine with its behaviour.
type Profile struct {
	Name       string
	Machine    topology.Machine
	Daemons    []DaemonSpec
	Archetypes []FaultArchetype
}

// BlueGeneL returns the Blue Gene/L-style profile used by most
// experiments. Message texts follow the templates listed in the paper's
// tables.
func BlueGeneL() Profile {
	m := topology.BlueGeneL()
	return Profile{
		Name:    "bgl",
		Machine: m,
		Daemons: []DaemonSpec{
			{Name: "health", Component: "MMCS", Severity: logs.Info,
				Message: "node health check completed for partition d+", Period: 5 * time.Minute},
			{Name: "envpoll", Component: "MONITOR", Severity: logs.Info,
				Message: "environmental poll fan speed reading d+ rpm", Period: 10 * time.Minute},
			{Name: "clockpoll", Component: "MONITOR", Severity: logs.Info,
				Message: "clock card heartbeat sequence d+ acknowledged", Period: 7 * time.Minute},
			{Name: "jobchatter", Component: "CIODB", Severity: logs.Info,
				Message: "job d+ state change recorded", Rate: 0.05, PerNode: false},
			{Name: "kernelchatter", Component: "KERNEL", Severity: logs.Info,
				Message: "packet retransmit count d+", Rate: 0.12, PerNode: true},
			{Name: "console", Component: "KERNEL", Severity: logs.Info,
				Message: "console output flushed to buffer d+", Rate: 0.08, PerNode: true},
			{Name: "torusstats", Component: "KERNEL", Severity: logs.Info,
				Message: "torus receiver * acked d+ packets", Rate: 0.04, PerNode: true},
			{Name: "idopackets", Component: "IDO", Severity: logs.Info,
				Message: "ido packet statistics: d+ sent d+ received", Period: 15 * time.Minute},
			{Name: "partition", Component: "MMCS", Severity: logs.Info,
				Message: "partition * boot sequence completed in d+ seconds", Rate: 0.01},
			{Name: "ciodbheartbeat", Component: "CIODB", Severity: logs.Info,
				Message: "ciodb heartbeat ok connections d+", Period: 4 * time.Minute},
			{Name: "envtemp", Component: "MONITOR", Severity: logs.Info,
				Message: "ambient temperature reading d+ dC on rack *", Rate: 0.02, PerNode: true},
			{Name: "linkpoll", Component: "LINKCARD", Severity: logs.Info,
				Message: "link card poll status ok port d+", Rate: 0.03, PerNode: true},
			{Name: "rackwatch", Component: "MONITOR", Severity: logs.Info,
				Message: "rack watchdog heartbeat ok slot d+", Period: 2 * time.Minute, PerRack: true},
		},
		Archetypes: []FaultArchetype{
			{
				Name: "memory", Category: "memory", MTBF: 4 * time.Hour,
				PrecursorProb: 0.85, IsFailure: true, OriginScope: topology.ScopeNode,
				Precursors: []EventSpec{
					{Message: "correctable error detected in directory 0xd+", Component: "KERNEL",
						Severity: logs.Warning, Delay: 0, Burst: 4},
					{Message: "ddr failing data registers: d+ d+", Component: "KERNEL",
						Severity: logs.Error, Delay: 25 * time.Second, Jitter: 0.25},
					{Message: "number of correctable errors detected in l3 edrams d+", Component: "KERNEL",
						Severity: logs.Warning, Delay: 20 * time.Second, Jitter: 0.25},
				},
				Final: EventSpec{Message: "uncorrectable error detected in directory 0xd+", Component: "KERNEL",
					Severity: logs.Failure, Delay: 45 * time.Second, Jitter: 0.25,
					Scope: topology.ScopeMidplane, FanOut: 3},
			},
			{
				Name: "nodecard", Category: "nodecard", MTBF: 9 * time.Hour,
				PrecursorProb: 0.92, IsFailure: true, OriginScope: topology.ScopeNodeCard,
				Precursors: []EventSpec{
					{Message: "endserviceaction is restarting the nodecards in midplane * as part of service action d+",
						Component: "SERVICE", Severity: logs.Warning, Delay: 0},
					{Message: "node card vpd check: node in processor card slot d+ do not match. vpd ecid d+ found d+",
						Component: "SERVICE", Severity: logs.Severe, Delay: 14 * time.Minute, Jitter: 0.1},
					{Message: "link card power module d+ is not accessible",
						Component: "LINKCARD", Severity: logs.Severe, Delay: 18 * time.Minute, Jitter: 0.1},
				},
				Final: EventSpec{Message: "no power module d+ found on link card; temperature over limit",
					Component: "LINKCARD", Severity: logs.Failure, Delay: 25 * time.Minute, Jitter: 0.1},
			},
			{
				Name: "network", Category: "network", MTBF: 3 * time.Hour,
				PrecursorProb: 0.3, IsFailure: true, OriginScope: topology.ScopeRack,
				Precursors: []EventSpec{
					{Message: "rts: tree/torus link training failed wire d+", Component: "KERNEL",
						Severity: logs.Warning, Delay: 0, Burst: 2},
				},
				Final: EventSpec{Message: "rpc: bad tcp reclen d+ (non-terminal)", Component: "NFS",
					Severity: logs.Failure, Delay: 30 * time.Second, Jitter: 0.2,
					Burst: 2, Scope: topology.ScopeRack, FanOut: 40},
			},
			{
				Name: "cache", Category: "cache", MTBF: 150 * time.Minute,
				PrecursorProb: 0.34, IsFailure: true, OriginScope: topology.ScopeNode,
				Precursors: []EventSpec{
					{Message: "instruction cache parity error corrected", Component: "KERNEL",
						Severity: logs.Warning, Delay: 0},
				},
				Final: EventSpec{Message: "l3 major internal error", Component: "KERNEL",
					Severity: logs.Failure, Delay: 100 * time.Second, Jitter: 0.25},
			},
			{
				// A slow midplane power degradation: the long cascade the
				// paper's Figure 5 tail (sequences of more than 8 events)
				// and hour-scale prediction windows come from.
				Name: "midplanepower", Category: "power", MTBF: 12 * time.Hour,
				PrecursorProb: 0.88, IsFailure: true, OriginScope: topology.ScopeMidplane,
				Precursors: []EventSpec{
					{Message: "bulk power module status warning bank d+", Component: "MONITOR",
						Severity: logs.Warning, Delay: 0},
					{Message: "voltage on midplane * below nominal d+ mv", Component: "MONITOR",
						Severity: logs.Warning, Delay: 30 * time.Second, Jitter: 0.1},
					{Message: "fan speed increased to d+ rpm on midplane *", Component: "MONITOR",
						Severity: logs.Info, Delay: 20 * time.Second, Jitter: 0.1},
					{Message: "temperature sensor d+ reading high on node card *", Component: "MONITOR",
						Severity: logs.Warning, Delay: 40 * time.Second, Jitter: 0.1},
					{Message: "bulk power module d+ current limit warning", Component: "MONITOR",
						Severity: logs.Warning, Delay: 30 * time.Second, Jitter: 0.1},
					{Message: "dc-dc converter d+ ripple above threshold", Component: "MONITOR",
						Severity: logs.Warning, Delay: 20 * time.Second, Jitter: 0.1},
					{Message: "node card * reporting throttled clocks", Component: "KERNEL",
						Severity: logs.Warning, Delay: 40 * time.Second, Jitter: 0.1},
					{Message: "redundant power supply d+ offline on midplane *", Component: "MONITOR",
						Severity: logs.Severe, Delay: 30 * time.Second, Jitter: 0.1},
				},
				Final: EventSpec{Message: "midplane * shutdown due to power fault", Component: "MONITOR",
					Severity: logs.Failure, Delay: 45 * time.Second, Jitter: 0.1,
					Scope: topology.ScopeMidplane, FanOut: 6},
			},
			{
				Name: "ciodb", Category: "io", MTBF: 7 * time.Hour,
				PrecursorProb: 0.55, IsFailure: true, OriginScope: topology.ScopeSystem,
				Precursors: []EventSpec{
					{Message: "ciodb exited abnormally due to signal: aborted", Component: "CIODB",
						Severity: logs.Failure, Delay: 0},
					{Message: "mmcs server exited abnormally due to signal: d+", Component: "MMCS",
						Severity: logs.Failure, Delay: 0},
				},
				Final: EventSpec{Message: "job d+ timed out. n+", Component: "CIODB",
					Severity: logs.Severe, Delay: 0},
			},
			{
				// A rack service-network crash: no precursor messages at
				// all — the rack simply goes quiet (heartbeats stop) and
				// the operators' environmental monitor only notices
				// minutes later. Absence detection is the only way to
				// catch it early.
				Name: "rackcrash", Category: "crash", MTBF: 30 * time.Hour,
				PrecursorProb: 0, IsFailure: true, OriginScope: topology.ScopeRack,
				SilenceRack: 30 * time.Minute,
				Final: EventSpec{Message: "environmental monitor lost contact with rack *", Component: "SERVICE",
					Severity: logs.Severe, Delay: 10 * time.Minute, Jitter: 0.1},
			},
			{
				Name: "restart", Category: "restart", MTBF: 5 * time.Hour,
				PrecursorProb: 0.97, IsFailure: false, OriginScope: topology.ScopeSystem,
				Precursors: []EventSpec{
					{Message: "idoproxydb has been started: $name: d+ $ input parameters: -enableflush -loguserinfo db.properties bluegene1",
						Component: "IDO", Severity: logs.Info, Delay: 0},
					{Message: "ciodb has been restarted.", Component: "CIODB",
						Severity: logs.Info, Delay: 8 * time.Second, Jitter: 0.2},
					{Message: "bglmaster has been started: ./bglmaster --consoleip 127.0.0.1 --consoleport d+ --autorestart y",
						Component: "MASTER", Severity: logs.Info, Delay: 6 * time.Second, Jitter: 0.2},
				},
				Final: EventSpec{Message: "mmcs db server has been started: ./mmcs db server --usedatabase bgl --reconnect-blocks all n+",
					Component: "MMCS", Severity: logs.Info, Delay: 7 * time.Second, Jitter: 0.2},
			},
			{
				Name: "multiline", Category: "info", MTBF: 2 * time.Hour,
				PrecursorProb: 1, IsFailure: false, OriginScope: topology.ScopeNode,
				Precursors: []EventSpec{
					{Message: "general purpose registers:", Component: "KERNEL",
						Severity: logs.Info, Delay: 0},
				},
				Final: EventSpec{Message: "lr:d+ cr:d+ xer:d+ ctr:d+", Component: "KERNEL",
					Severity: logs.Info, Delay: 0},
			},
		},
	}
}

// Mercury returns the flat-cluster profile modelled on the NCSA Mercury
// system: NFS global failures, unexpected node restarts, and a different
// background mix.
func Mercury() Profile {
	m := topology.Mercury()
	return Profile{
		Name:    "mercury",
		Machine: m,
		Daemons: []DaemonSpec{
			{Name: "cron", Component: "CRON", Severity: logs.Info,
				Message: "cron job d+ completed", Period: 10 * time.Minute},
			{Name: "syslog", Component: "SYSLOG", Severity: logs.Info,
				Message: "syslog-ng statistics processed d+ messages", Period: 10 * time.Minute},
			{Name: "netchatter", Component: "NET", Severity: logs.Info,
				Message: "eth0 link status poll ok latency d+ us", Rate: 0.1, PerNode: true},
			{Name: "pbs", Component: "PBS", Severity: logs.Info,
				Message: "pbs_mom session d+ started", Rate: 0.05, PerNode: true},
			{Name: "pbsend", Component: "PBS", Severity: logs.Info,
				Message: "pbs_mom session d+ exited status d+", Rate: 0.05, PerNode: true},
			{Name: "nfsstat", Component: "NFS", Severity: logs.Info,
				Message: "nfs client statistics d+ ops d+ retrans", Period: 5 * time.Minute},
			{Name: "sensors", Component: "HW", Severity: logs.Info,
				Message: "lm_sensors cpu temperature d+ dC", Rate: 0.04, PerNode: true},
			{Name: "sshd", Component: "SSHD", Severity: logs.Info,
				Message: "accepted publickey for user d+ from d+ port d+", Rate: 0.02, PerNode: true},
		},
		Archetypes: []FaultArchetype{
			{
				Name: "nfs", Category: "network", MTBF: 5 * time.Hour,
				PrecursorProb: 0.3, IsFailure: true, OriginScope: topology.ScopeSystem,
				Precursors: []EventSpec{
					{Message: "nfs server not responding timed out", Component: "NFS",
						Severity: logs.Warning, Delay: 0, Burst: 3},
				},
				Final: EventSpec{Message: "rpc: bad tcp reclen d+ (non-terminal)", Component: "NFS",
					Severity: logs.Failure, Delay: 10 * time.Second, Jitter: 0.3,
					Burst: 2, Scope: topology.ScopeSystem, FanOut: 80},
			},
			{
				Name: "noderestart", Category: "node", MTBF: 3 * time.Hour,
				PrecursorProb: 0.5, IsFailure: true, OriginScope: topology.ScopeNode,
				Precursors: []EventSpec{
					{Message: "kernel: mce machine check event logged bank d+", Component: "KERNEL",
						Severity: logs.Warning, Delay: 0},
				},
				Final: EventSpec{Message: "ifup: could not get a valid interface name: -> skipped",
					Component: "NET", Severity: logs.Failure, Delay: 45 * time.Second, Jitter: 0.15,
					Scope: topology.ScopeSystem, FanOut: 4},
			},
			{
				Name: "disk", Category: "storage", MTBF: 8 * time.Hour,
				PrecursorProb: 0.7, IsFailure: true, OriginScope: topology.ScopeNode,
				Precursors: []EventSpec{
					{Message: "scsi: aborting command due to timeout id d+", Component: "SCSI",
						Severity: logs.Warning, Delay: 0, Burst: 2},
					{Message: "ext3-fs error: unable to read inode block d+", Component: "FS",
						Severity: logs.Severe, Delay: 3 * time.Minute, Jitter: 0.12},
				},
				Final: EventSpec{Message: "journal commit i/o error on device sdd+", Component: "FS",
					Severity: logs.Failure, Delay: 5 * time.Minute, Jitter: 0.12},
			},
			{
				Name: "pbsrestart", Category: "restart", MTBF: 6 * time.Hour,
				PrecursorProb: 0.95, IsFailure: false, OriginScope: topology.ScopeNode,
				Precursors: []EventSpec{
					{Message: "pbs_mom shutdown requested by operator", Component: "PBS",
						Severity: logs.Info, Delay: 0},
				},
				Final: EventSpec{Message: "pbs_mom restarted pid d+", Component: "PBS",
					Severity: logs.Info, Delay: 12 * time.Second, Jitter: 0.2},
			},
		},
	}
}
