package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/stats"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// FailureRecord is one injected fault instance: the ground truth the
// prediction experiments score against.
type FailureRecord struct {
	Time      time.Time // time of the terminal failure event
	Archetype string
	Category  string
	Heralded  bool // whether the precursor cascade was emitted
	Origin    topology.Location
	Locations []topology.Location // components hit by the failure event
}

// Result is a generated log plus its ground truth.
type Result struct {
	Profile  string
	Start    time.Time
	End      time.Time
	Records  []logs.Record
	Failures []FailureRecord
}

// Split partitions the records at time cut: Train gets [Start, cut), Test
// gets [cut, End), and TestFailures the ground-truth faults in the test
// window.
func (r *Result) Split(cut time.Time) (train, test []logs.Record, testFailures []FailureRecord) {
	i := sort.Search(len(r.Records), func(k int) bool { return !r.Records[k].Time.Before(cut) })
	train, test = r.Records[:i], r.Records[i:]
	for _, f := range r.Failures {
		if !f.Time.Before(cut) {
			testFailures = append(testFailures, f)
		}
	}
	return train, test, testFailures
}

// Generator produces synthetic logs for one profile.
type Generator struct {
	prof Profile
	rng  *rand.Rand

	// silences holds per-rack heartbeat-suppression windows collected
	// while emitting fault cascades.
	silences map[int][]interval
}

// interval is a half-open time window.
type interval struct{ from, to time.Time }

// New returns a deterministic generator for the profile and seed.
func New(prof Profile, seed int64) *Generator {
	return &Generator{
		prof:     prof,
		rng:      rand.New(rand.NewSource(seed)),
		silences: make(map[int][]interval),
	}
}

// Generate produces the log for [start, start+dur). Records are sorted by
// time; cascade events that would land past the end are dropped, and a
// fault whose terminal event falls past the end is not counted as a
// ground-truth failure. Fault cascades are emitted before daemons so that
// rack-silencing faults can mute the heartbeats they overlap.
func (g *Generator) Generate(start time.Time, dur time.Duration) *Result {
	end := start.Add(dur)
	res := &Result{Profile: g.prof.Name, Start: start, End: end}
	for _, a := range g.prof.Archetypes {
		g.emitArchetype(res, a, start, end)
	}
	for _, d := range g.prof.Daemons {
		g.emitDaemon(res, d, start, end)
	}
	logs.SortByTime(res.Records)
	sort.Slice(res.Failures, func(i, j int) bool { return res.Failures[i].Time.Before(res.Failures[j].Time) })
	return res
}

func (g *Generator) emitDaemon(res *Result, d DaemonSpec, start, end time.Time) {
	if d.PerRack && d.Period > 0 && !g.prof.Machine.IsFlat() {
		for rack := 0; rack < g.prof.Machine.Racks; rack++ {
			loc := topology.Location{Rack: rack, Midplane: -1, NodeCard: -1, Slot: -1, Unit: -1}
			t := start.Add(time.Duration(g.rng.Int63n(int64(d.Period))))
			for t.Before(end) {
				if !g.silenced(rack, t) {
					res.Records = append(res.Records, g.record(t, d.Severity, loc, d.Component, d.Message))
				}
				t = t.Add(d.Period)
			}
		}
		return
	}
	if d.Period > 0 {
		// Random phase so daemons do not all align on the start tick.
		t := start.Add(time.Duration(g.rng.Int63n(int64(d.Period))))
		for t.Before(end) {
			res.Records = append(res.Records, g.record(t, d.Severity, g.daemonLoc(d), d.Component, d.Message))
			t = t.Add(d.Period)
		}
		return
	}
	if d.Rate <= 0 {
		return
	}
	mean := 1 / d.Rate // seconds between events
	t := start.Add(secs(stats.Exponential(g.rng, mean)))
	for t.Before(end) {
		res.Records = append(res.Records, g.record(t, d.Severity, g.daemonLoc(d), d.Component, d.Message))
		t = t.Add(secs(stats.Exponential(g.rng, mean)))
	}
}

// silenced reports whether a rack's heartbeats are muted at time t.
func (g *Generator) silenced(rack int, t time.Time) bool {
	for _, iv := range g.silences[rack] {
		if !t.Before(iv.from) && t.Before(iv.to) {
			return true
		}
	}
	return false
}

func (g *Generator) daemonLoc(d DaemonSpec) topology.Location {
	if d.PerNode {
		return g.prof.Machine.RandomNode(g.rng)
	}
	return topology.System
}

func (g *Generator) emitArchetype(res *Result, a FaultArchetype, start, end time.Time) {
	t := start.Add(secs(stats.Exponential(g.rng, a.MTBF.Seconds())))
	for t.Before(end) {
		g.emitCascade(res, a, t, end)
		t = t.Add(secs(stats.Exponential(g.rng, a.MTBF.Seconds())))
	}
}

func (g *Generator) emitCascade(res *Result, a FaultArchetype, t time.Time, end time.Time) {
	origin := g.origin(a)
	heralded := stats.Bernoulli(g.rng, a.PrecursorProb)
	cur := t
	for _, ev := range a.Precursors {
		cur = cur.Add(g.jittered(ev))
		if heralded && cur.Before(end) {
			g.emitEvent(res, ev, cur, origin)
		}
	}
	cur = cur.Add(g.jittered(a.Final))
	if !cur.Before(end) {
		return
	}
	if a.SilenceRack > 0 && origin.Rack >= 0 {
		g.silences[origin.Rack] = append(g.silences[origin.Rack],
			interval{from: t, to: t.Add(a.SilenceRack)})
	}
	locs := g.emitEvent(res, a.Final, cur, origin)
	if a.IsFailure {
		res.Failures = append(res.Failures, FailureRecord{
			Time:      cur,
			Archetype: a.Name,
			Category:  a.Category,
			Heralded:  heralded,
			Origin:    origin,
			Locations: locs,
		})
	}
}

// origin picks where a fault strikes at the archetype's granularity.
func (g *Generator) origin(a FaultArchetype) topology.Location {
	switch a.OriginScope {
	case topology.ScopeNode:
		return g.prof.Machine.RandomNode(g.rng)
	case topology.ScopeNodeCard:
		return g.prof.Machine.RandomNodeCard(g.rng)
	case topology.ScopeMidplane:
		n := g.prof.Machine.RandomNode(g.rng)
		return n.Truncate(topology.ScopeMidplane)
	case topology.ScopeRack:
		n := g.prof.Machine.RandomNode(g.rng)
		return n.Truncate(topology.ScopeRack)
	default:
		return topology.System
	}
}

// emitEvent writes the burst copies of ev and returns the distinct
// locations touched.
func (g *Generator) emitEvent(res *Result, ev EventSpec, t time.Time, origin topology.Location) []topology.Location {
	locs := g.eventLocations(ev, origin)
	burst := ev.Burst
	if burst < 1 {
		burst = 1
	}
	for _, loc := range locs {
		for b := 0; b < burst; b++ {
			// Spread burst copies over up to two seconds so bursts look
			// like real near-simultaneous notification storms.
			jt := t.Add(time.Duration(g.rng.Int63n(int64(2 * time.Second))))
			res.Records = append(res.Records, g.record(jt, ev.Severity, loc, ev.Component, ev.Message))
		}
	}
	return locs
}

// eventLocations returns the origin plus FanOut-1 random distinct
// locations within the event's propagation scope.
func (g *Generator) eventLocations(ev EventSpec, origin topology.Location) []topology.Location {
	if ev.FanOut <= 1 {
		return []topology.Location{origin}
	}
	scope := origin.Truncate(ev.Scope)
	seen := map[topology.Location]bool{origin: true}
	out := []topology.Location{origin}
	// Bounded attempts keep this terminating when the scope is smaller
	// than the requested fan-out.
	for attempts := 0; len(out) < ev.FanOut && attempts < 8*ev.FanOut; attempts++ {
		n := g.prof.Machine.RandomNodeWithin(g.rng, scope)
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// record materialises one log record, substituting variable fields in the
// message template.
func (g *Generator) record(t time.Time, sev logs.Severity, loc topology.Location, comp, msg string) logs.Record {
	return logs.Record{
		Time:      t,
		Severity:  sev,
		Location:  loc,
		Component: comp,
		Message:   g.substitute(msg),
		EventID:   -1,
	}
}

var starWords = []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}

// substitute replaces the variable tokens of a message template with
// concrete values: "d+" becomes a number, "0xd+" a hex literal, "*" a
// word. HELO's normalisation maps them back to the same template, so the
// round trip through raw text exercises the real preprocessing path.
func (g *Generator) substitute(msg string) string {
	if !strings.ContainsAny(msg, "*+") {
		return msg
	}
	fields := strings.Split(msg, " ")
	for i, f := range fields {
		switch {
		case f == "*":
			fields[i] = starWords[g.rng.Intn(len(starWords))]
		case f == "d+" || f == "d+.":
			fields[i] = fmt.Sprintf("%d", g.rng.Intn(10000))
		case f == "0xd+":
			fields[i] = fmt.Sprintf("0x%08x", g.rng.Uint32())
		case strings.HasSuffix(f, "d+"): // embedded numeric suffix, e.g. "sdd+"
			fields[i] = f[:len(f)-2] + fmt.Sprintf("%d", g.rng.Intn(100))
		}
	}
	return strings.Join(fields, " ")
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// jittered draws the event's delay with its lognormal jitter.
func (g *Generator) jittered(ev EventSpec) time.Duration {
	if ev.Delay <= 0 {
		return 0
	}
	if ev.Jitter <= 0 {
		return ev.Delay
	}
	// Lognormal with median equal to the configured delay.
	f := stats.LogNormal(g.rng, 0, ev.Jitter)
	return time.Duration(float64(ev.Delay) * f)
}
