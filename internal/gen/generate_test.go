package gen

import (
	"strings"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

func smallBGL(t *testing.T, dur time.Duration, seed int64) *Result {
	t.Helper()
	res := New(BlueGeneL(), seed).Generate(t0, dur)
	if len(res.Records) == 0 {
		t.Fatal("no records generated")
	}
	return res
}

func TestGenerateSortedAndInRange(t *testing.T) {
	res := smallBGL(t, 12*time.Hour, 1)
	prev := time.Time{}
	for i, r := range res.Records {
		if r.Time.Before(prev) {
			t.Fatalf("record %d out of order", i)
		}
		prev = r.Time
		if r.Time.Before(res.Start) || !r.Time.Before(res.End.Add(2*time.Second)) {
			// Burst jitter may push an event up to 2 s past its nominal
			// time; anything further is a bug.
			t.Fatalf("record %d outside range: %v", i, r.Time)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := New(BlueGeneL(), 7).Generate(t0, 6*time.Hour)
	b := New(BlueGeneL(), 7).Generate(t0, 6*time.Hour)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if len(a.Failures) != len(b.Failures) {
		t.Fatal("failure counts differ")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := New(BlueGeneL(), 1).Generate(t0, 6*time.Hour)
	b := New(BlueGeneL(), 2).Generate(t0, 6*time.Hour)
	if len(a.Records) == len(b.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical logs")
		}
	}
}

func TestFailuresHaveGroundTruth(t *testing.T) {
	res := smallBGL(t, 48*time.Hour, 3)
	if len(res.Failures) == 0 {
		t.Fatal("no failures in 48h")
	}
	for _, f := range res.Failures {
		if f.Time.Before(res.Start) || !f.Time.Before(res.End) {
			t.Errorf("failure time %v outside range", f.Time)
		}
		if f.Category == "" || f.Archetype == "" {
			t.Errorf("failure missing labels: %+v", f)
		}
		if len(f.Locations) == 0 {
			t.Errorf("failure without locations: %+v", f)
		}
	}
}

func TestInformationalSequencesAreNotFailures(t *testing.T) {
	res := smallBGL(t, 48*time.Hour, 4)
	for _, f := range res.Failures {
		if f.Archetype == "restart" || f.Archetype == "multiline" {
			t.Errorf("informational archetype recorded as failure: %+v", f)
		}
	}
	// But their messages must appear in the log.
	foundRestart := false
	for _, r := range res.Records {
		if strings.Contains(r.Message, "ciodb has been restarted") {
			foundRestart = true
			break
		}
	}
	if !foundRestart {
		t.Error("restart sequence messages missing from log")
	}
}

func TestMemoryFaultPropagatesWithinMidplane(t *testing.T) {
	res := smallBGL(t, 96*time.Hour, 5)
	checked := 0
	for _, f := range res.Failures {
		if f.Archetype != "memory" {
			continue
		}
		checked++
		mp := f.Origin.Truncate(topology.ScopeMidplane)
		for _, loc := range f.Locations {
			if !mp.Contains(loc) {
				t.Errorf("memory failure escaped midplane: origin %v, loc %v", f.Origin, loc)
			}
		}
		if len(f.Locations) < 1 {
			t.Error("memory failure without locations")
		}
	}
	if checked == 0 {
		t.Fatal("no memory failures in 96h")
	}
}

func TestNodeCardFaultStaysLocal(t *testing.T) {
	res := smallBGL(t, 96*time.Hour, 6)
	for _, f := range res.Failures {
		if f.Archetype != "nodecard" {
			continue
		}
		if len(f.Locations) != 1 || f.Locations[0] != f.Origin {
			t.Errorf("nodecard failure should stay at origin: %+v", f)
		}
	}
}

func TestNetworkFaultFansOut(t *testing.T) {
	res := smallBGL(t, 96*time.Hour, 7)
	sawWide := false
	for _, f := range res.Failures {
		if f.Archetype == "network" && len(f.Locations) > 10 {
			sawWide = true
			break
		}
	}
	if !sawWide {
		t.Error("no wide network failure in 96h")
	}
}

func TestSplit(t *testing.T) {
	res := smallBGL(t, 24*time.Hour, 8)
	cut := t0.Add(12 * time.Hour)
	train, test, testFailures := res.Split(cut)
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("empty split")
	}
	if train[len(train)-1].Time.After(cut) {
		t.Error("train leaks past cut")
	}
	if test[0].Time.Before(cut) {
		t.Error("test starts before cut")
	}
	for _, f := range testFailures {
		if f.Time.Before(cut) {
			t.Error("test failure before cut")
		}
	}
}

func TestSeverityMixRoughlyPaperLike(t *testing.T) {
	// The paper reports error messages are a minority of the log (~18%).
	res := smallBGL(t, 72*time.Hour, 9)
	counts := logs.CountBySeverity(res.Records)
	total := 0
	for _, c := range counts {
		total += c
	}
	errFrac := float64(counts[logs.Severe]+counts[logs.Failure]) / float64(total)
	if errFrac > 0.5 {
		t.Errorf("error fraction = %v, background too thin", errFrac)
	}
	if counts[logs.Info] == 0 || counts[logs.Warning] == 0 {
		t.Error("missing info/warning background")
	}
}

func TestSubstitutionKeepsTemplatesStable(t *testing.T) {
	// Substituted messages must collapse back to one HELO template per
	// event spec.
	res := smallBGL(t, 24*time.Hour, 10)
	o := helo.New(0)
	ids := map[int]bool{}
	for _, r := range res.Records {
		if strings.HasPrefix(r.Message, "correctable error detected in directory") {
			ids[o.Learn(r.Message, r.Severity).ID] = true
		}
	}
	if len(ids) == 0 {
		t.Skip("no memory precursors in window")
	}
	if len(ids) != 1 {
		t.Errorf("memory precursor split into %d templates", len(ids))
	}
}

func TestMercuryProfileGenerates(t *testing.T) {
	res := New(Mercury(), 11).Generate(t0, 48*time.Hour)
	if len(res.Records) == 0 {
		t.Fatal("no mercury records")
	}
	sawNFS := false
	for _, f := range res.Failures {
		if f.Archetype == "nfs" && len(f.Locations) > 20 {
			sawNFS = true
		}
		for _, loc := range f.Locations {
			if !loc.IsFlat() && !loc.IsSystem() {
				t.Errorf("mercury location not flat: %v", loc)
			}
		}
	}
	if !sawNFS {
		t.Error("no wide NFS failure on mercury in 48h")
	}
}

func TestUnheraldedFaultsHaveNoPrecursors(t *testing.T) {
	res := smallBGL(t, 96*time.Hour, 12)
	unheralded := 0
	for _, f := range res.Failures {
		if !f.Heralded {
			unheralded++
		}
	}
	if unheralded == 0 {
		t.Error("expected some unheralded faults (PrecursorProb < 1)")
	}
}

func TestSplitPartitionProperty(t *testing.T) {
	res := smallBGL(t, 24*time.Hour, 14)
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 1} {
		cut := t0.Add(time.Duration(frac * float64(24*time.Hour)))
		train, test, testFailures := res.Split(cut)
		if len(train)+len(test) != len(res.Records) {
			t.Fatalf("split at %v loses records: %d + %d != %d",
				cut, len(train), len(test), len(res.Records))
		}
		for _, r := range train {
			if !r.Time.Before(cut) {
				t.Fatalf("train record at %v >= cut %v", r.Time, cut)
			}
		}
		for _, r := range test {
			if r.Time.Before(cut) {
				t.Fatalf("test record at %v < cut %v", r.Time, cut)
			}
		}
		nFail := 0
		for _, f := range res.Failures {
			if !f.Time.Before(cut) {
				nFail++
			}
		}
		if nFail != len(testFailures) {
			t.Fatalf("test failures = %d, want %d", len(testFailures), nFail)
		}
	}
}

func TestMessageRateReasonable(t *testing.T) {
	res := smallBGL(t, 24*time.Hour, 13)
	rate := float64(len(res.Records)) / (24 * 3600)
	// Background specs sum to ~0.25 msg/s plus cascades; the paper's
	// systems average ~5 msg/s but we scale down for test speed. Assert
	// the order of magnitude only.
	if rate < 0.05 || rate > 20 {
		t.Errorf("message rate = %v msg/s, outside sane band", rate)
	}
}
