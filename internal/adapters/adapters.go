// Package adapters converts real system-log formats into the canonical
// record model, so the pipeline runs unchanged on actual machine data when
// it is available:
//
//   - the Blue Gene/L RAS format published in the Computer Failure Data
//     Repository (the dataset the paper analyses), and
//   - classic BSD syslog (the format of Mercury-era Linux clusters).
package adapters

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Format names a supported log format.
type Format int

// Supported formats.
const (
	// Canonical is this repository's own text format.
	Canonical Format = iota
	// BGL is the Blue Gene/L RAS log format from the CFDR dataset.
	BGL
	// Syslog is classic BSD syslog (RFC 3164 timestamp, host, tag).
	Syslog
)

// String names the format.
func (f Format) String() string {
	switch f {
	case Canonical:
		return "canonical"
	case BGL:
		return "bgl"
	case Syslog:
		return "syslog"
	default:
		return "unknown"
	}
}

// ParseFormat decodes a format name.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "canonical", "":
		return Canonical, nil
	case "bgl", "ras":
		return BGL, nil
	case "syslog":
		return Syslog, nil
	default:
		return Canonical, fmt.Errorf("adapters: unknown format %q", s)
	}
}

// bglTimeLayout is the high-resolution timestamp of RAS lines,
// e.g. "2005-06-03-15.42.50.363779".
const bglTimeLayout = "2006-01-02-15.04.05.000000"

// ParseBGL decodes one Blue Gene/L RAS line:
//
//	ALERT SECONDS DATE NODE TIMESTAMP NODE TYPE COMPONENT LEVEL MESSAGE...
//
// e.g.
//
//   - 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected
func ParseBGL(line string) (logs.Record, error) {
	parts := strings.SplitN(line, " ", 10)
	if len(parts) < 10 {
		return logs.Record{}, fmt.Errorf("adapters: short RAS line %q", line)
	}
	ts, err := time.Parse(bglTimeLayout, parts[4])
	if err != nil {
		return logs.Record{}, fmt.Errorf("adapters: bad RAS timestamp %q: %v", parts[4], err)
	}
	loc, err := topology.Parse(parts[3])
	if err != nil {
		return logs.Record{}, fmt.Errorf("adapters: bad RAS location %q: %v", parts[3], err)
	}
	sev, err := parseBGLSeverity(parts[8])
	if err != nil {
		return logs.Record{}, err
	}
	return logs.Record{
		Time:      ts.UTC(),
		Severity:  sev,
		Location:  loc,
		Component: parts[7],
		Message:   parts[9],
		EventID:   -1,
	}, nil
}

func parseBGLSeverity(s string) (logs.Severity, error) {
	switch strings.ToUpper(s) {
	case "INFO", "DEBUG":
		return logs.Info, nil
	case "WARNING":
		return logs.Warning, nil
	case "ERROR":
		return logs.Error, nil
	case "SEVERE":
		return logs.Severe, nil
	case "FATAL", "FAILURE":
		return logs.Failure, nil
	default:
		return logs.Info, fmt.Errorf("adapters: unknown RAS level %q", s)
	}
}

// SyslogConfig carries the context a bare syslog line lacks.
type SyslogConfig struct {
	// Year completes the RFC 3164 timestamp (which has none). Zero means
	// the current year.
	Year int
	// Location resolves the wall-clock timestamps (default UTC).
	Location *time.Location
}

// ParseSyslog decodes one classic syslog line:
//
//	Jun  3 15:42:50 tg-c042 kernel: nfs server not responding
//
// The tag (up to the first ':') becomes the component; severity is
// inferred from the message text since RFC 3164 priority prefixes are
// rarely preserved in archived cluster logs.
func ParseSyslog(line string, cfg SyslogConfig) (logs.Record, error) {
	if cfg.Location == nil {
		cfg.Location = time.UTC
	}
	if len(line) < 16 {
		return logs.Record{}, fmt.Errorf("adapters: short syslog line %q", line)
	}
	ts, err := time.ParseInLocation(time.Stamp, line[:15], cfg.Location)
	if err != nil {
		return logs.Record{}, fmt.Errorf("adapters: bad syslog timestamp in %q: %v", line, err)
	}
	year := cfg.Year
	if year == 0 {
		year = time.Now().Year()
	}
	ts = ts.AddDate(year, 0, 0)
	rest := strings.TrimSpace(line[15:])
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return logs.Record{}, fmt.Errorf("adapters: syslog line missing host: %q", line)
	}
	host := rest[:sp]
	body := strings.TrimSpace(rest[sp+1:])
	component := ""
	if c := strings.IndexByte(body, ':'); c > 0 && c < 32 && !strings.ContainsAny(body[:c], " \t") {
		component = strings.ToUpper(strings.TrimRight(body[:c], "[]0123456789"))
		body = strings.TrimSpace(body[c+1:])
	}
	loc, err := topology.Parse(host)
	if err != nil {
		return logs.Record{}, fmt.Errorf("adapters: bad syslog host %q: %v", host, err)
	}
	return logs.Record{
		Time:      ts.UTC(),
		Severity:  inferSeverity(body),
		Location:  loc,
		Component: component,
		Message:   body,
		EventID:   -1,
	}, nil
}

// inferSeverity grades a syslog message by its text, the heuristic one
// has to use when the priority field was stripped during archiving.
func inferSeverity(msg string) logs.Severity {
	m := strings.ToLower(msg)
	switch {
	case strings.Contains(m, "panic"), strings.Contains(m, "fatal"),
		strings.Contains(m, "fail"):
		return logs.Failure
	case strings.Contains(m, "critical"), strings.Contains(m, "severe"):
		return logs.Severe
	case strings.Contains(m, "error"), strings.Contains(m, "i/o"):
		return logs.Error
	case strings.Contains(m, "warn"), strings.Contains(m, "not responding"),
		strings.Contains(m, "timed out"), strings.Contains(m, "timeout"):
		return logs.Warning
	default:
		return logs.Info
	}
}

// Reader streams records from any supported format.
type Reader struct {
	sc     *bufio.Scanner
	format Format
	syslog SyslogConfig
	line   int
	// SkipMalformed drops undecodable lines instead of failing; Dropped
	// counts them. Real archived logs always contain stray lines.
	SkipMalformed bool
	Dropped       int
}

// NewReader wraps r for the given format.
func NewReader(r io.Reader, format Format, syslogCfg SyslogConfig) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &Reader{sc: sc, format: format, syslog: syslogCfg}
}

// Next returns the next record or io.EOF.
func (r *Reader) Next() (logs.Record, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimRight(r.sc.Text(), "\r\n")
		if line == "" || line[0] == '#' {
			continue
		}
		var rec logs.Record
		var err error
		switch r.format {
		case Canonical:
			rec, err = logs.ParseRecord(line)
		case BGL:
			rec, err = ParseBGL(line)
		case Syslog:
			rec, err = ParseSyslog(line, r.syslog)
		default:
			return logs.Record{}, fmt.Errorf("adapters: unsupported format %v", r.format)
		}
		if err != nil {
			if r.SkipMalformed {
				r.Dropped++
				continue
			}
			return logs.Record{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return logs.Record{}, err
	}
	return logs.Record{}, io.EOF
}

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]logs.Record, error) {
	var out []logs.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
