package adapters

import (
	"io"
	"strings"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
)

const rasLine = "- 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected"

func TestParseBGL(t *testing.T) {
	rec, err := ParseBGL(rasLine)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2005, 6, 3, 15, 42, 50, 363779000, time.UTC)
	if !rec.Time.Equal(want) {
		t.Errorf("Time = %v, want %v", rec.Time, want)
	}
	if rec.Location.String() != "R02-M1-N0-C:J12-U11" {
		t.Errorf("Location = %v", rec.Location)
	}
	if rec.Component != "KERNEL" {
		t.Errorf("Component = %q", rec.Component)
	}
	if rec.Severity != logs.Info {
		t.Errorf("Severity = %v", rec.Severity)
	}
	if rec.Message != "instruction cache parity error corrected" {
		t.Errorf("Message = %q", rec.Message)
	}
	if rec.EventID != -1 {
		t.Errorf("EventID = %d", rec.EventID)
	}
}

func TestParseBGLSeverities(t *testing.T) {
	for lvl, want := range map[string]logs.Severity{
		"INFO": logs.Info, "WARNING": logs.Warning, "ERROR": logs.Error,
		"SEVERE": logs.Severe, "FATAL": logs.Failure, "FAILURE": logs.Failure,
		"DEBUG": logs.Info,
	} {
		line := strings.Replace(rasLine, " INFO ", " "+lvl+" ", 1)
		rec, err := ParseBGL(line)
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		if rec.Severity != want {
			t.Errorf("%s -> %v, want %v", lvl, rec.Severity, want)
		}
	}
}

func TestParseBGLErrors(t *testing.T) {
	for _, line := range []string{
		"too short",
		"- 1 2005.06.03 R02-M1-N0-C:J12-U11 notatime R02 RAS KERNEL INFO msg",
		"- 1 2005.06.03 R0x 2005-06-03-15.42.50.363779 R02 RAS KERNEL INFO msg",
		"- 1 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 R02 RAS KERNEL WAT msg",
	} {
		if _, err := ParseBGL(line); err == nil {
			t.Errorf("ParseBGL(%q): expected error", line)
		}
	}
}

func TestParseSyslog(t *testing.T) {
	rec, err := ParseSyslog("Jun  3 15:42:50 tg-c042 kernel: nfs server not responding",
		SyslogConfig{Year: 2006})
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2006, 6, 3, 15, 42, 50, 0, time.UTC)
	if !rec.Time.Equal(want) {
		t.Errorf("Time = %v, want %v", rec.Time, want)
	}
	if rec.Location.String() != "tg-c042" {
		t.Errorf("Location = %v", rec.Location)
	}
	if rec.Component != "KERNEL" {
		t.Errorf("Component = %q", rec.Component)
	}
	if rec.Message != "nfs server not responding" {
		t.Errorf("Message = %q", rec.Message)
	}
	if rec.Severity != logs.Warning {
		t.Errorf("Severity = %v (not responding should be a warning)", rec.Severity)
	}
}

func TestParseSyslogTagWithPid(t *testing.T) {
	rec, err := ParseSyslog("Jun  3 15:42:50 tg-c001 pbs_mom[1234]: session started",
		SyslogConfig{Year: 2006})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Component != "PBS_MOM" {
		t.Errorf("Component = %q", rec.Component)
	}
}

func TestParseSyslogNoTag(t *testing.T) {
	rec, err := ParseSyslog("Jun  3 15:42:50 tg-c001 free-form message body",
		SyslogConfig{Year: 2006})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Component != "" {
		t.Errorf("Component = %q, want empty", rec.Component)
	}
	if rec.Message != "free-form message body" {
		t.Errorf("Message = %q", rec.Message)
	}
}

func TestInferSeverity(t *testing.T) {
	cases := map[string]logs.Severity{
		"kernel panic - not syncing":    logs.Failure,
		"ext3-fs error reading inode":   logs.Error,
		"temperature warning on cpu0":   logs.Warning,
		"critical voltage deviation":    logs.Severe,
		"session opened for user root":  logs.Info,
		"operation timed out after 30s": logs.Warning,
		"raid array failed on /dev/sdb": logs.Failure,
	}
	for msg, want := range cases {
		if got := inferSeverity(msg); got != want {
			t.Errorf("inferSeverity(%q) = %v, want %v", msg, got, want)
		}
	}
}

func TestParseSyslogErrors(t *testing.T) {
	for _, line := range []string{
		"short",
		"NotAMonth 3 15:42:50 host msg",
		"Jun  3 15:42:50 onlyhost",
	} {
		if _, err := ParseSyslog(line, SyslogConfig{Year: 2006}); err == nil {
			t.Errorf("ParseSyslog(%q): expected error", line)
		}
	}
}

func TestReaderBGLStream(t *testing.T) {
	input := rasLine + "\n# comment\n\n" + rasLine + "\n"
	r := NewReader(strings.NewReader(input), BGL, SyslogConfig{})
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestReaderSkipMalformed(t *testing.T) {
	input := rasLine + "\ngarbage line\n" + rasLine + "\n"
	r := NewReader(strings.NewReader(input), BGL, SyslogConfig{})
	r.SkipMalformed = true
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || r.Dropped != 1 {
		t.Errorf("records=%d dropped=%d", len(recs), r.Dropped)
	}
}

func TestReaderFailsOnMalformedByDefault(t *testing.T) {
	input := "garbage\n"
	r := NewReader(strings.NewReader(input), BGL, SyslogConfig{})
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Error("expected decode error")
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"bgl": BGL, "RAS": BGL, "syslog": Syslog, "canonical": Canonical, "": Canonical,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("bogus"); err == nil {
		t.Error("unknown format accepted")
	}
	if BGL.String() != "bgl" || Syslog.String() != "syslog" || Canonical.String() != "canonical" {
		t.Error("format names wrong")
	}
	if Format(99).String() != "unknown" {
		t.Error("unknown format name wrong")
	}
}

func TestReaderCanonical(t *testing.T) {
	rec := logs.Record{Time: time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC),
		Severity: logs.Severe, Message: "msg body", EventID: -1}
	r := NewReader(strings.NewReader(rec.String()+"\n"), Canonical, SyslogConfig{})
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if recs[0].Message != "msg body" {
		t.Errorf("Message = %q", recs[0].Message)
	}
}
