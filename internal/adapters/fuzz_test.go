package adapters

import "testing"

// FuzzParseBGL ensures no RAS input can panic the parser and accepted
// records always carry sane fields.
func FuzzParseBGL(f *testing.F) {
	f.Add(rasLine)
	f.Add("- 1 2005.06.03 R02 x R02 RAS KERNEL INFO msg")
	f.Add("short")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseBGL(line)
		if err != nil {
			return
		}
		if rec.EventID != -1 {
			t.Fatal("fresh record must have EventID -1")
		}
		if rec.Time.IsZero() {
			t.Fatal("accepted record with zero time")
		}
	})
}

// FuzzParseSyslog ensures no syslog input can panic the parser.
func FuzzParseSyslog(f *testing.F) {
	f.Add("Jun  3 15:42:50 tg-c042 kernel: nfs server not responding")
	f.Add("Jun  3 15:42:50 host msg")
	f.Add("Xxx  3 15:42:50 host msg")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseSyslog(line, SyslogConfig{Year: 2006})
		if err != nil {
			return
		}
		if rec.Message == "" && rec.Component == "" {
			t.Fatal("accepted record with no content")
		}
	})
}
