// Package checkpoint implements the paper's analytical model for the
// impact of failure prediction on coordinated checkpoint-restart
// (Section VI.B, equations 1-7, Table IV), plus a discrete-event simulator
// that validates the closed forms.
//
// Starting from the no-prediction waste model (eq 1) and Young's optimal
// interval (eq 2), a predictor with recall N and precision P changes the
// effective MTTF of unpredicted failures to MTTF/(1-N) (eq 3), shifts the
// optimal interval (eq 4), and adds one checkpoint per true prediction and
// one per false alarm (eqs 6-7).
package checkpoint

import (
	"fmt"
	"math"
	"time"
)

// Params describes the platform: checkpoint cost C, restart-load cost R,
// downtime D, and the application's mean time to failure.
type Params struct {
	C    time.Duration // time to take one checkpoint
	R    time.Duration // time to load a checkpoint back
	D    time.Duration // downtime before restart
	MTTF time.Duration // mean time between failures
}

// PaperParams returns the platform constants the paper evaluates with:
// R = 5 min, D = 1 min.
func PaperParams(c, mttf time.Duration) Params {
	return Params{C: c, R: 5 * time.Minute, D: time.Minute, MTTF: mttf}
}

// Validate reports an error for non-positive C or MTTF.
func (p Params) Validate() error {
	if p.C <= 0 || p.MTTF <= 0 {
		return fmt.Errorf("checkpoint: C and MTTF must be positive (C=%v, MTTF=%v)", p.C, p.MTTF)
	}
	if p.R < 0 || p.D < 0 {
		return fmt.Errorf("checkpoint: R and D must be non-negative")
	}
	return nil
}

func minutes(d time.Duration) float64 { return d.Minutes() }

// Waste evaluates equation (1): the wasted fraction under periodic
// checkpointing with interval T and no prediction.
func Waste(p Params, T time.Duration) float64 {
	t := minutes(T)
	if t <= 0 {
		return math.Inf(1)
	}
	m := minutes(p.MTTF)
	return minutes(p.C)/t + t/(2*m) + (minutes(p.R)+minutes(p.D))/m
}

// YoungInterval evaluates equation (2): Toptimum = sqrt(2 C MTTF).
func YoungInterval(p Params) time.Duration {
	t := math.Sqrt(2 * minutes(p.C) * minutes(p.MTTF))
	return time.Duration(t * float64(time.Minute))
}

// MinWaste is the waste at Young's interval without prediction:
// sqrt(2C/MTTF) + (R+D)/MTTF.
func MinWaste(p Params) float64 {
	m := minutes(p.MTTF)
	return math.Sqrt(2*minutes(p.C)/m) + (minutes(p.R)+minutes(p.D))/m
}

// DalyInterval returns Daly's higher-order optimal checkpoint interval,
//
//	T = sqrt(2 C M) [1 + (1/3) sqrt(C/(2M)) + (1/9) (C/(2M))] - C,
//
// which improves on Young's first-order formula (eq 2) when the
// checkpoint cost is not negligible against the MTTF — the regime of the
// paper's C = 1 min, MTTF = 1 h sensitivity points.
func DalyInterval(p Params) time.Duration {
	c, m := minutes(p.C), minutes(p.MTTF)
	if c >= 2*m {
		// Degenerate: checkpointing costs more than the failure horizon.
		return p.MTTF
	}
	r := c / (2 * m)
	t := math.Sqrt(2*c*m)*(1+math.Sqrt(r)/3+r/9) - c
	if t <= 0 {
		t = minutes(YoungInterval(p))
	}
	return time.Duration(t * float64(time.Minute))
}

// Predictor carries the prediction quality feeding the model.
type Predictor struct {
	Recall    float64 // N: fraction of failures predicted
	Precision float64 // P: fraction of predictions that are correct
}

// EffectiveMTTF evaluates equation (3): the MTTF of unpredicted failures,
// MTTF/(1-N). Recall 1 yields +Inf.
func EffectiveMTTF(p Params, pred Predictor) time.Duration {
	if pred.Recall >= 1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(p.MTTF) / (1 - pred.Recall))
}

// OptimalInterval evaluates equation (4): sqrt(2 C MTTF / (1-N)).
func OptimalInterval(p Params, pred Predictor) time.Duration {
	if pred.Recall >= 1 {
		return time.Duration(math.MaxInt64)
	}
	t := math.Sqrt(2 * minutes(p.C) * minutes(p.MTTF) / (1 - pred.Recall))
	return time.Duration(t * float64(time.Minute))
}

// MinWasteWithPrediction evaluates equation (7):
//
//	W = sqrt(2C(1-N)/MTTF) + (R+D)/MTTF + CN/MTTF + CN(1-P)/(P MTTF)
//
// the minimum waste with a predictor of recall N and precision P, where
// the last two terms pay one proactive checkpoint per correct prediction
// and one per false alarm.
func MinWasteWithPrediction(p Params, pred Predictor) float64 {
	m := minutes(p.MTTF)
	c := minutes(p.C)
	n := pred.Recall
	w := math.Sqrt(2*c*(1-n)/m) + (minutes(p.R)+minutes(p.D))/m + c*n/m
	if pred.Precision > 0 && pred.Precision < 1 {
		w += c * n * (1 - pred.Precision) / (pred.Precision * m)
	}
	return w
}

// WasteGain returns the relative waste reduction prediction buys:
// 1 - W_pred / W_nopred. Table IV reports this as a percentage.
func WasteGain(p Params, pred Predictor) float64 {
	base := MinWaste(p)
	if base <= 0 {
		return 0
	}
	return 1 - MinWasteWithPrediction(p, pred)/base
}

// TableIVRow is one row of the paper's Table IV.
type TableIVRow struct {
	C         time.Duration
	Precision float64
	Recall    float64
	MTTF      time.Duration
	Gain      float64 // computed waste gain
	PaperGain float64 // the value printed in the paper
}

// TableIV reproduces the paper's six rows with the model above. Rows 1, 2,
// 5 and 6 match the published numbers to two decimals; rows 3 and 4
// (C = 10 s, MTTF = 1 day) come out higher than printed — the closed forms
// as stated in the paper yield these values, so the reproduction reports
// both.
func TableIV() []TableIVRow {
	day := 24 * time.Hour
	rows := []TableIVRow{
		{C: time.Minute, Precision: 0.92, Recall: 0.20, MTTF: day, PaperGain: 0.0913},
		{C: time.Minute, Precision: 0.92, Recall: 0.36, MTTF: day, PaperGain: 0.1733},
		{C: 10 * time.Second, Precision: 0.92, Recall: 0.36, MTTF: day, PaperGain: 0.1209},
		{C: 10 * time.Second, Precision: 0.92, Recall: 0.45, MTTF: day, PaperGain: 0.1563},
		{C: time.Minute, Precision: 0.92, Recall: 0.50, MTTF: 5 * time.Hour, PaperGain: 0.2174},
		{C: 10 * time.Second, Precision: 0.92, Recall: 0.65, MTTF: 5 * time.Hour, PaperGain: 0.2478},
	}
	for i := range rows {
		p := PaperParams(rows[i].C, rows[i].MTTF)
		rows[i].Gain = WasteGain(p, Predictor{Recall: rows[i].Recall, Precision: rows[i].Precision})
	}
	return rows
}
