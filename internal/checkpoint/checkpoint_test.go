package checkpoint

import (
	"math"
	"testing"
	"time"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestYoungInterval(t *testing.T) {
	p := PaperParams(time.Minute, 24*time.Hour)
	// sqrt(2 * 1 * 1440) = 53.67 minutes.
	want := 53.6656 * float64(time.Minute)
	if got := YoungInterval(p); !almostEq(float64(got), want, float64(time.Second)) {
		t.Errorf("YoungInterval = %v", got)
	}
}

func TestWasteMinimisedAtYoung(t *testing.T) {
	p := PaperParams(time.Minute, 24*time.Hour)
	tOpt := YoungInterval(p)
	wOpt := Waste(p, tOpt)
	if got := MinWaste(p); !almostEq(got, wOpt, 1e-9) {
		t.Errorf("MinWaste = %v, Waste(Topt) = %v", got, wOpt)
	}
	for _, f := range []float64{0.5, 0.8, 1.25, 2} {
		other := time.Duration(float64(tOpt) * f)
		if f != 1 && Waste(p, other) < wOpt {
			t.Errorf("waste at %v below optimum", other)
		}
	}
	if !math.IsInf(Waste(p, 0), 1) {
		t.Error("zero interval should be infinite waste")
	}
}

func TestEffectiveMTTF(t *testing.T) {
	p := PaperParams(time.Minute, 24*time.Hour)
	// 25% recall -> 4/3 day.
	got := EffectiveMTTF(p, Predictor{Recall: 0.25})
	want := time.Duration(float64(24*time.Hour) * 4 / 3)
	if !almostEq(float64(got), float64(want), float64(time.Second)) {
		t.Errorf("EffectiveMTTF = %v, want %v", got, want)
	}
	if EffectiveMTTF(p, Predictor{Recall: 1}) < 24*time.Hour*1000 {
		t.Error("recall 1 should yield effectively infinite MTTF")
	}
}

func TestOptimalIntervalGrowsWithRecall(t *testing.T) {
	p := PaperParams(time.Minute, 24*time.Hour)
	prev := time.Duration(0)
	for _, n := range []float64{0, 0.2, 0.5, 0.8} {
		got := OptimalInterval(p, Predictor{Recall: n})
		if got <= prev {
			t.Errorf("interval not increasing at recall %v", n)
		}
		prev = got
	}
	if got := OptimalInterval(p, Predictor{Recall: 0}); !almostEq(float64(got), float64(YoungInterval(p)), 1) {
		t.Error("zero recall should reduce to Young's interval")
	}
}

func TestPerfectPredictionWaste(t *testing.T) {
	// With N=1, P=1 the minimum waste is one checkpoint plus one restart
	// per failure: (C + R + D)/MTTF.
	p := PaperParams(time.Minute, 24*time.Hour)
	got := MinWasteWithPrediction(p, Predictor{Recall: 1, Precision: 1})
	want := (1.0 + 5.0 + 1.0) / 1440.0
	if !almostEq(got, want, 1e-12) {
		t.Errorf("perfect prediction waste = %v, want %v", got, want)
	}
}

func TestPredictionAlwaysHelpsAtGoodPrecision(t *testing.T) {
	p := PaperParams(time.Minute, 24*time.Hour)
	base := MinWaste(p)
	for _, n := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		w := MinWasteWithPrediction(p, Predictor{Recall: n, Precision: 0.92})
		if w >= base {
			t.Errorf("recall %v: waste %v not below baseline %v", n, w, base)
		}
	}
}

func TestTableIVMatchesPaperRows(t *testing.T) {
	rows := TableIV()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Rows 0, 1, 4, 5 match the published numbers to ~0.1 pp.
	for _, i := range []int{0, 1, 4, 5} {
		if !almostEq(rows[i].Gain, rows[i].PaperGain, 0.001) {
			t.Errorf("row %d: gain %.4f, paper %.4f", i, rows[i].Gain, rows[i].PaperGain)
		}
	}
	// Rows 2 and 3 disagree with the printed values but must preserve the
	// ordering (more recall => more gain at fixed C and MTTF).
	if rows[2].Gain >= rows[3].Gain {
		t.Error("row 3 should gain more than row 2 (higher recall)")
	}
	// The 5-hour-MTTF rows gain the most, as the paper stresses.
	if rows[4].Gain < 0.20 || rows[5].Gain < 0.20 {
		t.Error("future-system rows should exceed 20% gain")
	}
}

func TestWasteGainZeroPredictor(t *testing.T) {
	p := PaperParams(time.Minute, 24*time.Hour)
	if got := WasteGain(p, Predictor{Recall: 0, Precision: 1}); !almostEq(got, 0, 1e-12) {
		t.Errorf("zero-recall gain = %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{C: time.Minute, MTTF: time.Hour}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{C: 0, MTTF: time.Hour}).Validate(); err == nil {
		t.Error("zero C accepted")
	}
	if err := (Params{C: time.Minute, MTTF: time.Hour, R: -time.Second}).Validate(); err == nil {
		t.Error("negative R accepted")
	}
}

func TestDalyIntervalNearYoungForCheapCheckpoints(t *testing.T) {
	// When C << MTTF the two formulas agree to first order.
	p := PaperParams(10*time.Second, 24*time.Hour)
	young := YoungInterval(p)
	daly := DalyInterval(p)
	if diff := math.Abs(float64(daly - young)); diff > 0.05*float64(young) {
		t.Errorf("Daly %v vs Young %v differ by more than 5%%", daly, young)
	}
}

func TestDalyBeatsYoungAtHighFailureRate(t *testing.T) {
	// C = 5 min against MTTF = 1 h: the higher-order correction matters.
	// Simulated waste at Daly's interval must not exceed Young's.
	p := PaperParams(5*time.Minute, time.Hour)
	work := 200 * 24 * time.Hour
	wy := Simulate(p, Predictor{}, YoungInterval(p), work, 11).Waste
	wd := Simulate(p, Predictor{}, DalyInterval(p), work, 11).Waste
	if wd > wy*1.02 {
		t.Errorf("Daly waste %.4f clearly above Young %.4f", wd, wy)
	}
}

func TestDalyDegenerate(t *testing.T) {
	p := Params{C: 3 * time.Hour, R: 0, D: 0, MTTF: time.Hour}
	if got := DalyInterval(p); got != p.MTTF {
		t.Errorf("degenerate Daly = %v, want MTTF", got)
	}
}

func TestSimulateMatchesModelNoPrediction(t *testing.T) {
	p := PaperParams(time.Minute, 24*time.Hour)
	T := YoungInterval(p)
	res := Simulate(p, Predictor{}, T, 400*24*time.Hour, 1)
	want := MinWaste(p)
	if !almostEq(res.Waste, want, 0.012) {
		t.Errorf("simulated waste %.4f vs analytic %.4f", res.Waste, want)
	}
	if res.Predicted != 0 || res.FalseAlarms != 0 {
		t.Error("no-prediction run produced predictions")
	}
}

func TestSimulateMatchesModelWithPrediction(t *testing.T) {
	p := PaperParams(time.Minute, 24*time.Hour)
	pred := Predictor{Recall: 0.5, Precision: 0.92}
	T := OptimalInterval(p, pred)
	res := Simulate(p, pred, T, 400*24*time.Hour, 2)
	want := MinWasteWithPrediction(p, pred)
	if !almostEq(res.Waste, want, 0.012) {
		t.Errorf("simulated waste %.4f vs analytic %.4f", res.Waste, want)
	}
	if res.Predicted == 0 || res.FalseAlarms == 0 {
		t.Errorf("expected predictions and false alarms: %+v", res)
	}
	// Recall check: about half the failures predicted.
	frac := float64(res.Predicted) / float64(res.Failures)
	if !almostEq(frac, 0.5, 0.08) {
		t.Errorf("simulated recall %.3f, want ~0.5", frac)
	}
}

func TestSimulateGainOrdering(t *testing.T) {
	// Simulated waste with a good predictor must beat no prediction.
	p := PaperParams(time.Minute, 5*time.Hour)
	pred := Predictor{Recall: 0.5, Precision: 0.92}
	baseline := Simulate(p, Predictor{}, YoungInterval(p), 200*24*time.Hour, 3)
	with := Simulate(p, pred, OptimalInterval(p, pred), 200*24*time.Hour, 3)
	if with.Waste >= baseline.Waste {
		t.Errorf("prediction did not reduce waste: %.4f vs %.4f", with.Waste, baseline.Waste)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := PaperParams(time.Minute, 24*time.Hour)
	a := Simulate(p, Predictor{Recall: 0.3, Precision: 0.9}, YoungInterval(p), 30*24*time.Hour, 7)
	b := Simulate(p, Predictor{Recall: 0.3, Precision: 0.9}, YoungInterval(p), 30*24*time.Hour, 7)
	if a != b {
		t.Error("same seed produced different results")
	}
}
