package checkpoint

import (
	"fmt"
	"math"
	"time"
)

// MultiLevelParams describes a two-level checkpointing scheme of the kind
// the paper cites as the state of the art (FTI, SCR): cheap local
// checkpoints handle the common, locally recoverable failures, expensive
// global checkpoints cover catastrophic ones. This extends the paper's
// single-level model (Section VI.B) to the protocols it argues prediction
// should be combined with.
type MultiLevelParams struct {
	C1 time.Duration // local checkpoint cost
	C2 time.Duration // global checkpoint cost
	R1 time.Duration // local recovery cost
	R2 time.Duration // global recovery cost
	D  time.Duration // downtime per failure

	MTTF time.Duration // overall mean time between failures
	// LocalFraction is the share of failures recoverable from a local
	// checkpoint (FTI reports the large majority are).
	LocalFraction float64
}

// Validate reports an error for inconsistent parameters.
func (p MultiLevelParams) Validate() error {
	if p.C1 <= 0 || p.C2 <= 0 || p.MTTF <= 0 {
		return fmt.Errorf("checkpoint: C1, C2 and MTTF must be positive")
	}
	if p.LocalFraction < 0 || p.LocalFraction > 1 {
		return fmt.Errorf("checkpoint: LocalFraction must be in [0,1]")
	}
	return nil
}

// MultiLevelWaste evaluates the two-level waste model at local interval t1
// and global period k*t1 (k >= 1 local checkpoints per global one):
//
//	W = C1/T1 + C2/(k T1)
//	  + lambda1 (T1/2 + R1 + D) + lambda2 (k T1/2 + R2 + D)
//
// where lambda1/lambda2 split 1/MTTF by LocalFraction. Level-1 failures
// lose half a local interval, level-2 failures half a global one.
func MultiLevelWaste(p MultiLevelParams, t1 time.Duration, k int) float64 {
	if t1 <= 0 || k < 1 {
		return math.Inf(1)
	}
	t1m := minutes(t1)
	m := minutes(p.MTTF)
	l1 := p.LocalFraction / m
	l2 := (1 - p.LocalFraction) / m
	return minutes(p.C1)/t1m + minutes(p.C2)/(float64(k)*t1m) +
		l1*(t1m/2+minutes(p.R1)+minutes(p.D)) +
		l2*(float64(k)*t1m/2+minutes(p.R2)+minutes(p.D))
}

// MultiLevelPlan is an optimised two-level schedule.
type MultiLevelPlan struct {
	T1    time.Duration // local checkpoint interval
	K     int           // local checkpoints per global checkpoint
	Waste float64
}

// OptimizeMultiLevel searches the (T1, k) plane for the minimum-waste
// schedule: golden-section over T1 nested in a scan over k.
func OptimizeMultiLevel(p MultiLevelParams) MultiLevelPlan {
	best := MultiLevelPlan{Waste: math.Inf(1)}
	for k := 1; k <= 256; k *= 2 {
		t1 := goldenMin(func(t1m float64) float64 {
			return MultiLevelWaste(p, time.Duration(t1m*float64(time.Minute)), k)
		}, 0.05, minutes(p.MTTF))
		w := MultiLevelWaste(p, time.Duration(t1*float64(time.Minute)), k)
		if w < best.Waste {
			best = MultiLevelPlan{T1: time.Duration(t1 * float64(time.Minute)), K: k, Waste: w}
		}
	}
	return best
}

// MultiLevelWasteWithPrediction extends the optimised two-level schedule
// with a predictor, mirroring equation (7): predicted failures cost one
// local checkpoint instead of a rollback, false alarms cost one local
// checkpoint each, and the failure rates seen by the rollback terms shrink
// by the recall.
func MultiLevelWasteWithPrediction(p MultiLevelParams, pred Predictor) float64 {
	scaled := p
	// Only unpredicted failures roll back; the optimiser should plan for
	// the thinner failure stream.
	if pred.Recall < 1 {
		scaled.MTTF = time.Duration(float64(p.MTTF) / (1 - pred.Recall))
	} else {
		scaled.MTTF = p.MTTF * 1 << 20
	}
	plan := OptimizeMultiLevel(scaled)
	w := plan.Waste
	m := minutes(p.MTTF)
	// One proactive local checkpoint per predicted failure...
	w += minutes(p.C1) * pred.Recall / m
	// ...and per false alarm.
	if pred.Precision > 0 && pred.Precision < 1 {
		w += minutes(p.C1) * pred.Recall * (1 - pred.Precision) / (pred.Precision * m)
	}
	return w
}

// MultiLevelGain returns the relative waste reduction prediction buys on
// the optimised two-level schedule.
func MultiLevelGain(p MultiLevelParams, pred Predictor) float64 {
	base := OptimizeMultiLevel(p).Waste
	if base <= 0 {
		return 0
	}
	return 1 - MultiLevelWasteWithPrediction(p, pred)/base
}

// goldenMin minimises a unimodal function over [lo, hi] by golden-section
// search.
func goldenMin(f func(float64) float64, lo, hi float64) float64 {
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 200 && b-a > 1e-6*(1+b); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}
