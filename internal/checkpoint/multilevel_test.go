package checkpoint

import (
	"math"
	"testing"
	"time"
)

func ftiParams() MultiLevelParams {
	return MultiLevelParams{
		C1: 10 * time.Second, C2: 2 * time.Minute,
		R1: 30 * time.Second, R2: 5 * time.Minute,
		D:    time.Minute,
		MTTF: 5 * time.Hour, LocalFraction: 0.8,
	}
}

func TestMultiLevelValidate(t *testing.T) {
	if err := ftiParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := ftiParams()
	bad.C1 = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero C1 accepted")
	}
	bad = ftiParams()
	bad.LocalFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("LocalFraction > 1 accepted")
	}
}

func TestMultiLevelWasteDegenerate(t *testing.T) {
	p := ftiParams()
	if !math.IsInf(MultiLevelWaste(p, 0, 4), 1) {
		t.Error("zero interval should be infinite waste")
	}
	if !math.IsInf(MultiLevelWaste(p, time.Minute, 0), 1) {
		t.Error("k=0 should be infinite waste")
	}
}

func TestOptimizeMultiLevelIsMinimum(t *testing.T) {
	p := ftiParams()
	plan := OptimizeMultiLevel(p)
	if plan.T1 <= 0 || plan.K < 1 {
		t.Fatalf("bad plan %+v", plan)
	}
	// Perturbations must not beat the optimum (allowing numeric slack).
	for _, f := range []float64{0.5, 0.75, 1.5, 2} {
		w := MultiLevelWaste(p, time.Duration(float64(plan.T1)*f), plan.K)
		if w < plan.Waste-1e-9 {
			t.Errorf("T1*%v beats the optimum: %v < %v", f, w, plan.Waste)
		}
	}
	for _, k := range []int{plan.K / 2, plan.K * 2} {
		if k < 1 {
			continue
		}
		w := MultiLevelWaste(p, plan.T1, k)
		if w < plan.Waste-1e-9 {
			t.Errorf("k=%d beats the optimum: %v < %v", k, w, plan.Waste)
		}
	}
}

func TestMultiLevelBeatsSingleLevel(t *testing.T) {
	// With cheap local checkpoints covering 80% of failures, the
	// two-level optimum must beat a single-level scheme paying the global
	// cost for everything.
	p := ftiParams()
	two := OptimizeMultiLevel(p).Waste
	single := MinWaste(Params{C: p.C2, R: p.R2, D: p.D, MTTF: p.MTTF})
	if two >= single {
		t.Errorf("two-level %v not below single-level %v", two, single)
	}
}

func TestMultiLevelLocalFractionMonotone(t *testing.T) {
	// The more failures are locally recoverable, the lower the optimal
	// waste.
	prev := math.Inf(1)
	for _, frac := range []float64{0.2, 0.5, 0.8, 0.95} {
		p := ftiParams()
		p.LocalFraction = frac
		w := OptimizeMultiLevel(p).Waste
		if w >= prev {
			t.Errorf("waste not decreasing at fraction %v: %v >= %v", frac, w, prev)
		}
		prev = w
	}
}

func TestMultiLevelPredictionGain(t *testing.T) {
	p := ftiParams()
	pred := Predictor{Recall: 0.458, Precision: 0.912}
	gain := MultiLevelGain(p, pred)
	if gain <= 0 || gain >= 0.6 {
		t.Errorf("gain = %v, want a positive moderate reduction", gain)
	}
	// More recall, more gain.
	better := MultiLevelGain(p, Predictor{Recall: 0.7, Precision: 0.912})
	if better <= gain {
		t.Errorf("higher recall gain %v not above %v", better, gain)
	}
	// Perfect recall caps the model sensibly.
	perfect := MultiLevelGain(p, Predictor{Recall: 1, Precision: 1})
	if perfect <= better || perfect > 1 {
		t.Errorf("perfect-recall gain = %v", perfect)
	}
}

func TestGoldenMin(t *testing.T) {
	// Minimise (x-3)^2 over [0, 10].
	got := goldenMin(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10)
	if math.Abs(got-3) > 1e-4 {
		t.Errorf("goldenMin = %v, want 3", got)
	}
}
