package checkpoint

import (
	"math/rand"
	"time"

	"github.com/elsa-hpc/elsa/internal/stats"
)

// SimResult reports one simulated execution.
type SimResult struct {
	WallClock   time.Duration // total elapsed time
	UsefulWork  time.Duration // application progress achieved
	Waste       float64       // 1 - useful/wall
	Failures    int           // failures that struck
	Predicted   int           // failures avoided by a proactive checkpoint
	FalseAlarms int           // proactive checkpoints without a failure
	Checkpoints int           // periodic checkpoints taken
}

// Simulate runs a discrete-event model of an application needing work
// units of compute under periodic checkpointing with interval T, a failure
// process with the given MTTF, and a predictor with recall/precision as in
// the analytic model. It validates equations (1)-(7): with a perfect or
// absent predictor the measured waste approaches the closed forms.
//
// Event model per segment of length T: a periodic checkpoint costs C.
// Failures arrive exponentially. A failure is predicted with probability
// recall; predicted failures trigger a proactive checkpoint right before
// the hit, so only C (+R+D) is lost. Unpredicted failures roll back to the
// last checkpoint. False alarms arrive as their own Poisson process with
// rate N(1-P)/(P*MTTF) and cost one checkpoint each.
func Simulate(p Params, pred Predictor, T, work time.Duration, seed int64) SimResult {
	rng := rand.New(rand.NewSource(seed))
	var res SimResult

	mttf := p.MTTF.Seconds()
	var faRate float64 // false alarms per second
	if pred.Precision > 0 && pred.Precision < 1 {
		faRate = pred.Recall * (1 - pred.Precision) / (pred.Precision * mttf)
	}

	remaining := work.Seconds()
	wall := 0.0
	sinceCkpt := 0.0 // useful seconds since last checkpoint
	tSec := T.Seconds()

	nextFailure := stats.Exponential(rng, mttf)
	nextFA := simExp(rng, faRate)

	for remaining > 0 {
		// Next scheduled periodic checkpoint (in useful-work seconds).
		untilCkpt := tSec - sinceCkpt
		if untilCkpt > remaining {
			untilCkpt = remaining
		}
		// Advance until the earliest of: checkpoint due, failure, false
		// alarm. Failures and false alarms tick in wall-clock time; while
		// computing, wall time and work time advance together.
		step := untilCkpt
		event := "ckpt"
		if nextFailure < step {
			step = nextFailure
			event = "fail"
		}
		if nextFA < step {
			step = nextFA
			event = "fa"
		}
		wall += step
		remaining -= step
		sinceCkpt += step
		nextFailure -= step
		nextFA -= step

		switch event {
		case "ckpt":
			if remaining <= 0 {
				break
			}
			wall += p.C.Seconds()
			nextFailure -= p.C.Seconds() // failures can strike during a checkpoint
			res.Checkpoints++
			sinceCkpt = 0
			if nextFailure <= 0 {
				res.Failures++
				// Failure during the checkpoint: the checkpoint is lost.
				wall += p.R.Seconds() + p.D.Seconds()
				nextFailure = stats.Exponential(rng, mttf)
			}
		case "fail":
			res.Failures++
			if stats.Bernoulli(rng, pred.Recall) {
				// Predicted: proactive checkpoint right before the hit.
				res.Predicted++
				wall += p.C.Seconds()
				sinceCkpt = 0
			} else {
				// Unpredicted: roll back to the last checkpoint.
				remaining += sinceCkpt
				sinceCkpt = 0
			}
			wall += p.R.Seconds() + p.D.Seconds()
			nextFailure = stats.Exponential(rng, mttf)
		case "fa":
			res.FalseAlarms++
			wall += p.C.Seconds()
			sinceCkpt = 0
			nextFA = simExp(rng, faRate)
		}
	}
	res.WallClock = time.Duration(wall * float64(time.Second))
	res.UsefulWork = work
	if wall > 0 {
		res.Waste = 1 - work.Seconds()/wall
	}
	return res
}

// simExp draws an exponential gap for rate events/second, or +Inf for rate
// zero.
func simExp(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		return 1e18
	}
	return stats.Exponential(rng, 1/rate)
}
