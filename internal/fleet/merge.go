package fleet

import (
	"sort"
	"time"

	"github.com/elsa-hpc/elsa/internal/topology"
)

// Cluster is a cluster-level view of concurrently live forecasts for one
// event type, merged across shards: the fleet-wide analogue of a single
// monitor's correlated chain. Because shards partition by scope, the
// same fault propagating across two racks surfaces as predictions on two
// shards; the coordinator groups them so the operator sees one incident
// with its spanning scope, not two unrelated alarms.
type Cluster struct {
	Event  int      // predicted terminal event id
	Count  int      // live forecasts merged into this cluster
	Shards []string // contributing shards, sorted, deduplicated

	// Span is the smallest topology scope enclosing every trigger
	// location, i.e. how far the evidence says the fault has spread.
	Span topology.Scope

	// Earliest/Latest bound the union of the member forecast windows.
	Earliest time.Time
	Latest   time.Time

	// Degraded is set when any member was produced in a degraded mode
	// (shard catch-up replay or pipeline bypass).
	Degraded bool
}

// Clusters groups the recent merged predictions whose forecast windows
// are still live at now into cluster-level incidents, sorted by event id.
func (c *Coordinator) Clusters(now time.Time) []Cluster {
	type acc struct {
		cl   Cluster
		locs []topology.Location
		seen map[string]bool
	}
	byEvent := make(map[int]*acc)
	var order []int
	for i := range c.window {
		p := &c.window[i]
		if p.ExpectedLatest.Before(now) {
			continue // forecast window already closed
		}
		a := byEvent[p.Event]
		if a == nil {
			a = &acc{cl: Cluster{Event: p.Event, Earliest: p.ExpectedEarliest, Latest: p.ExpectedLatest},
				seen: make(map[string]bool)}
			byEvent[p.Event] = a
			order = append(order, p.Event)
		}
		a.cl.Count++
		if !a.seen[p.Shard] {
			a.seen[p.Shard] = true
			a.cl.Shards = append(a.cl.Shards, p.Shard)
		}
		a.locs = append(a.locs, p.Trigger)
		if p.ExpectedEarliest.Before(a.cl.Earliest) {
			a.cl.Earliest = p.ExpectedEarliest
		}
		if p.ExpectedLatest.After(a.cl.Latest) {
			a.cl.Latest = p.ExpectedLatest
		}
		a.cl.Degraded = a.cl.Degraded || p.Degraded
	}
	sort.Ints(order)
	out := make([]Cluster, 0, len(order))
	for _, ev := range order {
		a := byEvent[ev]
		a.cl.Span = topology.SpanScope(a.locs)
		sort.Strings(a.cl.Shards)
		out = append(out, a.cl)
	}
	return out
}
