package fleet

import (
	"fmt"
	"testing"
)

// ringKeys builds a synthetic scope-key population shaped like the
// machines the fleet partitions: rack and midplane codes plus flat
// hostnames.
func ringKeys(n int) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		switch i % 3 {
		case 0:
			keys = append(keys, fmt.Sprintf("R%02d", i%64))
		case 1:
			keys = append(keys, fmt.Sprintf("R%02d-M%d", i%64, i%2))
		default:
			keys = append(keys, fmt.Sprintf("tg-c%03d", i))
		}
	}
	// Dedup (the generator can repeat codes for small moduli).
	seen := make(map[string]bool, len(keys))
	out := keys[:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// The scope→shard map must be a pure function of the member set: two
// rings built with the same members in different orders agree on every
// key, across runs (no map iteration, no global rand).
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	for _, m := range []string{"shard0", "shard1", "shard2", "shard3"} {
		a.Add(m)
	}
	for _, m := range []string{"shard3", "shard1", "shard0", "shard2"} {
		b.Add(m)
	}
	for _, k := range ringKeys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("key %q: owner %q vs %q for the same member set", k, ao, bo)
		}
	}
}

// Adding one member must move keys only TO the new member (every other
// key keeps its owner), and the moved fraction must be near 1/(n+1) —
// the consistent-hashing stability contract that makes shard rebalance
// an incremental migration instead of a full reshuffle.
func TestRingAddMovesOnlyExpectedFraction(t *testing.T) {
	keys := ringKeys(4000)
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Add("shard4")
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after == before[k] {
			continue
		}
		if after != "shard4" {
			t.Fatalf("key %q moved %q -> %q: keys may only move to the added member", k, before[k], after)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	if frac == 0 {
		t.Fatal("adding a member moved no keys: it owns nothing")
	}
	// Ideal is 1/5 = 0.20; allow generous variance for vnode placement.
	if frac < 0.08 || frac > 0.35 {
		t.Fatalf("adding 5th member moved %.1f%% of keys, want ≈20%%", 100*frac)
	}
}

// Removing one member must move only that member's keys; everyone else's
// assignment is untouched.
func TestRingRemoveMovesOnlyVictimKeys(t *testing.T) {
	keys := ringKeys(4000)
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("shard2")
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] == "shard2" {
			if after == "shard2" {
				t.Fatalf("key %q still owned by removed member", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved %q -> %q though its owner was not removed", k, before[k], after)
		}
	}
	if got := r.Members(); len(got) != 4 {
		t.Fatalf("members after remove = %v", got)
	}
}

// The ring must spread a realistic key population roughly evenly.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(6000)
	r := NewRing(0)
	n := 4
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	want := len(keys) / n
	for m, c := range counts {
		if c < want/3 || c > want*3 {
			t.Fatalf("member %s owns %d of %d keys (ideal %d): imbalanced", m, c, len(keys), want)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d members own keys", len(counts), n)
	}
}
