package fleet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	elsa "github.com/elsa-hpc/elsa"
	"github.com/elsa-hpc/elsa/internal/chaos"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/resilience"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// feedOK feeds the reference monitor one record, failing the test on an
// unexpected error — reference runs never feed a closed monitor.
func feedOK(t *testing.T, mon *elsa.Monitor, r logs.Record) []elsa.Prediction {
	t.Helper()
	preds, err := mon.Feed(r)
	if err != nil {
		t.Fatalf("Feed: %v", err)
	}
	return preds
}

// Shared fixture: one trained model (as a saved blob, so every test and
// every fleet loads a private copy) and the test-window stream.
var (
	fixOnce  sync.Once
	fixBlob  []byte
	fixTest  []logs.Record
	fixStart time.Time
	fixEnd   time.Time
)

func fixture(t *testing.T) (*elsa.Model, []logs.Record, time.Time, time.Time) {
	t.Helper()
	fixOnce.Do(func() {
		start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
		log := elsa.GenerateBGL(85, start, 4*24*time.Hour)
		cut := start.Add(2 * 24 * time.Hour)
		train, test, _ := log.Split(cut)
		model := elsa.Train(train, start, cut, elsa.DefaultTrainConfig())
		var blob bytes.Buffer
		if err := model.Save(&blob); err != nil {
			panic(err)
		}
		// Half the test window keeps the suite fast (it still carries
		// dozens of predictions) — every test replays the full stream
		// several times, some under the race detector.
		test = test[:len(test)/2]
		fixBlob = blob.Bytes()
		fixTest = test
		fixStart = cut
		fixEnd = test[len(test)-1].Time.Add(time.Hour)
	})
	model, err := elsa.LoadModel(bytes.NewReader(fixBlob))
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	return model, fixTest, fixStart, fixEnd
}

// testConfig is a fleet config tuned for tests: no real sleeping in the
// recovery loop, a snapshot cadence small enough to exercise trims, and
// a failure budget kills alone will not trip.
func testConfig(shards int) Config {
	return Config{
		Shards:        shards,
		Scope:         topology.ScopeRack,
		SnapshotEvery: 500,
		FeedTimeout:   2 * time.Second,
		Handoff:       HandoffPolicy{Seed: 7, Sleep: func(time.Duration) {}},
		Supervision:   resilience.Policy{MaxFailures: 1000, Seed: 7},
	}
}

// runFleet drives a fleet over recs, invoking fault (if non-nil) before
// each record, and returns the full merged stream (Close tail included)
// and the final stats.
func runFleet(t *testing.T, cfg Config, recs []logs.Record, end time.Time,
	fault func(i int, c *Coordinator)) ([]Merged, Stats) {
	t.Helper()
	model, _, start, _ := fixture(t)
	c, err := New(model, start, cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	var merged []Merged
	for i, r := range recs {
		if fault != nil {
			fault(i, c)
		}
		merged = append(merged, c.Feed(r)...)
	}
	merged = append(merged, c.AdvanceTo(end)...)
	res := c.Close()
	merged = append(merged, res.Tail...)
	return merged, res.Stats
}

// cleanRuns caches the fault-free reference run per shard count: several
// tests compare a faulted run against the same clean baseline.
var (
	cleanMu   sync.Mutex
	cleanRuns = map[int][]Merged{}
)

func cleanRun(t *testing.T, shards int) []Merged {
	t.Helper()
	cleanMu.Lock()
	defer cleanMu.Unlock()
	if m, ok := cleanRuns[shards]; ok {
		return m
	}
	m, stats := runFleet(t, testConfig(shards), fixTest, fixEnd, nil)
	if stats.Predictions == 0 {
		t.Fatal("clean fleet emitted no predictions")
	}
	cleanRuns[shards] = m
	return m
}

// byShard splits a merged stream into per-shard streams and verifies the
// exactly-once contract: within each shard, Seq is gapless from 0.
func byShard(t *testing.T, merged []Merged) map[string][]Merged {
	t.Helper()
	out := make(map[string][]Merged)
	for _, m := range merged {
		if want := int64(len(out[m.Shard])); m.Seq != want {
			t.Fatalf("shard %s: merged seq %d, want %d (duplicate or gap in the stream)",
				m.Shard, m.Seq, want)
		}
		out[m.Shard] = append(out[m.Shard], m)
	}
	return out
}

// sameModuloDegraded asserts two per-shard streams carry identical
// predictions in identical order, ignoring only the Degraded flag, and
// returns how many predictions were flagged in got but not in want.
func sameModuloDegraded(t *testing.T, name string, got, want []Merged) int64 {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("shard %s: %d predictions, clean run has %d", name, len(got), len(want))
	}
	var flagged int64
	for i := range got {
		g, w := got[i].Prediction, want[i].Prediction
		if g.Degraded && !w.Degraded {
			flagged++
		}
		g.Degraded, w.Degraded = false, false
		if g != w {
			t.Fatalf("shard %s: prediction %d differs:\nfaulted %+v\nclean   %+v", name, i, g, w)
		}
	}
	return flagged
}

// TestSingleShardFleetMatchesMonitor proves the N=1 baseline: a
// one-shard fleet is byte-identical to a bare Monitor over the same
// stream — coordinator, journal, and snapshot cadence add nothing.
func TestSingleShardFleetMatchesMonitor(t *testing.T) {
	model, test, start, end := fixture(t)
	ref := model.NewMonitor(start)
	var want []predict.Prediction
	for _, r := range test {
		want = append(want, feedOK(t, ref, r)...)
	}
	want = append(want, ref.AdvanceTo(end)...)
	ref.Close()
	if len(want) == 0 {
		t.Fatal("reference monitor emitted no predictions; fixture too quiet")
	}

	merged, stats := runFleet(t, testConfig(1), test, end, nil)
	if len(merged) != len(want) {
		t.Fatalf("fleet emitted %d predictions, monitor %d", len(merged), len(want))
	}
	for i := range merged {
		if merged[i].Shard != "shard0" || merged[i].Seq != int64(i) {
			t.Fatalf("merged[%d] carries shard=%s seq=%d", i, merged[i].Shard, merged[i].Seq)
		}
		if merged[i].Prediction != want[i] {
			t.Fatalf("prediction %d differs:\nfleet   %+v\nmonitor %+v", i, merged[i].Prediction, want[i])
		}
	}
	if stats.Degraded != 0 || stats.Misrouted != 0 || stats.Lost != 0 {
		t.Fatalf("clean run accounting not clean: %+v", stats)
	}
	if stats.Shards[0].Snapshots == 0 {
		t.Fatal("snapshot cadence never fired; the failover path is untested by this stream")
	}
}

// TestSingleShardFailoverStreamEqual is the migration-equality headline
// for the crash path: kill the only shard mid-stream and the merged
// stream must still be byte-identical to the uninterrupted monitor's —
// catch-up predictions regenerated by the journal replay are identical
// in content, merely flagged Degraded.
func TestSingleShardFailoverStreamEqual(t *testing.T) {
	model, test, start, end := fixture(t)
	ref := model.NewMonitor(start)
	var want []predict.Prediction
	for _, r := range test {
		want = append(want, feedOK(t, ref, r)...)
	}
	want = append(want, ref.AdvanceTo(end)...)
	ref.Close()

	kills := map[int]bool{len(test) / 3: true, 2 * len(test) / 3: true}
	merged, stats := runFleet(t, testConfig(1), test, end, func(i int, c *Coordinator) {
		if kills[i] {
			if !c.Kill("shard0") {
				t.Fatalf("kill at %d found no live incarnation", i)
			}
		}
	})
	if len(merged) != len(want) {
		t.Fatalf("faulted stream emitted %d predictions, clean %d", len(merged), len(want))
	}
	for i := range merged {
		g := merged[i].Prediction
		g.Degraded = false
		if g != want[i] {
			t.Fatalf("prediction %d differs after failover:\nfaulted %+v\nclean   %+v", i, g, want[i])
		}
	}
	sh := stats.Shards[0]
	if sh.Failovers != 2 {
		t.Fatalf("failovers = %d, want 2 (stats: %+v)", sh.Failovers, sh)
	}
	if sh.ReplayShort != 0 || stats.Lost != 0 {
		t.Fatalf("accounting violated: replayShort=%d lost=%d", sh.ReplayShort, stats.Lost)
	}
	if sh.Gaps != 2 || sh.GapEntries != 2 {
		t.Fatalf("gap accounting: gaps=%d gapEntries=%d, want 2/2 (one journaled entry per outage)",
			sh.Gaps, sh.GapEntries)
	}
	if sh.Supervisor.Panics != 2 {
		t.Fatalf("supervisor charged %d failures, want 2", sh.Supervisor.Panics)
	}
}

// TestMultiShardFailoverMatchesCleanFleet proves migration equality for
// a real fleet: kill different shards at different points mid-stream;
// each shard's merged stream must match the clean fleet's byte-for-byte
// modulo Degraded flags, with the degraded count exactly accounted.
func TestMultiShardFailoverMatchesCleanFleet(t *testing.T) {
	_, test, _, end := fixture(t)
	cfg := testConfig(3)
	wantByShard := byShard(t, cleanRun(t, 3))

	names := []string{"shard0", "shard1", "shard2"}
	kills := int64(0)
	merged, stats := runFleet(t, cfg, test, end, func(i int, c *Coordinator) {
		if i > 0 && i%(len(test)/5) == 0 {
			if c.Kill(names[(i/(len(test)/5))%3]) {
				kills++
			}
		}
	})
	gotByShard := byShard(t, merged)
	if len(gotByShard) != len(wantByShard) {
		t.Fatalf("faulted run used %d shards, clean %d", len(gotByShard), len(wantByShard))
	}
	var flagged int64
	for name, want := range wantByShard {
		flagged += sameModuloDegraded(t, name, gotByShard[name], want)
	}
	if flagged != stats.Degraded {
		t.Fatalf("degraded accounting: %d predictions flagged, stats say %d", flagged, stats.Degraded)
	}
	var failovers int64
	for _, sh := range stats.Shards {
		failovers += sh.Failovers
		if sh.ReplayShort != 0 {
			t.Fatalf("shard %s: replayShort=%d", sh.Name, sh.ReplayShort)
		}
	}
	if kills == 0 || failovers != kills {
		t.Fatalf("failovers = %d, kills = %d: every kill must cost exactly one failover", failovers, kills)
	}
	if stats.Lost != 0 {
		t.Fatalf("lost entries: %d", stats.Lost)
	}
}

// TestPlannedHandoffByteIdentical proves the rebalance path: a planned
// snapshot-handoff succession drains the worker first, so the merged
// stream is byte-identical with zero Degraded predictions and no gap.
func TestPlannedHandoffByteIdentical(t *testing.T) {
	_, test, _, end := fixture(t)
	cfg := testConfig(3)
	wantByShard := byShard(t, cleanRun(t, 3))

	handoffs := 0
	merged, stats := runFleet(t, cfg, test, end, func(i int, c *Coordinator) {
		if i > 0 && i%(len(test)/4) == 0 {
			name := c.ShardNames()[handoffs%3]
			if err := c.Handoff(name); err != nil {
				t.Fatalf("handoff %d (%s): %v", handoffs, name, err)
			}
			handoffs++
		}
	})
	gotByShard := byShard(t, merged)
	for name, want := range wantByShard {
		sameModuloDegraded(t, name, gotByShard[name], want)
	}
	if stats.Degraded != 0 {
		t.Fatalf("planned handoffs produced %d degraded predictions, want 0", stats.Degraded)
	}
	var hs, gaps int64
	for _, sh := range stats.Shards {
		hs += sh.Handoffs
		gaps += sh.Gaps
	}
	if hs != int64(handoffs) || handoffs == 0 {
		t.Fatalf("handoffs recorded = %d, performed = %d", hs, handoffs)
	}
	if gaps != 0 {
		t.Fatalf("planned handoffs opened %d gaps, want 0", gaps)
	}
}

// TestMisrouteSelfHeals proves the split-scope fault: records offered to
// the wrong shard are detected by the ownership check, re-routed, and
// exactly counted — the merged stream does not change at all.
func TestMisrouteSelfHeals(t *testing.T) {
	_, test, _, end := fixture(t)
	cfg := testConfig(3)
	wantByShard := byShard(t, cleanRun(t, 3))

	injected := int64(0)
	merged, stats := runFleet(t, cfg, test, end, func(i int, c *Coordinator) {
		if i%97 == 0 {
			c.Misroute(1)
			injected++
		}
	})
	gotByShard := byShard(t, merged)
	for name, want := range wantByShard {
		if flagged := sameModuloDegraded(t, name, gotByShard[name], want); flagged != 0 {
			t.Fatalf("shard %s: misroutes degraded %d predictions", name, flagged)
		}
	}
	if stats.Misrouted != injected {
		t.Fatalf("misrouted = %d, injected = %d: not exactly accounted", stats.Misrouted, injected)
	}
}

// TestStallFailoverStreamEqual proves the liveness probe: a shard that
// wedges past FeedTimeout is abandoned and failed over, and the merged
// stream still matches the clean run modulo Degraded.
func TestStallFailoverStreamEqual(t *testing.T) {
	_, test, _, end := fixture(t)
	cfg := testConfig(2)
	cfg.FeedTimeout = 50 * time.Millisecond * raceSlack
	// The clean baseline uses the default FeedTimeout; the prediction
	// stream does not depend on the liveness bound.
	wantByShard := byShard(t, cleanRun(t, 2))

	merged, stats := runFleet(t, cfg, test, end, func(i int, c *Coordinator) {
		if i == len(test)/2 {
			if !c.Stall("shard0") {
				t.Fatal("stall found no live incarnation")
			}
		}
	})
	gotByShard := byShard(t, merged)
	for name, want := range wantByShard {
		sameModuloDegraded(t, name, gotByShard[name], want)
	}
	sh := stats.Shards[0]
	if sh.Failovers == 0 {
		t.Fatalf("stall did not force a failover: %+v", sh)
	}
	if sh.Supervisor.LastPanic == "" {
		t.Fatal("liveness failure not charged to the supervisor")
	}
}

// TestBreakerHoldsShardDownAndAccountsLoss drives a shard into an
// unrecoverable state: restore failures exhaust the failure budget, the
// breaker opens, recovery is denied (degraded mode with the gap
// accruing), and Close accounts the exact loss.
func TestBreakerHoldsShardDownAndAccountsLoss(t *testing.T) {
	_, test, _, end := fixture(t)
	cfg := testConfig(2)
	cfg.Supervision = resilience.Policy{
		MaxFailures: 3,
		Cooldown:    time.Hour, // never half-opens within the test
		Seed:        7,
	}
	kill := len(test) / 2
	merged, stats := runFleet(t, cfg, test, end, func(i int, c *Coordinator) {
		if i == kill {
			c.FailRestores("shard0", 1_000_000)
			c.Kill("shard0")
		}
	})
	byShard(t, merged) // seq contiguity must hold even for the dead shard's prefix
	var victim ShardStats
	for _, sh := range stats.Shards {
		if sh.Name == "shard0" {
			victim = sh
		}
	}
	if victim.State != "down" {
		t.Fatalf("victim state = %q, want down", victim.State)
	}
	if victim.Supervisor.Health != resilience.Degraded {
		t.Fatalf("breaker state = %v, want Degraded", victim.Supervisor.Health)
	}
	if victim.RecoveryDenied == 0 {
		t.Fatal("open breaker never denied a recovery round")
	}
	if victim.RestoreFailures == 0 || victim.Supervisor.Trips == 0 {
		t.Fatalf("restore failures/trips not accounted: %+v", victim)
	}
	if victim.LostEntries == 0 {
		t.Fatal("unrecoverable shard reports no lost entries")
	}
	if victim.LostEntries != victim.GapEntries {
		t.Fatalf("loss accounting: lost=%d, gap entries=%d — every unserved entry must be counted lost",
			victim.LostEntries, victim.GapEntries)
	}
	// The healthy shard must be untouched.
	for _, sh := range stats.Shards {
		if sh.Name != "shard0" && (sh.Failovers != 0 || sh.LostEntries != 0) {
			t.Fatalf("healthy shard perturbed: %+v", sh)
		}
	}
}

// chaosRun executes the seeded chaos schedule once and returns the
// merged stream, fleet stats and injector stats.
func chaosRun(t *testing.T, seed int64) ([]Merged, Stats, chaos.FleetStats) {
	t.Helper()
	_, test, _, end := fixture(t)
	if len(test) > 20_000 {
		test = test[:20_000]
	}
	cleanTail := len(test) - 2_000 // no faults in the tail: recovery must complete
	cfg := testConfig(3)
	cfg.FeedTimeout = 100 * time.Millisecond * raceSlack
	cfg.SnapshotEvery = 300

	model, _, start, _ := fixture(t)
	c, err := New(model, start, cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	inj := chaos.NewFleet(c, chaos.FleetConfig{
		Seed:        seed,
		Kill:        0.0015,
		Stall:       0.0005,
		RestoreFail: 0.001,
		Misroute:    0.002,
		Rebalance:   0.0005,
	})
	var merged []Merged
	for i, r := range test {
		if i < cleanTail {
			inj.Step()
		}
		merged = append(merged, c.Feed(r)...)
	}
	merged = append(merged, c.AdvanceTo(end)...)
	res := c.Close()
	merged = append(merged, res.Tail...)
	return merged, res.Stats, inj.FleetStats()
}

// TestChaosFleetSuite is the acceptance chaos run: a seeded mix of shard
// kills, stalls, restore failures, split-scope misroutes and planned
// rebalances over the stream, with a clean tail. No panic, no wedge
// (the run completes), exact accounting, and full recovery by Close.
func TestChaosFleetSuite(t *testing.T) {
	merged, stats, faults := chaosRun(t, 42)
	byShard(t, merged)

	if faults.Kills == 0 || faults.Misroutes == 0 || faults.RestoresArmd == 0 {
		t.Fatalf("chaos schedule too quiet to prove anything: %+v", faults)
	}
	if stats.Misrouted != faults.Misroutes {
		t.Fatalf("misroute accounting: coordinator %d, injected %d", stats.Misrouted, faults.Misroutes)
	}
	if stats.Lost != 0 {
		t.Fatalf("entries lost despite clean tail and force-recovery: %d (stats %+v)", stats.Lost, stats)
	}
	var failovers int64
	for _, sh := range stats.Shards {
		if sh.ReplayShort != 0 {
			t.Fatalf("shard %s: replay accounting violated (%d)", sh.Name, sh.ReplayShort)
		}
		if sh.State != "closed" {
			// The tail is clean, Close force-recovers, and armed restore
			// failures are bounded below the attempt budget: every shard
			// must end recovered and cleanly flushed. Anything else is a
			// wedge.
			t.Fatalf("shard %s ended %q (lost=%d flushFails=%d): clean-tail recovery failed",
				sh.Name, sh.State, sh.LostEntries, sh.FlushFailures)
		}
		if sh.FlushFailures != 0 {
			t.Fatalf("shard %s failed its close flush", sh.Name)
		}
		failovers += sh.Failovers
	}
	if failovers == 0 {
		t.Fatal("chaos run recorded no failovers")
	}
	if stats.Predictions == 0 {
		t.Fatal("chaos run emitted no predictions")
	}
}

// TestChaosFleetDeterminism re-runs the identical seeded schedule and
// demands an identical merged stream and identical accounting: every
// failover, replay and misroute decision is reproducible.
func TestChaosFleetDeterminism(t *testing.T) {
	m1, s1, f1 := chaosRun(t, 99)
	m2, s2, f2 := chaosRun(t, 99)
	if f1 != f2 {
		t.Fatalf("fault schedules diverged:\nrun1 %+v\nrun2 %+v", f1, f2)
	}
	if len(m1) != len(m2) {
		t.Fatalf("merged streams diverged: %d vs %d predictions", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("merged[%d] diverged:\nrun1 %+v\nrun2 %+v", i, m1[i], m2[i])
		}
	}
	if s1.Predictions != s2.Predictions || s1.Degraded != s2.Degraded ||
		s1.Misrouted != s2.Misrouted || s1.Lost != s2.Lost {
		t.Fatalf("stats diverged:\nrun1 %+v\nrun2 %+v", s1, s2)
	}
}

// TestClustersGroupAcrossShards exercises the cluster-level merge view:
// forecasts for one event from two shards collapse into one incident
// with the spanning scope; closed windows drop out.
func TestClustersGroupAcrossShards(t *testing.T) {
	now := time.Date(2006, 7, 3, 12, 0, 0, 0, time.UTC)
	mk := func(shard string, event int, loc string, latest time.Time, degraded bool) Merged {
		return Merged{Shard: shard, Prediction: predict.Prediction{
			Event:            event,
			Trigger:          topology.MustParse(loc),
			ExpectedEarliest: latest.Add(-10 * time.Minute),
			ExpectedLatest:   latest,
			Degraded:         degraded,
		}}
	}
	c := &Coordinator{window: []Merged{
		mk("shard0", 7, "R00-M0", now.Add(5*time.Minute), false),
		mk("shard1", 7, "R01-M1", now.Add(8*time.Minute), true),
		mk("shard0", 9, "R02", now.Add(-time.Minute), false), // window closed
		mk("shard2", 11, "R03", now.Add(time.Minute), false),
	}}
	cls := c.Clusters(now)
	if len(cls) != 2 {
		t.Fatalf("clusters = %d, want 2 (event 9's window is closed): %+v", len(cls), cls)
	}
	ev7 := cls[0]
	if ev7.Event != 7 || ev7.Count != 2 || len(ev7.Shards) != 2 {
		t.Fatalf("event-7 cluster malformed: %+v", ev7)
	}
	if ev7.Span != topology.ScopeSystem {
		t.Fatalf("event-7 span = %v, want system (triggers in two racks)", ev7.Span)
	}
	if !ev7.Degraded {
		t.Fatal("event-7 cluster must inherit the degraded flag")
	}
	if ev7.Latest != now.Add(8*time.Minute) {
		t.Fatalf("event-7 window union wrong: %+v", ev7)
	}
	if cls[1].Event != 11 || cls[1].Degraded {
		t.Fatalf("event-11 cluster malformed: %+v", cls[1])
	}
}
