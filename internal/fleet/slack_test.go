//go:build !race

package fleet

// raceSlack is 1 without the race detector: the tight test timeouts
// run as written. See slack_race_test.go.
const raceSlack = 1
