// Package fleet shards the online monitor across N supervised workers.
//
// Records are partitioned by topology scope — each record hashes by its
// location truncated to the configured scope (rack, midplane, ...) on a
// consistent-hash ring — so one shard owns all the evidence for a
// physical neighbourhood and its chain matching sees the same local
// stream a dedicated monitor would. A coordinator routes records,
// journals every delivery, merges the per-shard prediction streams into
// one cluster-level stream, and supervises the shards' lifecycles.
//
// The headline property is fault tolerance of the fleet itself. Every
// shard incarnation runs under an internal/resilience supervisor with a
// liveness-probed request path; when an incarnation panics, wedges, or
// is killed, the coordinator restores a successor from the shard's last
// snapshot + recorded ingest offset and replays the journaled suffix —
// with jittered-exponential retry backoff and breaker gating — so the
// merged prediction stream is exactly the clean run's stream, with the
// catch-up predictions flagged Degraded and every gap entry accounted.
// A planned handoff (Rebalance) drains the live worker through a fresh
// snapshot first, so succession is byte-identical with no degraded span.
//
// Semantics note: partitioning changes what each shard's statistics see
// (per-scope streams instead of the global stream), so an N-shard fleet
// is a partitioned view, not a bit-replica of a single monitor — except
// for N=1, which is proven byte-identical, failover included. See
// DESIGN.md §15.
//
// The Coordinator is not safe for concurrent use: one goroutine feeds
// it, mirroring pipeline.Session's synchronous driver contract.
package fleet

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/resilience"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Fleet defaults.
const (
	DefaultShards        = 4
	DefaultSnapshotEvery = 100_000
	DefaultFeedTimeout   = 2 * time.Second
	DefaultHandoffTries  = 3
)

// HandoffPolicy bounds the coordinator's restore/handoff retry loop.
type HandoffPolicy struct {
	// MaxAttempts is how many restore attempts one recovery round makes
	// before leaving the shard down (the next delivery starts a new
	// round, breaker permitting). <= 0 selects DefaultHandoffTries.
	MaxAttempts int
	// Base/Max/Jitter/Seed shape the capped jittered-exponential delay
	// between attempts (resilience.Backoff); zero values select the
	// supervision defaults.
	Base   time.Duration
	Max    time.Duration
	Jitter float64
	Seed   int64
	// Sleep injects the delay implementation; nil selects time.Sleep.
	// Tests pass a recorder so recovery runs without real waiting.
	Sleep func(time.Duration)
}

// Config tunes a fleet.
type Config struct {
	// Shards is the logical shard count. <= 0 selects DefaultShards.
	Shards int
	// Scope is the partitioning granularity: records hash by their
	// location truncated to this scope. The zero value partitions at
	// node scope (finest); rack or midplane match the paper's
	// propagation neighbourhoods.
	Scope topology.Scope
	// Replicas is the ring's virtual-point count per shard; <= 0 selects
	// DefaultReplicas.
	Replicas int
	// SnapshotEvery is how many journal entries a shard absorbs between
	// automatic snapshots (the failover replay bound). 0 selects
	// DefaultSnapshotEvery; negative disables automatic snapshots.
	SnapshotEvery int
	// FeedTimeout bounds every synchronous worker call; a miss is a
	// failed liveness probe and the incarnation is abandoned. <= 0
	// selects DefaultFeedTimeout.
	FeedTimeout time.Duration
	// Handoff tunes the restore retry loop.
	Handoff HandoffPolicy
	// Supervision is the per-shard breaker policy; shard i runs under
	// Seed+i so backoff schedules are decorrelated but reproducible.
	Supervision resilience.Policy
}

// normalised fills config defaults.
func (cfg Config) normalised() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.FeedTimeout <= 0 {
		cfg.FeedTimeout = DefaultFeedTimeout
	}
	if cfg.Handoff.MaxAttempts <= 0 {
		cfg.Handoff.MaxAttempts = DefaultHandoffTries
	}
	if cfg.Handoff.Sleep == nil {
		cfg.Handoff.Sleep = func(d time.Duration) { time.Sleep(d) }
	}
	return cfg
}

// Merged is one prediction in the cluster-level stream: the shard that
// produced it and its position in that shard's prediction sequence.
// Within one shard Seq is gapless and strictly increasing — the exactly-
// once guarantee the failover replay's duplicate-skip preserves.
type Merged struct {
	Shard string
	Seq   int64
	predict.Prediction
}

// ShardStats is one slot's accounting snapshot.
type ShardStats struct {
	Name   string
	State  string // "active" or "down"
	Scopes int    // scope keys this shard owns (of those seen so far)

	Entries  int64 // journal entries delivered (records + advances)
	Records  int64
	Advances int64

	Predictions int64 // predictions merged into the cluster stream
	Degraded    int64 // of those, catch-up predictions flagged Degraded

	Gaps       int64 // outage windows closed by failover
	GapEntries int64 // entries that arrived while no incarnation was live
	Misrouted  int64 // records offered here that another shard owned

	Snapshots       int64
	SnapshotFails   int64
	JournalLen      int // entries currently replayable
	Handoffs        int64
	Failovers       int64
	RestoreFailures int64
	RecoveryDenied  int64 // recovery rounds refused by the open breaker
	ReplayShort     int64 // accounting violations (replay produced too few predictions); must be 0
	LostEntries     int64 // entries never served by any incarnation (unrecoverable shard)
	FlushFailures   int64 // Close flushes that failed (the shard's open-tick tail is missing)

	Supervisor resilience.Stats
}

// Stats is a point-in-time snapshot of the whole fleet.
type Stats struct {
	Shards      []ShardStats
	Scopes      int   // distinct scope keys routed so far
	Records     int64 // records fed
	Misrouted   int64 // total misrouted deliveries self-healed
	Predictions int64
	Degraded    int64
	Lost        int64
}

// Result is what Close returns: the flushed tail of the merged stream,
// each shard's full run result, and the final accounting.
type Result struct {
	Tail     []Merged
	PerShard map[string]*predict.Result
	Stats    Stats
}
