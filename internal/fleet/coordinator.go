package fleet

import (
	"bytes"
	"fmt"
	"time"

	elsa "github.com/elsa-hpc/elsa"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/resilience"
)

// Coordinator routes records to shard slots, journals deliveries,
// supervises incarnations, and merges per-shard predictions into one
// cluster-level stream. Not safe for concurrent use.
type Coordinator struct {
	cfg   Config
	start time.Time
	blob  []byte // serialised model every incarnation loads privately

	ring   *Ring
	slots  []*slot
	byName map[string]*slot
	owners map[string]*slot // scope key -> owning slot (route cache)

	records   int64
	misrouted int64

	// misrouteNext arms the split-scope chaos fault: the next n routed
	// records are offered to a ring-adjacent wrong slot, exercising the
	// coordinator's ownership self-check.
	misrouteNext int

	window []Merged // recent merged predictions, for the cluster view

	closed bool
	result *Result
}

// New builds a fleet from a trained model. The model is serialised once;
// every shard incarnation deserialises its own private copy, because
// resuming a monitor mutates its model's template organizer and shards
// must never share that state.
func New(model *elsa.Model, start time.Time, cfg Config) (*Coordinator, error) {
	cfg = cfg.normalised()
	var blob bytes.Buffer
	if err := model.Save(&blob); err != nil {
		return nil, fmt.Errorf("fleet: serialise model: %w", err)
	}
	c := &Coordinator{
		cfg:    cfg,
		start:  start,
		blob:   blob.Bytes(),
		ring:   NewRing(cfg.Replicas),
		byName: make(map[string]*slot),
		owners: make(map[string]*slot),
	}
	for i := 0; i < cfg.Shards; i++ {
		name := fmt.Sprintf("shard%d", i)
		pol := cfg.Supervision
		pol.Seed += int64(i) // decorrelated but reproducible per-shard jitter
		sl := &slot{
			name: name,
			sup:  resilience.New("fleet/"+name, pol),
			bo: resilience.NewBackoff(cfg.Handoff.Base, cfg.Handoff.Max,
				cfg.Handoff.Jitter, cfg.Handoff.Seed+int64(i)),
		}
		c.ring.Add(name)
		c.slots = append(c.slots, sl)
		c.byName[name] = sl
	}
	for _, sl := range c.slots {
		mon, err := c.newMonitor(nil)
		if err != nil {
			return nil, fmt.Errorf("fleet: start %s: %w", sl.name, err)
		}
		sl.spawn(mon)
		sl.state = slotActive
	}
	return c, nil
}

// newMonitor builds a fresh incarnation's monitor: a private model from
// the blob, resumed from snap when the shard has one.
func (c *Coordinator) newMonitor(snap []byte) (*elsa.Monitor, error) {
	m, err := elsa.LoadModel(bytes.NewReader(c.blob))
	if err != nil {
		return nil, err
	}
	if snap == nil {
		return m.NewMonitor(c.start), nil
	}
	return m.ResumeMonitor(bytes.NewReader(snap))
}

// ownerOf maps a record to the slot owning its scope key.
func (c *Coordinator) ownerOf(rec logs.Record) *slot {
	key := rec.Location.Truncate(c.cfg.Scope).String()
	if sl, ok := c.owners[key]; ok {
		return sl
	}
	sl := c.byName[c.ring.Owner(key)]
	c.owners[key] = sl
	return sl
}

// Feed routes one record to its owning shard and returns the merged
// predictions that became visible.
func (c *Coordinator) Feed(rec logs.Record) []Merged {
	if c.closed {
		return nil
	}
	c.records++
	sl := c.ownerOf(rec)
	if c.misrouteNext > 0 && len(c.slots) > 1 {
		// Split-scope fault: offer the record to the ring-adjacent wrong
		// slot; deliver's ownership check must self-heal.
		c.misrouteNext--
		for i, s := range c.slots {
			if s == sl {
				sl = c.slots[(i+1)%len(c.slots)]
				break
			}
		}
	}
	out := c.deliver(sl, entry{kind: reqFeed, rec: rec})
	c.noteWindow(out)
	return out
}

// AdvanceTo closes sampling ticks up to now on every shard (the
// watermark is global: quiet shards must expire chains too).
func (c *Coordinator) AdvanceTo(now time.Time) []Merged {
	if c.closed {
		return nil
	}
	var out []Merged
	for _, sl := range c.slots {
		out = append(out, c.deliver(sl, entry{kind: reqAdvance, t: now})...)
	}
	c.noteWindow(out)
	return out
}

// deliver journals one entry at its owning slot and drives it through
// the live incarnation, triggering recovery when the slot is down or the
// incarnation fails the liveness probe.
func (c *Coordinator) deliver(sl *slot, e entry) []Merged {
	if e.kind == reqFeed {
		if owner := c.ownerOf(e.rec); owner != sl {
			// Ownership self-check: a routing flap offered the record to a
			// shard that does not own its scope. Count it and re-route to
			// the true owner; the record is never journaled here.
			sl.misrouted++
			c.misrouted++
			sl = owner
		}
	}
	sl.journal = append(sl.journal, e)
	sl.seq++
	if e.kind == reqFeed {
		sl.records++
	} else {
		sl.advances++
	}

	if sl.state == slotDown {
		sl.gapEntries++
		sl.gapOpen++
		return c.recoverSlot(sl, false, false)
	}

	req := request{kind: e.kind, rec: e.rec, t: e.t, stall: sl.stallNext}
	sl.stallNext = 0
	resp, ok := sl.call(req, c.cfg.FeedTimeout)
	switch {
	case !ok:
		// Liveness probe missed: wedged or died without answering.
		c.abandon(sl, "liveness probe timed out")
		sl.gapEntries++
		sl.gapOpen++
		return c.recoverSlot(sl, false, false)
	case resp.panicked:
		// The worker replied through the panic barrier and exited; the
		// supervisor already charged the panic.
		sl.w = nil
		sl.state = slotDown
		sl.gapEntries++
		sl.gapOpen++
		return c.recoverSlot(sl, false, false)
	}
	out := sl.merge(resp.preds, false)
	sl.served = sl.seq
	if c.cfg.SnapshotEvery > 0 && sl.seq-sl.snapSeq >= int64(c.cfg.SnapshotEvery) {
		c.takeSnapshot(sl)
	}
	return out
}

// abandon retires a live incarnation as failed: the stop channel ends
// the (possibly wedged) worker goroutine whenever it next looks, and the
// failure is charged to the shard's breaker budget.
func (c *Coordinator) abandon(sl *slot, reason string) {
	sl.retire()
	sl.sup.Fail(reason)
}

// recoverSlot runs one bounded recovery round for a down slot: restore
// attempts gated by the breaker (unless force) and spaced by the
// handoff backoff. planned marks a rebalance succession (no gap, no
// failover accounting). Returns the catch-up predictions the successor's
// replay regenerated beyond the already-merged cursor.
func (c *Coordinator) recoverSlot(sl *slot, planned, force bool) []Merged {
	for attempt := 0; attempt < c.cfg.Handoff.MaxAttempts; attempt++ {
		if !force && !sl.sup.Allow() {
			sl.denied++
			return nil // breaker open: stay down, keep accruing the gap
		}
		if attempt > 0 {
			c.cfg.Handoff.Sleep(sl.bo.Delay(attempt - 1))
		}
		out, err := c.restore(sl)
		if err != nil {
			sl.restoreFails++
			sl.sup.Fail(fmt.Sprintf("restore: %v", err))
			continue
		}
		sl.sup.OK()
		if planned {
			sl.handoffs++
		} else {
			sl.failovers++
			if sl.gapOpen > 0 {
				sl.gaps++
			}
		}
		sl.gapOpen = 0
		return out
	}
	return nil
}

// restore builds a successor incarnation from the shard's latest
// snapshot and replays the journal suffix past the snapshot's recorded
// ingest offset. Replayed predictions below the merge cursor are
// deterministic duplicates of already-merged ones and are skipped; the
// rest are merged flagged Degraded.
func (c *Coordinator) restore(sl *slot) ([]Merged, error) {
	if sl.failRestores > 0 {
		sl.failRestores--
		return nil, fmt.Errorf("injected restore failure")
	}
	mon, err := c.newMonitor(sl.snap)
	if err != nil {
		return nil, err
	}
	from := int64(0)
	if off, ok := mon.IngestOffset(); ok {
		from = off.Records
	}
	var preds []predict.Prediction
	var replayErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				replayErr = fmt.Errorf("replay panic: %v", r)
			}
		}()
		for _, e := range sl.journalFrom(from) {
			switch e.kind {
			case reqFeed:
				ps, err := mon.Feed(e.rec)
				if err != nil {
					replayErr = err
					return
				}
				preds = append(preds, ps...)
			case reqAdvance:
				preds = append(preds, mon.AdvanceTo(e.t)...)
			}
		}
	}()
	if replayErr != nil {
		return nil, replayErr
	}
	skip := sl.preds - sl.snapPreds
	if int64(len(preds)) < skip {
		// Replay must regenerate at least every already-merged prediction;
		// fewer is an accounting violation the chaos suite asserts never
		// happens.
		sl.replayShort++
		skip = int64(len(preds))
	}
	out := sl.merge(preds[skip:], true)
	sl.spawn(mon)
	sl.state = slotActive
	sl.served = sl.seq
	return out, nil
}

// takeSnapshot captures the live incarnation's state at the current
// journal seq and trims the journal. A snapshot failure leaves the
// previous snapshot in place; a liveness miss abandons the incarnation
// and recovers it.
func (c *Coordinator) takeSnapshot(sl *slot) []Merged {
	resp, ok := sl.call(request{kind: reqSnapshot, seq: sl.seq}, c.cfg.FeedTimeout)
	switch {
	case !ok:
		c.abandon(sl, "snapshot liveness probe timed out")
		return c.recoverSlot(sl, false, false)
	case resp.panicked:
		sl.w = nil
		sl.state = slotDown
		return c.recoverSlot(sl, false, false)
	case resp.err != nil:
		sl.snapFailures++
		return nil
	}
	sl.commitSnapshot(resp.snap)
	return nil
}

// Handoff drains a shard through a fresh snapshot and hands its state to
// a successor incarnation: the planned-rebalance path. Succession is
// byte-identical — the snapshot sits at the current seq, so the replay
// window is empty and no Degraded predictions are produced.
func (c *Coordinator) Handoff(name string) error {
	sl, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("fleet: unknown shard %q", name)
	}
	if c.closed {
		return fmt.Errorf("fleet: handoff after close")
	}
	if sl.state != slotActive {
		return fmt.Errorf("fleet: shard %s is down; crash failover owns its recovery", name)
	}
	resp, callOK := sl.call(request{kind: reqSnapshot, seq: sl.seq}, c.cfg.FeedTimeout)
	switch {
	case !callOK:
		c.abandon(sl, "handoff drain timed out")
		return fmt.Errorf("fleet: shard %s wedged during handoff drain; failing over", name)
	case resp.panicked:
		sl.w = nil
		sl.state = slotDown
		return fmt.Errorf("fleet: shard %s panicked during handoff drain; failing over", name)
	case resp.err != nil:
		return fmt.Errorf("fleet: shard %s handoff snapshot: %w", name, resp.err)
	}
	sl.commitSnapshot(resp.snap)
	sl.retire()
	if out := c.recoverSlot(sl, true, false); out != nil {
		// Empty replay window: any output would be an accounting bug
		// surfaced via ReplayShort/Degraded counters; still merge it into
		// the window so nothing is silently dropped.
		c.noteWindow(out)
	}
	if sl.state != slotActive {
		return fmt.Errorf("fleet: shard %s successor failed to start; will fail over on next delivery", name)
	}
	return nil
}

// Close force-recovers any down shards, flushes every shard's open
// ticks, and returns the merged tail plus per-shard results and final
// stats. Idempotent.
func (c *Coordinator) Close() *Result {
	if c.closed {
		return c.result
	}
	c.closed = true
	var tail []Merged
	perShard := make(map[string]*predict.Result, len(c.slots))
	for _, sl := range c.slots {
		if sl.state == slotDown {
			// Last chance: bypass the breaker so a recoverable shard's
			// journal suffix is not abandoned with the breaker open.
			tail = append(tail, c.recoverSlot(sl, false, true)...)
		}
		if sl.state == slotDown {
			sl.lost = sl.seq - sl.served
			sl.flushFails++ // unrecoverable: its open-tick tail is missing too
			continue
		}
		resp, ok := sl.call(request{kind: reqClose}, 4*c.cfg.FeedTimeout)
		if !ok || resp.panicked || resp.res == nil {
			c.abandon(sl, "close flush failed")
			sl.lost = sl.seq - sl.served
			sl.flushFails++ // the open-tick tail never surfaced; never silent
			continue
		}
		sl.retire()
		sl.state = slotClosed
		sl.result = resp.res
		perShard[sl.name] = resp.res
		// The incarnation's accumulated result carries the shard's full
		// lineage history (resume preserves it), so the flush tail is
		// exactly the suffix past the merge cursor.
		if n := int64(len(resp.res.Predictions)); n > sl.preds {
			tail = append(tail, sl.merge(resp.res.Predictions[sl.preds:], false)...)
		}
	}
	c.noteWindow(tail)
	c.result = &Result{Tail: tail, PerShard: perShard, Stats: c.Stats()}
	return c.result
}

// Stats snapshots the fleet's accounting.
func (c *Coordinator) Stats() Stats {
	scopesPer := make(map[string]int, len(c.slots))
	for _, sl := range c.owners {
		scopesPer[sl.name]++
	}
	st := Stats{Scopes: len(c.owners), Records: c.records, Misrouted: c.misrouted}
	for _, sl := range c.slots {
		var state string
		switch sl.state {
		case slotActive:
			state = "active"
		case slotDown:
			state = "down"
		case slotClosed:
			state = "closed"
		}
		st.Shards = append(st.Shards, ShardStats{
			Name:            sl.name,
			State:           state,
			Scopes:          scopesPer[sl.name],
			Entries:         sl.seq,
			Records:         sl.records,
			Advances:        sl.advances,
			Predictions:     sl.preds,
			Degraded:        sl.degraded,
			Gaps:            sl.gaps,
			GapEntries:      sl.gapEntries,
			Misrouted:       sl.misrouted,
			Snapshots:       sl.snapshots,
			SnapshotFails:   sl.snapFailures,
			JournalLen:      len(sl.journal),
			Handoffs:        sl.handoffs,
			Failovers:       sl.failovers,
			RestoreFailures: sl.restoreFails,
			RecoveryDenied:  sl.denied,
			ReplayShort:     sl.replayShort,
			LostEntries:     sl.lost,
			FlushFailures:   sl.flushFails,
			Supervisor:      sl.sup.Stats(),
		})
		st.Predictions += sl.preds
		st.Degraded += sl.degraded
		st.Lost += sl.lost
	}
	return st
}

// ShardNames lists the slots in index order (stable).
func (c *Coordinator) ShardNames() []string {
	names := make([]string, len(c.slots))
	for i, sl := range c.slots {
		names[i] = sl.name
	}
	return names
}

// Kill abandons a shard's live incarnation (chaos: hard crash). The
// shard recovers on its next delivery, breaker permitting. Reports
// whether there was a live incarnation to kill.
func (c *Coordinator) Kill(name string) bool {
	sl, ok := c.byName[name]
	if !ok || sl.state != slotActive {
		return false
	}
	c.abandon(sl, "chaos: shard killed")
	return true
}

// Stall arms a chaos stall: the shard's next delivery goes unresponsive
// past the liveness timeout, forcing an abandon-and-failover.
func (c *Coordinator) Stall(name string) bool {
	sl, ok := c.byName[name]
	if !ok || sl.state != slotActive {
		return false
	}
	sl.stallNext = 10 * c.cfg.FeedTimeout
	return true
}

// FailRestores arms a shard's next recoveries to fail up to n times,
// exercising the retry/backoff and breaker paths. Re-arming does not
// stack beyond n: the injected fault depth stays bounded, so a chaos
// schedule with n below the handoff attempt budget provably cannot wedge
// a shard past its clean tail.
func (c *Coordinator) FailRestores(name string, n int) {
	if sl, ok := c.byName[name]; ok && n > sl.failRestores {
		sl.failRestores = n
	}
}

// Misroute arms the split-scope fault for the next n routed records.
func (c *Coordinator) Misroute(n int) {
	if n > 0 {
		c.misrouteNext += n
	}
}

// Rebalance performs a planned snapshot-handoff succession on the named
// shard (the chaos-facing alias of Handoff).
func (c *Coordinator) Rebalance(name string) error { return c.Handoff(name) }

// noteWindow retains recent merged predictions for the cluster view.
const windowCap = 4096

func (c *Coordinator) noteWindow(out []Merged) {
	if len(out) == 0 {
		return
	}
	c.window = append(c.window, out...)
	if n := len(c.window); n > windowCap {
		c.window = append(c.window[:0:0], c.window[n-windowCap:]...)
	}
}
