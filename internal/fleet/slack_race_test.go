//go:build race

package fleet

// raceSlack widens the deliberately tight liveness timeouts some tests
// use. Under the race detector a perfectly healthy Feed can overrun a
// 50ms probe deadline, so without slack every slow call becomes a
// spurious failover — and each failover replays the journal, another
// race-slowed pass, until the test crawls. The product code is
// untouched: only the test deadlines scale.
const raceSlack = 10
