package fleet

import (
	"bytes"
	"time"

	elsa "github.com/elsa-hpc/elsa"
	"github.com/elsa-hpc/elsa/internal/ingest"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/resilience"
)

// entry is one journaled unit of shard input: a routed record or an
// AdvanceTo watermark. The journal is what makes failover lossless — a
// successor replays entries past its snapshot's ingest offset and lands
// in exactly the state the dead incarnation held.
type entry struct {
	kind reqKind // reqFeed or reqAdvance
	rec  logs.Record
	t    time.Time
}

// reqKind selects the worker operation.
type reqKind uint8

const (
	reqFeed reqKind = iota
	reqAdvance
	reqSnapshot
	reqClose
)

// request is one synchronous call into a shard worker. The reply channel
// is buffered so a worker that answers after the coordinator's liveness
// timeout fired does not block forever on an abandoned call.
type request struct {
	kind  reqKind
	rec   logs.Record
	t     time.Time
	seq   int64         // journal seq recorded into a snapshot's ingest offset
	stall time.Duration // chaos: sleep this long before serving (liveness-probe stall)
	reply chan response
}

// response carries a worker's answer. panicked means the monitor call
// blew through the panic barrier: the incarnation is dead and the
// supervisor has already charged the failure.
type response struct {
	preds    []predict.Prediction
	snap     []byte
	res      *predict.Result
	err      error
	panicked bool
}

// worker is one shard incarnation: a goroutine owning one Monitor (and
// its private Model instance — ResumeMonitor mutates the model's
// organizer, so incarnations never share models). The coordinator talks
// to it with synchronous request/response calls bounded by FeedTimeout;
// a missed deadline is a failed liveness probe and the incarnation is
// abandoned.
type worker struct {
	in   chan request
	stop chan struct{} // closed by the coordinator to retire/abandon the incarnation
	dead chan struct{} // closed by the worker on exit
}

// slotState is a shard slot's lifecycle state.
type slotState uint8

const (
	slotActive slotState = iota
	slotDown
	slotClosed // flushed cleanly at Close; terminal
)

// slot is one logical shard: the stable identity records hash to. Worker
// incarnations come and go underneath it (crash, chaos kill, planned
// handoff); the slot keeps the journal, the latest snapshot, the merge
// cursor and the accounting that must survive incarnations.
//
// The incarnation lifecycle is a declared typestate protocol: spawn
// brings a down slot live, retire takes it down, and a snapshot may
// only be committed against a live incarnation — the handoff ordering
// (snapshot, then retire, then successor) is statically checked.
//
//elsa:state down live
type slot struct {
	name string
	sup  *resilience.Supervisor
	bo   *resilience.Backoff

	w     *worker // nil while down
	state slotState

	// Journal of entries delivered to this slot since the last snapshot
	// trim. trimBase is the seq of journal[0]; seq is the next seq to be
	// assigned (== total entries ever delivered).
	journal  []entry
	trimBase int64
	seq      int64

	// Merge cursor and snapshot state. preds counts predictions merged
	// into the cluster stream across the slot's whole lineage; snapPreds
	// and snapSeq pin where the latest snapshot sits in that lineage, so
	// failover replay knows how many regenerated predictions are
	// duplicates of already-merged ones.
	preds     int64
	snap      []byte
	snapSeq   int64
	snapPreds int64

	// served is the seq up to which entries have provably been processed
	// by some incarnation and their predictions merged (directly or via
	// replay). seq - served is the exact loss if the slot is abandoned.
	served int64

	// Accounting (exact: the chaos suite asserts on these).
	records      int64
	advances     int64
	degraded     int64 // catch-up predictions merged with the Degraded flag
	gaps         int64 // distinct outage windows closed by a failover
	gapEntries   int64 // entries journaled while no incarnation was live (cumulative)
	gapOpen      int64 // gap entries in the outage in progress
	misrouted    int64 // records offered to this slot that it did not own
	snapshots    int64
	snapFailures int64
	handoffs     int64 // planned snapshot-handoff successions
	failovers    int64 // crash successions
	restoreFails int64 // failed restore/replay attempts
	denied       int64 // recovery attempts denied by the open breaker
	replayShort  int64 // replays yielding fewer predictions than the merge cursor expects (must stay 0)
	lost         int64 // entries whose effects were never merged (unrecoverable slot at Close)
	flushFails   int64 // Close flushes that failed: the open-tick tail is missing, accounted here

	// Chaos hooks armed by the injector through the coordinator.
	stallNext    time.Duration
	failRestores int

	result *predict.Result // final per-shard result captured at Close
}

// spawn starts a new incarnation serving mon.
//
//elsa:transition down->live
func (sl *slot) spawn(mon *elsa.Monitor) {
	w := &worker{
		in:   make(chan request),
		stop: make(chan struct{}),
		dead: make(chan struct{}),
	}
	sl.w = w
	go sl.serve(w, mon)
}

// serve is the incarnation loop. Every monitor call runs behind the
// slot supervisor's panic barrier; a panic answers the in-flight request
// with panicked=true and ends the incarnation, leaving recovery to the
// coordinator.
//
//elsa:chanowner w.dead
func (sl *slot) serve(w *worker, mon *elsa.Monitor) {
	defer close(w.dead)
	for {
		select {
		case <-w.stop:
			return
		case req := <-w.in:
			if req.stall > 0 {
				// Chaos stall: go unresponsive long enough for the
				// coordinator's liveness probe to time out. Exit early if
				// retired meanwhile — the reply would be dropped anyway.
				t := time.NewTimer(req.stall)
				select {
				case <-t.C:
				case <-w.stop:
					t.Stop()
					return
				}
			}
			var resp response
			ok := sl.sup.Do(func() {
				switch req.kind {
				case reqFeed:
					resp.preds, resp.err = mon.Feed(req.rec)
				case reqAdvance:
					resp.preds = mon.AdvanceTo(req.t)
				case reqSnapshot:
					mon.SetIngestOffset(ingest.Offset{Records: req.seq})
					var buf bytes.Buffer
					if err := mon.Snapshot(&buf); err != nil {
						resp.err = err
						return
					}
					resp.snap = buf.Bytes()
				case reqClose:
					resp.res = mon.Close()
				}
			})
			resp.panicked = !ok
			req.reply <- resp
			if !ok || req.kind == reqClose {
				return
			}
		}
	}
}

// call performs one synchronous request against the live incarnation,
// bounded by timeout (the liveness probe). ok=false means the worker is
// wedged or died without answering: the caller must abandon it.
func (sl *slot) call(req request, timeout time.Duration) (response, bool) {
	w := sl.w
	req.reply = make(chan response, 1)
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case w.in <- req:
	case <-w.dead:
		return response{}, false
	case <-t.C:
		return response{}, false
	}
	select {
	case resp := <-req.reply:
		return resp, true
	case <-w.dead:
		// The worker exited after accepting. A panicking worker replies
		// (buffered) before closing dead, so prefer the reply if present.
		select {
		case resp := <-req.reply:
			return resp, true
		default:
			return response{}, false
		}
	case <-t.C:
		return response{}, false
	}
}

// retire ends the live incarnation without charging a failure (planned
// handoff, Close). The coordinator's slot is the single owner of every
// incarnation's stop channel: workers only ever receive on it.
//
//elsa:chanowner sl.w.stop
//elsa:transition live->down down->down
func (sl *slot) retire() {
	if sl.w != nil {
		close(sl.w.stop)
		sl.w = nil
	}
	sl.state = slotDown
}

// merge stamps a batch of raw predictions with the slot's identity and
// advances the merge cursor. Catch-up predictions regenerated by a
// failover replay are flagged Degraded: the forecast content is
// byte-identical to the clean run's, but it surfaced late.
func (sl *slot) merge(preds []predict.Prediction, catchUp bool) []Merged {
	if len(preds) == 0 {
		return nil
	}
	out := make([]Merged, 0, len(preds))
	for _, p := range preds {
		if catchUp {
			p.Degraded = true
			sl.degraded++
		}
		out = append(out, Merged{Shard: sl.name, Seq: sl.preds, Prediction: p})
		sl.preds++
	}
	return out
}

// journalFrom returns the journal suffix starting at absolute seq.
func (sl *slot) journalFrom(seq int64) []entry {
	i := seq - sl.trimBase
	if i < 0 {
		i = 0
	}
	if i > int64(len(sl.journal)) {
		i = int64(len(sl.journal))
	}
	return sl.journal[i:]
}

// commitSnapshot installs a fresh snapshot taken at the current seq and
// trims the journal: entries at seq < snapSeq can never be replayed
// again. The suffix is copied out so the trimmed prefix's backing array
// is released. The snapshot must have been taken from the still-live
// incarnation — committing after retire would trim journal entries the
// successor still needs to replay.
//
//elsa:requires live
func (sl *slot) commitSnapshot(snap []byte) {
	sl.snap = snap
	sl.snapSeq = sl.seq
	sl.snapPreds = sl.preds
	sl.snapshots++
	keep := sl.journalFrom(sl.snapSeq)
	sl.journal = append(make([]entry, 0, len(keep)), keep...)
	sl.trimBase = sl.snapSeq
}
