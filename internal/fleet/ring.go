package fleet

import (
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring mapping topology scope keys (rack or
// midplane codes) to shard names. Each member contributes Replicas
// virtual points; a key is owned by the first point clockwise of its
// hash. The construction is fully deterministic — FNV-1a over explicit
// strings, sorted point order, no map iteration — so the same member
// set always yields the same scope→shard map, and adding or removing
// one member moves only the keys whose arc the change touches (≈ 1/n of
// the key space).
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, owner)
	members  []string    // sorted
}

type ringPoint struct {
	hash  uint64
	owner string
}

// DefaultReplicas is the virtual-point count per member: enough to keep
// the per-member load imbalance in the few-percent range for small
// fleets without making Add/Remove quadratic.
const DefaultReplicas = 128

// NewRing returns an empty ring; replicas <= 0 selects DefaultReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas}
}

// Add inserts a member. Adding an existing member is a no-op.
func (r *Ring) Add(name string) {
	for _, m := range r.members {
		if m == name {
			return
		}
	}
	r.members = append(r.members, name)
	sort.Strings(r.members)
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: fnv64a(name + "#" + strconv.Itoa(i)), owner: name})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].owner < r.points[j].owner
	})
}

// Remove deletes a member and its points. Unknown members are a no-op.
func (r *Ring) Remove(name string) {
	keep := r.points[:0]
	for _, p := range r.points {
		if p.owner != name {
			keep = append(keep, p)
		}
	}
	r.points = keep
	for i, m := range r.members {
		if m == name {
			r.members = append(r.members[:i], r.members[i+1:]...)
			return
		}
	}
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owner maps a scope key to its owning member ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the ring
	}
	return r.points[i].owner
}

// fnv64a is the 64-bit FNV-1a string hash run through a splitmix64-style
// finalizer, inlined so the per-record routing path allocates nothing.
// Raw FNV avalanches poorly on the short, near-identical strings scope
// keys and vnode labels are ("R00", "R01", "shard0#17"), which clusters
// ring points; the finalizer spreads them.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
