package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/helo"
)

// TestScaledBGLEventTypes checks the padded profile actually lands near
// the requested template count once HELO clusters the generated log.
func TestScaledBGLEventTypes(t *testing.T) {
	start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	res := gen.New(ScaledBGL(200), 1).Generate(start, 6*time.Hour)
	helo.New(0).Assign(res.Records)
	ids := map[int]bool{}
	for _, r := range res.Records {
		ids[r.EventID] = true
	}
	if len(ids) < 150 || len(ids) > 260 {
		t.Fatalf("scaled profile yields %d event types, want ~200", len(ids))
	}
}

// TestRunSmokes runs the whole suite on a tiny log and checks the report
// is coherent and serialisable.
func TestRunSmokes(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite run")
	}
	rep, err := Run(Options{EventTypes: 60, Duration: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records == 0 || rep.EventTypes == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.Pairs.Scored > rep.Pairs.Candidates {
		t.Fatalf("incoherent pair stats: %+v", rep.Pairs)
	}
	names := map[string]bool{}
	for _, m := range rep.Benchmarks {
		names[m.Name] = true
		if m.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v", m.Name, m.NsPerOp)
		}
	}
	for _, want := range []string{"seed/all_pairs", "seed/all_pairs_reference",
		"mine/hybrid", "train/hybrid", "train/signal", "train/datamining", "pipeline/predict",
		"refresh/incremental", "kernel/fft-vs-sliding"} {
		if !names[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Profile != rep.Profile || len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Errorf("round-trip mismatch")
	}
	if rep.Summary() == "" {
		t.Error("empty summary")
	}
}
