// Package bench drives the training-path benchmarks programmatically and
// emits one trajectory point of the perf record (BENCH_train.json). It
// generates a BG/L-profile log scaled to a target event-type count, runs
// the seeding, mining, training and pipeline stages under
// testing.Benchmark, and reports ns/op, allocs/op and how much of the
// pair space the prefilter pruned versus scored.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/sig"
)

// Options configures a benchmark run.
type Options struct {
	// EventTypes is the target number of distinct event templates in the
	// generated log (default 200, the profile the perf trajectory
	// tracks). The BG/L base profile is padded with synthetic monitor
	// daemons until the target is reached.
	EventTypes int
	// Duration is the generated log length (default 24h).
	Duration time.Duration
	// Seed drives the log generator.
	Seed int64
}

// Measurement is one benchmark result.
type Measurement struct {
	Name        string             `json:"name"`
	N           int                `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the JSON document elsabench writes.
type Report struct {
	Profile        string `json:"profile"`
	EventTypes     int    `json:"event_types"`
	Records        int    `json:"records"`
	HorizonSamples int    `json:"horizon_samples"`
	GoVersion      string `json:"go_version"`
	GOOS           string `json:"goos"`
	GOARCH         string `json:"goarch"`
	NumCPU         int    `json:"num_cpu"`
	// Pairs is the prefilter's pruning report from the hybrid training
	// run: candidates is the blind E*(E-1) space, scored is what actually
	// reached the kernel.
	Pairs       sig.PairStats `json:"pairs"`
	PairsPruned int           `json:"pairs_pruned"`
	Benchmarks  []Measurement `json:"benchmarks"`
}

// ScaledBGL pads the Blue Gene/L profile with synthetic periodic monitor
// daemons until the generated log shows roughly target distinct event
// types. Each daemon's message carries several daemon-specific tokens so
// HELO (similarity threshold 0.6) keeps the templates apart.
func ScaledBGL(target int) gen.Profile {
	p := gen.BlueGeneL()
	// The base profile yields ~43 templates on a one-day log; every extra
	// daemon adds one.
	const baseTemplates = 43
	for i := 0; target > baseTemplates && i < target-baseTemplates; i++ {
		p.Daemons = append(p.Daemons, gen.DaemonSpec{
			Name:      fmt.Sprintf("synth%03d", i),
			Component: fmt.Sprintf("SYN%02d", i%20),
			Severity:  logs.Info,
			// Three daemon-specific tokens out of five keep the similarity
			// to any sibling template at 0.4, below HELO's 0.6 merge
			// threshold, so each daemon yields its own event type.
			Message: fmt.Sprintf("chan%d p%d s%d reading d+",
				i, 7*i+1, 13*i+5),
			Period: time.Duration(97+13*(i%50)) * time.Second,
		})
	}
	p.Name = fmt.Sprintf("bgl%d", target)
	return p
}

// Run generates the log, executes the benchmark suite and returns the
// report.
func Run(opts Options) (*Report, error) {
	if opts.EventTypes <= 0 {
		opts.EventTypes = 200
	}
	if opts.Duration <= 0 {
		opts.Duration = 24 * time.Hour
	}
	start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	profile := ScaledBGL(opts.EventTypes)
	res := gen.New(profile, opts.Seed+1).Generate(start, opts.Duration)
	helo.New(0).Assign(res.Records)

	ids := make(map[int]bool)
	for _, r := range res.Records {
		ids[r.EventID] = true
	}
	cfg := correlate.DefaultConfig()
	horizon := int(res.End.Sub(res.Start) / cfg.Step)
	rep := &Report{
		Profile:        profile.Name,
		EventTypes:     len(ids),
		Records:        len(res.Records),
		HorizonSamples: horizon,
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
	}

	// Raw occurrence trains for the seeding/mining stage benchmarks (the
	// same construction the top-level stage benchmarks use).
	trains := make(sig.SpikeTrains)
	for _, r := range res.Records {
		t := int(r.Time.Sub(res.Start) / cfg.Step)
		tr := trains[r.EventID]
		if len(tr) == 0 || tr[len(tr)-1] != t {
			trains[r.EventID] = append(tr, t)
		}
	}
	ccfg := sig.DefaultCrossCorrConfig()
	ccfg.Horizon = horizon

	// Seeding: the prefiltered fast path against the blind enumeration it
	// replaced, so the improvement factor is recorded alongside the
	// absolute numbers.
	var seedStats sig.PairStats
	rep.add("seed/all_pairs", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, seedStats = sig.AllPairsStats(trains, ccfg)
		}
	}), map[string]float64{})
	rep.add("seed/all_pairs_reference", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blindAllPairs(trains, ccfg)
		}
	}), map[string]float64{})
	rep.extendLast(-2, map[string]float64{
		"pairs_candidates": float64(seedStats.Candidates),
		"pairs_scored":     float64(seedStats.Scored),
		"pairs_pruned":     float64(seedStats.Pruned()),
		"pairs_kept":       float64(seedStats.Kept),
	})

	// Mining on the seeded pairs.
	seeds := sig.AllPairs(trains, ccfg)
	var chains int
	rep.add("mine/hybrid", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			chains = len(gradual.Mine(trains, seeds, gradual.DefaultConfig(horizon)))
		}
	}), map[string]float64{})
	rep.extendLast(-1, map[string]float64{"chains": float64(chains)})

	// Full training in the three Table III modes.
	var hybrid *correlate.Model
	for _, mode := range []correlate.Mode{correlate.Hybrid, correlate.SignalOnly, correlate.DataMiningOnly} {
		mode := mode
		var model *correlate.Model
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model = correlate.Train(res.Records, res.Start, res.End, mode, cfg)
			}
		})
		rep.add("train/"+mode.String(), r, map[string]float64{
			"chains":           float64(len(model.Chains)),
			"pairs_candidates": float64(model.Stats.Pairs.Candidates),
			"pairs_scored":     float64(model.Stats.Pairs.Scored),
			"pairs_pruned":     float64(model.Stats.Pairs.Pruned()),
		})
		if mode == correlate.Hybrid {
			hybrid = model
			rep.Pairs = model.Stats.Pairs
			rep.PairsPruned = model.Stats.Pairs.Pruned()
		}
	}

	// Pipeline: the online engine replaying the whole day against the
	// hybrid model, the stage the streaming monitor and batch predictor
	// share.
	profiles := location.Extract(res.Records, hybrid.Chains, res.Start, hybrid.Step, 1)
	var preds int
	rep.add("pipeline/predict", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine := predict.NewEngine(hybrid, profiles, predict.DefaultConfig())
			out := engine.Run(res.Records, res.Start, res.End)
			preds = len(out.Predictions)
		}
	}), map[string]float64{})
	rep.extendLast(-1, map[string]float64{"predictions": float64(preds)})

	benchRefresh(rep, res, trains, hybrid, cfg, horizon)
	benchKernels(rep, opts.Seed, horizon)

	return rep, nil
}

// benchRefresh measures the steady-state incremental retraining round: an
// accumulator replays the day's tick stream once (outside timing, as the
// monitor's tap would have built it live), the model primes with the
// initial full mine, then each measured round closes one more tick and
// refreshes — the per-round cost elsamon's -refresh-every pays, versus
// retraining from scratch. The mean folds in the rate-limited full
// mines (one per remineEvery rounds under seed churn) alongside the
// re-score fast path.
func benchRefresh(rep *Report, res *gen.Result, trains sig.SpikeTrains, hybrid *correlate.Model, cfg correlate.Config, horizon int) {
	byTick := make(map[int][]int)
	for id, tr := range trains {
		for _, t := range tr {
			byTick[t] = append(byTick[t], id)
		}
	}
	for _, evs := range byTick {
		sort.Ints(evs)
	}
	observe := func(acc *sig.Accumulator, tick, pattern int) {
		evs := byTick[pattern]
		counts := make(map[int]int, len(evs))
		for _, id := range evs {
			counts[id] = 1
		}
		acc.ObserveTick(tick, counts, evs)
	}

	acfg := correlate.AccumConfigFor(correlate.Hybrid, cfg)
	acfg.HorizonCap = horizon
	acc := sig.NewAccumulator(acfg)
	for t := 0; t < horizon; t++ {
		observe(acc, t, t)
	}
	hybrid.Refresh(acc, cfg) // prime: the initial full mine is not the steady state

	next := horizon
	var rst correlate.RefreshStats
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			observe(acc, next, next%horizon) // one closed tick between rounds
			next++
			b.StartTimer()
			rst = hybrid.Refresh(acc, cfg)
		}
	})
	extra := map[string]float64{
		"dirty_pairs": float64(rst.Dirty),
		"seeds":       float64(rst.Seeds),
		"chains":      float64(rst.Chains),
	}
	if trainNs := rep.lookupNs("train/hybrid"); trainNs > 0 {
		extra["speedup_vs_train"] = trainNs / float64(r.NsPerOp())
	}
	rep.add("refresh/incremental", r, extra)
}

// benchKernels races the FFT cross-correlation kernel against the frozen
// sliding-window sweep over one dense pair in the wide-lag regime, and
// sweeps the spike density to locate the measured crossover — the
// density above which the dispatcher's FFT pick wins on this machine.
func benchKernels(rep *Report, seed int64, horizon int) {
	span := horizon
	kcfg := sig.DefaultCrossCorrConfig()
	kcfg.Horizon = span
	kcfg.MaxLag = 2048
	if kcfg.MaxLag > span/4 {
		kcfg.MaxLag = span / 4
	}
	kcfg.MinCount = 1
	kcfg.MinScore = 0

	rng := rand.New(rand.NewSource(seed + 7))
	makeTrain := func(density float64) []int {
		out := make([]int, 0, int(density*float64(span))+1)
		for t := 0; t < span; t++ {
			if rng.Float64() < density {
				out = append(out, t)
			}
		}
		if len(out) == 0 {
			out = append(out, 0)
		}
		return out
	}
	var scratch sig.Scratch
	race := func(a, b []int, kind sig.KernelKind) testing.BenchmarkResult {
		cfg := kcfg
		cfg.Kernel = kind
		return testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				scratch.CrossCorrelate(a, b, cfg)
			}
		})
	}

	densities := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	crossover := 0.0
	var sliding, fftRes testing.BenchmarkResult
	for _, d := range densities {
		a, b := makeTrain(d), makeTrain(d)
		sliding = race(a, b, sig.KernelSliding)
		fftRes = race(a, b, sig.KernelFFT)
		if crossover == 0 && fftRes.NsPerOp() <= sliding.NsPerOp() {
			crossover = d
		}
	}
	rep.add("kernel/fft-vs-sliding", fftRes, map[string]float64{
		"density":            densities[len(densities)-1],
		"max_lag":            float64(kcfg.MaxLag),
		"sliding_ns_per_op":  float64(sliding.NsPerOp()),
		"speedup_vs_sliding": float64(sliding.NsPerOp()) / float64(fftRes.NsPerOp()),
		"crossover_density":  crossover,
	})
}

// blindAllPairs is the pre-fast-path seeding reference: every ordered
// pair through a frozen copy of the pre-change kernel (binary search per
// spike, fresh histogram allocations, full lag scan). It is kept verbatim
// so the seed/all_pairs vs seed/all_pairs_reference comparison keeps
// measuring the fast path against what the code used to do, not against a
// baseline that silently inherits kernel improvements.
func blindAllPairs(trains sig.SpikeTrains, cfg sig.CrossCorrConfig) []sig.PairCorrelation {
	ids := make([]int, 0, len(trains))
	for id := range trains {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []sig.PairCorrelation
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			delay, count, score, ok := referenceCrossCorrelate(trains[a], trains[b], cfg)
			if !ok || (delay == 0 && a > b) {
				continue
			}
			out = append(out, sig.PairCorrelation{A: a, B: b, Delay: delay, Count: count, Score: score})
		}
	}
	return out
}

// referenceCrossCorrelate is the frozen pre-change cross-correlation
// kernel: binary search per source spike, fresh hist/prefix allocations on
// every call, full 0..MaxLag scan. Verbatim from the code the fast path
// replaced; also frozen (with the same intent) in internal/sig's
// equivalence tests.
func referenceCrossCorrelate(a, b []int, cfg sig.CrossCorrConfig) (delay, count int, score float64, ok bool) {
	if len(a) == 0 || len(b) == 0 || cfg.MaxLag < 0 {
		return 0, 0, 0, false
	}
	hist := make([]int, cfg.MaxLag+1)
	for _, t := range a {
		lo := sort.SearchInts(b, t)
		for j := lo; j < len(b) && b[j]-t <= cfg.MaxLag; j++ {
			hist[b[j]-t]++
		}
	}
	prefix := make([]int, len(hist)+1)
	for i, h := range hist {
		prefix[i+1] = prefix[i] + h
	}
	window := func(lo, hi int) int {
		if lo < 0 {
			lo = 0
		}
		if hi > cfg.MaxLag {
			hi = cfg.MaxLag
		}
		if lo > hi {
			return 0
		}
		return prefix[hi+1] - prefix[lo]
	}
	best, bestCount, bestRaw := -1, 0, 0
	bestDensity := 0.0
	for lag := 0; lag <= cfg.MaxLag; lag++ {
		tol := sig.DelayTolerance(lag, cfg.Tolerance)
		c := window(lag-tol, lag+tol)
		if c == 0 {
			continue
		}
		density := float64(c) / float64(2*tol+1)
		if density > bestDensity || (density == bestDensity && hist[lag] > bestRaw) {
			best, bestCount, bestRaw, bestDensity = lag, c, hist[lag], density
		}
	}
	if best < 0 || bestCount < cfg.MinCount {
		return 0, 0, 0, false
	}
	norm := math.Sqrt(float64(len(a)) * float64(len(b)))
	sc := float64(bestCount) / norm
	if conf := float64(bestCount) / float64(len(a)); !cfg.SymmetricOnly && conf > sc && referenceLiftOK(conf, best, len(b), cfg) {
		sc = conf
	}
	if sc > 1 {
		sc = 1
	}
	if sc < cfg.MinScore {
		return 0, 0, 0, false
	}
	return best, bestCount, sc, true
}

// referenceLiftOK mirrors the kernel's confidence-lift gate for the frozen
// reference.
func referenceLiftOK(conf float64, lag, nb int, cfg sig.CrossCorrConfig) bool {
	if cfg.Horizon <= 0 {
		return true
	}
	minLift := cfg.MinLift
	if minLift <= 0 {
		minLift = 4
	}
	width := float64(2*sig.DelayTolerance(lag, cfg.Tolerance) + 1)
	random := width * float64(nb) / float64(cfg.Horizon)
	return conf >= minLift*random
}

// add appends one testing.BenchmarkResult under the given name.
func (r *Report) add(name string, br testing.BenchmarkResult, extra map[string]float64) {
	m := Measurement{
		Name:        name,
		N:           br.N,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
	if len(extra) > 0 {
		m.Extra = extra
	}
	r.Benchmarks = append(r.Benchmarks, m)
}

// lookupNs returns a recorded benchmark's ns/op, or 0 if absent.
func (r *Report) lookupNs(name string) float64 {
	for _, m := range r.Benchmarks {
		if m.Name == name {
			return m.NsPerOp
		}
	}
	return 0
}

// extendLast merges extra metrics into the measurement at offset from the
// end (-1 = last).
func (r *Report) extendLast(offset int, extra map[string]float64) {
	i := len(r.Benchmarks) + offset
	if i < 0 || i >= len(r.Benchmarks) {
		return
	}
	if r.Benchmarks[i].Extra == nil {
		r.Benchmarks[i].Extra = map[string]float64{}
	}
	for k, v := range extra {
		r.Benchmarks[i].Extra[k] = v
	}
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders a human-readable table of the report.
func (r *Report) Summary() string {
	s := fmt.Sprintf("profile %s: %d event types, %d records, %d samples (%s, %d cpu)\n",
		r.Profile, r.EventTypes, r.Records, r.HorizonSamples, r.GoVersion, r.NumCPU)
	s += fmt.Sprintf("pair space: %d candidates, %d scored, %d pruned, %d kept\n",
		r.Pairs.Candidates, r.Pairs.Scored, r.PairsPruned, r.Pairs.Kept)
	for _, m := range r.Benchmarks {
		s += fmt.Sprintf("  %-26s %12.0f ns/op %10d B/op %8d allocs/op\n",
			m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	return s
}
