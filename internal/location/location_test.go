package location

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var (
	t0   = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	step = 10 * time.Second
)

func mkChain(items ...gradual.Item) correlate.Chain {
	return correlate.Chain{Itemset: gradual.Itemset{Items: items}, Predictive: true}
}

func recAt(tick int, event int, loc string) logs.Record {
	return logs.Record{
		Time:     t0.Add(time.Duration(tick) * step),
		EventID:  event,
		Location: topology.MustParse(loc),
	}
}

func TestProfileLocalChain(t *testing.T) {
	// Chain 1 -> 2 with delay 3, always on the same node.
	var recs []logs.Record
	for i := 0; i < 10; i++ {
		base := i * 100
		recs = append(recs, recAt(base, 1, "R00-M0-N0-C:J02-U01"))
		recs = append(recs, recAt(base+3, 2, "R00-M0-N0-C:J02-U01"))
	}
	chain := mkChain(gradual.Item{Event: 1, Delay: 0}, gradual.Item{Event: 2, Delay: 3})
	profiles := Extract(recs, []correlate.Chain{chain}, t0, step, 1)
	p := profiles[chain.Key()]
	if p.Occurrences != 10 {
		t.Fatalf("Occurrences = %d, want 10", p.Occurrences)
	}
	if p.Propagates() {
		t.Error("local chain reported as propagating")
	}
	if p.DominantScope() != topology.ScopeNode {
		t.Errorf("DominantScope = %v", p.DominantScope())
	}
	if p.TriggerIncluded != 10 {
		t.Errorf("TriggerIncluded = %d, want 10", p.TriggerIncluded)
	}
	if p.MeanAffected != 1 {
		t.Errorf("MeanAffected = %v, want 1", p.MeanAffected)
	}
}

func TestProfileMidplaneChain(t *testing.T) {
	// Chain where the final event hits three nodes in the trigger's
	// midplane.
	var recs []logs.Record
	for i := 0; i < 8; i++ {
		base := i * 100
		recs = append(recs, recAt(base, 1, "R05-M1-N0-C:J00-U00"))
		recs = append(recs, recAt(base+6, 2, "R05-M1-N0-C:J00-U00"))
		recs = append(recs, recAt(base+6, 2, "R05-M1-N3-C:J07-U01"))
		recs = append(recs, recAt(base+6, 2, "R05-M1-N9-C:J01-U00"))
	}
	chain := mkChain(gradual.Item{Event: 1, Delay: 0}, gradual.Item{Event: 2, Delay: 6})
	p := Extract(recs, []correlate.Chain{chain}, t0, step, 1)[chain.Key()]
	if !p.Propagates() {
		t.Fatal("midplane chain reported local")
	}
	if p.DominantScope() != topology.ScopeMidplane {
		t.Errorf("DominantScope = %v, want midplane", p.DominantScope())
	}
	if p.TriggerIncluded != 8 {
		t.Errorf("TriggerIncluded = %d, want 8", p.TriggerIncluded)
	}
	if p.MeanAffected < 3 {
		t.Errorf("MeanAffected = %v, want >= 3", p.MeanAffected)
	}
}

func TestProfileNoOccurrences(t *testing.T) {
	chain := mkChain(gradual.Item{Event: 5, Delay: 0}, gradual.Item{Event: 6, Delay: 2})
	p := Extract(nil, []correlate.Chain{chain}, t0, step, 1)[chain.Key()]
	if p.Occurrences != 0 || p.MeanAffected != 0 {
		t.Errorf("empty profile = %+v", p)
	}
	if p.Propagates() {
		t.Error("empty profile should not propagate")
	}
}

func TestDominantScopeTieBreaksNarrow(t *testing.T) {
	p := &Profile{ScopeCounts: map[topology.Scope]int{
		topology.ScopeNode:     3,
		topology.ScopeMidplane: 3,
	}}
	if got := p.DominantScope(); got != topology.ScopeNode {
		t.Errorf("tie broke to %v, want node", got)
	}
}

func TestBreakdownOnGeneratedLog(t *testing.T) {
	// End-to-end: most chains must not propagate (paper: ~75%) and only a
	// small share beyond the midplane.
	res := gen.New(gen.BlueGeneL(), 201).Generate(t0, 6*24*time.Hour)
	org := helo.New(0)
	org.Assign(res.Records)
	model := correlate.Train(res.Records, t0, res.End, correlate.Hybrid, correlate.DefaultConfig())
	if len(model.Chains) == 0 {
		t.Fatal("no chains")
	}
	profiles := Extract(res.Records, model.Chains, t0, step, 1)
	b := Breakdown(profiles)
	if b.Chains == 0 {
		t.Fatal("no profiled chains")
	}
	if b.NoPropagate < 0.5 {
		t.Errorf("NoPropagate = %v, want majority", b.NoPropagate)
	}
	if b.BeyondMP > 0.3 {
		t.Errorf("BeyondMP = %v, want small share", b.BeyondMP)
	}
	sum := b.NoPropagate + b.NodeCard + b.Midplane + b.BeyondMP
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown fractions sum to %v", sum)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := Breakdown(map[string]*Profile{})
	if b.Chains != 0 || b.NoPropagate != 0 {
		t.Errorf("empty breakdown = %+v", b)
	}
}
