// Package location implements the paper's location-correlation heuristic
// (Section III.D): for every extracted correlation chain it replays the
// training log, collects the set of components each chain occurrence
// touched, and summarises the chain's propagation behaviour — does the
// fault stay on the node where the first symptom appears, spread within a
// node card or midplane, or hit the whole system? The online predictor
// uses these profiles to attach a predicted location set to each
// prediction.
package location

import (
	"sort"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Profile is the learned propagation behaviour of one chain.
type Profile struct {
	ChainKey    string
	Occurrences int

	// ScopeCounts histograms the span scope of each occurrence's location
	// set (ScopeNode means no propagation).
	ScopeCounts map[topology.Scope]int

	// MeanAffected is the average number of distinct components per
	// occurrence.
	MeanAffected float64

	// TriggerIncluded counts occurrences where the first symptom's
	// location was among the terminal event's locations (the paper
	// observes this holds for most propagating sequences).
	TriggerIncluded int
}

// DominantScope returns the most common propagation scope, preferring the
// narrower scope on ties (conservative prediction).
func (p *Profile) DominantScope() topology.Scope {
	best, bestCount := topology.ScopeNode, -1
	for s := topology.ScopeNode; s <= topology.ScopeSystem; s++ {
		if c := p.ScopeCounts[s]; c > bestCount {
			best, bestCount = s, c
		}
	}
	return best
}

// Propagates reports whether the chain's occurrences typically touch more
// than the originating component.
func (p *Profile) Propagates() bool { return p.DominantScope() > topology.ScopeNode }

// PredictScope returns the scope around the triggering location expected
// to be affected by the predicted failure.
func (p *Profile) PredictScope() topology.Scope { return p.DominantScope() }

// occurrence is an event instance: sample index plus location.
type occurrence struct {
	tick int
	loc  topology.Location
}

// Extract builds a profile for every chain by replaying the training
// records (time-sorted, event-stamped). step is the sampling period and
// start the signal origin used during training.
func Extract(recs []logs.Record, chains []correlate.Chain, start time.Time, step time.Duration, tol int) map[string]*Profile {
	// Index event occurrences (tick + location), deduplicated per tick
	// and location.
	occ := make(map[int][]occurrence)
	for _, r := range recs {
		if r.EventID < 0 {
			continue
		}
		tick := int(r.Time.Sub(start) / step)
		lst := occ[r.EventID]
		if n := len(lst); n > 0 && lst[n-1].tick == tick && lst[n-1].loc == r.Location {
			continue
		}
		occ[r.EventID] = append(occ[r.EventID], occurrence{tick: tick, loc: r.Location})
	}

	out := make(map[string]*Profile, len(chains))
	for i := range chains {
		out[chains[i].Key()] = profileChain(&chains[i], occ, tol)
	}
	return out
}

// profileChain replays one chain against the occurrence index.
func profileChain(c *correlate.Chain, occ map[int][]occurrence, tol int) *Profile {
	p := &Profile{ChainKey: c.Key(), ScopeCounts: make(map[topology.Scope]int)}
	first := occ[c.First()]
	totalAffected := 0
	for _, f := range first {
		locs, ok := matchOccurrence(c, occ, f, tol)
		if !ok {
			continue
		}
		p.Occurrences++
		distinct := dedupe(locs)
		// Propagation means touching multiple distinct components; a
		// chain that always fires on one component (even a system-level
		// one) does not propagate.
		span := topology.ScopeNode
		if len(distinct) > 1 {
			span = topology.SpanScope(distinct)
		}
		p.ScopeCounts[span]++
		totalAffected += len(distinct)
		// Terminal locations are those of the last item; check whether
		// the trigger is among them (or contains/is contained by one).
		last := c.Last()
		for _, o := range occAt(occ[last.Event], f.tick+last.Delay, sig.DelayTolerance(last.Delay, tol)) {
			if o.loc == f.loc || o.loc.Contains(f.loc) || f.loc.Contains(o.loc) {
				p.TriggerIncluded++
				break
			}
		}
	}
	if p.Occurrences > 0 {
		p.MeanAffected = float64(totalAffected) / float64(p.Occurrences)
	}
	return p
}

// matchOccurrence checks whether every item of the chain fires at the
// right offset from the trigger occurrence, returning all locations
// involved.
func matchOccurrence(c *correlate.Chain, occ map[int][]occurrence, f occurrence, tol int) ([]topology.Location, bool) {
	locs := []topology.Location{f.loc}
	for _, it := range c.Items[1:] {
		hits := occAt(occ[it.Event], f.tick+it.Delay, sig.DelayTolerance(it.Delay, tol))
		if len(hits) == 0 {
			return nil, false
		}
		for _, h := range hits {
			locs = append(locs, h.loc)
		}
	}
	return locs, true
}

// occAt returns the occurrences of a train with tick in [want-tol,
// want+tol].
func occAt(train []occurrence, want, tol int) []occurrence {
	lo := sort.Search(len(train), func(i int) bool { return train[i].tick >= want-tol })
	var out []occurrence
	for i := lo; i < len(train) && train[i].tick <= want+tol; i++ {
		out = append(out, train[i])
	}
	return out
}

func dedupe(locs []topology.Location) []topology.Location {
	seen := make(map[topology.Location]bool, len(locs))
	out := locs[:0]
	for _, l := range locs {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// PropagationBreakdown summarises, over a set of profiles, the fraction of
// chains whose occurrences stay on one node versus spreading to a node
// card, midplane, rack or the whole system — the paper's Figure 7.
type PropagationBreakdown struct {
	Chains       int
	NoPropagate  float64 // fraction with dominant scope == node
	NodeCard     float64
	Midplane     float64
	BeyondMP     float64 // rack or system
	MeanAffected float64 // average affected components among propagating chains
}

// Breakdown computes the propagation statistics over profiles with at
// least one occurrence.
func Breakdown(profiles map[string]*Profile) PropagationBreakdown {
	var b PropagationBreakdown
	counted := 0
	affSum, affN := 0.0, 0
	for _, p := range profiles {
		if p.Occurrences == 0 {
			continue
		}
		counted++
		switch p.DominantScope() {
		case topology.ScopeNode:
			b.NoPropagate++
		case topology.ScopeNodeCard:
			b.NodeCard++
		case topology.ScopeMidplane:
			b.Midplane++
		default:
			b.BeyondMP++
		}
		if p.Propagates() {
			affSum += p.MeanAffected
			affN++
		}
	}
	b.Chains = counted
	if counted > 0 {
		n := float64(counted)
		b.NoPropagate /= n
		b.NodeCard /= n
		b.Midplane /= n
		b.BeyondMP /= n
	}
	if affN > 0 {
		b.MeanAffected = affSum / float64(affN)
	}
	return b
}
