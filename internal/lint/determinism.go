package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DeterminismAnalyzer guards the training pipeline's bit-identical
// guarantee: given the same records and config, Train must produce the
// same model on any machine, any GOMAXPROCS, any run. Wall clocks, the
// global rand source and map iteration order are the three ways that
// guarantee has historically been lost in correlation miners, so inside
// the scoped packages all three are flagged. Non-library test files are
// exempt.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name: "elsadeterminism",
	Doc: "in deterministic packages, report wall-clock reads (time.Now/Since), global math/rand use, " +
		"and map iteration order escaping into ordered output without a sort",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDeterminism,
}

// determinismPackages is the default scope: the packages whose outputs
// feed the trained model and the online predictions.
var determinismPackages = "sig,gradual,correlate,predict"

func init() {
	DeterminismAnalyzer.Flags.StringVar(&determinismPackages, "packages", determinismPackages,
		"comma-separated package names the determinism contract covers")
}

func runDeterminism(pass *analysis.Pass) (interface{}, error) {
	scoped := false
	for _, p := range strings.Split(determinismPackages, ",") {
		if strings.TrimSpace(p) == pass.Pkg.Name() {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)

	// Selector uses, not just calls: assigning time.Now to a clock
	// variable is the sanctioned injection seam, and it must carry the
	// nolint that documents it.
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if inTestFile(pass.Fset, sel.Pos()) {
			return
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return
		}
		// Package-level functions only: methods on an explicitly seeded
		// *rand.Rand are the sanctioned way to get randomness.
		if obj.Type().(*types.Signature).Recv() != nil {
			return
		}
		switch obj.Pkg().Path() {
		case "time":
			switch obj.Name() {
			case "Now", "Since", "Until":
				rep.reportf(sel.Pos(), "determinism: time.%s reads the wall clock; inject a clock or timestamp instead", obj.Name())
			}
		case "math/rand", "math/rand/v2":
			switch obj.Name() {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				// Constructors over explicit seeds are the fix, not the bug.
			default:
				rep.reportf(sel.Pos(), "determinism: %s.%s uses the shared global source; use an explicitly seeded *rand.Rand",
					obj.Pkg().Name(), obj.Name())
			}
		}
	})

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || inTestFile(pass.Fset, fn.Pos()) {
			return
		}
		checkMapOrderEscapes(pass, rep, fn)
	})
	return nil, nil
}

// checkMapOrderEscapes flags appends executed inside a range-over-map
// whose target slice is never passed to a sort call in the same
// function: the slice's element order then depends on map iteration
// order, which Go randomises per run. Appending and sorting afterwards
// is the sanctioned pattern (and what the slot-indexed merges do at a
// larger scale).
func checkMapOrderEscapes(pass *analysis.Pass, rep *reporter, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: every storage path handed to a sort function anywhere in fn.
	sorted := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isSort := false
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "sort", "slices":
					isSort = true
				default:
					isSort = strings.Contains(obj.Name(), "Sort")
				}
			}
		case *ast.Ident:
			// Project-local canonicalisers (SortHits, SortByTime, ...)
			// count: the contract is an explicit sort, wherever it lives.
			isSort = strings.Contains(fun.Name, "Sort") || strings.Contains(fun.Name, "sort")
		}
		if isSort {
			for _, arg := range call.Args {
				if r := rootString(arg); r != "" {
					sorted[r] = true
				}
			}
		}
		return true
	})

	// Pass 2: appends under a map range whose target is never sorted.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok || len(asg.Rhs) != 1 {
				return true
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			target := rootString(asg.Lhs[0])
			if target == "" || sorted[target] {
				return true
			}
			// Appending to a map element keyed by the loop key is
			// order-insensitive grouping, not ordered output.
			if ix, ok := asg.Lhs[0].(*ast.IndexExpr); ok {
				if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
					return true
				}
			}
			rep.reportf(asg.Pos(),
				"determinism: %s is built in map iteration order and never sorted in this function; sort it (or //nolint:elsadeterminism with the invariant that makes order irrelevant)",
				target)
			return true
		})
		return true
	})
}
