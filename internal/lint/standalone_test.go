package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempModule lays out a throwaway module with one package holding
// a mixed atomic/plain counter — two autofixable findings.
func writeTempModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/tmpmod\n\ngo 1.22\n",
		"counter.go": `package tmpmod

import "sync/atomic"

type counter struct{ hits int64 }

func (c *counter) bump() { atomic.AddInt64(&c.hits, 1) }

func (c *counter) read() int64 { return c.hits }

func (c *counter) reset() { c.hits = 0 }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(root, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestStandaloneDiffAndFix drives the full -diff → -fix → clean cycle
// of the standalone driver against a temp module.
func TestStandaloneDiffAndFix(t *testing.T) {
	root := writeTempModule(t)

	// Report + diff: two findings, one fixable file, hunks printed.
	var buf bytes.Buffer
	findings, fixable, err := RunStandalone(StandaloneOptions{Root: root, Diff: true, Analyzers: Analyzers}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (plain read + plain store), got %d: %v", len(findings), findings)
	}
	if fixable != 1 {
		t.Fatalf("want 1 fixable file, got %d", fixable)
	}
	out := buf.String()
	if !strings.Contains(out, "atomic.LoadInt64(&c.hits)") || !strings.Contains(out, "atomic.StoreInt64(&c.hits, 0)") {
		t.Fatalf("diff output missing rewrites:\n%s", out)
	}
	// -diff must not touch the file.
	src, err := os.ReadFile(filepath.Join(root, "counter.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "LoadInt64") {
		t.Fatal("-diff modified the file")
	}

	// Apply.
	buf.Reset()
	if _, fixable, err = RunStandalone(StandaloneOptions{Root: root, Fix: true, Analyzers: Analyzers}, &buf); err != nil {
		t.Fatal(err)
	}
	if fixable != 1 {
		t.Fatalf("fix pass should report 1 rewritten file, got %d", fixable)
	}
	src, err = os.ReadFile(filepath.Join(root, "counter.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "return atomic.LoadInt64(&c.hits)") ||
		!strings.Contains(string(src), "atomic.StoreInt64(&c.hits, 0)") {
		t.Fatalf("fixes not applied:\n%s", src)
	}

	// The fixed module is clean.
	buf.Reset()
	findings, _, err = RunStandalone(StandaloneOptions{Root: root, Analyzers: Analyzers}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("fixed module should be clean, got: %v", findings)
	}
}

// TestStandaloneJSON checks the machine-readable output path: a JSON
// array, one element per finding, sorted like the text form.
func TestStandaloneJSON(t *testing.T) {
	root := writeTempModule(t)
	var buf bytes.Buffer
	findings, _, err := RunStandalone(StandaloneOptions{Root: root, JSON: true, Analyzers: Analyzers}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Package  string `json:"package"`
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
		Fixable  bool   `json:"fixable"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != len(findings) {
		t.Fatalf("JSON has %d findings, driver returned %d", len(decoded), len(findings))
	}
	for i, d := range decoded {
		if d.Package != "example.com/tmpmod" {
			t.Errorf("finding %d: package = %q, want example.com/tmpmod", i, d.Package)
		}
		if d.Analyzer != "elsaatomic" {
			t.Errorf("finding %d: analyzer = %q, want elsaatomic", i, d.Analyzer)
		}
		if !strings.HasSuffix(d.File, "counter.go") || d.Line <= 0 || d.Column <= 0 {
			t.Errorf("finding %d: bad position %s:%d:%d", i, d.File, d.Line, d.Column)
		}
		if !d.Fixable {
			t.Errorf("finding %d: atomic rewrites are fixable, got fixable=false", i)
		}
	}
}

// TestStandaloneDeterministic applies the elsadeterminism contract to
// the suite itself: two passes over the same tree must produce
// byte-identical, sorted output — in both the text and JSON forms.
func TestStandaloneDeterministic(t *testing.T) {
	root := writeTempModule(t)
	run := func(json bool) string {
		var buf bytes.Buffer
		if _, _, err := RunStandalone(StandaloneOptions{Root: root, JSON: json, Analyzers: Analyzers}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := run(false), run(false); a != b {
		t.Fatalf("two text passes differ:\n--- first\n%s--- second\n%s", a, b)
	}
	if a, b := run(true), run(true); a != b {
		t.Fatalf("two JSON passes differ:\n--- first\n%s--- second\n%s", a, b)
	}

	if testing.Short() {
		return // the repo-wide double pass typechecks the module twice
	}
	repo := func(json bool) string {
		var buf bytes.Buffer
		if _, _, err := RunStandalone(StandaloneOptions{Root: filepath.Join("..", ".."), JSON: json, Analyzers: Analyzers}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := repo(false), repo(false); a != b {
		t.Fatalf("two repo-wide text passes differ:\n--- first\n%s--- second\n%s", a, b)
	}
	if a, b := repo(true), repo(true); a != b {
		t.Fatalf("two repo-wide JSON passes differ:\n--- first\n%s--- second\n%s", a, b)
	}
}

// TestStandaloneRepoClean runs the full suite over this repository —
// the acceptance gate that every real finding has been fixed or
// carries a reasoned suppression, and that the snapshot/atomic
// contracts hold tree-wide.
func TestStandaloneRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	var buf bytes.Buffer
	findings, _, err := RunStandalone(StandaloneOptions{Root: filepath.Join("..", ".."), Analyzers: Analyzers}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("repository has %d unresolved findings:\n%s", len(findings), buf.String())
	}
}
