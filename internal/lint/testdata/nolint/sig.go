// Package sig (fixture) exercises the suppression machinery end to end:
// well-formed nolints silence elsadeterminism; malformed ones are
// flagged by elsanolint and do not suppress.
package sig

import "time"

// inlineSuppressed: a reasoned inline nolint silences the finding.
func inlineSuppressed() time.Time {
	return time.Now() //nolint:elsadeterminism // boot banner timestamp, never enters the model
}

// standaloneSuppressed: the comment on the line above also covers it.
func standaloneSuppressed() time.Time {
	//nolint:elsa // blanket: telemetry-only helper, reviewed 2026-08
	return time.Now()
}

// reasonless nolints do not suppress and are themselves flagged.
func reasonless() time.Time {
	// want "time.Now reads the wall clock" "requires a reason"
	return time.Now() //nolint:elsadeterminism
}

// unknown analyzer names are flagged (and suppress nothing).
func unknownName() time.Time {
	// want "time.Now reads the wall clock" "unknown analyzer"
	return time.Now() //nolint:elsabogus // some reason
}

// empty target lists are flagged.
func emptyTargets() int {
	// want "names no analyzers"
	n := 1 //nolint:
	return n
}

// foreign linter targets are none of our business.
func foreignTarget(xs []int) int {
	n := 0
	for range xs {
		n++ //nolint:gocritic
	}
	return n
}

// the invariant-suite names added with the dataflow analyzers are
// accepted suppression targets.
func newSuiteNames() int {
	n := 1 //nolint:elsasnapshot // fixture: name-validation only
	n++    //nolint:elsaatomic // fixture: name-validation only
	n++    //nolint:elsaalloc // fixture: name-validation only
	n++    //nolint:elsachan // fixture: name-validation only
	n++    //nolint:elsalockorder // fixture: name-validation only
	n++    //nolint:elsaerrflow // fixture: name-validation only
	return n
}

// the typestate and determinism-taint analyzers register their names
// with the suppression registry like every other suite member.
func protocolSuiteNames() int {
	n := 1 //nolint:elsastate // fixture: name-validation only
	n++    //nolint:elsadetflow // fixture: name-validation only
	return n
}

// the valid-name list is derived from the registry, so it names the
// dataflow analyzers too.
func derivedList() int {
	// want "unknown analyzer .elsasnapshots. .valid: elsa, elsaalloc, elsaatomic, elsachan, elsactxflow"
	n := 1 //nolint:elsasnapshots // near-miss of a real name
	return n
}
