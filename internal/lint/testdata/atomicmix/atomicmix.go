// Package atomicmix seeds the elsaatomic fixture: fields accessed
// both through sync/atomic and via plain loads/stores, plus the
// sanctioned patterns that must stay silent.
package atomicmix

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64
	flags  atomic.Int32
	plain  int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
}

func (c *counter) read() int64 {
	return c.hits // want "field hits is accessed atomically .* but read plainly"
}

func (c *counter) reset() {
	c.misses = 0 // want "field misses is accessed atomically .* but written plainly"
}

func (c *counter) incr() {
	c.hits++ // want "field hits is accessed atomically .* but updated plainly"
}

func (c *counter) grow(n int64) {
	c.misses += n // want "field misses is accessed atomically .* but updated plainly"
}

func (c *counter) leakAddr() *int64 {
	return &c.hits // want "address of atomically accessed field hits"
}

// racyValueArg: the address arg is sanctioned, but the value operand is
// a plain read of another atomic field.
func (c *counter) racyValueArg() {
	atomic.StoreInt64(&c.hits, c.misses) // want "field misses is accessed atomically .* but read plainly"
}

func (c *counter) copyTyped() int32 {
	v := c.flags // want "field flags has type .* must be used via its methods"
	return v.Load()
}

// Sanctioned uses: methods on typed atomics, & for helpers, and plain
// fields never touched atomically.
func (c *counter) clean(other *atomic.Int32) int64 {
	c.flags.Store(other.Load())
	bumpHelper(&c.flags)
	c.plain++
	return c.plain + int64(c.flags.Load())
}

func bumpHelper(f *atomic.Int32) { f.Add(1) }

// suppressed: a reasoned nolint covers a deliberate post-quiescence read.
func (c *counter) drain() int64 {
	return c.hits //nolint:elsaatomic // called after all writers have joined; no concurrency left
}
