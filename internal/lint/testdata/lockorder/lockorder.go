// Package lockorder exercises elsalockorder: direct cycles,
// interprocedural cycles through a callee, self-deadlock, and clean
// consistent ordering.
package lockorder

import "sync"

// ---- direct two-lock cycle ----

type store struct{ mu sync.Mutex }
type index struct{ mu sync.Mutex }

var (
	s store
	x index
)

func lockAB() {
	s.mu.Lock()
	x.mu.Lock() // want "lock-order cycle lockorder.store.mu -> lockorder.index.mu .in lockorder.lockAB. -> lockorder.store.mu .in lockorder.lockBA."
	x.mu.Unlock()
	s.mu.Unlock()
}

func lockBA() {
	x.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	x.mu.Unlock()
}

// ---- interprocedural cycle: the second lock hides in a callee ----

type outer struct{ mu sync.Mutex }
type inner struct{ mu sync.Mutex }

var (
	o  outer
	in inner
)

func lockInner() {
	in.mu.Lock()
	in.mu.Unlock()
}

func outerThenInner() {
	o.mu.Lock()
	lockInner() // want "lock-order cycle lockorder.outer.mu -> lockorder.inner.mu .in lockorder.outerThenInner -> lockorder.lockInner."
	o.mu.Unlock()
}

func innerThenOuter() {
	in.mu.Lock()
	o.mu.Lock()
	o.mu.Unlock()
	in.mu.Unlock()
}

// ---- self-deadlock: re-acquiring a held lock ----

type relock struct{ mu sync.Mutex }

var r relock

func relockSelf() {
	r.mu.Lock()
	r.mu.Lock() // want "lockorder.relock.mu acquired while already held .in lockorder.relockSelf."
	r.mu.Unlock()
	r.mu.Unlock()
}

// ---- clean: both paths agree on the order ----

type first struct{ mu sync.Mutex }
type second struct{ mu sync.Mutex }

var (
	f1 first
	s2 second
)

func orderedA() {
	f1.mu.Lock()
	defer f1.mu.Unlock()
	s2.mu.Lock()
	defer s2.mu.Unlock()
}

func orderedB() {
	f1.mu.Lock()
	s2.mu.Lock()
	s2.mu.Unlock()
	f1.mu.Unlock()
}

// sequential re-use after release is not nesting
func sequential() {
	s2.mu.Lock()
	s2.mu.Unlock()
	f1.mu.Lock()
	f1.mu.Unlock()
}

// a goroutine starts with an empty held set: no edge from f1.mu
func goResetsHeld() {
	f1.mu.Lock()
	go func() {
		s2.mu.Lock()
		s2.mu.Unlock()
	}()
	f1.mu.Unlock()
}
