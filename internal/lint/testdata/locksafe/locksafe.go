// Package locksafe seeds copied locks, in-goroutine WaitGroup.Add and
// leakable goroutines — the three concurrency mistakes the analyzer
// exists to catch before the race detector has to.
package locksafe

import (
	"context"
	"sync"
)

type guarded struct {
	mu    sync.Mutex
	count int
}

func byValueParam(g guarded) int { // want "parameter passes a lock by value"
	return g.count
}

func (g guarded) method() int { // want "receiver passes a lock by value"
	return g.count
}

func (g *guarded) pointerMethod() int { // fine: shared, not copied
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count
}

func assignmentCopy(g *guarded) {
	snapshot := *g // want "assignment copies a lock"
	_ = snapshot.count
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies a lock"
		total += g.count
	}
	return total
}

func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].count
	}
	return total
}

func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "WaitGroup.Add inside the goroutine it guards"
		defer wg.Done()
	}()
	wg.Wait()
}

func addBeforeGoroutine() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func ownWaitGroupInside() {
	go func() {
		var inner sync.WaitGroup
		inner.Add(1) // fine: inner is owned by this goroutine
		go func() { inner.Done() }()
		inner.Wait()
	}()
}

func leakyInCancellable(ctx context.Context, ch chan int) {
	go func() { // want "neither a ctx reference nor a WaitGroup join"
		for {
			select {
			case v, ok := <-ch:
				if !ok {
					return
				}
				_ = v
			}
		}
	}()
}

func joinedInCancellable(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func cancellableGoroutine(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}
