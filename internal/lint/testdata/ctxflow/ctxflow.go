// Package ctxflow seeds unguarded blocking channel operations inside
// cancellable functions — the deadlock-on-cancel class the pipeline's
// stage graph must never reintroduce.
package ctxflow

import (
	"context"
	"time"
)

func bareSend(ctx context.Context, ch chan int) {
	ch <- 1 // want "bare channel send can block forever"
}

func bareRecv(ctx context.Context, ch chan int) int {
	return <-ch // want "bare channel receive can block forever"
}

func bareRange(ctx context.Context, ch chan int) (sum int) {
	for v := range ch { // want "range over channel blocks until close"
		sum += v
	}
	return sum
}

func unguardedSelect(ctx context.Context, a, b chan int) {
	select { // want "neither a ctx.Done.. case nor a default"
	case v := <-a:
		_ = v
	case b <- 1:
	}
}

func guardedSend(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

func guardedRecv(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func nonBlocking(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func waitForCancel(ctx context.Context) {
	<-ctx.Done() // waiting on cancellation itself is the point
}

func stageGoroutine(ctx context.Context, in, out chan int) {
	go func() {
		for {
			select {
			case v, ok := <-in:
				if !ok {
					return
				}
				select {
				case out <- v:
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
}

func leakyGoroutine(ctx context.Context, in, out chan int) {
	go func() {
		v := <-in // want "bare channel receive can block forever"
		out <- v  // want "bare channel send can block forever"
	}()
}

func sleepInCtx(ctx context.Context) {
	time.Sleep(time.Second) // want "time.Sleep in a cancellable function stalls cancellation"
}

func nakedAfter(ctx context.Context) {
	<-time.After(time.Second) // want "naked <-time.After ignores cancellation"
}

func guardedAfter(ctx context.Context) bool {
	select {
	case <-time.After(time.Second):
		return false
	case <-ctx.Done():
		return true
	}
}

// noCtx is exempt: without a context parameter there is no cancellation
// contract to honour (sync worker pools drain via close).
func noCtx(jobs chan int) (sum int) {
	jobs <- 1
	for v := range jobs {
		sum += v
	}
	return sum
}
