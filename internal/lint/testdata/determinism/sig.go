// Package sig (fixture) seeds the three nondeterminism classes the
// elsadeterminism analyzer flags in scoped packages: wall-clock reads,
// the global rand source, and map order escaping into ordered output —
// the bug class the pipeline's slot-indexed merges exist to prevent.
package sig

import (
	"math/rand"
	"sort"
	"time"
)

func clocks() time.Duration {
	t := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(t) // want "time.Since reads the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn uses the shared global source"
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors are the sanctioned pattern
	return rng.Intn(10)
}

// mapEscapes builds an ordered slice in map iteration order and never
// sorts it: per-run output order.
func mapEscapes(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want "built in map iteration order and never sorted"
	}
	return out
}

// mapSorted is the sanctioned pattern: collect, then sort.
func mapSorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// mapGrouping appends into a map element keyed by the loop variable:
// order-insensitive grouping, not ordered output.
func mapGrouping(m map[int]int) map[int][]int {
	groups := make(map[int][]int)
	for k, v := range m {
		groups[k%2] = append(groups[k%2], v+k)
	}
	return groups
}
