// Package statefix exercises elsastate: annotation-declared lifecycle
// protocols verified by the may-state interpreter — requires
// violations, dead transitions, branch union-merge, fresh composite
// literals, and the directive grammar's own error surface.
package statefix

// ---- the session protocol (the Monitor/Session shape) ----

//elsa:state open closed
type Session struct{ closed bool }

//elsa:requires open
func (s *Session) Feed(v int) int {
	if s.closed {
		return 0
	}
	return v
}

//elsa:requires open
//elsa:transition open->open
func (s *Session) Snapshot() {}

//elsa:transition open->closed closed->closed
func (s *Session) Close() { s.closed = true }

// Result is unannotated: an observer that keeps the state.
func (s *Session) Result() int { return 0 }

func feedAfterClose(s *Session) {
	s.Close()
	s.Feed(1) // want "Session.Feed requires state open, but s may be in state closed"
}

func feedThenClose(s *Session) {
	s.Feed(1)
	s.Close()
	s.Result() // observers stay legal after Close
}

func doubleClose(s *Session) {
	s.Close()
	s.Close() // closed->closed: idempotent Close is declared legal
}

func snapshotAfterClose(s *Session) {
	s.Close()
	s.Snapshot() // want "Session.Snapshot requires state open, but s may be in state closed"
}

// ---- branch union-merge ----

func maybeClosed(s *Session, b bool) {
	if b {
		s.Close()
	}
	s.Feed(1) // want "Session.Feed requires state open, but s may be in state closed"
}

// closeIdempotent is the early-return shape: the terminated branch's
// state must not leak into the fall-through.
func closeIdempotent(s *Session, done bool) {
	if done {
		s.Close()
		return
	}
	s.Feed(1)
}

// exhaustiveClose: the closing arm returns, so the fall-through only
// sees the feeding arm.
func exhaustiveClose(s *Session, k int) {
	switch k {
	case 0:
		s.Close()
		return
	default:
		s.Feed(1)
	}
	s.Feed(2)
}

// serveLoop is the fleet incarnation shape: Close and Feed in parallel
// switch arms of a worker loop are protocol-correct per iteration.
func serveLoop(s *Session, reqs []int) {
	for _, r := range reqs {
		switch r {
		case 0:
			s.Feed(r)
		default:
			s.Close()
		}
	}
}

// ---- defer / go / closures ----

func deferClose(s *Session, vals []int) {
	defer s.Close()
	for _, v := range vals {
		s.Feed(v)
	}
}

func deferLitClose(s *Session) {
	defer func() {
		s.Close()
	}()
	s.Feed(1)
}

func do(f func()) { f() }

// closureClose: a closure argument may run synchronously inside the
// callee, so its effects merge back as a may-executed branch.
func closureClose(s *Session) {
	do(func() {
		s.Close()
	})
	s.Feed(1) // want "Session.Feed requires state open, but s may be in state closed"
}

// ---- field cells ----

type holder struct{ s *Session }

func fieldClose(h *holder) {
	h.s.Close()
	h.s.Feed(1) // want "Session.Feed requires state open, but h.s may be in state closed"
}

// ---- the slot protocol (the fleet shard shape) ----

//elsa:state down live
type Slot struct{ on bool }

//elsa:transition down->live
func (sl *Slot) Spawn() { sl.on = true }

//elsa:transition live->down down->down
func (sl *Slot) Retire() { sl.on = false }

//elsa:requires live
func (sl *Slot) Commit() {}

// handoff is the legal order: snapshot commit while live, then retire.
func handoff(sl *Slot) {
	sl.Spawn()
	sl.Commit()
	sl.Retire()
}

// retireEarly is the handoff mutation: retiring before the snapshot
// commit loses the incarnation's tail.
func retireEarly(sl *Slot) {
	sl.Spawn()
	sl.Retire()
	sl.Commit() // want "Slot.Commit requires state live, but sl may be in state down"
}

// doubleSpawn: a composite literal is provably fresh, so it starts in
// the protocol's initial state and the second Spawn has no edge.
func doubleSpawn() {
	sl := &Slot{}
	sl.Spawn()
	sl.Spawn() // want "Slot.Spawn has no transition from state live"
}

func commitBeforeSpawn() {
	sl := &Slot{}
	sl.Commit() // want "Slot.Commit requires state live, but sl may be in state down"
}

// passedAway: handing the slot to another function resets it — the
// callee is checked on its own parameter.
func inspect(sl *Slot) {}

func passedAway(sl *Slot) {
	sl.Spawn()
	sl.Retire()
	inspect(sl)
	sl.Commit() // unconstrained again after the call
}

// ---- interface protocols ----

//elsa:state open closed
type Backend interface {
	//elsa:requires open
	Next() (int, error)

	//elsa:transition open->closed closed->closed
	Close() error
}

func useBackend(b Backend) {
	b.Close()
	b.Next() // want "Backend.Next requires state open, but b may be in state closed"
}

func drainBackend(b Backend) {
	for {
		if _, err := b.Next(); err != nil {
			break
		}
	}
	b.Close()
}

// ---- directive grammar errors ----

//elsa:state lone
type Single struct{} // want "//elsa:state on Single needs at least two states"

// want "malformed transition"
//elsa:transition open>closed
func (s *Session) badArrow() {}

// want "names a state outside"
//elsa:transition open->gone
func (s *Session) badTarget() {}

// want "names a state outside"
//elsa:requires busted
func (s *Session) badRequires() {}

type Plain struct{}

//elsa:requires open
func (p *Plain) orphan() {} // want "receiver type has no //elsa:state protocol"
