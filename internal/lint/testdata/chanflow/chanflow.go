// Package chanflow exercises elsachan: close discipline (single close,
// owner-only close, no send after close) and goroutine-leak shapes.
package chanflow

import "context"

// ---- double close ----

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "closed more than once"
}

func closeInLoop() {
	ch := make(chan int)
	for i := 0; i < 2; i++ {
		close(ch) // want "close of ch inside a loop"
	}
}

// ---- ownership ----

func closeParam(ch chan int) {
	close(ch) // want "close of channel parameter ch by a non-owner"
}

// closeOwnedParam documents the transfer: the caller hands the close
// over along with the channel.
//
//elsa:chanowner ch
func closeOwnedParam(ch chan int) {
	close(ch)
}

func produceUnannotated() chan int {
	ch := make(chan int, 1)
	go func() {
		defer close(ch) // want "goroutine closes ch it does not own"
		ch <- 1
	}()
	return ch
}

func produceAnnotated() chan int {
	ch := make(chan int, 1)
	//elsa:chanowner ch
	go func() {
		defer close(ch)
		ch <- 1
	}()
	return ch
}

type box struct {
	ch chan int
}

func newBox() *box {
	b := &box{}
	b.ch = make(chan int, 1)
	return b
}

func (b *box) shutdownBad() {
	close(b.ch) // want "close of b.ch outside its creating scope"
}

// shutdown is the annotated owner of the box's channel.
//
//elsa:chanowner b.ch
func (b *box) shutdown() {
	close(b.ch)
}

// ---- send after close ----

func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on ch is reachable after its close at line"
}

func sendAfterCloseBranch(b bool) {
	ch := make(chan int, 1)
	if b {
		close(ch)
	}
	ch <- 1 // want "send on ch is reachable after its close"
}

func deferCloseThenSend() {
	ch := make(chan int, 1)
	defer close(ch)
	ch <- 1 // deferred close runs at exit: no ordering edge
}

func closeThenCloseOther() {
	a := make(chan int, 1)
	b := make(chan int, 1)
	close(a)
	b <- 1 // a's close does not poison b
	close(b)
}

// ---- goroutine leaks ----

func leakySend() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want "blocking send on ch with no guaranteed counterpart"
	}()
}

func leakyRecv() {
	ch := make(chan int)
	go func() {
		<-ch // want "blocking receive from ch with no close, sender"
	}()
}

func pairedSend() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

func bufferedSend() {
	ch := make(chan int, 4)
	go func() { ch <- 1 }()
}

func ctxGuarded(ctx context.Context) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

func defaultGuarded() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

func rangeClosed() {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	close(ch)
}
