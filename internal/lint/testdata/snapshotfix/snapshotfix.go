// Package snapshotfix seeds the elsasnapshot fixture: snapshot-contract
// structs with covered, missed and ephemeral fields, and a persistence
// envelope reaching unexported state.
package snapshotfix

// ring is fully covered: slots and head travel through both
// snapshotter paths, tmp is reasoned ephemeral.
//
//elsa:snapshot
type ring struct {
	slots []int
	head  int
	tmp   []int //elsa:ephemeral scratch; rebuilt lazily on first use
}

type ringState struct {
	Slots []int `json:"slots"`
	Head  int   `json:"head"`
}

//elsa:snapshotter encode
func (r *ring) state() ringState {
	return ringState{Slots: r.slots, Head: r.head}
}

//elsa:snapshotter decode
func restore(st ringState) *ring {
	return &ring{slots: st.Slots, head: st.Head}
}

//elsa:snapshot
type leaky struct {
	a int
	b int // want "field b of leaky is not handled by the decode snapshotter path"
	c int // want "field c of leaky is not handled by the encode and decode snapshotter paths"
	//elsa:ephemeral
	d int // want "//elsa:ephemeral needs a reason"
	e int //nolint:elsasnapshot // migration in flight; serialized in the next schema rev
	//elsa:ephemeral TODO: why is dropping this on resume safe?
	f int // want "//elsa:ephemeral reason is a TODO stub"
}

//elsa:snapshotter encode
func encodeLeaky(l *leaky) (int, int) { return l.a, l.b }

//elsa:snapshotter decode
func decodeLeaky(a int) *leaky { return &leaky{a: a} }

//elsa:snapshotter transcode
func bogus() {} // want "snapshotter mode must be encode or decode"

// envelope is a persistence root: everything reachable must be
// json-visible or deliberately excluded.
//
//elsa:snapshot-envelope
type envelope struct {
	V     int     `json:"v"`
	Inner inner   `json:"inner"`
	Skip  int     `json:"-"`
	When  stamped `json:"when"`
	Deep  []outer `json:"deep"`
}

type inner struct {
	Kept    int
	dropped int   // want "unexported field .* invisible to encoding/json"
	scratch []int //elsa:ephemeral derived cache; repopulated on first access
}

type outer struct {
	Name string
	meta map[string]int // want "unexported field .* invisible to encoding/json"
}

// stamped marshals itself, so its unexported word is its own business.
type stamped struct{ ns int64 }

func (stamped) MarshalJSON() ([]byte, error) { return []byte("0"), nil }
