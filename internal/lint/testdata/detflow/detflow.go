// Package pipeline (fixture) exercises elsadetflow: nondeterminism
// sources — wall clock, global rand, map/select/goroutine ordering —
// are flagged only where their taint reaches replayed output: exported
// returns, serialized bytes, or //elsa:snapshot state.
package pipeline

import (
	"encoding/json"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ---- wall clock ----

// Stamp leaks the wall clock into its exported return value.
func Stamp() time.Time {
	now := time.Now()
	return now // want "wall-clock value from time.Now .* reaches the return value of exported Stamp"
}

// stamp is unexported: its callers are checked where the value
// escapes, not here.
func stamp() time.Time {
	return time.Now()
}

// StatUptime is operational telemetry, allowed to be wall-clock
// stamped — the escape hatch documents why.
func StatUptime() time.Time {
	now := time.Now() //elsa:nondet-ok operational telemetry, never replayed
	return now
}

// StatBad uses the escape hatch without a reason: the directive is
// flagged and does not suppress.
func StatBad() time.Time {
	// want "needs a reason"
	now := time.Now() //elsa:nondet-ok
	return now // want "wall-clock value from time.Now .* reaches the return value of exported StatBad"
}

// ---- global rand ----

func Jitter() int {
	return rand.Intn(10) // want "global-rand value from rand.Intn .* reaches the return value of exported Jitter"
}

// Seed propagates the taint through intermediates.
func Seed() int64 {
	n := rand.Int63()
	m := n + 1
	return m // want "global-rand value from rand.Int63 .* reaches the return value of exported Seed"
}

// Deterministic rand over an explicit seed is fine: the constructors
// are exempt and methods on the local source are not global state.
func Deterministic(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63()
}

// ---- map iteration order ----

type table struct{ m map[string]int }

// EncodeKeys serializes keys in map-iteration order: the bytes differ
// across runs.
func (t *table) EncodeKeys(enc *json.Encoder) {
	var keys []string
	for k := range t.m {
		keys = append(keys, k)
	}
	enc.Encode(keys) // want "map-iteration-ordered elements .* reaches serialized bytes via json.Encode"
}

// SortedKeys re-establishes determinism with an explicit sort.
func (t *table) SortedKeys() []string {
	var keys []string
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Regroup appends to map elements keyed by the loop key:
// order-insensitive grouping, not ordered output.
func Regroup(src map[string]int) map[string][]string {
	out := make(map[string][]string)
	for k := range src {
		out[k] = append(out[k], k)
	}
	return out
}

// ---- arrival order ----

// Collect's element order is select-arrival order.
func Collect(a, b chan int) []int {
	var out []int
	for i := 0; i < 2; i++ {
		select {
		case v := <-a:
			out = append(out, v)
		case v := <-b:
			out = append(out, v)
		}
	}
	return out // want "select-arrival-ordered elements .* reaches the return value of exported Collect"
}

// DrainOne has a single comm clause: no arrival race to order by.
func DrainOne(ch chan int) []int {
	var out []int
	select {
	case v := <-ch:
		out = append(out, v)
	default:
	}
	return out
}

// Gather's element order is goroutine-completion order.
func Gather(parts [][]int) []int {
	var out []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range parts {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			out = append(out, p...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out // want "goroutine-completion-ordered elements .* reaches the return value of exported Gather"
}

// ---- snapshot state ----

//elsa:snapshot
type checkpoint struct {
	Taken time.Time
	Count int
}

func (c *checkpoint) mark() {
	c.Taken = time.Now() // want "wall-clock value from time.Now .* reaches //elsa:snapshot state checkpoint.Taken"
}

func (c *checkpoint) markOk() {
	c.Taken = time.Now() //elsa:nondet-ok operator-facing timestamp, excluded from replay equality
}

func (c *checkpoint) bump() {
	c.Count++
}

// ---- closures return to their own caller ----

// Wrap returns a clock closure; the closure's own return is not the
// exported function's return.
func Wrap() func() time.Time {
	return func() time.Time {
		return time.Now()
	}
}
