// Package pipeline (the fixture borrows the scoped name) exercises
// elsaerrflow: every err != nil branch on the serving path must return,
// quarantine, or count the error.
package pipeline

import (
	"errors"
	"fmt"
	"io"
)

type stats struct {
	quarantined int
	dropped     int64
}

type counter struct{}

func (counter) Add(n int64) {}

var errBoom = errors.New("boom")

func work() (int, error) { return 0, errBoom }

// ---- accounted branches ----

func returned() error {
	_, err := work()
	if err != nil {
		return err
	}
	return nil
}

func wrapped() error {
	_, err := work()
	if err != nil {
		return fmt.Errorf("work: %w", err)
	}
	return nil
}

func counted(s *stats) {
	for i := 0; i < 3; i++ {
		_, err := work()
		if err != nil {
			s.quarantined++
			continue
		}
	}
}

func counterAdd(c counter) {
	_, err := work()
	if err != nil {
		c.Add(1)
	}
}

func namedResult() (err error) {
	_, err = work()
	if err != nil {
		return
	}
	return nil
}

// classified: translating the failure into a sentinel the caller must
// handle accounts for it, even though err itself is not mentioned.
func classified() error {
	_, err := work()
	if err != nil {
		return errBoom
	}
	return nil
}

type source struct{ err error }

func (s *source) stashed() {
	_, err := work()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
	}
}

// recheck: a stored error was accounted when it was stashed;
// inspecting it later is not a discard.
func (s *source) recheck() bool {
	if s.err != nil {
		return false
	}
	return true
}

// ---- discarded branches ----

func swallowed() {
	for i := 0; i < 3; i++ {
		_, err := work()
		if err != nil { // want "err != nil branch neither returns, quarantines, nor counts the error"
			continue
		}
	}
}

func discarded() {
	_, err := work()
	if err != nil { // want "err != nil branch neither returns"
		_ = 0
	}
}

func composite(ok bool) {
	_, err := work()
	if !ok || err != nil { // want "err != nil branch neither returns"
		return
	}
}
