// Package hotpath seeds one violation of every construct the
// elsahotpath analyzer bans, plus clean and suppressed counterexamples.
package hotpath

import "fmt"

type scratch struct {
	buf []int
}

// grow is clean: slicing, indexing and arithmetic only.
//
//elsa:hotpath
func (s *scratch) clean(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	if len(s.buf) > 0 {
		sum += s.buf[0]
	}
	return sum
}

//elsa:hotpath
func appends(xs []int, v int) []int {
	return append(xs, v) // want "append may grow and allocate"
}

//elsa:hotpath
func makes(n int) []int {
	return make([]int, n) // want "make allocates"
}

//elsa:hotpath
func news() *scratch {
	return new(scratch) // want "new allocates"
}

//elsa:hotpath
func literals() int {
	xs := []int{1, 2, 3}   // want "slice literal allocates"
	m := map[int]int{1: 2} // want "map literal allocates"
	p := &scratch{}        // want "&composite literal allocates"
	return xs[0] + m[1] + len(p.buf)
}

//elsa:hotpath
func closures(xs []int) int {
	f := func(i int) int { return xs[i] } // want "closure allocates"
	return f(0)
}

//elsa:hotpath
func formats(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates" "implicit conversion of int to interface"
}

//elsa:hotpath
func conversions(s string) []byte {
	return []byte(s) // want "conversion copies"
}

type boxer interface{ M() }

type impl struct{}

func (impl) M() {}

func takesIface(b boxer) { b.M() }

//elsa:hotpath
func boxes() {
	var v impl
	takesIface(v) // want "implicit conversion of impl to interface"
}

//elsa:hotpath
func spawns() {
	go func() {}() // want "goroutine launch allocates a stack" "closure allocates"
}

// suppressed shows the escape hatch: amortized growth into a reused
// buffer, with the reason recorded.
//
//elsa:hotpath
func (s *scratch) suppressed(v int) {
	s.buf = append(s.buf, v) //nolint:elsahotpath // amortized: buf is reused across calls, growth is one-time
}

// unannotated functions may do whatever they like.
func unannotated(n int) []int {
	return make([]int, n)
}
