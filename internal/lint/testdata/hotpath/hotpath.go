// Package hotpath seeds one violation of every construct the
// elsahotpath pre-pass bans, plus clean and suppressed counterexamples.
// The allocation sites escape analysis may rescue (make, new, composite
// literals, closures) live in testdata/alloc, elsaalloc's fixture.
package hotpath

import "fmt"

type scratch struct {
	buf []int
}

// clean is allocation-free syntax: slicing, indexing and arithmetic.
//
//elsa:hotpath
func (s *scratch) clean(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	if len(s.buf) > 0 {
		sum += s.buf[0]
	}
	return sum
}

//elsa:hotpath
func appends(xs []int, v int) []int {
	return append(xs, v) // want "append may grow and allocate"
}

// stackable constructs are the proof layer's domain now: the pre-pass
// stays silent here, elsaalloc decides.
//
//elsa:hotpath
func stackable(n int) int {
	xs := make([]int, 8)
	p := &scratch{}
	f := func(i int) int { return xs[i] }
	return f(0) + len(p.buf) + n
}

//elsa:hotpath
func formats(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates" "implicit conversion of int to interface"
}

//elsa:hotpath
func conversions(s string) []byte {
	return []byte(s) // want "conversion copies"
}

type boxer interface{ M() }

type impl struct{}

func (impl) M() {}

func takesIface(b boxer) { b.M() }

//elsa:hotpath
func boxes() {
	var v impl
	takesIface(v) // want "implicit conversion of impl to interface"
}

//elsa:hotpath
func boxesOnReturn() boxer {
	var v impl
	return v // want "implicit conversion of impl to interface"
}

//elsa:hotpath
func spawns() {
	go func() {}() // want "goroutine launch allocates a stack"
}

// closure returns pair with the closure's own signature, not the
// kernel's: the int return below is not a boxing site even though the
// kernel returns any, and boxing inside a closure is judged against
// the closure's own results.
//
//elsa:hotpath
func closureReturns() any {
	f := func() int { return 1 }
	sum := f()
	g := func() boxer {
		var v impl
		return v // want "implicit conversion of impl to interface"
	}
	g()
	_ = sum
	return nil
}

// suppressed shows the escape hatch: amortized growth into a reused
// buffer, with the reason recorded.
//
//elsa:hotpath
func (s *scratch) suppressed(v int) {
	s.buf = append(s.buf, v) //nolint:elsahotpath // amortized: buf is reused across calls, growth is one-time
}

// unannotated functions may do whatever they like.
func unannotated(n int) []int {
	return make([]int, n)
}
