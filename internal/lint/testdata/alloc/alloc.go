// Package alloc seeds the elsaalloc fixture: allocation sites in
// //elsa:hotpath kernels that the flow layer must prove
// stack-allocatable (non-escaping, constant size) or flag with their
// escape path.
package alloc

type scratch struct {
	buf []int
	out []*scratch
}

var global []int

// provenLocal is the payoff case: constant-size make, slice literal,
// &composite and a closure, none escaping — the compiler stack-
// allocates all of them, and the proof layer stays silent where the
// old syntactic ban fired four times.
//
//elsa:hotpath
func provenLocal(n int) int {
	tmp := make([]int, 16)
	ws := []int{1, 2, 4}
	p := &scratch{}
	f := func(i int) int { return tmp[i&15] + ws[i%3] }
	sum := len(p.buf)
	for i := 0; i < n; i++ {
		sum += f(i)
	}
	return sum
}

//elsa:hotpath
func escapesByReturn() []int {
	xs := make([]int, 4) // want "escapes .*returned"
	return xs
}

//elsa:hotpath
func escapesToGlobal() {
	global = make([]int, 4) // want "escapes .stored to package-level global"
}

//elsa:hotpath
func escapesThroughField(s *scratch) {
	s.out = append(s.out, &scratch{}) // want "&composite literal escapes"
}

//elsa:hotpath
func nonConstSize(n int) int {
	xs := make([]int, n) // want "non-constant size"
	return xs[0]
}

//elsa:hotpath
func tooBig() int {
	var big [9000]int64
	xs := big[:]
	ys := make([]int64, 9000) // want "past the 65536-byte stack-allocation bound"
	return int(xs[0] + ys[0])
}

//elsa:hotpath
func mapAlloc() int {
	m := map[int]int{1: 2} // want "not provably allocation-free"
	return m[1]
}

//elsa:hotpath
func chanAlloc() chan int {
	return make(chan int) // want "make.chan. in a hotpath kernel allocates"
}

func retain(f func() int) func() int { return f }

//elsa:hotpath
func escapingClosure(base int) func() int {
	k := base
	g := func() int { return k } // want "closure escapes .*passed to retain.*captures k by reference"
	return retain(g)
}

// indirection: the escape is two hops away — the make flows through a
// local, into a local struct, and out through the return.
//
//elsa:hotpath
func escapesIndirectly() *scratch {
	tmp := make([]int, 8) // want "escapes"
	var s scratch
	s.buf = tmp
	return &s // want "&s escapes .returned.*moving s to the heap"
}

// the refGate soundness hole: &xs[i] of a []int points into the
// backing array even though an int element carries no references, so
// the make must escape with the pointer.
//
//elsa:hotpath
func escapesByElemAddr() *int {
	xs := make([]int, 4) // want "escapes .*returned"
	return &xs[0]
}

// same hole through a selector + index chain.
//
//elsa:hotpath
func escapesByFieldElemAddr() *int {
	s := scratch{buf: make([]int, 2)} // want "escapes .*returned"
	return &s.buf[0]
}

type pair struct{ a, b int }

// no allocation site at all: the address of a plain local escapes, so
// the compiler moves the variable itself to the heap.
//
//elsa:hotpath
func heapMovedByFieldAddr() *int {
	var p pair
	return &p.a // want "&p.a escapes .returned at line.*moving p to the heap"
}

// addresses that never leave the frame prove out clean.
//
//elsa:hotpath
func addrStaysLocal() int {
	xs := make([]int, 4)
	var p pair
	q, r := &xs[0], &p.a
	*q, *r = 3, 4
	return xs[0] + p.a
}

// suppressedLegacy: a reasoned //nolint:elsahotpath covers the proof
// layer too — one contract, two depths.
//
//elsa:hotpath
func (s *scratch) suppressedLegacy(n int) {
	s.buf = make([]int, n) //nolint:elsahotpath // amortized: grows once to capacity, reused per call
}

// unannotated functions are out of scope.
func unannotated() []int {
	return make([]int, 3)
}
