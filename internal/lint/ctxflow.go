package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CtxFlowAnalyzer enforces the streaming graph's cancellation contract:
// a function that accepts a context.Context promises its callers it can
// be cancelled, so every potentially-blocking channel operation in it
// (including in the stage goroutines it launches) must be paired with
// ctx.Done() in a select. A bare send into a bounded stage channel is
// exactly the deadlock-on-cancel bug class the pipeline's drain logic
// exists to prevent.
var CtxFlowAnalyzer = &analysis.Analyzer{
	Name: "elsactxflow",
	Doc: "in functions taking a context.Context, report blocking channel sends/receives, channel " +
		"ranges, bare time.Sleep calls and naked <-time.After receives that are not guarded by a " +
		"select with a ctx.Done() case",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || !hasCtxParam(pass.TypesInfo, fn) {
			return
		}
		checkCtxBody(pass, rep, fn.Body)
	})
	return nil, nil
}

// hasCtxParam reports whether fn declares a context.Context parameter.
func hasCtxParam(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, f := range fn.Type.Params.List {
		if isContextType(info.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isTimeCall reports whether e is a call to time.<name> (the package
// function, not a method on a Timer/Ticker).
func isTimeCall(info *types.Info, e ast.Expr, name string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time"
}

// isDoneRecv reports whether e is a receive from somectx.Done().
func isDoneRecv(info *types.Info, e ast.Expr) bool {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "<-" {
		return false
	}
	call, ok := ast.Unparen(u.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextType(info.TypeOf(sel.X))
}

// selectGuarded reports whether a select statement contains a default
// case (non-blocking) or a case receiving from ctx.Done().
func selectGuarded(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default: the select cannot block
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if isDoneRecv(info, comm.X) {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if isDoneRecv(info, r) {
					return true
				}
			}
		}
	}
	return false
}

// checkCtxBody walks body (including nested function literals, which run
// within the same cancellable lifetime) flagging unguarded channel ops.
func checkCtxBody(pass *analysis.Pass, rep *reporter, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.SelectStmt:
			if !selectGuarded(info, n) {
				rep.reportf(n.Pos(), "ctxflow: select in a cancellable function has neither a ctx.Done() case nor a default")
			}
			// Channel ops in the comm clauses are covered by the select
			// verdict; their bodies are ordinary code again.
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				for _, s := range cc.Body {
					walk(s)
				}
			}
			return
		case *ast.SendStmt:
			rep.reportf(n.Pos(), "ctxflow: bare channel send can block forever on cancellation; select on it with ctx.Done()")
			walk(n.Value)
			return
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !isDoneRecv(info, n) {
				if isTimeCall(info, n.X, "After") {
					rep.reportf(n.Pos(), "ctxflow: naked <-time.After ignores cancellation for the whole delay; select on it with ctx.Done()")
				} else {
					rep.reportf(n.Pos(), "ctxflow: bare channel receive can block forever on cancellation; select on it with ctx.Done()")
				}
			}
			walk(n.X)
			return
		case *ast.CallExpr:
			if isTimeCall(info, n, "Sleep") {
				rep.reportf(n.Pos(), "ctxflow: time.Sleep in a cancellable function stalls cancellation; select on time.After and ctx.Done()")
			}
		case *ast.RangeStmt:
			if _, isChan := info.TypeOf(n.X).Underlying().(*types.Chan); isChan {
				rep.reportf(n.Pos(), "ctxflow: range over channel blocks until close; drain with a select on ctx.Done()")
			}
		}
		// Generic recursion over children.
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			walk(m)
			return false
		})
	}
	for _, s := range body.List {
		walk(s)
	}
}
