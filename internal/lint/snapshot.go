package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Snapshot-contract directives. A struct marked //elsa:snapshot must
// have every field either referenced by at least one
// "//elsa:snapshotter encode" function AND one "//elsa:snapshotter
// decode" function in its package, or annotated "//elsa:ephemeral
// <reason>". A struct marked //elsa:snapshot-envelope is the root of a
// JSON persistence envelope: no struct reachable from it may carry
// state in unexported fields, because encoding/json drops those
// silently and the kill/resume equality guarantee dies with them.
const (
	snapshotDirective    = "//elsa:snapshot"
	snapshotterDirective = "//elsa:snapshotter"
	ephemeralDirective   = "//elsa:ephemeral"
	envelopeDirective    = "//elsa:snapshot-envelope"
)

// SnapshotAnalyzer guards resume equality by construction: adding a
// mutable field to a snapshot-contract struct without serializing it
// (or explaining why it may be dropped) is a vet error, not a code
// review hope. See the directive constants above for the contract.
//
// Ephemeral annotations export an EphemeralFact per field, so envelope
// walks from importing packages honor exemptions granted where the
// struct is defined.
var SnapshotAnalyzer = &analysis.Analyzer{
	Name: "elsasnapshot",
	Doc: "check //elsa:snapshot structs for fields missed by the encode/decode snapshotter " +
		"paths and //elsa:snapshot-envelope roots for unexported (encoding/json-invisible) state",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*EphemeralFact)(nil)},
	Run:       runSnapshot,
}

// EphemeralFact records that a field is deliberately not serialized.
type EphemeralFact struct{ Reason string }

func (*EphemeralFact) AFact()           {}
func (f *EphemeralFact) String() string { return "ephemeral: " + f.Reason }

func runSnapshot(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)

	enc, dec := collectSnapshotters(pass, rep, ins)
	eph := collectEphemerals(pass, rep, ins)

	ins.Preorder([]ast.Node{(*ast.GenDecl)(nil)}, func(n ast.Node) {
		gd := n.(*ast.GenDecl)
		if gd.Tok != token.TYPE {
			return
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			marked := hasDirective(gd.Doc, snapshotDirective) || hasDirective(ts.Doc, snapshotDirective)
			if marked {
				checkSnapshotStruct(pass, rep, ts, st, enc, dec, eph)
			}
			if hasDirective(gd.Doc, envelopeDirective) || hasDirective(ts.Doc, envelopeDirective) {
				checkEnvelope(pass, rep, ts, eph)
			}
		}
	})
	return nil, nil
}

// collectSnapshotters gathers the union of struct fields referenced by
// the package's annotated encode and decode functions. Any identifier
// resolving to a field counts: selector reads/writes and keyed
// composite-literal keys both appear in types.Info.Uses.
func collectSnapshotters(pass *analysis.Pass, rep *reporter, ins *inspector.Inspector) (enc, dec map[types.Object]bool) {
	enc, dec = make(map[types.Object]bool), make(map[types.Object]bool)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		mode, ok := directiveArg(fn.Doc, snapshotterDirective)
		if !ok {
			return
		}
		var into map[types.Object]bool
		switch mode {
		case "encode":
			into = enc
		case "decode":
			into = dec
		default:
			rep.reportf(fn.Pos(), "snapshot: snapshotter mode must be encode or decode, got %q", mode)
			return
		}
		if fn.Body == nil {
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && v.IsField() {
					into[v] = true
				}
			}
			return true
		})
	})
	return enc, dec
}

// collectEphemerals indexes every //elsa:ephemeral field annotation in
// the package, reports reasonless ones, and exports the facts.
func collectEphemerals(pass *analysis.Pass, rep *reporter, ins *inspector.Inspector) map[types.Object]string {
	eph := make(map[types.Object]string)
	ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
		st := n.(*ast.StructType)
		for _, fld := range st.Fields.List {
			reason, ok := directiveArg(fld.Doc, ephemeralDirective)
			if !ok {
				reason, ok = directiveArg(fld.Comment, ephemeralDirective)
			}
			if !ok {
				continue
			}
			switch {
			case reason == "":
				rep.reportf(fld.Pos(), "snapshot: //elsa:ephemeral needs a reason explaining why dropping this field on resume is safe")
			case strings.HasPrefix(strings.ToLower(reason), "todo"):
				// The autofix stub deliberately starts with TODO so the
				// mechanical rewrite unblocks `elsavet -diff` without ever
				// turning CI green: the finding stays red until a reviewed
				// reason (or a serialization path) replaces the stub.
				rep.reportf(fld.Pos(), "snapshot: //elsa:ephemeral reason is a TODO stub; replace it with why dropping this field on resume is safe")
			}
			for _, name := range fld.Names {
				if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					eph[obj] = reason
					pass.ExportObjectFact(obj, &EphemeralFact{Reason: reason})
				}
			}
		}
	})
	return eph
}

// checkSnapshotStruct verifies the field-coverage contract of one
// //elsa:snapshot struct.
func checkSnapshotStruct(pass *analysis.Pass, rep *reporter, ts *ast.TypeSpec, st *ast.StructType,
	enc, dec map[types.Object]bool, eph map[types.Object]string) {
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if _, isEph := eph[obj]; isEph {
				continue
			}
			var missing string
			switch {
			case !enc[obj] && !dec[obj]:
				missing = "the encode and decode snapshotter paths"
			case !enc[obj]:
				missing = "the encode snapshotter path"
			case !dec[obj]:
				missing = "the decode snapshotter path"
			default:
				continue
			}
			indent := strings.Repeat("\t", max(pass.Fset.Position(fld.Pos()).Column-1, 1))
			rep.report(analysis.Diagnostic{
				Pos: name.Pos(),
				Message: fmt.Sprintf("snapshot: field %s of %s is not handled by %s; "+
					"serialize it or annotate it //elsa:ephemeral <reason>", name.Name, ts.Name.Name, missing),
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "annotate the field //elsa:ephemeral (fill in the reason)",
					TextEdits: []analysis.TextEdit{{
						Pos:     fld.Pos(),
						End:     fld.Pos(),
						NewText: []byte(ephemeralDirective + " TODO: why is dropping this on resume safe?\n" + indent),
					}},
				}},
			})
		}
	}
}

// checkEnvelope walks the type closure of a persistence envelope and
// flags unexported struct fields: encoding/json drops them silently,
// so state stored there does not survive a kill/resume cycle.
func checkEnvelope(pass *analysis.Pass, rep *reporter, ts *ast.TypeSpec, eph map[types.Object]string) {
	root, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	visited := make(map[types.Type]bool)
	var walk func(t types.Type, path string)
	walk = func(t types.Type, path string) {
		if t == nil || visited[t] {
			return
		}
		visited[t] = true
		if named, ok := t.(*types.Named); ok {
			if hasMarshalJSON(named) {
				return // the type controls its own wire form
			}
			if path == "" {
				path = named.Obj().Name()
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			walk(u.Elem(), path)
		case *types.Slice:
			walk(u.Elem(), path+"[]")
		case *types.Array:
			walk(u.Elem(), path+"[]")
		case *types.Map:
			walk(u.Key(), path+"(key)")
			walk(u.Elem(), path+"[]")
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if tag := reflect.StructTag(u.Tag(i)).Get("json"); tag == "-" {
					continue // explicitly dropped: a decision, not an accident
				}
				if !f.Exported() {
					if _, isEph := eph[f]; isEph {
						continue
					}
					if f.Pkg() != pass.Pkg && pass.ImportObjectFact(f, new(EphemeralFact)) {
						continue
					}
					pos, where := ts.Name.Pos(), fmt.Sprintf("%s.%s", path, f.Name())
					if f.Pkg() == pass.Pkg {
						pos = f.Pos()
					}
					rep.reportf(pos, "snapshot: unexported field %s is reachable from envelope %s and invisible to "+
						"encoding/json; export it, annotate it //elsa:ephemeral <reason>, or marshal it explicitly",
						where, root.Name())
					continue // dropped fields don't contribute reachable types
				}
				walk(f.Type(), path+"."+f.Name())
			}
		}
	}
	walk(root.Type(), "")
}

// hasMarshalJSON structurally detects a json.Marshaler implementation
// on t or *t (func () ([]byte, error)).
func hasMarshalJSON(t types.Type) bool {
	for _, recv := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, "MarshalJSON")
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Params().Len() == 0 && sig.Results().Len() == 2 {
			return true
		}
	}
	return false
}
