package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// AllocAnalyzer is the dataflow layer of the hot-path contract: where
// elsahotpath is a fast syntactic pre-pass over constructs that always
// cost an allocation (fmt, goroutines, string conversions, boxing,
// append growth), elsaalloc proves or refutes the allocation sites the
// compiler may optimize away. A make/new/composite literal/closure in
// a //elsa:hotpath kernel is accepted exactly when the value provably
// never escapes the frame and its size is a compile-time constant —
// the same conditions under which the compiler stack-allocates it —
// and flagged with the concrete escape path otherwise.
//
// A function whose body is proven free of heap allocation sites
// exports an AllocFreeFact, so the proof is visible to analysis of
// importing packages under go vet's facts pipeline.
//
// elsaalloc honors //nolint:elsahotpath suppressions as well as its
// own: the two analyzers enforce one contract at two depths, and a
// reasoned suppression of the syntactic layer covers the proof layer.
var AllocAnalyzer = &analysis.Analyzer{
	Name: "elsaalloc",
	Doc: "prove //elsa:hotpath allocation sites stack-allocatable (non-escaping, constant size) " +
		"or report them with their escape path",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*AllocFreeFact)(nil)},
	Run:       runAlloc,
}

// AllocFreeFact marks a function proven free of per-call heap
// allocation sites by the flow layer.
type AllocFreeFact struct{}

func (*AllocFreeFact) AFact()         {}
func (*AllocFreeFact) String() string { return "allocfree" }

func runAlloc(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)
	// elsahotpath suppressions cover the proof layer too (one contract,
	// two depths).
	rep.sup.aliases = []string{HotPathAnalyzer.Name}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if !isHotPath(fn) || fn.Body == nil {
			return
		}
		flow := analyzeFlow(pass, fn)
		clean := true
		for _, site := range flow.sites {
			if d, fix := allocVerdict(pass, site); d != "" {
				clean = false
				diag := analysis.Diagnostic{Pos: site.node.Pos(), Message: d}
				if fix != nil {
					diag.SuggestedFixes = []analysis.SuggestedFix{*fix}
				}
				rep.report(diag)
			}
		}
		// A variable whose address escapes is moved to the heap — an
		// allocation with no make/new/literal site of its own.
		for _, ac := range heapMovedLocals(flow) {
			clean = false
			p := pass.Fset.Position(ac.cell.sinkPos)
			rep.reportf(ac.pos, "alloc: %s escapes (%s at line %d), moving %s to the heap; it allocates per call",
				ac.cell.label, ac.cell.sink, p.Line, ac.base.obj.Name())
		}
		if clean {
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok && obj.Exported() {
				pass.ExportObjectFact(obj, &AllocFreeFact{})
			}
		}
	})
	return nil, nil
}

// heapMovedLocals returns the escaping address-of cells, one per
// addressed variable (the first escaping & in source order wins).
// Only the pointer cell's escape counts: a plain value return of the
// variable marks the variable's own cell escaped without heap-moving
// its storage.
func heapMovedLocals(flow *funcFlow) []*addrCell {
	var out []*addrCell
	seen := make(map[types.Object]bool)
	addrs := append([]*addrCell(nil), flow.addrs...)
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].pos < addrs[j].pos })
	for _, ac := range addrs {
		if ac.cell.escaped && !seen[ac.base.obj] {
			seen[ac.base.obj] = true
			out = append(out, ac)
		}
	}
	return out
}

// allocVerdict decides one allocation site: "" when proven
// stack-allocatable, a diagnostic otherwise.
func allocVerdict(pass *analysis.Pass, site *allocSite) (string, *analysis.SuggestedFix) {
	c := site.cell
	where := func() string {
		if c.sinkPos.IsValid() {
			p := pass.Fset.Position(c.sinkPos)
			return fmt.Sprintf("%s at line %d", c.sink, p.Line)
		}
		return c.sink
	}
	switch site.kind {
	case allocMakeMap, allocMapLit:
		return fmt.Sprintf("alloc: %s in a hotpath kernel is not provably allocation-free "+
			"(map storage is heap-allocated); hoist it into reusable scratch state", site.kind), nil
	case allocMakeChan:
		return "alloc: make(chan) in a hotpath kernel allocates; channels belong to setup, not the per-call path", nil
	case allocClosure:
		if !c.escaped {
			return "", nil // non-escaping closures are stack-allocated
		}
		msg := fmt.Sprintf("alloc: closure escapes (%s) and heap-allocates per call", where())
		if len(site.captures) > 0 {
			names := make([]string, 0, len(site.captures))
			for _, o := range site.captures {
				names = append(names, o.Name())
			}
			sort.Strings(names)
			msg += fmt.Sprintf("; it captures %s by reference", strings.Join(names, ", "))
		}
		return msg, nil
	case allocMakeSlice, allocSliceLit:
		if c.escaped {
			return fmt.Sprintf("alloc: %s escapes (%s) and heap-allocates per call", site.kind, where()), nil
		}
		if site.constLen < 0 {
			return fmt.Sprintf("alloc: %s has a non-constant size, so it heap-allocates "+
				"even though it does not escape; use a fixed-size or reusable buffer", site.kind), nil
		}
		if size := siteByteSize(pass, site); size > maxStackAlloc {
			return fmt.Sprintf("alloc: %s is %d bytes, past the %d-byte stack-allocation bound",
				site.kind, size, maxStackAlloc), nil
		}
		return "", nil
	case allocNew, allocPtrLit:
		if c.escaped {
			return fmt.Sprintf("alloc: %s escapes (%s) and heap-allocates per call", site.kind, where()), nil
		}
		if size := siteByteSize(pass, site); size > maxStackAlloc {
			return fmt.Sprintf("alloc: %s is %d bytes, past the %d-byte stack-allocation bound",
				site.kind, size, maxStackAlloc), nil
		}
		return "", nil
	}
	return "", nil
}

// siteByteSize computes the byte size a site would occupy on the
// stack: element size × constant length for slices, pointee size for
// new/&T{}.
func siteByteSize(pass *analysis.Pass, site *allocSite) int64 {
	e, ok := site.node.(ast.Expr)
	if !ok {
		return 0
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return 0
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if site.constLen < 0 {
			return 0
		}
		return pass.TypesSizes.Sizeof(u.Elem()) * site.constLen
	case *types.Pointer:
		return pass.TypesSizes.Sizeof(u.Elem())
	}
	return pass.TypesSizes.Sizeof(t)
}
