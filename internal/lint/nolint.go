package lint

import (
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// NolintAnalyzer audits the escape hatches: every //nolint:elsa...
// comment must name analyzers that exist and carry a reason after "//"
// or "--". A suppression without a reason does not suppress (the other
// analyzers ignore it) *and* is flagged here, so the only way to silence
// elsavet is to write down why.
var NolintAnalyzer = &analysis.Analyzer{
	Name: "elsanolint",
	Doc:  "report //nolint:elsa* comments that lack a reason or name unknown analyzers",
	Run:  runNolint,
}

func runNolint(pass *analysis.Pass) (interface{}, error) {
	known := analyzerNames()
	valid := make([]string, 0, len(known))
	for name := range known {
		valid = append(valid, name)
	}
	sort.Strings(valid)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				e, ok := parseNolint(c.Text)
				if !ok {
					continue
				}
				elsaTargeted := false
				for _, name := range e.names {
					if known[name] {
						elsaTargeted = true
					}
					if strings.HasPrefix(name, "elsa") && !known[name] {
						pass.Reportf(c.Pos(), "nolint: unknown analyzer %q (valid: %s)", name, strings.Join(valid, ", "))
					}
				}
				if elsaTargeted && e.reason == "" {
					pass.Reportf(c.Pos(), "nolint: suppression of an elsa analyzer requires a reason (//nolint:name // why it is safe)")
				}
				if len(e.names) == 0 {
					pass.Reportf(c.Pos(), "nolint: directive names no analyzers")
				}
			}
		}
	}
	return nil, nil
}
