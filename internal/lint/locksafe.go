package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// LockSafeAnalyzer flags the three concurrency mistakes that bit (or
// nearly bit) the parallel training and streaming stages:
//
//  1. locks copied by value — a copied sync.Mutex/WaitGroup guards
//     nothing; flagged on parameters, receivers, assignments and range
//     variables;
//  2. WaitGroup.Add called inside the goroutine it accounts for — the
//     classic Wait-before-Add race; Add must happen before `go`;
//  3. goroutines launched from a cancellable (ctx-taking) function with
//     neither a ctx reference nor a WaitGroup join in their body — the
//     leak Run's "all stage goroutines are joined" contract forbids.
//
// Check 3 is the syntactic pre-pass of elsachan's goroutine-leak
// analysis, the way elsahotpath screens for elsaalloc: elsachan models
// the channel cells the goroutine blocks on, and honors
// //nolint:elsalocksafe suppressions as its own (one contract, two
// depths).
var LockSafeAnalyzer = &analysis.Analyzer{
	Name: "elsalocksafe",
	Doc: "report locks copied by value, WaitGroup.Add inside the goroutine it guards, and goroutines " +
		"in cancellable functions with no cancellation or join path",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runLockSafe,
}

func runLockSafe(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		checkLockParams(pass, rep, fn)
		if fn.Body == nil {
			return
		}
		checkLockCopies(pass, rep, fn.Body)
		checkGoroutines(pass, rep, fn)
	})
	return nil, nil
}

// lockPath returns the dotted path to the first lock type found inside
// t (itself, a field, an array element), or "" when t carries no lock.
// Pointers stop the search: sharing a *sync.Mutex is the point.
func lockPath(t types.Type, depth int) string {
	if depth > 6 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return obj.Name()
			}
		}
		return lockPath(named.Underlying(), depth+1)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if p := lockPath(t.Field(i).Type(), depth+1); p != "" {
				return t.Field(i).Name() + "." + p
			}
		}
	case *types.Array:
		return lockPath(t.Elem(), depth+1)
	}
	return ""
}

// checkLockParams flags by-value parameters and receivers whose type
// contains a lock.
func checkLockParams(pass *analysis.Pass, rep *reporter, fn *ast.FuncDecl) {
	flagField := func(f *ast.Field, kind string) {
		t := pass.TypesInfo.TypeOf(f.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if p := lockPath(t, 0); p != "" {
			rep.reportf(f.Pos(), "locksafe: %s passes a lock by value (sync.%s via %s); use a pointer",
				kind, p[strings.LastIndexByte(p, '.')+1:], p)
		}
	}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			flagField(f, "receiver")
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			flagField(f, "parameter")
		}
	}
}

// checkLockCopies flags assignments and range clauses that copy a value
// whose type contains a lock. Composite literals and call results are
// fresh values, not copies of a live lock, so only copies of existing
// storage (identifiers, selectors, indexes, derefs) are flagged.
func checkLockCopies(pass *analysis.Pass, rep *reporter, body *ast.BlockStmt) {
	info := pass.TypesInfo
	copiesLiveLock := func(rhs ast.Expr) (string, bool) {
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			return "", false
		}
		t := info.TypeOf(rhs)
		if t == nil {
			return "", false
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return "", false
		}
		p := lockPath(t, 0)
		return p, p != ""
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if p, ok := copiesLiveLock(rhs); ok {
					rep.reportf(rhs.Pos(), "locksafe: assignment copies a lock (sync.%s via %s)",
						p[strings.LastIndexByte(p, '.')+1:], p)
				}
			}
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t == nil {
				return true
			}
			var elem types.Type
			switch u := t.Underlying().(type) {
			case *types.Slice:
				elem = u.Elem()
			case *types.Array:
				elem = u.Elem()
			case *types.Map:
				elem = u.Elem()
			}
			if elem == nil || n.Value == nil {
				return true
			}
			if _, isPtr := elem.Underlying().(*types.Pointer); isPtr {
				return true
			}
			if p := lockPath(elem, 0); p != "" {
				rep.reportf(n.Value.Pos(), "locksafe: range value copies a lock (sync.%s via %s); range over indexes or pointers",
					p[strings.LastIndexByte(p, '.')+1:], p)
			}
		}
		return true
	})
}

// checkGoroutines flags (a) wg.Add inside a go'd function literal when
// wg is captured from the enclosing scope, and (b) in ctx-taking
// functions, go'd literals whose body has no cancellation or join path.
func checkGoroutines(pass *analysis.Pass, rep *reporter, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	cancellable := hasCtxParam(info, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		hasJoin, hasCtx := false, false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
					obj, _ := info.Uses[sel.Sel].(*types.Func)
					if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
						recv := obj.Type().(*types.Signature).Recv()
						if recv != nil && strings.Contains(recv.Type().String(), "WaitGroup") {
							switch obj.Name() {
							case "Add":
								if declaredOutside(info, sel.X, lit) {
									rep.reportf(m.Pos(),
										"locksafe: WaitGroup.Add inside the goroutine it guards races Wait; call Add before the go statement")
								}
							case "Done":
								hasJoin = true
							}
						}
					}
				}
			case *ast.Ident:
				if isContextType(info.TypeOf(m)) {
					hasCtx = true
				}
			}
			return true
		})
		if cancellable && !hasJoin && !hasCtx {
			rep.reportf(g.Pos(),
				"locksafe: goroutine in a cancellable function has neither a ctx reference nor a WaitGroup join; it can leak past cancellation")
		}
		return true
	})
}

// declaredOutside reports whether the storage expr refers to was
// declared outside the function literal lit (i.e., captured).
func declaredOutside(info *types.Info, expr ast.Expr, lit *ast.FuncLit) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		// Selector like s.wg: the root is captured state or a parameter
		// either way; treat as outside.
		return true
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}
