package lint

// Mutation-style guard for the resume-equality property: elsasnapshot
// must reject a state field the moment it exists without a
// serialization path, not merely bless the current field set. The test
// builds a miniature session-state package modeled on
// internal/pipeline's sampler/SessionState pair, verifies it clean,
// then injects an unserialized field and demands a finding.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

const sessionFixtureTmpl = `package sess

//elsa:snapshot
type session struct {
	origin int64
	step   int64
	open   bool
%s}

type state struct {
	Origin int64 ` + "`json:\"origin\"`" + `
	Step   int64 ` + "`json:\"step\"`" + `
	Open   bool  ` + "`json:\"open\"`" + `
}

//elsa:snapshotter encode
func (s *session) snap() state {
	return state{Origin: s.origin, Step: s.step, Open: s.open}
}

//elsa:snapshotter decode
func resume(st state) *session {
	return &session{origin: st.Origin, step: st.Step, open: st.Open}
}
`

// loadSource writes src into a temp package dir and loads it with the
// fixture machinery.
func loadSource(t *testing.T, src string) *fixture {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "sess.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return loadFixture(t, dir)
}

func TestSnapshotMutationGuard(t *testing.T) {
	// Control: the unmutated session state is fully covered.
	clean := fmt.Sprintf(sessionFixtureTmpl, "")
	if diags := runAnalyzers(t, loadSource(t, clean), []*analysis.Analyzer{SnapshotAnalyzer}); len(diags) != 0 {
		t.Fatalf("control fixture should be clean, got: %v", diags)
	}

	// Mutant: one new mutable field, no serialization path.
	mutant := fmt.Sprintf(sessionFixtureTmpl, "\tlastTick int64\n")
	diags := runAnalyzers(t, loadSource(t, mutant), []*analysis.Analyzer{SnapshotAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("mutant should produce exactly one finding, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "lastTick") ||
		!strings.Contains(d.Message, "encode and decode snapshotter paths") {
		t.Fatalf("finding does not name the unserialized field: %s", d.Message)
	}
	// The mechanical escape hatch rides along as a suggested fix.
	if len(d.SuggestedFixes) == 0 || len(d.SuggestedFixes[0].TextEdits) == 0 {
		t.Fatalf("finding should carry an //elsa:ephemeral stub fix")
	}
	if txt := string(d.SuggestedFixes[0].TextEdits[0].NewText); !strings.Contains(txt, "//elsa:ephemeral") {
		t.Fatalf("fix should insert an //elsa:ephemeral stub, got %q", txt)
	}
}

// TestSnapshotStubStaysRed applies the suggested //elsa:ephemeral TODO
// stub to the mutant and asserts the analyzer still reports: the
// mechanical autofix must never green a genuine resume-equality hole,
// only convert it into an explicit, still-failing TODO.
func TestSnapshotStubStaysRed(t *testing.T) {
	stubbed := fmt.Sprintf(sessionFixtureTmpl,
		"\t//elsa:ephemeral TODO: why is dropping this on resume safe?\n\tlastTick int64\n")
	diags := runAnalyzers(t, loadSource(t, stubbed), []*analysis.Analyzer{SnapshotAnalyzer})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "TODO stub") {
		t.Fatalf("TODO-stubbed field must stay red, got: %v", diags)
	}
}

// TestSnapshotMutationPartial drops only the decode side: the finding
// must say which half of the path is missing.
func TestSnapshotMutationPartial(t *testing.T) {
	src := fmt.Sprintf(sessionFixtureTmpl, "")
	src = strings.Replace(src, "origin: st.Origin, ", "", 1)
	diags := runAnalyzers(t, loadSource(t, src), []*analysis.Analyzer{SnapshotAnalyzer})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "the decode snapshotter path") {
		t.Fatalf("want one decode-side finding, got: %v", diags)
	}
}
