// Package lint is elsavet: a suite of go/analysis analyzers that turn the
// pipeline's hardest-won properties — zero-allocation hot kernels,
// bit-identical parallel training, cancellable streaming stages, sound
// lock usage — into compile-time contracts instead of benchmark
// aspirations.
//
// The suite ships thirteen analyzers:
//
//   - elsahotpath: a fast syntactic pre-pass over //elsa:hotpath
//     functions for constructs that always cost an allocation (append
//     growth, fmt formatting, goroutine launches, implicit interface
//     conversions, string<->[]byte conversions).
//   - elsaalloc: the dataflow layer of the same contract — make, new,
//     composite literals and closures in //elsa:hotpath kernels are
//     proven stack-allocatable (non-escaping, constant size) or
//     reported with their concrete escape path; proven functions
//     export an AllocFreeFact.
//   - elsadeterminism: the training packages (sig, gradual, correlate,
//     predict) must not read wall clocks, use the global math/rand
//     source, or let map iteration order escape into ordered output
//     without a sort.
//   - elsactxflow: in any function that takes a context.Context, every
//     blocking channel operation must live in a select that also waits
//     on ctx.Done() (or have a default case); bare sends, bare
//     receives and channel ranges are flagged.
//   - elsalocksafe: flags locks copied by value (params, receivers,
//     assignments, range copies), WaitGroup.Add called inside the
//     goroutine it guards, and goroutines launched from cancellable
//     functions with neither a cancellation nor a join path (the
//     syntactic pre-pass of elsachan's leak analysis).
//   - elsachan: models every channel as a cell with send/recv/close
//     edges — through goroutine closures and struct fields — and flags
//     double-close, close-by-non-owner (ownership = creating scope or
//     an //elsa:chanowner annotation), sends reachable after a close,
//     and goroutines whose only exit is a blocking channel op with no
//     guaranteed counterpart and no ctx.Done() select.
//   - elsalockorder: builds the interprocedural lock-acquisition graph
//     (locks held at each acquire, propagated through calls via
//     LockOrderFact/LockGraphFact) and reports any cycle as a
//     potential deadlock with the full acquisition chain.
//   - elsaerrflow: in the serving-path packages (pipeline, ingest,
//     resilience) every err != nil branch must account for the error —
//     return it, quarantine it, or increment a stats counter.
//   - elsasnapshot: the resume-equality guard — every field of a
//     struct marked //elsa:snapshot must be handled by the
//     //elsa:snapshotter encode AND decode paths or annotated
//     //elsa:ephemeral with a reason, and every struct reachable from
//     an //elsa:snapshot-envelope root must not silently drop state
//     through unexported (encoding/json-invisible) fields.
//   - elsaatomic: a field accessed through sync/atomic anywhere in a
//     package (or, via facts, in any importing package) must never
//     also be accessed with plain loads or stores.
//   - elsastate: annotation-declared typestate protocols
//     (//elsa:state on a type, //elsa:transition and //elsa:requires
//     on its methods) verified by a may-state abstract interpreter —
//     no Feed after Close, snapshot-before-retire, breaker state
//     discipline — composing across packages through StateFacts.
//   - elsadetflow: the taint layer of the determinism contract —
//     wall-clock, global-rand and iteration/arrival-order values are
//     tracked through the serving path and reported only where they
//     reach prediction output, snapshot/journal bytes or exported
//     stats; //elsa:nondet-ok <reason> is the audited escape hatch.
//   - elsanolint: audits the //nolint:elsa... escape hatches themselves
//     — every suppression must name known analyzers and carry a reason.
//
// Suppression: a finding is silenced by a //nolint:<name> comment on the
// finding's line or the line above, where <name> is the analyzer name or
// the blanket "elsa". A reason is mandatory, introduced by "//" or "--":
//
//	//nolint:elsahotpath // grows once, then reused across all pairs
//
// elsanolint rejects reasonless or unknown-name suppressions, so the
// escape hatch cannot silently rot.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers is the full elsavet suite, in stable order.
var Analyzers = []*analysis.Analyzer{
	HotPathAnalyzer,
	AllocAnalyzer,
	DeterminismAnalyzer,
	CtxFlowAnalyzer,
	LockSafeAnalyzer,
	ChanAnalyzer,
	LockOrderAnalyzer,
	ErrFlowAnalyzer,
	SnapshotAnalyzer,
	AtomicAnalyzer,
	StateAnalyzer,
	DetFlowAnalyzer,
	NolintAnalyzer,
}

// analyzerNames returns the set of valid //nolint targets. Spelled as a
// literal (not derived from Analyzers) to avoid an initialization cycle
// through NolintAnalyzer.
func analyzerNames() map[string]bool {
	return map[string]bool{
		"elsa":            true,
		"elsahotpath":     true,
		"elsaalloc":       true,
		"elsadeterminism": true,
		"elsactxflow":     true,
		"elsalocksafe":    true,
		"elsachan":        true,
		"elsalockorder":   true,
		"elsaerrflow":     true,
		"elsasnapshot":    true,
		"elsaatomic":      true,
		"elsastate":       true,
		"elsadetflow":     true,
		"elsanolint":      true,
	}
}

// hotPathDirective is the annotation marking a function as a verified
// allocation-free kernel.
const hotPathDirective = "//elsa:hotpath"

// isHotPath reports whether fn carries the //elsa:hotpath directive in
// its doc comment.
func isHotPath(fn *ast.FuncDecl) bool {
	return hasDirective(fn.Doc, hotPathDirective)
}

// hasDirective reports whether a comment group carries the given
// //elsa:... directive, matched as a whole word so //elsa:snapshot
// does not match //elsa:snapshot-envelope.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	_, ok := directiveArg(cg, directive)
	return ok
}

// directiveArg returns the text following a directive comment (""
// when the directive stands alone) and whether the directive appears.
func directiveArg(cg *ast.CommentGroup, directive string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if c.Text == directive {
			return "", true
		}
		if strings.HasPrefix(c.Text, directive+" ") {
			return strings.TrimSpace(c.Text[len(directive)+1:]), true
		}
	}
	return "", false
}

// nolintEntry is one parsed //nolint comment.
type nolintEntry struct {
	names  []string // analyzer names listed after the colon
	reason string   // text after the "//" or "--" separator, trimmed
	pos    token.Pos
}

// parseNolint decodes a "//nolint:..." comment, returning ok=false for
// comments that are not nolint directives at all.
func parseNolint(text string) (e nolintEntry, ok bool) {
	const prefix = "//nolint:"
	if !strings.HasPrefix(text, prefix) {
		return e, false
	}
	body := text[len(prefix):]
	// The reason is introduced by a second "//" or a "--".
	if i := strings.Index(body, "//"); i >= 0 {
		e.reason = strings.TrimSpace(body[i+2:])
		body = body[:i]
	} else if i := strings.Index(body, "--"); i >= 0 {
		e.reason = strings.TrimSpace(body[i+2:])
		body = body[:i]
	}
	for _, n := range strings.Split(body, ",") {
		if n = strings.TrimSpace(n); n != "" {
			e.names = append(e.names, n)
		}
	}
	return e, true
}

// suppressor indexes every //nolint comment of the pass by file line. An
// entry on line L suppresses findings on L (inline trailing comment) and
// L+1 (standalone comment above the statement).
type suppressor struct {
	fset    *token.FileSet
	entries map[string]map[int][]nolintEntry // filename -> line -> entries
	aliases []string                         // extra analyzer names accepted as suppressing this pass
}

func newSuppressor(pass *analysis.Pass) *suppressor {
	s := &suppressor{fset: pass.Fset, entries: make(map[string]map[int][]nolintEntry)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				e, ok := parseNolint(c.Text)
				if !ok {
					continue
				}
				e.pos = c.Pos()
				p := pass.Fset.Position(c.Pos())
				byLine := s.entries[p.Filename]
				if byLine == nil {
					byLine = make(map[int][]nolintEntry)
					s.entries[p.Filename] = byLine
				}
				byLine[p.Line] = append(byLine[p.Line], e)
			}
		}
	}
	return s
}

// suppressed reports whether a finding of analyzer name at pos is
// covered by a well-formed nolint entry. Reasonless entries never
// suppress: elsanolint flags them and the original finding stays live.
func (s *suppressor) suppressed(name string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	byLine := s.entries[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, e := range byLine[line] {
			if e.reason == "" {
				continue
			}
			for _, n := range e.names {
				if n == name || n == "elsa" {
					return true
				}
				for _, a := range s.aliases {
					if n == a {
						return true
					}
				}
			}
		}
	}
	return false
}

// reporter wraps pass.Reportf with nolint suppression for the pass's own
// analyzer name.
type reporter struct {
	pass *analysis.Pass
	sup  *suppressor
}

func newReporter(pass *analysis.Pass) *reporter {
	return &reporter{pass: pass, sup: newSuppressor(pass)}
}

func (r *reporter) reportf(pos token.Pos, format string, args ...interface{}) {
	if r.sup.suppressed(r.pass.Analyzer.Name, pos) {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// report is reportf for a fully built diagnostic (used when the
// finding carries SuggestedFixes).
func (r *reporter) report(d analysis.Diagnostic) {
	if r.sup.suppressed(r.pass.Analyzer.Name, d.Pos) {
		return
	}
	r.pass.Report(d)
}

// inTestFile reports whether pos lands in a _test.go file.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// rootString renders the static "path" of an expression (identifiers,
// selectors, indexes stripped of their index) so two mentions of the
// same storage compare equal: `s.out[i]` and `s.out[j]` both render
// "s.out". Unrenderable expressions return "".
func rootString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := rootString(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		return rootString(e.X)
	case *ast.SliceExpr:
		return rootString(e.X)
	case *ast.StarExpr:
		return rootString(e.X)
	case *ast.ParenExpr:
		return rootString(e.X)
	}
	return ""
}
