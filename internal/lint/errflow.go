package lint

// errflow.go enforces the quarantine-and-continue contract on the
// serving path: a malformed record must never vanish. In the scoped
// packages (pipeline, ingest, resilience) every `err != nil` branch
// must account for the error one of three ways — return it to the
// caller, quarantine the offending input, or increment a stats
// counter — so an operator can always reconstruct how many inputs were
// dropped and why. A branch that merely `continue`s past the error is
// exactly how a parser regression turns into a silently shrinking
// training set.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ErrFlowAnalyzer reports err != nil branches that discard the error.
var ErrFlowAnalyzer = &analysis.Analyzer{
	Name: "elsaerrflow",
	Doc: "in the serving-path packages, every err != nil branch must account for the error: " +
		"return it, quarantine it, or increment a stats counter",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runErrFlow,
}

// errFlowPackages scopes the contract to the packages where a dropped
// error silently corrupts the served model.
var errFlowPackages = "pipeline,ingest,resilience"

func init() {
	ErrFlowAnalyzer.Flags.StringVar(&errFlowPackages, "packages", errFlowPackages,
		"comma-separated package names the error-accounting contract covers")
}

// errAccountingNames are method/function names whose call in an error
// branch counts as accounting: stats counters and quarantine sinks.
var errAccountingNames = map[string]bool{
	"Add": true, "Inc": true, "Count": true, "Store": true,
	"Record": true, "Observe": true, "Mark": true,
}

func runErrFlow(pass *analysis.Pass) (interface{}, error) {
	scoped := false
	for _, p := range strings.Split(errFlowPackages, ",") {
		if strings.TrimSpace(p) == pass.Pkg.Name() {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || inTestFile(pass.Fset, fn.Pos()) {
			return
		}
		ast.Inspect(fn.Body, func(m ast.Node) bool {
			ifs, ok := m.(*ast.IfStmt)
			if !ok {
				return true
			}
			errExpr := errNeqNilOperand(pass.TypesInfo, ifs.Cond)
			if errExpr == nil {
				return true
			}
			// A stored error (s.err != nil) was accounted when it was
			// stashed; re-checking it is state inspection, not handling.
			if _, isIdent := ast.Unparen(errExpr).(*ast.Ident); !isIdent {
				return true
			}
			if errBranchAccounts(pass.TypesInfo, ifs.Body, errExpr, fn) {
				return true
			}
			rep.reportf(ifs.Pos(), "errflow: %s != nil branch neither returns, quarantines, nor counts the error; "+
				"the serving path must account for every error", errDisplay(errExpr))
			return true
		})
	})
	return nil, nil
}

// errNeqNilOperand digs through a condition (including composites like
// `!ok || err != nil`) for an `X != nil` comparison whose X has error
// type, returning X.
func errNeqNilOperand(info *types.Info, cond ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(cond, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.NEQ {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
			x, y := ast.Unparen(pair[0]), ast.Unparen(pair[1])
			if id, ok := y.(*ast.Ident); !ok || id.Name != "nil" {
				continue
			}
			if t := info.TypeOf(x); t != nil && isErrorType(t) {
				found = x
				return false
			}
		}
		return true
	})
	return found
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil // the universe error type
}

// errBranchAccounts decides whether an error branch accounts for the
// error: it mentions the error value again (returning, wrapping,
// stashing or logging it), increments something, panics, calls a
// counter/quarantine sink, or is a bare return with the error bound to
// a named result.
func errBranchAccounts(info *types.Info, body *ast.BlockStmt, errExpr ast.Expr, fn *ast.FuncDecl) bool {
	errObj := errObjOf(info, errExpr)
	errRoot := rootString(errExpr)
	accounts := false
	ast.Inspect(body, func(n ast.Node) bool {
		if accounts {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if errObj != nil && info.Uses[n] == errObj {
				accounts = true
			}
		case *ast.SelectorExpr:
			if errRoot != "" && rootString(n) == errRoot {
				accounts = true
				return false
			}
			return true
		case *ast.IncDecStmt:
			accounts = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					accounts = true
				}
			case *ast.SelectorExpr:
				if callAccountsForError(fun.Sel.Name) {
					accounts = true
				}
			}
			return true
		case *ast.ReturnStmt:
			if len(n.Results) == 0 && errNamedResult(info, errObj, fn) {
				accounts = true
			}
			// Returning any non-nil error value accounts: the branch
			// translated the failure into a classified error the caller
			// must handle (return errFrameTorn for a short read).
			for _, res := range n.Results {
				res = ast.Unparen(res)
				if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
					continue
				}
				if t := info.TypeOf(res); t != nil && isErrorType(t) {
					accounts = true
				}
			}
			return true
		}
		return !accounts
	})
	return accounts
}

// callAccountsForError matches counter and quarantine sink names.
func callAccountsForError(name string) bool {
	if errAccountingNames[name] {
		return true
	}
	return strings.Contains(name, "uarantine") || strings.Contains(name, "esync")
}

// errNamedResult reports whether the error object is one of the
// enclosing function's named results, so a bare return propagates it.
func errNamedResult(info *types.Info, errObj types.Object, fn *ast.FuncDecl) bool {
	if errObj == nil || fn.Type.Results == nil {
		return false
	}
	for _, f := range fn.Type.Results.List {
		for _, name := range f.Names {
			if info.Defs[name] == errObj {
				return true
			}
		}
	}
	return false
}

func errObjOf(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return objOf(info, id)
	}
	return nil
}

func errDisplay(e ast.Expr) string {
	if s := rootString(e); s != "" {
		return s
	}
	return "err"
}
