package lint

// detflow.go is the taint layer of the determinism contract.
// elsadeterminism is its syntactic pre-pass (the elsahotpath→elsaalloc
// pattern): inside the training packages it bans every wall-clock
// read, global-rand call and unsorted map-order escape outright,
// because the trained model must be bit-identical across runs.
// elsadetflow covers the wider serving surface — pipeline, fleet,
// ingest and the root package — where nondeterminism is only a bug
// when it *reaches replayed output*: predictions, snapshot/journal
// bytes, or exported stats. It tracks taint from four source families:
//
//   - wall clock: time.Now / time.Since / time.Until
//   - global randomness: package-level math/rand functions
//   - map iteration order: slices appended under a range-over-map and
//     never sorted in the function
//   - arrival/completion order: slices appended inside multi-case
//     select arms or inside go'd closures writing to outer slices
//
// forward through assignments, and reports only when a tainted value
// hits a sink:
//
//   - the return value of an exported function or method
//   - an encoding/json, encoding/gob or encoding/binary call
//     (snapshot and journal bytes)
//   - a field store into an //elsa:snapshot struct
//
// The escape hatch is //elsa:nondet-ok <reason> on the source or sink
// line (or the line above): operational telemetry that is allowed to
// be wall-clock-stamped carries its justification in the code, and a
// reasonless escape is itself a finding, exactly like a reasonless
// //nolint. A //nolint:elsadeterminism suppression also covers this
// analyzer — one contract, two depths, one suppression.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const nondetOkDirective = "//elsa:nondet-ok"

// DetFlowAnalyzer reports nondeterminism that reaches replayed output.
var DetFlowAnalyzer = &analysis.Analyzer{
	Name: "elsadetflow",
	Doc: "track wall-clock, global-rand and iteration/arrival-order taint through the " +
		"serving path and report it only where it reaches prediction output, snapshot or " +
		"journal bytes, or exported stats",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetFlow,
}

// detFlowPackages scopes the taint analysis to the packages whose
// output is replayed or persisted. The training packages are included
// for defence in depth: elsadeterminism bans the sources there
// outright, so anything detflow finds in them is already covered.
var detFlowPackages = "sig,gradual,correlate,predict,pipeline,fleet,ingest,elsa"

func init() {
	DetFlowAnalyzer.Flags.StringVar(&detFlowPackages, "packages", detFlowPackages,
		"comma-separated package names the determinism taint analysis covers")
}

// taintInfo records why a storage path is nondeterministic.
type taintInfo struct {
	kind string    // human description of the source
	pos  token.Pos // the source site
}

func runDetFlow(pass *analysis.Pass) (interface{}, error) {
	scoped := false
	for _, p := range strings.Split(detFlowPackages, ",") {
		if strings.TrimSpace(p) == pass.Pkg.Name() {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil, nil
	}
	rep := newReporter(pass)
	// elsadeterminism is the syntactic pre-pass of this contract: its
	// suppressions carry over.
	rep.sup.aliases = []string{DeterminismAnalyzer.Name}

	df := &detFlow{
		pass:      pass,
		rep:       rep,
		okLines:   nondetOkIndex(pass, rep),
		snapTypes: snapshotAnnotatedTypes(pass),
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || inTestFile(pass.Fset, fn.Pos()) {
			return
		}
		df.checkFunc(fn)
	})
	return nil, nil
}

// nondetOkIndex collects every reasoned //elsa:nondet-ok by file line.
// Reasonless directives are flagged and do not suppress — the escape
// hatch must document why the nondeterminism is acceptable.
func nondetOkIndex(pass *analysis.Pass, rep *reporter) map[string]map[int]bool {
	idx := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				arg, ok := directiveText(c.Text, nondetOkDirective)
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if strings.TrimSpace(arg) == "" {
					if !inTestFile(pass.Fset, c.Pos()) {
						rep.reportf(c.Pos(), "detflow: //elsa:nondet-ok needs a reason; an undocumented escape hatch cannot be audited")
					}
					continue
				}
				byLine := idx[p.Filename]
				if byLine == nil {
					byLine = make(map[int]bool)
					idx[p.Filename] = byLine
				}
				byLine[p.Line] = true
			}
		}
	}
	return idx
}

// snapshotAnnotatedTypes collects the package's //elsa:snapshot struct
// type names: stores into their fields persist across resume, so
// tainted stores there are sinks.
func snapshotAnnotatedTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !hasDirective(doc, snapshotDirective) {
					continue
				}
				if obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// detFlow is the per-pass state.
type detFlow struct {
	pass      *analysis.Pass
	rep       *reporter
	okLines   map[string]map[int]bool
	snapTypes map[*types.TypeName]bool
}

// okAt reports whether a reasoned //elsa:nondet-ok covers pos (its
// line or the line above, the nolint convention).
func (df *detFlow) okAt(pos token.Pos) bool {
	p := df.pass.Fset.Position(pos)
	byLine := df.okLines[p.Filename]
	return byLine != nil && (byLine[p.Line] || byLine[p.Line-1])
}

// reportSink emits one finding unless the source or sink carries a
// reasoned escape.
func (df *detFlow) reportSink(sinkPos token.Pos, t taintInfo, sink string) {
	if df.okAt(sinkPos) || df.okAt(t.pos) {
		return
	}
	df.rep.reportf(sinkPos, "detflow: %s (line %d) reaches %s; replayed output must be deterministic (sort/inject a seam, or //elsa:nondet-ok <reason>)",
		t.kind, df.pass.Fset.Position(t.pos).Line, sink)
}

// checkFunc runs the taint analysis over one function.
func (df *detFlow) checkFunc(fn *ast.FuncDecl) {
	sorted := df.sortedRoots(fn)
	taints := make(map[string]taintInfo)

	df.seedOrderTaints(fn, taints, sorted)
	// Forward value propagation through assignments; two passes so a
	// later-defined helper value feeding an earlier loop converges.
	for i := 0; i < 2; i++ {
		df.propagate(fn, taints)
	}
	df.checkReturns(fn, taints)
	df.checkCalls(fn, taints)
	df.checkSnapshotStores(fn, taints)
}

// sortedRoots is every storage path handed to a sort call anywhere in
// the function (the determinism pre-pass convention: an explicit sort
// re-establishes order determinism).
func (df *detFlow) sortedRoots(fn *ast.FuncDecl) map[string]bool {
	info := df.pass.TypesInfo
	sorted := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isSort := false
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "sort", "slices":
					isSort = true
				default:
					isSort = strings.Contains(obj.Name(), "Sort")
				}
			}
		case *ast.Ident:
			isSort = strings.Contains(fun.Name, "Sort") || strings.Contains(fun.Name, "sort")
		}
		if isSort {
			for _, arg := range call.Args {
				if r := rootString(arg); r != "" {
					sorted[r] = true
				}
			}
		}
		return true
	})
	return sorted
}

// sourceTaint classifies a call as a nondeterminism source.
func (df *detFlow) sourceTaint(call *ast.CallExpr) (taintInfo, bool) {
	var obj *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj, _ = df.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	case *ast.Ident:
		obj, _ = df.pass.TypesInfo.Uses[fun].(*types.Func)
	}
	if obj == nil || obj.Pkg() == nil || obj.Type().(*types.Signature).Recv() != nil {
		return taintInfo{}, false
	}
	switch obj.Pkg().Path() {
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			return taintInfo{kind: "wall-clock value from time." + obj.Name(), pos: call.Pos()}, true
		}
	case "math/rand", "math/rand/v2":
		switch obj.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Constructors over explicit seeds are deterministic.
		default:
			return taintInfo{kind: "global-rand value from " + obj.Pkg().Name() + "." + obj.Name(), pos: call.Pos()}, true
		}
	}
	return taintInfo{}, false
}

// taintOf reports the taint an expression carries: a direct source
// call, or any mention of a tainted storage path (prefix matching in
// both directions: a tainted field taints its container and vice
// versa).
func (df *detFlow) taintOf(e ast.Expr, taints map[string]taintInfo) (taintInfo, bool) {
	var found taintInfo
	ok := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure value is not itself tainted
		case *ast.CallExpr:
			if t, is := df.sourceTaint(n); is {
				found, ok = t, true
				return false
			}
		case *ast.Ident, *ast.SelectorExpr:
			path := rootString(n.(ast.Expr))
			if path == "" {
				return true
			}
			if t, is := lookupTaint(taints, path); is {
				found, ok = t, true
				return false
			}
			// Only descend into selector bases when the full path missed,
			// and idents need no descent.
			if _, isSel := n.(*ast.SelectorExpr); isSel {
				return false
			}
		}
		return true
	})
	return found, ok
}

// lookupTaint matches path against the taint map with bidirectional
// prefix semantics on dotted storage paths.
func lookupTaint(taints map[string]taintInfo, path string) (taintInfo, bool) {
	if t, ok := taints[path]; ok {
		return t, true
	}
	for p, t := range taints {
		if strings.HasPrefix(p, path+".") || strings.HasPrefix(path, p+".") {
			return t, true
		}
	}
	return taintInfo{}, false
}

// propagate walks every assignment, tainting LHS roots whose RHS
// carries taint.
func (df *detFlow) propagate(fn *ast.FuncDecl, taints map[string]taintInfo) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				root := rootString(l)
				if root == "" {
					continue
				}
				if t, ok := df.taintOf(rhs, taints); ok {
					if _, have := taints[root]; !have {
						taints[root] = t
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == len(n.Names) {
				for i, name := range n.Names {
					if t, ok := df.taintOf(n.Values[i], taints); ok {
						if _, have := taints[name.Name]; !have {
							taints[name.Name] = t
						}
					}
				}
			}
		}
		return true
	})
}

// seedOrderTaints marks slices whose element order depends on map
// iteration, select arrival, or goroutine completion.
func (df *detFlow) seedOrderTaints(fn *ast.FuncDecl, taints map[string]taintInfo, sorted map[string]bool) {
	info := df.pass.TypesInfo
	seed := func(target string, kind string, pos token.Pos) {
		if target == "" || sorted[target] {
			return
		}
		if _, have := taints[target]; !have {
			taints[target] = taintInfo{kind: kind, pos: pos}
		}
	}
	appendTargets := func(body ast.Node, visit func(asg *ast.AssignStmt, target string)) {
		ast.Inspect(body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok || len(asg.Rhs) != 1 {
				return true
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			// Appending to a map element keyed by the loop key is
			// order-insensitive grouping, not ordered output.
			if ix, ok := asg.Lhs[0].(*ast.IndexExpr); ok {
				if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
					return true
				}
			}
			visit(asg, rootString(asg.Lhs[0]))
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if _, isMap := info.TypeOf(n.X).Underlying().(*types.Map); isMap {
				appendTargets(n.Body, func(asg *ast.AssignStmt, target string) {
					seed(target, "map-iteration-ordered elements", asg.Pos())
				})
			}
		case *ast.SelectStmt:
			comms := 0
			for _, c := range n.Body.List {
				if cc := c.(*ast.CommClause); cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				for _, c := range n.Body.List {
					appendTargets(c, func(asg *ast.AssignStmt, target string) {
						seed(target, "select-arrival-ordered elements", asg.Pos())
					})
				}
			}
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				appendTargets(lit.Body, func(asg *ast.AssignStmt, target string) {
					if df.declaredOutside(asg.Lhs[0], lit) {
						seed(target, "goroutine-completion-ordered elements", asg.Pos())
					}
				})
			}
		}
		return true
	})
}

// declaredOutside reports whether the base identifier of an lvalue is
// declared outside the closure — the shared-slice append whose final
// order is a scheduling artifact.
func (df *detFlow) declaredOutside(e ast.Expr, lit *ast.FuncLit) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			obj := objOf(df.pass.TypesInfo, x)
			return obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End())
		default:
			return false
		}
	}
}

// checkReturns flags tainted values returned from exported functions.
func (df *detFlow) checkReturns(fn *ast.FuncDecl, taints map[string]taintInfo) {
	if !fn.Name.IsExported() {
		return
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // nested closures return to their own caller
			case *ast.ReturnStmt:
				for _, r := range m.Results {
					if t, ok := df.taintOf(r, taints); ok {
						df.reportSink(m.Pos(), t, "the return value of exported "+fn.Name.Name)
						break
					}
				}
			}
			return true
		})
	}
	walk(fn.Body)
}

// encodingSinkPkgs are the packages whose calls produce the bytes that
// land in snapshots, journals and wire output.
var encodingSinkPkgs = map[string]bool{
	"encoding/json":   true,
	"encoding/gob":    true,
	"encoding/binary": true,
}

// checkCalls flags tainted arguments to serialization calls.
func (df *detFlow) checkCalls(fn *ast.FuncDecl, taints map[string]taintInfo) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := df.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || !encodingSinkPkgs[obj.Pkg().Path()] {
			return true
		}
		for _, arg := range call.Args {
			if t, ok := df.taintOf(arg, taints); ok {
				df.reportSink(call.Pos(), t, "serialized bytes via "+obj.Pkg().Name()+"."+obj.Name())
				break
			}
		}
		return true
	})
}

// checkSnapshotStores flags tainted stores into //elsa:snapshot struct
// fields — state that persists across resume must be replayable.
func (df *detFlow) checkSnapshotStores(fn *ast.FuncDecl, taints map[string]taintInfo) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, l := range asg.Lhs {
			sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			t := df.pass.TypesInfo.TypeOf(sel.X)
			if t == nil {
				continue
			}
			for {
				if ptr, isPtr := t.(*types.Pointer); isPtr {
					t = ptr.Elem()
					continue
				}
				break
			}
			named, ok := t.(*types.Named)
			if !ok || !df.snapTypes[named.Obj()] {
				continue
			}
			var rhs ast.Expr
			if len(asg.Rhs) == len(asg.Lhs) {
				rhs = asg.Rhs[i]
			} else if len(asg.Rhs) == 1 {
				rhs = asg.Rhs[0]
			}
			if rhs == nil {
				continue
			}
			if ti, tainted := df.taintOf(rhs, taints); tainted {
				df.reportSink(asg.Pos(), ti, "//elsa:snapshot state "+named.Obj().Name()+"."+sel.Sel.Name)
			}
		}
		return true
	})
}
