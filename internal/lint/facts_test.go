package lint

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// TestFactsGobRoundTrip proves every declared fact type survives the
// gob serialization the unitchecker uses to ship facts between
// packages under go vet -vettool. A fact that cannot round-trip would
// silently break cross-package analysis.
func TestFactsGobRoundTrip(t *testing.T) {
	for _, a := range Analyzers {
		for _, fact := range a.FactTypes {
			// FactTypes holds typed nil pointers; encode a fresh value.
			in := reflect.New(reflect.TypeOf(fact).Elem())
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).EncodeValue(in); err != nil {
				t.Errorf("%s: fact %T does not gob-encode: %v", a.Name, fact, err)
				continue
			}
			out := reflect.New(reflect.TypeOf(fact).Elem())
			if err := gob.NewDecoder(&buf).DecodeValue(out); err != nil {
				t.Errorf("%s: fact %T does not gob-decode: %v", a.Name, fact, err)
			}
		}
	}

	// A fact with payload keeps it across the trip.
	in := &EphemeralFact{Reason: "derived cache"}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out EphemeralFact
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Reason != in.Reason {
		t.Fatalf("EphemeralFact reason lost in transit: %q != %q", out.Reason, in.Reason)
	}

	// The lock-order summary carries slices of structs; prove the whole
	// payload survives, not just the envelope.
	lf := &LockOrderFact{
		Acquires: []string{"a/b.T.mu", "a/b.pkgMu"},
		Edges: []LockEdge{
			{From: "a/b.T.mu", To: "a/b.pkgMu", Via: "b.flush"},
			{From: "a/b.pkgMu", To: "c/d.S.mu", Via: "b.flush -> d.Assign"},
		},
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(lf); err != nil {
		t.Fatal(err)
	}
	var lout LockOrderFact
	if err := gob.NewDecoder(&buf).Decode(&lout); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*lf, lout) {
		t.Fatalf("LockOrderFact mangled in transit: %+v != %+v", lout, *lf)
	}

	// And the package-level merged graph.
	gf := &LockGraphFact{Edges: lf.Edges}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(gf); err != nil {
		t.Fatal(err)
	}
	var gout LockGraphFact
	if err := gob.NewDecoder(&buf).Decode(&gout); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*gf, gout) {
		t.Fatalf("LockGraphFact mangled in transit: %+v != %+v", gout, *gf)
	}

	// The typestate protocol fact carries the full annotation surface —
	// state order (States[0] is the initial state), per-method requires
	// sets and transition edges. Importing packages rebuild the checker
	// from exactly this payload, so none of it may be lost in transit.
	sf := &StateFact{
		States: []string{"open", "closed"},
		Methods: []StateMethodFact{
			{Name: "Feed", Requires: []string{"open"}},
			{Name: "Close", Transitions: []StateTransition{
				{From: "open", To: "closed"},
				{From: "closed", To: "closed"},
			}},
		},
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(sf); err != nil {
		t.Fatal(err)
	}
	var sout StateFact
	if err := gob.NewDecoder(&buf).Decode(&sout); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*sf, sout) {
		t.Fatalf("StateFact mangled in transit: %+v != %+v", sout, *sf)
	}
}
