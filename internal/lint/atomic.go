package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// AtomicAnalyzer enforces access-mode consistency on shared counters:
// a field that is touched through sync/atomic anywhere — package
// functions like atomic.AddInt64(&s.f, 1), or the typed wrappers
// atomic.Int64 and friends — must never also be read or written with
// plain loads and stores. One plain access is enough to reintroduce
// the data race the atomic discipline was bought to prevent.
//
// Fields accessed atomically in their defining package export an
// AtomicFact, so a plain access from an importing package is flagged
// under go vet's facts pipeline even though the atomic call is out of
// view.
//
// Mechanical findings carry SuggestedFixes: plain reads become
// atomic.LoadXxx, plain stores atomic.StoreXxx, and ++/--/+= updates
// atomic.AddXxx.
var AtomicAnalyzer = &analysis.Analyzer{
	Name:      "elsaatomic",
	Doc:       "flag fields accessed both atomically (sync/atomic) and via plain loads or stores",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*AtomicFact)(nil)},
	Run:       runAtomic,
}

// AtomicFact marks a struct field as atomically accessed in its
// defining package: importing packages must not touch it plainly.
type AtomicFact struct{}

func (*AtomicFact) AFact()         {}
func (*AtomicFact) String() string { return "atomic" }

func runAtomic(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)

	// Pass 1: find every &x.f handed to a sync/atomic function. Those
	// selectors are the sanctioned accesses; the fields they name make
	// up the atomic set.
	atomicAt := make(map[types.Object]token.Pos) // field -> first atomic access
	sanctioned := make(map[*ast.SelectorExpr]bool)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isAtomicPkgCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			fld := fieldObj(pass, sel)
			if fld == nil {
				continue
			}
			sanctioned[sel] = true
			if _, seen := atomicAt[fld]; !seen {
				atomicAt[fld] = sel.Pos()
			}
		}
	})
	for fld := range atomicAt {
		if fld.Pkg() == pass.Pkg {
			pass.ExportObjectFact(fld, &AtomicFact{})
		}
	}

	// Pass 2: every remaining selector of an atomic-set field is a
	// plain access; typed atomic fields (atomic.Int64 etc.) may only
	// appear as method-call receivers or under &.
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		sel := n.(*ast.SelectorExpr)
		fld := fieldObj(pass, sel)
		if fld == nil {
			return true
		}
		var parent ast.Node
		if len(stack) >= 2 {
			parent = stack[len(stack)-2]
		}
		if isAtomicWrapperType(fld.Type()) {
			checkTypedAtomicUse(pass, rep, sel, fld, parent)
			return true
		}
		if sanctioned[sel] {
			return true
		}
		var src string
		if pos, local := atomicAt[fld]; local {
			src = fmt.Sprintf("(line %d)", pass.Fset.Position(pos).Line)
		} else {
			if fld.Pkg() == pass.Pkg || !pass.ImportObjectFact(fld, new(AtomicFact)) {
				return true // never accessed atomically anywhere we can see
			}
			src = "in package " + fld.Pkg().Path()
		}
		reportPlainAccess(pass, rep, sel, fld, parent, stack, src)
		return true
	})
	return nil, nil
}

// isAtomicPkgCall reports whether call invokes a sync/atomic
// package-level function.
func isAtomicPkgCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// fieldObj resolves a selector to the struct field it names, or nil.
func fieldObj(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicWrapperType reports whether t is one of the typed atomics
// (atomic.Int64, atomic.Bool, atomic.Value, ...).
func isAtomicWrapperType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// checkTypedAtomicUse flags uses of a typed atomic field other than
// method calls and address-taking: copying the wrapper reads its word
// non-atomically and detaches the copy from every future update.
func checkTypedAtomicUse(pass *analysis.Pass, rep *reporter, sel *ast.SelectorExpr, fld *types.Var, parent ast.Node) {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return // receiver of a method call: the sanctioned use
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return // &s.f, e.g. passed to a helper operating on the atomic
		}
	}
	rep.reportf(sel.Pos(), "atomic: field %s has type %s and must be used via its methods; copying it reads the value non-atomically",
		fld.Name(), types.TypeString(fld.Type(), types.RelativeTo(pass.Pkg)))
}

// reportPlainAccess diagnoses one plain access of an atomic-set field
// and, where the rewrite is mechanical, attaches the fix.
func reportPlainAccess(pass *analysis.Pass, rep *reporter, sel *ast.SelectorExpr, fld *types.Var, parent ast.Node, stack []ast.Node, src string) {
	qual := atomicImportName(stack)
	suffix := atomicSuffix(fld.Type())
	fix := func(edit analysis.TextEdit, verb string) []analysis.SuggestedFix {
		if qual == "" || suffix == "" {
			return nil
		}
		return []analysis.SuggestedFix{{
			Message:   fmt.Sprintf("rewrite as %s.%s%s", qual, verb, suffix),
			TextEdits: []analysis.TextEdit{edit},
		}}
	}
	selSrc := render(pass.Fset, sel)

	diag := func(mode, hint string, fixes []analysis.SuggestedFix) {
		rep.report(analysis.Diagnostic{
			Pos: sel.Pos(),
			Message: fmt.Sprintf("atomic: field %s is accessed atomically %s but %s plainly here; use %s",
				fld.Name(), src, mode, hint),
			SuggestedFixes: fixes,
		})
	}
	hintPkg := qual
	if hintPkg == "" {
		hintPkg = "atomic"
	}

	switch p := parent.(type) {
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			rep.reportf(sel.Pos(), "atomic: address of atomically accessed field %s escapes sync/atomic here", fld.Name())
			return
		}
	case *ast.IncDecStmt:
		delta := "1"
		if p.Tok == token.DEC {
			delta = "-1"
		}
		edit := analysis.TextEdit{Pos: p.Pos(), End: p.End(),
			NewText: []byte(fmt.Sprintf("%s.Add%s(&%s, %s)", qual, suffix, selSrc, delta))}
		diag("updated", hintPkg+".Add"+suffix, fix(edit, "Add"))
		return
	case *ast.AssignStmt:
		if len(p.Lhs) == 1 && len(p.Rhs) == 1 && ast.Unparen(p.Lhs[0]) == sel {
			rhsSrc := render(pass.Fset, p.Rhs[0])
			switch p.Tok {
			case token.ASSIGN:
				edit := analysis.TextEdit{Pos: p.Pos(), End: p.End(),
					NewText: []byte(fmt.Sprintf("%s.Store%s(&%s, %s)", qual, suffix, selSrc, rhsSrc))}
				diag("written", hintPkg+".Store"+suffix, fix(edit, "Store"))
				return
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				if p.Tok == token.SUB_ASSIGN {
					rhsSrc = "-(" + rhsSrc + ")"
				}
				edit := analysis.TextEdit{Pos: p.Pos(), End: p.End(),
					NewText: []byte(fmt.Sprintf("%s.Add%s(&%s, %s)", qual, suffix, selSrc, rhsSrc))}
				diag("updated", hintPkg+".Add"+suffix, fix(edit, "Add"))
				return
			}
		}
		for _, l := range p.Lhs {
			if ast.Unparen(l) == sel {
				diag("written", hintPkg+".Store"+suffix, nil)
				return
			}
		}
	}
	// Everything else is a read.
	edit := analysis.TextEdit{Pos: sel.Pos(), End: sel.End(),
		NewText: []byte(fmt.Sprintf("%s.Load%s(&%s)", qual, suffix, selSrc))}
	diag("read", hintPkg+".Load"+suffix, fix(edit, "Load"))
}

// atomicImportName returns the name sync/atomic is imported under in
// the file at the bottom of the traversal stack, or "" when the file
// does not import it (no fix can be offered then).
func atomicImportName(stack []ast.Node) string {
	if len(stack) == 0 {
		return ""
	}
	file, ok := stack[0].(*ast.File)
	if !ok {
		return ""
	}
	for _, imp := range file.Imports {
		if imp.Path.Value != `"sync/atomic"` {
			continue
		}
		if imp.Name == nil {
			return "atomic"
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}

// atomicSuffix maps a plain integer type to the sync/atomic function
// suffix operating on it.
func atomicSuffix(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	}
	return ""
}

// render formats a node back to source for use inside fix text.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := format.Node(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}
