package lint

// lockorder.go builds the interprocedural lock-acquisition graph:
// which locks are already held when each lock is acquired, including
// through calls — a call made under s.mu inherits s.mu into every
// acquisition the callee performs. Any cycle in that order graph is a
// potential deadlock: two goroutines entering the cycle from different
// nodes block each other forever, and unlike a race it reproduces only
// under exactly the wrong interleaving.
//
// The analysis runs per package under go vet's facts pipeline. Each
// function's summary — the locks it may acquire and the order edges its
// body creates — is exported as a LockOrderFact object fact, so a
// caller in an importing package can extend held-sets across the
// package boundary exactly the way AllocFreeFact carries the
// allocation proof. The package's merged graph (its own edges plus
// every imported LockGraphFact) is re-exported cumulatively as a
// LockGraphFact package fact; a cycle is reported once, in the first
// package that both completes it and contains one of its edges.
//
// Lock identity is by static role, not instance: a package-level
// mutex is "pkgpath.name", a struct field is "pkgpath.Type.field"
// (all instances of the type share the ordering discipline), and a
// function-local mutex is "pkgpath.func.name".

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// LockOrderAnalyzer reports cycles in the interprocedural
// lock-acquisition order graph.
var LockOrderAnalyzer = &analysis.Analyzer{
	Name: "elsalockorder",
	Doc: "build the interprocedural lock-acquisition graph (locks held at each acquire, " +
		"propagated through calls via facts) and report any cycle as a potential deadlock " +
		"with the full acquisition chain",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*LockOrderFact)(nil), (*LockGraphFact)(nil)},
	Run:       runLockOrder,
}

// LockEdge records that From was held when To was acquired, inside the
// function named Via.
type LockEdge struct {
	From, To, Via string
}

// LockOrderFact is a function's lock summary: every lock the function
// (transitively) may acquire, and the order edges its body creates.
type LockOrderFact struct {
	Acquires []string
	Edges    []LockEdge
}

func (*LockOrderFact) AFact() {}
func (f *LockOrderFact) String() string {
	return "lockorder(acquires " + strings.Join(f.Acquires, ",") + ")"
}

// LockGraphFact is a package's merged acquisition graph: its own edges
// plus everything inherited from its imports, re-exported cumulatively.
type LockGraphFact struct {
	Edges []LockEdge
}

func (*LockGraphFact) AFact() {}
func (f *LockGraphFact) String() string {
	return "lockgraph(" + itoa(len(f.Edges)) + " edges)"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// lockEvent is one ordered happening in a function body.
type lockEvent struct {
	kind   int // one of the evXxx constants
	lock   string
	callee *types.Func
	pos    token.Pos
}

const (
	evAcquire = iota
	evRelease
	evCall
	evGoStart // a go'd closure begins: fresh (empty) held set
	evGoEnd
)

// lockSummary is the fixpoint state for one function.
type lockSummary struct {
	acquires map[string]bool
	edges    map[[2]string]localEdge
}

type localEdge struct {
	via string
	pos token.Pos
}

func newLockSummary() *lockSummary {
	return &lockSummary{acquires: make(map[string]bool), edges: make(map[[2]string]localEdge)}
}

func runLockOrder(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)

	// 1. Collect each function's event trace in source order.
	type fnInfo struct {
		obj    *types.Func
		name   string
		events []lockEvent
	}
	var fns []fnInfo
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
		if !ok {
			return
		}
		lc := &lockCollector{pass: pass, fnName: fn.Name.Name}
		lc.walkStmts(fn.Body.List)
		fns = append(fns, fnInfo{obj: obj, name: pass.Pkg.Name() + "." + fn.Name.Name, events: lc.events})
	})

	// 2. Fixpoint over in-package summaries: replaying a trace with
	// richer callee summaries only grows a summary, so iteration
	// terminates.
	sums := make(map[*types.Func]*lockSummary, len(fns))
	for _, f := range fns {
		sums[f.obj] = newLockSummary()
	}
	calleeSummary := func(callee *types.Func) *lockSummary {
		if s, ok := sums[callee]; ok {
			return s
		}
		var fact LockOrderFact
		if pass.ImportObjectFact(callee, &fact) {
			s := newLockSummary()
			for _, a := range fact.Acquires {
				s.acquires[a] = true
			}
			return s
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if replayLockEvents(f.events, f.name, sums[f.obj], calleeSummary) {
				changed = true
			}
		}
	}

	// 3. Merge: local function edges (with positions) plus every
	// imported package graph (positionless).
	merged := make(map[[2]string]localEdge)
	addEdge := func(k [2]string, e localEdge) {
		if cur, ok := merged[k]; !ok || (!cur.pos.IsValid() && e.pos.IsValid()) ||
			(cur.pos.IsValid() && e.pos.IsValid() && e.pos < cur.pos) {
			merged[k] = e
		}
	}
	for _, f := range fns {
		for k, e := range sums[f.obj].edges {
			addEdge(k, e)
		}
	}
	imports := append([]*types.Package(nil), pass.Pkg.Imports()...)
	sort.Slice(imports, func(i, j int) bool { return imports[i].Path() < imports[j].Path() })
	for _, imp := range imports {
		var g LockGraphFact
		if pass.ImportPackageFact(imp, &g) {
			for _, e := range g.Edges {
				addEdge([2]string{e.From, e.To}, localEdge{via: e.Via})
			}
		}
	}

	// 4. Report cycles with at least one local edge.
	reportLockCycles(pass, rep, merged)

	// 5. Export: per-function facts and the cumulative package graph.
	for _, f := range fns {
		s := sums[f.obj]
		if len(s.acquires) == 0 && len(s.edges) == 0 {
			continue
		}
		pass.ExportObjectFact(f.obj, summaryFact(s))
	}
	if len(merged) > 0 {
		pass.ExportPackageFact(graphFact(merged))
	}
	return nil, nil
}

func summaryFact(s *lockSummary) *LockOrderFact {
	f := &LockOrderFact{}
	for a := range s.acquires {
		f.Acquires = append(f.Acquires, a)
	}
	sort.Strings(f.Acquires)
	for k, e := range s.edges {
		f.Edges = append(f.Edges, LockEdge{From: k[0], To: k[1], Via: e.via})
	}
	sort.Slice(f.Edges, func(i, j int) bool {
		if f.Edges[i].From != f.Edges[j].From {
			return f.Edges[i].From < f.Edges[j].From
		}
		return f.Edges[i].To < f.Edges[j].To
	})
	return f
}

func graphFact(merged map[[2]string]localEdge) *LockGraphFact {
	f := &LockGraphFact{}
	for k, e := range merged {
		f.Edges = append(f.Edges, LockEdge{From: k[0], To: k[1], Via: e.via})
	}
	sort.Slice(f.Edges, func(i, j int) bool {
		if f.Edges[i].From != f.Edges[j].From {
			return f.Edges[i].From < f.Edges[j].From
		}
		return f.Edges[i].To < f.Edges[j].To
	})
	return f
}

// replayLockEvents runs one event trace against the current summaries,
// reporting whether the function's own summary grew.
func replayLockEvents(events []lockEvent, fnName string, sum *lockSummary,
	calleeSummary func(*types.Func) *lockSummary) bool {
	grew := false
	acquire := func(l string) {
		if !sum.acquires[l] {
			sum.acquires[l] = true
			grew = true
		}
	}
	edge := func(from, to, via string, pos token.Pos) {
		k := [2]string{from, to}
		if _, ok := sum.edges[k]; !ok {
			sum.edges[k] = localEdge{via: via, pos: pos}
			grew = true
		}
	}
	var held []string
	var stack [][]string
	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			for _, h := range held {
				edge(h, ev.lock, fnName, ev.pos)
			}
			acquire(ev.lock)
			held = append(held, ev.lock)
		case evRelease:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == ev.lock {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case evCall:
			cs := calleeSummary(ev.callee)
			if cs == nil {
				continue
			}
			callees := make([]string, 0, len(cs.acquires))
			for a := range cs.acquires {
				callees = append(callees, a)
			}
			sort.Strings(callees)
			via := fnName + " -> " + calleeName(ev.callee)
			for _, h := range held {
				for _, a := range callees {
					edge(h, a, via, ev.pos)
				}
			}
			for _, a := range callees {
				acquire(a)
			}
		case evGoStart:
			stack = append(stack, held)
			held = nil
		case evGoEnd:
			held = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		}
	}
	return grew
}

func calleeName(f *types.Func) string {
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// lockCollector extracts the ordered lock events from one function body.
type lockCollector struct {
	pass   *analysis.Pass
	fnName string
	events []lockEvent
}

func (lc *lockCollector) emit(e lockEvent) { lc.events = append(lc.events, e) }

func (lc *lockCollector) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		lc.walk(s)
	}
}

// walk records events in source order. Branch bodies are walked
// sequentially (conservative: a lock taken in one arm is considered
// held after the if), which matches the suite's bias toward flagging
// ambiguous order over missing a deadlock.
func (lc *lockCollector) walk(n ast.Node) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.DeferStmt:
		// A deferred unlock holds the lock to function end: no release
		// event. Other deferred calls are handled in place.
		if lc.syncMethod(n.Call) == "unlock" {
			return
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			// Deferred closure that only unlocks is the common pattern.
			lc.walkDeferLit(lit)
			return
		}
		lc.walk(n.Call)
		return
	case *ast.GoStmt:
		lc.emit(lockEvent{kind: evGoStart, pos: n.Pos()})
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			lc.walkStmts(lit.Body.List)
		} else {
			lc.walk(n.Call)
		}
		lc.emit(lockEvent{kind: evGoEnd, pos: n.Pos()})
		return
	case *ast.CallExpr:
		for _, a := range n.Args {
			lc.walk(a)
		}
		switch lc.syncMethod(n) {
		case "lock":
			if id := lc.lockID(recvExpr(n)); id != "" {
				lc.emit(lockEvent{kind: evAcquire, lock: id, pos: n.Pos()})
			}
			return
		case "unlock":
			if id := lc.lockID(recvExpr(n)); id != "" {
				lc.emit(lockEvent{kind: evRelease, lock: id, pos: n.Pos()})
			}
			return
		}
		if callee := calleeFunc(lc.pass.TypesInfo, n); callee != nil {
			lc.emit(lockEvent{kind: evCall, callee: callee, pos: n.Pos()})
		}
		if lit, ok := n.Fun.(*ast.FuncLit); ok {
			lc.walkStmts(lit.Body.List)
		}
		return
	case *ast.FuncLit:
		// Non-invoked literal: its body runs some time while the current
		// locks may be held; walk inline (conservative).
		lc.walkStmts(n.Body.List)
		return
	}
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m == nil {
			return false
		}
		lc.walk(m)
		return false
	})
}

// walkDeferLit walks a deferred closure, dropping its unlock events
// (they run at exit) but keeping acquires and calls.
func (lc *lockCollector) walkDeferLit(lit *ast.FuncLit) {
	inner := &lockCollector{pass: lc.pass, fnName: lc.fnName}
	inner.walkStmts(lit.Body.List)
	for _, ev := range inner.events {
		if ev.kind == evRelease {
			continue
		}
		lc.emit(ev)
	}
}

// syncMethod classifies a call as "lock" (Lock/RLock), "unlock"
// (Unlock/RUnlock), or "" when it is not a sync-package method.
// TryLock never blocks and is ignored.
func (lc *lockCollector) syncMethod(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := lc.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return "lock"
	case "Unlock", "RUnlock":
		return "unlock"
	}
	return ""
}

// recvExpr returns the receiver expression of a method call.
func recvExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// calleeFunc resolves a call's static callee, nil for builtins,
// conversions, and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// lockID names a lock by its static role. "" means the expression is
// not attributable (a map element, a call result) and the acquire is
// skipped rather than misattributed.
func (lc *lockCollector) lockID(recv ast.Expr) string {
	if recv == nil {
		return ""
	}
	recv = ast.Unparen(recv)
	info := lc.pass.TypesInfo
	switch x := recv.(type) {
	case *ast.Ident:
		obj := objOf(info, x)
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// A receiver or local of a named type embedding the primitive:
		// identity is the type (all instances share the discipline).
		if n := namedTypeOf(v.Type()); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() != "sync" {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name()
		}
		return lc.pass.Pkg.Path() + "." + lc.fnName + "." + v.Name()
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + x.Sel.Name
			}
		}
		if sel, ok := info.Selections[x]; ok {
			if n := namedTypeOf(sel.Recv()); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + x.Sel.Name
			}
		}
		if root := rootString(x); root != "" {
			return lc.pass.Pkg.Path() + "." + lc.fnName + "." + root
		}
	}
	return ""
}

// namedTypeOf unwraps pointers to the named type underneath, nil when
// there is none.
func namedTypeOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// ---- cycle detection ----

// reportLockCycles finds strongly connected components in the merged
// graph and reports each cycle that owns a local edge, once, at its
// earliest local position.
func reportLockCycles(pass *analysis.Pass, rep *reporter, merged map[[2]string]localEdge) {
	nodes := make(map[string]bool)
	succ := make(map[string][]string)
	for k := range merged {
		nodes[k[0]], nodes[k[1]] = true, true
		succ[k[0]] = append(succ[k[0]], k[1])
	}
	for _, s := range succ {
		sort.Strings(s)
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, scc := range tarjanSCC(names, succ) {
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		cyclic := len(scc) > 1
		if !cyclic {
			if _, self := merged[[2]string{scc[0], scc[0]}]; self {
				cyclic = true
			}
		}
		if !cyclic {
			continue
		}
		// The reporting anchor: the earliest local edge inside the SCC.
		var anchor [2]string
		var anchorPos token.Pos
		for _, from := range scc {
			for _, to := range succ[from] {
				if !inSCC[to] {
					continue
				}
				e := merged[[2]string{from, to}]
				if e.pos.IsValid() && (!anchorPos.IsValid() || e.pos < anchorPos) {
					anchor, anchorPos = [2]string{from, to}, e.pos
				}
			}
		}
		if !anchorPos.IsValid() {
			continue // all edges imported: the defining package reported it
		}
		if len(scc) == 1 {
			e := merged[anchor]
			rep.reportf(anchorPos, "lockorder: %s acquired while already held (in %s); re-locking a non-reentrant mutex self-deadlocks",
				lockDisplay(anchor[0]), e.via)
			continue
		}
		chain := cycleChain(anchor, inSCC, succ, merged)
		rep.reportf(anchorPos, "lockorder: lock-order cycle %s; goroutines acquiring these locks in different orders can deadlock", chain)
	}
}

// cycleChain renders the acquisition chain anchor.From -> anchor.To ->
// ... -> anchor.From with the function each edge was observed in.
func cycleChain(anchor [2]string, inSCC map[string]bool, succ map[string][]string, merged map[[2]string]localEdge) string {
	path := []string{anchor[0], anchor[1]}
	seen := map[string]bool{anchor[1]: true}
	cur := anchor[1]
	for cur != anchor[0] {
		advanced := false
		for _, next := range succ[cur] {
			if !inSCC[next] {
				continue
			}
			if next == anchor[0] {
				cur = next
				path = append(path, next)
				advanced = true
				break
			}
			if !seen[next] {
				seen[next] = true
				cur = next
				path = append(path, next)
				advanced = true
				break
			}
		}
		if !advanced {
			break // defensive: SCC guarantees a way back, but never loop forever
		}
	}
	var b strings.Builder
	b.WriteString(lockDisplay(path[0]))
	for i := 1; i < len(path); i++ {
		e := merged[[2]string{path[i-1], path[i]}]
		b.WriteString(" -> ")
		b.WriteString(lockDisplay(path[i]))
		if e.via != "" {
			b.WriteString(" (in ")
			b.WriteString(e.via)
			b.WriteString(")")
		}
	}
	return b.String()
}

// lockDisplay shortens a lock's identity for diagnostics: the full
// import path prefix collapses to its last element.
func lockDisplay(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// tarjanSCC returns the strongly connected components of the graph in
// deterministic order (nodes and successor lists pre-sorted).
func tarjanSCC(nodes []string, succ map[string][]string) [][]string {
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
