package lint

// chan.go is the channel-protocol layer of the concurrency contract:
// where elsactxflow asks "can this blocking op be cancelled?" and
// elsalocksafe syntactically screens goroutine launches, elsachan
// models every channel as a cell with send/receive/close edges —
// including edges through goroutine closures and struct fields — and
// checks the ownership discipline the pipeline's stage graph is built
// on: exactly one closer, the closer is the owner, nothing sends after
// close, and no goroutine's only exit is a channel op with no
// guaranteed counterpart.
//
// Ownership. The owner of a channel is the goroutine (function body or
// go'd closure) that created it, or one explicitly handed the cell with
// an //elsa:chanowner annotation:
//
//	//elsa:chanowner recCh
//	go func() { defer close(recCh); ... }()   // launch-site transfer
//
//	//elsa:chanowner done
//	func (s *Socket) Close() error { ... close(s.done) ... }  // func-level
//
// The annotation names the channel (its full rooted path, s.done, or
// just the final component, done). A close outside the creating scope
// without one is flagged — the same way an unannotated hotpath
// allocation is — so every ownership transfer is written down where
// reviewers look for it.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// chanOwnerDirective transfers close-ownership of a named channel to a
// goroutine launch site or a whole function.
const chanOwnerDirective = "//elsa:chanowner"

// ChanAnalyzer enforces channel close discipline and flags
// goroutine-leak shapes. elsalocksafe's syntactic "uncancellable
// goroutine" check is its pre-pass (the way elsahotpath screens for
// elsaalloc), so //nolint:elsalocksafe suppressions carry over.
var ChanAnalyzer = &analysis.Analyzer{
	Name: "elsachan",
	Doc: "model channels as cells with send/recv/close edges and report double-close, " +
		"close-by-non-owner, sends reachable after close, and goroutines whose only exit " +
		"is a blocking channel op with no guaranteed counterpart",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runChan,
}

// chanCell is one channel the analysis tracks inside a function: a
// make(chan) site, a channel-typed parameter, or a channel-valued
// field path (s.done).
type chanCell struct {
	name    string       // diagnostic name: rooted path of the expression
	obj     types.Object // non-nil for ident-bound cells (locals, params)
	param   bool         // the cell entered through the parameter list
	field   bool         // the cell is a selector path (struct field edge)
	created bool         // a make(chan) was assigned to it in this function
	// createdGo is the goroutine scope (nil = the function's own body)
	// that created the cell; closes in that scope are by the owner.
	createdGo *ast.FuncLit
	capConst  int64 // constant buffer capacity; -1 unknown, 0 unbuffered

	closes []chanClose
	sends  int // send sites anywhere in the function
	recvs  int // receive + range sites anywhere in the function
}

// chanClose is one close(ch) site.
type chanClose struct {
	pos    token.Pos
	goLit  *ast.FuncLit // innermost go'd closure holding the close, nil = function body
	inLoop bool
}

// chanGoroutine is one go'd function literal and the blocking ops
// observed in it.
type chanGoroutine struct {
	lit    *ast.FuncLit
	owned  []string // channel names from an //elsa:chanowner launch annotation
	hasCtx bool     // the body references a context value (an exit path exists)
	ops    []chanOp
}

// chanOp is one potentially blocking channel operation inside a
// goroutine.
type chanOp struct {
	cell    *chanCell
	pos     token.Pos
	send    bool // send vs receive/range
	guarded bool // inside a select with a ctx.Done() case or a default
}

// chanScope is the per-function analysis state.
type chanScope struct {
	pass     *analysis.Pass
	fn       *ast.FuncDecl
	ownerIdx map[string]map[int][]string // filename -> line -> annotated names
	cells    map[types.Object]*chanCell
	fields   map[string]*chanCell
	gos      []*chanGoroutine
	fnOwned  []string // names from a function-level //elsa:chanowner
}

func runChan(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)
	// elsalocksafe's goroutine screen is the syntactic pre-pass of the
	// leak analysis: one contract, two depths, one suppression.
	rep.sup.aliases = []string{LockSafeAnalyzer.Name}
	ownerIdx := chanOwnerIndex(pass)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		cs := &chanScope{
			pass:     pass,
			fn:       fn,
			ownerIdx: ownerIdx,
			cells:    make(map[types.Object]*chanCell),
			fields:   make(map[string]*chanCell),
		}
		if arg, ok := directiveArg(fn.Doc, chanOwnerDirective); ok {
			cs.fnOwned = splitNames(arg)
		}
		cs.declareParams()
		cs.collect(fn.Body, nil, false)
		cs.checkCloses(rep)
		cs.checkSendAfterClose(rep)
		cs.checkLeaks(rep)
	})
	return nil, nil
}

// chanOwnerIndex collects every //elsa:chanowner comment of the pass by
// file and line, so a `go` statement on line L+1 can look up the
// transfer annotation on line L.
func chanOwnerIndex(pass *analysis.Pass) map[string]map[int][]string {
	idx := make(map[string]map[int][]string)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				arg, ok := directiveText(c.Text, chanOwnerDirective)
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				byLine := idx[p.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					idx[p.Filename] = byLine
				}
				byLine[p.Line] = append(byLine[p.Line], splitNames(arg)...)
			}
		}
	}
	return idx
}

// directiveText matches one comment's text against a directive,
// returning the trailing argument.
func directiveText(text, directive string) (string, bool) {
	if text == directive {
		return "", true
	}
	if strings.HasPrefix(text, directive+" ") {
		return strings.TrimSpace(text[len(directive)+1:]), true
	}
	return "", false
}

func splitNames(arg string) []string {
	var out []string
	for _, n := range strings.FieldsFunc(arg, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// nameMatches reports whether an annotation name designates the cell:
// the full rooted path or its final component.
func nameMatches(name string, cell *chanCell) bool {
	if name == cell.name {
		return true
	}
	if i := strings.LastIndexByte(cell.name, '.'); i >= 0 && name == cell.name[i+1:] {
		return true
	}
	return false
}

// declareParams registers channel-typed parameters as cells.
func (cs *chanScope) declareParams() {
	if cs.fn.Type.Params == nil {
		return
	}
	for _, f := range cs.fn.Type.Params.List {
		for _, name := range f.Names {
			obj := cs.pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
				continue
			}
			cs.cells[obj] = &chanCell{name: name.Name, obj: obj, param: true, capConst: -1}
		}
	}
}

// cellFor resolves a channel expression to its cell, creating
// field-path cells on demand. Non-channel and unresolvable expressions
// return nil.
func (cs *chanScope) cellFor(e ast.Expr) *chanCell {
	e = ast.Unparen(e)
	t := cs.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return nil
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := objOf(cs.pass.TypesInfo, x)
		if obj == nil {
			return nil
		}
		if c, ok := cs.cells[obj]; ok {
			return c
		}
		c := &chanCell{name: x.Name, obj: obj, capConst: -1}
		cs.cells[obj] = c
		return c
	case *ast.SelectorExpr:
		root := rootString(x)
		if root == "" {
			return nil
		}
		if c, ok := cs.fields[root]; ok {
			return c
		}
		c := &chanCell{name: root, field: true, capConst: -1}
		cs.fields[root] = c
		return c
	}
	return nil
}

// collect walks a statement tree recording creations, closes, sends,
// receives and goroutine launches. goLit is the innermost go'd closure
// (nil = the function's own goroutine); inLoop marks enclosing
// for/range bodies within the current goroutine scope.
func (cs *chanScope) collect(n ast.Node, goLit *ast.FuncLit, inLoop bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			g := &chanGoroutine{lit: lit, owned: cs.goAnnotations(n)}
			g.hasCtx = referencesContext(cs.pass.TypesInfo, lit.Body)
			cs.gos = append(cs.gos, g)
			for _, arg := range n.Call.Args {
				cs.collect(arg, goLit, inLoop)
			}
			cs.collect(lit.Body, lit, false)
			return
		}
		cs.collect(n.Call, goLit, inLoop)
		return
	case *ast.ForStmt:
		cs.collect(n.Init, goLit, inLoop)
		if n.Cond != nil {
			cs.collect(n.Cond, goLit, inLoop)
		}
		cs.collect(n.Post, goLit, inLoop)
		cs.collect(n.Body, goLit, true)
		return
	case *ast.RangeStmt:
		if cell := cs.cellFor(n.X); cell != nil {
			cell.recvs++
			cs.recordOp(goLit, chanOp{cell: cell, pos: n.Pos(), send: false})
		} else {
			cs.collect(n.X, goLit, inLoop)
		}
		cs.collect(n.Body, goLit, true)
		return
	case *ast.SelectStmt:
		guarded := selectGuarded(cs.pass.TypesInfo, n)
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			cs.collectComm(cc.Comm, goLit, inLoop, guarded)
			for _, s := range cc.Body {
				cs.collect(s, goLit, inLoop)
			}
		}
		return
	case *ast.SendStmt:
		if cell := cs.cellFor(n.Chan); cell != nil {
			cell.sends++
			cs.recordOp(goLit, chanOp{cell: cell, pos: n.Pos(), send: true})
		}
		cs.collect(n.Value, goLit, inLoop)
		return
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			if cell := cs.cellFor(n.X); cell != nil {
				cell.recvs++
				cs.recordOp(goLit, chanOp{cell: cell, pos: n.Pos(), send: false})
				return
			}
		}
		cs.collect(n.X, goLit, inLoop)
		return
	case *ast.AssignStmt:
		cs.collectAssign(n, goLit, inLoop)
		return
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						cs.bindCreation(name, vs.Values[i], goLit)
						cs.collect(vs.Values[i], goLit, inLoop)
					}
				}
			}
		}
		return
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			if b, ok := cs.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
				cell := cs.cellFor(n.Args[0])
				if cell == nil {
					// A close the model cannot attribute (call result,
					// map element): out of scope for the discipline.
					return
				}
				cell.closes = append(cell.closes, chanClose{pos: n.Pos(), goLit: goLit, inLoop: inLoop})
				return
			}
		}
		for _, a := range n.Args {
			cs.collect(a, goLit, inLoop)
		}
		cs.collect(n.Fun, goLit, inLoop)
		return
	case *ast.FuncLit:
		// A non-go'd literal (callback, deferred closure) runs within
		// the creating goroutine's scope for ownership purposes.
		cs.collect(n.Body, goLit, inLoop)
		return
	}
	// Generic recursion over children for everything else.
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m == nil {
			return false
		}
		cs.collect(m, goLit, inLoop)
		return false
	})
}

// collectComm records the channel op a select comm clause performs,
// with the select's guard verdict attached.
func (cs *chanScope) collectComm(comm ast.Stmt, goLit *ast.FuncLit, inLoop, guarded bool) {
	switch comm := comm.(type) {
	case nil:
	case *ast.SendStmt:
		if cell := cs.cellFor(comm.Chan); cell != nil {
			cell.sends++
			cs.recordOp(goLit, chanOp{cell: cell, pos: comm.Pos(), send: true, guarded: guarded})
		}
		cs.collect(comm.Value, goLit, inLoop)
	case *ast.ExprStmt:
		cs.collectCommRecv(comm.X, goLit, guarded)
	case *ast.AssignStmt:
		for _, r := range comm.Rhs {
			cs.collectCommRecv(r, goLit, guarded)
		}
	}
}

func (cs *chanScope) collectCommRecv(e ast.Expr, goLit *ast.FuncLit, guarded bool) {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return
	}
	if cell := cs.cellFor(u.X); cell != nil {
		cell.recvs++
		cs.recordOp(goLit, chanOp{cell: cell, pos: u.Pos(), send: false, guarded: guarded})
	}
}

func (cs *chanScope) recordOp(goLit *ast.FuncLit, op chanOp) {
	if goLit == nil {
		return
	}
	for _, g := range cs.gos {
		if g.lit == goLit {
			g.ops = append(g.ops, op)
			return
		}
	}
}

// collectAssign wires `ch := make(chan T, n)` and `s.ch = make(...)`
// creations, then walks the assignment normally.
func (cs *chanScope) collectAssign(a *ast.AssignStmt, goLit *ast.FuncLit, inLoop bool) {
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			cs.bindCreation(a.Lhs[i], a.Rhs[i], goLit)
		}
	}
	for _, r := range a.Rhs {
		cs.collect(r, goLit, inLoop)
	}
	for _, l := range a.Lhs {
		// Receives on the RHS were walked above; LHS index exprs etc.
		if _, ok := l.(*ast.Ident); !ok {
			cs.collect(l, goLit, inLoop)
		}
	}
}

// bindCreation marks lhs's cell created when rhs is a make(chan) call.
func (cs *chanScope) bindCreation(lhs, rhs ast.Expr, goLit *ast.FuncLit) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := cs.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	if _, ok := cs.pass.TypesInfo.TypeOf(call).Underlying().(*types.Chan); !ok {
		return
	}
	cell := cs.cellFor(lhs)
	if cell == nil {
		return
	}
	cell.created = true
	cell.createdGo = goLit
	cell.capConst = 0
	if len(call.Args) >= 2 {
		cell.capConst = -1
		if tv, ok := cs.pass.TypesInfo.Types[call.Args[1]]; ok {
			if v, ok := constInt64(tv); ok {
				cell.capConst = v
			}
		}
	}
}

// goAnnotations resolves the //elsa:chanowner names annotating a go
// statement (a directive on the statement's own line or the line
// above).
func (cs *chanScope) goAnnotations(g *ast.GoStmt) []string {
	p := cs.pass.Fset.Position(g.Pos())
	byLine := cs.ownerIdx[p.Filename]
	if byLine == nil {
		return nil
	}
	var out []string
	out = append(out, byLine[p.Line]...)
	out = append(out, byLine[p.Line-1]...)
	return out
}

// referencesContext reports whether a body mentions any context-typed
// value — an exit path via cancellation exists.
func referencesContext(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// ---- checks ----

// checkCloses enforces single-close and ownership.
func (cs *chanScope) checkCloses(rep *reporter) {
	for _, cell := range cs.allCellsSorted() {
		if len(cell.closes) == 0 {
			continue
		}
		first := cell.closes[0]
		for _, c := range cell.closes {
			if c.pos < first.pos {
				first = c
			}
		}
		for _, c := range cell.closes {
			if c.inLoop {
				rep.reportf(c.pos, "chan: close of %s inside a loop; a second iteration double-closes and panics", cell.name)
			}
			if len(cell.closes) > 1 && c.pos != first.pos {
				rep.reportf(c.pos, "chan: %s is closed more than once (first close at line %d); a second close panics",
					cell.name, cs.pass.Fset.Position(first.pos).Line)
			}
			cs.checkCloseOwner(rep, cell, c)
		}
	}
}

// checkCloseOwner flags closes outside the owning scope.
func (cs *chanScope) checkCloseOwner(rep *reporter, cell *chanCell, c chanClose) {
	// Function-level transfer covers every scope in the function.
	for _, n := range cs.fnOwned {
		if nameMatches(n, cell) {
			return
		}
	}
	if c.goLit != nil {
		// Inside a go'd closure: either the goroutine created the cell
		// itself or its launch site carries the transfer annotation.
		if cell.created && cell.createdGo == c.goLit {
			return
		}
		for _, g := range cs.gos {
			if g.lit != c.goLit {
				continue
			}
			for _, n := range g.owned {
				if nameMatches(n, cell) {
					return
				}
			}
		}
		rep.reportf(c.pos, "chan: goroutine closes %s it does not own; annotate the launch site //elsa:chanowner %s "+
			"to record the ownership transfer", cell.name, cell.name)
		return
	}
	// Function body: the creator closes freely; parameters and fields
	// need the transfer written down.
	if cell.created && cell.createdGo == nil {
		return
	}
	switch {
	case cell.param:
		rep.reportf(c.pos, "chan: close of channel parameter %s by a non-owner; only the creating side closes — "+
			"annotate the function //elsa:chanowner %s if ownership is transferred in", cell.name, cell.name)
	default:
		rep.reportf(c.pos, "chan: close of %s outside its creating scope; annotate the function //elsa:chanowner %s "+
			"to record which single path owns the close", cell.name, cell.name)
	}
}

// checkSendAfterClose walks each goroutine scope in program order
// flagging sends that can execute after a close of the same cell.
func (cs *chanScope) checkSendAfterClose(rep *reporter) {
	closed := make(map[*chanCell]token.Pos)
	cs.orderWalk(rep, cs.fn.Body.List, nil, closed)
}

// orderWalk is a conservative sequential interpreter: it tracks
// may-closed cells through a statement list, forking at branches
// (union merge) and walking loop bodies twice so an iteration-two send
// sees an iteration-one close.
func (cs *chanScope) orderWalk(rep *reporter, stmts []ast.Stmt, goLit *ast.FuncLit, closed map[*chanCell]token.Pos) {
	for _, s := range stmts {
		cs.orderStmt(rep, s, goLit, closed)
	}
}

func copyClosed(closed map[*chanCell]token.Pos) map[*chanCell]token.Pos {
	out := make(map[*chanCell]token.Pos, len(closed))
	for k, v := range closed {
		out[k] = v
	}
	return out
}

func mergeClosed(dst, src map[*chanCell]token.Pos) {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
}

func (cs *chanScope) orderStmt(rep *reporter, s ast.Stmt, goLit *ast.FuncLit, closed map[*chanCell]token.Pos) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		cs.orderWalk(rep, s.List, goLit, closed)
	case *ast.ExprStmt:
		cs.orderExpr(rep, s.X, goLit, closed)
	case *ast.SendStmt:
		cs.orderSend(rep, s, closed)
		cs.orderExpr(rep, s.Value, goLit, closed)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			cs.orderExpr(rep, r, goLit, closed)
		}
	case *ast.DeferStmt:
		// Deferred closes run at exit: no ordering edge to later sends.
		// A deferred closure's own sends are checked against the state
		// at registration (conservative under-approximation).
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			cs.orderWalk(rep, lit.Body.List, goLit, copyClosed(closed))
		}
	case *ast.GoStmt:
		// The goroutine observes closes that happened before the spawn;
		// its own closes race the parent and are not merged back.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			cs.orderWalk(rep, lit.Body.List, lit, copyClosed(closed))
		}
	case *ast.IfStmt:
		cs.orderStmt(rep, s.Init, goLit, closed)
		then := copyClosed(closed)
		cs.orderStmt(rep, s.Body, goLit, then)
		if s.Else != nil {
			els := copyClosed(closed)
			cs.orderStmt(rep, s.Else, goLit, els)
			mergeClosed(closed, els)
		}
		mergeClosed(closed, then)
	case *ast.ForStmt:
		cs.orderStmt(rep, s.Init, goLit, closed)
		body := copyClosed(closed)
		cs.orderStmt(rep, s.Body, goLit, body)
		cs.orderStmt(rep, s.Post, goLit, body)
		cs.orderStmt(rep, s.Body, goLit, body)
		mergeClosed(closed, body)
	case *ast.RangeStmt:
		body := copyClosed(closed)
		cs.orderStmt(rep, s.Body, goLit, body)
		cs.orderStmt(rep, s.Body, goLit, body)
		mergeClosed(closed, body)
	case *ast.SelectStmt:
		merged := copyClosed(closed)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			arm := copyClosed(closed)
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				cs.orderSend(rep, send, arm)
			}
			for _, st := range cc.Body {
				cs.orderStmt(rep, st, goLit, arm)
			}
			mergeClosed(merged, arm)
		}
		mergeClosed(closed, merged)
	case *ast.SwitchStmt:
		cs.orderStmt(rep, s.Init, goLit, closed)
		merged := copyClosed(closed)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				arm := copyClosed(closed)
				for _, st := range cc.Body {
					cs.orderStmt(rep, st, goLit, arm)
				}
				mergeClosed(merged, arm)
			}
		}
		mergeClosed(closed, merged)
	case *ast.TypeSwitchStmt:
		cs.orderStmt(rep, s.Init, goLit, closed)
		cs.orderStmt(rep, s.Body, goLit, closed)
	case *ast.LabeledStmt:
		cs.orderStmt(rep, s.Stmt, goLit, closed)
	case *ast.CaseClause:
		for _, st := range s.Body {
			cs.orderStmt(rep, st, goLit, closed)
		}
	}
}

func (cs *chanScope) orderSend(rep *reporter, s *ast.SendStmt, closed map[*chanCell]token.Pos) {
	cell := cs.cellFor(s.Chan)
	if cell == nil {
		return
	}
	if pos, ok := closed[cell]; ok {
		rep.reportf(s.Pos(), "chan: send on %s is reachable after its close at line %d; a send on a closed channel panics",
			cell.name, cs.pass.Fset.Position(pos).Line)
	}
}

// orderExpr notices close(...) calls (advancing the closed state) and
// descends into immediately invoked literals.
func (cs *chanScope) orderExpr(rep *reporter, e ast.Expr, goLit *ast.FuncLit, closed map[*chanCell]token.Pos) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := cs.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(call.Args) == 1 {
			if cell := cs.cellFor(call.Args[0]); cell != nil {
				if _, already := closed[cell]; !already {
					closed[cell] = call.Pos()
				}
			}
			return
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		cs.orderWalk(rep, lit.Body.List, goLit, closed)
	}
}

// checkLeaks flags goroutines whose blocking channel ops have no
// guaranteed counterpart and no cancellation path. Test files are
// exempt: their goroutines are joined by the test harness, and the
// leak shapes that matter are the serving-path ones.
func (cs *chanScope) checkLeaks(rep *reporter) {
	if inTestFile(cs.pass.Fset, cs.fn.Pos()) {
		return
	}
	for _, g := range cs.gos {
		if g.hasCtx {
			continue // cancellation path exists; elsactxflow audits its use
		}
		for _, op := range g.ops {
			if op.guarded || op.cell == nil {
				continue
			}
			cell := op.cell
			if op.send {
				// A send is covered by a constant-capacity buffer or a
				// receiver somewhere else in the function.
				if cell.capConst > 0 || cell.recvs > 0 {
					continue
				}
				rep.reportf(op.pos, "chan: goroutine's only exit is a blocking send on %s with no guaranteed counterpart "+
					"and no ctx.Done() select; it can leak", cell.name)
			} else {
				// A receive is released by a close or fed by a sender.
				if len(cell.closes) > 0 || cell.sends > 0 {
					continue
				}
				rep.reportf(op.pos, "chan: goroutine's only exit is a blocking receive from %s with no close, sender, "+
					"or ctx.Done() select in scope; it can leak", cell.name)
			}
		}
	}
}

// allCellsSorted returns every tracked cell in stable (position-ish)
// order: ident cells by object position, then field cells by name.
func (cs *chanScope) allCellsSorted() []*chanCell {
	var out []*chanCell
	for _, c := range cs.cells {
		out = append(out, c)
	}
	for _, c := range cs.fields {
		out = append(out, c)
	}
	// Insertion order of maps is nondeterministic; sort by name then
	// first close position so diagnostics are stable.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && chanCellLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func chanCellLess(a, b *chanCell) bool {
	if a.name != b.name {
		return a.name < b.name
	}
	ap, bp := token.NoPos, token.NoPos
	if len(a.closes) > 0 {
		ap = a.closes[0].pos
	}
	if len(b.closes) > 0 {
		bp = b.closes[0].pos
	}
	return ap < bp
}
