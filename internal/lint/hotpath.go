package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotPathAnalyzer enforces the //elsa:hotpath contract: the annotated
// function must not contain syntax that allocates per call. The training
// fast path (PR 2) earned its 0 allocs/op the hard way — scratch reuse,
// two-pointer sweeps, prefix-sum scoring — and this analyzer keeps any
// future edit from quietly paying them back.
var HotPathAnalyzer = &analysis.Analyzer{
	Name: "elsahotpath",
	Doc: "report allocating constructs (append, make, slice/map/pointer literals, closures, fmt calls, " +
		"interface conversions, string<->[]byte conversions) inside functions marked //elsa:hotpath",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotPath,
}

func runHotPath(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if !isHotPath(fn) || fn.Body == nil {
			return
		}
		checkHotBody(pass, rep, fn)
	})
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, rep *reporter, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, rep, n)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				rep.reportf(n.Pos(), "hotpath: slice literal allocates")
			case *types.Map:
				rep.reportf(n.Pos(), "hotpath: map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					rep.reportf(n.Pos(), "hotpath: &composite literal allocates (escapes to heap)")
				}
			}
		case *ast.FuncLit:
			rep.reportf(n.Pos(), "hotpath: closure allocates (and may capture by reference)")
			return false // its body is not part of the annotated function's per-call cost
		case *ast.GoStmt:
			rep.reportf(n.Pos(), "hotpath: goroutine launch allocates a stack")
		}
		checkIfaceConv(pass, rep, n)
		return true
	})
}

// checkHotCall flags builtin and fmt calls that allocate.
func checkHotCall(pass *analysis.Pass, rep *reporter, call *ast.CallExpr) {
	info := pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				rep.reportf(call.Pos(), "hotpath: append may grow and allocate; preallocate in a scratch buffer")
			case "make":
				rep.reportf(call.Pos(), "hotpath: make allocates")
			case "new":
				rep.reportf(call.Pos(), "hotpath: new allocates")
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			rep.reportf(call.Pos(), "hotpath: fmt.%s allocates (formatting boxes every operand)", obj.Name())
		}
	}
	// Conversion between string and []byte/[]rune copies.
	if len(call.Args) == 1 {
		if to, ok := info.Types[call.Fun]; ok && to.IsType() {
			from := info.TypeOf(call.Args[0])
			if from != nil && isStringBytesConv(to.Type, from) {
				rep.reportf(call.Pos(), "hotpath: %s conversion copies", types.TypeString(to.Type, types.RelativeTo(pass.Pkg)))
			}
		}
	}
}

func isStringBytesConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}

// checkIfaceConv flags implicit concrete-to-interface conversions in
// call arguments, assignments and returns — each one boxes its operand.
func checkIfaceConv(pass *analysis.Pass, rep *reporter, n ast.Node) {
	info := pass.TypesInfo
	flag := func(e ast.Expr, to types.Type) {
		if e == nil || to == nil || !types.IsInterface(to) {
			return
		}
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil || types.IsInterface(tv.Type) || tv.IsNil() {
			return
		}
		rep.reportf(e.Pos(), "hotpath: implicit conversion of %s to interface %s allocates",
			types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)),
			types.TypeString(to, types.RelativeTo(pass.Pkg)))
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		sig, ok := info.TypeOf(n.Fun).(*types.Signature)
		if !ok {
			return // conversion or builtin; builtins like append don't box
		}
		params := sig.Params()
		for i, arg := range n.Args {
			var pt types.Type
			if sig.Variadic() && i >= params.Len()-1 {
				if n.Ellipsis.IsValid() {
					continue // passing a slice through ... doesn't box per element
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			} else if i < params.Len() {
				pt = params.At(i).Type()
			}
			flag(arg, pt)
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Lhs {
			flag(n.Rhs[i], info.TypeOf(n.Lhs[i]))
		}
	}
}
