package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotPathAnalyzer is the fast syntactic pre-pass of the //elsa:hotpath
// contract: it flags the constructs that cost an allocation no matter
// what escape analysis concludes — append growth, fmt formatting,
// goroutine launches, string<->[]byte conversions and implicit
// concrete→interface boxing. The allocation sites the compiler may
// optimize away (make, new, composite literals, closures) are the
// domain of elsaalloc, the dataflow layer that proves them
// stack-allocatable or reports their escape path.
var HotPathAnalyzer = &analysis.Analyzer{
	Name: "elsahotpath",
	Doc: "report constructs that always allocate per call (append growth, fmt calls, goroutine " +
		"launches, interface boxing, string<->[]byte conversions) inside functions marked //elsa:hotpath",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotPath,
}

func runHotPath(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := newReporter(pass)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if !isHotPath(fn) || fn.Body == nil {
			return
		}
		checkHotBody(pass, rep, fn)
	})
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, rep *reporter, fn *ast.FuncDecl) {
	var sig *types.Signature
	if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}
	checkHotScope(pass, rep, fn.Body, sig)
}

// checkHotScope checks one function body against its own signature.
// Nested func literals recurse with the literal's signature, so each
// return statement pairs with its innermost enclosing function — a
// closure returning int inside a kernel returning any is not a boxing
// site, and boxing inside the closure is judged against the closure's
// results.
func checkHotScope(pass *analysis.Pass, rep *reporter, body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lsig, _ := pass.TypesInfo.TypeOf(n).(*types.Signature)
			checkHotScope(pass, rep, n.Body, lsig)
			return false
		case *ast.CallExpr:
			checkHotCall(pass, rep, n)
		case *ast.GoStmt:
			rep.reportf(n.Pos(), "hotpath: goroutine launch allocates a stack")
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, rep, sig, n)
		}
		checkIfaceConv(pass, rep, n)
		return true
	})
}

// checkHotCall flags builtin and fmt calls that allocate.
func checkHotCall(pass *analysis.Pass, rep *reporter, call *ast.CallExpr) {
	info := pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
			rep.reportf(call.Pos(), "hotpath: append may grow and allocate; preallocate in a scratch buffer")
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			rep.reportf(call.Pos(), "hotpath: fmt.%s allocates (formatting boxes every operand)", obj.Name())
		}
	}
	// Conversion between string and []byte/[]rune copies.
	if len(call.Args) == 1 {
		if to, ok := info.Types[call.Fun]; ok && to.IsType() {
			from := info.TypeOf(call.Args[0])
			if from != nil && isStringBytesConv(to.Type, from) {
				rep.reportf(call.Pos(), "hotpath: %s conversion copies", types.TypeString(to.Type, types.RelativeTo(pass.Pkg)))
			}
		}
	}
}

func isStringBytesConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}

// checkReturnBoxing flags returns whose result slot is an interface
// fed a concrete value — boxing the enclosing function's return path.
func checkReturnBoxing(pass *analysis.Pass, rep *reporter, sig *types.Signature, ret *ast.ReturnStmt) {
	if sig == nil {
		return
	}
	results := sig.Results()
	if results.Len() != len(ret.Results) {
		return // naked return or tuple-splitting call; nothing to pair up
	}
	for i, e := range ret.Results {
		flagIfaceConv(pass, rep, e, results.At(i).Type())
	}
}

// flagIfaceConv reports e if assigning it to type to boxes a concrete
// value into an interface.
func flagIfaceConv(pass *analysis.Pass, rep *reporter, e ast.Expr, to types.Type) {
	if e == nil || to == nil || !types.IsInterface(to) {
		return
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || types.IsInterface(tv.Type) || tv.IsNil() {
		return
	}
	rep.reportf(e.Pos(), "hotpath: implicit conversion of %s to interface %s allocates",
		types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)),
		types.TypeString(to, types.RelativeTo(pass.Pkg)))
}

// checkIfaceConv flags implicit concrete-to-interface conversions in
// call arguments and assignments — each one boxes its operand.
func checkIfaceConv(pass *analysis.Pass, rep *reporter, n ast.Node) {
	info := pass.TypesInfo
	switch n := n.(type) {
	case *ast.CallExpr:
		sig, ok := info.TypeOf(n.Fun).(*types.Signature)
		if !ok {
			return // conversion or builtin; builtins like append don't box
		}
		params := sig.Params()
		for i, arg := range n.Args {
			var pt types.Type
			if sig.Variadic() && i >= params.Len()-1 {
				if n.Ellipsis.IsValid() {
					continue // passing a slice through ... doesn't box per element
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			} else if i < params.Len() {
				pt = params.At(i).Type()
			}
			flagIfaceConv(pass, rep, arg, pt)
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Lhs {
			flagIfaceConv(pass, rep, n.Rhs[i], info.TypeOf(n.Lhs[i]))
		}
	}
}
