package lint

// Mutation-style guards for the concurrency-protocol analyzers: each
// test verifies real (or real-shaped) source clean, injects the exact
// bug class the analyzer exists for, and demands the finding. A suite
// that only blesses today's code proves nothing about tomorrow's
// sharding work; these tests prove the analyzers bite.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestLockOrderMutationGuard loads the REAL resilience supervisor
// source, verifies it clean, then appends two functions acquiring
// Supervisor.mu and an auxiliary mutex in opposite orders — the
// textbook deadlock — and demands elsalockorder report the cycle.
func TestLockOrderMutationGuard(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "resilience", "resilience.go"))
	if err != nil {
		t.Fatal(err)
	}
	// resilience.go references the Backoff helper; its file rides along
	// unmutated so the single-package fixture typechecks.
	aux, err := os.ReadFile(filepath.Join("..", "resilience", "backoff.go"))
	if err != nil {
		t.Fatal(err)
	}
	load := func(main string) *fixture {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "sess.go"), []byte(main), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "backoff.go"), aux, 0o644); err != nil {
			t.Fatal(err)
		}
		return loadFixture(t, dir)
	}

	// Control: the shipped supervisor has a consistent lock order.
	if diags := runAnalyzers(t, load(string(src)), []*analysis.Analyzer{LockOrderAnalyzer}); len(diags) != 0 {
		t.Fatalf("control (real resilience.go) should be clean, got: %v", diags)
	}

	// Mutant: a second mutex taken in both orders relative to s.mu.
	mutant := string(src) + `
var mutAux sync.Mutex

func (s *Supervisor) mutForward() {
	s.mu.Lock()
	mutAux.Lock()
	mutAux.Unlock()
	s.mu.Unlock()
}

func (s *Supervisor) mutReverse() {
	mutAux.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	mutAux.Unlock()
}
`
	diags := runAnalyzers(t, load(mutant), []*analysis.Analyzer{LockOrderAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("mutant should produce exactly one cycle finding, got %d: %v", len(diags), diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "lock-order cycle") ||
		!strings.Contains(msg, "Supervisor.mu") || !strings.Contains(msg, "mutAux") {
		t.Fatalf("finding does not describe the injected cycle: %s", msg)
	}
	if !strings.Contains(msg, "mutForward") || !strings.Contains(msg, "mutReverse") {
		t.Fatalf("finding does not name both acquisition paths: %s", msg)
	}
}

// pipelineShapedTmpl mirrors pipeline.Run's stage layout: buffered
// stage channels, each closed by the annotated goroutine that owns it.
const pipelineShapedTmpl = `package pipeline

import "sync"

func run(n int) []int {
	recCh := make(chan int, 8)
	outCh := make(chan int, 8)
	var wg sync.WaitGroup

	wg.Add(1)
	//elsa:chanowner recCh
	go func() {
		defer wg.Done()
		defer close(recCh)
		for i := 0; i < n; i++ {
			recCh <- i
		}
	}()

	wg.Add(1)
	//elsa:chanowner outCh
	go func() {
		defer wg.Done()
		defer close(outCh)
		for v := range recCh {
			outCh <- v * v
		}
%s	}()

	var out []int
	for v := range outCh {
		out = append(out, v)
	}
	wg.Wait()
	return out
}
`

// TestChanMutationGuard injects a second close of a stage channel into
// the run-shaped control and demands elsachan report the double close.
func TestChanMutationGuard(t *testing.T) {
	clean := fmt.Sprintf(pipelineShapedTmpl, "")
	if diags := runAnalyzers(t, loadSource(t, clean), []*analysis.Analyzer{ChanAnalyzer}); len(diags) != 0 {
		t.Fatalf("control fixture should be clean, got: %v", diags)
	}

	mutant := fmt.Sprintf(pipelineShapedTmpl, "\t\tclose(outCh)\n")
	diags := runAnalyzers(t, loadSource(t, mutant), []*analysis.Analyzer{ChanAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("mutant should produce exactly one finding, got %d: %v", len(diags), diags)
	}
	if msg := diags[0].Message; !strings.Contains(msg, "outCh") || !strings.Contains(msg, "closed more than once") {
		t.Fatalf("finding does not describe the double close: %s", msg)
	}
}

// ingestShapedTmpl mirrors ingest.Source.Next's error path: a reader
// whose drain loop must quarantine or count malformed records.
const ingestShapedTmpl = `package ingest

import (
	"errors"
	"io"
)

var errBad = errors.New("bad record")

type stats struct{ quarantined int }

type reader struct {
	src []int
	pos int
	st  stats
}

func (r *reader) next() (int, error) {
	if r.pos >= len(r.src) {
		return 0, io.EOF
	}
	v := r.src[r.pos]
	r.pos++
	if v < 0 {
		return 0, errBad
	}
	return v, nil
}

func (r *reader) drain() []int {
	var out []int
	for {
		v, err := r.next()
		if err == io.EOF {
			break
		}
		if err != nil {
%s		}
		out = append(out, v)
	}
	return out
}
`

// TestErrFlowMutationGuard replaces the quarantine counter with a bare
// continue — the silently shrinking training set — and demands
// elsaerrflow report the discarded error.
func TestErrFlowMutationGuard(t *testing.T) {
	clean := fmt.Sprintf(ingestShapedTmpl, "\t\t\tr.st.quarantined++\n\t\t\tcontinue\n")
	if diags := runAnalyzers(t, loadSource(t, clean), []*analysis.Analyzer{ErrFlowAnalyzer}); len(diags) != 0 {
		t.Fatalf("control fixture should be clean, got: %v", diags)
	}

	mutant := fmt.Sprintf(ingestShapedTmpl, "\t\t\tcontinue\n")
	diags := runAnalyzers(t, loadSource(t, mutant), []*analysis.Analyzer{ErrFlowAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("mutant should produce exactly one finding, got %d: %v", len(diags), diags)
	}
	if msg := diags[0].Message; !strings.Contains(msg, "neither returns, quarantines, nor counts") {
		t.Fatalf("finding does not describe the swallowed error: %s", msg)
	}
}
