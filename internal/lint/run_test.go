package lint

// A minimal analysistest: golang.org/x/tools/go/analysis/analysistest is
// not vendored, so fixtures are loaded with go/parser + go/types and the
// source importer, analyzers run over a hand-built analysis.Pass with an
// in-memory fact store, and diagnostics are matched against
// // want "regexp" comments — the same convention the real analysistest
// uses. Suggested fixes are carried through on the diagnostics for
// tests that assert on them.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// wantRx extracts the quoted regexps of a `// want "a" "b"` comment.
var wantRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type fixture struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	wants map[string][]*want // "file.go:line" -> expectations
}

type want struct {
	rx      *regexp.Regexp
	matched bool
}

func loadFixture(t *testing.T, dir string) *fixture {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fx := &fixture{fset: token.NewFileSet(), wants: make(map[string][]*want)}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		f, err := parser.ParseFile(fx.fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		fx.files = append(fx.files, f)
		lines := strings.Split(string(src), "\n")
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := fx.fset.Position(c.Pos())
				line := pos.Line
				// A want comment alone on its line states expectations for
				// the line below (needed when the target line's trailing
				// comment is itself under test, e.g. a //nolint directive).
				if line-1 < len(lines) && strings.TrimSpace(lines[line-1]) == strings.TrimSpace(c.Text) {
					line++
				}
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), line)
				for _, m := range wantRx.FindAllStringSubmatch(c.Text[i+len("// want "):], -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					fx.wants[key] = append(fx.wants[key], &want{rx: rx})
				}
			}
		}
	}
	if len(fx.files) == 0 {
		t.Fatalf("fixture dir %s has no go files", dir)
	}
	fx.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fx.fset, "source", nil)}
	pkg, err := conf.Check(fx.files[0].Name.Name, fx.fset, fx.files, fx.info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	fx.pkg = pkg
	return fx
}

// factStore is the harness's in-memory stand-in for the driver's fact
// storage: facts exported by one analyzer are visible to later
// analyzers of the same runAnalyzers call, mirroring how go vet feeds
// facts forward (minus the gob round-trip, covered by its own test).
type factStore struct {
	objs map[types.Object][]analysis.Fact
	pkgs map[*types.Package][]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		objs: make(map[types.Object][]analysis.Fact),
		pkgs: make(map[*types.Package][]analysis.Fact),
	}
}

// set records fact in the slice, replacing an existing fact of the
// same concrete type (the analysis framework's semantics).
func setFact(facts []analysis.Fact, fact analysis.Fact) []analysis.Fact {
	t := reflect.TypeOf(fact)
	for i, f := range facts {
		if reflect.TypeOf(f) == t {
			facts[i] = fact
			return facts
		}
	}
	return append(facts, fact)
}

// get copies a stored fact of fact's concrete type into fact.
func getFact(facts []analysis.Fact, fact analysis.Fact) bool {
	t := reflect.TypeOf(fact)
	for _, f := range facts {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// runAnalyzers executes the analyzers over a loaded fixture, collecting
// diagnostics and threading facts between them.
func runAnalyzers(t *testing.T, fx *fixture, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	store := newFactStore()
	results := map[*analysis.Analyzer]interface{}{
		inspect.Analyzer: inspector.New(fx.files),
	}
	for _, a := range analyzers {
		for _, req := range a.Requires {
			if _, ok := results[req]; !ok {
				t.Fatalf("analyzer %s requires %s, which this harness does not provide", a.Name, req.Name)
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fx.fset,
			Files:      fx.files,
			Pkg:        fx.pkg,
			TypesInfo:  fx.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				store.objs[obj] = setFact(store.objs[obj], fact)
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				return getFact(store.objs[obj], fact)
			},
			ExportPackageFact: func(fact analysis.Fact) {
				store.pkgs[fx.pkg] = setFact(store.pkgs[fx.pkg], fact)
			},
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
				return getFact(store.pkgs[pkg], fact)
			},
			AllObjectFacts:  func() []analysis.ObjectFact { return nil },
			AllPackageFacts: func() []analysis.PackageFact { return nil },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}
	return diags
}

// runOn loads the fixture at testdata/<dir> and runs the analyzers over
// it, checking every diagnostic against the // want comments.
func runOn(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fx := loadFixture(t, filepath.Join("testdata", dir))
	diags := runAnalyzers(t, fx, analyzers)

	// Index diagnostics by line so unmatched wants can say what WAS
	// reported there — the difference between "tweak the regexp" and
	// "rerun under a debugger".
	got := make(map[string][]string)
	var problems []string
	for _, d := range diags {
		pos := fx.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		got[key] = append(got[key], d.Message)
		found := false
		for _, w := range fx.wants[key] {
			if w.rx.MatchString(d.Message) {
				w.matched, found = true, true
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("%s: unexpected diagnostic: %s", key, d.Message))
		}
	}
	for key, ws := range fx.wants {
		for _, w := range ws {
			if w.matched {
				continue
			}
			detail := "no diagnostics on this line"
			if msgs := got[key]; len(msgs) > 0 {
				detail = "diagnostics on this line: " + strings.Join(msgs, " | ")
			}
			problems = append(problems, fmt.Sprintf("%s: expected diagnostic matching %q, got none (%s)", key, w.rx, detail))
		}
	}
	sort.Strings(problems)
	for _, p := range problems {
		t.Error(p)
	}
}

func TestHotPath(t *testing.T)     { runOn(t, "hotpath", HotPathAnalyzer) }
func TestAlloc(t *testing.T)       { runOn(t, "alloc", AllocAnalyzer) }
func TestSnapshot(t *testing.T)    { runOn(t, "snapshotfix", SnapshotAnalyzer) }
func TestAtomic(t *testing.T)      { runOn(t, "atomicmix", AtomicAnalyzer) }
func TestDeterminism(t *testing.T) { runOn(t, "determinism", DeterminismAnalyzer) }
func TestCtxFlow(t *testing.T)     { runOn(t, "ctxflow", CtxFlowAnalyzer) }
func TestLockSafe(t *testing.T)    { runOn(t, "locksafe", LockSafeAnalyzer) }
func TestChanFlow(t *testing.T)    { runOn(t, "chanflow", ChanAnalyzer) }
func TestLockOrder(t *testing.T)   { runOn(t, "lockorder", LockOrderAnalyzer) }
func TestErrFlow(t *testing.T)     { runOn(t, "errflow", ErrFlowAnalyzer) }
func TestState(t *testing.T)       { runOn(t, "state", StateAnalyzer) }
func TestDetFlow(t *testing.T)     { runOn(t, "detflow", DetFlowAnalyzer) }
func TestNolint(t *testing.T) {
	// The nolint fixture exercises suppression end to end: the package is
	// named sig so elsadeterminism applies, and the audit analyzer runs
	// alongside to flag malformed directives.
	runOn(t, "nolint", DeterminismAnalyzer, NolintAnalyzer)
}

func TestParseNolint(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		names  []string
		reason string
	}{
		{"//nolint:elsahotpath // grows once", true, []string{"elsahotpath"}, "grows once"},
		{"//nolint:elsa -- blanket, reviewed", true, []string{"elsa"}, "blanket, reviewed"},
		{"//nolint:a,b // r", true, []string{"a", "b"}, "r"},
		{"//nolint:elsahotpath", true, []string{"elsahotpath"}, ""},
		{"// ordinary comment", false, nil, ""},
	}
	for _, c := range cases {
		e, ok := parseNolint(c.text)
		if ok != c.ok {
			t.Errorf("parseNolint(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if e.reason != c.reason {
			t.Errorf("parseNolint(%q) reason = %q, want %q", c.text, e.reason, c.reason)
		}
		if fmt.Sprint(e.names) != fmt.Sprint(c.names) {
			t.Errorf("parseNolint(%q) names = %v, want %v", c.text, e.names, c.names)
		}
	}
}
