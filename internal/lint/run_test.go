package lint

// A minimal analysistest: golang.org/x/tools/go/analysis/analysistest is
// not vendored, so fixtures are loaded with go/parser + go/types and the
// source importer, analyzers run over a hand-built analysis.Pass, and
// diagnostics are matched against // want "regexp" comments — the same
// convention the real analysistest uses, minus facts and suggested
// fixes, which this suite does not employ.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// wantRx extracts the quoted regexps of a `// want "a" "b"` comment.
var wantRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type fixture struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	wants map[string][]*want // "file.go:line" -> expectations
}

type want struct {
	rx      *regexp.Regexp
	matched bool
}

func loadFixture(t *testing.T, dir string) *fixture {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fx := &fixture{fset: token.NewFileSet(), wants: make(map[string][]*want)}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		f, err := parser.ParseFile(fx.fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		fx.files = append(fx.files, f)
		lines := strings.Split(string(src), "\n")
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := fx.fset.Position(c.Pos())
				line := pos.Line
				// A want comment alone on its line states expectations for
				// the line below (needed when the target line's trailing
				// comment is itself under test, e.g. a //nolint directive).
				if line-1 < len(lines) && strings.TrimSpace(lines[line-1]) == strings.TrimSpace(c.Text) {
					line++
				}
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), line)
				for _, m := range wantRx.FindAllStringSubmatch(c.Text[i+len("// want "):], -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					fx.wants[key] = append(fx.wants[key], &want{rx: rx})
				}
			}
		}
	}
	if len(fx.files) == 0 {
		t.Fatalf("fixture dir %s has no go files", dir)
	}
	fx.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fx.fset, "source", nil)}
	pkg, err := conf.Check(fx.files[0].Name.Name, fx.fset, fx.files, fx.info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	fx.pkg = pkg
	return fx
}

// runOn loads the fixture at testdata/<dir> and runs the analyzers over
// it, checking every diagnostic against the // want comments.
func runOn(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fx := loadFixture(t, filepath.Join("testdata", dir))

	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]interface{}{
		inspect.Analyzer: inspector.New(fx.files),
	}
	for _, a := range analyzers {
		for _, req := range a.Requires {
			if _, ok := results[req]; !ok {
				t.Fatalf("analyzer %s requires %s, which this harness does not provide", a.Name, req.Name)
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fx.fset,
			Files:      fx.files,
			Pkg:        fx.pkg,
			TypesInfo:  fx.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}

	var problems []string
	for _, d := range diags {
		pos := fx.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		found := false
		for _, w := range fx.wants[key] {
			if w.rx.MatchString(d.Message) {
				w.matched, found = true, true
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("%s: unexpected diagnostic: %s", key, d.Message))
		}
	}
	for key, ws := range fx.wants {
		for _, w := range ws {
			if !w.matched {
				problems = append(problems, fmt.Sprintf("%s: expected diagnostic matching %q, got none", key, w.rx))
			}
		}
	}
	sort.Strings(problems)
	for _, p := range problems {
		t.Error(p)
	}
}

func TestHotPath(t *testing.T)     { runOn(t, "hotpath", HotPathAnalyzer) }
func TestDeterminism(t *testing.T) { runOn(t, "determinism", DeterminismAnalyzer) }
func TestCtxFlow(t *testing.T)     { runOn(t, "ctxflow", CtxFlowAnalyzer) }
func TestLockSafe(t *testing.T)    { runOn(t, "locksafe", LockSafeAnalyzer) }
func TestNolint(t *testing.T) {
	// The nolint fixture exercises suppression end to end: the package is
	// named sig so elsadeterminism applies, and the audit analyzer runs
	// alongside to flag malformed directives.
	runOn(t, "nolint", DeterminismAnalyzer, NolintAnalyzer)
}

func TestParseNolint(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		names  []string
		reason string
	}{
		{"//nolint:elsahotpath // grows once", true, []string{"elsahotpath"}, "grows once"},
		{"//nolint:elsa -- blanket, reviewed", true, []string{"elsa"}, "blanket, reviewed"},
		{"//nolint:a,b // r", true, []string{"a", "b"}, "r"},
		{"//nolint:elsahotpath", true, []string{"elsahotpath"}, ""},
		{"// ordinary comment", false, nil, ""},
	}
	for _, c := range cases {
		e, ok := parseNolint(c.text)
		if ok != c.ok {
			t.Errorf("parseNolint(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if e.reason != c.reason {
			t.Errorf("parseNolint(%q) reason = %q, want %q", c.text, e.reason, c.reason)
		}
		if fmt.Sprint(e.names) != fmt.Sprint(c.names) {
			t.Errorf("parseNolint(%q) names = %v, want %v", c.text, e.names, c.names)
		}
	}
}
