package lint

// state.go is the typestate layer of the analysis stack: where
// elsachan verifies the one hard-coded protocol every channel shares
// (closed is terminal, sends must precede it), elsastate verifies
// protocols the code declares for itself. A type states its lifecycle:
//
//	//elsa:state open closed
//	type Session struct{ ... }
//
// and its methods declare how calls move values through it:
//
//	//elsa:transition open->closed closed->closed
//	func (s *Session) Close() *Result { ... }
//
//	//elsa:requires open
//	func (s *Session) Feed(rec Record) ([]Prediction, error) { ... }
//
// The checker is a may-state abstract interpreter in the elsachan
// shape: per function, each tracked value (ident or rooted field path)
// carries the set of states it may be in; branches fork and
// union-merge; a //elsa:requires violated by any member of the set, or
// a //elsa:transition with no edge from a member, is reported.
//
// Interpretation choices, tuned so the unmutated repo proves clean:
//
//   - Values start unconstrained: a parameter or field may arrive in
//     any state, and the checker only enforces ordering established
//     *within* the function (exactly how elsachan assumes parameters
//     un-closed). A composite literal (&T{...}) is the one exception:
//     it is provably fresh, so it starts in the protocol's initial
//     state — the first state listed in //elsa:state.
//   - Passing a tracked value as a call argument resets it to
//     unconstrained: the callee is checked separately, on its own
//     parameter.
//   - Unannotated methods of a protocol type are observers: they keep
//     the state. The annotation set IS the transition surface.
//   - Loop bodies are interpreted once, not twice: a worker loop that
//     dispatches Close in one switch arm and Feed in another (the
//     fleet incarnation loop) is protocol-correct per iteration, and a
//     twice-walk would merge the arms across iterations into a false
//     Feed-after-Close. Cross-iteration misuse is the runtime typed
//     ErrClosed guard's job; the static layer proves the code shape.
//   - return/break/continue terminate their path: the idempotent-Close
//     early-return shape (`if closed { return }`) must not leak its
//     terminal state into the fall-through.
//   - defer and go bodies are checked against the state at
//     registration and never advance the outer walk (the elsachan
//     rule), so `defer mon.Close()` above a feed loop stays clean.
//
// Cross-package composition: each annotated type exports a StateFact on
// its *types.TypeName, so fleet code calling elsa.Monitor methods is
// checked against the protocol the root package declared — the same
// fact channel AllocFreeFact and LockGraphFact ride. Interface types
// carry protocols too (directives on the interface's method docs), so
// ingest.Backend constrains every call through the interface.
//
// Test files are exempt: the tests that prove ErrClosed surfaces at
// runtime deliberately Feed after Close.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const (
	stateDirective      = "//elsa:state"
	transitionDirective = "//elsa:transition"
	requiresDirective   = "//elsa:requires"
)

// StateAnalyzer verifies annotation-declared typestate protocols.
var StateAnalyzer = &analysis.Analyzer{
	Name: "elsastate",
	Doc: "verify //elsa:state lifecycle protocols: every call to a //elsa:requires or " +
		"//elsa:transition method must be legal in every state the receiver may be in",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*StateFact)(nil)},
	Run:       runState,
}

// StateTransition is one declared from->to edge.
type StateTransition struct {
	From, To string
}

// StateMethodFact is one method's protocol surface.
type StateMethodFact struct {
	Name        string
	Requires    []string
	Transitions []StateTransition
}

// StateFact is the gob-exported protocol of an annotated type,
// attached to its *types.TypeName so importing packages are checked
// against the same lifecycle the defining package declared.
type StateFact struct {
	States  []string // declared order; States[0] is the initial state
	Methods []StateMethodFact
}

func (*StateFact) AFact() {}

func (f *StateFact) String() string {
	var b strings.Builder
	b.WriteString("states(")
	b.WriteString(strings.Join(f.States, " "))
	b.WriteString(")")
	for _, m := range f.Methods {
		b.WriteString(" ")
		b.WriteString(m.Name)
		if len(m.Requires) > 0 {
			fmt.Fprintf(&b, " requires %s", strings.Join(m.Requires, ","))
		}
		for _, tr := range m.Transitions {
			fmt.Fprintf(&b, " %s->%s", tr.From, tr.To)
		}
	}
	return b.String()
}

// stateMethod is the in-memory protocol entry for one method.
type stateMethod struct {
	name        string
	requires    map[string]bool
	transitions map[string][]string // from -> targets
	anyTarget   []string            // union of all targets, for unconstrained receivers
}

// stateProto is one type's protocol.
type stateProto struct {
	typeName string
	states   []string
	stateSet map[string]bool
	methods  map[string]*stateMethod
}

func (p *stateProto) initial() string { return p.states[0] }

// protoFromFact rebuilds a checkable protocol from an imported fact.
func protoFromFact(name string, f *StateFact) *stateProto {
	p := &stateProto{
		typeName: name,
		states:   f.States,
		stateSet: make(map[string]bool, len(f.States)),
		methods:  make(map[string]*stateMethod),
	}
	for _, s := range f.States {
		p.stateSet[s] = true
	}
	for _, m := range f.Methods {
		sm := &stateMethod{name: m.Name, requires: make(map[string]bool), transitions: make(map[string][]string)}
		for _, r := range m.Requires {
			sm.requires[r] = true
		}
		for _, tr := range m.Transitions {
			sm.transitions[tr.From] = append(sm.transitions[tr.From], tr.To)
			sm.anyTarget = appendUnique(sm.anyTarget, tr.To)
		}
		p.methods[m.Name] = sm
	}
	return p
}

func appendUnique(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	return append(list, s)
}

// stateChecker holds the per-pass protocol registry.
type stateChecker struct {
	pass   *analysis.Pass
	rep    *reporter
	local  map[*types.TypeName]*stateProto
	cached map[*types.TypeName]*stateProto // imported (or negative-cached nil)
}

func runState(pass *analysis.Pass) (interface{}, error) {
	rep := newReporter(pass)
	ck := &stateChecker{
		pass:   pass,
		rep:    rep,
		local:  make(map[*types.TypeName]*stateProto),
		cached: make(map[*types.TypeName]*stateProto),
	}
	ck.collectProtos()
	ck.exportFacts()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || inTestFile(pass.Fset, fn.Pos()) {
			return
		}
		sf := &stateFunc{
			ck:     ck,
			cells:  make(map[types.Object]*stateCell),
			fields: make(map[string]*stateCell),
		}
		sf.walk(fn.Body.List, make(stateTable))
	})
	return nil, nil
}

// collectProtos scans the package's type and method declarations for
// //elsa:state, //elsa:transition and //elsa:requires directives.
func (ck *stateChecker) collectProtos() {
	// Pass 1: types. The directive may sit on the GenDecl (the common
	// single-spec form) or on the TypeSpec itself.
	for _, f := range ck.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				arg, ok := directiveArg(doc, stateDirective)
				if !ok {
					continue
				}
				states := splitNames(arg)
				if len(states) < 2 {
					ck.rep.reportf(ts.Pos(), "state: //elsa:state on %s needs at least two states, got %q", ts.Name.Name, arg)
					continue
				}
				obj, ok := ck.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				p := &stateProto{
					typeName: ts.Name.Name,
					states:   states,
					stateSet: make(map[string]bool, len(states)),
					methods:  make(map[string]*stateMethod),
				}
				for _, s := range states {
					p.stateSet[s] = true
				}
				ck.local[obj] = p
				// Interface protocols annotate the method docs inside the
				// interface literal, since interfaces have no FuncDecls.
				if it, ok := ts.Type.(*ast.InterfaceType); ok {
					for _, m := range it.Methods.List {
						for _, name := range m.Names {
							ck.addMethodDirectives(p, name.Name, m.Doc)
						}
					}
				}
			}
		}
	}
	// Pass 2: methods with receivers of an annotated type.
	for _, f := range ck.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			hasAnno := hasDirective(fd.Doc, transitionDirective) || hasDirective(fd.Doc, requiresDirective)
			if !hasAnno {
				continue
			}
			p := ck.recvProto(fd)
			if p == nil {
				ck.rep.reportf(fd.Pos(), "state: method %s declares //elsa:transition or //elsa:requires but its receiver type has no //elsa:state protocol", fd.Name.Name)
				continue
			}
			ck.addMethodDirectives(p, fd.Name.Name, fd.Doc)
		}
	}
}

// recvProto resolves a method's receiver base type to a local protocol.
func (ck *stateChecker) recvProto(fd *ast.FuncDecl) *stateProto {
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				if obj, ok := ck.pass.TypesInfo.Uses[id].(*types.TypeName); ok {
					return ck.local[obj]
				}
			}
			return nil
		}
	}
}

// addMethodDirectives parses the //elsa:transition and //elsa:requires
// lines of one method doc into the protocol, validating state names.
func (ck *stateChecker) addMethodDirectives(p *stateProto, name string, doc *ast.CommentGroup) {
	if doc == nil {
		return
	}
	m := p.methods[name]
	ensure := func() *stateMethod {
		if m == nil {
			m = &stateMethod{name: name, requires: make(map[string]bool), transitions: make(map[string][]string)}
			p.methods[name] = m
		}
		return m
	}
	for _, c := range doc.List {
		if arg, ok := directiveText(c.Text, transitionDirective); ok {
			for _, pair := range splitNames(arg) {
				from, to, found := strings.Cut(pair, "->")
				if !found || from == "" || to == "" {
					ck.rep.reportf(c.Pos(), "state: malformed transition %q on %s.%s; want from->to", pair, p.typeName, name)
					continue
				}
				if !p.stateSet[from] || !p.stateSet[to] {
					ck.rep.reportf(c.Pos(), "state: transition %s->%s on %s.%s names a state outside //elsa:state %s",
						from, to, p.typeName, name, strings.Join(p.states, " "))
					continue
				}
				mm := ensure()
				mm.transitions[from] = append(mm.transitions[from], to)
				mm.anyTarget = appendUnique(mm.anyTarget, to)
			}
		}
		if arg, ok := directiveText(c.Text, requiresDirective); ok {
			for _, s := range splitNames(arg) {
				if !p.stateSet[s] {
					ck.rep.reportf(c.Pos(), "state: //elsa:requires %s on %s.%s names a state outside //elsa:state %s",
						s, p.typeName, name, strings.Join(p.states, " "))
					continue
				}
				ensure().requires[s] = true
			}
		}
	}
}

// exportFacts publishes every local protocol on its TypeName.
func (ck *stateChecker) exportFacts() {
	objs := make([]*types.TypeName, 0, len(ck.local))
	for obj := range ck.local {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		p := ck.local[obj]
		f := &StateFact{States: p.states}
		names := make([]string, 0, len(p.methods))
		for n := range p.methods {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m := p.methods[n]
			mf := StateMethodFact{Name: n}
			for r := range m.requires {
				mf.Requires = append(mf.Requires, r)
			}
			sort.Strings(mf.Requires)
			froms := make([]string, 0, len(m.transitions))
			for from := range m.transitions {
				froms = append(froms, from)
			}
			sort.Strings(froms)
			for _, from := range froms {
				for _, to := range m.transitions[from] {
					mf.Transitions = append(mf.Transitions, StateTransition{From: from, To: to})
				}
			}
			f.Methods = append(f.Methods, mf)
		}
		ck.pass.ExportObjectFact(obj, f)
	}
}

// protoFor resolves the protocol governing a receiver type: pointers
// are stripped, local types hit the registry, imported types go
// through the fact store. Returns nil for unannotated types.
func (ck *stateChecker) protoFor(t types.Type) *stateProto {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == ck.pass.Pkg {
		return ck.local[obj]
	}
	if p, ok := ck.cached[obj]; ok {
		return p
	}
	var f StateFact
	var p *stateProto
	if ck.pass.ImportObjectFact(obj, &f) {
		p = protoFromFact(obj.Name(), &f)
	}
	ck.cached[obj] = p
	return p
}

// stateCell is one tracked value inside a function.
type stateCell struct {
	name  string
	proto *stateProto
}

// stateSet is the may-state of one cell: the states the value may have
// been moved into on some path, each with the position that entered
// it. vague adds "and possibly states this function has not observed"
// — the unconstrained component every value starts with.
type stateSet struct {
	may   map[string]token.Pos
	vague bool
}

func (ss *stateSet) clone() *stateSet {
	out := &stateSet{may: make(map[string]token.Pos, len(ss.may)), vague: ss.vague}
	for k, v := range ss.may {
		out.may[k] = v
	}
	return out
}

// stateTable maps tracked cells to their current may-state. A cell
// absent from the table is fully unconstrained (vague, no observed
// states).
type stateTable map[*stateCell]*stateSet

func copyTable(tbl stateTable) stateTable {
	out := make(stateTable, len(tbl))
	for c, ss := range tbl {
		out[c] = ss.clone()
	}
	return out
}

// mergeTable unions src into dst (branch join).
func mergeTable(dst, src stateTable) {
	for c, ss := range src {
		d, ok := dst[c]
		if !ok {
			merged := ss.clone()
			merged.vague = true // absent in dst = unconstrained there
			dst[c] = merged
			continue
		}
		for s, pos := range ss.may {
			if _, have := d.may[s]; !have {
				d.may[s] = pos
			}
		}
		d.vague = d.vague || ss.vague
	}
	for c, d := range dst {
		if _, ok := src[c]; !ok {
			d.vague = true // absent in src = unconstrained there
		}
	}
}

// assignTable replaces dst's contents with src's.
func assignTable(dst, src stateTable) {
	for c := range dst {
		delete(dst, c)
	}
	for c, ss := range src {
		dst[c] = ss
	}
}

// stateFunc is the per-function interpreter.
type stateFunc struct {
	ck     *stateChecker
	cells  map[types.Object]*stateCell
	fields map[string]*stateCell
}

// cellFor resolves an expression of a protocol type to its cell.
func (sf *stateFunc) cellFor(e ast.Expr) *stateCell {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	t := sf.ck.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return nil
	}
	proto := sf.ck.protoFor(t)
	if proto == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := objOf(sf.ck.pass.TypesInfo, x)
		if obj == nil {
			return nil
		}
		if c, ok := sf.cells[obj]; ok {
			return c
		}
		c := &stateCell{name: x.Name, proto: proto}
		sf.cells[obj] = c
		return c
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		root := rootString(x)
		if root == "" {
			return nil
		}
		if c, ok := sf.fields[root]; ok {
			return c
		}
		c := &stateCell{name: root, proto: proto}
		sf.fields[root] = c
		return c
	}
	return nil
}

// walk interprets a statement list; reports true when the path
// terminates (return, branch) so callers drop it from the merge.
func (sf *stateFunc) walk(stmts []ast.Stmt, tbl stateTable) bool {
	for _, s := range stmts {
		if sf.stmt(s, tbl) {
			return true
		}
	}
	return false
}

func (sf *stateFunc) stmt(s ast.Stmt, tbl stateTable) bool {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		return sf.walk(s.List, tbl)
	case *ast.ExprStmt:
		sf.expr(s.X, tbl)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			sf.expr(r, tbl)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto end this linear path; the state they carry
		// out is intentionally dropped (may-analysis underapproximation
		// in exchange for the idempotent-early-return shape staying
		// clean).
		return true
	case *ast.AssignStmt:
		sf.assign(s, tbl)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sf.expr(v, tbl)
					}
					for i, name := range vs.Names {
						if cell := sf.cellFor(name); cell != nil {
							if len(vs.Values) == len(vs.Names) && isCompositeLit(vs.Values[i]) {
								tbl[cell] = freshState(cell, vs.Names[i].Pos())
							} else {
								delete(tbl, cell)
							}
						}
					}
				}
			}
		}
	case *ast.IncDecStmt:
		sf.expr(s.X, tbl)
	case *ast.SendStmt:
		sf.expr(s.Chan, tbl)
		sf.expr(s.Value, tbl)
	case *ast.DeferStmt:
		// The deferred body runs at exit: check it against the state at
		// registration, without advancing the outer walk.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sf.walk(lit.Body.List, copyTable(tbl))
		}
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sf.walk(lit.Body.List, copyTable(tbl))
		} else if cell := sf.callReceiverCell(s.Call); cell != nil {
			// `go mon.Close()` races the rest of the function: the cell's
			// state is unknown from here on.
			delete(tbl, cell)
		}
	case *ast.IfStmt:
		sf.stmt(s.Init, tbl)
		sf.expr(s.Cond, tbl)
		then := copyTable(tbl)
		tTerm := sf.stmt(s.Body, then)
		if s.Else != nil {
			els := copyTable(tbl)
			eTerm := sf.stmt(s.Else, els)
			switch {
			case tTerm && eTerm:
				return true
			case tTerm:
				assignTable(tbl, els)
			case eTerm:
				assignTable(tbl, then)
			default:
				mergeTable(then, els)
				assignTable(tbl, then)
			}
		} else if !tTerm {
			mergeTable(tbl, then)
		}
	case *ast.ForStmt:
		sf.stmt(s.Init, tbl)
		if s.Cond != nil {
			sf.expr(s.Cond, tbl)
		}
		body := copyTable(tbl)
		if !sf.stmt(s.Body, body) {
			sf.stmt(s.Post, body)
		}
		mergeTable(tbl, body)
	case *ast.RangeStmt:
		sf.expr(s.X, tbl)
		body := copyTable(tbl)
		sf.stmt(s.Body, body)
		mergeTable(tbl, body)
	case *ast.SwitchStmt:
		sf.stmt(s.Init, tbl)
		if s.Tag != nil {
			sf.expr(s.Tag, tbl)
		}
		return sf.arms(armBodies(s.Body, nil), hasDefaultClause(s.Body), tbl)
	case *ast.TypeSwitchStmt:
		sf.stmt(s.Init, tbl)
		sf.stmt(s.Assign, tbl)
		return sf.arms(armBodies(s.Body, nil), hasDefaultClause(s.Body), tbl)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			var arm []ast.Stmt
			if cc.Comm != nil {
				arm = append(arm, cc.Comm)
			}
			arm = append(arm, cc.Body...)
			bodies = append(bodies, arm)
		}
		// A select with no default blocks until some arm runs: if every
		// arm terminates, so does the select.
		return sf.arms(bodies, hasDefaultClause(s.Body), tbl)
	case *ast.LabeledStmt:
		return sf.stmt(s.Stmt, tbl)
	}
	return false
}

// armBodies flattens case clauses into per-arm statement lists.
func armBodies(body *ast.BlockStmt, extra [][]ast.Stmt) [][]ast.Stmt {
	out := extra
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				return true
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				return true
			}
		}
	}
	return false
}

// arms interprets each arm from the pre-state and union-merges the
// non-terminated results. Exhaustive arms (a default exists) where
// every arm terminates end the path.
func (sf *stateFunc) arms(bodies [][]ast.Stmt, exhaustive bool, tbl stateTable) bool {
	var merged stateTable
	allTerm := len(bodies) > 0
	for _, b := range bodies {
		arm := copyTable(tbl)
		if sf.walk(b, arm) {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = arm
		} else {
			mergeTable(merged, arm)
		}
	}
	if allTerm && exhaustive {
		return true
	}
	if merged != nil {
		if exhaustive {
			// Some arm always runs: the pre-state does not fall through.
			assignTable(tbl, merged)
		} else {
			mergeTable(tbl, merged)
		}
	}
	return false
}

// assign interprets one assignment: RHS effects first, then LHS cells
// reset (fresh composite literals start in the initial state, anything
// else is unconstrained).
func (sf *stateFunc) assign(s *ast.AssignStmt, tbl stateTable) {
	for _, r := range s.Rhs {
		sf.expr(r, tbl)
	}
	for i, l := range s.Lhs {
		cell := sf.cellFor(l)
		if cell == nil {
			continue
		}
		if len(s.Rhs) == len(s.Lhs) && isCompositeLit(s.Rhs[i]) {
			tbl[cell] = freshState(cell, s.Pos())
		} else {
			delete(tbl, cell)
		}
	}
}

// isCompositeLit reports whether e is (a pointer to) a composite
// literal — a provably fresh value.
func isCompositeLit(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}

func freshState(cell *stateCell, pos token.Pos) *stateSet {
	return &stateSet{may: map[string]token.Pos{cell.proto.initial(): pos}}
}

// expr interprets an expression for its call effects.
func (sf *stateFunc) expr(e ast.Expr, tbl stateTable) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			sf.expr(sel.X, tbl)
		} else {
			sf.expr(e.Fun, tbl)
		}
		for _, a := range e.Args {
			if lit, ok := a.(*ast.FuncLit); ok {
				// A closure argument may run synchronously inside the callee
				// (resilience.Supervisor.Do): interpret it as a may-executed
				// branch.
				branch := copyTable(tbl)
				sf.walk(lit.Body.List, branch)
				mergeTable(tbl, branch)
				continue
			}
			sf.expr(a, tbl)
		}
		sf.applyCall(e, tbl)
	case *ast.FuncLit:
		// A literal bound to a variable may run at any later point:
		// check its body against the registration state, no merge.
		sf.walk(e.Body.List, copyTable(tbl))
	case *ast.ParenExpr:
		sf.expr(e.X, tbl)
	case *ast.UnaryExpr:
		sf.expr(e.X, tbl)
	case *ast.StarExpr:
		sf.expr(e.X, tbl)
	case *ast.BinaryExpr:
		sf.expr(e.X, tbl)
		sf.expr(e.Y, tbl)
	case *ast.IndexExpr:
		sf.expr(e.X, tbl)
		sf.expr(e.Index, tbl)
	case *ast.SliceExpr:
		sf.expr(e.X, tbl)
		sf.expr(e.Low, tbl)
		sf.expr(e.High, tbl)
		sf.expr(e.Max, tbl)
	case *ast.TypeAssertExpr:
		sf.expr(e.X, tbl)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			sf.expr(el, tbl)
		}
	case *ast.KeyValueExpr:
		sf.expr(e.Value, tbl)
	}
}

// callReceiverCell resolves a method call's receiver cell, if tracked.
func (sf *stateFunc) callReceiverCell(call *ast.CallExpr) *stateCell {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, isSel := sf.ck.pass.TypesInfo.Selections[sel]; !isSel || s.Kind() != types.MethodVal {
		return nil
	}
	return sf.cellFor(sel.X)
}

// applyCall checks a call against the protocol and advances state.
func (sf *stateFunc) applyCall(call *ast.CallExpr, tbl stateTable) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := sf.ck.pass.TypesInfo.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			if proto := sf.ck.protoFor(s.Recv()); proto != nil {
				if m := proto.methods[sel.Sel.Name]; m != nil {
					if cell := sf.cellFor(sel.X); cell != nil {
						sf.applyMethod(call, cell, m, tbl)
					}
				}
				// Unannotated methods of a protocol type are observers:
				// the annotation set is the full transition surface.
				sf.resetArgs(call, tbl)
				return
			}
		}
	}
	sf.resetArgs(call, tbl)
}

// resetArgs drops tracked cells passed as call arguments back to
// unconstrained: the callee is checked on its own parameters.
func (sf *stateFunc) resetArgs(call *ast.CallExpr, tbl stateTable) {
	for _, a := range call.Args {
		if cell := sf.cellFor(a); cell != nil {
			delete(tbl, cell)
		}
	}
}

// applyMethod enforces requires and applies transitions for one call.
func (sf *stateFunc) applyMethod(call *ast.CallExpr, cell *stateCell, m *stateMethod, tbl stateTable) {
	ss, tracked := tbl[cell]
	if !tracked {
		// Unconstrained receiver: requires cannot be judged; transitions
		// land the value in the union of declared targets.
		if len(m.transitions) > 0 {
			next := &stateSet{may: make(map[string]token.Pos, len(m.anyTarget))}
			for _, to := range m.anyTarget {
				next.may[to] = call.Pos()
			}
			tbl[cell] = next
		}
		return
	}

	states := make([]string, 0, len(ss.may))
	for s := range ss.may {
		states = append(states, s)
	}
	sort.Strings(states)

	if len(m.requires) > 0 {
		var bad []string
		for _, s := range states {
			if !m.requires[s] {
				bad = append(bad, s)
			}
		}
		if len(bad) > 0 {
			reqs := make([]string, 0, len(m.requires))
			for r := range m.requires {
				reqs = append(reqs, r)
			}
			sort.Strings(reqs)
			sf.ck.rep.reportf(call.Pos(), "state: %s.%s requires state %s, but %s may be in state %s (entered at line %d)",
				cell.proto.typeName, m.name, strings.Join(reqs, " or "), cell.name,
				strings.Join(bad, "/"), sf.ck.pass.Fset.Position(ss.may[bad[0]]).Line)
		}
	}

	if len(m.transitions) > 0 {
		next := &stateSet{may: make(map[string]token.Pos)}
		var dead []string
		for _, s := range states {
			targets := m.transitions[s]
			if len(targets) == 0 {
				if len(m.requires) == 0 || m.requires[s] {
					// Only report states the requires check has not already
					// flagged, so one bad call yields one finding.
					dead = append(dead, s)
				}
				continue
			}
			for _, to := range targets {
				if _, ok := next.may[to]; !ok {
					next.may[to] = call.Pos()
				}
			}
		}
		if len(dead) > 0 {
			sf.ck.rep.reportf(call.Pos(), "state: %s.%s has no transition from state %s (%s entered it at line %d); declared: %s",
				cell.proto.typeName, m.name, strings.Join(dead, "/"), cell.name,
				sf.ck.pass.Fset.Position(ss.may[dead[0]]).Line, transitionList(m))
		}
		if ss.vague {
			for _, to := range m.anyTarget {
				if _, ok := next.may[to]; !ok {
					next.may[to] = call.Pos()
				}
			}
		}
		if len(next.may) == 0 {
			delete(tbl, cell) // every path was invalid: recover to unconstrained
		} else {
			tbl[cell] = next
		}
	}
}

// transitionList renders a method's declared transitions for messages.
func transitionList(m *stateMethod) string {
	froms := make([]string, 0, len(m.transitions))
	for from := range m.transitions {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	var parts []string
	for _, from := range froms {
		for _, to := range m.transitions[from] {
			parts = append(parts, from+"->"+to)
		}
	}
	return strings.Join(parts, " ")
}
