package lint

import (
	"fmt"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// fleetShapedTmpl mirrors the fleet's snapshot-handoff succession: a
// monitor protocol (feed/snapshot require open, close is terminal) and
// a handoff that snapshots the live incarnation, closes it, and seeds
// the successor. The %s hole sits after close, where a use-after-close
// mutation lands.
const fleetShapedTmpl = `package fleet

// monitor mirrors the per-shard monitor lifecycle.
//
//elsa:state open closed
type monitor struct {
	preds int
}

//elsa:requires open
func (m *monitor) feed(rec int) int {
	m.preds++
	return rec
}

//elsa:requires open
func (m *monitor) snapshot() []byte {
	return []byte{byte(m.preds)}
}

//elsa:transition open->closed closed->closed
func (m *monitor) close() {}

// handoff drains the tail into the old incarnation, snapshots it,
// retires it, and replays the tail into the successor.
func handoff(tail []int) []int {
	old := &monitor{}
	var out []int
	for _, r := range tail {
		out = append(out, old.feed(r))
	}
	snap := old.snapshot()
	old.close()
%s	next := &monitor{preds: int(snap[0])}
	for _, r := range tail {
		out = append(out, next.feed(r))
	}
	return out
}
`

// TestStateMutationGuard injects a feed into the retired incarnation —
// the lost-update bug the handoff ordering exists to prevent — and
// demands elsastate report the use-after-close.
func TestStateMutationGuard(t *testing.T) {
	clean := fmt.Sprintf(fleetShapedTmpl, "")
	if diags := runAnalyzers(t, loadSource(t, clean), []*analysis.Analyzer{StateAnalyzer}); len(diags) != 0 {
		t.Fatalf("control fixture should be clean, got: %v", diags)
	}

	mutant := fmt.Sprintf(fleetShapedTmpl, "\tout = append(out, old.feed(0))\n")
	diags := runAnalyzers(t, loadSource(t, mutant), []*analysis.Analyzer{StateAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("mutant should produce exactly one finding, got %d: %v", len(diags), diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "monitor.feed requires state open") || !strings.Contains(msg, "closed") {
		t.Fatalf("finding does not describe the feed-after-close: %s", msg)
	}
}

// TestStateAnnotationStripped proves the analyzer is annotation-driven:
// the same use-after-close mutant with every //elsa: directive stripped
// produces no findings — there is no protocol left to verify against.
func TestStateAnnotationStripped(t *testing.T) {
	mutant := fmt.Sprintf(fleetShapedTmpl, "\tout = append(out, old.feed(0))\n")
	stripped := strings.ReplaceAll(mutant, "//elsa:", "// elsa (off): ")
	if diags := runAnalyzers(t, loadSource(t, stripped), []*analysis.Analyzer{StateAnalyzer}); len(diags) != 0 {
		t.Fatalf("stripped-annotation mutant should be silent, got: %v", diags)
	}
}

// mergeShapedTmpl mirrors the fleet coordinator's merge path: per-shard
// batches flattened into the cluster stream by an exported function.
// The %s hole holds the flattening loop — deterministically ordered in
// the control, map-ranged in the mutant.
const mergeShapedTmpl = `package fleet

import "sort"

var _ = sort.Strings // keep the import live in both template variants

type merged struct {
	Shard string
	Seq   int
}

// MergeOrder flattens per-shard batches into the cluster stream.
func MergeOrder(batches map[string][]int) []merged {
	var out []merged
%s	return out
}
`

const mergeSortedLoop = `	names := make([]string, 0, len(batches))
	for name := range batches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, seq := range batches[name] {
			out = append(out, merged{Shard: name, Seq: seq})
		}
	}
`

const mergeMapRangeLoop = `	for name, b := range batches {
		for _, seq := range b {
			out = append(out, merged{Shard: name, Seq: seq})
		}
	}
`

// TestDetFlowMutationGuard replaces the sorted merge loop with a bare
// map range — the classic nondeterministic-replay bug — and demands
// elsadetflow report the ordered elements reaching the exported return.
func TestDetFlowMutationGuard(t *testing.T) {
	clean := fmt.Sprintf(mergeShapedTmpl, mergeSortedLoop)
	if diags := runAnalyzers(t, loadSource(t, clean), []*analysis.Analyzer{DetFlowAnalyzer}); len(diags) != 0 {
		t.Fatalf("control fixture should be clean, got: %v", diags)
	}

	mutant := fmt.Sprintf(mergeShapedTmpl, mergeMapRangeLoop)
	diags := runAnalyzers(t, loadSource(t, mutant), []*analysis.Analyzer{DetFlowAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("mutant should produce exactly one finding, got %d: %v", len(diags), diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "map-iteration-ordered") || !strings.Contains(msg, "exported MergeOrder") {
		t.Fatalf("finding does not describe the unordered merge: %s", msg)
	}
}
