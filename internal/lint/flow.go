package lint

// flow.go is the dataflow layer under elsaalloc: a function-scope
// value-flow (escape) analysis over the typed AST. go/ssa is not
// vendored (the toolchain image carries only the unitchecker slice of
// x/tools), so this builds the same verdicts from first principles: an
// allocation site is harmless exactly when the compiler can prove it
// stack-allocatable, i.e. the value provably never escapes the frame
// and its size is a compile-time constant.
//
// The model is a value graph:
//
//   - a *cell* is a storage node: one per local variable (including
//     parameters) and one per allocation site (make, new, composite
//     literal, &composite, closure literal);
//   - an edge A → B ("B holds A") is added for every assignment,
//     keyed-literal element, range copy or capture that can make B's
//     storage reach A's value;
//   - a *sink* marks a cell escaped: returned, sent on a channel,
//     stored through a pointer or into non-local storage, passed to a
//     call or goroutine, or captured by an escaping closure.
//
// Escape propagates from sinks along reverse edges (if the holder
// escapes, so does everything it holds). The analysis is
// flow-insensitive and conservative: anything it cannot resolve to
// tracked cells is treated as escaping, so "proven local" is sound
// while "escapes" may be a false alarm that a reasoned //nolint
// records.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// allocKind classifies an allocation site.
type allocKind int

const (
	allocMakeSlice allocKind = iota
	allocMakeMap
	allocMakeChan
	allocNew
	allocSliceLit
	allocMapLit
	allocPtrLit // &T{...}
	allocClosure
)

func (k allocKind) String() string {
	switch k {
	case allocMakeSlice:
		return "make([]T)"
	case allocMakeMap:
		return "make(map)"
	case allocMakeChan:
		return "make(chan)"
	case allocNew:
		return "new"
	case allocSliceLit:
		return "slice literal"
	case allocMapLit:
		return "map literal"
	case allocPtrLit:
		return "&composite literal"
	case allocClosure:
		return "closure"
	}
	return "alloc"
}

// maxStackAlloc mirrors the compiler's bound on implicit stack
// allocation of non-escaping values (cmd/compile's maxImplicitStackVarSize).
const maxStackAlloc = 64 << 10

// cell is one storage node of the value graph.
type cell struct {
	obj   types.Object // local variable, nil for allocation sites
	site  *allocSite   // non-nil for allocation-site cells
	label string       // diagnostic name for cells with neither (address-of pointers)

	held []*cell // cells whose values this cell's storage can reach

	// opaque marks a cell that may carry references to storage the
	// analysis cannot see — parameters, receivers, closure parameters,
	// and locals assigned from untracked sources. A write through an
	// opaque cell escapes the written value.
	opaque bool

	escaped bool
	sink    string    // first escape reason, for diagnostics
	sinkPos token.Pos // where the escape happens
}

// allocSite is one allocation expression inside the analyzed function.
type allocSite struct {
	node     ast.Node
	kind     allocKind
	cell     *cell
	captures []types.Object // closure sites: variables captured from the frame
	constLen int64          // slice sites: element count when constant, else -1
}

// addrCell tracks one &x pointer value whose target is a variable's
// own frame storage (no pointer hop between the & and the variable).
// The pointer cell holds the variable, so the variable escapes with
// the pointer — and when the pointer cell escapes, the compiler moves
// the variable to the heap: an allocation with no make/new/literal
// site of its own, which elsaalloc reports from here. A plain value
// read of the variable (return x) never escapes this cell, keeping
// value escape distinct from storage escape.
type addrCell struct {
	cell *cell
	base *cell     // the addressed frame variable
	pos  token.Pos // the & expression
}

// funcFlow is the per-function analysis state.
type funcFlow struct {
	pass  *analysis.Pass
	fn    *ast.FuncDecl
	cells map[types.Object]*cell
	sites []*allocSite
	addrs []*addrCell
}

// analyzeFlow builds the value graph of fn's body and runs escape
// propagation. fn.Body must be non-nil.
func analyzeFlow(pass *analysis.Pass, fn *ast.FuncDecl) *funcFlow {
	f := &funcFlow{pass: pass, fn: fn, cells: make(map[types.Object]*cell)}
	// Named results escape by construction: every value assigned to one
	// is returned.
	f.escapeNamedResults(fn.Type)
	// Parameters and the receiver point at caller storage.
	f.markOpaqueParams(fn.Recv)
	f.markOpaqueParams(fn.Type.Params)
	f.scanStmt(fn.Body)
	f.propagate()
	return f
}

// escapeNamedResults pre-escapes the named results of a function or
// literal: every value assigned to one is returned.
func (f *funcFlow) escapeNamedResults(ft *ast.FuncType) {
	if ft.Results == nil {
		return
	}
	for _, fld := range ft.Results.List {
		for _, name := range fld.Names {
			if c := f.cellFor(f.pass.TypesInfo.Defs[name]); c != nil {
				c.escaped, c.sink, c.sinkPos = true, "assigned to named result "+name.Name, name.Pos()
			}
		}
	}
}

// markOpaqueParams creates opaque cells for a parameter list.
func (f *funcFlow) markOpaqueParams(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, fld := range fl.List {
		for _, name := range fld.Names {
			if c := f.cellFor(f.pass.TypesInfo.Defs[name]); c != nil {
				c.opaque = true
			}
		}
	}
}

// cellFor returns (creating on demand) the cell of a frame-local
// object, or nil for anything not local to the analyzed function.
func (f *funcFlow) cellFor(obj types.Object) *cell {
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if c, ok := f.cells[obj]; ok {
		return c
	}
	// Frame-local: declared within the analyzed function's extent
	// (parameters, results, locals — including locals of nested
	// literals, which share the frame until they escape).
	if obj.Pos() < f.fn.Pos() || obj.Pos() > f.fn.End() {
		return nil
	}
	c := &cell{obj: obj}
	f.cells[obj] = c
	return c
}

// escape marks every cell of cs escaped for the given reason.
func (f *funcFlow) escape(cs []*cell, pos token.Pos, reason string) {
	for _, c := range cs {
		f.escapeCell(c, pos, reason)
	}
}

func (f *funcFlow) escapeCell(c *cell, pos token.Pos, reason string) {
	if c == nil || c.escaped {
		return
	}
	c.escaped, c.sink, c.sinkPos = true, reason, pos
}

// propagate closes the escape set: a held value escapes with its
// holder. Iterates to a fixed point (the graph is tiny per function).
func (f *funcFlow) propagate() {
	for changed := true; changed; {
		changed = false
		for _, c := range f.allCells() {
			if !c.escaped {
				continue
			}
			for _, h := range c.held {
				if !h.escaped {
					via := "storage it was placed in escapes"
					if c.obj != nil {
						via = fmt.Sprintf("%s escapes (%s)", c.obj.Name(), c.sink)
					} else if c.site != nil {
						via = fmt.Sprintf("holding %s escapes (%s)", c.site.kind, c.sink)
					} else if c.label != "" {
						via = fmt.Sprintf("%s escapes (%s)", c.label, c.sink)
					}
					f.escapeCell(h, c.sinkPos, via)
					changed = true
				}
			}
		}
	}
}

func (f *funcFlow) allCells() []*cell {
	out := make([]*cell, 0, len(f.cells)+len(f.sites)+len(f.addrs))
	for _, s := range f.sites {
		out = append(out, s.cell)
	}
	for _, a := range f.addrs {
		out = append(out, a.cell)
	}
	for _, c := range f.cells {
		out = append(out, c)
	}
	return out
}

// ---- statement walk ----

func (f *funcFlow) scanStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			f.scanStmt(st)
		}
	case *ast.ExprStmt:
		f.scanExpr(s.X)
	case *ast.AssignStmt:
		f.scanAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				switch {
				case len(vs.Values) == len(vs.Names):
					for i, name := range vs.Names {
						f.link(f.scanExpr(vs.Values[i]), f.cellFor(f.pass.TypesInfo.Defs[name]), name.Pos())
					}
				case len(vs.Values) == 0:
					// Zero value: holds nothing, stays transparent.
					for _, name := range vs.Names {
						f.cellFor(f.pass.TypesInfo.Defs[name])
					}
				default:
					// var a, b = f(): results are untracked.
					for _, v := range vs.Values {
						f.scanExpr(v)
					}
					for _, name := range vs.Names {
						f.markUntracked(f.cellFor(f.pass.TypesInfo.Defs[name]))
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			f.escape(f.scanExpr(r), r.Pos(), "returned")
		}
	case *ast.SendStmt:
		f.scanExpr(s.Chan)
		f.escape(f.scanExpr(s.Value), s.Value.Pos(), "sent on a channel")
	case *ast.GoStmt:
		f.scanCallEscaping(s.Call, "passed to a goroutine")
	case *ast.DeferStmt:
		f.scanCallEscaping(s.Call, "captured by defer")
	case *ast.IfStmt:
		f.scanStmt(s.Init)
		f.scanExpr(s.Cond)
		f.scanStmt(s.Body)
		f.scanStmt(s.Else)
	case *ast.ForStmt:
		f.scanStmt(s.Init)
		if s.Cond != nil {
			f.scanExpr(s.Cond)
		}
		f.scanStmt(s.Post)
		f.scanStmt(s.Body)
	case *ast.RangeStmt:
		src := f.scanExpr(s.X)
		// Element/key copies can carry pointers held by the container.
		for _, lhs := range []ast.Expr{s.Key, s.Value} {
			if lhs != nil {
				f.assignTo(lhs, src)
			}
		}
		f.scanStmt(s.Body)
	case *ast.SwitchStmt:
		f.scanStmt(s.Init)
		if s.Tag != nil {
			f.scanExpr(s.Tag)
		}
		f.scanStmt(s.Body)
	case *ast.TypeSwitchStmt:
		f.scanStmt(s.Init)
		f.scanStmt(s.Assign)
		f.scanStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			f.scanExpr(e)
		}
		for _, st := range s.Body {
			f.scanStmt(st)
		}
	case *ast.SelectStmt:
		f.scanStmt(s.Body)
	case *ast.CommClause:
		f.scanStmt(s.Comm)
		for _, st := range s.Body {
			f.scanStmt(st)
		}
	case *ast.LabeledStmt:
		f.scanStmt(s.Stmt)
	case *ast.IncDecStmt:
		f.scanExpr(s.X)
	default:
		// BranchStmt, EmptyStmt: nothing flows.
	}
}

// scanAssign wires one (possibly parallel) assignment.
func (f *funcFlow) scanAssign(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			f.assignTo(s.Lhs[i], f.scanExpr(s.Rhs[i]))
		}
		return
	}
	// Tuple form: x, y := f() — call results are not tracked sites, but
	// the RHS still needs scanning for nested allocations and calls.
	for _, r := range s.Rhs {
		f.scanExpr(r)
	}
	for _, l := range s.Lhs {
		f.assignTo(l, nil)
	}
}

// assignTo routes rhs cells into the storage the lvalue denotes: a
// direct edge when the storage is a frame cell (a variable, or a field
// of a struct value held in one), a deref-write when the assignment
// goes through a pointer, slice or map (the storage may be shared),
// and an escape for anything non-local.
func (f *funcFlow) assignTo(lhs ast.Expr, rhs []*cell) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if c := f.cellFor(objOf(f.pass.TypesInfo, l)); c != nil {
			f.link(rhs, c, l.Pos())
		} else {
			f.escape(rhs, l.Pos(), "stored to package-level "+l.Name)
		}
	case *ast.ParenExpr:
		f.assignTo(l.X, rhs)
	case *ast.StarExpr:
		f.derefWrite(f.scanExpr(l.X), rhs, l.Pos())
	case *ast.SelectorExpr:
		if t := f.pass.TypesInfo.TypeOf(l.X); t != nil {
			if _, ok := t.Underlying().(*types.Pointer); ok {
				f.derefWrite(f.scanExpr(l.X), rhs, l.Pos())
				return
			}
		}
		// Field of a struct value: same storage as the base.
		f.assignTo(l.X, rhs)
	case *ast.IndexExpr:
		f.scanExpr(l.Index)
		if t := f.pass.TypesInfo.TypeOf(l.X); t != nil {
			if _, ok := t.Underlying().(*types.Array); ok {
				f.assignTo(l.X, rhs)
				return
			}
		}
		// Slice, map or *array element: the backing storage may be shared.
		f.derefWrite(f.scanExpr(l.X), rhs, l.Pos())
	default:
		f.escape(rhs, lhs.Pos(), "stored to "+exprString(lhs))
	}
}

// derefWrite routes rhs into storage reached through a pointer, slice
// or map value. Tracked targets (allocation sites, frame variables the
// base may alias) receive hold edges; an opaque or unresolved base
// escapes the written value — the storage may belong to a caller.
func (f *funcFlow) derefWrite(base, rhs []*cell, pos token.Pos) {
	if len(base) == 0 {
		f.escape(rhs, pos, "stored through an untracked pointer")
		return
	}
	seen := make(map[*cell]bool)
	var walk func(c *cell)
	walk = func(c *cell) {
		if c == nil || seen[c] {
			return
		}
		seen[c] = true
		if c.opaque {
			f.escape(rhs, pos, "stored into caller-visible storage")
		}
		held := append([]*cell(nil), c.held...) // snapshot before linking rhs in
		f.link(rhs, c, pos)
		if c.site == nil {
			// Variable cell: an alias, not storage of its own — follow
			// everything it may point at.
			for _, h := range held {
				walk(h)
			}
		}
	}
	for _, c := range base {
		walk(c)
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// link adds "to holds each of from". An empty from with a
// reference-carrying destination marks the cell opaque: the RHS
// resolved to nothing we track, so the variable may now alias storage
// the analysis cannot see.
func (f *funcFlow) link(from []*cell, to *cell, pos token.Pos) {
	if to == nil {
		f.escape(from, pos, "stored to untracked storage")
		return
	}
	if len(from) == 0 {
		f.markUntracked(to)
		return
	}
	for _, c := range from {
		if c != nil && c != to {
			to.held = append(to.held, c)
		}
	}
}

// markUntracked flags a variable cell whose value came from a source
// the analysis cannot see (a call result, a read of caller storage).
func (f *funcFlow) markUntracked(c *cell) {
	if c != nil && c.obj != nil && canCarryRefs(c.obj.Type()) {
		c.opaque = true
	}
}

// canCarryRefs reports whether a value of type t can hold references
// (pointers, slices, maps, chans, funcs, interfaces) — i.e. whether
// reading or storing it can move tracked cells around.
func canCarryRefs(t types.Type) bool {
	return carryRefs(t, make(map[types.Type]bool))
}

func carryRefs(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		// Strings share backing storage but it is immutable: nothing can
		// be stored through one.
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carryRefs(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return carryRefs(u.Elem(), seen)
	default:
		// Pointer, slice, map, chan, func, interface — and anything
		// unknown, conservatively.
		return true
	}
}

// ---- expression walk ----

// scanExpr processes one expression tree exactly once: it registers
// allocation sites, applies call-argument escapes, and returns the
// cells the expression's value may carry.
func (f *funcFlow) scanExpr(e ast.Expr) []*cell {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if c := f.cellFor(objOf(f.pass.TypesInfo, e)); c != nil {
			return []*cell{c}
		}
		return nil
	case *ast.ParenExpr:
		return f.scanExpr(e.X)
	case *ast.SelectorExpr:
		// Reading x.f: the value read may be anything x's storage holds —
		// unless its type cannot carry references at all.
		return f.refGate(e, f.scanExpr(e.X))
	case *ast.IndexExpr:
		f.scanExpr(e.Index)
		return f.refGate(e, f.scanExpr(e.X))
	case *ast.IndexListExpr:
		for _, idx := range e.Indices {
			f.scanExpr(idx)
		}
		return f.refGate(e, f.scanExpr(e.X))
	case *ast.SliceExpr:
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				f.scanExpr(idx)
			}
		}
		return f.scanExpr(e.X)
	case *ast.StarExpr:
		return f.refGate(e, f.scanExpr(e.X))
	case *ast.TypeAssertExpr:
		return f.refGate(e, f.scanExpr(e.X))
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return []*cell{f.addSite(e, allocPtrLit, f.litElems(cl), -1).cell}
			}
			// &lvalue: a pointer into storage. Resolve the addressed base
			// without the value-type refGate — &xs[i] of a []int still
			// points into xs's backing array even though an int element
			// carries no references — so the container's cells ride the
			// pointer and escape with it. When the address lands in a
			// frame variable's own storage, the pointer gets a cell of
			// its own: its escape heap-moves the variable.
			cells, direct := f.scanAddr(e.X)
			if !direct {
				return cells
			}
			out := make([]*cell, 0, len(cells))
			for _, c := range cells {
				if c.obj == nil {
					out = append(out, c)
					continue
				}
				ac := &addrCell{cell: &cell{label: "&" + exprString(e.X), held: []*cell{c}}, base: c, pos: e.Pos()}
				f.addrs = append(f.addrs, ac)
				out = append(out, ac.cell)
			}
			return out
		}
		return f.scanExpr(e.X)
	case *ast.BinaryExpr:
		f.scanExpr(e.X)
		f.scanExpr(e.Y)
		return nil
	case *ast.KeyValueExpr:
		f.scanExpr(e.Key)
		return f.scanExpr(e.Value)
	case *ast.CompositeLit:
		elems := f.litElems(e)
		switch f.pass.TypesInfo.TypeOf(e).Underlying().(type) {
		case *types.Slice:
			n := int64(len(e.Elts))
			site := f.addSite(e, allocSliceLit, elems, n)
			return []*cell{site.cell}
		case *types.Map:
			site := f.addSite(e, allocMapLit, elems, -1)
			return []*cell{site.cell}
		default:
			// Array or struct value: no allocation of its own; its copy
			// carries whatever its elements carry.
			return elems
		}
	case *ast.FuncLit:
		site := f.addSite(e, allocClosure, nil, -1)
		f.scanClosure(e, site)
		return []*cell{site.cell}
	case *ast.CallExpr:
		return f.scanCall(e)
	}
	return nil
}

// scanAddr resolves the cells behind the operand of an address-of
// expression by walking the l-value structure (ident, field select,
// index, deref) with no refGate: the gate reasons about the *value*
// read, but a pointer into a container reaches the container's storage
// regardless of what the element type can carry. direct reports
// whether the chain stayed inside the variable's own frame storage
// (no pointer, slice or map hop): only then does an escaping pointer
// move the variable itself to the heap.
func (f *funcFlow) scanAddr(e ast.Expr) (cells []*cell, direct bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if c := f.cellFor(objOf(f.pass.TypesInfo, e)); c != nil {
			return []*cell{c}, true
		}
		return nil, false
	case *ast.ParenExpr:
		return f.scanAddr(e.X)
	case *ast.SelectorExpr:
		if t := f.pass.TypesInfo.TypeOf(e.X); t != nil {
			if _, ok := t.Underlying().(*types.Pointer); ok {
				// &p.f: the address lands in p's pointee, not the frame.
				return f.scanExpr(e.X), false
			}
		}
		return f.scanAddr(e.X)
	case *ast.IndexExpr:
		f.scanExpr(e.Index)
		if t := f.pass.TypesInfo.TypeOf(e.X); t != nil {
			if _, ok := t.Underlying().(*types.Array); ok {
				return f.scanAddr(e.X)
			}
		}
		// Slice or *array element: the address points into the backing
		// storage the base value references.
		return f.scanExpr(e.X), false
	case *ast.StarExpr:
		// &*p is p: whatever p carries.
		return f.scanExpr(e.X), false
	default:
		return f.scanExpr(e), false
	}
}

// refGate drops the carried cells of a read whose result type cannot
// hold references: returning xs[0] of a []int does not escape xs.
func (f *funcFlow) refGate(e ast.Expr, cs []*cell) []*cell {
	if !canCarryRefs(f.pass.TypesInfo.TypeOf(e)) {
		return nil
	}
	return cs
}

// litElems scans a composite literal's elements and collects their
// cells: the literal's storage holds them.
func (f *funcFlow) litElems(cl *ast.CompositeLit) []*cell {
	var out []*cell
	for _, el := range cl.Elts {
		out = append(out, f.scanExpr(el)...)
	}
	return out
}

// addSite registers an allocation site and its cell; elems are cells
// the new storage holds.
func (f *funcFlow) addSite(n ast.Node, kind allocKind, elems []*cell, constLen int64) *allocSite {
	site := &allocSite{node: n, kind: kind, constLen: constLen}
	site.cell = &cell{site: site, held: elems}
	f.sites = append(f.sites, site)
	return site
}

// scanClosure records the frame variables a closure captures and scans
// its body in the shared frame: captured variables are held by the
// closure cell, so they escape if the closure does.
func (f *funcFlow) scanClosure(fl *ast.FuncLit, site *allocSite) {
	// The literal's own parameters receive caller values once it runs;
	// its named results are returned from it.
	f.markOpaqueParams(fl.Type.Params)
	f.escapeNamedResults(fl.Type)
	seen := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := f.pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		// Captured: declared in the enclosing frame, outside the literal.
		if obj.Pos() >= f.fn.Pos() && obj.Pos() <= f.fn.End() &&
			(obj.Pos() < fl.Pos() || obj.Pos() > fl.End()) {
			if c := f.cellFor(obj); c != nil {
				seen[obj] = true
				site.captures = append(site.captures, obj)
				site.cell.held = append(site.cell.held, c)
			}
		}
		return true
	})
	f.scanStmt(fl.Body)
}

// scanCall processes a call expression. Arguments handed to an
// ordinary call escape (the callee may retain them); builtins and
// conversions route flow instead.
func (f *funcFlow) scanCall(call *ast.CallExpr) []*cell {
	info := f.pass.TypesInfo
	// Type conversion: value flows through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return f.scanExpr(call.Args[0])
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return f.scanBuiltin(call, b.Name())
		}
	}
	// make/new reached via builtin path above only for ident form; the
	// remaining case is an ordinary (or method) call.
	var out []*cell
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		// Method call: the receiver's storage is exposed to the callee.
		f.escape(f.scanExpr(fun.X), fun.Pos(), "receiver of call to "+fun.Sel.Name)
	case *ast.FuncLit:
		// Directly invoked literal: runs in place, nothing retained.
		site := f.addSite(fun, allocClosure, nil, -1)
		f.scanClosure(fun, site)
	default:
		// Calling a func value held in a local does not make it escape.
		f.scanExpr(call.Fun)
	}
	for _, arg := range call.Args {
		f.escape(f.scanExpr(arg), arg.Pos(), "passed to "+exprString(call.Fun))
	}
	return out
}

// scanBuiltin models the builtins that either allocate or route flow.
func (f *funcFlow) scanBuiltin(call *ast.CallExpr, name string) []*cell {
	switch name {
	case "make":
		for _, a := range call.Args[1:] {
			f.scanExpr(a)
		}
		t := f.pass.TypesInfo.TypeOf(call).Underlying()
		switch t.(type) {
		case *types.Slice:
			return []*cell{f.addSite(call, allocMakeSlice, nil, f.makeConstLen(call)).cell}
		case *types.Map:
			return []*cell{f.addSite(call, allocMakeMap, nil, -1).cell}
		case *types.Chan:
			return []*cell{f.addSite(call, allocMakeChan, nil, -1).cell}
		}
		return nil
	case "new":
		return []*cell{f.addSite(call, allocNew, nil, -1).cell}
	case "append":
		// The result carries both the (possibly reused) backing array of
		// the first argument and every appended value. The growth
		// allocation itself is elsahotpath's finding, not a site here.
		var out []*cell
		for _, a := range call.Args {
			out = append(out, f.scanExpr(a)...)
		}
		return out
	case "copy", "delete", "clear", "len", "cap", "min", "max",
		"real", "imag", "complex", "print", "println", "recover":
		// Scan operands; none of these retain their arguments beyond the
		// call (copy is shallow: pointers move between slices the caller
		// already owns or tracks).
		var out []*cell
		for _, a := range call.Args {
			out = append(out, f.scanExpr(a)...)
		}
		if name == "copy" || name == "delete" || name == "clear" ||
			name == "len" || name == "cap" || name == "print" || name == "println" {
			return nil
		}
		return out
	case "panic":
		for _, a := range call.Args {
			f.escape(f.scanExpr(a), a.Pos(), "passed to panic")
		}
		return nil
	}
	for _, a := range call.Args {
		f.scanExpr(a)
	}
	return nil
}

// scanCallEscaping handles go/defer: the function value and all
// arguments outlive the statement.
func (f *funcFlow) scanCallEscaping(call *ast.CallExpr, reason string) {
	f.escape(f.scanExpr(call.Fun), call.Pos(), reason)
	for _, arg := range call.Args {
		f.escape(f.scanExpr(arg), arg.Pos(), reason)
	}
}

// makeConstLen returns the constant element count of a make([]T, ...)
// call, or -1 when any size argument is not a compile-time constant.
func (f *funcFlow) makeConstLen(call *ast.CallExpr) int64 {
	max := int64(0)
	for _, a := range call.Args[1:] {
		tv, ok := f.pass.TypesInfo.Types[a]
		if !ok || tv.Value == nil {
			return -1
		}
		v, ok := constInt64(tv)
		if !ok {
			return -1
		}
		if v > max {
			max = v
		}
	}
	return max
}

// constInt64 extracts an int64 from a constant expression value.
func constInt64(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return v, ok
}

// exprString renders a short form of an expression for diagnostics.
func exprString(e ast.Expr) string {
	if s := rootString(e); s != "" {
		return s
	}
	switch e.(type) {
	case *ast.CompositeLit:
		return "composite literal"
	case *ast.FuncLit:
		return "func literal"
	case *ast.CallExpr:
		return "call result"
	}
	return "expression"
}
