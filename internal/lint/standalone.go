package lint

// standalone.go is the -fix/-diff driver behind cmd/elsavet. The
// vendored unitchecker predates SuggestedFix application, and go vet
// gives analyzers no way to rewrite files anyway — so elsavet grows a
// second mode: load the module from source (shared FileSet, one
// typechecking universe, so fact identity holds across packages), run
// the suite in dependency order, and either print findings, apply
// their TextEdits in place (-fix), or print the would-be edits as a
// diff and fail if any exist (-diff, the CI dry-run gate).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// modulePkg is one typechecked package of the analyzed module.
type modulePkg struct {
	path  string
	dir   string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// moduleLoader typechecks module packages from source. It implements
// types.Importer: module-internal import paths resolve through its own
// cache (keeping types.Object identity stable across packages, which
// facts require), everything else through the source importer, which
// handles the vendor directory.
type moduleLoader struct {
	fset    *token.FileSet
	modPath string
	root    string
	pkgs    map[string]*modulePkg // by import path
	loading map[string]bool
	ext     types.Importer
}

func newModuleLoader(root, modPath string) *moduleLoader {
	fset := token.NewFileSet()
	return &moduleLoader{
		fset:    fset,
		modPath: modPath,
		root:    root,
		pkgs:    make(map[string]*modulePkg),
		loading: make(map[string]bool),
		ext:     importer.ForCompiler(fset, "source", nil),
	}
}

func (l *moduleLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.ext.Import(path)
}

func (l *moduleLoader) loadPath(path string) (*modulePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect //go:build constraints and _GOOS/_GOARCH suffixes for the
		// host platform, as the build does — otherwise mutually exclusive
		// files (mmap_unix.go / mmap_other.go) typecheck as redeclarations.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &modulePkg{path: path, dir: dir, files: files, pkg: pkg, info: info}
	l.pkgs[path] = p
	return p, nil
}

// StandaloneOptions configures a RunStandalone invocation.
type StandaloneOptions struct {
	Root      string // module root (directory containing go.mod)
	Fix       bool   // apply suggested fixes in place
	Diff      bool   // print suggested fixes as a diff instead of applying
	JSON      bool   // emit findings as a JSON array instead of text lines
	Analyzers []*analysis.Analyzer
}

// jsonFinding is the machine-readable shape of one finding, stable for
// CI consumers (the GitHub problem matcher parses the text form; the
// JSON form feeds anything that wants structure).
type jsonFinding struct {
	Package  string `json:"package"`
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

// Finding is one reported diagnostic plus its origin.
type Finding struct {
	Package  string // import path of the analyzed package
	Analyzer string
	Pos      token.Position
	Message  string
	Fixes    []analysis.SuggestedFix
}

// RunStandalone analyzes every package of the module and returns the
// findings and the number of files that have (or had, under -fix)
// applicable suggested fixes. Output (findings, diffs, fix notices)
// goes to w.
func RunStandalone(opts StandaloneOptions, w io.Writer) (findings []Finding, fixedFiles int, err error) {
	modPath, err := readModulePath(opts.Root)
	if err != nil {
		return nil, 0, err
	}
	loader := newModuleLoader(opts.Root, modPath)

	dirs, err := packageDirs(opts.Root)
	if err != nil {
		return nil, 0, err
	}
	var pkgs []*modulePkg
	for _, dir := range dirs {
		rel, err := filepath.Rel(opts.Root, dir)
		if err != nil {
			return nil, 0, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := loader.loadPath(path)
		if err != nil {
			return nil, 0, err
		}
		pkgs = append(pkgs, p)
	}
	pkgs = sortByImports(pkgs)

	store := newStandaloneFacts()
	for _, p := range pkgs {
		fs, err := runSuite(loader.fset, p, opts.Analyzers, store)
		if err != nil {
			return nil, 0, err
		}
		findings = append(findings, fs...)
	}
	// Byte-stable order for CI artifact diffing: (package, file, line,
	// column, analyzer, message). Position alone is not a total order —
	// two analyzers can fire on the same token, and map-ordered package
	// walks must not leak into the output.
	sort.Slice(findings, func(i, j int) bool {
		a, b := &findings[i], &findings[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	if opts.JSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Package:  f.Package,
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
				Fixable:  len(f.Fixes) > 0,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return nil, 0, err
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(w, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
		}
	}
	if opts.Fix || opts.Diff {
		fixedFiles, err = applyFixes(loader.fset, findings, opts.Fix, w)
		if err != nil {
			return nil, 0, err
		}
	}
	return findings, fixedFiles, nil
}

// readModulePath extracts the module path from root/go.mod.
func readModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// packageDirs walks the module for directories holding non-test go
// files, skipping vendor, testdata and hidden directories. WalkDir
// interleaves a directory's files around its subdirectories, so dedup
// needs a set, not an adjacency check.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// sortByImports orders packages so every package follows its
// module-internal dependencies — the order facts flow. Duplicate
// entries collapse: the returned slice holds each package once.
func sortByImports(pkgs []*modulePkg) []*modulePkg {
	index := make(map[string]*modulePkg, len(pkgs))
	for _, p := range pkgs {
		index[p.path] = p
	}
	var order []*modulePkg
	visited := make(map[string]bool)
	var visit func(p *modulePkg)
	visit = func(p *modulePkg) {
		if visited[p.path] {
			return
		}
		visited[p.path] = true
		for _, imp := range p.pkg.Imports() {
			if dep, ok := index[imp.Path()]; ok {
				visit(dep)
			}
		}
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// standaloneFacts is the cross-package fact store of the standalone
// driver. Object identity is consistent because every package shares
// the moduleLoader's typechecking universe.
type standaloneFacts struct {
	objs map[types.Object][]analysis.Fact
	pkgs map[*types.Package][]analysis.Fact
}

func newStandaloneFacts() *standaloneFacts {
	return &standaloneFacts{
		objs: make(map[types.Object][]analysis.Fact),
		pkgs: make(map[*types.Package][]analysis.Fact),
	}
}

// runSuite executes the analyzers over one package.
func runSuite(fset *token.FileSet, p *modulePkg, analyzers []*analysis.Analyzer, store *standaloneFacts) ([]Finding, error) {
	var findings []Finding
	results := map[*analysis.Analyzer]interface{}{
		inspect.Analyzer: inspector.New(p.files),
	}
	for _, a := range analyzers {
		if a == inspect.Analyzer {
			continue
		}
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      p.files,
			Pkg:        p.pkg,
			TypesInfo:  p.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Package:  p.path,
					Analyzer: name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
					Fixes:    d.SuggestedFixes,
				})
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				store.objs[obj] = setStandaloneFact(store.objs[obj], fact)
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				return getStandaloneFact(store.objs[obj], fact)
			},
			ExportPackageFact: func(fact analysis.Fact) {
				store.pkgs[p.pkg] = setStandaloneFact(store.pkgs[p.pkg], fact)
			},
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
				return getStandaloneFact(store.pkgs[pkg], fact)
			},
			AllObjectFacts:  func() []analysis.ObjectFact { return nil },
			AllPackageFacts: func() []analysis.PackageFact { return nil },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, p.path, err)
		}
	}
	return findings, nil
}

func setStandaloneFact(facts []analysis.Fact, fact analysis.Fact) []analysis.Fact {
	t := reflect.TypeOf(fact)
	for i, f := range facts {
		if reflect.TypeOf(f) == t {
			facts[i] = fact
			return facts
		}
	}
	return append(facts, fact)
}

func getStandaloneFact(facts []analysis.Fact, fact analysis.Fact) bool {
	t := reflect.TypeOf(fact)
	for _, f := range facts {
		if reflect.TypeOf(f) == t {
			// The caller's pointer receives the stored value; facts are
			// immutable once exported, so a shallow copy suffices.
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// applyFixes collects every TextEdit, resolves overlaps (first edit
// wins), and either rewrites the files (fix=true) or prints the edits
// as per-file hunks. Returns the number of files with applicable
// edits.
func applyFixes(fset *token.FileSet, findings []Finding, fix bool, w io.Writer) (int, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := make(map[string][]edit)
	for _, f := range findings {
		for _, sf := range f.Fixes {
			for _, te := range sf.TextEdits {
				start := fset.Position(te.Pos)
				end := start
				if te.End.IsValid() {
					end = fset.Position(te.End)
				}
				perFile[start.Filename] = append(perFile[start.Filename], edit{start.Offset, end.Offset, te.NewText})
			}
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)

	applied := 0
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		edits := perFile[file]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		var out bytes.Buffer
		last := 0
		any := false
		for _, e := range edits {
			if e.start < last || e.end > len(src) {
				continue // overlapping or out-of-range edit: first one won
			}
			if !fix {
				printHunk(w, file, src, e.start, e.end, e.text)
			}
			out.Write(src[last:e.start])
			out.Write(e.text)
			last = e.end
			any = true
		}
		if !any {
			continue
		}
		applied++
		out.Write(src[last:])
		if fix {
			if err := os.WriteFile(file, out.Bytes(), 0o644); err != nil {
				return applied, err
			}
			fmt.Fprintf(w, "fixed %s\n", file)
		}
	}
	return applied, nil
}

// printHunk renders one edit as a minimal unified-diff hunk.
func printHunk(w io.Writer, file string, src []byte, start, end int, text []byte) {
	lineStart := bytes.LastIndexByte(src[:start], '\n') + 1
	lineEnd := end
	if i := bytes.IndexByte(src[end:], '\n'); i >= 0 {
		lineEnd = end + i
	} else {
		lineEnd = len(src)
	}
	firstLine := 1 + bytes.Count(src[:lineStart], []byte("\n"))
	fmt.Fprintf(w, "--- %s:%d\n", file, firstLine)
	for _, l := range strings.Split(string(src[lineStart:lineEnd]), "\n") {
		fmt.Fprintf(w, "-%s\n", l)
	}
	patched := string(src[lineStart:start]) + string(text) + string(src[end:lineEnd])
	for _, l := range strings.Split(patched, "\n") {
		fmt.Fprintf(w, "+%s\n", l)
	}
}
