// Package chaos is a deterministic fault-injection harness for the
// online monitor: it wraps a logs.RecordSource and perturbs the stream
// with the failure modes real HPC log collectors exhibit — corrupt
// records, exact-duplicate bursts, reordering, clock skew, flood storms
// and delivery stalls. Every decision comes from a seeded private RNG,
// so a chaos run is exactly reproducible from its seed: a failure found
// in CI replays locally.
//
// The harness is a test instrument. Its contract with the pipeline's
// hardening layer is intentionally adversarial-but-honest: corruptions
// are drawn from the classes the quarantine classifier must divert,
// floods are sized to trip overload shedding, and the clean tail of a
// stream must come through with predictions intact.
package chaos

import (
	"math/rand"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// Config tunes the injector. Every probability is per source record in
// [0, 1]; zero disables that fault class. The zero Config injects
// nothing and passes the stream through verbatim.
type Config struct {
	// Seed seeds the injector's private RNG. The same seed over the
	// same source reproduces the same perturbed stream, stalls and all.
	Seed int64

	// Corrupt is the probability a record is mangled into one of the
	// quarantine classes: zero timestamp, NUL-spliced message, invalid
	// UTF-8, or an impossible event id.
	Corrupt float64

	// Duplicate is the probability a record is followed by 1..DuplicateMax
	// exact copies (collector retry bursts). DuplicateMax <= 0 selects 3.
	Duplicate    float64
	DuplicateMax int

	// Reorder is the probability a record is held back and emitted
	// after its successor (adjacent swap).
	Reorder float64

	// Skew is the probability a record's timestamp is shifted by a
	// uniform offset in [-SkewMax, SkewMax]. SkewMax <= 0 selects 30s.
	Skew    float64
	SkewMax time.Duration

	// Flood is the probability a record triggers a burst of FloodSize
	// distinct filler records at the same instant (log storms).
	// FloodSize <= 0 selects 64.
	Flood     float64
	FloodSize int

	// Stall is the probability delivery pauses for a uniform duration
	// up to StallMax before the record is handed over. StallMax <= 0
	// selects 5ms. Sleep injects the pause implementation; nil selects
	// time.Sleep (tests pass a recorder to keep the suite fast).
	Stall    float64
	StallMax time.Duration
	Sleep    func(time.Duration)
}

// Stats counts the faults injected, by class.
type Stats struct {
	Emitted    int64 // records handed to the consumer, faults included
	Corrupted  int64
	Duplicated int64 // extra copies emitted
	Reordered  int64 // records held back
	Skewed     int64
	Flooded    int64 // filler records emitted
	Stalled    int64
}

// Injector wraps a RecordSource with seeded fault injection. It is not
// safe for concurrent use (neither are the sources it wraps).
type Injector struct {
	src   logs.RecordSource
	cfg   Config
	rng   *rand.Rand
	queue []logs.Record // pending records to emit before pulling again
	stats Stats
}

// New wraps src. The zero cfg passes records through untouched.
func New(src logs.RecordSource, cfg Config) *Injector {
	if cfg.DuplicateMax <= 0 {
		cfg.DuplicateMax = 3
	}
	if cfg.SkewMax <= 0 {
		cfg.SkewMax = 30 * time.Second
	}
	if cfg.FloodSize <= 0 {
		cfg.FloodSize = 64
	}
	if cfg.StallMax <= 0 {
		cfg.StallMax = 5 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Injector{src: src, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the fault counts so far.
func (in *Injector) Stats() Stats { return in.stats }

// Err surfaces the wrapped source's error.
func (in *Injector) Err() error { return in.src.Err() }

// Next emits the next (possibly perturbed) record.
func (in *Injector) Next() (logs.Record, bool) {
	if len(in.queue) > 0 {
		rec := in.queue[0]
		in.queue = in.queue[1:]
		in.stats.Emitted++
		return rec, true
	}
	rec, ok := in.src.Next()
	if !ok {
		return logs.Record{}, false
	}

	if in.cfg.Stall > 0 && in.rng.Float64() < in.cfg.Stall {
		in.stats.Stalled++
		in.cfg.Sleep(time.Duration(in.rng.Int63n(int64(in.cfg.StallMax) + 1)))
	}
	if in.cfg.Corrupt > 0 && in.rng.Float64() < in.cfg.Corrupt {
		in.corrupt(&rec)
		in.stats.Corrupted++
		in.stats.Emitted++
		return rec, true // corruption excludes the other faults
	}
	if in.cfg.Skew > 0 && in.rng.Float64() < in.cfg.Skew {
		max := int64(in.cfg.SkewMax)
		rec.Time = rec.Time.Add(time.Duration(in.rng.Int63n(2*max+1) - max))
		in.stats.Skewed++
	}
	if in.cfg.Duplicate > 0 && in.rng.Float64() < in.cfg.Duplicate {
		n := 1 + in.rng.Intn(in.cfg.DuplicateMax)
		for i := 0; i < n; i++ {
			in.queue = append(in.queue, rec)
		}
		in.stats.Duplicated += int64(n)
	}
	if in.cfg.Flood > 0 && in.rng.Float64() < in.cfg.Flood {
		for i := 0; i < in.cfg.FloodSize; i++ {
			f := rec
			f.Message = rec.Message + " [storm " + itoa(i) + "]"
			in.queue = append(in.queue, f)
		}
		in.stats.Flooded += int64(in.cfg.FloodSize)
	}
	if in.cfg.Reorder > 0 && in.rng.Float64() < in.cfg.Reorder {
		// Hold this record back; emit its successor (verbatim) first.
		if next, ok := in.src.Next(); ok {
			in.queue = append(in.queue, rec)
			in.stats.Reordered++
			in.stats.Emitted++
			return next, true
		}
	}
	in.stats.Emitted++
	return rec, true
}

// corrupt mangles a record into one of the quarantine classes.
func (in *Injector) corrupt(rec *logs.Record) {
	switch in.rng.Intn(4) {
	case 0:
		rec.Time = time.Time{}
	case 1:
		rec.Message = rec.Message + "\x00tail"
	case 2:
		rec.Message = "\xff\xfe" + rec.Message
	case 3:
		rec.EventID = -1337
	}
}

// itoa is strconv.Itoa for small non-negative ints without the import.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
