package chaos_test

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/chaos"
	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/pipeline"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 1, 2, 15, 0, 0, 0, time.UTC)

// pairModel mirrors the pipeline test fixture: one pair chain 1 → 2
// (delay 6 ticks), silent signals, 10 s sampling step.
func pairModel() *correlate.Model {
	return &correlate.Model{
		Mode: correlate.Hybrid,
		Step: 10 * time.Second,
		Chains: []correlate.Chain{{
			Itemset: gradual.Itemset{Items: []gradual.Item{
				{Event: 1, Delay: 0}, {Event: 2, Delay: 6},
			}},
			Predictive:  true,
			MaxSeverity: logs.Failure,
		}},
		Profiles:   map[int]sig.Profile{1: {Class: sig.Silent}, 2: {Class: sig.Silent}},
		Thresholds: map[int]float64{1: 0.5, 2: 0.5},
		Severity:   map[int]logs.Severity{1: logs.Warning, 2: logs.Failure},
	}
}

func newSession(cfg pipeline.Config) *pipeline.Session {
	return pipeline.New(predict.NewEngine(pairModel(), nil, predict.DefaultConfig()), nil, cfg).NewSession(t0)
}

// feedOK feeds one record, failing the test on an unexpected error —
// the chaos streams never feed a closed session.
func feedOK(t *testing.T, s *pipeline.Session, r logs.Record) []predict.Prediction {
	t.Helper()
	preds, err := s.Feed(r)
	if err != nil {
		t.Fatalf("Feed: %v", err)
	}
	return preds
}

// baseStream builds n well-formed records with unique messages, spaced
// by step, all reporting the benign event id 3 (no chain references it).
func baseStream(n int, step time.Duration) []logs.Record {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	recs := make([]logs.Record, n)
	for i := range recs {
		recs[i] = logs.Record{
			Time:     t0.Add(time.Duration(i) * step),
			Severity: logs.Info,
			EventID:  3,
			Location: node,
			Message:  "ciod: generated message " + time.Duration(i).String(),
		}
	}
	return recs
}

func drain(in *chaos.Injector) []logs.Record {
	var out []logs.Record
	for {
		rec, ok := in.Next()
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

func fullChaos(seed int64) chaos.Config {
	return chaos.Config{
		Seed:      seed,
		Corrupt:   0.15,
		Duplicate: 0.15,
		Reorder:   0.15,
		Skew:      0.10,
		SkewMax:   5 * time.Second,
		Flood:     0.02,
		FloodSize: 32,
		Stall:     0.10,
		StallMax:  time.Microsecond,
		Sleep:     func(time.Duration) {},
	}
}

func TestInjectorZeroConfigPassesThrough(t *testing.T) {
	base := baseStream(50, time.Second)
	got := drain(chaos.New(logs.NewSliceSource(base), chaos.Config{}))
	if len(got) != len(base) {
		t.Fatalf("emitted %d records, want %d", len(got), len(base))
	}
	for i := range got {
		if got[i] != base[i] {
			t.Fatalf("record %d perturbed by a zero config: %+v", i, got[i])
		}
	}
}

func TestInjectorIsDeterministic(t *testing.T) {
	base := baseStream(300, time.Second)
	a := chaos.New(logs.NewSliceSource(base), fullChaos(7))
	b := chaos.New(logs.NewSliceSource(base), fullChaos(7))
	ra, rb := drain(a), drain(b)
	if len(ra) != len(rb) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("same seed diverges at record %d:\n%+v\n%+v", i, ra[i], rb[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("same seed, different stats: %+v vs %+v", a.Stats(), b.Stats())
	}

	c := chaos.New(logs.NewSliceSource(base), fullChaos(8))
	rc := drain(c)
	if len(rc) == len(ra) {
		same := true
		for i := range rc {
			if rc[i] != ra[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestInjectorReorderSwapsAdjacent(t *testing.T) {
	base := baseStream(4, time.Second)
	got := drain(chaos.New(logs.NewSliceSource(base), chaos.Config{Seed: 1, Reorder: 1}))
	if len(got) != 4 {
		t.Fatalf("emitted %d records, want 4", len(got))
	}
	want := []int{1, 0, 3, 2}
	for i, j := range want {
		if got[i] != base[j] {
			t.Errorf("record %d: got %q, want base[%d]", i, got[i].Message, j)
		}
	}
}

// TestMonitorSurvivesChaos is the headline robustness test: every fault
// class at once, and the monitor must neither panic nor wedge, while the
// ingest hardening accounts for each fault exactly — every corrupted
// record quarantined, every duplicate burst collapsed.
func TestMonitorSurvivesChaos(t *testing.T) {
	base := baseStream(3000, 500*time.Millisecond)
	stalls := 0
	cfg := fullChaos(42)
	cfg.Sleep = func(time.Duration) { stalls++ }
	inj := chaos.New(logs.NewSliceSource(base), cfg)

	pcfg := pipeline.DefaultConfig()
	pcfg.DedupWindow = pipeline.DefaultDedupWindow

	done := make(chan *predict.Result, 1)
	go func() {
		s := newSession(pcfg)
		for {
			rec, ok := inj.Next()
			if !ok {
				break
			}
			s.Feed(rec)
		}
		done <- s.Close()
	}()

	var res *predict.Result
	select {
	case res = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("monitor wedged under chaos: no result within the deadline")
	}
	if err := inj.Err(); err != nil {
		t.Fatalf("injector source error: %v", err)
	}

	st := inj.Stats()
	if st.Corrupted == 0 || st.Duplicated == 0 || st.Reordered == 0 ||
		st.Skewed == 0 || st.Flooded == 0 || st.Stalled == 0 {
		t.Fatalf("fixture too tame, some fault class never fired: %+v", st)
	}
	if int64(stalls) != st.Stalled {
		t.Errorf("sleep calls = %d, stalls counted = %d", stalls, st.Stalled)
	}
	if got := int64(res.Stats.QuarantinedRecords); got != st.Corrupted {
		t.Errorf("QuarantinedRecords = %d, want every corrupted record (%d)", got, st.Corrupted)
	}
	if got := int64(res.Stats.DedupedRecords); got != st.Duplicated {
		t.Errorf("DedupedRecords = %d, want every duplicate copy (%d)", got, st.Duplicated)
	}
	// Whatever survived ingest must be accounted for, record by record:
	// sampled into ticks, dropped as late, or shed under overload.
	admitted := int64(res.Stats.Messages) + int64(res.Stats.LateRecords) + int64(res.Stats.ShedRecords)
	if want := st.Emitted - st.Corrupted - st.Duplicated; admitted != want {
		t.Errorf("admitted records %d, want %d (emitted %d - quarantined %d - deduped %d)",
			admitted, want, st.Emitted, st.Corrupted, st.Duplicated)
	}
}

func TestFloodTripsShedding(t *testing.T) {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	base := []logs.Record{{Time: t0.Add(5 * time.Second), Severity: logs.Info, EventID: 3, Location: node, Message: "storm seed"}}
	inj := chaos.New(logs.NewSliceSource(base), chaos.Config{Seed: 3, Flood: 1, FloodSize: 100})

	pcfg := pipeline.DefaultConfig()
	pcfg.MaxBuffered = 16
	s := newSession(pcfg)
	for {
		rec, ok := inj.Next()
		if !ok {
			break
		}
		s.Feed(rec)
	}
	s.AdvanceTo(t0.Add(200 * time.Second))
	res := s.Close()

	if inj.Stats().Flooded != 100 {
		t.Fatalf("Flooded = %d, want 100", inj.Stats().Flooded)
	}
	if res.Stats.ShedRecords == 0 {
		t.Error("ShedRecords = 0: the flood never tripped overload shedding")
	}
	if !res.Stats.Degraded {
		t.Error("Stats.Degraded not set for a run that shed load")
	}
}

// TestCleanTailRecoversAfterChaos closes the loop: after a chaotic head
// that trips shedding, a quiet gap long enough for open chain state to
// expire, and then a clean chain trigger, the monitor must emit exactly
// the prediction the trigger warrants — undegraded, correctly timed.
func TestCleanTailRecoversAfterChaos(t *testing.T) {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")

	cfg := fullChaos(11)
	cfg.Flood = 0.1
	cfg.FloodSize = 50
	inj := chaos.New(logs.NewSliceSource(baseStream(120, 500*time.Millisecond)), cfg)

	pcfg := pipeline.DefaultConfig()
	pcfg.DedupWindow = pipeline.DefaultDedupWindow
	pcfg.MaxBuffered = 32
	s := newSession(pcfg)

	var preds []predict.Prediction
	for {
		rec, ok := inj.Next()
		if !ok {
			break
		}
		preds = append(preds, feedOK(t, s, rec)...)
	}
	if inj.Stats().Flooded == 0 {
		t.Fatal("fixture too tame: no flood fired")
	}
	if len(preds) != 0 {
		t.Fatalf("chaotic head of benign events fired %d predictions", len(preds))
	}

	// Quiet gap: far longer than the chain span (6 ticks) plus tolerance,
	// so every partially-matched instance expires and the buffer drains.
	preds = append(preds, s.AdvanceTo(t0.Add(400*time.Second))...)

	// Clean tail: the pair trigger at tick 40 forecasts tick 46.
	preds = append(preds, feedOK(t, s, logs.Record{Time: t0.Add(405 * time.Second), Severity: logs.Warning, EventID: 1, Location: node})...)
	preds = append(preds, s.AdvanceTo(t0.Add(600*time.Second))...)
	res := s.Close()

	if res.Stats.ShedRecords == 0 {
		t.Fatal("fixture too tame: the chaotic head never tripped shedding")
	}
	if len(preds) != 1 {
		t.Fatalf("predictions = %d, want exactly the clean-tail one", len(preds))
	}
	p := preds[0]
	if p.Degraded {
		t.Error("clean-tail prediction still flagged Degraded after recovery")
	}
	if want := t0.Add(460 * time.Second); !p.ExpectedAt.Equal(want) {
		t.Errorf("ExpectedAt = %v, want %v", p.ExpectedAt, want)
	}
	if p.Event != 2 {
		t.Errorf("Event = %d, want 2", p.Event)
	}
}
