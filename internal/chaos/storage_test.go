package chaos_test

import (
	"context"
	"io"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/chaos"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/ingest"
	"github.com/elsa-hpc/elsa/internal/logs"
)

var storageStart = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

// storageRecords generates a deterministic stream, round-tripped through
// the text codec so it matches what backends deliver.
func storageRecords(t *testing.T, hours int) []logs.Record {
	t.Helper()
	res := gen.New(gen.BlueGeneL(), 19).Generate(storageStart, time.Duration(hours)*time.Hour)
	out := make([]logs.Record, len(res.Records))
	for i, r := range res.Records {
		rec, err := logs.ParseRecord(r.String())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = rec
	}
	if len(out) < 50 {
		t.Fatalf("generator produced only %d records; faults would not bite", len(out))
	}
	return out
}

func fillSegDir(t *testing.T, recs []logs.Record, segBytes int64) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "segs")
	w, err := ingest.CreateSegmentDir(dir, ingest.SegmentOptions{SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func drainIngest(t *testing.T, b ingest.Backend) []logs.Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var out []logs.Record
	for {
		rec, err := b.Next(ctx)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next after %d records: %v", len(out), err)
		}
		out = append(out, rec)
	}
}

// TestSegDirSurvivesTornActiveTail pins the crashed-writer case: a torn
// partial frame at the end of the active segment is quarantined and the
// stream ends cleanly with every intact record delivered.
func TestSegDirSurvivesTornActiveTail(t *testing.T) {
	recs := storageRecords(t, 36)
	dir := fillSegDir(t, recs, 1<<20) // one segment: its tail is the log's tail
	// A few bytes is less than one frame: exactly the last record is torn.
	if cut, err := chaos.TearSegmentTail(dir, 5); err != nil || cut != 5 {
		t.Fatalf("TearSegmentTail = %d, %v", cut, err)
	}

	r, err := ingest.OpenSegDir(dir, ingest.SegDirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drainIngest(t, r)
	if want := recs[:len(recs)-1]; !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %d records, want the %d intact ones", len(got), len(want))
	}
	st := r.Stats()
	if st.Quarantined == 0 || st.Resyncs == 0 {
		t.Errorf("torn tail not accounted: %+v", st)
	}
}

// TestSegDirSurvivesTornSealedSegment pins the resync case: torn bytes
// at the end of a sealed segment abandon the rest of that segment, the
// swallowed records count as quarantined, and every record of the
// following segments still arrives.
func TestSegDirSurvivesTornSealedSegment(t *testing.T) {
	recs := storageRecords(t, 36)
	dir := fillSegDir(t, recs, 8*1024) // several segments
	if cut, err := chaos.TearSealedSegment(dir, 1, 5); err != nil || cut != 5 {
		t.Fatalf("TearSealedSegment = %d, %v", cut, err)
	}

	r, err := ingest.OpenSegDir(dir, ingest.SegDirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drainIngest(t, r)
	st := r.Stats()
	if st.Resyncs == 0 || st.Quarantined == 0 {
		t.Fatalf("sealed torn tail not accounted: %+v", st)
	}
	if int(st.Delivered)+int(st.Quarantined) != len(recs) {
		t.Errorf("delivered %d + quarantined %d != %d records written",
			st.Delivered, st.Quarantined, len(recs))
	}
	// The damage is confined to the torn segment: everything before the
	// tear and everything from the next segment on arrives intact and in
	// order — got is recs with one contiguous run removed.
	gap := len(recs) - len(got)
	if gap < 1 {
		t.Fatalf("tear swallowed no records")
	}
	for i := 0; i < len(got); i++ {
		if got[i] == recs[i] {
			continue
		}
		if !reflect.DeepEqual(got[i:], recs[i+gap:]) {
			t.Fatalf("post-resync records diverge at delivered index %d", i)
		}
		return
	}
	t.Fatal("all delivered records are a prefix: the segments after the tear never arrived")
}

// TestSegDirSurvivesFlippedByte pins the bit-rot case: a frame whose CRC
// no longer matches is quarantined, and the frames after it still
// arrive (here the flip hits the final frame's payload).
func TestSegDirSurvivesFlippedByte(t *testing.T) {
	recs := storageRecords(t, 36)
	dir := fillSegDir(t, recs, 1<<20)
	if err := chaos.FlipSegmentByte(dir, -1); err != nil {
		t.Fatal(err)
	}

	r, err := ingest.OpenSegDir(dir, ingest.SegDirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drainIngest(t, r)
	if want := recs[:len(recs)-1]; !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %d records, want the %d uncorrupted ones", len(got), len(want))
	}
	if st := r.Stats(); st.Quarantined != 1 {
		t.Errorf("flipped byte quarantined %d frames, want 1: %+v", st.Quarantined, st)
	}
}

// TestSocketSurvivesMidFrameDisconnect pins the transport case: a
// producer dying mid-frame aborts only its own connection; a
// reconnecting producer resumes the stream and nothing intact is lost.
func TestSocketSurvivesMidFrameDisconnect(t *testing.T) {
	recs := storageRecords(t, 12)
	sock := filepath.Join(t.TempDir(), "elsa.sock")
	b, err := ingest.ListenSocket("unix", sock, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	half := len(recs) / 2
	done := make(chan error, 1)
	go func() {
		// First producer dies mid-frame on record half.
		conn, err := net.Dial("unix", sock)
		if err != nil {
			done <- err
			return
		}
		fc := ingest.NewFrameConn(conn)
		for _, rec := range recs[:half] {
			if err := fc.WriteRecord(rec); err != nil {
				done <- err
				return
			}
		}
		if err := chaos.AbortMidFrame(conn, recs[half], 12); err != nil {
			done <- err
			return
		}
		// Wait for the first connection's records to drain, so the two
		// connections' streams cannot interleave and the delivered order
		// stays deterministic.
		for i := 0; b.Offset().Records < int64(half) && i < 5000; i++ {
			time.Sleep(time.Millisecond)
		}
		// Second producer reconnects and replays from its cursor.
		conn2, err := net.Dial("unix", sock)
		if err != nil {
			done <- err
			return
		}
		defer conn2.Close()
		fc2 := ingest.NewFrameConn(conn2)
		for _, rec := range recs[half:] {
			if err := fc2.WriteRecord(rec); err != nil {
				done <- err
				return
			}
		}
		done <- fc2.End()
	}()

	got := drainIngest(t, b)
	if err := <-done; err != nil {
		t.Fatalf("producer: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("delivered %d records, want all %d across the disconnect", len(got), len(recs))
	}
	st := b.Stats()
	if st.Resyncs != 1 || st.AbortedConns != 1 || st.Conns != 2 {
		t.Errorf("disconnect not accounted: %+v", st)
	}
}
