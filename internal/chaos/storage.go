package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// Storage and transport fault injection for the ingest backends. The
// record-level Injector perturbs streams the pipeline's hardening layer
// must absorb; the helpers here perturb the layers underneath it — the
// bytes of a segment directory and the framing on a producer socket —
// which the ingest readers must absorb. Both fault classes mirror real
// collector failures: a node dies mid-append (torn tail), a disk flips a
// bit (CRC mismatch), a producer's TCP session drops mid-frame.
//
// The contract under test is quarantine-and-continue: an ingest reader
// facing these faults counts the damage in its Stats and keeps
// delivering every intact record, never wedging and never erroring out.

// TearSegmentTail truncates the newest segment in a segment directory by
// n bytes, leaving the torn partial frame a crashed writer leaves. It
// returns how many bytes were actually removed (clamped so the 16-byte
// segment header survives — a torn tail is a write fault, not a missing
// segment).
func TearSegmentTail(dir string, n int64) (int64, error) {
	return tearSegment(dir, 0, n)
}

// TearSealedSegment is TearSegmentTail aimed at a sealed segment:
// fromNewest counts back from the active tail (1 is the segment sealed
// most recently). A reader hitting the torn bytes must resync to the
// next segment, counting the swallowed records as quarantined, rather
// than wedging or erroring.
func TearSealedSegment(dir string, fromNewest int, n int64) (int64, error) {
	if fromNewest < 1 {
		return 0, fmt.Errorf("chaos: fromNewest %d does not name a sealed segment", fromNewest)
	}
	return tearSegment(dir, fromNewest, n)
}

func tearSegment(dir string, fromNewest int, n int64) (int64, error) {
	seg, err := pickSegment(dir, fromNewest)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(seg)
	if err != nil {
		return 0, err
	}
	const segHeaderLen = 16
	cut := n
	if max := st.Size() - segHeaderLen; cut > max {
		cut = max
	}
	if cut <= 0 {
		return 0, nil
	}
	return cut, os.Truncate(seg, st.Size()-cut)
}

// FlipSegmentByte XORs one byte of the newest segment's frame data with
// 0xFF, at off bytes past the segment header (negative counts from the
// end). The enclosing frame's CRC no longer matches its payload, which a
// reader must quarantine without losing the frames after it.
func FlipSegmentByte(dir string, off int64) error {
	seg, err := pickSegment(dir, 0)
	if err != nil {
		return err
	}
	st, err := os.Stat(seg)
	if err != nil {
		return err
	}
	const segHeaderLen = 16
	pos := segHeaderLen + off
	if off < 0 {
		pos = st.Size() + off
	}
	if pos < segHeaderLen || pos >= st.Size() {
		return fmt.Errorf("chaos: flip offset %d outside segment data [%d, %d)", pos, segHeaderLen, st.Size())
	}
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], pos); err != nil {
		return err
	}
	b[0] ^= 0xFF
	_, err = f.WriteAt(b[:], pos)
	return err
}

// pickSegment returns the path of the .seg file fromNewest places before
// the highest-based one (0 is the active tail).
func pickSegment(dir string, fromNewest int) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var segs []string
	for _, e := range ents {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, ".seg") && len(name) == 24 {
			segs = append(segs, name)
		}
	}
	if len(segs) == 0 {
		return "", fmt.Errorf("chaos: no segments in %s", dir)
	}
	sort.Strings(segs)
	i := len(segs) - 1 - fromNewest
	if i < 0 {
		return "", fmt.Errorf("chaos: directory has %d segments, cannot reach %d back", len(segs), fromNewest)
	}
	return filepath.Join(dir, segs[i]), nil
}

// AbortMidFrame writes the leading keep bytes of rec's wire frame to w —
// never the whole frame — and closes it, simulating a producer that dies
// mid-send. The frame encoding (u32 big-endian payload length, u32
// big-endian IEEE CRC, payload bytes) is spelled out here on purpose: the
// injector speaks the documented wire format, not the producer library,
// so a reader that only survives the library's framing fails this.
func AbortMidFrame(w io.WriteCloser, rec logs.Record, keep int) error {
	payload := []byte(rec.String())
	frame := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if keep < 1 {
		keep = 1
	}
	if keep >= len(frame) {
		keep = len(frame) - 1
	}
	if _, err := w.Write(frame[:keep]); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
