package chaos

import (
	"math/rand"
)

// FleetTarget is the coordinator surface the fleet injector drives. The
// interface lives here (not in internal/fleet) so the fleet package can
// depend on chaos-free supervision primitives while its tests wire a
// real Coordinator straight in.
type FleetTarget interface {
	// ShardNames lists the logical shards, stable order.
	ShardNames() []string
	// Kill hard-crashes a shard's live incarnation; reports whether one
	// was live to kill.
	Kill(name string) bool
	// Stall arms a liveness-probe stall on the shard's next delivery.
	Stall(name string) bool
	// FailRestores arms the shard's next recoveries to fail up to n
	// times (bounded: re-arming does not stack beyond n).
	FailRestores(name string, n int)
	// Misroute arms a split-scope routing flap for the next n records.
	Misroute(n int)
	// Rebalance performs a planned snapshot-handoff succession.
	Rebalance(name string) error
}

// FleetConfig tunes the fleet injector. Probabilities are per routed
// record; zero disables the class. The zero config injects nothing.
type FleetConfig struct {
	// Seed seeds the injector's private RNG; a seed reproduces the whole
	// fault schedule exactly.
	Seed int64

	// Kill is the probability a record is preceded by a hard crash of a
	// random shard (shard-kill).
	Kill float64

	// Stall is the probability a random shard's next delivery wedges
	// past the liveness timeout (handoff-stall).
	Stall float64

	// RestoreFail is the probability a random shard's next recovery is
	// armed to fail RestoreFailMax times before succeeding, exercising
	// the retry/backoff path. RestoreFailMax <= 0 selects 1; keep it
	// below the coordinator's handoff MaxAttempts or recovery legitimately
	// leaves the shard down for the round.
	RestoreFail    float64
	RestoreFailMax int

	// Misroute is the probability the next record is offered to the
	// wrong shard (split-scope fault); the coordinator's ownership check
	// must self-heal it.
	Misroute float64

	// Rebalance is the probability a planned snapshot-handoff succession
	// is requested on a random shard.
	Rebalance float64
}

// FleetStats counts injected fleet faults by class.
type FleetStats struct {
	Kills        int64 // kills that found a live incarnation
	KillMisses   int64 // kills aimed at an already-down shard
	Stalls       int64
	RestoresArmd int64 // injected restore failures armed
	Misroutes    int64 // records armed to misroute
	Rebalances   int64
	RebalanceErr int64 // rebalance requests the coordinator refused
}

// FleetInjector drives seeded fleet-level faults — shard kills, handoff
// stalls, restore failures, split-scope misroutes, planned rebalances —
// against a FleetTarget, one Step per routed record. Like the stream
// injector it is exactly reproducible from its seed and is not safe for
// concurrent use.
type FleetInjector struct {
	target FleetTarget
	cfg    FleetConfig
	rng    *rand.Rand
	stats  FleetStats
}

// NewFleet wraps target. The zero cfg injects nothing.
func NewFleet(target FleetTarget, cfg FleetConfig) *FleetInjector {
	if cfg.RestoreFailMax <= 0 {
		cfg.RestoreFailMax = 1
	}
	return &FleetInjector{
		target: target,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Step draws this record's faults and applies them to the target; call
// it immediately before feeding each record. Draw order is fixed (kill,
// stall, restore-fail, misroute, rebalance) so a seed maps to one exact
// fault schedule regardless of which classes are enabled.
func (fi *FleetInjector) Step() {
	names := fi.target.ShardNames()
	if len(names) == 0 {
		return
	}
	pick := func() string { return names[fi.rng.Intn(len(names))] }
	if p := fi.rng.Float64(); fi.cfg.Kill > 0 && p < fi.cfg.Kill {
		if fi.target.Kill(pick()) {
			fi.stats.Kills++
		} else {
			fi.stats.KillMisses++
		}
	} else if fi.cfg.Kill > 0 {
		pick() // keep the name stream aligned whether or not the class fires
	}
	if p := fi.rng.Float64(); fi.cfg.Stall > 0 && p < fi.cfg.Stall {
		if fi.target.Stall(pick()) {
			fi.stats.Stalls++
		}
	} else if fi.cfg.Stall > 0 {
		pick()
	}
	if p := fi.rng.Float64(); fi.cfg.RestoreFail > 0 && p < fi.cfg.RestoreFail {
		n := 1 + fi.rng.Intn(fi.cfg.RestoreFailMax)
		fi.target.FailRestores(pick(), n)
		fi.stats.RestoresArmd += int64(n)
	} else if fi.cfg.RestoreFail > 0 {
		pick()
	}
	if p := fi.rng.Float64(); fi.cfg.Misroute > 0 && p < fi.cfg.Misroute {
		fi.target.Misroute(1)
		fi.stats.Misroutes++
	}
	if p := fi.rng.Float64(); fi.cfg.Rebalance > 0 && p < fi.cfg.Rebalance {
		if err := fi.target.Rebalance(pick()); err != nil {
			fi.stats.RebalanceErr++
		} else {
			fi.stats.Rebalances++
		}
	} else if fi.cfg.Rebalance > 0 {
		pick()
	}
}

// FleetStats returns the fault counts so far.
func (fi *FleetInjector) FleetStats() FleetStats { return fi.stats }
