package sig

import "sort"

// PairStats reports how much of the ordered pair space AllPairs actually
// had to score. Candidates is the blind E*(E-1) enumeration the naive path
// would walk; Scored is how many pairs survived the co-occurrence
// prefilter and ran the cross-correlation kernel; Kept is how many passed
// the acceptance thresholds.
type PairStats struct {
	Events     int `json:"events"`
	Candidates int `json:"candidates"`
	Scored     int `json:"scored"`
	Kept       int `json:"kept"`
}

// Pruned returns the number of ordered pairs the prefilter discarded
// without running the kernel.
func (s PairStats) Pruned() int { return s.Candidates - s.Scored }

// spike is one entry of the merged timeline: a sample index plus the dense
// index (into the sorted id list) of the train it belongs to.
type spike struct {
	t  int
	id int32
}

// exactSweepBudget caps the co-occurrence mass (total number of ordered
// spike pairs within MaxLag of each other) the exact per-instance sweep is
// allowed to count. Above it the prefilter switches to the block-bucket
// upper-bound sweep, whose cost depends on the number of events per block,
// not on how often they fire. A package variable so tests can force either
// regime.
var exactSweepBudget = 1 << 22

// denseCounterMax is the largest event count for which pair counts live in
// a flat E*E array (E=2048 -> 16 MiB of int32) instead of a hash map.
const denseCounterMax = 2048

// pairCounter accumulates per-ordered-pair co-occurrence counts, dense
// when the event universe is small enough, hashed otherwise.
type pairCounter struct {
	e     int32
	dense []int32
	m     map[uint64]int32
}

func newPairCounter(e int) *pairCounter {
	c := &pairCounter{e: int32(e)}
	if e <= denseCounterMax {
		c.dense = make([]int32, e*e)
	} else {
		c.m = make(map[uint64]int32)
	}
	return c
}

// add accumulates n co-occurrences for the ordered pair (a, b), saturating
// far above any usable MinCount instead of overflowing.
//
//elsa:hotpath
func (c *pairCounter) add(a, b, n int32) {
	if c.dense != nil {
		k := a*c.e + b
		if v := c.dense[k]; v <= 1<<30 {
			c.dense[k] = v + n
		}
		return
	}
	k := uint64(uint32(a))<<32 | uint64(uint32(b))
	if v := c.m[k]; v <= 1<<30 {
		c.m[k] = v + n
	}
}

// emit returns the ordered pairs whose accumulated count reaches need, in
// (a, b) order for the dense counter.
func (c *pairCounter) emit(need int32) [][2]int32 {
	var cands [][2]int32
	if c.dense != nil {
		for a := int32(0); a < c.e; a++ {
			row := c.dense[a*c.e : (a+1)*c.e]
			for b, v := range row {
				if v >= need {
					cands = append(cands, [2]int32{a, int32(b)})
				}
			}
		}
		return cands
	}
	cands = make([][2]int32, 0, len(c.m))
	for k, v := range c.m {
		if v >= need {
			cands = append(cands, [2]int32{int32(k >> 32), int32(uint32(k))})
		}
	}
	// The dense counter emits in (a, b) order for free; the hashed
	// counter emits in map order, which would make the kernel's work
	// queue (and any pruning trace an operator compares across runs)
	// differ per run. Sort so both paths hand the scorer the same
	// deterministic candidate sequence.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i][0] != cands[j][0] {
			return cands[i][0] < cands[j][0]
		}
		return cands[i][1] < cands[j][1]
	})
	return cands
}

// prefilterPairs prunes the ordered pair space before the kernel runs: it
// returns only the pairs (A, B) whose total number of co-occurrences with
// 0 <= t_B - t_A <= MaxLag can reach MinCount. Every windowed count the
// kernel considers is a subset of that total, so dropping the rest cannot
// change the result. Simultaneous spikes count toward both orders, exactly
// as the kernel's delay-0 bin does.
//
// Two sweeps implement the bound, picked by the co-occurrence mass of the
// merged timeline (measured with one cheap two-pointer pass):
//
//   - exact: slide a MaxLag window over the merged timeline and count each
//     in-window ordered pair once. O(mass) increments — ideal for the
//     sparse outlier-filtered trains the hybrid pipeline feeds in, where
//     most pairs never co-occur at all.
//   - block upper bound: bucket the timeline into blocks of width MaxLag+1;
//     any co-occurrence within MaxLag lands in the same block or the next,
//     so sum-of-block-count-products over adjacent blocks is >= the true
//     total, and pruning on it stays conservative. O(sum_i S_i*(S_i+S_{i+1}))
//     for S_i distinct events per block — independent of how densely the
//     trains fire, which keeps raw unfiltered trains from blowing the
//     sweep up past the kernel cost it is trying to save.
func prefilterPairs(trains SpikeTrains, ids []int, cfg CrossCorrConfig) [][2]int32 {
	if cfg.MaxLag < 0 || len(ids) < 2 {
		return nil
	}
	tl := mergeTimeline(trains, ids)
	if len(tl) == 0 {
		return nil
	}

	// One two-pointer pass measures the mass before committing to pay it.
	mass, j := 0, 0
	for i := range tl {
		if j < i+1 {
			j = i + 1
		}
		for j < len(tl) && tl[j].t-tl[i].t <= cfg.MaxLag {
			j++
		}
		mass += j - i - 1
		if mass > exactSweepBudget {
			break
		}
	}

	counts := newPairCounter(len(ids))
	if mass <= exactSweepBudget {
		exactSweep(tl, cfg.MaxLag, counts)
	} else {
		blockSweep(tl, cfg.MaxLag, len(ids), counts)
	}

	need := int32(cfg.MinCount)
	if need < 1 {
		need = 1
	}
	return counts.emit(need)
}

// mergeTimeline flattens the trains into one (t, id)-sorted slice. Sample
// indices are near-dense in practice, so a stable counting sort by t does
// the job in O(N + range) without comparison-sort overhead; wild ranges
// fall back to sort.Slice.
func mergeTimeline(trains SpikeTrains, ids []int) []spike {
	total := 0
	minT, maxT := int(^uint(0)>>1), -int(^uint(0)>>1)-1
	for _, id := range ids {
		tr := trains[id]
		total += len(tr)
		if len(tr) > 0 {
			if tr[0] < minT {
				minT = tr[0]
			}
			if tr[len(tr)-1] > maxT {
				maxT = tr[len(tr)-1]
			}
		}
	}
	if total == 0 {
		return nil
	}
	if span := maxT - minT + 1; span >= 0 && span <= 4*total+1024 {
		// Counting sort: tally per t, prefix to offsets, then place spikes
		// iterating ids in ascending dense order so equal-t entries stay
		// id-sorted (the tally pass is per-train, placement is stable).
		off := make([]int32, span+1)
		for _, id := range ids {
			for _, t := range trains[id] {
				off[t-minT+1]++
			}
		}
		for i := 1; i <= span; i++ {
			off[i] += off[i-1]
		}
		tl := make([]spike, total)
		for idx, id := range ids {
			for _, t := range trains[id] {
				p := t - minT
				tl[off[p]] = spike{t: t, id: int32(idx)}
				off[p]++
			}
		}
		return tl
	}
	tl := make([]spike, 0, total)
	for idx, id := range ids {
		for _, t := range trains[id] {
			tl = append(tl, spike{t: t, id: int32(idx)})
		}
	}
	sort.Slice(tl, func(i, j int) bool {
		if tl[i].t != tl[j].t {
			return tl[i].t < tl[j].t
		}
		return tl[i].id < tl[j].id
	})
	return tl
}

// exactSweep counts every ordered co-occurrence within maxLag once.
//
//elsa:hotpath
func exactSweep(tl []spike, maxLag int, counts *pairCounter) {
	j := 0
	for i := range tl {
		if j < i+1 {
			j = i + 1
		}
		for j < len(tl) && tl[j].t-tl[i].t <= maxLag {
			j++
		}
		for k := i + 1; k < j; k++ {
			if tl[k].id == tl[i].id {
				continue
			}
			counts.add(tl[i].id, tl[k].id, 1)
			if tl[k].t == tl[i].t {
				// Simultaneous: the reverse order sees the same delay-0 hit.
				counts.add(tl[k].id, tl[i].id, 1)
			}
		}
	}
}

// blockSweep accumulates, for each ordered pair, an upper bound on its
// total co-occurrence count: with blocks of width maxLag+1, a spike pair
// within maxLag spans at most one block boundary, so every true
// co-occurrence (a, b) is covered by the count product of a's block with
// b's block (itself or the successor). The i-with-i product also covers
// the reverse order of simultaneous spikes, matching exactSweep's
// double-count of delay-0 hits.
func blockSweep(tl []spike, maxLag, events int, counts *pairCounter) {
	g := maxLag + 1
	base := tl[0].t
	nb := (tl[len(tl)-1].t-base)/g + 1

	type occ struct{ id, n int32 }
	blocks := make([][]occ, nb)
	cnt := make([]int32, events)
	touched := make([]int32, 0, events)
	lo := 0
	for b := 0; b < nb; b++ {
		hi := lo
		for hi < len(tl) && (tl[hi].t-base)/g == b {
			if cnt[tl[hi].id] == 0 {
				touched = append(touched, tl[hi].id)
			}
			cnt[tl[hi].id]++
			hi++
		}
		if len(touched) > 0 {
			bl := make([]occ, len(touched))
			for i, id := range touched {
				bl[i] = occ{id: id, n: cnt[id]}
				cnt[id] = 0
			}
			blocks[b] = bl
			touched = touched[:0]
		}
		lo = hi
	}

	for b := 0; b < nb; b++ {
		cur := blocks[b]
		if len(cur) == 0 {
			continue
		}
		var next []occ
		if b+1 < nb {
			next = blocks[b+1]
		}
		for _, a := range cur {
			for _, o := range cur {
				if o.id != a.id {
					counts.add(a.id, o.id, a.n*o.n)
				}
			}
			for _, o := range next {
				if o.id != a.id {
					counts.add(a.id, o.id, a.n*o.n)
				}
			}
		}
	}
}
