package sig

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

func TestNewSignal(t *testing.T) {
	s := New(7, t0, t0.Add(time.Hour), 10*time.Second)
	if s.Len() != 360 {
		t.Errorf("Len = %d, want 360", s.Len())
	}
	if !s.End().Equal(t0.Add(time.Hour)) {
		t.Errorf("End = %v", s.End())
	}
	if s.Event != 7 {
		t.Errorf("Event = %d", s.Event)
	}
}

func TestNewSignalDefaults(t *testing.T) {
	s := New(0, t0, t0.Add(time.Minute), 0)
	if s.Step != DefaultStep {
		t.Errorf("Step = %v, want default", s.Step)
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
	neg := New(0, t0, t0.Add(-time.Minute), 10*time.Second)
	if neg.Len() != 0 {
		t.Errorf("negative range Len = %d", neg.Len())
	}
}

func TestAddAndIndex(t *testing.T) {
	s := New(0, t0, t0.Add(time.Minute), 10*time.Second)
	s.Add(t0)
	s.Add(t0.Add(9 * time.Second))  // same bucket
	s.Add(t0.Add(10 * time.Second)) // next bucket
	s.Add(t0.Add(-time.Second))     // dropped
	s.Add(t0.Add(2 * time.Minute))  // dropped
	if s.Samples[0] != 2 || s.Samples[1] != 1 {
		t.Errorf("Samples = %v", s.Samples)
	}
	if s.Index(t0.Add(35*time.Second)) != 3 {
		t.Errorf("Index = %d", s.Index(t0.Add(35*time.Second)))
	}
	if !s.TimeAt(3).Equal(t0.Add(30 * time.Second)) {
		t.Errorf("TimeAt(3) = %v", s.TimeAt(3))
	}
}

func TestTrimTail(t *testing.T) {
	s := New(0, t0, t0.Add(time.Minute), 10*time.Second)
	for i := range s.Samples {
		s.Samples[i] = float64(i)
	}
	s.TrimTail(2)
	if s.Len() != 2 || s.Samples[0] != 4 || s.Samples[1] != 5 {
		t.Errorf("after trim: %v", s.Samples)
	}
	if !s.Start.Equal(t0.Add(40 * time.Second)) {
		t.Errorf("Start = %v", s.Start)
	}
	s.TrimTail(10) // no-op when already smaller
	if s.Len() != 2 {
		t.Error("TrimTail grew the signal")
	}
	s.TrimTail(-1) // negative max is a no-op
	if s.Len() != 2 {
		t.Error("negative TrimTail changed the signal")
	}
}

func TestAppendKeepsIndexing(t *testing.T) {
	s := New(0, t0, t0.Add(30*time.Second), 10*time.Second)
	s.Append(1, 2, 3)
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.End().Equal(t0.Add(time.Minute)) {
		t.Errorf("End = %v", s.End())
	}
}

func TestClone(t *testing.T) {
	s := New(1, t0, t0.Add(time.Minute), 10*time.Second)
	s.Samples[0] = 5
	c := s.Clone()
	c.Samples[0] = 9
	if s.Samples[0] != 5 {
		t.Error("Clone shares sample storage")
	}
}

func TestExtract(t *testing.T) {
	recs := []logs.Record{
		{Time: t0.Add(5 * time.Second), EventID: 0, Location: topology.System},
		{Time: t0.Add(15 * time.Second), EventID: 0, Location: topology.System},
		{Time: t0.Add(15 * time.Second), EventID: 1, Location: topology.System},
		{Time: t0.Add(25 * time.Second), EventID: -1, Location: topology.System}, // unassigned
	}
	sigs := Extract(recs, t0, t0.Add(time.Minute), 10*time.Second)
	if len(sigs) != 2 {
		t.Fatalf("got %d signals", len(sigs))
	}
	if sigs[0].Samples[0] != 1 || sigs[0].Samples[1] != 1 {
		t.Errorf("event 0 samples = %v", sigs[0].Samples)
	}
	if sigs[1].Samples[1] != 1 {
		t.Errorf("event 1 samples = %v", sigs[1].Samples)
	}
}

func TestOccurrenceIndices(t *testing.T) {
	s := New(0, t0, t0.Add(time.Minute), 10*time.Second)
	s.Samples[1] = 2
	s.Samples[4] = 1
	got := s.OccurrenceIndices()
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("OccurrenceIndices = %v", got)
	}
}
