package sig

import (
	"sort"
	"testing"
)

// fuzzTrains decodes fuzz bytes into a small set of sorted spike trains:
// byte pairs are (event, time-delta), so simultaneous spikes across events
// (delta 0) and dense bursts are both reachable. Consecutive duplicates
// within a train are dropped, matching how training builds occurrence
// trains.
func fuzzTrains(data []byte) (SpikeTrains, []int) {
	const maxEvents = 5
	trains := make(SpikeTrains)
	t := 0
	for i := 0; i+1 < len(data) && i < 400; i += 2 {
		t += int(data[i+1] % 8)
		e := int(data[i] % maxEvents)
		tr := trains[e]
		if len(tr) == 0 || tr[len(tr)-1] != t {
			trains[e] = append(tr, t)
		}
	}
	ids := make([]int, 0, len(trains))
	for id := range trains {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return trains, ids
}

// refPairCounts brute-forces the quantity both sweeps approximate: for each
// ordered pair of distinct dense indices (a, b), the number of spike pairs
// with 0 <= t_b - t_a <= maxLag. Simultaneous spikes count toward both
// orders, exactly as exactSweep's delay-0 double count does.
func refPairCounts(trains SpikeTrains, ids []int, maxLag int) map[[2]int32]int {
	ref := make(map[[2]int32]int)
	for ai, a := range ids {
		for bi, b := range ids {
			if ai == bi {
				continue
			}
			n := 0
			for _, ta := range trains[a] {
				for _, tb := range trains[b] {
					if d := tb - ta; d >= 0 && d <= maxLag {
						n++
					}
				}
			}
			if n > 0 {
				ref[[2]int32{int32(ai), int32(bi)}] = n
			}
		}
	}
	return ref
}

// counterGet reads one ordered pair's accumulated count.
func counterGet(c *pairCounter, a, b int32) int {
	if c.dense != nil {
		return int(c.dense[a*c.e+b])
	}
	return int(c.m[uint64(uint32(a))<<32|uint64(uint32(b))])
}

// FuzzPrefilterPairs checks the prefilter's conservativeness invariants on
// arbitrary spike layouts: the exact sweep's counts equal a brute-force
// reference, the block sweep's counts upper-bound it, and prefilterPairs
// never prunes a pair whose true co-occurrence count reaches MinCount —
// the property that makes the pruned AllPairs scan identical to the blind
// E^2 enumeration.
func FuzzPrefilterPairs(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 3, 0, 0, 1, 1, 2, 0, 3, 7, 4, 1}, uint8(6), uint8(3))
	f.Add([]byte{1, 0, 2, 0, 3, 0, 4, 0, 0, 0}, uint8(0), uint8(1))
	f.Add([]byte{0, 7, 1, 7, 0, 7, 1, 7, 0, 7, 1, 7}, uint8(31), uint8(2))
	f.Add([]byte{}, uint8(5), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, lagB, minB uint8) {
		trains, ids := fuzzTrains(data)
		if len(ids) < 2 {
			return
		}
		maxLag := int(lagB % 32)
		minCount := int(minB%6) + 1
		ref := refPairCounts(trains, ids, maxLag)
		tl := mergeTimeline(trains, ids)

		exact := newPairCounter(len(ids))
		exactSweep(tl, maxLag, exact)
		block := newPairCounter(len(ids))
		blockSweep(tl, maxLag, len(ids), block)
		for ai := range ids {
			for bi := range ids {
				if ai == bi {
					continue
				}
				a, b := int32(ai), int32(bi)
				want := ref[[2]int32{a, b}]
				if got := counterGet(exact, a, b); got != want {
					t.Fatalf("exactSweep(%d,%d) = %d, brute force = %d", ai, bi, got, want)
				}
				if got := counterGet(block, a, b); got < want {
					t.Fatalf("blockSweep(%d,%d) = %d undercounts brute force %d", ai, bi, got, want)
				}
			}
		}

		cands := prefilterPairs(trains, ids, CrossCorrConfig{MaxLag: maxLag, MinCount: minCount})
		set := make(map[[2]int32]bool, len(cands))
		for _, c := range cands {
			set[c] = true
		}
		for pair, n := range ref {
			if n >= minCount && !set[pair] {
				t.Fatalf("prefilterPairs pruned (%d,%d) with %d >= MinCount %d co-occurrences",
					pair[0], pair[1], n, minCount)
			}
		}
	})
}
