package sig

import (
	"fmt"
	"sort"
)

// Accumulator maintains, incrementally as sampling ticks close, the same
// statistics the batch training fast path computes in one pass over the
// horizon: per-event outlier spike trains, ordered-pair co-occurrence
// counters within MaxLag (the prefilter's pruning currency), and
// per-event rate/severity statistics. A monitor that feeds it from the
// pipeline's tick tap can rebuild its correlation chains from the live
// counters (Model.Refresh) without replaying the horizon.
//
// The pair counters mirror the batch prefilter exactly. While the total
// co-occurrence mass stays within Budget the accumulator runs a
// streaming version of exactSweep: a ring holds every spike within
// MaxLag of the newest tick, each arriving spike pairs against the ring
// (same-event pairs skipped, simultaneous spikes counted toward both
// orders), so the counters equal what exactSweep would produce over the
// merged timeline. Past the budget it degrades to the block-bucket
// upper bound of blockSweep: per-block event counts whose adjacent
// products bound the true totals from above, so candidate emission
// stays conservative — a pair that could reach MinCount is never lost.
//
// Ticks must be observed in strictly increasing order (the sampler
// closes them that way); an Accumulator is not safe for concurrent use.
//
//elsa:snapshot
type Accumulator struct {
	//elsa:ephemeral configuration is a constructor argument, not stream state
	cfg AccumConfig

	trains SpikeTrains         // event id -> sorted outlier ticks
	counts map[uint64]int32    // ordered pair -> co-occurrence count (upper bound past the budget)
	dirty  map[uint64]struct{} // pairs whose count changed since the last drain
	events map[int]*EventStat

	ring []accSpike // spikes within MaxLag of the newest tick
	//elsa:ephemeral ring head offset; State emits only the live entries
	head int

	lastTick int
	ticks    int
	mass     int64
	exact    bool

	// Block-bucket state, live once the mass budget is blown: per-event
	// spike counts of the previous closed block and the still-open one,
	// over blocks of width MaxLag+1 anchored at tick 0.
	prevBlock, curBlock int
	prev, cur           map[int]int32

	//elsa:ephemeral trim cursor; a resumed accumulator re-trims lazily
	lastTrim int
}

// accSpike is one ring entry: a spike of event E at tick T.
type accSpike struct {
	T int `json:"t"`
	E int `json:"e"`
}

// EventStat is one event type's running statistics: how many ticks it
// spiked on, how many records it produced, when it was last seen and the
// worst severity observed (as a plain int so the package stays free of
// the logs dependency; callers map it back).
type EventStat struct {
	Spikes      int `json:"spikes"`
	Count       int `json:"count"`
	LastTick    int `json:"last_tick"`
	MaxSeverity int `json:"max_severity,omitempty"`
}

// AccumConfig tunes the accumulator.
type AccumConfig struct {
	// MaxLag is the co-occurrence window in ticks; it must match the
	// CrossCorrConfig the refresh path scores candidates with.
	MaxLag int
	// MinCount is the candidate emission threshold (CrossCorrConfig.MinCount).
	MinCount int
	// Budget caps the exact streaming sweep's co-occurrence mass before
	// the accumulator degrades to block-bucket upper bounds. <= 0 selects
	// the batch prefilter's exactSweepBudget.
	Budget int
	// HorizonCap > 0 trims spike trains to the most recent HorizonCap
	// ticks (amortised): refresh then scores pairs over a sliding recent
	// window while the lifetime counters keep gating candidacy.
	HorizonCap int
}

// DefaultAccumConfig matches the experiments' cross-correlation settings.
func DefaultAccumConfig() AccumConfig {
	cc := DefaultCrossCorrConfig()
	return AccumConfig{MaxLag: cc.MaxLag, MinCount: cc.MinCount}
}

// NewAccumulator returns an empty accumulator in the exact regime.
func NewAccumulator(cfg AccumConfig) *Accumulator {
	if cfg.MaxLag < 0 {
		cfg.MaxLag = 0
	}
	if cfg.MinCount < 1 {
		cfg.MinCount = 1
	}
	if cfg.Budget <= 0 {
		cfg.Budget = exactSweepBudget
	}
	return &Accumulator{
		cfg:    cfg,
		trains: make(SpikeTrains),
		counts: make(map[uint64]int32),
		dirty:  make(map[uint64]struct{}),
		events: make(map[int]*EventStat),
		exact:  true,
	}
}

// counterCap is the saturation ceiling, shared with the batch
// pairCounter's order of magnitude but clamped (min(cap, total)) so the
// final value never depends on bucket iteration order.
const counterCap = 1 << 30

func pairKey(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// bump adds n co-occurrences to the ordered pair (a, b), clamped at the
// cap, and marks the pair dirty.
//
//elsa:hotpath
func (ac *Accumulator) bump(a, b int, n int32) {
	k := pairKey(a, b)
	v := ac.counts[k]
	if v >= counterCap {
		return
	}
	if v > counterCap-n {
		v = counterCap
	} else {
		v += n
	}
	ac.counts[k] = v
	ac.dirty[k] = struct{}{}
}

// stat returns the event's stat record, creating it on first sight.
func (ac *Accumulator) stat(id int) *EventStat {
	es := ac.events[id]
	if es == nil {
		es = &EventStat{LastTick: -1}
		ac.events[id] = es
	}
	return es
}

// NoteSeverity records the severity of one record of the event (as an
// int; callers pass their severity enum's value). The per-event maximum
// feeds the refresh path's predictive-chain elimination.
func (ac *Accumulator) NoteSeverity(id, sev int) {
	if es := ac.stat(id); sev > es.MaxSeverity {
		es.MaxSeverity = sev
	}
}

// ObserveTick folds one closed sampling tick into the statistics: counts
// is the tick's per-event record counts (rate statistics), outliers the
// tick's outlier event ids in ascending order (the pipeline's sorted hit
// set). Ticks must arrive in strictly increasing order; a stale tick is
// ignored.
func (ac *Accumulator) ObserveTick(tick int, counts map[int]int, outliers []int) {
	if ac.ticks > 0 && tick <= ac.lastTick {
		return
	}
	ac.ticks++
	ac.lastTick = tick
	for id, n := range counts {
		es := ac.stat(id)
		es.Count += n
		es.LastTick = tick
	}
	if len(outliers) > 0 {
		// Drop ring entries that fell out of the co-occurrence window.
		for ac.head < len(ac.ring) && tick-ac.ring[ac.head].T > ac.cfg.MaxLag {
			ac.head++
		}
		if ac.head > 64 && ac.head*2 > len(ac.ring) {
			n := copy(ac.ring, ac.ring[ac.head:])
			ac.ring = ac.ring[:n]
			ac.head = 0
		}
	}
	for _, e := range outliers {
		tr := ac.trains[e]
		if len(tr) > 0 && tr[len(tr)-1] >= tick {
			continue // duplicate within the tick's hit set
		}
		ac.trains[e] = append(tr, tick)
		ac.stat(e).Spikes++
		if ac.exact {
			ac.exactAdd(tick, e)
		} else {
			ac.bucketAdd(tick, e)
		}
	}
	ac.maybeTrim()
}

// exactAdd pairs one new spike against every live ring entry, mirroring
// exactSweep over the merged timeline: ring entries precede the spike in
// (tick, event) order, same-event pairs are skipped, and a simultaneous
// pair also counts in the reverse order (the kernel's delay-0 bin sees
// it from both sides).
//
//elsa:hotpath
func (ac *Accumulator) exactAdd(tick, e int) {
	for i := ac.head; i < len(ac.ring); i++ {
		r := ac.ring[i]
		if r.E == e {
			continue
		}
		ac.bump(r.E, e, 1)
		if r.T == tick {
			ac.bump(e, r.E, 1)
		}
	}
	ac.mass += int64(len(ac.ring) - ac.head)
	ac.ring = append(ac.ring, accSpike{T: tick, E: e}) //nolint:elsahotpath // amortized: the ring is bounded by the spikes inside one MaxLag window
	if ac.mass > int64(ac.cfg.Budget) {
		ac.switchToBuckets()
	}
}

// switchToBuckets degrades to the block-bucket upper bound: the live
// ring spikes (at most two blocks wide, since the ring spans MaxLag)
// seed the block counts. Pairs among them were already counted exactly,
// so the seeded products double-count those — the bound only ever moves
// up, which is the direction conservative pruning needs.
func (ac *Accumulator) switchToBuckets() {
	ac.exact = false
	g := ac.cfg.MaxLag + 1
	ac.prev, ac.cur = make(map[int]int32), make(map[int]int32)
	ac.prevBlock, ac.curBlock = -1, ac.lastTick/g
	for _, r := range ac.ring[ac.head:] {
		if b := r.T / g; b == ac.curBlock {
			ac.cur[r.E]++
		} else {
			ac.prevBlock = b
			ac.prev[r.E]++
		}
	}
	ac.ring, ac.head = nil, 0
}

// bucketAdd folds a spike into the open block, flushing closed blocks'
// pair products on block advance.
func (ac *Accumulator) bucketAdd(tick, e int) {
	if b := tick / (ac.cfg.MaxLag + 1); b != ac.curBlock {
		ac.flushBlock()
		if b != ac.curBlock+1 {
			// A gap: the closed block has no adjacent successor, so its
			// cross products are zero and prev is irrelevant.
			ac.prev = make(map[int]int32)
			ac.prevBlock = -1
		}
		ac.curBlock = b
	}
	ac.cur[e]++
}

// flushBlock adds the closing block's within-block products and the
// previous block's cross products, exactly as blockSweep does for block
// b: cur x cur plus prev x cur when the blocks are adjacent. prev then
// becomes the closed block.
func (ac *Accumulator) flushBlock() {
	for a, na := range ac.cur {
		for b, nb := range ac.cur {
			if a != b {
				ac.bump(a, b, na*nb)
			}
		}
	}
	if ac.prevBlock >= 0 && ac.curBlock == ac.prevBlock+1 {
		for a, na := range ac.prev {
			for b, nb := range ac.cur {
				if a != b {
					ac.bump(a, b, na*nb)
				}
			}
		}
	}
	ac.prev, ac.cur = ac.cur, ac.prev
	ac.prevBlock = ac.curBlock
	for k := range ac.cur {
		delete(ac.cur, k)
	}
}

// flushPending materialises the still-open block's products so emission
// sees them. The block stays open and keeps its counts, so a later final
// flush re-adds these products — an over-count, tolerated because bucket
// mode is an upper bound by construction.
func (ac *Accumulator) flushPending() {
	if ac.exact || len(ac.cur) == 0 {
		return
	}
	for a, na := range ac.cur {
		for b, nb := range ac.cur {
			if a != b {
				ac.bump(a, b, na*nb)
			}
		}
	}
	if ac.prevBlock >= 0 && ac.curBlock == ac.prevBlock+1 {
		for a, na := range ac.prev {
			for b, nb := range ac.cur {
				if a != b {
					ac.bump(a, b, na*nb)
				}
			}
		}
	}
}

// maybeTrim drops spikes older than the horizon cap, amortised to one
// pass per quarter-cap of tick progress. Counters are lifetime totals
// and stay untouched.
func (ac *Accumulator) maybeTrim() {
	hc := ac.cfg.HorizonCap
	if hc <= 0 || ac.lastTick-ac.lastTrim < hc/4+1 {
		return
	}
	ac.lastTrim = ac.lastTick
	cut := ac.lastTick - hc
	for id, tr := range ac.trains {
		i := sort.SearchInts(tr, cut+1)
		if i == 0 {
			continue
		}
		if i == len(tr) {
			delete(ac.trains, id)
			continue
		}
		ac.trains[id] = append(tr[:0], tr[i:]...)
	}
}

// Ticks returns how many closed ticks have been observed.
func (ac *Accumulator) Ticks() int { return ac.ticks }

// LastTick returns the newest closed tick index (-1 before any tick).
func (ac *Accumulator) LastTick() int {
	if ac.ticks == 0 {
		return -1
	}
	return ac.lastTick
}

// Exact reports whether the pair counters are still exact (the mass
// budget has not been blown).
func (ac *Accumulator) Exact() bool { return ac.exact }

// Events returns the number of event types with at least one spike.
func (ac *Accumulator) Events() int { return len(ac.trains) }

// Trains returns the live spike-train view. The map and slices are the
// accumulator's own: valid to read until the next ObserveTick, never to
// mutate.
func (ac *Accumulator) Trains() SpikeTrains { return ac.trains }

// EventStats returns a copy of the per-event statistics.
func (ac *Accumulator) EventStats() map[int]EventStat {
	out := make(map[int]EventStat, len(ac.events))
	for id, es := range ac.events {
		out[id] = *es
	}
	return out
}

// PairCount returns the accumulated count (or upper bound) for the
// ordered pair.
func (ac *Accumulator) PairCount(a, b int) int {
	n := int(ac.counts[pairKey(a, b)])
	if !ac.exact {
		// Include the open block's pending products in the view.
		n += int(ac.cur[a] * ac.cur[b])
		if ac.prevBlock >= 0 && ac.curBlock == ac.prevBlock+1 {
			n += int(ac.prev[a] * ac.cur[b])
		}
	}
	return n
}

// PairCand is one candidate pair emission: an ordered event pair whose
// accumulated co-occurrence count reached MinCount.
type PairCand struct {
	A, B  int
	Count int
}

// Candidates returns every pair at or above MinCount, sorted by (A, B).
// In bucket mode the still-open block's products are flushed first
// (conservatively) so fresh co-occurrences are never invisible.
func (ac *Accumulator) Candidates() []PairCand {
	ac.flushPending()
	return ac.emit(func(k uint64) bool { return true })
}

// DrainDirty returns the candidates whose count changed since the last
// drain, sorted by (A, B), and clears the dirty set. Pairs still below
// MinCount are dropped from the drain but re-dirty on their next
// increment, so crossing the threshold always re-surfaces them. This is
// the delta a refresh needs to re-score.
func (ac *Accumulator) DrainDirty() []PairCand {
	ac.flushPending()
	out := ac.emit(func(k uint64) bool { _, d := ac.dirty[k]; return d })
	ac.dirty = make(map[uint64]struct{})
	return out
}

// emit collects eligible pairs >= MinCount in deterministic (A, B) order.
func (ac *Accumulator) emit(eligible func(uint64) bool) []PairCand {
	need := int32(ac.cfg.MinCount)
	out := make([]PairCand, 0, len(ac.dirty))
	for k, v := range ac.counts {
		if v >= need && eligible(k) {
			out = append(out, PairCand{A: int(k >> 32), B: int(uint32(k)), Count: int(v)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// AccumState is the serialisable form of an Accumulator, riding the
// session snapshot envelope so a killed monitor resumes its incremental
// statistics mid-stream, bit for bit.
//
//elsa:snapshot-envelope
type AccumState struct {
	MaxLag   int   `json:"max_lag"`
	Exact    bool  `json:"exact"`
	Mass     int64 `json:"mass"`
	LastTick int   `json:"last_tick"`
	TickSeen int   `json:"ticks"`

	Trains map[int][]int     `json:"trains,omitempty"`
	Counts map[uint64]int32  `json:"counts,omitempty"`
	Dirty  []uint64          `json:"dirty,omitempty"`
	Events map[int]EventStat `json:"events,omitempty"`
	Ring   []accSpike        `json:"ring,omitempty"`

	PrevBlock int           `json:"prev_block,omitempty"`
	CurBlock  int           `json:"cur_block,omitempty"`
	Prev      map[int]int32 `json:"prev,omitempty"`
	Cur       map[int]int32 `json:"cur,omitempty"`
}

// State snapshots the accumulator. The snapshot is a deep copy with the
// dirty set sorted, so identical accumulator states serialise to
// identical bytes.
//
//elsa:snapshotter encode
func (ac *Accumulator) State() *AccumState {
	st := &AccumState{
		MaxLag:    ac.cfg.MaxLag,
		Exact:     ac.exact,
		Mass:      ac.mass,
		LastTick:  ac.lastTick,
		TickSeen:  ac.ticks,
		PrevBlock: ac.prevBlock,
		CurBlock:  ac.curBlock,
	}
	if len(ac.trains) > 0 {
		st.Trains = make(map[int][]int, len(ac.trains))
		for id, tr := range ac.trains {
			st.Trains[id] = append([]int(nil), tr...)
		}
	}
	if len(ac.counts) > 0 {
		st.Counts = make(map[uint64]int32, len(ac.counts))
		for k, v := range ac.counts {
			st.Counts[k] = v
		}
	}
	if len(ac.dirty) > 0 {
		st.Dirty = make([]uint64, 0, len(ac.dirty))
		for k := range ac.dirty {
			st.Dirty = append(st.Dirty, k)
		}
		sort.Slice(st.Dirty, func(i, j int) bool { return st.Dirty[i] < st.Dirty[j] })
	}
	if len(ac.events) > 0 {
		st.Events = make(map[int]EventStat, len(ac.events))
		for id, es := range ac.events {
			st.Events[id] = *es
		}
	}
	if live := ac.ring[ac.head:]; len(live) > 0 {
		st.Ring = append([]accSpike(nil), live...)
	}
	if len(ac.prev) > 0 {
		st.Prev = copyBlock(ac.prev)
	}
	if len(ac.cur) > 0 {
		st.Cur = copyBlock(ac.cur)
	}
	return st
}

// RestoreAccumulator rebuilds an accumulator from a snapshot. The
// configured window must match the snapshot's — counters accumulated
// under a different MaxLag would silently mean something else.
//
//elsa:snapshotter decode
func RestoreAccumulator(cfg AccumConfig, st *AccumState) (*Accumulator, error) {
	if st == nil {
		return nil, fmt.Errorf("sig: nil accumulator state")
	}
	ac := NewAccumulator(cfg)
	if st.MaxLag != ac.cfg.MaxLag {
		return nil, fmt.Errorf("sig: accumulator snapshot window MaxLag=%d, config wants %d",
			st.MaxLag, ac.cfg.MaxLag)
	}
	ac.exact = st.Exact
	ac.mass = st.Mass
	ac.lastTick = st.LastTick
	ac.ticks = st.TickSeen
	ac.lastTrim = st.LastTick
	for id, tr := range st.Trains {
		if !sort.IntsAreSorted(tr) {
			return nil, fmt.Errorf("sig: accumulator snapshot train %d not sorted", id)
		}
		ac.trains[id] = append([]int(nil), tr...)
	}
	for k, v := range st.Counts {
		ac.counts[k] = v
	}
	for _, k := range st.Dirty {
		ac.dirty[k] = struct{}{}
	}
	for id, es := range st.Events {
		e := es
		ac.events[id] = &e
	}
	ac.ring = append([]accSpike(nil), st.Ring...)
	if !ac.exact {
		ac.prevBlock, ac.curBlock = st.PrevBlock, st.CurBlock
		ac.prev, ac.cur = copyBlock(st.Prev), copyBlock(st.Cur)
		if ac.prev == nil {
			ac.prev = make(map[int]int32)
		}
		if ac.cur == nil {
			ac.cur = make(map[int]int32)
		}
	}
	return ac, nil
}

func copyBlock(m map[int]int32) map[int]int32 {
	if m == nil {
		return nil
	}
	out := make(map[int]int32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
