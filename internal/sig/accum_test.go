package sig

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// feedTrains replays a batch spike-train set through an accumulator tick
// by tick, the way the pipeline tap would.
func feedTrains(ac *Accumulator, trains SpikeTrains) {
	last := -1
	for _, tr := range trains {
		if len(tr) > 0 && tr[len(tr)-1] > last {
			last = tr[len(tr)-1]
		}
	}
	ids := make([]int, 0, len(trains))
	for id := range trains {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var outliers []int
	for t := 0; t <= last; t++ {
		outliers = outliers[:0]
		for _, id := range ids {
			tr := trains[id]
			if i := sort.SearchInts(tr, t); i < len(tr) && tr[i] == t {
				outliers = append(outliers, id)
			}
		}
		ac.ObserveTick(t, nil, outliers)
	}
}

// batchCounts runs the frozen batch exact sweep over the same trains and
// returns the per-ordered-pair counts keyed by real event ids.
func batchCounts(trains SpikeTrains, maxLag int) map[[2]int]int {
	ids := make([]int, 0, len(trains))
	for id := range trains {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	tl := mergeTimeline(trains, ids)
	counts := newPairCounter(len(ids))
	exactSweep(tl, maxLag, counts)
	out := make(map[[2]int]int)
	for ai := range ids {
		for bi := range ids {
			if ai == bi {
				continue
			}
			if n := counterGet(counts, int32(ai), int32(bi)); n > 0 {
				out[[2]int{ids[ai], ids[bi]}] = n
			}
		}
	}
	return out
}

func accumCounts(ac *Accumulator) map[[2]int]int {
	out := make(map[[2]int]int)
	for k, v := range ac.counts {
		if v > 0 {
			out[[2]int{int(k >> 32), int(uint32(k))}] = int(v)
		}
	}
	return out
}

// TestAccumulatorMatchesBatchSweep: in the exact regime the streaming
// ring sweep must reproduce the batch exactSweep counters bit for bit on
// randomized trains, including simultaneous-spike double counting.
func TestAccumulatorMatchesBatchSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	for trial := 0; trial < 40; trial++ {
		maxLag := []int{0, 1, 5, 17, 60}[trial%5]
		trains := randomTrains(rng, trainDensity(trial%3))
		if len(trains) < 2 {
			continue
		}
		ac := NewAccumulator(AccumConfig{MaxLag: maxLag, MinCount: 1, Budget: 1 << 30})
		feedTrains(ac, trains)
		if !ac.Exact() {
			t.Fatalf("trial %d: accumulator left exact regime under a huge budget", trial)
		}
		want := batchCounts(trains, maxLag)
		if got := accumCounts(ac); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (maxLag=%d): incremental counters diverge\n got=%v\nwant=%v",
				trial, maxLag, got, want)
		}
		for id, tr := range trains {
			if !reflect.DeepEqual(ac.Trains()[id], tr) {
				t.Fatalf("trial %d: train %d diverges", trial, id)
			}
		}
	}
}

// TestAccumulatorBucketModeUpperBounds: past the mass budget the
// counters must upper-bound the true counts and candidate emission must
// never lose a pair that reaches MinCount.
func TestAccumulatorBucketModeUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trains := randomTrains(rng, burstyTrains)
	maxLag := 12
	ac := NewAccumulator(AccumConfig{MaxLag: maxLag, MinCount: 3, Budget: 50})
	feedTrains(ac, trains)
	if ac.Exact() {
		t.Fatal("accumulator stayed exact past a tiny budget")
	}
	ref := batchCounts(trains, maxLag)
	cands := ac.Candidates()
	set := make(map[[2]int]int, len(cands))
	for _, c := range cands {
		set[[2]int{c.A, c.B}] = c.Count
	}
	for pair, n := range ref {
		if got := ac.PairCount(pair[0], pair[1]); got < n {
			t.Fatalf("pair %v: bucket-mode count %d undercounts exact %d", pair, got, n)
		}
		if n >= 3 {
			if _, ok := set[pair]; !ok {
				t.Fatalf("pair %v with %d co-occurrences missing from candidates", pair, n)
			}
		}
	}
}

// TestAccumulatorDirtyDrain: DrainDirty returns exactly the candidates
// whose counters changed since the previous drain, and clears them.
func TestAccumulatorDirtyDrain(t *testing.T) {
	ac := NewAccumulator(AccumConfig{MaxLag: 5, MinCount: 2})
	// Events 1 and 2 co-occur on ticks 0..3 (1 then 2, lag 1).
	for tick := 0; tick < 8; tick += 2 {
		ac.ObserveTick(tick, nil, []int{1})
		ac.ObserveTick(tick+1, nil, []int{2})
	}
	first := ac.DrainDirty()
	if len(first) != 2 { // (1,2) and (2,1): lag 1 and lag 5 both within MaxLag
		t.Fatalf("first drain = %v, want both orders of the co-occurring pair", first)
	}
	if again := ac.DrainDirty(); len(again) != 0 {
		t.Fatalf("second drain without new data = %v, want empty", again)
	}
	// New co-occurrences re-dirty the pair.
	ac.ObserveTick(20, nil, []int{1})
	ac.ObserveTick(21, nil, []int{2})
	delta := ac.DrainDirty()
	if len(delta) == 0 {
		t.Fatal("drain after new co-occurrences is empty")
	}
	for _, c := range delta {
		if c.A != 1 && c.A != 2 {
			t.Fatalf("unexpected dirty pair %+v", c)
		}
	}
}

// TestAccumulatorBelowThresholdStaysDirtyAcrossCrossing: a pair cleared
// from the dirty set while below MinCount must re-surface when a later
// increment pushes it across the threshold.
func TestAccumulatorBelowThresholdStaysDirtyAcrossCrossing(t *testing.T) {
	ac := NewAccumulator(AccumConfig{MaxLag: 3, MinCount: 2})
	ac.ObserveTick(0, nil, []int{1})
	ac.ObserveTick(1, nil, []int{2})
	if d := ac.DrainDirty(); len(d) != 0 {
		t.Fatalf("pair below MinCount drained as candidate: %v", d)
	}
	ac.ObserveTick(10, nil, []int{1})
	ac.ObserveTick(11, nil, []int{2})
	d := ac.DrainDirty()
	if len(d) != 1 || d[0].A != 1 || d[0].B != 2 || d[0].Count != 2 {
		t.Fatalf("threshold crossing not re-surfaced: %v", d)
	}
}

// TestAccumulatorRateStats checks the per-event statistics tap.
func TestAccumulatorRateStats(t *testing.T) {
	ac := NewAccumulator(DefaultAccumConfig())
	ac.ObserveTick(0, map[int]int{7: 3, 9: 1}, []int{7})
	ac.ObserveTick(1, map[int]int{7: 2}, nil)
	ac.NoteSeverity(7, 3)
	ac.NoteSeverity(7, 1) // lower severity must not regress the max
	st := ac.EventStats()
	if es := st[7]; es.Count != 5 || es.Spikes != 1 || es.LastTick != 1 || es.MaxSeverity != 3 {
		t.Fatalf("event 7 stats = %+v", es)
	}
	if es := st[9]; es.Count != 1 || es.Spikes != 0 {
		t.Fatalf("event 9 stats = %+v", es)
	}
	if ac.Ticks() != 2 || ac.LastTick() != 1 || ac.Events() != 1 {
		t.Fatalf("counters: ticks=%d last=%d events=%d", ac.Ticks(), ac.LastTick(), ac.Events())
	}
}

// TestAccumulatorHorizonTrim: trains are trimmed to the cap while the
// lifetime counters keep their totals.
func TestAccumulatorHorizonTrim(t *testing.T) {
	ac := NewAccumulator(AccumConfig{MaxLag: 2, MinCount: 1, HorizonCap: 50})
	for tick := 0; tick < 500; tick += 2 {
		ac.ObserveTick(tick, nil, []int{1})
		ac.ObserveTick(tick+1, nil, []int{2})
	}
	tr := ac.Trains()[1]
	if len(tr) == 0 || tr[0] < ac.LastTick()-50-13 {
		t.Fatalf("train not trimmed: first=%d last tick=%d", tr[0], ac.LastTick())
	}
	if n := ac.PairCount(1, 2); n != 250 {
		t.Fatalf("lifetime counter trimmed too: %d, want 250", n)
	}
}

// TestAccumulatorStateRoundTrip: State/Restore must reproduce the
// accumulator exactly — continuing both from the same point yields
// identical counters and identical snapshots — and the JSON encoding of
// equal states must be byte-identical (the kill/resume contract).
func TestAccumulatorStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, budget := range []int{1 << 30, 40} { // exact regime and bucket regime
		trains := randomTrains(rng, burstyTrains)
		cfg := AccumConfig{MaxLag: 9, MinCount: 2, Budget: budget}
		ac := NewAccumulator(cfg)
		feedTrains(ac, trains)

		st := ac.State()
		blob, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var decoded AccumState
		if err := json.Unmarshal(blob, &decoded); err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreAccumulator(cfg, &decoded)
		if err != nil {
			t.Fatal(err)
		}

		// Continue both with the same extra ticks.
		base := ac.LastTick() + 3
		for i := 0; i < 30; i++ {
			out := []int{1 + i%3, 4}
			ac.ObserveTick(base+i, map[int]int{4: 2}, out)
			restored.ObserveTick(base+i, map[int]int{4: 2}, out)
		}
		if !reflect.DeepEqual(accumCounts(ac), accumCounts(restored)) {
			t.Fatalf("budget %d: counters diverge after resume", budget)
		}
		if !reflect.DeepEqual(ac.Candidates(), restored.Candidates()) {
			t.Fatalf("budget %d: candidates diverge after resume", budget)
		}
		b1, _ := json.Marshal(ac.State())
		b2, _ := json.Marshal(restored.State())
		if !bytes.Equal(b1, b2) {
			t.Fatalf("budget %d: post-resume snapshots not byte-identical", budget)
		}
	}
}

// TestRestoreAccumulatorRejectsWindowMismatch pins the MaxLag guard.
func TestRestoreAccumulatorRejectsWindowMismatch(t *testing.T) {
	ac := NewAccumulator(AccumConfig{MaxLag: 10, MinCount: 1})
	ac.ObserveTick(0, nil, []int{1})
	st := ac.State()
	if _, err := RestoreAccumulator(AccumConfig{MaxLag: 20, MinCount: 1}, st); err == nil {
		t.Fatal("restore across MaxLag mismatch succeeded")
	}
	if _, err := RestoreAccumulator(AccumConfig{MaxLag: 10, MinCount: 1}, nil); err == nil {
		t.Fatal("restore from nil state succeeded")
	}
}

// TestPairTelemetryDedupesAcrossRounds pins the refresh-telemetry fix: a
// pair pruned by the prefilter in round one and kernel-scored in round
// two must move from Pruned to Scored, not count in both. The naive
// per-round sum double-counts it; the lifecycle sets must not.
func TestPairTelemetryDedupesAcrossRounds(t *testing.T) {
	tel := NewPairTelemetry()

	// Round 1: universe of 3 events; pair (1,2) scored and kept, pair
	// (1,3) pruned by the prefilter (never scored).
	tel.BeginRound(3)
	tel.NoteScored(1, 2)
	tel.NoteKept(1, 2, true)
	r1 := tel.Stats()
	if r1.Scored != 1 || r1.Kept != 1 || r1.Pruned() != r1.Candidates-1 {
		t.Fatalf("round 1 stats = %+v", r1)
	}

	// Round 2: (1,3)'s counter crossed MinCount, the kernel runs it and
	// keeps it; (1,2) re-scores and is dropped this time.
	tel.BeginRound(3)
	tel.NoteScored(1, 3)
	tel.NoteKept(1, 3, true)
	tel.NoteScored(1, 2)
	tel.NoteKept(1, 2, false)
	got := tel.Stats()

	want := PairStats{Events: 3, Candidates: 6, Scored: 2, Kept: 1}
	if got != want {
		t.Fatalf("deduped stats = %+v, want %+v", got, want)
	}
	// The regression: summing the two rounds' independent stats would
	// report (1,3) once as pruned and once as scored, and (1,2) scored
	// twice. The invariant Scored + Pruned == Candidates must hold on
	// the cumulative view.
	if got.Scored+got.Pruned() != got.Candidates {
		t.Fatalf("lifecycle buckets overlap: scored=%d pruned=%d candidates=%d",
			got.Scored, got.Pruned(), got.Candidates)
	}

	// Round-trip the state for the resume path.
	restored := RestorePairTelemetry(tel.State())
	if restored.Stats() != got {
		t.Fatalf("telemetry state round-trip diverged: %+v vs %+v", restored.Stats(), got)
	}
}

// FuzzIncrementalCounters feeds arbitrary spike layouts — including the
// permutations and duplications the ingest dedup ring admits, which all
// collapse to the same per-tick outlier sets — through the streaming
// accumulator and asserts its exact-regime counters equal the batch
// exactSweep over the identical merged timeline.
func FuzzIncrementalCounters(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 3, 0, 0, 1, 1, 2, 0, 3, 7, 4, 1}, uint8(6))
	f.Add([]byte{1, 0, 2, 0, 3, 0, 4, 0, 0, 0}, uint8(0))
	f.Add([]byte{0, 7, 1, 7, 0, 7, 1, 7, 0, 7, 1, 7}, uint8(31))
	f.Add([]byte{}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, lagB uint8) {
		trains, ids := fuzzTrains(data)
		if len(ids) < 2 {
			return
		}
		maxLag := int(lagB % 32)
		ac := NewAccumulator(AccumConfig{MaxLag: maxLag, MinCount: 1, Budget: 1 << 30})
		feedTrains(ac, trains)
		want := batchCounts(trains, maxLag)
		if got := accumCounts(ac); !reflect.DeepEqual(got, want) {
			t.Fatalf("incremental counters diverge from batch exactSweep\n got=%v\nwant=%v", got, want)
		}
	})
}
