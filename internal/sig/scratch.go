package sig

import (
	"math"

	"github.com/elsa-hpc/elsa/internal/fft"
)

// Scratch holds the reusable buffers one cross-correlation worker needs.
// The kernel's histogram and prefix-sum arrays are sized by MaxLag, not by
// the trains, so a worker that scores thousands of pairs can recycle the
// same two allocations for all of them; the bit-packed and FFT kernels
// add span-sized word and complex buffers, grown once and recycled the
// same way. A Scratch is not safe for concurrent use; give each goroutine
// its own. The zero value is ready to use.
type Scratch struct {
	hist   []int
	prefix []int

	bitsA, bitsB []uint64
	fa, fb       []complex128

	lastKernel KernelKind
}

// LastKernel reports which kernel built the histogram of the most recent
// CrossCorrelate call — telemetry for the dispatch heuristic and the
// crossover benchmarks.
func (s *Scratch) LastKernel() KernelKind { return s.lastKernel }

// growBits resizes the zeroed bitset buffers for the bit-packed kernel.
//
//elsa:hotpath
func (s *Scratch) growBits(na, nb int) (wa, wb []uint64) {
	if cap(s.bitsA) < na {
		s.bitsA = make([]uint64, na) //nolint:elsahotpath // amortized: grows to the largest span once, then reused for every pair
	} else {
		s.bitsA = s.bitsA[:na]
	}
	for i := range s.bitsA {
		s.bitsA[i] = 0
	}
	if cap(s.bitsB) < nb {
		s.bitsB = make([]uint64, nb) //nolint:elsahotpath // amortized: grows to the largest span once, then reused for every pair
	} else {
		s.bitsB = s.bitsB[:nb]
	}
	for i := range s.bitsB {
		s.bitsB[i] = 0
	}
	return s.bitsA, s.bitsB
}

// growFFT resizes the zeroed complex buffers for the FFT kernel. The
// returned buffers are power-of-two sized by construction, so the
// transforms have no error path.
//
//elsa:hotpath
func (s *Scratch) growFFT(span int) (fa, fb []complex128) {
	s.fa = fft.GrowPow2(s.fa, span) //nolint:elsahotpath // amortized: fft.GrowPow2 reuses capacity after the first growth to the largest span
	s.fb = fft.GrowPow2(s.fb, span) //nolint:elsahotpath // amortized: fft.GrowPow2 reuses capacity after the first growth to the largest span
	return s.fa, s.fb
}

// grow resizes the scratch buffers for a MaxLag+1-bin histogram. hist is
// returned zeroed; prefix is fully overwritten by the kernel so it is only
// resized.
//
//elsa:hotpath
func (s *Scratch) grow(n int) (hist, prefix []int) {
	if cap(s.hist) < n {
		s.hist = make([]int, n) //nolint:elsahotpath // amortized: grows to MaxLag+1 once, then reused for every pair
	} else {
		s.hist = s.hist[:n]
		for i := range s.hist {
			s.hist[i] = 0
		}
	}
	if cap(s.prefix) < n+1 {
		s.prefix = make([]int, n+1) //nolint:elsahotpath // amortized: grows to MaxLag+2 once, then reused for every pair
	} else {
		s.prefix = s.prefix[:n+1]
	}
	return s.hist, s.prefix
}

// CrossCorrelate finds the best delay in [0, MaxLag] from spike train a to
// spike train b (sorted sample indices), reusing the scratch buffers. It
// returns false when no delay meets the thresholds. This is the
// zero-allocation kernel behind the package-level CrossCorrelate.
//
//elsa:hotpath
func (s *Scratch) CrossCorrelate(a, b []int, cfg CrossCorrConfig) (delay, count int, score float64, ok bool) {
	if len(a) == 0 || len(b) == 0 || cfg.MaxLag < 0 {
		return 0, 0, 0, false
	}
	hist, prefix := s.grow(cfg.MaxLag + 1)
	s.buildHist(a, b, cfg.MaxLag, cfg.Kernel, hist)
	// Prefix sums let each candidate lag be scored over its own
	// delay-proportional window (DelayTolerance), so long cascades with
	// multiplicative jitter still accumulate their co-occurrence mass.
	// Ties on the windowed count break toward the raw histogram peak, so
	// an exact repeated delay is reported exactly.
	prefix[0] = 0
	first, last := -1, -1
	for i, h := range hist {
		prefix[i+1] = prefix[i] + h
		if h != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return 0, 0, 0, false
	}
	// The winner is the lag with the highest co-occurrence *density*
	// (count per window width): a raw-count argmax would always favour
	// the widest windows on any regularly firing pair of trains.
	//
	// Only lags whose tolerance window [lag-tol, lag+tol] can reach the
	// populated bin range [first, last] can score non-zero, and with
	// tol = max(base, lag/4) both window edges are monotone in lag, so the
	// scan is clipped to a conservative superset of that range (every
	// skipped lag provably sums to zero and would be skipped by the c == 0
	// test anyway).
	bse := cfg.Tolerance
	if bse < 0 {
		bse = 0
	}
	lagLo := min(first-bse, (4*first)/5-1)
	if lagLo < 0 {
		lagLo = 0
	}
	lagHi := max(last+bse, (4*last)/3+2)
	if lagHi > cfg.MaxLag {
		lagHi = cfg.MaxLag
	}
	best, bestCount, bestRaw := -1, 0, 0
	bestDensity := 0.0
	for lag := lagLo; lag <= lagHi; lag++ {
		tol := DelayTolerance(lag, cfg.Tolerance)
		c := windowSum(prefix, lag-tol, lag+tol, cfg.MaxLag)
		if c == 0 {
			continue
		}
		density := float64(c) / float64(2*tol+1)
		if density > bestDensity || (density == bestDensity && hist[lag] > bestRaw) {
			best, bestCount, bestRaw, bestDensity = lag, c, hist[lag], density
		}
	}
	if best < 0 || bestCount < cfg.MinCount {
		return 0, 0, 0, false
	}
	// Two acceptance views: the symmetric normalised cross-correlation,
	// and the directional confidence (how often A is followed by B). The
	// latter keeps rare-precursor -> common-failure pairs alive, which the
	// symmetric norm would punish. Confidence acceptance demands a real
	// lift over the random co-occurrence rate of the window, since wide
	// long-lag windows hit dense trains by chance.
	norm := math.Sqrt(float64(len(a)) * float64(len(b)))
	sc := float64(bestCount) / norm
	if conf := float64(bestCount) / float64(len(a)); !cfg.SymmetricOnly && conf > sc && liftOK(conf, best, len(b), cfg) {
		sc = conf
	}
	if sc > 1 {
		sc = 1
	}
	if sc < cfg.MinScore {
		return 0, 0, 0, false
	}
	return best, bestCount, sc, true
}

// windowSum sums hist over [lo, hi] clamped to [0, maxLag], via the
// prefix-sum array.
//
//elsa:hotpath
func windowSum(prefix []int, lo, hi, maxLag int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > maxLag {
		hi = maxLag
	}
	if lo > hi {
		return 0
	}
	return prefix[hi+1] - prefix[lo]
}
