// Package sig implements ELSA's signal view of an event log: every event
// type becomes a discrete signal sampled at a fixed rate (the paper uses
// 10 seconds), which is then characterised as periodic, noise or silent and
// cross-correlated with other signals to seed the data-mining stage.
package sig

import (
	"fmt"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// DefaultStep is the sampling period from the paper.
const DefaultStep = 10 * time.Second

// Signal is the occurrence-count series of one event type.
type Signal struct {
	Event   int           // event/template id
	Start   time.Time     // time of sample 0
	Step    time.Duration // sampling period
	Samples []float64     // occurrence counts per period
}

// New returns a zeroed signal covering [start, end) at the given step.
func New(event int, start, end time.Time, step time.Duration) *Signal {
	if step <= 0 {
		step = DefaultStep
	}
	n := int(end.Sub(start) / step)
	if n < 0 {
		n = 0
	}
	return &Signal{Event: event, Start: start, Step: step, Samples: make([]float64, n)}
}

// Len returns the number of samples.
func (s *Signal) Len() int { return len(s.Samples) }

// End returns the time just past the last sample.
func (s *Signal) End() time.Time {
	return s.Start.Add(time.Duration(len(s.Samples)) * s.Step)
}

// Index returns the sample index holding time t (floor division, so times
// before Start map to negative indices). Callers check against Len.
func (s *Signal) Index(t time.Time) int {
	d := t.Sub(s.Start)
	idx := int(d / s.Step)
	if d < 0 && d%s.Step != 0 {
		idx--
	}
	return idx
}

// TimeAt returns the start time of sample i.
func (s *Signal) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// Add increments the sample containing t; occurrences outside the signal's
// range are dropped (they belong to another window).
func (s *Signal) Add(t time.Time) {
	i := s.Index(t)
	if i >= 0 && i < len(s.Samples) {
		s.Samples[i]++
	}
}

// Append extends the signal with additional samples (the online phase
// concatenates freshly sampled data onto the stored signal).
func (s *Signal) Append(samples ...float64) {
	s.Samples = append(s.Samples, samples...)
}

// TrimTail keeps only the last max samples, advancing Start accordingly.
// The online module trims signals to a bounded history (the paper keeps
// two months) to meet its execution-time budget.
func (s *Signal) TrimTail(max int) {
	if max < 0 || len(s.Samples) <= max {
		return
	}
	drop := len(s.Samples) - max
	s.Start = s.Start.Add(time.Duration(drop) * s.Step)
	s.Samples = append(s.Samples[:0], s.Samples[drop:]...)
}

// Clone returns a deep copy.
func (s *Signal) Clone() *Signal {
	return &Signal{Event: s.Event, Start: s.Start, Step: s.Step,
		Samples: append([]float64(nil), s.Samples...)}
}

// String summarises the signal.
func (s *Signal) String() string {
	return fmt.Sprintf("signal{event=%d, n=%d, step=%s, start=%s}",
		s.Event, len(s.Samples), s.Step, s.Start.Format(time.RFC3339))
}

// Extract builds one signal per event type found in recs over [start, end).
// Records must already carry EventID (the HELO stage ran). The result maps
// event id to signal.
func Extract(recs []logs.Record, start, end time.Time, step time.Duration) map[int]*Signal {
	out := make(map[int]*Signal)
	for _, r := range recs {
		if r.EventID < 0 {
			continue
		}
		sg, ok := out[r.EventID]
		if !ok {
			sg = New(r.EventID, start, end, step)
			out[r.EventID] = sg
		}
		sg.Add(r.Time)
	}
	return out
}

// OccurrenceIndices returns the sample indices with non-zero counts, in
// order. Spike trains in this form feed the cross-correlation and mining
// stages.
func (s *Signal) OccurrenceIndices() []int {
	var out []int
	for i, v := range s.Samples {
		if v != 0 {
			out = append(out, i)
		}
	}
	return out
}
