package sig

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// referenceCrossCorrelate is a frozen, verbatim copy of the kernel as it
// stood before the Scratch/prefilter fast path: it allocates fresh
// hist/prefix buffers on every call. The equivalence tests below compare
// the fast path against it bit for bit.
func referenceCrossCorrelate(a, b []int, cfg CrossCorrConfig) (delay, count int, score float64, ok bool) {
	if len(a) == 0 || len(b) == 0 || cfg.MaxLag < 0 {
		return 0, 0, 0, false
	}
	hist := make([]int, cfg.MaxLag+1)
	for _, t := range a {
		lo := sort.SearchInts(b, t)
		for j := lo; j < len(b) && b[j]-t <= cfg.MaxLag; j++ {
			hist[b[j]-t]++
		}
	}
	prefix := make([]int, len(hist)+1)
	for i, h := range hist {
		prefix[i+1] = prefix[i] + h
	}
	window := func(lo, hi int) int {
		if lo < 0 {
			lo = 0
		}
		if hi > cfg.MaxLag {
			hi = cfg.MaxLag
		}
		if lo > hi {
			return 0
		}
		return prefix[hi+1] - prefix[lo]
	}
	best, bestCount, bestRaw := -1, 0, 0
	bestDensity := 0.0
	for lag := 0; lag <= cfg.MaxLag; lag++ {
		tol := DelayTolerance(lag, cfg.Tolerance)
		c := window(lag-tol, lag+tol)
		if c == 0 {
			continue
		}
		density := float64(c) / float64(2*tol+1)
		if density > bestDensity || (density == bestDensity && hist[lag] > bestRaw) {
			best, bestCount, bestRaw, bestDensity = lag, c, hist[lag], density
		}
	}
	if best < 0 || bestCount < cfg.MinCount {
		return 0, 0, 0, false
	}
	norm := math.Sqrt(float64(len(a)) * float64(len(b)))
	sc := float64(bestCount) / norm
	if conf := float64(bestCount) / float64(len(a)); !cfg.SymmetricOnly && conf > sc && liftOK(conf, best, len(b), cfg) {
		sc = conf
	}
	if sc > 1 {
		sc = 1
	}
	if sc < cfg.MinScore {
		return 0, 0, 0, false
	}
	return best, bestCount, sc, true
}

// referenceAllPairs is the pre-change AllPairs: a blind sequential
// enumeration of every ordered pair through the reference kernel.
func referenceAllPairs(trains SpikeTrains, cfg CrossCorrConfig) []PairCorrelation {
	ids := make([]int, 0, len(trains))
	for id := range trains {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []PairCorrelation
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			delay, count, score, ok := referenceCrossCorrelate(trains[a], trains[b], cfg)
			if !ok {
				continue
			}
			if delay == 0 && a > b {
				continue
			}
			out = append(out, PairCorrelation{A: a, B: b, Delay: delay, Count: count, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// trainDensity names a spike-train generation regime.
type trainDensity int

const (
	sparseTrains trainDensity = iota
	denseTrains
	burstyTrains
)

func (d trainDensity) String() string {
	return [...]string{"sparse", "dense", "bursty"}[d]
}

// randomTrains generates a SpikeTrains set in the given density regime.
// Sparse: a handful of spikes scattered over a large horizon. Dense: high
// occupancy over a short horizon. Bursty: tight clusters separated by
// silence, some trains sharing burst anchors so real correlations appear.
func randomTrains(rng *rand.Rand, d trainDensity) SpikeTrains {
	n := 2 + rng.Intn(10)
	horizon := 2000 + rng.Intn(8000)
	trains := make(SpikeTrains, n)
	// Shared anchors give correlated structure across trains.
	anchors := make([]int, 3+rng.Intn(8))
	for i := range anchors {
		anchors[i] = rng.Intn(horizon)
	}
	for id := 0; id < n; id++ {
		set := map[int]bool{}
		switch d {
		case sparseTrains:
			for k := 0; k < 2+rng.Intn(8); k++ {
				set[rng.Intn(horizon)] = true
			}
		case denseTrains:
			for k := 0; k < horizon/4; k++ {
				set[rng.Intn(horizon)] = true
			}
		case burstyTrains:
			delay := rng.Intn(40)
			for _, a := range anchors {
				if rng.Intn(3) == 0 {
					continue
				}
				for k := 0; k < 1+rng.Intn(4); k++ {
					t := a + delay + rng.Intn(5)
					if t < horizon {
						set[t] = true
					}
				}
			}
			if len(set) == 0 {
				set[rng.Intn(horizon)] = true
			}
		}
		train := make([]int, 0, len(set))
		for t := range set {
			train = append(train, t)
		}
		sort.Ints(train)
		trains[id+1] = train
	}
	return trains
}

// TestAllPairsMatchesReference is the randomized property test: across
// spike-train densities, config variations and both prefilter sweep
// regimes (exact per-instance counting and the block-bucket upper bound),
// AllPairs must return exactly the same []PairCorrelation as the naive
// pre-change implementation. Run under -race it also exercises the
// worker-pool scratch discipline.
func TestAllPairsMatchesReference(t *testing.T) {
	defer func(old int) { exactSweepBudget = old }(exactSweepBudget)
	regimes := []struct {
		name   string
		budget int
	}{
		{"exact-sweep", 1 << 62},
		{"block-sweep", 0},
		{"adaptive", 1 << 22},
	}
	for _, reg := range regimes {
		exactSweepBudget = reg.budget
		t.Run(reg.name, func(t *testing.T) {
			for _, d := range []trainDensity{sparseTrains, denseTrains, burstyTrains} {
				t.Run(d.String(), func(t *testing.T) {
					rng := rand.New(rand.NewSource(1000 + int64(d)))
					for trial := 0; trial < 15; trial++ {
						trains := randomTrains(rng, d)
						cfg := DefaultCrossCorrConfig()
						switch trial % 4 {
						case 1:
							cfg.MaxLag = 6 // the data-mining baseline's narrow window
							cfg.SymmetricOnly = true
						case 2:
							cfg.Horizon = 10000 // engage the lift gate
							cfg.MinCount = 2
						case 3:
							cfg.MaxLag = 0 // simultaneous-only edge
							cfg.MinScore = 0.05
						}
						got := AllPairs(trains, cfg)
						want := referenceAllPairs(trains, cfg)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s trial %d: fast path diverged\n got=%v\nwant=%v", d, trial, got, want)
						}
					}
				})
			}
		})
	}
}

// TestScratchKernelMatchesReference compares the zero-alloc kernel against
// the frozen reference on random pairs, reusing one Scratch throughout so
// stale buffer contents would be caught.
func TestScratchKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var scratch Scratch
	for trial := 0; trial < 300; trial++ {
		trains := randomTrains(rng, trainDensity(trial%3))
		cfg := DefaultCrossCorrConfig()
		if trial%2 == 0 {
			cfg.MaxLag = 1 + rng.Intn(400)
		}
		var a, b []int
		for _, tr := range trains {
			if a == nil {
				a = tr
			} else {
				b = tr
				break
			}
		}
		d1, c1, s1, ok1 := scratch.CrossCorrelate(a, b, cfg)
		d2, c2, s2, ok2 := referenceCrossCorrelate(a, b, cfg)
		if d1 != d2 || c1 != c2 || s1 != s2 || ok1 != ok2 {
			t.Fatalf("trial %d: scratch kernel diverged: (%d,%d,%v,%v) vs (%d,%d,%v,%v)",
				trial, d1, c1, s1, ok1, d2, c2, s2, ok2)
		}
	}
}

// TestCrossCorrelateZeroAlloc verifies the scratch kernel allocates
// nothing once its buffers are warm.
func TestCrossCorrelateZeroAlloc(t *testing.T) {
	cfg := DefaultCrossCorrConfig()
	var a, b []int
	for i := 0; i < 50; i++ {
		a = append(a, i*100)
		b = append(b, i*100+7)
	}
	var scratch Scratch
	scratch.CrossCorrelate(a, b, cfg) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		scratch.CrossCorrelate(a, b, cfg)
	})
	if allocs != 0 {
		t.Errorf("warm scratch kernel allocates %.1f objects per run, want 0", allocs)
	}
}

// TestAllPairsStatsInvariants checks the pruning report is coherent with
// the returned pairs.
func TestAllPairsStatsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		trains := randomTrains(rng, burstyTrains)
		cfg := DefaultCrossCorrConfig()
		out, st := AllPairsStats(trains, cfg)
		if st.Events != len(trains) {
			t.Fatalf("Events = %d, want %d", st.Events, len(trains))
		}
		if st.Candidates != len(trains)*(len(trains)-1) {
			t.Fatalf("Candidates = %d, want %d", st.Candidates, len(trains)*(len(trains)-1))
		}
		if st.Scored > st.Candidates || st.Scored < 0 {
			t.Fatalf("Scored = %d out of range (candidates %d)", st.Scored, st.Candidates)
		}
		if st.Kept != len(out) {
			t.Fatalf("Kept = %d, want %d", st.Kept, len(out))
		}
		if st.Pruned() != st.Candidates-st.Scored {
			t.Fatalf("Pruned() = %d, want %d", st.Pruned(), st.Candidates-st.Scored)
		}
	}
}

// benchTrains builds an E-event-type spike-train set shaped like an
// outlier-filtered day: most trains sparse and unrelated, a few cascades
// with genuine delays.
func benchTrains(events int) SpikeTrains {
	rng := rand.New(rand.NewSource(42))
	trains := make(SpikeTrains, events)
	horizon := 8640 // one day at 10 s sampling
	for id := 0; id < events; id++ {
		set := map[int]bool{}
		for k := 0; k < 4+rng.Intn(12); k++ {
			set[rng.Intn(horizon)] = true
		}
		if id%10 == 1 { // cascade follower of id-1
			for _, t := range trains[id-1] {
				set[t+6+rng.Intn(2)] = true
			}
		}
		train := make([]int, 0, len(set))
		for t := range set {
			train = append(train, t)
		}
		sort.Ints(train)
		trains[id] = train
	}
	return trains
}

// BenchmarkAllPairsFastVsReference pits the prefilter+scratch path against
// the frozen pre-change implementation on a 200-event-type profile, making
// the fast-path win measurable in one place.
func BenchmarkAllPairsFastVsReference(b *testing.B) {
	trains := benchTrains(200)
	cfg := DefaultCrossCorrConfig()
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		var pairs int
		for i := 0; i < b.N; i++ {
			pairs = len(AllPairs(trains, cfg))
		}
		b.ReportMetric(float64(pairs), "pairs")
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		var pairs int
		for i := 0; i < b.N; i++ {
			pairs = len(referenceAllPairs(trains, cfg))
		}
		b.ReportMetric(float64(pairs), "pairs")
	})
}
