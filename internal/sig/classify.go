package sig

import (
	"github.com/elsa-hpc/elsa/internal/fft"
	"github.com/elsa-hpc/elsa/internal/stats"
)

// Class is the behaviour type of an event signal. The paper (Figure 1)
// identifies exactly three: periodic signals (daemons, monitors), noise
// signals (bursty chatter) and silent signals (event types that almost
// never appear, whose mere occurrence is the anomaly — the majority of
// event types).
type Class int

// Signal classes.
const (
	Noise Class = iota
	Periodic
	Silent
)

var classNames = [...]string{"noise", "periodic", "silent"}

// String names the class.
func (c Class) String() string {
	if c < Noise || c > Silent {
		return "invalid"
	}
	return classNames[c]
}

// ClassifyConfig tunes classification.
type ClassifyConfig struct {
	// SilentZeroFraction is the minimum fraction of empty samples for a
	// signal to count as silent.
	SilentZeroFraction float64
	// PeriodicACThreshold is the autocorrelation a lag must reach for the
	// signal to count as periodic.
	PeriodicACThreshold float64
	// MaxPeriod bounds the period search, in samples.
	MaxPeriod int
}

// DefaultClassifyConfig returns the thresholds used throughout the
// experiments.
func DefaultClassifyConfig() ClassifyConfig {
	return ClassifyConfig{
		SilentZeroFraction:  0.995,
		PeriodicACThreshold: 0.5,
		MaxPeriod:           4320, // 12 hours at the 10 s step
	}
}

// Classify determines the behaviour class of samples and, for periodic
// signals, the dominant period in samples (0 otherwise).
func Classify(samples []float64, cfg ClassifyConfig) (Class, int) {
	if len(samples) == 0 {
		return Silent, 0
	}
	if stats.ZeroFraction(samples) >= cfg.SilentZeroFraction {
		return Silent, 0
	}
	maxLag := cfg.MaxPeriod
	if maxLag >= len(samples) {
		maxLag = len(samples) - 1
	}
	if maxLag < 2 {
		return Noise, 0
	}
	ac := fft.Autocorrelation(samples, maxLag)
	if lag := dominantLag(ac, cfg.PeriodicACThreshold); lag > 0 {
		return Periodic, lag
	}
	return Noise, 0
}

// dominantLag returns the lag with the strongest autocorrelation mass, or
// 0 when nothing exceeds the threshold. Sampling jitter spreads a period's
// energy over adjacent lags, so each lag is scored with its +/-1
// neighbours and the winner refined back to the raw argmax.
func dominantLag(ac []float64, threshold float64) int {
	bestLag, bestSm := 0, threshold
	for lag := 1; lag < len(ac); lag++ {
		sm := ac[lag]
		if lag-1 >= 1 {
			sm += ac[lag-1]
		}
		if lag+1 < len(ac) {
			sm += ac[lag+1]
		}
		if sm > bestSm {
			bestLag, bestSm = lag, sm
		}
	}
	if bestLag == 0 {
		return 0
	}
	best := bestLag
	for d := -1; d <= 1; d++ {
		if l := bestLag + d; l >= 1 && l < len(ac) && ac[l] > ac[best] {
			best = l
		}
	}
	return best
}

// Profile is the offline characterisation of one signal: its class and the
// robust level/spread statistics the outlier stage calibrates thresholds
// from. Periodic signals additionally carry their per-phase baseline, so
// the outlier stage scores deviations from the expected beat pattern
// rather than from a global level — a normal beat is not an anomaly, and a
// missing beat is (the paper's "lack of messages" syndrome).
type Profile struct {
	Event    int
	Class    Class
	Period   int       // samples; 0 unless periodic
	Level    float64   // median sample value
	Spread   float64   // MAD-based sigma estimate (of residuals if periodic)
	Baseline []float64 // per-phase medians, length Period; periodic only
}

// Characterize computes the profile of s. For periodic signals the spread
// is measured on the phase residuals and the baseline is retained.
func Characterize(s *Signal, cfg ClassifyConfig) Profile {
	class, period := Classify(s.Samples, cfg)
	p := Profile{
		Event:  s.Event,
		Class:  class,
		Period: period,
		Level:  stats.Median(s.Samples),
		Spread: robustSpread(s.Samples),
	}
	if class == Periodic && period > 0 {
		p.Baseline = PeriodicBaseline(s.Samples, period)
		p.Spread = robustSpread(Residual(s.Samples, p.Baseline))
	}
	return p
}

// robustSpread estimates the one-sided spread of a count series. The MAD
// collapses to zero for sub-one-per-tick chatter (median 0, almost half
// the samples non-zero), which would flag every message as an outlier; the
// upper-quantile estimate keeps the threshold above the bulk of normal
// traffic.
func robustSpread(samples []float64) float64 {
	mad := stats.MADSigma(stats.MAD(samples))
	med := stats.Median(samples)
	// 1.2816 is the standard normal's 90% quantile.
	q := (stats.Quantile(samples, 0.9) - med) / 1.2816
	if q > mad {
		return q
	}
	return mad
}

// PeriodicBaseline folds samples at the period and returns the per-phase
// median — the expected beat pattern of a periodic signal.
func PeriodicBaseline(samples []float64, period int) []float64 {
	if period <= 0 || len(samples) == 0 {
		return nil
	}
	buckets := make([][]float64, period)
	for i, v := range samples {
		buckets[i%period] = append(buckets[i%period], v)
	}
	out := make([]float64, period)
	for ph, b := range buckets {
		out[ph] = stats.MedianInPlace(b)
	}
	return out
}

// Residual subtracts the phase baseline from each sample (phase 0 aligned
// with the first sample).
func Residual(samples, baseline []float64) []float64 {
	if len(baseline) == 0 {
		return append([]float64(nil), samples...)
	}
	out := make([]float64, len(samples))
	for i, v := range samples {
		out[i] = v - baseline[i%len(baseline)]
	}
	return out
}
