package sig

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestKernelsMatchReference is the extended randomized property test of
// the tentpole: each forced kernel (sliding, bit-packed, FFT) must return
// bit-identical results to the frozen pre-change reference across all
// train density regimes. The per-kernel use counters prove the forced
// paths actually ran rather than falling back.
func TestKernelsMatchReference(t *testing.T) {
	for _, kind := range []KernelKind{KernelSliding, KernelBitpack, KernelFFT} {
		t.Run(kind.String(), func(t *testing.T) {
			used := 0
			var scratch Scratch
			rng := rand.New(rand.NewSource(4000 + int64(kind)))
			for trial := 0; trial < 300; trial++ {
				trains := randomTrains(rng, trainDensity(trial%3))
				cfg := DefaultCrossCorrConfig()
				cfg.Kernel = kind
				if trial%2 == 0 {
					cfg.MaxLag = 1 + rng.Intn(400)
				}
				if trial%5 == 0 {
					cfg.Horizon = 10000
					cfg.MinCount = 2
				}
				var a, b []int
				for _, tr := range trains {
					if a == nil {
						a = tr
					} else {
						b = tr
						break
					}
				}
				d1, c1, s1, ok1 := scratch.CrossCorrelate(a, b, cfg)
				d2, c2, s2, ok2 := referenceCrossCorrelate(a, b, cfg)
				if d1 != d2 || c1 != c2 || s1 != s2 || ok1 != ok2 {
					t.Fatalf("trial %d: %s kernel diverged: (%d,%d,%v,%v) vs (%d,%d,%v,%v)",
						trial, kind, d1, c1, s1, ok1, d2, c2, s2, ok2)
				}
				if scratch.LastKernel() == kind {
					used++
				}
			}
			if used < 200 {
				t.Fatalf("forced %s kernel only ran %d/300 trials; the force plumbing is broken", kind, used)
			}
		})
	}
}

// TestAllPairsForcedKernelsMatchReference re-runs the end-to-end AllPairs
// equivalence with each kernel forced through the whole worker pool.
func TestAllPairsForcedKernelsMatchReference(t *testing.T) {
	for _, kind := range []KernelKind{KernelBitpack, KernelFFT} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(5000 + int64(kind)))
			for trial := 0; trial < 10; trial++ {
				trains := randomTrains(rng, trainDensity(trial%3))
				cfg := DefaultCrossCorrConfig()
				cfg.Kernel = kind
				got := AllPairs(trains, cfg)
				refCfg := cfg
				refCfg.Kernel = KernelAuto // the frozen reference predates the field and ignores it
				want := referenceAllPairs(trains, refCfg)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s trial %d: forced kernel diverged\n got=%v\nwant=%v", kind, trial, got, want)
				}
			}
		})
	}
}

// TestKernelDuplicateFallback pins the off-contract guard: trains with
// duplicate spikes (which the bitset representation would collapse) must
// be routed to the sliding sweep and still match the duplicate-counting
// reference exactly.
func TestKernelDuplicateFallback(t *testing.T) {
	a := []int{10, 10, 40, 90}
	b := []int{12, 12, 44, 44, 95}
	for _, kind := range []KernelKind{KernelBitpack, KernelFFT} {
		cfg := DefaultCrossCorrConfig()
		cfg.MaxLag = 20
		cfg.MinCount = 1
		cfg.MinScore = 0.01
		cfg.Kernel = kind
		var scratch Scratch
		d1, c1, s1, ok1 := scratch.CrossCorrelate(a, b, cfg)
		if scratch.LastKernel() != KernelSliding {
			t.Fatalf("forced %s on duplicate trains ran %s, want sliding fallback", kind, scratch.LastKernel())
		}
		d2, c2, s2, ok2 := referenceCrossCorrelate(a, b, cfg)
		if d1 != d2 || c1 != c2 || s1 != s2 || ok1 != ok2 {
			t.Fatalf("%s fallback diverged: (%d,%d,%v,%v) vs (%d,%d,%v,%v)", kind, d1, c1, s1, ok1, d2, c2, s2, ok2)
		}
	}
}

// TestKernelsZeroAlloc extends the warm-scratch zero-allocation proof to
// the bit-packed and FFT kernels.
func TestKernelsZeroAlloc(t *testing.T) {
	var a, b []int
	for i := 0; i < 400; i++ {
		a = append(a, i*3)
		b = append(b, i*3+7)
	}
	for _, kind := range []KernelKind{KernelBitpack, KernelFFT} {
		cfg := DefaultCrossCorrConfig()
		cfg.Kernel = kind
		var scratch Scratch
		scratch.CrossCorrelate(a, b, cfg) // warm the buffers
		if scratch.LastKernel() != kind {
			t.Fatalf("forced %s ran %s", kind, scratch.LastKernel())
		}
		allocs := testing.AllocsPerRun(100, func() {
			scratch.CrossCorrelate(a, b, cfg)
		})
		if allocs != 0 {
			t.Errorf("warm %s kernel allocates %.1f objects per run, want 0", kind, allocs)
		}
	}
}

// TestChooseKernelShape sanity-checks the dispatch heuristic's regime
// boundaries: sparse long-horizon pairs stay on the sliding sweep, dense
// short-span pairs leave it.
func TestChooseKernelShape(t *testing.T) {
	if k := chooseKernel(8, 8, 1<<20, 360); k != KernelSliding {
		t.Errorf("sparse wide pair chose %s, want sliding", k)
	}
	if k := chooseKernel(2000, 2000, 8000, 360); k == KernelSliding {
		t.Error("dense short-span pair stayed on the sliding sweep")
	}
	// The FFT span cap must hold regardless of the estimate.
	if k := chooseKernel(1<<20, 1<<20, maxFFTSpan+1, 1<<18); k == KernelFFT {
		t.Error("FFT chosen past its span cap")
	}
}

// BenchmarkKernels measures the three kernels on a dense pair, the regime
// where the dispatch decision matters; the committed crossover extras in
// BENCH_train.json come from internal/bench's sweep over densities.
func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	horizon := 8640
	var a, bb []int
	for t := 0; t < horizon; t++ {
		if rng.Intn(4) == 0 {
			a = append(a, t)
		}
		if rng.Intn(4) == 0 {
			bb = append(bb, t)
		}
	}
	for _, kind := range []KernelKind{KernelSliding, KernelBitpack, KernelFFT} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := DefaultCrossCorrConfig()
			cfg.Kernel = kind
			var scratch Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scratch.CrossCorrelate(a, bb, cfg)
			}
		})
	}
}
