package sig

import "sort"

// PairTelemetry accumulates PairStats across incremental refresh rounds
// without double-counting. Summing each round's PairStats looks right
// but is not: a pair the prefilter prunes in one round and the kernel
// scores in a later round (its counter finally crossed MinCount) would
// land in both that round's Pruned and the later round's Scored, so the
// totals claim more pair-space work than ever happened. The telemetry
// therefore tracks per-pair lifecycle sets — scored-ever and
// currently-kept — and derives the stats from them: each pair counts in
// exactly one bucket, with the latest outcome winning.
type PairTelemetry struct {
	events int
	scored map[[2]int]struct{}
	kept   map[[2]int]struct{}
}

// NewPairTelemetry returns an empty telemetry accumulator.
func NewPairTelemetry() *PairTelemetry {
	return &PairTelemetry{
		scored: make(map[[2]int]struct{}),
		kept:   make(map[[2]int]struct{}),
	}
}

// BeginRound records the size of the event universe the round saw; the
// candidate space is derived from the largest universe observed.
func (t *PairTelemetry) BeginRound(events int) {
	if events > t.events {
		t.events = events
	}
}

// NoteScored records that the kernel ran for the ordered pair. A pair
// scored in several rounds counts once.
func (t *PairTelemetry) NoteScored(a, b int) {
	t.scored[[2]int{a, b}] = struct{}{}
}

// NoteKept records the pair's latest acceptance outcome: kept pairs form
// the current seed set, and a pair dropped by a later round leaves it.
func (t *PairTelemetry) NoteKept(a, b int, kept bool) {
	if kept {
		t.kept[[2]int{a, b}] = struct{}{}
	} else {
		delete(t.kept, [2]int{a, b})
	}
}

// Stats derives the deduplicated cumulative PairStats: Candidates is the
// blind ordered enumeration of the event universe, Scored the pairs the
// kernel ever ran for, Kept the pairs currently accepted. Pruned()
// (Candidates - Scored) therefore never re-counts a pair that was pruned
// first and scored later.
func (t *PairTelemetry) Stats() PairStats {
	return PairStats{
		Events:     t.events,
		Candidates: t.events * (t.events - 1),
		Scored:     len(t.scored),
		Kept:       len(t.kept),
	}
}

// PairTelemetryState is the serialisable form, riding refresh snapshots.
type PairTelemetryState struct {
	Events int      `json:"events"`
	Scored [][2]int `json:"scored,omitempty"`
	Kept   [][2]int `json:"kept,omitempty"`
}

// State snapshots the telemetry with both sets in sorted order.
func (t *PairTelemetry) State() PairTelemetryState {
	return PairTelemetryState{
		Events: t.events,
		Scored: sortedPairs(t.scored),
		Kept:   sortedPairs(t.kept),
	}
}

// RestorePairTelemetry rebuilds telemetry from a snapshot.
func RestorePairTelemetry(st PairTelemetryState) *PairTelemetry {
	t := NewPairTelemetry()
	t.events = st.Events
	for _, p := range st.Scored {
		t.scored[p] = struct{}{}
	}
	for _, p := range st.Kept {
		t.kept[p] = struct{}{}
	}
	return t
}

func sortedPairs(set map[[2]int]struct{}) [][2]int {
	if len(set) == 0 {
		return nil
	}
	out := make([][2]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
