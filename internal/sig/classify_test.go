package sig

import (
	"math/rand"
	"testing"
	"time"
)

func TestClassNames(t *testing.T) {
	if Noise.String() != "noise" || Periodic.String() != "periodic" || Silent.String() != "silent" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "invalid" {
		t.Error("invalid class name wrong")
	}
}

func TestClassifySilent(t *testing.T) {
	cfg := DefaultClassifyConfig()
	samples := make([]float64, 10000)
	samples[1234] = 1 // one occurrence in ~28 hours
	class, _ := Classify(samples, cfg)
	if class != Silent {
		t.Errorf("class = %v, want silent", class)
	}
	if c, _ := Classify(nil, cfg); c != Silent {
		t.Errorf("empty signal class = %v, want silent", c)
	}
}

func TestClassifyPeriodic(t *testing.T) {
	cfg := DefaultClassifyConfig()
	samples := make([]float64, 5000)
	for i := range samples {
		if i%30 == 0 { // every 5 minutes at 10 s sampling
			samples[i] = 1
		}
	}
	class, period := Classify(samples, cfg)
	if class != Periodic {
		t.Fatalf("class = %v, want periodic", class)
	}
	if period != 30 {
		t.Errorf("period = %d, want 30", period)
	}
}

func TestClassifyPeriodicWithJitter(t *testing.T) {
	cfg := DefaultClassifyConfig()
	rng := rand.New(rand.NewSource(41))
	samples := make([]float64, 5000)
	for i := 0; i < len(samples); i += 30 {
		j := i + rng.Intn(3) - 1
		if j >= 0 && j < len(samples) {
			samples[j] = 1
		}
	}
	class, period := Classify(samples, cfg)
	if class != Periodic {
		t.Fatalf("jittered class = %v, want periodic", class)
	}
	if period < 28 || period > 32 {
		t.Errorf("period = %d, want ~30", period)
	}
}

func TestClassifyNoise(t *testing.T) {
	cfg := DefaultClassifyConfig()
	rng := rand.New(rand.NewSource(42))
	samples := make([]float64, 5000)
	for i := range samples {
		// Dense aperiodic chatter.
		if rng.Float64() < 0.4 {
			samples[i] = float64(1 + rng.Intn(3))
		}
	}
	class, _ := Classify(samples, cfg)
	if class != Noise {
		t.Errorf("class = %v, want noise", class)
	}
}

func TestClassifyShortSignal(t *testing.T) {
	cfg := DefaultClassifyConfig()
	if c, _ := Classify([]float64{1, 1}, cfg); c != Noise {
		t.Errorf("short dense signal = %v, want noise", c)
	}
}

func TestPeriodicBaseline(t *testing.T) {
	samples := make([]float64, 90)
	for i := 0; i < len(samples); i += 30 {
		samples[i] = 1
	}
	base := PeriodicBaseline(samples, 30)
	if len(base) != 30 {
		t.Fatalf("baseline length = %d", len(base))
	}
	if base[0] != 1 {
		t.Errorf("beat phase baseline = %v, want 1", base[0])
	}
	for ph := 1; ph < 30; ph++ {
		if base[ph] != 0 {
			t.Errorf("quiet phase %d baseline = %v", ph, base[ph])
		}
	}
	if PeriodicBaseline(nil, 30) != nil || PeriodicBaseline(samples, 0) != nil {
		t.Error("degenerate inputs should yield nil")
	}
}

func TestResidualZeroOnPerfectPeriodic(t *testing.T) {
	samples := make([]float64, 300)
	for i := 0; i < len(samples); i += 30 {
		samples[i] = 2
	}
	base := PeriodicBaseline(samples, 30)
	res := Residual(samples, base)
	for i, v := range res {
		if v != 0 {
			t.Fatalf("residual[%d] = %v, want 0", i, v)
		}
	}
	// A missed beat shows as -2; an extra beat as +2.
	samples[60] = 0
	samples[75] = 2
	res = Residual(samples, base)
	if res[60] != -2 {
		t.Errorf("missed beat residual = %v, want -2", res[60])
	}
	if res[75] != 2 {
		t.Errorf("extra beat residual = %v, want 2", res[75])
	}
}

func TestResidualNoBaseline(t *testing.T) {
	samples := []float64{1, 2, 3}
	res := Residual(samples, nil)
	for i := range samples {
		if res[i] != samples[i] {
			t.Fatal("nil baseline should copy samples")
		}
	}
	res[0] = 99
	if samples[0] == 99 {
		t.Error("Residual aliases its input")
	}
}

func TestCharacterizePeriodicCarriesBaseline(t *testing.T) {
	s := New(1, t0, t0.Add(5000*10*time.Second), 10*time.Second)
	for i := 0; i < len(s.Samples); i += 30 {
		s.Samples[i] = 1
	}
	p := Characterize(s, DefaultClassifyConfig())
	if p.Class != Periodic {
		t.Fatalf("class = %v", p.Class)
	}
	if len(p.Baseline) != p.Period {
		t.Errorf("baseline length %d vs period %d", len(p.Baseline), p.Period)
	}
	if p.Spread != 0 {
		t.Errorf("residual spread = %v, want 0 for perfect periodicity", p.Spread)
	}
}

func TestCharacterize(t *testing.T) {
	s := New(3, t0, t0.Add(10000*10*time.Second), 10*time.Second)
	for i := range s.Samples {
		s.Samples[i] = 4
	}
	s.Samples[17] = 100
	p := Characterize(s, DefaultClassifyConfig())
	if p.Event != 3 {
		t.Errorf("Event = %d", p.Event)
	}
	if p.Level != 4 {
		t.Errorf("Level = %v, want 4", p.Level)
	}
	if p.Spread != 0 {
		t.Errorf("Spread = %v, want 0 for constant signal", p.Spread)
	}
	if p.Class != Noise {
		t.Errorf("Class = %v, want noise for constant-with-spike", p.Class)
	}
}
