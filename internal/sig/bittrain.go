package sig

// BitTrain is a bitset view of one spike train: bit p of words marks a
// spike at sample base+p. It answers "any spike in [lo, hi]?" in O(1)
// word operations instead of a binary search per probe, which is the
// inner question of the miner's pattern matching and of the online
// engine's window checks. The zero value is an empty train.
type BitTrain struct {
	base  int
	words []uint64
}

// maxBitTrainWaste caps the bitset span at 64 words per spike: a train
// sparser than one spike per 4096 samples gains nothing over binary
// search and would pay the span in memory.
const maxBitTrainWaste = 64

// NewBitTrain builds the bitset view of a sorted spike train, or returns
// nil when the train is empty or too sparse for the view to pay off
// (callers fall back to binary search on nil).
func NewBitTrain(train []int) *BitTrain {
	if len(train) == 0 {
		return nil
	}
	base := train[0]
	span := train[len(train)-1] - base + 1
	words := span>>6 + 1
	if words > maxBitTrainWaste*len(train) {
		return nil
	}
	b := &BitTrain{base: base, words: make([]uint64, words)}
	for _, t := range train {
		p := t - base
		b.words[p>>6] |= 1 << uint(p&63)
	}
	return b
}

// AnyIn reports whether the train has a spike in the inclusive sample
// range [lo, hi].
//
//elsa:hotpath
func (b *BitTrain) AnyIn(lo, hi int) bool {
	lo -= b.base
	hi -= b.base
	top := len(b.words)<<6 - 1
	if hi < 0 || lo > top || hi < lo {
		return false
	}
	if lo < 0 {
		lo = 0
	}
	if hi > top {
		hi = top
	}
	wLo, wHi := lo>>6, hi>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi&63))
	if wLo == wHi {
		return b.words[wLo]&loMask&hiMask != 0
	}
	if b.words[wLo]&loMask != 0 {
		return true
	}
	for w := wLo + 1; w < wHi; w++ {
		if b.words[w] != 0 {
			return true
		}
	}
	return b.words[wHi]&hiMask != 0
}

// BitTrains indexes a SpikeTrains set for AnyIn probes; events whose
// trains are too sparse to index are absent (probe them by search).
type BitTrains map[int]*BitTrain

// IndexTrains builds the BitTrain view of every indexable train.
func IndexTrains(trains SpikeTrains) BitTrains {
	out := make(BitTrains, len(trains))
	for id, tr := range trains {
		if bt := NewBitTrain(tr); bt != nil {
			out[id] = bt
		}
	}
	return out
}
