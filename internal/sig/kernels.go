package sig

import (
	"math/bits"

	"github.com/elsa-hpc/elsa/internal/fft"
)

// KernelKind selects how the cross-correlation histogram is built. The
// three kernels are bit-identical on duplicate-free sorted trains (the
// SpikeTrains contract); they differ only in cost shape, so KernelAuto
// picks by a deterministic estimate of each kernel's work.
type KernelKind int

const (
	// KernelAuto dispatches on the density heuristic (the default).
	KernelAuto KernelKind = iota
	// KernelSliding is the two-pointer sliding-window sweep: O(mass)
	// increments, ideal for the sparse outlier-filtered trains.
	KernelSliding
	// KernelBitpack packs both trains into bitsets over their shared span
	// and counts each lag with word-parallel AND+popcount: 64 positions
	// per operation, O((MaxLag+1)·span/64) regardless of density.
	KernelBitpack
	// KernelFFT computes the whole histogram as one circular correlation
	// over internal/fft in O(n log n) for n = NextPow2(span): the winner
	// when both trains are dense and the lag window is wide.
	KernelFFT
)

func (k KernelKind) String() string {
	switch k {
	case KernelSliding:
		return "sliding"
	case KernelBitpack:
		return "bitpack"
	case KernelFFT:
		return "fft"
	}
	return "auto"
}

// Deterministic per-unit work weights for the dispatch estimate,
// calibrated with BenchmarkKernels so each cost approximates nanoseconds:
// one sliding-sweep histogram increment ~1 ns, one bit-packed
// AND+popcount word-op ~2 ns, one complex element per butterfly level
// ~7 ns (the constant folds in all three transforms).
const (
	slidingUnitCost = 1
	bitpackUnitCost = 2
	fftUnitCost     = 7
	// maxFFTSpan bounds the padded transform size (and therefore the
	// scratch memory) the FFT path may request; wider spans mean the
	// trains are sparse over a long horizon, exactly where the sliding
	// sweep wins anyway.
	maxFFTSpan = 1 << 22
)

// chooseKernel estimates each kernel's work for the pair (a, b) and
// returns the cheapest. bn is the count of b spikes inside the relevant
// window [a[0], a[len-1]+maxLag], span that window's width.
func chooseKernel(an, bn, span, maxLag int) KernelKind {
	// Expected co-occurrence mass under a uniform spread of b's spikes:
	// each a spike sees bn*(maxLag+1)/span of them.
	massEst := an * (bn*(maxLag+1)/span + 1)
	slidingCost := slidingUnitCost * (an + bn + massEst)

	words := span>>6 + 1
	bitCost := bitpackUnitCost * (maxLag + 1) * words

	best := KernelSliding
	bestCost := slidingCost
	if bitCost < bestCost {
		best, bestCost = KernelBitpack, bitCost
	}
	if span <= maxFFTSpan {
		n := fft.NextPow2(span)
		fftCost := fftUnitCost * n * bits.Len(uint(n))
		if fftCost < bestCost {
			best = KernelFFT
		}
	}
	return best
}

// clipLo returns b without the prefix of spikes before base; they sit
// strictly before every a spike and can never co-occur at a non-negative
// delay.
//
//elsa:hotpath
func clipLo(b []int, base int) []int {
	lo := 0
	for lo < len(b) && b[lo] < base {
		lo++
	}
	return b[lo:]
}

// clipHi returns b without the suffix of spikes after top = last a spike
// + maxLag; they are beyond every tolerated delay.
//
//elsa:hotpath
func clipHi(b []int, top int) []int {
	hi := len(b)
	for hi > 0 && b[hi-1] > top {
		hi--
	}
	return b[:hi]
}

// strictlyIncreasing reports whether xs is duplicate-free sorted — the
// SpikeTrains contract. The bit-packed and FFT kernels collapse duplicate
// spikes where the sliding sweep counts them, so off-contract input is
// routed to the sliding sweep instead of silently diverging.
//
//elsa:hotpath
func strictlyIncreasing(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

// buildHist fills hist[d] with the number of (t_a, t_b) spike pairs at
// delay d = t_b - t_a for d in [0, maxLag], dispatching between the three
// kernels, and records the choice in s.lastKernel. hist arrives zeroed.
//
//elsa:hotpath
func (s *Scratch) buildHist(a, b []int, maxLag int, force KernelKind, hist []int) {
	base := a[0]
	top := a[len(a)-1] + maxLag
	bw := clipHi(clipLo(b, base), top)
	s.lastKernel = KernelSliding
	if len(bw) == 0 {
		s.slidingHist(a, b, maxLag, hist)
		return
	}
	span := top - base + 1

	kind := force
	if kind == KernelAuto {
		kind = chooseKernel(len(a), len(bw), span, maxLag)
	}
	if kind != KernelSliding && (span > maxFFTSpan && kind == KernelFFT ||
		!strictlyIncreasing(a) || !strictlyIncreasing(bw)) {
		kind = KernelSliding
	}
	switch kind {
	case KernelBitpack:
		s.lastKernel = KernelBitpack
		s.bitpackHist(a, bw, base, span, maxLag, hist)
	case KernelFFT:
		s.lastKernel = KernelFFT
		s.fftHist(a, bw, base, span, maxLag, hist)
	default:
		s.slidingHist(a, b, maxLag, hist)
	}
}

// slidingHist is the original two-pointer sweep. Both trains are sorted,
// so the start of each window [t, t+maxLag] advances monotonically: one
// shared pointer replaces a binary search per spike, leaving only one
// increment per actual co-occurrence.
//
//elsa:hotpath
func (s *Scratch) slidingHist(a, b []int, maxLag int, hist []int) {
	lo := 0
	for _, t := range a {
		for lo < len(b) && b[lo] < t {
			lo++
		}
		for j := lo; j < len(b); j++ {
			d := b[j] - t
			if d > maxLag {
				break
			}
			hist[d]++
		}
	}
}

// bitpackHist packs both trains into span-relative bitsets and computes
// each lag's count with word-parallel AND+popcount: bit p of wordsA marks
// a spike at base+p, so hist[d] is the number of positions where wordsA
// and wordsB-shifted-right-by-d are both set — 64 lag positions per
// machine word. wordsB carries maxLag/64+1 zero padding words so the
// shifted reads never branch on the tail.
//
//elsa:hotpath
func (s *Scratch) bitpackHist(a, bw []int, base, span, maxLag int, hist []int) {
	words := span>>6 + 1
	wa, wb := s.growBits(words, words+(maxLag>>6)+1)
	for _, t := range a {
		p := t - base
		wa[p>>6] |= 1 << uint(p&63)
	}
	for _, t := range bw {
		p := t - base
		wb[p>>6] |= 1 << uint(p&63)
	}
	for d := 0; d <= maxLag; d++ {
		q, r := d>>6, uint(d&63)
		c := 0
		for w := 0; w < words; w++ {
			// Go defines x<<64 == 0, so the r == 0 case needs no branch.
			m := wa[w] & (wb[w+q]>>r | wb[w+q+1]<<(64-r))
			c += bits.OnesCount64(m)
		}
		hist[d] = c
	}
}

// fftHist computes the whole histogram as one correlation
// IFFT(conj(FFT(A))·FFT(B)): with both indicator series embedded in a
// power-of-two buffer of length >= span, the circular product has no
// wraparound inside [0, maxLag] because top already extends a's support
// by maxLag. The counts are integers recovered exactly by rounding: 0/1
// inputs keep the accumulated float error orders of magnitude below 0.5
// at every span the dispatcher admits.
//
//elsa:hotpath
func (s *Scratch) fftHist(a, bw []int, base, span, maxLag int, hist []int) {
	fa, fb := s.growFFT(span)
	for _, t := range a {
		fa[t-base] = 1
	}
	for _, t := range bw {
		fb[t-base] = 1
	}
	fft.MustTransform(fa)
	fft.MustTransform(fb)
	for i := range fa {
		re, im := real(fa[i]), imag(fa[i])
		// conj(fa) * fb, written out to stay in-place.
		fa[i] = complex(re, -im) * fb[i]
	}
	fft.MustInverse(fa)
	for d := 0; d <= maxLag; d++ {
		hist[d] = int(real(fa[d]) + 0.5)
	}
}
