package sig

import (
	"math/rand"
	"testing"
)

func TestCrossCorrelateFixedDelay(t *testing.T) {
	cfg := DefaultCrossCorrConfig()
	a := []int{100, 200, 300, 400, 500}
	b := make([]int, len(a))
	for i, v := range a {
		b[i] = v + 6 // one-minute delay at 10 s sampling
	}
	delay, count, score, ok := CrossCorrelate(a, b, cfg)
	if !ok {
		t.Fatal("expected correlation")
	}
	if delay != 6 {
		t.Errorf("delay = %d, want 6", delay)
	}
	if count != len(a) {
		t.Errorf("count = %d, want %d", count, len(a))
	}
	if score < 0.99 {
		t.Errorf("score = %v, want ~1", score)
	}
}

func TestCrossCorrelateToleratesJitter(t *testing.T) {
	cfg := DefaultCrossCorrConfig()
	rng := rand.New(rand.NewSource(51))
	var a, b []int
	for i := 0; i < 40; i++ {
		base := i * 500
		a = append(a, base)
		b = append(b, base+12+rng.Intn(3)-1) // 12 +/- 1
	}
	delay, _, _, ok := CrossCorrelate(a, b, cfg)
	if !ok {
		t.Fatal("expected correlation despite jitter")
	}
	if delay < 11 || delay > 13 {
		t.Errorf("delay = %d, want ~12", delay)
	}
}

func TestCrossCorrelateRejectsUnrelated(t *testing.T) {
	cfg := DefaultCrossCorrConfig()
	rng := rand.New(rand.NewSource(52))
	var a, b []int
	for i := 0; i < 50; i++ {
		a = append(a, rng.Intn(1000000))
		b = append(b, rng.Intn(1000000))
	}
	sortInts(a)
	sortInts(b)
	if _, _, _, ok := CrossCorrelate(a, b, cfg); ok {
		t.Error("unrelated sparse trains should not correlate")
	}
}

func TestCrossCorrelateEmpty(t *testing.T) {
	cfg := DefaultCrossCorrConfig()
	if _, _, _, ok := CrossCorrelate(nil, []int{1}, cfg); ok {
		t.Error("empty train should not correlate")
	}
	if _, _, _, ok := CrossCorrelate([]int{1}, nil, cfg); ok {
		t.Error("empty train should not correlate")
	}
}

func TestCrossCorrelateMinCount(t *testing.T) {
	cfg := DefaultCrossCorrConfig()
	cfg.MinCount = 5
	a := []int{10, 20}
	b := []int{13, 23}
	if _, _, _, ok := CrossCorrelate(a, b, cfg); ok {
		t.Error("two co-occurrences should fail MinCount=5")
	}
}

func TestAllPairsFindsChain(t *testing.T) {
	cfg := DefaultCrossCorrConfig()
	trains := SpikeTrains{}
	var s1, s2, s3 []int
	for i := 0; i < 30; i++ {
		base := i * 1000
		s1 = append(s1, base)
		s2 = append(s2, base+6)
		s3 = append(s3, base+10)
	}
	trains[1], trains[2], trains[3] = s1, s2, s3
	pairs := AllPairs(trains, cfg)
	want := map[[2]int]int{{1, 2}: 6, {1, 3}: 10, {2, 3}: 4}
	found := map[[2]int]int{}
	for _, p := range pairs {
		found[[2]int{p.A, p.B}] = p.Delay
	}
	for k, d := range want {
		if got, ok := found[k]; !ok || got != d {
			t.Errorf("pair %v: delay %d, want %d (found=%v)", k, got, d, ok)
		}
	}
}

func TestAllPairsSimultaneousKeptOnce(t *testing.T) {
	cfg := DefaultCrossCorrConfig()
	var s []int
	for i := 0; i < 20; i++ {
		s = append(s, i*100)
	}
	trains := SpikeTrains{5: s, 9: append([]int(nil), s...)}
	pairs := AllPairs(trains, cfg)
	n := 0
	for _, p := range pairs {
		if p.Delay == 0 {
			n++
			if p.A > p.B {
				t.Errorf("simultaneous pair stored with A > B: %+v", p)
			}
		}
	}
	if n != 1 {
		t.Errorf("simultaneous pair count = %d, want 1", n)
	}
}

func TestAllPairsDeterministicOrder(t *testing.T) {
	cfg := DefaultCrossCorrConfig()
	trains := SpikeTrains{}
	for id := 0; id < 6; id++ {
		var s []int
		for i := 0; i < 25; i++ {
			s = append(s, i*800+id*3)
		}
		trains[id] = s
	}
	p1 := AllPairs(trains, cfg)
	p2 := AllPairs(trains, cfg)
	if len(p1) != len(p2) {
		t.Fatalf("non-deterministic pair count: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
