package sig

import (
	"math"
	"runtime"
	"sort"
	"sync"
)

// PairCorrelation records that outliers on event A tend to be followed,
// Delay samples later, by outliers on event B.
type PairCorrelation struct {
	A, B  int     // event ids
	Delay int     // samples from A to B (>= 0)
	Count int     // co-occurrence count at the chosen delay
	Score float64 // normalised cross-correlation in [0, 1]
}

// CrossCorrConfig tunes the pair-correlation search.
type CrossCorrConfig struct {
	MaxLag   int     // largest delay considered, in samples
	MinCount int     // minimum co-occurrences for a pair to be kept
	MinScore float64 // minimum normalised score for a pair to be kept
	// Tolerance widens the co-occurrence match: an outlier on B within
	// +/-Tolerance samples of the nominal delay still counts. Sampling
	// jitter makes exact alignment too strict.
	Tolerance int
	// Horizon is the total number of samples in the analysed window. When
	// set, the directional-confidence acceptance path additionally
	// requires a lift of at least MinLift over the random co-occurrence
	// rate, killing spurious long-lag pairs whose wide matching windows
	// would otherwise hit dense trains by chance.
	Horizon int
	// MinLift is the confidence-over-random factor required (default 4).
	MinLift float64
	// SymmetricOnly restricts acceptance to the classic normalised
	// cross-correlation, dropping the directional-confidence path. The
	// data-mining baseline uses it: association mining demands frequent
	// symmetric co-occurrence, which is exactly why it misses
	// rare-precursor correlations the signal view keeps.
	SymmetricOnly bool
}

// DefaultCrossCorrConfig returns the settings used in the experiments: the
// paper reports correlation delays from seconds to above an hour, so the
// lag window is one hour of samples.
func DefaultCrossCorrConfig() CrossCorrConfig {
	return CrossCorrConfig{MaxLag: 360, MinCount: 3, MinScore: 0.35, Tolerance: 1}
}

// DelayTolerance returns the matching slack for a nominal delay: at least
// base samples, growing to a quarter of the delay. Cascade gaps jitter
// multiplicatively in real systems (a 25-minute service action varies by
// minutes, a 20-second one by seconds), so every stage that matches delays
// — seeding, mining, location replay, the online engine — uses this same
// relative rule.
func DelayTolerance(delay, base int) int {
	if base < 0 {
		base = 0
	}
	if t := delay / 4; t > base {
		return t
	}
	return base
}

// CrossCorrelate finds the best delay in [0, MaxLag] from spike train a to
// spike train b (sorted sample indices). It returns false when no delay
// meets the thresholds.
func CrossCorrelate(a, b []int, cfg CrossCorrConfig) (delay, count int, score float64, ok bool) {
	if len(a) == 0 || len(b) == 0 || cfg.MaxLag < 0 {
		return 0, 0, 0, false
	}
	hist := make([]int, cfg.MaxLag+1)
	for _, t := range a {
		lo := sort.SearchInts(b, t)
		for j := lo; j < len(b) && b[j]-t <= cfg.MaxLag; j++ {
			hist[b[j]-t]++
		}
	}
	// Prefix sums let each candidate lag be scored over its own
	// delay-proportional window (DelayTolerance), so long cascades with
	// multiplicative jitter still accumulate their co-occurrence mass.
	// Ties on the windowed count break toward the raw histogram peak, so
	// an exact repeated delay is reported exactly.
	prefix := make([]int, len(hist)+1)
	for i, h := range hist {
		prefix[i+1] = prefix[i] + h
	}
	window := func(lo, hi int) int {
		if lo < 0 {
			lo = 0
		}
		if hi > cfg.MaxLag {
			hi = cfg.MaxLag
		}
		if lo > hi {
			return 0
		}
		return prefix[hi+1] - prefix[lo]
	}
	// The winner is the lag with the highest co-occurrence *density*
	// (count per window width): a raw-count argmax would always favour
	// the widest windows on any regularly firing pair of trains.
	best, bestCount, bestRaw := -1, 0, 0
	bestDensity := 0.0
	for lag := 0; lag <= cfg.MaxLag; lag++ {
		tol := DelayTolerance(lag, cfg.Tolerance)
		c := window(lag-tol, lag+tol)
		if c == 0 {
			continue
		}
		density := float64(c) / float64(2*tol+1)
		if density > bestDensity || (density == bestDensity && hist[lag] > bestRaw) {
			best, bestCount, bestRaw, bestDensity = lag, c, hist[lag], density
		}
	}
	if best < 0 || bestCount < cfg.MinCount {
		return 0, 0, 0, false
	}
	// Two acceptance views: the symmetric normalised cross-correlation,
	// and the directional confidence (how often A is followed by B). The
	// latter keeps rare-precursor -> common-failure pairs alive, which the
	// symmetric norm would punish. Confidence acceptance demands a real
	// lift over the random co-occurrence rate of the window, since wide
	// long-lag windows hit dense trains by chance.
	norm := math.Sqrt(float64(len(a)) * float64(len(b)))
	sc := float64(bestCount) / norm
	if conf := float64(bestCount) / float64(len(a)); !cfg.SymmetricOnly && conf > sc && liftOK(conf, best, len(b), cfg) {
		sc = conf
	}
	if sc > 1 {
		sc = 1
	}
	if sc < cfg.MinScore {
		return 0, 0, 0, false
	}
	return best, bestCount, sc, true
}

// liftOK checks the confidence path's enrichment requirement.
func liftOK(conf float64, lag, nb int, cfg CrossCorrConfig) bool {
	if cfg.Horizon <= 0 {
		return true
	}
	minLift := cfg.MinLift
	if minLift <= 0 {
		minLift = 4
	}
	width := float64(2*DelayTolerance(lag, cfg.Tolerance) + 1)
	random := width * float64(nb) / float64(cfg.Horizon)
	return conf >= minLift*random
}

// SpikeTrains maps event id to its sorted outlier sample indices.
type SpikeTrains map[int][]int

// AllPairs cross-correlates every ordered pair of spike trains in
// parallel, returning the pairs that pass the thresholds sorted by (A, B).
// Self-pairs are skipped. The zero-delay case is kept in only one
// direction (smaller event id first) to avoid duplicate simultaneous
// pairs.
func AllPairs(trains SpikeTrains, cfg CrossCorrConfig) []PairCorrelation {
	ids := make([]int, 0, len(trains))
	for id := range trains {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	type job struct{ a, b int }
	jobs := make(chan job, 256)
	var mu sync.Mutex
	var out []PairCorrelation
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]PairCorrelation, 0, 64)
			for j := range jobs {
				delay, count, score, ok := CrossCorrelate(trains[j.a], trains[j.b], cfg)
				if !ok {
					continue
				}
				if delay == 0 && j.a > j.b {
					continue // keep simultaneous pairs once
				}
				local = append(local, PairCorrelation{A: j.a, B: j.b, Delay: delay, Count: count, Score: score})
			}
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}()
	}
	for _, a := range ids {
		for _, b := range ids {
			if a != b {
				jobs <- job{a, b}
			}
		}
	}
	close(jobs)
	wg.Wait()
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
