package sig

import (
	"runtime"
	"sort"
	"sync"
)

// PairCorrelation records that outliers on event A tend to be followed,
// Delay samples later, by outliers on event B.
type PairCorrelation struct {
	A, B  int     // event ids
	Delay int     // samples from A to B (>= 0)
	Count int     // co-occurrence count at the chosen delay
	Score float64 // normalised cross-correlation in [0, 1]
}

// CrossCorrConfig tunes the pair-correlation search.
type CrossCorrConfig struct {
	MaxLag   int     // largest delay considered, in samples
	MinCount int     // minimum co-occurrences for a pair to be kept
	MinScore float64 // minimum normalised score for a pair to be kept
	// Tolerance widens the co-occurrence match: an outlier on B within
	// +/-Tolerance samples of the nominal delay still counts. Sampling
	// jitter makes exact alignment too strict.
	Tolerance int
	// Horizon is the total number of samples in the analysed window. When
	// set, the directional-confidence acceptance path additionally
	// requires a lift of at least MinLift over the random co-occurrence
	// rate, killing spurious long-lag pairs whose wide matching windows
	// would otherwise hit dense trains by chance.
	Horizon int
	// MinLift is the confidence-over-random factor required (default 4).
	MinLift float64
	// SymmetricOnly restricts acceptance to the classic normalised
	// cross-correlation, dropping the directional-confidence path. The
	// data-mining baseline uses it: association mining demands frequent
	// symmetric co-occurrence, which is exactly why it misses
	// rare-precursor correlations the signal view keeps.
	SymmetricOnly bool
	// Kernel forces a histogram kernel. The default, KernelAuto, picks
	// between the sliding-window, bit-packed and FFT kernels per pair via
	// a deterministic work estimate; the explicit values exist for the
	// equivalence tests and the crossover benchmarks.
	Kernel KernelKind
}

// DefaultCrossCorrConfig returns the settings used in the experiments: the
// paper reports correlation delays from seconds to above an hour, so the
// lag window is one hour of samples.
func DefaultCrossCorrConfig() CrossCorrConfig {
	return CrossCorrConfig{MaxLag: 360, MinCount: 3, MinScore: 0.35, Tolerance: 1}
}

// DelayTolerance returns the matching slack for a nominal delay: at least
// base samples, growing to a quarter of the delay. Cascade gaps jitter
// multiplicatively in real systems (a 25-minute service action varies by
// minutes, a 20-second one by seconds), so every stage that matches delays
// — seeding, mining, location replay, the online engine — uses this same
// relative rule.
//
//elsa:hotpath
func DelayTolerance(delay, base int) int {
	if base < 0 {
		base = 0
	}
	if t := delay / 4; t > base {
		return t
	}
	return base
}

// CrossCorrelate finds the best delay in [0, MaxLag] from spike train a to
// spike train b (sorted sample indices). It returns false when no delay
// meets the thresholds. It is a convenience wrapper over the
// zero-allocation Scratch kernel; callers scoring many pairs should hold
// a Scratch and call its method directly.
func CrossCorrelate(a, b []int, cfg CrossCorrConfig) (delay, count int, score float64, ok bool) {
	var s Scratch
	return s.CrossCorrelate(a, b, cfg)
}

// liftOK checks the confidence path's enrichment requirement.
//
//elsa:hotpath
func liftOK(conf float64, lag, nb int, cfg CrossCorrConfig) bool {
	if cfg.Horizon <= 0 {
		return true
	}
	minLift := cfg.MinLift
	if minLift <= 0 {
		minLift = 4
	}
	width := float64(2*DelayTolerance(lag, cfg.Tolerance) + 1)
	random := width * float64(nb) / float64(cfg.Horizon)
	return conf >= minLift*random
}

// SpikeTrains maps event id to its sorted outlier sample indices.
type SpikeTrains map[int][]int

// AllPairs cross-correlates the spike trains and returns the pairs that
// pass the thresholds sorted by (A, B). Self-pairs are skipped. The
// zero-delay case is kept in only one direction (smaller event id first)
// to avoid duplicate simultaneous pairs.
//
// Instead of blindly enumerating every ordered pair (E^2 kernel calls), a
// one-pass sliding-window prefilter over the merged spike timeline feeds
// the kernel only the pairs whose total co-occurrence count can meet
// MinCount; the result is identical to the full enumeration.
func AllPairs(trains SpikeTrains, cfg CrossCorrConfig) []PairCorrelation {
	out, _ := AllPairsStats(trains, cfg)
	return out
}

// AllPairsStats is AllPairs plus a report of how much of the pair space
// the prefilter pruned versus scored.
func AllPairsStats(trains SpikeTrains, cfg CrossCorrConfig) ([]PairCorrelation, PairStats) {
	ids := make([]int, 0, len(trains))
	for id := range trains {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	stats := PairStats{Events: len(ids), Candidates: len(ids) * (len(ids) - 1)}
	cands := prefilterPairs(trains, ids, cfg)
	stats.Scored = len(cands)
	if len(cands) == 0 {
		return nil, stats
	}

	jobs := make(chan [2]int32, 256)
	var mu sync.Mutex
	var out []PairCorrelation
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch Scratch
			local := make([]PairCorrelation, 0, 64)
			for j := range jobs {
				a, b := ids[j[0]], ids[j[1]]
				delay, count, score, ok := scratch.CrossCorrelate(trains[a], trains[b], cfg)
				if !ok {
					continue
				}
				if delay == 0 && a > b {
					continue // keep simultaneous pairs once
				}
				local = append(local, PairCorrelation{A: a, B: b, Delay: delay, Count: count, Score: score})
			}
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}()
	}
	for _, c := range cands {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	stats.Kept = len(out)
	return out, stats
}
