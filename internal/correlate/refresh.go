package correlate

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/sig"
)

// RefreshStats reports what one incremental refresh round did.
type RefreshStats struct {
	// Dirty is the number of candidate pairs the accumulator reported as
	// changed since the previous refresh; Scored is how many of them the
	// cross-correlation kernel actually re-ran (the rest lost their
	// trains to horizon trimming).
	Dirty  int
	Scored int
	// Seeds is the size of the accepted seed-pair set after the round.
	Seeds int
	// Remined is true when the seed set changed and the full miner ran;
	// false means the cheap rescore fast path sufficed.
	Remined bool
	Chains  int
	// Pairs is the cumulative deduplicated pair-space telemetry across
	// all refresh rounds (see sig.PairTelemetry).
	Pairs    sig.PairStats
	Duration time.Duration
}

// remineEvery rate-limits the full miner: when the seed structure keeps
// churning (marginal pairs flapping across the score threshold as live
// counters grow), at most one refresh round in remineEvery re-runs the
// miner; the rounds between re-score the existing chains against the
// fresh trains. Structural changes therefore reach the chain set within
// remineEvery rounds — bounded staleness in exchange for a steady-state
// refresh that stays far below the batch retraining cost. A quiet
// structure pays nothing: the counter only defers a mine when one is
// actually pending.
const remineEvery = 16

// refresher is the incremental retraining state a model carries between
// Refresh calls. It lives on an unexported Model field so the direct
// JSON serialisation of Model skips it; snapshots carry it explicitly
// via RefreshState.
type refresher struct {
	// seeds holds the currently accepted seed pairs keyed by (A, B).
	seeds map[[2]int]sig.PairCorrelation
	// mined is the seed-set signature at the last full mine; while it
	// matches the current seeds the chain structure cannot have changed
	// and Rescore suffices.
	mined string
	// sinceMine counts refresh rounds since the last full mine, gating
	// the remineEvery rate limit.
	sinceMine int
	tel       *sig.PairTelemetry
	scratch   sig.Scratch
}

// tuneForMode derives the per-mode cross-correlation and mining
// parameters Train and Refresh share, so the incremental path can never
// drift from the batch path's Table III method definitions.
func tuneForMode(mode Mode, horizon int, cfg Config) (sig.CrossCorrConfig, gradual.Config) {
	cc := cfg.CrossCorr
	cc.Horizon = horizon
	mining := cfg.Mining
	mining.Horizon = horizon
	if mode == DataMiningOnly {
		// Fixed small window, stricter support, raw trains, and the
		// classic symmetric co-occurrence criterion only.
		cc.MaxLag = 6 // the classic fixed 60 s window at 10 s sampling
		cc.SymmetricOnly = true
		mining.MinSupport *= 2
		mining.MinConfidence = 0.5
	}
	return cc, mining
}

// streamingSweepBudget is the exact-sweep mass budget for a live
// monitor's accumulator. The batch prefilter bounds a one-shot sweep, so
// its budget is small; the monitor amortises the same work over the
// stream's lifetime (per tick it is bounded by the co-occurrence ring),
// and the exact regime is what keeps refresh cheap — in bucket mode
// every active pair turns dirty each round. The conservative degradation
// still guards truly pathological streams.
const streamingSweepBudget = 1 << 38

// AccumConfigFor derives the accumulator arming for a mode: the same
// window and candidate threshold the mode's batch prefilter gates on,
// so the live counters admit exactly the candidate set AllPairs would.
func AccumConfigFor(mode Mode, cfg Config) sig.AccumConfig {
	cc, _ := tuneForMode(mode, 0, cfg)
	return sig.AccumConfig{MaxLag: cc.MaxLag, MinCount: cc.MinCount, Budget: streamingSweepBudget}
}

// Refresh rebuilds the model's chains from the accumulator's live
// counters without replaying the horizon. Only pairs whose co-occurrence
// counters moved since the last refresh are re-scored by the kernel;
// when the surviving seed set is unchanged the existing chains are
// merely re-scored against the fresh trains (the fast path), otherwise
// the miner re-runs over the new seeds — rate-limited to one full mine
// per remineEvery rounds, so threshold-flapping pairs cannot pin every
// refresh at the miner's cost (see remineEvery for the staleness bound).
func (m *Model) Refresh(acc *sig.Accumulator, cfg Config) RefreshStats {
	mark := now()
	if cfg.Step <= 0 {
		cfg.Step = sig.DefaultStep
	}
	horizon := acc.LastTick() + 1
	cc, mining := tuneForMode(m.Mode, horizon, cfg)

	if m.ref == nil {
		m.ref = &refresher{
			seeds: make(map[[2]int]sig.PairCorrelation),
			tel:   sig.NewPairTelemetry(),
		}
	}
	r := m.ref
	trains := acc.Trains()
	r.tel.BeginRound(acc.Events())

	// Fold the accumulator's severity view into the model before chains
	// are rebuilt: predictiveness depends on it.
	for id, es := range acc.EventStats() {
		if sev := logs.Severity(es.MaxSeverity); sev > m.Severity[id] {
			m.Severity[id] = sev
		}
	}

	dirty := acc.DrainDirty()
	st := RefreshStats{Dirty: len(dirty)}
	for _, d := range dirty {
		a, b := trains[d.A], trains[d.B]
		if len(a) == 0 || len(b) == 0 {
			delete(r.seeds, [2]int{d.A, d.B})
			r.tel.NoteKept(d.A, d.B, false)
			continue
		}
		st.Scored++
		r.tel.NoteScored(d.A, d.B)
		delay, count, score, ok := r.scratch.CrossCorrelate(a, b, cc)
		if ok && delay == 0 && d.A > d.B {
			ok = false // keep simultaneous pairs once, as the batch scan does
		}
		if ok {
			r.seeds[[2]int{d.A, d.B}] = sig.PairCorrelation{
				A: d.A, B: d.B, Delay: delay, Count: count, Score: score,
			}
		} else {
			delete(r.seeds, [2]int{d.A, d.B})
		}
		r.tel.NoteKept(d.A, d.B, ok)
	}

	seeds := r.seedList()
	signature := seedSignature(seeds)
	r.sinceMine++
	if signature != r.mined && (r.mined == "" || r.sinceMine >= remineEvery) {
		st.Remined = true
		m.Chains = m.Chains[:0]
		switch m.Mode {
		case Hybrid, DataMiningOnly:
			for _, s := range gradual.Mine(trains, seeds, mining) {
				m.Chains = append(m.Chains, m.newChain(s))
			}
		case SignalOnly:
			for _, s := range pairItemsets(trains, seeds, mining) {
				m.Chains = append(m.Chains, m.newChain(s))
			}
		}
		r.mined = signature
		r.sinceMine = 0
	} else {
		// Seed structure unchanged — or changed within the remineEvery
		// rate limit: the candidate tree keeps its shape for now, so
		// re-score the live chain set against the fresh trains. A chain
		// whose support collapsed falls out here; pending structural
		// additions land at the next full mine.
		sets := make([]gradual.Itemset, 0, len(m.Chains))
		for _, c := range m.Chains {
			sets = append(sets, c.Itemset)
		}
		m.Chains = m.Chains[:0]
		for _, s := range gradual.Rescore(trains, sets, mining) {
			m.Chains = append(m.Chains, m.newChain(s))
		}
	}
	sort.Slice(m.Chains, func(i, j int) bool { return m.Chains[i].Key() < m.Chains[j].Key() })

	m.TrainEnd = m.TrainStart.Add(time.Duration(horizon) * cfg.Step)
	st.Seeds = len(seeds)
	st.Chains = len(m.Chains)
	st.Pairs = r.tel.Stats()
	m.Stats.Pairs = st.Pairs
	st.Duration = now().Sub(mark)
	return st
}

// seedList returns the accepted seeds in the batch scan's deterministic
// (A, B) order.
func (r *refresher) seedList() []sig.PairCorrelation {
	out := make([]sig.PairCorrelation, 0, len(r.seeds))
	for _, p := range r.seeds {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// seedSignature fingerprints the structural part of a seed set: the
// (A, B, Delay) triples the miner's candidate tree is built from. Count
// and Score feed thresholds already applied, so two sets with equal
// signatures mine identical chain structures.
func seedSignature(seeds []sig.PairCorrelation) string {
	if len(seeds) == 0 {
		return ""
	}
	var b strings.Builder
	for _, s := range seeds {
		fmt.Fprintf(&b, "%d>%d@%d|", s.A, s.B, s.Delay)
	}
	return b.String()
}

// RefreshState is the serialisable form of the incremental retraining
// state, riding the monitor snapshot envelope.
type RefreshState struct {
	Seeds     []sig.PairCorrelation  `json:"seeds,omitempty"`
	Mined     string                 `json:"mined,omitempty"`
	SinceMine int                    `json:"since_mine,omitempty"`
	Telemetry sig.PairTelemetryState `json:"telemetry"`
}

// RefreshState snapshots the refresher, or nil if the model has never
// been refreshed (the envelope omits it).
func (m *Model) RefreshState() *RefreshState {
	if m.ref == nil {
		return nil
	}
	return &RefreshState{
		Seeds:     m.ref.seedList(),
		Mined:     m.ref.mined,
		SinceMine: m.ref.sinceMine,
		Telemetry: m.ref.tel.State(),
	}
}

// RestoreRefreshState rebuilds the refresher from a snapshot; a nil
// state resets the model to the never-refreshed condition.
func (m *Model) RestoreRefreshState(st *RefreshState) {
	if st == nil {
		m.ref = nil
		return
	}
	r := &refresher{
		seeds:     make(map[[2]int]sig.PairCorrelation, len(st.Seeds)),
		mined:     st.Mined,
		sinceMine: st.SinceMine,
		tel:       sig.RestorePairTelemetry(st.Telemetry),
	}
	for _, p := range st.Seeds {
		r.seeds[[2]int{p.A, p.B}] = p
	}
	m.ref = r
}
