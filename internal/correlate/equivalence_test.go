package correlate

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/sig"
)

// referenceSeeds reproduces the pre-change seeding stage: a blind
// sequential enumeration of every ordered spike-train pair through the
// exported cross-correlation kernel, with no prefiltering. Together with
// the kernel- and miner-level equivalence tests (internal/sig,
// internal/gradual) this pins the whole fast path to the pre-change
// behaviour.
func referenceSeeds(trains sig.SpikeTrains, cfg sig.CrossCorrConfig) []sig.PairCorrelation {
	ids := make([]int, 0, len(trains))
	for id := range trains {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []sig.PairCorrelation
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			delay, count, score, ok := sig.CrossCorrelate(trains[a], trains[b], cfg)
			if !ok {
				continue
			}
			if delay == 0 && a > b {
				continue
			}
			out = append(out, sig.PairCorrelation{A: a, B: b, Delay: delay, Count: count, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// TestTrainEquivalentToReference trains on a generated BG/L-profile log
// in all three modes and requires the fast path (prefilter + scratch
// kernels + parallel mining) to produce bit-identical chains to a
// reference pass whose seeds come from the blind pair enumeration.
func TestTrainEquivalentToReference(t *testing.T) {
	dur := 24 * time.Hour
	res := gen.New(gen.BlueGeneL(), 3).Generate(t0, dur)
	helo.New(0).Assign(res.Records)
	end := t0.Add(dur)
	cfg := DefaultConfig()
	horizon := int(end.Sub(t0) / cfg.Step)

	for _, mode := range []Mode{Hybrid, SignalOnly, DataMiningOnly} {
		model := Train(res.Records, t0, end, mode, cfg)

		// Rebuild the reference chains from the same characterised trains.
		ref := &Model{
			Profiles:   make(map[int]sig.Profile),
			Thresholds: make(map[int]float64),
			Severity:   model.Severity,
		}
		occ := make(map[int][]int)
		for _, r := range res.Records {
			if r.EventID < 0 {
				continue
			}
			i := int(r.Time.Sub(t0) / cfg.Step)
			if i < 0 || i >= horizon {
				continue
			}
			train := occ[r.EventID]
			if len(train) == 0 || train[len(train)-1] != i {
				occ[r.EventID] = append(train, i)
			}
		}
		trains := characterize(occ, horizon, mode, cfg, ref)

		cc := cfg.CrossCorr
		cc.Horizon = horizon
		mining := cfg.Mining
		mining.Horizon = horizon
		if mode == DataMiningOnly {
			cc.MaxLag = 6
			cc.SymmetricOnly = true
			mining.MinSupport *= 2
			mining.MinConfidence = 0.5
		}
		seeds := referenceSeeds(trains, cc)

		// The prefiltered seed stage must match the blind enumeration
		// exactly.
		fastSeeds := sig.AllPairs(trains, cc)
		if !reflect.DeepEqual(fastSeeds, seeds) {
			t.Fatalf("mode %s: AllPairs diverged from reference enumeration", mode)
		}

		var want []Chain
		switch mode {
		case Hybrid, DataMiningOnly:
			for _, s := range gradual.Mine(trains, seeds, mining) {
				want = append(want, model.newChain(s))
			}
		case SignalOnly:
			for _, s := range pairItemsets(trains, seeds, mining) {
				want = append(want, model.newChain(s))
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Key() < want[j].Key() })

		if !reflect.DeepEqual(model.Chains, want) {
			t.Fatalf("mode %s: Train chains diverged from reference path\n got %d chains\nwant %d chains",
				mode, len(model.Chains), len(want))
		}
		if model.Stats.Pairs.Candidates > 0 && model.Stats.Pairs.Scored > model.Stats.Pairs.Candidates {
			t.Fatalf("mode %s: incoherent pair stats %+v", mode, model.Stats.Pairs)
		}
	}
}
