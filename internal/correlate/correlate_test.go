package correlate

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/sig"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

// trainModel generates a BG/L-style log and trains a model in the given
// mode. Shared across tests; cached by seed+duration+mode.
func trainModel(t *testing.T, mode Mode, days int, seed int64) (*Model, []logs.Record) {
	t.Helper()
	dur := time.Duration(days) * 24 * time.Hour
	res := gen.New(gen.BlueGeneL(), seed).Generate(t0, dur)
	org := helo.New(0)
	org.Assign(res.Records)
	m := Train(res.Records, t0, t0.Add(dur), mode, DefaultConfig())
	return m, res.Records
}

func TestModeString(t *testing.T) {
	if Hybrid.String() != "hybrid" || SignalOnly.String() != "signal" || DataMiningOnly.String() != "datamining" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "invalid" {
		t.Error("invalid mode name wrong")
	}
}

func TestHybridFindsCascadeChains(t *testing.T) {
	m, _ := trainModel(t, Hybrid, 6, 101)
	if len(m.Chains) == 0 {
		t.Fatal("no chains extracted")
	}
	// At least one multi-event chain must exist (the cascades have 3-4
	// events).
	maxSize := 0
	for _, c := range m.Chains {
		if c.Size() > maxSize {
			maxSize = c.Size()
		}
	}
	if maxSize < 3 {
		t.Errorf("longest chain = %d events, want >= 3", maxSize)
	}
}

func TestHybridMarksInformationalChains(t *testing.T) {
	m, _ := trainModel(t, Hybrid, 6, 102)
	nonPred := 0
	pred := 0
	for _, c := range m.Chains {
		if c.Predictive {
			pred++
		} else {
			nonPred++
			if c.MaxSeverity > logs.Info {
				t.Errorf("non-predictive chain has severity %v", c.MaxSeverity)
			}
		}
	}
	if pred == 0 {
		t.Error("no predictive chains")
	}
	if nonPred == 0 {
		t.Error("no informational chains (restart/multiline should correlate)")
	}
	if got := len(m.PredictiveChains()); got != pred {
		t.Errorf("PredictiveChains = %d, want %d", got, pred)
	}
}

func TestSignalOnlyProducesMorePairChains(t *testing.T) {
	hybrid, _ := trainModel(t, Hybrid, 6, 103)
	signal, _ := trainModel(t, SignalOnly, 6, 103)
	if len(signal.Chains) == 0 {
		t.Fatal("signal-only extracted nothing")
	}
	for _, c := range signal.Chains {
		if c.Size() != 2 {
			t.Fatalf("signal-only chain of size %d", c.Size())
		}
	}
	if len(signal.Chains) <= len(hybrid.Chains) {
		t.Errorf("signal-only chains (%d) should outnumber hybrid chains (%d)",
			len(signal.Chains), len(hybrid.Chains))
	}
}

func TestDataMiningOnlyLimitations(t *testing.T) {
	signal, _ := trainModel(t, SignalOnly, 6, 104)
	dm, _ := trainModel(t, DataMiningOnly, 6, 104)
	if len(dm.Chains) >= len(signal.Chains) {
		t.Errorf("data-mining chains (%d) should be fewer than signal-only (%d)",
			len(dm.Chains), len(signal.Chains))
	}
	// The fixed 60 s correlation window bounds every adjacent gap, so the
	// hour-scale node-card cascade cannot appear as a direct correlation:
	// no dm chain may contain a gap beyond the window (plus matching
	// tolerance).
	for _, c := range dm.Chains {
		for i := 1; i < len(c.Items); i++ {
			gap := c.Items[i].Delay - c.Items[i-1].Delay
			if gap > 6+2 {
				t.Errorf("dm chain %s has gap of %d samples, beyond the fixed window", c.Key(), gap)
			}
		}
	}
}

func TestProfilesCoverEventTypes(t *testing.T) {
	m, recs := trainModel(t, Hybrid, 4, 105)
	ids := map[int]bool{}
	for _, r := range recs {
		ids[r.EventID] = true
	}
	for id := range ids {
		if _, ok := m.Profiles[id]; !ok {
			t.Errorf("event %d missing profile", id)
		}
		if th, ok := m.Thresholds[id]; !ok || th <= 0 {
			t.Errorf("event %d missing threshold", id)
		}
	}
}

func TestSilentMajority(t *testing.T) {
	// The paper observes silent signals are the majority of event types.
	m, _ := trainModel(t, Hybrid, 4, 106)
	counts := map[sig.Class]int{}
	for _, p := range m.Profiles {
		counts[p.Class]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if counts[sig.Silent]*2 < total {
		t.Errorf("silent signals are not the majority: %v", counts)
	}
}

func TestTrainDeterministic(t *testing.T) {
	a, _ := trainModel(t, Hybrid, 4, 107)
	b, _ := trainModel(t, Hybrid, 4, 107)
	if len(a.Chains) != len(b.Chains) {
		t.Fatalf("chain counts differ: %d vs %d", len(a.Chains), len(b.Chains))
	}
	for i := range a.Chains {
		if a.Chains[i].Key() != b.Chains[i].Key() {
			t.Fatalf("chain %d differs: %s vs %s", i, a.Chains[i].Key(), b.Chains[i].Key())
		}
	}
}

func TestTrainEmptyLog(t *testing.T) {
	m := Train(nil, t0, t0.Add(time.Hour), Hybrid, DefaultConfig())
	if len(m.Chains) != 0 || len(m.Profiles) != 0 {
		t.Error("empty log should train an empty model")
	}
}

func TestChainSeverityMetadata(t *testing.T) {
	m, _ := trainModel(t, Hybrid, 6, 108)
	for _, c := range m.Chains {
		want := logs.Info
		for _, it := range c.Items {
			if sev := m.Severity[it.Event]; sev > want {
				want = sev
			}
		}
		if c.MaxSeverity != want {
			t.Errorf("chain %s severity %v, want %v", c.Key(), c.MaxSeverity, want)
		}
	}
}
