package correlate

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/sig"
)

// cascadeTrains builds outlier spike trains with a genuine 1 -> 2 -> 3
// cascade plus background noise, the shape the hybrid pipeline feeds the
// miner after outlier filtering.
func cascadeTrains(rng *rand.Rand, n int) sig.SpikeTrains {
	trains := sig.SpikeTrains{}
	var s1, s2, s3, s9 []int
	for i := 0; i < n; i++ {
		base := i*997 + rng.Intn(5)
		s1 = append(s1, base)
		s2 = append(s2, base+6)
		s3 = append(s3, base+10)
		s9 = append(s9, i*1013+37)
	}
	trains[1], trains[2], trains[3], trains[9] = s1, s2, s3, s9
	return trains
}

// feedAccum replays trains tick by tick, as the pipeline tap would.
func feedAccum(ac *sig.Accumulator, trains sig.SpikeTrains, from int) {
	last := -1
	ids := make([]int, 0, len(trains))
	for id, tr := range trains {
		ids = append(ids, id)
		if len(tr) > 0 && tr[len(tr)-1] > last {
			last = tr[len(tr)-1]
		}
	}
	sort.Ints(ids)
	var outliers []int
	for t := from; t <= last; t++ {
		outliers = outliers[:0]
		for _, id := range ids {
			tr := trains[id]
			if i := sort.SearchInts(tr, t); i < len(tr) && tr[i] == t {
				outliers = append(outliers, id)
			}
		}
		ac.ObserveTick(t, nil, outliers)
	}
}

// emptyModel builds a trained-model shell with severities but no chains,
// the state a monitor holds right after loading a fresh model.
func emptyModel(mode Mode, cfg Config) *Model {
	return &Model{
		Mode:       mode,
		Step:       cfg.Step,
		TrainStart: t0,
		Profiles:   make(map[int]sig.Profile),
		Thresholds: make(map[int]float64),
		Severity:   make(map[int]logs.Severity),
	}
}

func accumFor(cfg Config) *sig.Accumulator {
	return sig.NewAccumulator(sig.AccumConfig{
		MaxLag:   cfg.CrossCorr.MaxLag,
		MinCount: cfg.CrossCorr.MinCount,
	})
}

// TestRefreshMatchesBatchMine: a first Refresh over accumulated counters
// must produce exactly the chains the batch seed-and-mine path extracts
// from the same trains — the accumulator's exact counters admit the same
// candidate set the batch prefilter does.
func TestRefreshMatchesBatchMine(t *testing.T) {
	for _, mode := range []Mode{Hybrid, SignalOnly} {
		rng := rand.New(rand.NewSource(31))
		trains := cascadeTrains(rng, 40)
		cfg := DefaultConfig()

		ac := accumFor(cfg)
		feedAccum(ac, trains, 0)
		ac.NoteSeverity(3, int(logs.Error))

		m := emptyModel(mode, cfg)
		st := m.Refresh(ac, cfg)
		if !st.Remined {
			t.Fatalf("%v: first refresh must run the full miner", mode)
		}
		if st.Duration <= 0 || st.Chains != len(m.Chains) {
			t.Fatalf("%v: stats inconsistent: %+v", mode, st)
		}

		// Reference: the batch path over identical trains.
		horizon := ac.LastTick() + 1
		cc, mining := tuneForMode(mode, horizon, cfg)
		seeds := sig.AllPairs(trains, cc)
		ref := emptyModel(mode, cfg)
		ref.Severity[3] = logs.Error
		var want []Chain
		if mode == SignalOnly {
			for _, s := range pairItemsets(trains, seeds, mining) {
				want = append(want, ref.newChain(s))
			}
		} else {
			for _, s := range gradual.Mine(trains, seeds, mining) {
				want = append(want, ref.newChain(s))
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Key() < want[j].Key() })

		if !reflect.DeepEqual(m.Chains, want) {
			t.Fatalf("%v: refresh chains diverge from batch mine\n got=%v\nwant=%v", mode, m.Chains, want)
		}
		if len(m.Chains) == 0 {
			t.Fatalf("%v: no chains extracted", mode)
		}
	}
}

// TestRefreshFastPathSkipsMiner: when new data only repeats existing
// co-occurrence structure the seed signature is unchanged, so the second
// refresh must take the rescore fast path yet still fold the new support
// into the chains.
func TestRefreshFastPathSkipsMiner(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cfg := DefaultConfig()
	ac := accumFor(cfg)
	m := emptyModel(Hybrid, cfg)

	first := cascadeTrains(rng, 40)
	feedAccum(ac, first, 0)
	ac.NoteSeverity(3, int(logs.Error))
	st1 := m.Refresh(ac, cfg)
	if !st1.Remined || len(m.Chains) == 0 {
		t.Fatalf("first refresh: %+v, chains=%d", st1, len(m.Chains))
	}
	support1 := maxSupport(m.Chains)

	// Extend the stream with more occurrences of the same cascade at the
	// same delays: counters move, structure does not.
	more := cascadeTrains(rand.New(rand.NewSource(47)), 80)
	feedAccum(ac, more, ac.LastTick()+1)
	st2 := m.Refresh(ac, cfg)
	if st2.Remined {
		t.Fatalf("unchanged seed structure re-ran the miner: %+v", st2)
	}
	if st2.Dirty == 0 || st2.Scored == 0 {
		t.Fatalf("second refresh saw no dirty pairs: %+v", st2)
	}
	if got := maxSupport(m.Chains); got <= support1 {
		t.Fatalf("fast path did not fold in new support: %d -> %d", support1, got)
	}
	// A refresh with no new data at all drains nothing and changes nothing.
	before := append([]Chain(nil), m.Chains...)
	st3 := m.Refresh(ac, cfg)
	if st3.Dirty != 0 || st3.Remined || !reflect.DeepEqual(m.Chains, before) {
		t.Fatalf("idle refresh perturbed the model: %+v", st3)
	}
}

func maxSupport(chains []Chain) int {
	best := 0
	for _, c := range chains {
		if c.Support > best {
			best = c.Support
		}
	}
	return best
}

// TestRefreshStateRoundTrip: serialising the refresher and restoring it
// into a fresh model must leave both copies indistinguishable — same
// fast-path decisions, same chains — as they continue over new data.
func TestRefreshStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig()
	ac := accumFor(cfg)
	m := emptyModel(Hybrid, cfg)
	feedAccum(ac, cascadeTrains(rng, 40), 0)
	ac.NoteSeverity(3, int(logs.Error))
	m.Refresh(ac, cfg)

	// Snapshot both the accumulator and the refresher through JSON.
	blob, err := json.Marshal(struct {
		Acc     *sig.AccumState
		Refresh *RefreshState
		Model   *Model
	}{ac.State(), m.RefreshState(), m})
	if err != nil {
		t.Fatal(err)
	}
	var dec struct {
		Acc     *sig.AccumState
		Refresh *RefreshState
		Model   *Model
	}
	if err := json.Unmarshal(blob, &dec); err != nil {
		t.Fatal(err)
	}
	ac2, err := sig.RestoreAccumulator(sig.AccumConfig{
		MaxLag: cfg.CrossCorr.MaxLag, MinCount: cfg.CrossCorr.MinCount,
	}, dec.Acc)
	if err != nil {
		t.Fatal(err)
	}
	m2 := dec.Model
	m2.RestoreRefreshState(dec.Refresh)

	more := cascadeTrains(rand.New(rand.NewSource(5)), 70)
	feedAccum(ac, more, ac.LastTick()+1)
	feedAccum(ac2, more, ac2.LastTick()+1)
	st1 := m.Refresh(ac, cfg)
	st2 := m2.Refresh(ac2, cfg)
	st1.Duration, st2.Duration = 0, 0
	if st1 != st2 {
		t.Fatalf("refresh stats diverge after restore: %+v vs %+v", st1, st2)
	}
	if !reflect.DeepEqual(m.Chains, m2.Chains) {
		t.Fatalf("chains diverge after restore\n got=%v\nwant=%v", m2.Chains, m.Chains)
	}
	if m.RefreshState().Mined != m2.RefreshState().Mined {
		t.Fatal("mined signatures diverge after restore")
	}
	// RestoreRefreshState(nil) resets to the never-refreshed state.
	m2.RestoreRefreshState(nil)
	if m2.RefreshState() != nil {
		t.Fatal("nil restore did not clear the refresher")
	}
}
