// Package correlate drives the offline correlation extraction: it turns an
// event-stamped training log into per-event behaviour profiles, outlier
// spike trains, cross-correlation seed pairs and finally correlation
// chains. Three modes implement the three methods Table III compares:
//
//   - Hybrid: the paper's contribution — signal characterisation and
//     outlier filtering feed cross-correlation seed pairs into the
//     gradual-itemset miner, which grows multi-event chains.
//   - SignalOnly: the authors' earlier pure signal-analysis approach —
//     the cross-correlation pairs themselves are the chains (many short
//     sequences, no multi-event consolidation).
//   - DataMiningOnly: a classic association-rule baseline (Zheng et al.
//     style): raw occurrence trains, no signal classes, no outlier
//     cleaning, a fixed small correlation window and stricter support.
package correlate

import (
	"sort"
	"sync"
	"time"

	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/outlier"
	"github.com/elsa-hpc/elsa/internal/sig"
)

// Mode selects the correlation method.
type Mode int

// Methods compared in the paper's Table III.
const (
	Hybrid Mode = iota
	SignalOnly
	DataMiningOnly
)

var modeNames = [...]string{"hybrid", "signal", "datamining"}

// now is the clock behind the training-stage wall-time telemetry
// (Stats.Characterize/Seed/Mine). It is a variable so tests can freeze
// it; the model's *contents* never depend on it — only the reported
// timings do, which is exactly why the determinism contract allows this
// single seam.
var now = time.Now //nolint:elsadeterminism // telemetry-only clock: feeds Stats durations, never chain extraction

// String names the mode as in Table III.
func (m Mode) String() string {
	if m < Hybrid || m > DataMiningOnly {
		return "invalid"
	}
	return modeNames[m]
}

// Chain is one extracted correlation sequence plus its metadata.
type Chain struct {
	gradual.Itemset
	// Predictive is false for chains whose events are all informational
	// (restart sequences, multiline messages); the paper eliminates these
	// automatically using the severity field.
	Predictive bool
	// MaxSeverity is the worst severity among the chain's event types.
	MaxSeverity logs.Severity
}

// Config tunes training.
type Config struct {
	Step      time.Duration
	Classify  sig.ClassifyConfig
	CrossCorr sig.CrossCorrConfig
	Mining    gradual.Config // Horizon is overwritten per training window

	// OutlierWindow/K/Floor calibrate the per-signal outlier filters.
	OutlierWindow int
	OutlierK      float64
	OutlierFloor  float64

	// SilentOccupancy is the maximum fraction of samples with activity
	// for an event to take the sparse silent path.
	SilentOccupancy float64
}

// DefaultConfig returns the training parameters used in the experiments.
func DefaultConfig() Config {
	return Config{
		Step:            sig.DefaultStep,
		Classify:        sig.DefaultClassifyConfig(),
		CrossCorr:       sig.DefaultCrossCorrConfig(),
		Mining:          gradual.DefaultConfig(0),
		OutlierWindow:   outlier.DefaultWindow,
		OutlierK:        outlier.DefaultK,
		OutlierFloor:    outlier.DefaultFloor,
		SilentOccupancy: 0.005,
	}
}

// TrainStats reports what the training fast path did: how much of the
// pair space the co-occurrence prefilter pruned before the
// cross-correlation kernel ran, and where the wall-clock went. It is
// diagnostic output, not part of the persisted model.
type TrainStats struct {
	Pairs        sig.PairStats
	Characterize time.Duration
	Seed         time.Duration
	Mine         time.Duration
}

// Model is the trained correlation model the online predictor loads.
type Model struct {
	Mode       Mode
	Step       time.Duration
	TrainStart time.Time
	TrainEnd   time.Time

	// Stats describes the most recent training run; it is not persisted.
	Stats TrainStats `json:"-"`

	// Chains holds every extracted sequence; PredictiveChains indexes the
	// usable subset.
	Chains []Chain

	// Profiles and Thresholds characterise each event type for the online
	// outlier stage.
	Profiles   map[int]sig.Profile
	Thresholds map[int]float64

	// Severity maps event id to the worst severity seen in training.
	Severity map[int]logs.Severity

	// ref carries incremental retraining state between Refresh calls; it
	// is unexported so the model's direct JSON form skips it (snapshots
	// persist it explicitly via RefreshState).
	//elsa:ephemeral serialised explicitly as RefreshState on the monitor envelope; restored via RestoreRefreshState
	ref *refresher
}

// PredictiveChains returns the chains usable for failure prediction.
func (m *Model) PredictiveChains() []Chain {
	out := make([]Chain, 0, len(m.Chains))
	for _, c := range m.Chains {
		if c.Predictive {
			out = append(out, c)
		}
	}
	return out
}

// Train builds the correlation model from an event-stamped training log
// covering [start, end). Records must be time-sorted with EventID set.
func Train(recs []logs.Record, start, end time.Time, mode Mode, cfg Config) *Model {
	if cfg.Step <= 0 {
		cfg.Step = sig.DefaultStep
	}
	horizon := int(end.Sub(start) / cfg.Step)
	model := &Model{
		Mode:       mode,
		Step:       cfg.Step,
		TrainStart: start,
		TrainEnd:   end,
		Profiles:   make(map[int]sig.Profile),
		Thresholds: make(map[int]float64),
		Severity:   make(map[int]logs.Severity),
	}

	// Collect occurrence sample indices and severities per event type.
	occ := make(map[int][]int)
	for _, r := range recs {
		if r.EventID < 0 {
			continue
		}
		i := int(r.Time.Sub(start) / cfg.Step)
		if i < 0 || i >= horizon {
			continue
		}
		train := occ[r.EventID]
		if len(train) == 0 || train[len(train)-1] != i {
			occ[r.EventID] = append(train, i)
		}
		if sev, ok := model.Severity[r.EventID]; !ok || r.Severity > sev {
			model.Severity[r.EventID] = r.Severity
		}
	}

	mark := now()
	trains := characterize(occ, horizon, mode, cfg, model)
	model.Stats.Characterize = now().Sub(mark)

	cc, mining := tuneForMode(mode, horizon, cfg)
	// All three modes seed from the prefiltered pair scan; the pruning
	// stats land on the model so operators can see how much of the E^2
	// space the fast path skipped.
	mark = now()
	seeds, pairStats := sig.AllPairsStats(trains, cc)
	model.Stats.Pairs = pairStats
	model.Stats.Seed = now().Sub(mark)

	mark = now()
	switch mode {
	case Hybrid, DataMiningOnly:
		for _, s := range gradual.Mine(trains, seeds, mining) {
			model.Chains = append(model.Chains, model.newChain(s))
		}
	case SignalOnly:
		// Pure signal analysis: the cross-correlation pairs are the
		// final sequences; no multi-event consolidation happens.
		for _, s := range pairItemsets(trains, seeds, mining) {
			model.Chains = append(model.Chains, model.newChain(s))
		}
	}
	model.Stats.Mine = now().Sub(mark)
	sort.Slice(model.Chains, func(i, j int) bool { return model.Chains[i].Key() < model.Chains[j].Key() })
	return model
}

// characterize profiles every event type and produces its outlier spike
// train, in parallel across event types.
func characterize(occ map[int][]int, horizon int, mode Mode, cfg Config, model *Model) sig.SpikeTrains {
	ids := make([]int, 0, len(occ))
	for id := range occ {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	type result struct {
		id      int
		profile sig.Profile
		train   []int
	}
	results := make([]result, len(ids))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i, id := range ids {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = result{id: id}
			train := occ[id]
			if mode == DataMiningOnly {
				// The baseline mines raw occurrences: no behaviour model,
				// no cleaning. Dense chatter floods its trains.
				results[i].profile = sig.Profile{Event: id, Class: sig.Noise}
				results[i].train = train
				return
			}
			occupancy := float64(len(train)) / float64(horizon+1)
			if occupancy <= cfg.SilentOccupancy {
				// Sparse silent path: every occurrence is an outlier.
				results[i].profile = sig.Profile{Event: id, Class: sig.Silent}
				results[i].train = train
				return
			}
			// Dense path: materialise the signal, characterise, filter.
			// Periodic signals are filtered on their phase residuals so
			// normal beats pass and missed or extra beats flag.
			samples := make([]float64, horizon)
			for _, t := range train {
				if t < horizon {
					samples[t]++
				}
			}
			s := &sig.Signal{Event: id, Step: cfg.Step, Samples: samples}
			p := sig.Characterize(s, cfg.Classify)
			values := samples
			if p.Class == sig.Periodic && len(p.Baseline) > 0 {
				values = sig.Residual(samples, p.Baseline)
			}
			th := outlier.Threshold(p, cfg.OutlierK, cfg.OutlierFloor)
			outliers, _ := outlier.Filter(values, cfg.OutlierWindow, th)
			results[i].profile = p
			results[i].train = outliers
		}(i, id)
	}
	wg.Wait()

	trains := make(sig.SpikeTrains, len(results))
	for _, r := range results {
		model.Profiles[r.id] = r.profile
		model.Thresholds[r.id] = outlier.Threshold(r.profile, cfg.OutlierK, cfg.OutlierFloor)
		if len(r.train) > 0 {
			trains[r.id] = r.train
		}
	}
	return trains
}

// pairItemsets scores seed pairs as standalone 2-item chains for the
// signal-only mode.
func pairItemsets(trains sig.SpikeTrains, seeds []sig.PairCorrelation, cfg gradual.Config) []gradual.Itemset {
	cands := make([][]gradual.Item, 0, len(seeds))
	for _, p := range seeds {
		cands = append(cands, []gradual.Item{{Event: p.A, Delay: 0}, {Event: p.B, Delay: p.Delay}})
	}
	sets := gradual.Evaluate(trains, cands, cfg)
	sort.Slice(sets, func(i, j int) bool { return sets[i].Key() < sets[j].Key() })
	return sets
}

// newChain wraps an itemset with severity metadata. A chain is predictive
// when at least one of its event types has been seen above Info severity
// (the paper's automatic INFO-only elimination).
func (m *Model) newChain(s gradual.Itemset) Chain {
	maxSev := logs.Info
	for _, it := range s.Items {
		if sev := m.Severity[it.Event]; sev > maxSev {
			maxSev = sev
		}
	}
	return Chain{Itemset: s, Predictive: maxSev > logs.Info, MaxSeverity: maxSev}
}
