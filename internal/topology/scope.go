package topology

import "fmt"

// Scope names a level of the machine hierarchy, ordered from finest
// (ScopeNode) to coarsest (ScopeSystem). The location-correlation module
// classifies fault-propagation behaviour by the smallest scope that
// encloses all components touched by a correlation chain.
type Scope int

// Hierarchy levels, finest first.
const (
	ScopeNode Scope = iota
	ScopeNodeCard
	ScopeMidplane
	ScopeRack
	ScopeSystem
)

var scopeNames = [...]string{"node", "nodecard", "midplane", "rack", "system"}

// String returns the lower-case level name.
func (s Scope) String() string {
	if s < ScopeNode || s > ScopeSystem {
		return "invalid"
	}
	return scopeNames[s]
}

// Valid reports whether s is one of the defined levels.
func (s Scope) Valid() bool { return s >= ScopeNode && s <= ScopeSystem }

// ParseScope decodes a level name as rendered by String ("node",
// "nodecard", "midplane", "rack", "system"); it is how command-line
// flags select a fleet's partitioning granularity.
func ParseScope(name string) (Scope, error) {
	for i, n := range scopeNames {
		if n == name {
			return Scope(i), nil
		}
	}
	return 0, fmt.Errorf("topology: unknown scope %q (want node, nodecard, midplane, rack, or system)", name)
}

// Wider reports whether s is a strictly coarser level than t.
func (s Scope) Wider(t Scope) bool { return s > t }

// MaxScope returns the coarser of a and b.
func MaxScope(a, b Scope) Scope {
	if a > b {
		return a
	}
	return b
}

// SpanScope returns the smallest scope enclosing every location in locs.
// An empty slice spans ScopeNode (no propagation evidence).
func SpanScope(locs []Location) Scope {
	if len(locs) == 0 {
		return ScopeNode
	}
	span := locs[0].Level()
	for _, l := range locs[1:] {
		span = MaxScope(span, CommonScope(locs[0], l))
	}
	return span
}
