package topology

import (
	"encoding/json"
	"testing"
)

func TestLocationJSONRoundTrip(t *testing.T) {
	for _, s := range []string{"R00-M0-N0-C:J02-U01", "R05-M1", "SYSTEM", "tg-c042"} {
		loc := MustParse(s)
		data, err := json.Marshal(loc)
		if err != nil {
			t.Fatalf("marshal %q: %v", s, err)
		}
		var back Location
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %q: %v", data, err)
		}
		if back != loc {
			t.Errorf("round trip %q -> %q", s, back)
		}
	}
}

func TestLocationJSONErrors(t *testing.T) {
	var loc Location
	if err := json.Unmarshal([]byte(`123`), &loc); err == nil {
		t.Error("non-string accepted")
	}
	if err := json.Unmarshal([]byte(`"R0x-"`), &loc); err == nil {
		t.Error("malformed code accepted")
	}
}

func TestLocationJSONInStruct(t *testing.T) {
	type wrapper struct {
		Where Location `json:"where"`
	}
	w := wrapper{Where: MustParse("R22-M0-N0-I:J18-U01")}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"where":"R22-M0-N0-I:J18-U01"}` {
		t.Errorf("encoded = %s", data)
	}
	var back wrapper
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Where != w.Where {
		t.Error("struct round trip failed")
	}
}
