package topology

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the location as its canonical code string.
func (l Location) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.String())
}

// UnmarshalJSON decodes a canonical code string.
func (l *Location) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("topology: location must be a string: %w", err)
	}
	loc, err := Parse(s)
	if err != nil {
		return err
	}
	*l = loc
	return nil
}
