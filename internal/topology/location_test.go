package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"R00-M0-N0-C:J02-U01",
		"R22-M0-N0-I:J18-U01",
		"R00-M0-N0",
		"R63-M1-N15",
		"R07-M1",
		"R11",
		"SYSTEM",
		"tg-c042",
	}
	for _, s := range cases {
		loc, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := loc.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
	}
}

func TestParseSystemAliases(t *testing.T) {
	for _, s := range []string{"", "NULL", "-", "SYSTEM", "  SYSTEM  "} {
		loc, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !loc.IsSystem() {
			t.Errorf("Parse(%q) = %v, want System", s, loc)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"R0x",
		"R00-X0",
		"R00-M0-N",
		"R00-M0-N0-Q:J02-U01",
		"R00-M0-N0-C:J02",
		"R00-M0-N0-C:Jxx-U01",
		"two words",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestLevels(t *testing.T) {
	cases := []struct {
		in   string
		want Scope
	}{
		{"R00-M0-N0-C:J02-U01", ScopeNode},
		{"R00-M0-N0", ScopeNodeCard},
		{"R00-M0", ScopeMidplane},
		{"R00", ScopeRack},
		{"SYSTEM", ScopeSystem},
		{"tg-c001", ScopeNode},
	}
	for _, c := range cases {
		if got := MustParse(c.in).Level(); got != c.want {
			t.Errorf("Level(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	node := MustParse("R00-M0-N0-C:J02-U01")
	cases := []struct {
		outer, inner string
		want         bool
	}{
		{"SYSTEM", "R00-M0-N0-C:J02-U01", true},
		{"R00", "R00-M0-N0-C:J02-U01", true},
		{"R00-M0", "R00-M0-N0-C:J02-U01", true},
		{"R00-M0-N0", "R00-M0-N0-C:J02-U01", true},
		{"R00-M0-N1", "R00-M0-N0-C:J02-U01", false},
		{"R01", "R00-M0-N0-C:J02-U01", false},
		{"tg-c001", "tg-c001", true},
		{"tg-c001", "tg-c002", false},
	}
	for _, c := range cases {
		if got := MustParse(c.outer).Contains(MustParse(c.inner)); got != c.want {
			t.Errorf("%q.Contains(%q) = %v, want %v", c.outer, c.inner, got, c.want)
		}
	}
	if !node.Contains(node) {
		t.Error("node should contain itself")
	}
}

func TestCommonScope(t *testing.T) {
	cases := []struct {
		a, b string
		want Scope
	}{
		{"R00-M0-N0-C:J02-U01", "R00-M0-N0-C:J02-U01", ScopeNode},
		{"R00-M0-N0-C:J02-U01", "R00-M0-N0-C:J03-U01", ScopeNodeCard},
		{"R00-M0-N0-C:J02-U01", "R00-M0-N1-C:J02-U01", ScopeMidplane},
		{"R00-M0-N0-C:J02-U01", "R00-M1-N0-C:J02-U01", ScopeRack},
		{"R00-M0-N0-C:J02-U01", "R01-M0-N0-C:J02-U01", ScopeSystem},
		{"tg-c001", "tg-c001", ScopeNode},
		{"tg-c001", "tg-c002", ScopeSystem},
	}
	for _, c := range cases {
		if got := CommonScope(MustParse(c.a), MustParse(c.b)); got != c.want {
			t.Errorf("CommonScope(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonScopeSymmetric(t *testing.T) {
	m := BlueGeneL()
	rng := rand.New(rand.NewSource(7))
	f := func(i, j uint16) bool {
		a := m.NodeByIndex(int(i) % m.NumNodes())
		b := m.NodeByIndex(int(j) % m.NumNodes())
		return CommonScope(a, b) == CommonScope(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestTruncate(t *testing.T) {
	node := MustParse("R05-M1-N7-C:J10-U00")
	if got := node.Truncate(ScopeNodeCard).String(); got != "R05-M1-N7" {
		t.Errorf("Truncate(nodecard) = %q", got)
	}
	if got := node.Truncate(ScopeMidplane).String(); got != "R05-M1" {
		t.Errorf("Truncate(midplane) = %q", got)
	}
	if got := node.Truncate(ScopeRack).String(); got != "R05" {
		t.Errorf("Truncate(rack) = %q", got)
	}
	if !node.Truncate(ScopeSystem).IsSystem() {
		t.Error("Truncate(system) should be System")
	}
	flat := FlatNode("tg-c001")
	if !flat.Truncate(ScopeRack).IsSystem() {
		t.Error("flat node truncated above node should be System")
	}
	if flat.Truncate(ScopeNode) != flat {
		t.Error("flat node truncated to node should be itself")
	}
}

func TestTruncateContainsProperty(t *testing.T) {
	m := BlueGeneL()
	rng := rand.New(rand.NewSource(11))
	f := func(i uint16, s uint8) bool {
		node := m.NodeByIndex(int(i) % m.NumNodes())
		scope := Scope(int(s) % int(ScopeSystem+1))
		return node.Truncate(scope).Contains(node)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSpanScope(t *testing.T) {
	if got := SpanScope(nil); got != ScopeNode {
		t.Errorf("SpanScope(nil) = %v", got)
	}
	locs := []Location{
		MustParse("R00-M0-N0-C:J02-U01"),
		MustParse("R00-M0-N0-C:J05-U01"),
	}
	if got := SpanScope(locs); got != ScopeNodeCard {
		t.Errorf("SpanScope same card = %v, want nodecard", got)
	}
	locs = append(locs, MustParse("R00-M1-N0-C:J02-U01"))
	if got := SpanScope(locs); got != ScopeRack {
		t.Errorf("SpanScope cross midplane = %v, want rack", got)
	}
}

func TestParseScopeRoundTrips(t *testing.T) {
	for s := ScopeNode; s <= ScopeSystem; s++ {
		got, err := ParseScope(s.String())
		if err != nil {
			t.Fatalf("ParseScope(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseScope(%q) = %v, want %v", s.String(), got, s)
		}
	}
	for _, bad := range []string{"", "Rack", "cluster", "invalid"} {
		if _, err := ParseScope(bad); err == nil {
			t.Fatalf("ParseScope(%q) accepted", bad)
		}
	}
}
