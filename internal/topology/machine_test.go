package topology

import (
	"math/rand"
	"testing"
)

func TestBlueGeneLShape(t *testing.T) {
	m := BlueGeneL()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.NumNodes(); got != 64*2*16*32 {
		t.Errorf("NumNodes = %d, want %d", got, 64*2*16*32)
	}
	if got := m.NumNodeCards(); got != 64*2*16 {
		t.Errorf("NumNodeCards = %d, want %d", got, 64*2*16)
	}
	if got := m.NumMidplanes(); got != 128 {
		t.Errorf("NumMidplanes = %d, want 128", got)
	}
}

func TestMercuryShape(t *testing.T) {
	m := Mercury()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsFlat() {
		t.Error("Mercury should be flat")
	}
	if got := m.NumNodes(); got != 891 {
		t.Errorf("NumNodes = %d, want 891", got)
	}
}

func TestNodeByIndexBijective(t *testing.T) {
	m := BlueGeneL()
	seen := make(map[Location]int)
	// Full enumeration is 64Ki nodes; check a stride plus the ends.
	for i := 0; i < m.NumNodes(); i += 97 {
		loc := m.NodeByIndex(i)
		if loc.Level() != ScopeNode {
			t.Fatalf("NodeByIndex(%d) = %v, not a node", i, loc)
		}
		if prev, dup := seen[loc]; dup {
			t.Fatalf("NodeByIndex collision: %d and %d -> %v", prev, i, loc)
		}
		seen[loc] = i
	}
	last := m.NodeByIndex(m.NumNodes() - 1)
	if last.Rack != 63 {
		t.Errorf("last node rack = %d, want 63", last.Rack)
	}
}

func TestNodeByIndexPanics(t *testing.T) {
	m := Mercury()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	m.NodeByIndex(m.NumNodes())
}

func TestNodesWithin(t *testing.T) {
	m := BlueGeneL()
	card := MustParse("R03-M1-N4")
	nodes := m.NodesWithin(card, 1000)
	if len(nodes) != m.NodesPerCard {
		t.Fatalf("NodesWithin(card) = %d nodes, want %d", len(nodes), m.NodesPerCard)
	}
	for _, n := range nodes {
		if !card.Contains(n) {
			t.Errorf("node %v not inside %v", n, card)
		}
	}
	mp := MustParse("R03-M1")
	if got := len(m.NodesWithin(mp, 10)); got != 10 {
		t.Errorf("NodesWithin(mp, 10) = %d nodes, want 10", got)
	}
	if got := m.NodesWithin(mp, 0); got != nil {
		t.Errorf("NodesWithin(mp, 0) = %v, want nil", got)
	}
	node := MustParse("R00-M0-N0-C:J00-U00")
	if got := m.NodesWithin(node, 5); len(got) != 1 || got[0] != node {
		t.Errorf("NodesWithin(node) = %v", got)
	}
}

func TestRandomNodeDeterministic(t *testing.T) {
	m := BlueGeneL()
	a := m.RandomNode(rand.New(rand.NewSource(42)))
	b := m.RandomNode(rand.New(rand.NewSource(42)))
	if a != b {
		t.Errorf("same seed produced %v and %v", a, b)
	}
	if a.Level() != ScopeNode {
		t.Errorf("RandomNode level = %v", a.Level())
	}
}

func TestRandomNodeCard(t *testing.T) {
	m := BlueGeneL()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		c := m.RandomNodeCard(rng)
		if c.Level() != ScopeNodeCard {
			t.Fatalf("RandomNodeCard level = %v (%v)", c.Level(), c)
		}
		if c.Rack >= m.Racks || c.Midplane >= m.MidplanesPerRack || c.NodeCard >= m.NodeCardsPerMP {
			t.Fatalf("RandomNodeCard out of shape: %v", c)
		}
	}
	flat := Mercury()
	if got := flat.RandomNodeCard(rng); got.Level() != ScopeNode {
		t.Errorf("flat RandomNodeCard should yield a node, got %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := Machine{Name: "bad", Racks: 4} // zero midplanes
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error for zero midplanes")
	}
	badFlat := Machine{Name: "badflat"}
	if err := badFlat.Validate(); err == nil {
		t.Error("expected validation error for empty flat cluster")
	}
}
