package topology

import (
	"fmt"
	"math/rand"
)

// Machine describes the physical shape of a system: how many racks,
// midplanes per rack, node cards per midplane and compute nodes per node
// card it has. A Machine with Racks == 0 and FlatNodes > 0 is a flat
// cluster addressed by hostname.
type Machine struct {
	Name string

	// Hierarchical shape (Blue Gene style).
	Racks            int
	MidplanesPerRack int
	NodeCardsPerMP   int
	NodesPerCard     int

	// Flat shape (Mercury style).
	FlatNodes  int
	FlatPrefix string // hostname prefix, e.g. "tg-c"
}

// BlueGeneL returns the machine shape the paper evaluates on: 64 racks,
// 2 midplanes per rack (the paper's "32 midplanes" groups racks in rows;
// we keep the physical 2-per-rack layout), 16 node cards per midplane and
// 32 compute nodes per node card.
func BlueGeneL() Machine {
	return Machine{
		Name:             "BlueGene/L",
		Racks:            64,
		MidplanesPerRack: 2,
		NodeCardsPerMP:   16,
		NodesPerCard:     32,
	}
}

// Mercury returns the NCSA Mercury cluster shape: 891 flat compute nodes
// (256 original + 635 added during the logged period).
func Mercury() Machine {
	return Machine{Name: "Mercury", FlatNodes: 891, FlatPrefix: "tg-c"}
}

// IsFlat reports whether the machine uses flat hostname addressing.
func (m Machine) IsFlat() bool { return m.Racks == 0 }

// NumNodes returns the total number of compute nodes.
func (m Machine) NumNodes() int {
	if m.IsFlat() {
		return m.FlatNodes
	}
	return m.Racks * m.MidplanesPerRack * m.NodeCardsPerMP * m.NodesPerCard
}

// NumNodeCards returns the total number of node cards (0 on flat machines).
func (m Machine) NumNodeCards() int {
	return m.Racks * m.MidplanesPerRack * m.NodeCardsPerMP
}

// NumMidplanes returns the total number of midplanes (0 on flat machines).
func (m Machine) NumMidplanes() int { return m.Racks * m.MidplanesPerRack }

// NodeByIndex returns the i-th node location in canonical enumeration
// order. It panics when i is out of range.
func (m Machine) NodeByIndex(i int) Location {
	if i < 0 || i >= m.NumNodes() {
		panic(fmt.Sprintf("topology: node index %d out of range [0,%d)", i, m.NumNodes()))
	}
	if m.IsFlat() {
		return FlatNode(fmt.Sprintf("%s%03d", m.FlatPrefix, i))
	}
	node := i % m.NodesPerCard
	i /= m.NodesPerCard
	card := i % m.NodeCardsPerMP
	i /= m.NodeCardsPerMP
	mp := i % m.MidplanesPerRack
	rack := i / m.MidplanesPerRack
	return Node(rack, mp, card, node%32, node/32)
}

// RandomNode returns a uniformly random node location.
func (m Machine) RandomNode(rng *rand.Rand) Location {
	return m.NodeByIndex(rng.Intn(m.NumNodes()))
}

// RandomNodeCard returns a uniformly random node-card location. On flat
// machines it falls back to a random node.
func (m Machine) RandomNodeCard(rng *rand.Rand) Location {
	if m.IsFlat() {
		return m.RandomNode(rng)
	}
	i := rng.Intn(m.NumNodeCards())
	card := i % m.NodeCardsPerMP
	i /= m.NodeCardsPerMP
	mp := i % m.MidplanesPerRack
	rack := i / m.MidplanesPerRack
	return Location{Rack: rack, Midplane: mp, NodeCard: card, Slot: -1, Unit: -1}
}

// NodesWithin returns up to max node locations contained in scope loc,
// chosen deterministically (enumeration order starting at a hash of loc).
// On flat machines a non-node loc yields nodes drawn from the whole
// cluster.
func (m Machine) NodesWithin(loc Location, max int) []Location {
	if max <= 0 {
		return nil
	}
	if loc.Level() == ScopeNode {
		return []Location{loc}
	}
	out := make([]Location, 0, max)
	if m.IsFlat() {
		for i := 0; i < m.FlatNodes && len(out) < max; i++ {
			out = append(out, m.NodeByIndex(i))
		}
		return out
	}
	rackLo, rackHi := 0, m.Racks
	if loc.Rack >= 0 {
		rackLo, rackHi = loc.Rack, loc.Rack+1
	}
	mpLo, mpHi := 0, m.MidplanesPerRack
	if loc.Midplane >= 0 {
		mpLo, mpHi = loc.Midplane, loc.Midplane+1
	}
	cardLo, cardHi := 0, m.NodeCardsPerMP
	if loc.NodeCard >= 0 {
		cardLo, cardHi = loc.NodeCard, loc.NodeCard+1
	}
	for r := rackLo; r < rackHi; r++ {
		for p := mpLo; p < mpHi; p++ {
			for c := cardLo; c < cardHi; c++ {
				for n := 0; n < m.NodesPerCard; n++ {
					if len(out) == max {
						return out
					}
					out = append(out, Node(r, p, c, n%32, n/32))
				}
			}
		}
	}
	return out
}

// RandomNodeWithin returns a uniformly random node contained in loc. On
// flat machines any non-node loc draws from the whole cluster.
func (m Machine) RandomNodeWithin(rng *rand.Rand, loc Location) Location {
	if loc.Level() == ScopeNode {
		return loc
	}
	if m.IsFlat() || loc.IsSystem() {
		return m.RandomNode(rng)
	}
	rack := loc.Rack
	if rack < 0 {
		rack = rng.Intn(m.Racks)
	}
	mp := loc.Midplane
	if mp < 0 {
		mp = rng.Intn(m.MidplanesPerRack)
	}
	card := loc.NodeCard
	if card < 0 {
		card = rng.Intn(m.NodeCardsPerMP)
	}
	n := rng.Intn(m.NodesPerCard)
	return Node(rack, mp, card, n%32, n/32)
}

// Validate reports an error when the machine shape is inconsistent.
func (m Machine) Validate() error {
	if m.IsFlat() {
		if m.FlatNodes <= 0 {
			return fmt.Errorf("topology: flat machine %q has no nodes", m.Name)
		}
		return nil
	}
	if m.Racks <= 0 || m.MidplanesPerRack <= 0 || m.NodeCardsPerMP <= 0 || m.NodesPerCard <= 0 {
		return fmt.Errorf("topology: hierarchical machine %q has a non-positive dimension", m.Name)
	}
	return nil
}
