// Package topology models the physical component hierarchy of an HPC
// machine and the location codes that event logs use to name components.
//
// Two addressing schemes are supported, matching the two systems studied in
// the paper:
//
//   - Blue Gene-style hierarchical codes such as "R00-M0-N0-C:J02-U01"
//     (rack, midplane, node card, card kind, slot, unit). Prefixes of the
//     full code name coarser components: "R00-M0-N0" is a node card,
//     "R00-M0" a midplane, "R00" a rack.
//   - Flat cluster hostnames such as "tg-c042" (Mercury-style), where the
//     machine is a set of nodes grouped into switches/racks only implicitly.
//
// The package also defines Scope, the granularity lattice used by the
// location-correlation analysis (node < node card < midplane < rack <
// system).
package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// CardKind distinguishes the card type of a fully qualified Blue Gene-style
// location.
type CardKind byte

// Card kinds appearing in location codes.
const (
	CardNone    CardKind = 0   // location does not name a card
	CardCompute CardKind = 'C' // compute card
	CardIO      CardKind = 'I' // I/O card
	CardLink    CardKind = 'L' // link card
	CardService CardKind = 'S' // service card
)

// String returns the single-letter code used inside location strings.
func (k CardKind) String() string {
	if k == CardNone {
		return ""
	}
	return string(byte(k))
}

// Location identifies a hardware component. The zero value is the "system"
// location: it names no specific component and contains every other
// location.
//
// For hierarchical machines, fields are filled top-down and a value of -1
// means "not specified at this granularity". For flat machines only Flat is
// set.
type Location struct {
	// Flat holds the hostname for flat-cluster addressing. When non-empty
	// all hierarchical fields are ignored.
	Flat string

	Rack     int // rack index, -1 if unspecified
	Midplane int // midplane within rack, -1 if unspecified
	NodeCard int // node card within midplane, -1 if unspecified
	Card     CardKind
	Slot     int // J-slot on the card, -1 if unspecified
	Unit     int // U-unit within the slot, -1 if unspecified
}

// System is the location naming the whole machine.
var System = Location{Rack: -1, Midplane: -1, NodeCard: -1, Slot: -1, Unit: -1}

// Node constructs a fully qualified compute-node location.
func Node(rack, midplane, nodeCard, slot, unit int) Location {
	return Location{Rack: rack, Midplane: midplane, NodeCard: nodeCard,
		Card: CardCompute, Slot: slot, Unit: unit}
}

// FlatNode constructs a flat-cluster node location.
func FlatNode(host string) Location {
	return Location{Flat: host, Rack: -1, Midplane: -1, NodeCard: -1, Slot: -1, Unit: -1}
}

// IsFlat reports whether l uses flat-cluster addressing.
func (l Location) IsFlat() bool { return l.Flat != "" }

// IsSystem reports whether l names the whole machine.
func (l Location) IsSystem() bool {
	return l.Flat == "" && l.Rack < 0
}

// Level returns the granularity at which l names a component: a flat node
// is ScopeNode; a hierarchical code is as deep as its most specific field.
func (l Location) Level() Scope {
	switch {
	case l.Flat != "":
		return ScopeNode
	case l.Rack < 0:
		return ScopeSystem
	case l.Midplane < 0:
		return ScopeRack
	case l.NodeCard < 0:
		return ScopeMidplane
	case l.Card == CardNone || l.Slot < 0:
		return ScopeNodeCard
	default:
		return ScopeNode
	}
}

// String renders the canonical location code.
func (l Location) String() string {
	if l.Flat != "" {
		return l.Flat
	}
	if l.Rack < 0 {
		return "SYSTEM"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "R%02d", l.Rack)
	if l.Midplane < 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "-M%d", l.Midplane)
	if l.NodeCard < 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "-N%d", l.NodeCard)
	if l.Card == CardNone || l.Slot < 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "-%s:J%02d-U%02d", l.Card, l.Slot, l.Unit)
	return b.String()
}

// Parse decodes a location code produced by String (or found in logs).
// "SYSTEM", "" and "NULL" decode to the System location. Codes that do not
// look hierarchical are treated as flat hostnames.
func Parse(s string) (Location, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "", "SYSTEM", "NULL", "-":
		return System, nil
	}
	if len(s) < 3 || s[0] != 'R' || !isDigit(s[1]) {
		// Flat hostname.
		if strings.ContainsAny(s, " \t") {
			return Location{}, fmt.Errorf("topology: invalid location %q", s)
		}
		return FlatNode(s), nil
	}
	loc := System
	rest := s
	// Rack: Rnn
	rack, err := strconv.Atoi(rest[1:3])
	if err != nil {
		return Location{}, fmt.Errorf("topology: bad rack in %q: %v", s, err)
	}
	loc.Rack = rack
	rest = rest[3:]
	if rest == "" {
		return loc, nil
	}
	// Midplane: -Mn
	if !strings.HasPrefix(rest, "-M") || len(rest) < 3 {
		return Location{}, fmt.Errorf("topology: bad midplane in %q", s)
	}
	mp, err := strconv.Atoi(rest[2:3])
	if err != nil {
		return Location{}, fmt.Errorf("topology: bad midplane in %q: %v", s, err)
	}
	loc.Midplane = mp
	rest = rest[3:]
	if rest == "" {
		return loc, nil
	}
	// Node card: -Nn or -Nnn
	if !strings.HasPrefix(rest, "-N") {
		return Location{}, fmt.Errorf("topology: bad node card in %q", s)
	}
	rest = rest[2:]
	ncDigits := 0
	for ncDigits < len(rest) && isDigit(rest[ncDigits]) {
		ncDigits++
	}
	if ncDigits == 0 {
		return Location{}, fmt.Errorf("topology: bad node card in %q", s)
	}
	nc, _ := strconv.Atoi(rest[:ncDigits])
	loc.NodeCard = nc
	rest = rest[ncDigits:]
	if rest == "" {
		return loc, nil
	}
	// Card: -K:Jss-Uuu
	if len(rest) < len("-C:J00-U00") || rest[0] != '-' || rest[2] != ':' {
		return Location{}, fmt.Errorf("topology: bad card suffix in %q", s)
	}
	switch rest[1] {
	case 'C', 'I', 'L', 'S':
		loc.Card = CardKind(rest[1])
	default:
		return Location{}, fmt.Errorf("topology: unknown card kind %q in %q", rest[1], s)
	}
	rest = rest[3:]
	if rest[0] != 'J' {
		return Location{}, fmt.Errorf("topology: bad slot in %q", s)
	}
	slot, err := strconv.Atoi(rest[1:3])
	if err != nil {
		return Location{}, fmt.Errorf("topology: bad slot in %q: %v", s, err)
	}
	loc.Slot = slot
	rest = rest[3:]
	if !strings.HasPrefix(rest, "-U") || len(rest) != 4 {
		return Location{}, fmt.Errorf("topology: bad unit in %q", s)
	}
	unit, err := strconv.Atoi(rest[2:4])
	if err != nil {
		return Location{}, fmt.Errorf("topology: bad unit in %q: %v", s, err)
	}
	loc.Unit = unit
	return loc, nil
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// MustParse is Parse that panics on error; intended for literals in tests
// and examples.
func MustParse(s string) Location {
	loc, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return loc
}

// Truncate returns l restricted to the given scope: Truncate(ScopeMidplane)
// of a node location is its midplane. Truncating a flat node above
// ScopeNode yields System (flat clusters expose no hierarchy).
func (l Location) Truncate(s Scope) Location {
	if l.Flat != "" {
		if s == ScopeNode {
			return l
		}
		return System
	}
	out := l
	switch s {
	case ScopeSystem:
		return System
	case ScopeRack:
		out.Midplane, out.NodeCard, out.Card, out.Slot, out.Unit = -1, -1, CardNone, -1, -1
	case ScopeMidplane:
		out.NodeCard, out.Card, out.Slot, out.Unit = -1, CardNone, -1, -1
	case ScopeNodeCard:
		out.Card, out.Slot, out.Unit = CardNone, -1, -1
	}
	return out
}

// Contains reports whether every component named by other lies within l.
// System contains everything; a node card contains its nodes; a node
// contains only itself.
func (l Location) Contains(other Location) bool {
	if l.IsSystem() {
		return true
	}
	if l.Flat != "" || other.Flat != "" {
		return l.Flat == other.Flat
	}
	if other.Rack != l.Rack {
		return false
	}
	if l.Midplane < 0 {
		return true
	}
	if other.Midplane != l.Midplane {
		return false
	}
	if l.NodeCard < 0 {
		return true
	}
	if other.NodeCard != l.NodeCard {
		return false
	}
	if l.Card == CardNone || l.Slot < 0 {
		return true
	}
	return other.Card == l.Card && other.Slot == l.Slot && other.Unit == l.Unit
}

// SameComponent reports whether a and b name exactly the same component at
// the same granularity.
func SameComponent(a, b Location) bool { return a == b }

// CommonScope returns the smallest scope at which a and b share an
// enclosing component. Two distinct flat nodes share only ScopeSystem.
func CommonScope(a, b Location) Scope {
	if a == b {
		return a.Level()
	}
	if a.Flat != "" || b.Flat != "" {
		if a.Flat == b.Flat {
			return ScopeNode
		}
		return ScopeSystem
	}
	if a.Rack < 0 || b.Rack < 0 || a.Rack != b.Rack {
		return ScopeSystem
	}
	if a.Midplane < 0 || b.Midplane < 0 || a.Midplane != b.Midplane {
		return ScopeRack
	}
	if a.NodeCard < 0 || b.NodeCard < 0 || a.NodeCard != b.NodeCard {
		return ScopeMidplane
	}
	if a.Card == CardNone || b.Card == CardNone ||
		a.Card != b.Card || a.Slot != b.Slot || a.Unit != b.Unit {
		return ScopeNodeCard
	}
	return ScopeNode
}
