// Package outlier implements ELSA's on-line data-cleaning filter: every
// new sample of an event signal is compared against the median of a causal
// moving window holding both the raw past values and the corrected
// replacements, and samples that deviate beyond a per-signal threshold are
// declared outliers and replaced by the median (the paper's Section III.B.1
// and Figure 3). Outliers are what the correlation and prediction stages
// consume; the replacement keeps severe faults from poisoning the window.
package outlier

import (
	"fmt"
	"sort"

	"github.com/elsa-hpc/elsa/internal/sig"
)

// DefaultWindow is the number of past samples the filter keeps (6 hours at
// the 10-second sampling step; the window length is configurable up to the
// paper's two months, trading memory and latency for stability).
const DefaultWindow = 2160

// DefaultK is the threshold multiplier applied to a signal's robust spread.
const DefaultK = 3.0

// DefaultFloor is the minimum threshold. It guarantees that on silent
// signals (spread 0) any occurrence at all is flagged — exactly the paper's
// observation that for silent event types the message itself is the
// anomaly.
const DefaultFloor = 0.5

// Threshold derives the outlier threshold for a characterised signal:
// k * spread, floored. The offline phase calls this once per signal.
func Threshold(p sig.Profile, k, floor float64) float64 {
	if k <= 0 {
		k = DefaultK
	}
	if floor <= 0 {
		floor = DefaultFloor
	}
	th := k * p.Spread
	if th < floor {
		th = floor
	}
	return th
}

// Observation is the per-sample filter verdict.
type Observation struct {
	Outlier   bool
	Value     float64 // the raw sample
	Median    float64 // window median the sample was compared against
	Corrected float64 // Value, or the median when an outlier
}

// Detector filters one signal. It is not safe for concurrent use; the
// online engine owns one detector per event type.
type Detector struct {
	window    int
	threshold float64

	// ReplaceOutliers controls whether flagged samples enter the window
	// as their median replacement (the paper's scheme, default) or raw.
	// Disabling it is the ablation for the replacement strategy: long
	// fault bursts then drag the window median toward the fault level.
	ReplaceOutliers bool

	raw ring
	cor ring
	med medianWindow
}

// NewDetector returns a detector with the given window length (samples)
// and threshold. Non-positive arguments select the defaults.
func NewDetector(window int, threshold float64) *Detector {
	if window <= 0 {
		window = DefaultWindow
	}
	if threshold <= 0 {
		threshold = DefaultFloor
	}
	return &Detector{
		window:          window,
		threshold:       threshold,
		ReplaceOutliers: true,
		raw:             newRing(window),
		cor:             newRing(window),
		med:             newMedianWindow(),
	}
}

// Threshold returns the configured threshold.
func (d *Detector) Threshold() float64 { return d.threshold }

// Window returns the configured window length.
func (d *Detector) Window() int { return d.window }

// Observe feeds one sample through the filter and returns the verdict.
//
// The comparison window is the paper's Vk: the last N corrected values,
// the last N raw values and the current sample itself.
func (d *Detector) Observe(y float64) Observation {
	if old, evicted := d.raw.push(y); evicted {
		d.med.remove(old)
	}
	d.med.insert(y)
	med := d.med.median()
	out := Observation{Value: y, Median: med, Corrected: y}
	if diff := y - med; diff > d.threshold || diff < -d.threshold {
		out.Outlier = true
		if d.ReplaceOutliers {
			out.Corrected = med
		}
	}
	if old, evicted := d.cor.push(out.Corrected); evicted {
		d.med.remove(old)
	}
	d.med.insert(out.Corrected)
	return out
}

// DetectorState is the serialisable window state of a Detector: the raw
// and corrected sample windows, oldest first. It is what a monitor
// snapshot persists per dense signal so a restarted process resumes
// filtering exactly where the crashed one stopped.
type DetectorState struct {
	Raw []float64 `json:"raw,omitempty"`
	Cor []float64 `json:"cor,omitempty"`
}

// State snapshots the detector's windows.
func (d *Detector) State() DetectorState {
	return DetectorState{Raw: d.raw.values(), Cor: d.cor.values()}
}

// Restore replaces the detector's windows with a snapshot taken by
// State. Configuration (window length, threshold, replacement mode) is
// not part of the state: it comes from the model the detector was built
// from, and a snapshot holding more samples than the window fits is
// rejected.
func (d *Detector) Restore(st DetectorState) error {
	if len(st.Raw) > d.window || len(st.Cor) > d.window {
		return fmt.Errorf("outlier: snapshot windows (%d raw, %d cor) exceed detector window %d",
			len(st.Raw), len(st.Cor), d.window)
	}
	d.raw = newRing(d.window)
	d.cor = newRing(d.window)
	d.med = newMedianWindow()
	for _, v := range st.Raw {
		d.raw.push(v)
		d.med.insert(v)
	}
	for _, v := range st.Cor {
		d.cor.push(v)
		d.med.insert(v)
	}
	return nil
}

// Filter runs a fresh detector over samples and returns the outlier sample
// indices plus the corrected series. It is the batch entry point used by
// the offline phase and the experiments.
func Filter(samples []float64, window int, threshold float64) (outliers []int, corrected []float64) {
	d := NewDetector(window, threshold)
	corrected = make([]float64, len(samples))
	for i, y := range samples {
		obs := d.Observe(y)
		if obs.Outlier {
			outliers = append(outliers, i)
		}
		corrected[i] = obs.Corrected
	}
	return outliers, corrected
}

// ring is a fixed-capacity FIFO of float64.
type ring struct {
	buf  []float64
	head int // next write position
	n    int // occupancy
}

func newRing(capacity int) ring { return ring{buf: make([]float64, capacity)} }

// values returns the ring contents oldest first.
func (r *ring) values() []float64 {
	if r.n == 0 {
		return nil
	}
	out := make([]float64, 0, r.n)
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// push appends v, returning the evicted oldest value when the ring was
// full.
func (r *ring) push(v float64) (evicted float64, wasFull bool) {
	if r.n == len(r.buf) {
		evicted = r.buf[r.head]
		wasFull = true
	} else {
		r.n++
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	return evicted, wasFull
}

// medianWindow maintains the running median of a finite-float multiset
// under insert/remove in O(log n) amortized per operation: a max-heap of
// the lower half and a min-heap of the upper half, with removals recorded
// lazily in pending-deletion heaps of matching orientation and resolved
// when the deleted value surfaces at a top. It replaced a sorted slice
// whose O(n) memmoves dominated training at the 2160-sample default
// window; the medians it reports are bit-identical (the frozen sortedSet
// reference lives in the package tests).
//
// Callers must only remove values currently in the multiset; this holds
// by construction in Detector, which removes exactly what its rings
// evict.
type medianWindow struct {
	lo, hi       halfHeap // all entries, live and pending-deleted
	loDel, hiDel halfHeap // pending deletions, same orientation
	loLive       int      // live entries in lo (lower half)
	hiLive       int      // live entries in hi (upper half)
}

func newMedianWindow() medianWindow {
	return medianWindow{lo: halfHeap{max: true}, loDel: halfHeap{max: true}}
}

// pruneLo pops matching (heap, pending) tops until lo's top is live.
// Because the pending multiset is a sub-multiset of the heap, the top of
// lo is pending iff it equals the top of loDel.
func (m *medianWindow) pruneLo() {
	for len(m.loDel.xs) > 0 && len(m.lo.xs) > 0 && m.lo.xs[0] == m.loDel.xs[0] {
		m.lo.pop()
		m.loDel.pop()
	}
}

func (m *medianWindow) pruneHi() {
	for len(m.hiDel.xs) > 0 && len(m.hi.xs) > 0 && m.hi.xs[0] == m.hiDel.xs[0] {
		m.hi.pop()
		m.hiDel.pop()
	}
}

func (m *medianWindow) insert(v float64) {
	m.pruneLo()
	if m.loLive == 0 || v <= m.lo.xs[0] {
		m.lo.push(v)
		m.loLive++
	} else {
		m.hi.push(v)
		m.hiLive++
	}
	m.rebalance()
}

// remove marks one live copy of v deleted. After pruneLo the top of lo is
// live and is the maximum over all lo entries, so v <= top proves a live
// copy of v sits in lo (every hi entry is >= every lo entry), and v > top
// proves all copies of v live in hi.
func (m *medianWindow) remove(v float64) {
	m.pruneLo()
	if m.loLive > 0 && v <= m.lo.xs[0] {
		m.loDel.push(v)
		m.loLive--
		m.compactLo()
	} else {
		m.hiDel.push(v)
		m.hiLive--
		m.compactHi()
	}
	m.rebalance()
}

// rebalance restores loLive == hiLive or loLive == hiLive+1 by moving
// pruned (therefore live) tops across; moving an extreme preserves the
// every-lo <= every-hi ordering of the underlying heaps.
func (m *medianWindow) rebalance() {
	for m.loLive > m.hiLive+1 {
		m.pruneLo()
		m.hi.push(m.lo.pop())
		m.loLive--
		m.hiLive++
	}
	for m.hiLive > m.loLive {
		m.pruneHi()
		m.lo.push(m.hi.pop())
		m.hiLive--
		m.loLive++
	}
}

// median returns the median of the live multiset, or 0 when empty —
// exactly the sorted-slice reference semantics.
func (m *medianWindow) median() float64 {
	total := m.loLive + m.hiLive
	if total == 0 {
		return 0
	}
	m.pruneLo()
	if total%2 == 1 {
		return m.lo.xs[0]
	}
	m.pruneHi()
	return (m.lo.xs[0] + m.hi.xs[0]) / 2
}

func (m *medianWindow) len() int { return m.loLive + m.hiLive }

// compactLo rebuilds lo without its pending deletions once they dominate
// the heap, bounding memory: pending values below the top otherwise
// linger until they surface, which a monotonically drifting signal can
// postpone indefinitely.
func (m *medianWindow) compactLo() {
	if len(m.loDel.xs) > m.loLive+64 {
		compactHeap(&m.lo, &m.loDel)
	}
}

func (m *medianWindow) compactHi() {
	if len(m.hiDel.xs) > m.hiLive+64 {
		compactHeap(&m.hi, &m.hiDel)
	}
}

// compactHeap multiset-subtracts del from h in place and re-heapifies.
func compactHeap(h, del *halfHeap) {
	sort.Float64s(h.xs)
	sort.Float64s(del.xs)
	out := h.xs[:0]
	j := 0
	for _, v := range h.xs {
		if j < len(del.xs) && v == del.xs[j] {
			j++
			continue
		}
		out = append(out, v)
	}
	h.xs = out
	del.xs = del.xs[:0]
	h.heapify()
}

// halfHeap is a binary heap over float64: a max-heap when max is set
// (lower half), a min-heap otherwise (upper half).
type halfHeap struct {
	xs  []float64
	max bool
}

func (h *halfHeap) before(a, b float64) bool {
	if h.max {
		return a > b
	}
	return a < b
}

func (h *halfHeap) push(v float64) {
	h.xs = append(h.xs, v)
	i := len(h.xs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.xs[i], h.xs[parent]) {
			break
		}
		h.xs[i], h.xs[parent] = h.xs[parent], h.xs[i]
		i = parent
	}
}

func (h *halfHeap) pop() float64 {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	h.siftDown(0)
	return top
}

func (h *halfHeap) siftDown(i int) {
	n := len(h.xs)
	for {
		best := i
		if l := 2*i + 1; l < n && h.before(h.xs[l], h.xs[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && h.before(h.xs[r], h.xs[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.xs[i], h.xs[best] = h.xs[best], h.xs[i]
		i = best
	}
}

func (h *halfHeap) heapify() {
	for i := len(h.xs)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}
