// Package outlier implements ELSA's on-line data-cleaning filter: every
// new sample of an event signal is compared against the median of a causal
// moving window holding both the raw past values and the corrected
// replacements, and samples that deviate beyond a per-signal threshold are
// declared outliers and replaced by the median (the paper's Section III.B.1
// and Figure 3). Outliers are what the correlation and prediction stages
// consume; the replacement keeps severe faults from poisoning the window.
package outlier

import (
	"fmt"
	"sort"

	"github.com/elsa-hpc/elsa/internal/sig"
)

// DefaultWindow is the number of past samples the filter keeps (6 hours at
// the 10-second sampling step; the window length is configurable up to the
// paper's two months, trading memory and latency for stability).
const DefaultWindow = 2160

// DefaultK is the threshold multiplier applied to a signal's robust spread.
const DefaultK = 3.0

// DefaultFloor is the minimum threshold. It guarantees that on silent
// signals (spread 0) any occurrence at all is flagged — exactly the paper's
// observation that for silent event types the message itself is the
// anomaly.
const DefaultFloor = 0.5

// Threshold derives the outlier threshold for a characterised signal:
// k * spread, floored. The offline phase calls this once per signal.
func Threshold(p sig.Profile, k, floor float64) float64 {
	if k <= 0 {
		k = DefaultK
	}
	if floor <= 0 {
		floor = DefaultFloor
	}
	th := k * p.Spread
	if th < floor {
		th = floor
	}
	return th
}

// Observation is the per-sample filter verdict.
type Observation struct {
	Outlier   bool
	Value     float64 // the raw sample
	Median    float64 // window median the sample was compared against
	Corrected float64 // Value, or the median when an outlier
}

// Detector filters one signal. It is not safe for concurrent use; the
// online engine owns one detector per event type.
type Detector struct {
	window    int
	threshold float64

	// ReplaceOutliers controls whether flagged samples enter the window
	// as their median replacement (the paper's scheme, default) or raw.
	// Disabling it is the ablation for the replacement strategy: long
	// fault bursts then drag the window median toward the fault level.
	ReplaceOutliers bool

	raw    ring
	cor    ring
	sorted sortedSet
}

// NewDetector returns a detector with the given window length (samples)
// and threshold. Non-positive arguments select the defaults.
func NewDetector(window int, threshold float64) *Detector {
	if window <= 0 {
		window = DefaultWindow
	}
	if threshold <= 0 {
		threshold = DefaultFloor
	}
	return &Detector{
		window:          window,
		threshold:       threshold,
		ReplaceOutliers: true,
		raw:             newRing(window),
		cor:             newRing(window),
	}
}

// Threshold returns the configured threshold.
func (d *Detector) Threshold() float64 { return d.threshold }

// Window returns the configured window length.
func (d *Detector) Window() int { return d.window }

// Observe feeds one sample through the filter and returns the verdict.
//
// The comparison window is the paper's Vk: the last N corrected values,
// the last N raw values and the current sample itself.
func (d *Detector) Observe(y float64) Observation {
	if old, evicted := d.raw.push(y); evicted {
		d.sorted.remove(old)
	}
	d.sorted.insert(y)
	med := d.sorted.median()
	out := Observation{Value: y, Median: med, Corrected: y}
	if diff := y - med; diff > d.threshold || diff < -d.threshold {
		out.Outlier = true
		if d.ReplaceOutliers {
			out.Corrected = med
		}
	}
	if old, evicted := d.cor.push(out.Corrected); evicted {
		d.sorted.remove(old)
	}
	d.sorted.insert(out.Corrected)
	return out
}

// DetectorState is the serialisable window state of a Detector: the raw
// and corrected sample windows, oldest first. It is what a monitor
// snapshot persists per dense signal so a restarted process resumes
// filtering exactly where the crashed one stopped.
type DetectorState struct {
	Raw []float64 `json:"raw,omitempty"`
	Cor []float64 `json:"cor,omitempty"`
}

// State snapshots the detector's windows.
func (d *Detector) State() DetectorState {
	return DetectorState{Raw: d.raw.values(), Cor: d.cor.values()}
}

// Restore replaces the detector's windows with a snapshot taken by
// State. Configuration (window length, threshold, replacement mode) is
// not part of the state: it comes from the model the detector was built
// from, and a snapshot holding more samples than the window fits is
// rejected.
func (d *Detector) Restore(st DetectorState) error {
	if len(st.Raw) > d.window || len(st.Cor) > d.window {
		return fmt.Errorf("outlier: snapshot windows (%d raw, %d cor) exceed detector window %d",
			len(st.Raw), len(st.Cor), d.window)
	}
	d.raw = newRing(d.window)
	d.cor = newRing(d.window)
	d.sorted = sortedSet{}
	for _, v := range st.Raw {
		d.raw.push(v)
		d.sorted.insert(v)
	}
	for _, v := range st.Cor {
		d.cor.push(v)
		d.sorted.insert(v)
	}
	return nil
}

// Filter runs a fresh detector over samples and returns the outlier sample
// indices plus the corrected series. It is the batch entry point used by
// the offline phase and the experiments.
func Filter(samples []float64, window int, threshold float64) (outliers []int, corrected []float64) {
	d := NewDetector(window, threshold)
	corrected = make([]float64, len(samples))
	for i, y := range samples {
		obs := d.Observe(y)
		if obs.Outlier {
			outliers = append(outliers, i)
		}
		corrected[i] = obs.Corrected
	}
	return outliers, corrected
}

// ring is a fixed-capacity FIFO of float64.
type ring struct {
	buf  []float64
	head int // next write position
	n    int // occupancy
}

func newRing(capacity int) ring { return ring{buf: make([]float64, capacity)} }

// values returns the ring contents oldest first.
func (r *ring) values() []float64 {
	if r.n == 0 {
		return nil
	}
	out := make([]float64, 0, r.n)
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// push appends v, returning the evicted oldest value when the ring was
// full.
func (r *ring) push(v float64) (evicted float64, wasFull bool) {
	if r.n == len(r.buf) {
		evicted = r.buf[r.head]
		wasFull = true
	} else {
		r.n++
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	return evicted, wasFull
}

// sortedSet is a sorted multiset backed by a slice. Insert/remove are
// O(n) moves but n is the filter window, and the constant is a memmove —
// in practice far faster than tree structures at these sizes.
type sortedSet struct {
	xs []float64
}

func (s *sortedSet) insert(v float64) {
	i := sort.SearchFloat64s(s.xs, v)
	s.xs = append(s.xs, 0)
	copy(s.xs[i+1:], s.xs[i:])
	s.xs[i] = v
}

func (s *sortedSet) remove(v float64) {
	i := sort.SearchFloat64s(s.xs, v)
	if i < len(s.xs) && s.xs[i] == v {
		s.xs = append(s.xs[:i], s.xs[i+1:]...)
	}
}

func (s *sortedSet) median() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s.xs[n/2]
	}
	return (s.xs[n/2-1] + s.xs[n/2]) / 2
}

func (s *sortedSet) len() int { return len(s.xs) }
