package outlier

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/elsa-hpc/elsa/internal/sig"
)

// sortedSet is the frozen pre-change median implementation: a sorted
// multiset backed by a slice with O(n) memmove insert/remove. It was
// replaced in production by medianWindow and is kept here as the
// reference the equivalence property tests compare against.
type sortedSet struct {
	xs []float64
}

func (s *sortedSet) insert(v float64) {
	i := sort.SearchFloat64s(s.xs, v)
	s.xs = append(s.xs, 0)
	copy(s.xs[i+1:], s.xs[i:])
	s.xs[i] = v
}

func (s *sortedSet) remove(v float64) {
	i := sort.SearchFloat64s(s.xs, v)
	if i < len(s.xs) && s.xs[i] == v {
		s.xs = append(s.xs[:i], s.xs[i+1:]...)
	}
}

func (s *sortedSet) median() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s.xs[n/2]
	}
	return (s.xs[n/2-1] + s.xs[n/2]) / 2
}

func (s *sortedSet) len() int { return len(s.xs) }

func TestThresholdCalibration(t *testing.T) {
	noisy := sig.Profile{Class: sig.Noise, Spread: 2}
	if got := Threshold(noisy, 3, 0.5); got != 6 {
		t.Errorf("noisy threshold = %v, want 6", got)
	}
	silent := sig.Profile{Class: sig.Silent, Spread: 0}
	if got := Threshold(silent, 3, 0.5); got != 0.5 {
		t.Errorf("silent threshold = %v, want floor 0.5", got)
	}
	if got := Threshold(noisy, 0, 0); got != 6 {
		t.Errorf("default k threshold = %v, want 6", got)
	}
}

func TestSilentSignalAnyOccurrenceIsOutlier(t *testing.T) {
	d := NewDetector(100, DefaultFloor)
	for i := 0; i < 500; i++ {
		if obs := d.Observe(0); obs.Outlier {
			t.Fatalf("zero sample flagged at %d", i)
		}
	}
	obs := d.Observe(1)
	if !obs.Outlier {
		t.Fatal("occurrence on a silent signal not flagged")
	}
	if obs.Corrected != 0 {
		t.Errorf("Corrected = %v, want 0", obs.Corrected)
	}
}

func TestSpikesDetectedInNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := NewDetector(200, 5)
	// Warm up with noise around level 10.
	for i := 0; i < 400; i++ {
		d.Observe(10 + rng.NormFloat64())
	}
	if obs := d.Observe(10.5); obs.Outlier {
		t.Error("in-band sample flagged")
	}
	if obs := d.Observe(40); !obs.Outlier {
		t.Error("spike not flagged")
	}
}

func TestReplacementLimitsBurstInfluence(t *testing.T) {
	// A long fault burst must not drag the median up: replacements keep
	// the window anchored at the normal level.
	d := NewDetector(100, 3)
	for i := 0; i < 200; i++ {
		d.Observe(5)
	}
	flagged := 0
	for i := 0; i < 80; i++ {
		if obs := d.Observe(50); obs.Outlier {
			flagged++
		}
	}
	if flagged < 70 {
		t.Errorf("only %d/80 burst samples flagged; median drifted", flagged)
	}
}

func TestBurstLongerThanWindowStillFlaggedEarly(t *testing.T) {
	// When a burst outlasts the window the median eventually adapts (the
	// paper's replacement minimises, not eliminates, the influence of
	// sustained faults). The filter must still flag at least the first
	// half-window of burst samples before drifting.
	d := NewDetector(50, 3)
	for i := 0; i < 100; i++ {
		d.Observe(5)
	}
	flaggedPrefix := 0
	for i := 0; i < 60; i++ {
		obs := d.Observe(50)
		if i < 25 && obs.Outlier {
			flaggedPrefix++
		}
	}
	if flaggedPrefix != 25 {
		t.Errorf("flagged %d/25 early burst samples", flaggedPrefix)
	}
}

func TestObserveMedianTracksLevelShift(t *testing.T) {
	// Legitimate slow level changes must eventually pass through: after
	// the window fully turns over at the new level, samples there are
	// normal. Replacement means the corrected half converges only via
	// non-outlier samples, so approach the new level gradually.
	d := NewDetector(40, 3)
	for i := 0; i < 80; i++ {
		d.Observe(5)
	}
	// Ramp up slowly within the threshold.
	level := 5.0
	for level < 20 {
		level += 2 // below threshold 3 per step
		for i := 0; i < 50; i++ {
			d.Observe(level)
		}
	}
	if obs := d.Observe(21); obs.Outlier {
		t.Errorf("sample near new level flagged; median = %v", obs.Median)
	}
}

func TestFilterBatch(t *testing.T) {
	samples := make([]float64, 300)
	for i := range samples {
		samples[i] = 4
	}
	samples[150] = 100
	samples[200] = 90
	outliers, corrected := Filter(samples, 100, 3)
	if len(outliers) != 2 || outliers[0] != 150 || outliers[1] != 200 {
		t.Errorf("outliers = %v", outliers)
	}
	if corrected[150] != 4 || corrected[200] != 4 {
		t.Errorf("corrected spikes = %v, %v", corrected[150], corrected[200])
	}
	if corrected[10] != 4 {
		t.Errorf("normal sample changed: %v", corrected[10])
	}
}

func TestFilterEmptyAndDefaults(t *testing.T) {
	outliers, corrected := Filter(nil, 0, 0)
	if outliers != nil || len(corrected) != 0 {
		t.Error("empty input should yield empty output")
	}
	d := NewDetector(0, 0)
	if d.Window() != DefaultWindow || d.Threshold() != DefaultFloor {
		t.Error("defaults not applied")
	}
}

func TestFirstSampleNeverOutlier(t *testing.T) {
	d := NewDetector(10, 0.5)
	if obs := d.Observe(100); obs.Outlier {
		t.Error("first sample compared against itself should not be an outlier")
	}
}

func TestRing(t *testing.T) {
	r := newRing(3)
	if _, full := r.push(1); full {
		t.Error("push into empty ring reported eviction")
	}
	r.push(2)
	r.push(3)
	old, full := r.push(4)
	if !full || old != 1 {
		t.Errorf("eviction = %v, %v; want 1, true", old, full)
	}
	old, _ = r.push(5)
	if old != 2 {
		t.Errorf("second eviction = %v, want 2", old)
	}
}

func TestSortedSet(t *testing.T) {
	var s sortedSet
	for _, v := range []float64{5, 1, 3, 3, 2} {
		s.insert(v)
	}
	if s.len() != 5 {
		t.Fatalf("len = %d", s.len())
	}
	if got := s.median(); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	s.remove(3)
	if s.len() != 4 || s.median() != 2.5 {
		t.Errorf("after remove: len=%d median=%v", s.len(), s.median())
	}
	s.remove(99) // absent value is a no-op
	if s.len() != 4 {
		t.Error("removing absent value changed the set")
	}
	var empty sortedSet
	if empty.median() != 0 {
		t.Error("empty median should be 0")
	}
}

func TestDetectorWindowBounded(t *testing.T) {
	d := NewDetector(50, 1)
	for i := 0; i < 10000; i++ {
		d.Observe(float64(i % 7))
	}
	if got := d.med.len(); got > 100 {
		t.Errorf("median window grew to %d live entries, want <= 2*window", got)
	}
}

// TestMedianWindowMatchesSortedSet drives the two-heap median and the
// frozen sorted-slice reference through identical random insert/remove
// streams (removals always of present values, as the Detector guarantees)
// and requires bit-identical medians after every operation.
func TestMedianWindowMatchesSortedSet(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := newMedianWindow()
		var ref sortedSet
		var present []float64
		for op := 0; op < 3000; op++ {
			if len(present) == 0 || rng.Intn(3) != 0 {
				// Coarse quantization forces duplicate values, the
				// regime where half-assignment bugs hide.
				v := float64(rng.Intn(20)) / 4
				m.insert(v)
				ref.insert(v)
				present = append(present, v)
			} else {
				i := rng.Intn(len(present))
				v := present[i]
				present[i] = present[len(present)-1]
				present = present[:len(present)-1]
				m.remove(v)
				ref.remove(v)
			}
			if m.len() != ref.len() {
				t.Fatalf("seed %d op %d: len %d vs reference %d", seed, op, m.len(), ref.len())
			}
			if got, want := m.median(), ref.median(); got != want {
				t.Fatalf("seed %d op %d: median %v vs reference %v", seed, op, got, want)
			}
		}
	}
}

// TestMedianWindowCompactsDrift pins the memory bound: a monotonically
// drifting signal parks every eviction below the heap tops, so without
// compaction the pending-deletion heaps would grow with the stream.
func TestMedianWindowCompactsDrift(t *testing.T) {
	m := newMedianWindow()
	const window = 64
	for i := 0; i < 100000; i++ {
		m.insert(float64(i))
		if i >= window {
			m.remove(float64(i - window))
		}
	}
	if m.len() != window {
		t.Fatalf("live entries = %d, want %d", m.len(), window)
	}
	if total := len(m.lo.xs) + len(m.hi.xs) + len(m.loDel.xs) + len(m.hiDel.xs); total > 8*window+256 {
		t.Fatalf("heap storage grew to %d entries for a %d-sample window", total, window)
	}
}

// TestDetectorMatchesSortedSetReference runs a full production Detector
// against a reference detector reimplemented on the frozen sortedSet and
// requires identical observations on noisy streams with fault bursts.
func TestDetectorMatchesSortedSetReference(t *testing.T) {
	type refDetector struct {
		raw, cor ring
		sorted   sortedSet
	}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		const window, threshold = 48, 2.0
		d := NewDetector(window, threshold)
		r := &refDetector{raw: newRing(window), cor: newRing(window)}
		for i := 0; i < 2000; i++ {
			v := 8 + rng.NormFloat64()*1.5
			if rng.Intn(29) == 0 {
				v += 40
			}
			got := d.Observe(v)

			if old, evicted := r.raw.push(v); evicted {
				r.sorted.remove(old)
			}
			r.sorted.insert(v)
			med := r.sorted.median()
			want := Observation{Value: v, Median: med, Corrected: v}
			if diff := v - med; diff > threshold || diff < -threshold {
				want.Outlier = true
				want.Corrected = med
			}
			if old, evicted := r.cor.push(want.Corrected); evicted {
				r.sorted.remove(old)
			}
			r.sorted.insert(want.Corrected)

			if got != want {
				t.Fatalf("seed %d sample %d: %+v vs reference %+v", seed, i, got, want)
			}
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewDetector(DefaultWindow, 3)
	for i := 0; i < DefaultWindow*2; i++ {
		d.Observe(10 + rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(10 + rng.NormFloat64())
	}
}

// TestDetectorStateRoundTrip proves the crash-resume contract: a
// detector restored from a snapshot produces bit-identical verdicts to
// the uninterrupted original on any continuation stream.
func TestDetectorStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, warm := range []int{0, 1, 17, 64, 200} {
		a := NewDetector(64, 2)
		for i := 0; i < warm; i++ {
			a.Observe(5 + rng.NormFloat64()*2)
		}
		b := NewDetector(64, 2)
		if err := b.Restore(a.State()); err != nil {
			t.Fatalf("warm %d: Restore: %v", warm, err)
		}
		for i := 0; i < 300; i++ {
			v := 5 + rng.NormFloat64()*2
			if i%37 == 0 {
				v += 50 // inject outliers so correction paths diverge if wrong
			}
			oa := a.Observe(v)
			ob := b.Observe(v)
			if oa != ob {
				t.Fatalf("warm %d, sample %d: original %+v vs restored %+v", warm, i, oa, ob)
			}
		}
	}
}

func TestDetectorRestoreRejectsOversizedSnapshot(t *testing.T) {
	d := NewDetector(4, 1)
	err := d.Restore(DetectorState{Raw: []float64{1, 2, 3, 4, 5}})
	if err == nil {
		t.Fatal("oversized snapshot accepted")
	}
}
