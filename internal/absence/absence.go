// Package absence implements the detection mode the paper's introduction
// singles out: "when a node card fails, the event is usually represented
// by a lack of messages in the log". Occurrence-based correlation cannot
// see a component that has gone quiet, so this monitor tracks the
// per-location beats of registered periodic event types (heartbeats,
// watchdogs) and raises an alert once a location misses enough consecutive
// beats.
package absence

import (
	"sort"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Watch registers one periodic event type to monitor.
type Watch struct {
	Event  int           // template id of the heartbeat message
	Period time.Duration // expected beat period per location
	// MissThreshold is how many consecutive missed beats raise an alert
	// (default 3: one miss is jitter, three is a dead component).
	MissThreshold int
}

// Alert reports one component gone quiet.
type Alert struct {
	Event      int
	Location   topology.Location
	LastSeen   time.Time // last beat observed
	DetectedAt time.Time // when the monitor raised the alert
	Missed     int       // beats missed at detection time
}

// Latency returns how long after the last beat the alert was raised.
func (a Alert) Latency() time.Duration { return a.DetectedAt.Sub(a.LastSeen) }

// Monitor tracks heartbeat freshness per (event, location). It is not
// safe for concurrent use.
type Monitor struct {
	watches map[int]Watch
	last    map[key]time.Time
	alerted map[key]bool
}

type key struct {
	event int
	loc   topology.Location
}

// NewMonitor returns a monitor for the given watches. Non-positive
// MissThreshold defaults to 3.
func NewMonitor(watches ...Watch) *Monitor {
	m := &Monitor{
		watches: make(map[int]Watch, len(watches)),
		last:    make(map[key]time.Time),
		alerted: make(map[key]bool),
	}
	for _, w := range watches {
		if w.MissThreshold <= 0 {
			w.MissThreshold = 3
		}
		m.watches[w.Event] = w
	}
	return m
}

// Observe feeds one record. Beats refresh their location's freshness and
// clear any standing alert for it.
func (m *Monitor) Observe(rec logs.Record) {
	if _, ok := m.watches[rec.EventID]; !ok {
		return
	}
	k := key{event: rec.EventID, loc: rec.Location}
	m.last[k] = rec.Time
	m.alerted[k] = false
}

// Check raises alerts for every watched location whose last beat is more
// than MissThreshold periods old at time now. Each silence is alerted
// once; a returning beat re-arms the alert. Alerts are ordered by
// location code for determinism.
func (m *Monitor) Check(now time.Time) []Alert {
	var out []Alert
	for k, last := range m.last {
		if m.alerted[k] {
			continue
		}
		w := m.watches[k.event]
		missed := int(now.Sub(last) / w.Period)
		if missed >= w.MissThreshold {
			m.alerted[k] = true
			out = append(out, Alert{
				Event:      k.event,
				Location:   k.loc,
				LastSeen:   last,
				DetectedAt: now,
				Missed:     missed,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Event != out[j].Event {
			return out[i].Event < out[j].Event
		}
		return out[i].Location.String() < out[j].Location.String()
	})
	return out
}

// Tracked returns how many (event, location) streams are being followed.
func (m *Monitor) Tracked() int { return len(m.last) }

// Run replays a time-sorted record stream, checking for silences at the
// given cadence, and returns every alert raised. It is the batch harness
// the experiments use; online deployments call Observe/Check themselves.
func (m *Monitor) Run(recs []logs.Record, start, end time.Time, cadence time.Duration) []Alert {
	if cadence <= 0 {
		cadence = 30 * time.Second
	}
	var out []Alert
	next := start.Add(cadence)
	for _, r := range recs {
		for !next.After(r.Time) && next.Before(end) {
			out = append(out, m.Check(next)...)
			next = next.Add(cadence)
		}
		m.Observe(r)
	}
	for !next.After(end) {
		out = append(out, m.Check(next)...)
		next = next.Add(cadence)
	}
	return out
}
