package absence

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

func beat(at time.Time, event int, loc string) logs.Record {
	return logs.Record{Time: at, EventID: event, Location: topology.MustParse(loc)}
}

func TestAlertAfterMissedBeats(t *testing.T) {
	m := NewMonitor(Watch{Event: 7, Period: 2 * time.Minute, MissThreshold: 3})
	for i := 0; i < 5; i++ {
		m.Observe(beat(t0.Add(time.Duration(i)*2*time.Minute), 7, "R05"))
	}
	lastBeat := t0.Add(8 * time.Minute)
	// Two periods later: no alert yet.
	if got := m.Check(lastBeat.Add(4 * time.Minute)); len(got) != 0 {
		t.Fatalf("premature alerts: %v", got)
	}
	// Three periods later: alert.
	alerts := m.Check(lastBeat.Add(6 * time.Minute))
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Location.String() != "R05" || a.Missed != 3 {
		t.Errorf("alert = %+v", a)
	}
	if a.Latency() != 6*time.Minute {
		t.Errorf("Latency = %v", a.Latency())
	}
	// Alert only fires once per silence.
	if got := m.Check(lastBeat.Add(10 * time.Minute)); len(got) != 0 {
		t.Errorf("duplicate alert: %v", got)
	}
}

func TestReturningBeatRearms(t *testing.T) {
	m := NewMonitor(Watch{Event: 7, Period: time.Minute})
	m.Observe(beat(t0, 7, "R01"))
	if got := m.Check(t0.Add(5 * time.Minute)); len(got) != 1 {
		t.Fatalf("first silence not alerted: %v", got)
	}
	// The rack comes back, then dies again: a second alert must fire.
	m.Observe(beat(t0.Add(6*time.Minute), 7, "R01"))
	if got := m.Check(t0.Add(7 * time.Minute)); len(got) != 0 {
		t.Fatal("alert while healthy")
	}
	if got := m.Check(t0.Add(12 * time.Minute)); len(got) != 1 {
		t.Fatalf("second silence not alerted: %v", got)
	}
}

func TestPerLocationIndependence(t *testing.T) {
	m := NewMonitor(Watch{Event: 7, Period: time.Minute})
	m.Observe(beat(t0, 7, "R01"))
	m.Observe(beat(t0, 7, "R02"))
	// R02 keeps beating, R01 dies.
	for i := 1; i <= 10; i++ {
		m.Observe(beat(t0.Add(time.Duration(i)*time.Minute), 7, "R02"))
	}
	alerts := m.Check(t0.Add(10 * time.Minute))
	if len(alerts) != 1 || alerts[0].Location.String() != "R01" {
		t.Fatalf("alerts = %v, want only R01", alerts)
	}
	if m.Tracked() != 2 {
		t.Errorf("Tracked = %d", m.Tracked())
	}
}

func TestUnwatchedEventsIgnored(t *testing.T) {
	m := NewMonitor(Watch{Event: 7, Period: time.Minute})
	m.Observe(beat(t0, 99, "R01"))
	if m.Tracked() != 0 {
		t.Error("unwatched event tracked")
	}
}

func TestRunBatch(t *testing.T) {
	// Two racks beating every minute; R03 stops after 10 minutes.
	var recs []logs.Record
	end := t0.Add(30 * time.Minute)
	for i := 0; ; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		if !at.Before(end) {
			break
		}
		recs = append(recs, beat(at, 7, "R04"))
		if at.Before(t0.Add(10 * time.Minute)) {
			recs = append(recs, beat(at, 7, "R03"))
		}
	}
	logs.SortByTime(recs)
	m := NewMonitor(Watch{Event: 7, Period: time.Minute, MissThreshold: 3})
	alerts := m.Run(recs, t0, end, 30*time.Second)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v, want one (R03)", alerts)
	}
	if alerts[0].Location.String() != "R03" {
		t.Errorf("alerted %v", alerts[0].Location)
	}
	// Detection should come ~3 periods after the last beat, within one
	// cadence step of slack.
	if lat := alerts[0].Latency(); lat < 3*time.Minute || lat > 3*time.Minute+time.Minute {
		t.Errorf("latency = %v, want ~3min", lat)
	}
}

func TestDefaultThreshold(t *testing.T) {
	m := NewMonitor(Watch{Event: 1, Period: time.Minute})
	if m.watches[1].MissThreshold != 3 {
		t.Errorf("default threshold = %d", m.watches[1].MissThreshold)
	}
}
