package predict

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

// pipeline runs generate -> HELO -> split -> train -> profiles -> online.
type pipeline struct {
	model    *correlate.Model
	profiles map[string]*location.Profile
	result   *Result
	failures []gen.FailureRecord
	test     []logs.Record
}

func runPipeline(t *testing.T, mode correlate.Mode, trainDays, testDays int, seed int64) *pipeline {
	t.Helper()
	total := time.Duration(trainDays+testDays) * 24 * time.Hour
	cut := t0.Add(time.Duration(trainDays) * 24 * time.Hour)
	res := gen.New(gen.BlueGeneL(), seed).Generate(t0, total)
	org := helo.New(0)
	org.Assign(res.Records)
	train, test, testFailures := res.Split(cut)
	model := correlate.Train(train, t0, cut, mode, correlate.DefaultConfig())
	profiles := location.Extract(train, model.Chains, t0, model.Step, 1)
	engine := NewEngine(model, profiles, DefaultConfig())
	result := engine.Run(test, cut, res.End)
	return &pipeline{model: model, profiles: profiles, result: result,
		failures: testFailures, test: test}
}

func TestEnginePredictsFailures(t *testing.T) {
	p := runPipeline(t, correlate.Hybrid, 4, 8, 301)
	if len(p.result.Predictions) == 0 {
		t.Fatal("no predictions emitted")
	}
	if p.result.Stats.ChainsLoaded == 0 {
		t.Fatal("no prediction-capable chains")
	}
	if len(p.result.Stats.ChainsUsed) == 0 {
		t.Fatal("no chains used")
	}
}

func TestPredictionFieldsConsistent(t *testing.T) {
	p := runPipeline(t, correlate.Hybrid, 4, 6, 302)
	for _, pred := range p.result.Predictions {
		if pred.IssuedAt.Before(pred.TriggeredAt) {
			t.Errorf("issued before triggered: %+v", pred)
		}
		if pred.AnalysisTime <= 0 {
			t.Errorf("non-positive analysis time: %v", pred.AnalysisTime)
		}
		if got := pred.ExpectedAt.Sub(pred.IssuedAt); got != pred.Lead {
			t.Errorf("lead mismatch: %v vs %v", got, pred.Lead)
		}
		if pred.ChainSize < 2 {
			t.Errorf("chain size %d", pred.ChainSize)
		}
		if !pred.Severity.IsError() {
			t.Errorf("prediction for non-error severity %v", pred.Severity)
		}
		if !pred.Scope.Valid() {
			t.Errorf("invalid scope %v", pred.Scope)
		}
	}
}

func TestEngineDeterministic(t *testing.T) {
	a := runPipeline(t, correlate.Hybrid, 3, 4, 303)
	b := runPipeline(t, correlate.Hybrid, 3, 4, 303)
	if len(a.result.Predictions) != len(b.result.Predictions) {
		t.Fatalf("prediction counts differ: %d vs %d",
			len(a.result.Predictions), len(b.result.Predictions))
	}
	for i := range a.result.Predictions {
		if a.result.Predictions[i] != b.result.Predictions[i] {
			t.Fatalf("prediction %d differs", i)
		}
	}
}

func TestAnalysisTimeGrowsWithBursts(t *testing.T) {
	p := runPipeline(t, correlate.Hybrid, 3, 6, 304)
	st := p.result.Stats
	if st.MaxTickMessages <= 10 {
		t.Skip("no burst in window")
	}
	mean := time.Duration(st.Analysis.Mean() * float64(time.Second))
	if st.MaxAnalysis <= mean {
		t.Errorf("max analysis %v not above mean %v", st.MaxAnalysis, mean)
	}
	// Bursty ticks must cost visibly more than the base cost.
	if st.MaxAnalysis < 50*time.Millisecond {
		t.Errorf("max analysis %v too small for a %d-message burst",
			st.MaxAnalysis, st.MaxTickMessages)
	}
}

func TestLocationDisabledNarrowsScope(t *testing.T) {
	total := 7 * 24 * time.Hour
	cut := t0.Add(3 * 24 * time.Hour)
	res := gen.New(gen.BlueGeneL(), 305).Generate(t0, total)
	org := helo.New(0)
	org.Assign(res.Records)
	train, test, _ := res.Split(cut)
	model := correlate.Train(train, t0, cut, correlate.Hybrid, correlate.DefaultConfig())
	profiles := location.Extract(train, model.Chains, t0, model.Step, 1)

	cfg := DefaultConfig()
	cfg.UseLocation = false
	noLoc := NewEngine(model, profiles, cfg).Run(test, cut, res.End)
	for _, pred := range noLoc.Predictions {
		if pred.Scope != topology.ScopeNode {
			t.Fatalf("location-blind prediction with scope %v", pred.Scope)
		}
	}
}

func TestRequired(t *testing.T) {
	cases := []struct{ size, want int }{{2, 1}, {3, 2}, {4, 2}, {6, 2}}
	for _, c := range cases {
		if got := required(c.size); got != c.want {
			t.Errorf("required(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestEngineOnSyntheticChain(t *testing.T) {
	// Hand-build a model with one chain 1 -> 2 -> 3 (delays 0, 6, 12) and
	// stream a matching occurrence through the engine.
	model := &correlate.Model{
		Mode: correlate.Hybrid,
		Step: 10 * time.Second,
		Chains: []correlate.Chain{{
			Itemset: gradual.Itemset{Items: []gradual.Item{
				{Event: 1, Delay: 0}, {Event: 2, Delay: 6}, {Event: 3, Delay: 12},
			}},
			Predictive:  true,
			MaxSeverity: logs.Failure,
		}},
		Profiles: map[int]sig.Profile{
			1: {Event: 1, Class: sig.Silent},
			2: {Event: 2, Class: sig.Silent},
			3: {Event: 3, Class: sig.Silent},
		},
		Thresholds: map[int]float64{1: 0.5, 2: 0.5, 3: 0.5},
		Severity:   map[int]logs.Severity{1: logs.Warning, 2: logs.Severe, 3: logs.Failure},
	}
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	mkRec := func(tick int, ev int) logs.Record {
		return logs.Record{Time: t0.Add(time.Duration(tick*10) * time.Second),
			EventID: ev, Location: node, Severity: model.Severity[ev]}
	}
	recs := []logs.Record{mkRec(5, 1), mkRec(11, 2), mkRec(17, 3)}
	engine := NewEngine(model, nil, DefaultConfig())
	res := engine.Run(recs, t0, t0.Add(time.Hour))
	if len(res.Predictions) != 1 {
		t.Fatalf("predictions = %d, want 1", len(res.Predictions))
	}
	p := res.Predictions[0]
	if p.Event != 3 {
		t.Errorf("predicted event %d, want 3", p.Event)
	}
	if p.Trigger != node {
		t.Errorf("trigger = %v", p.Trigger)
	}
	// Prefix completes at tick 11 (event 2); the forecast points at the
	// start of tick 5+12 = 17, i.e. 170 s.
	wantExpected := t0.Add(170 * time.Second)
	if !p.ExpectedAt.Equal(wantExpected) {
		t.Errorf("ExpectedAt = %v, want %v", p.ExpectedAt, wantExpected)
	}
	if p.Late() {
		t.Errorf("prediction late: lead %v", p.Lead)
	}
}

func TestEngineNoDuplicateInstanceSameTick(t *testing.T) {
	model := &correlate.Model{
		Mode: correlate.Hybrid,
		Step: 10 * time.Second,
		Chains: []correlate.Chain{{
			Itemset: gradual.Itemset{Items: []gradual.Item{
				{Event: 1, Delay: 0}, {Event: 2, Delay: 3},
			}},
			Predictive:  true,
			MaxSeverity: logs.Failure,
		}},
		Profiles:   map[int]sig.Profile{1: {Class: sig.Silent}, 2: {Class: sig.Silent}},
		Thresholds: map[int]float64{1: 0.5, 2: 0.5},
		Severity:   map[int]logs.Severity{1: logs.Warning, 2: logs.Failure},
	}
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	// Two records of event 1 in the same tick: one instance, one
	// prediction (pairs fire immediately).
	recs := []logs.Record{
		{Time: t0.Add(2 * time.Second), EventID: 1, Location: node},
		{Time: t0.Add(3 * time.Second), EventID: 1, Location: node},
	}
	res := NewEngine(model, nil, DefaultConfig()).Run(recs, t0, t0.Add(10*time.Minute))
	if len(res.Predictions) != 1 {
		t.Fatalf("predictions = %d, want 1 (deduplicated)", len(res.Predictions))
	}
}

func TestAdaptiveWindowsTightenWithConfirmations(t *testing.T) {
	// A pair chain whose true span (12 ticks) differs from the mined one
	// (10): after enough confirmed occurrences, the prediction window
	// must move from the static bounds toward the observed spans.
	model := &correlate.Model{
		Mode: correlate.Hybrid,
		Step: 10 * time.Second,
		Chains: []correlate.Chain{{
			Itemset: gradual.Itemset{Items: []gradual.Item{
				{Event: 1, Delay: 0}, {Event: 2, Delay: 10},
			}},
			Predictive:  true,
			MaxSeverity: logs.Failure,
		}},
		Profiles:   map[int]sig.Profile{1: {Class: sig.Silent}, 2: {Class: sig.Silent}},
		Thresholds: map[int]float64{1: 0.5, 2: 0.5},
		Severity:   map[int]logs.Severity{1: logs.Warning, 2: logs.Failure},
	}
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	var recs []logs.Record
	mk := func(tick, ev int) logs.Record {
		return logs.Record{Time: t0.Add(time.Duration(tick*10) * time.Second),
			EventID: ev, Location: node}
	}
	// 8 occurrences, true span 12 ticks (within tolerance of mined 10).
	for i := 0; i < 8; i++ {
		base := i * 100
		recs = append(recs, mk(base, 1), mk(base+12, 2))
	}
	res := NewEngine(model, nil, DefaultConfig()).Run(recs, t0, t0.Add(3*time.Hour))
	if len(res.Predictions) != 8 {
		t.Fatalf("predictions = %d, want 8", len(res.Predictions))
	}
	first := res.Predictions[0]
	lastP := res.Predictions[len(res.Predictions)-1]
	// Static bounds around mined span 10 with tol max(2, 10/4)=2: [8, 12].
	if got := first.ExpectedLatest.Sub(first.ExpectedEarliest); got != 40*time.Second {
		t.Errorf("static window width = %v, want 40s", got)
	}
	// After >= 5 confirmations at span 12, bounds should centre near 12.
	wantEarliest := lastP.TriggeredAt.Add(-10 * time.Second) // trigger tick +12 from start
	_ = wantEarliest
	lateSpan := lastP.ExpectedLatest.Sub(lastP.TriggeredAt)
	if lateSpan < 110*time.Second || lateSpan > 140*time.Second {
		t.Errorf("adaptive latest = %v after trigger, want ~120s", lateSpan)
	}
	earlySpan := lastP.ExpectedEarliest.Sub(lastP.TriggeredAt)
	if earlySpan < 100*time.Second || earlySpan > 125*time.Second {
		t.Errorf("adaptive earliest = %v after trigger, want ~110-120s", earlySpan)
	}
}

func TestCIODBChainPredictsLate(t *testing.T) {
	// A chain whose items all share one tick gives no usable window: the
	// prediction must be marked late.
	model := &correlate.Model{
		Mode: correlate.Hybrid,
		Step: 10 * time.Second,
		Chains: []correlate.Chain{{
			Itemset: gradual.Itemset{Items: []gradual.Item{
				{Event: 1, Delay: 0}, {Event: 2, Delay: 0},
			}},
			Predictive:  true,
			MaxSeverity: logs.Failure,
		}},
		Profiles:   map[int]sig.Profile{1: {Class: sig.Silent}, 2: {Class: sig.Silent}},
		Thresholds: map[int]float64{1: 0.5, 2: 0.5},
		Severity:   map[int]logs.Severity{1: logs.Failure, 2: logs.Failure},
	}
	recs := []logs.Record{
		{Time: t0.Add(time.Second), EventID: 1, Location: topology.System},
		{Time: t0.Add(time.Second), EventID: 2, Location: topology.System},
	}
	res := NewEngine(model, nil, DefaultConfig()).Run(recs, t0, t0.Add(time.Minute))
	if len(res.Predictions) != 1 {
		t.Fatalf("predictions = %d, want 1", len(res.Predictions))
	}
	if !res.Predictions[0].Late() {
		t.Errorf("zero-window chain should be late, lead = %v", res.Predictions[0].Lead)
	}
	if res.Stats.LatePreds != 1 {
		t.Errorf("LatePreds = %d", res.Stats.LatePreds)
	}
}
