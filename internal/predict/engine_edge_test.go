package predict

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// emptyModel returns a model with no chains at all.
func emptyModel() *correlate.Model {
	return &correlate.Model{
		Mode:       correlate.Hybrid,
		Step:       10 * time.Second,
		Profiles:   map[int]sig.Profile{},
		Thresholds: map[int]float64{},
		Severity:   map[int]logs.Severity{},
	}
}

func TestEngineEmptyModel(t *testing.T) {
	e := NewEngine(emptyModel(), nil, DefaultConfig())
	recs := []logs.Record{{Time: t0.Add(time.Second), EventID: 0, Location: topology.System}}
	res := e.Run(recs, t0, t0.Add(time.Minute))
	if len(res.Predictions) != 0 {
		t.Error("empty model emitted predictions")
	}
	if res.Stats.Messages != 1 {
		t.Errorf("Messages = %d", res.Stats.Messages)
	}
	if res.Stats.ChainsLoaded != 0 {
		t.Errorf("ChainsLoaded = %d", res.Stats.ChainsLoaded)
	}
}

func TestEngineUnknownEventIDs(t *testing.T) {
	// Events never seen in training (ids beyond any profile) take the
	// sparse path and must not crash or pollute chains.
	model := emptyModel()
	e := NewEngine(model, nil, DefaultConfig())
	var recs []logs.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, logs.Record{
			Time:     t0.Add(time.Duration(i) * time.Second),
			EventID:  1000 + i,
			Location: topology.System,
		})
	}
	res := e.Run(recs, t0, t0.Add(time.Hour))
	if len(res.Predictions) != 0 {
		t.Error("unknown events emitted predictions")
	}
}

func TestEngineIgnoresUnstampedRecords(t *testing.T) {
	model := emptyModel()
	e := NewEngine(model, nil, DefaultConfig())
	recs := []logs.Record{{Time: t0.Add(time.Second), EventID: -1, Location: topology.System}}
	res := e.Run(recs, t0, t0.Add(time.Minute))
	if res.Stats.Messages != 0 {
		t.Errorf("unstamped record counted: %d", res.Stats.Messages)
	}
}

func TestEngineMissingLocationProfileDefaultsToNode(t *testing.T) {
	model := &correlate.Model{
		Mode: correlate.Hybrid,
		Step: 10 * time.Second,
		Chains: []correlate.Chain{{
			Itemset: gradual.Itemset{Items: []gradual.Item{
				{Event: 1, Delay: 0}, {Event: 2, Delay: 5},
			}},
			Predictive:  true,
			MaxSeverity: logs.Failure,
		}},
		Profiles:   map[int]sig.Profile{1: {Class: sig.Silent}, 2: {Class: sig.Silent}},
		Thresholds: map[int]float64{1: 0.5, 2: 0.5},
		Severity:   map[int]logs.Severity{1: logs.Warning, 2: logs.Failure},
	}
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	// Location prediction enabled but the profiles map lacks this chain:
	// the prediction must fall back to node scope.
	e := NewEngine(model, map[string]*location.Profile{}, DefaultConfig())
	recs := []logs.Record{
		{Time: t0.Add(time.Second), EventID: 1, Location: node},
	}
	res := e.Run(recs, t0, t0.Add(10*time.Minute))
	if len(res.Predictions) != 1 {
		t.Fatalf("predictions = %d", len(res.Predictions))
	}
	if res.Predictions[0].Scope != topology.ScopeNode {
		t.Errorf("scope = %v, want node fallback", res.Predictions[0].Scope)
	}
}
