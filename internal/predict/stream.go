package predict

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// Stream wraps an Engine for incremental use: records arrive one at a
// time (in time order), ticks close as the clock passes them, and
// predictions surface as soon as their tick's analysis completes. It is
// the online deployment shape of the batch Run API — a monitor daemon
// tails a log and forwards records as they appear.
type Stream struct {
	engine *Engine
	start  time.Time
	tick   int // next tick to close
	buf    []logs.Record
	result *Result
	closed bool
}

// NewStream arms an engine for incremental feeding, with tick 0 starting
// at start.
func NewStream(engine *Engine, start time.Time) *Stream {
	return &Stream{
		engine: engine,
		start:  start,
		result: &Result{Stats: Stats{
			ChainsLoaded: len(engine.chains),
			ChainsUsed:   make(map[string]int),
		}},
	}
}

// Feed appends one record and returns any predictions that became visible
// by closing earlier ticks. Records must arrive in time order; stragglers
// older than the current tick are dropped (and counted).
func (s *Stream) Feed(rec logs.Record) []Prediction {
	if s.closed {
		return nil
	}
	preds := s.AdvanceTo(rec.Time)
	if rec.Time.Before(s.start.Add(time.Duration(s.tick) * s.engine.cfg.Step)) {
		s.result.Stats.LateRecords++
		return preds
	}
	s.buf = append(s.buf, rec)
	return preds
}

// AdvanceTo closes every tick that ends at or before now, returning the
// predictions they emitted. Call it periodically even without records so
// time-based expiry proceeds during quiet spells.
func (s *Stream) AdvanceTo(now time.Time) []Prediction {
	if s.closed {
		return nil
	}
	var out []Prediction
	for {
		tickEnd := s.start.Add(time.Duration(s.tick+1) * s.engine.cfg.Step)
		if now.Before(tickEnd) {
			return out
		}
		out = append(out, s.closeTick(tickEnd)...)
	}
}

// closeTick processes the buffered records of the current tick.
func (s *Stream) closeTick(tickEnd time.Time) []Prediction {
	tickStart := tickEnd.Add(-s.engine.cfg.Step)
	// Partition buffered records: those in this tick are consumed.
	var cur []logs.Record
	rest := s.buf[:0]
	for _, r := range s.buf {
		if r.Time.Before(tickEnd) && !r.Time.Before(tickStart) {
			cur = append(cur, r)
		} else if !r.Time.Before(tickEnd) {
			rest = append(rest, r)
		}
	}
	s.buf = rest
	before := len(s.result.Predictions)
	s.engine.processTick(cur, s.tick, tickStart, tickEnd, s.result)
	s.tick++
	return s.result.Predictions[before:]
}

// Close flushes any still-open tick and returns the accumulated result.
// The stream cannot be fed afterwards.
func (s *Stream) Close() *Result {
	if !s.closed {
		if len(s.buf) > 0 {
			tickEnd := s.start.Add(time.Duration(s.tick+1) * s.engine.cfg.Step)
			s.closeTick(tickEnd)
		}
		s.closed = true
	}
	return s.result
}

// Result returns the accumulated result so far without closing.
func (s *Stream) Result() *Result { return s.result }
