package predict

import (
	"fmt"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/outlier"
	"github.com/elsa-hpc/elsa/internal/stats"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// EngineState is the serialisable online state of an Engine: the dense
// outlier-filter windows, the partially matched chain instances, and the
// per-chain adaptive-window trackers. Together with the sampler cursor
// (owned by internal/pipeline) it is everything a crashed monitor needs
// to resume mid-stream without retraining and without double-emitting.
//
//elsa:snapshot-envelope
type EngineState struct {
	Detectors map[int]outlier.DetectorState `json:"detectors,omitempty"`
	Active    []InstanceState               `json:"active,omitempty"`
	Spans     map[string]SpanState          `json:"spans,omitempty"`
}

// InstanceState is one partially matched chain occurrence. The chain is
// referenced by its stable key; Restore resolves it against the model.
type InstanceState struct {
	ChainKey  string            `json:"chain"`
	StartTick int               `json:"start_tick"`
	Matched   []bool            `json:"matched"`
	Trigger   topology.Location `json:"trigger"`
	Fired     bool              `json:"fired,omitempty"`
}

// SpanState is one chain's confirmed-delay tracker.
type SpanState struct {
	Q10 stats.QuantileState `json:"q10"`
	Q90 stats.QuantileState `json:"q90"`
	N   int                 `json:"n"`
}

// State snapshots the engine's online state. The active-instance order
// is preserved exactly: prediction emission order depends on it, and the
// resume contract is bit-identical continuation.
//
//elsa:snapshotter encode
func (e *Engine) State() *EngineState {
	st := &EngineState{
		Detectors: make(map[int]outlier.DetectorState, len(e.detectors)),
		Active:    make([]InstanceState, 0, len(e.active)),
		Spans:     make(map[string]SpanState, len(e.spans)),
	}
	for _, id := range e.DetectorIDs() {
		st.Detectors[id] = e.detectors[id].State()
	}
	for _, in := range e.active {
		st.Active = append(st.Active, InstanceState{
			ChainKey:  in.chain.Key(),
			StartTick: in.startTick,
			Matched:   append([]bool(nil), in.matched...),
			Trigger:   in.trigger,
			Fired:     in.fired,
		})
	}
	for key, tr := range e.spans {
		st.Spans[key] = SpanState{Q10: tr.q10.State(), Q90: tr.q90.State(), N: tr.n}
	}
	return st
}

// Restore replaces the engine's online state with a snapshot taken by
// State. It must be called on a freshly built engine over the same model
// the snapshot was taken from: detector ids and chain keys are resolved
// against the model, and any mismatch is an error (the snapshot belongs
// to a different model, resuming would corrupt predictions silently).
//
//elsa:snapshotter decode
func (e *Engine) Restore(st *EngineState) error {
	if st == nil {
		return fmt.Errorf("predict: nil engine state")
	}
	byKey := make(map[string]*correlate.Chain, len(e.chains))
	for i := range e.chains {
		byKey[e.chains[i].Key()] = &e.chains[i]
	}
	for id, ds := range st.Detectors {
		det, ok := e.detectors[id]
		if !ok {
			return fmt.Errorf("predict: snapshot has detector state for unknown event %d", id)
		}
		if err := det.Restore(ds); err != nil {
			return fmt.Errorf("predict: event %d: %w", id, err)
		}
	}
	e.active = e.active[:0]
	for i, is := range st.Active {
		c, ok := byKey[is.ChainKey]
		if !ok {
			return fmt.Errorf("predict: snapshot instance %d references unknown chain %q", i, is.ChainKey)
		}
		if len(is.Matched) != len(c.Items) {
			return fmt.Errorf("predict: snapshot instance %d has %d match slots, chain %q has %d items",
				i, len(is.Matched), is.ChainKey, len(c.Items))
		}
		in := &instance{
			chain:     c,
			startTick: is.StartTick,
			matched:   append([]bool(nil), is.Matched...),
			trigger:   is.Trigger,
			fired:     is.Fired,
		}
		for _, m := range in.matched {
			if m {
				in.nMatched++
			}
		}
		e.active = append(e.active, in)
	}
	e.spans = make(map[string]*spanTracker, len(st.Spans))
	for key, ss := range st.Spans {
		e.spans[key] = &spanTracker{
			q10: stats.RestoreStreamingQuantile(ss.Q10),
			q90: stats.RestoreStreamingQuantile(ss.Q90),
			n:   ss.N,
		}
	}
	return nil
}
