package predict

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/topology"
)

func swapTestModel() *correlate.Model {
	return &correlate.Model{
		Mode: correlate.Hybrid,
		Step: 10 * time.Second,
		Chains: []correlate.Chain{{
			Itemset: gradual.Itemset{Items: []gradual.Item{
				{Event: 1, Delay: 0}, {Event: 2, Delay: 6}, {Event: 3, Delay: 12},
			}},
			Predictive:  true,
			MaxSeverity: logs.Failure,
		}},
		Profiles: map[int]sig.Profile{
			1: {Event: 1, Class: sig.Silent}, 2: {Event: 2, Class: sig.Silent},
			3: {Event: 3, Class: sig.Silent}, 4: {Event: 4, Class: sig.Silent},
			5: {Event: 5, Class: sig.Silent},
		},
		Thresholds: map[int]float64{1: 0.5, 2: 0.5, 3: 0.5, 4: 0.5, 5: 0.5},
		Severity: map[int]logs.Severity{
			1: logs.Warning, 2: logs.Severe, 3: logs.Failure,
			4: logs.Warning, 5: logs.Failure,
		},
	}
}

// stepTick drives one tick through the engine's exported stage steps.
func stepTick(e *Engine, res *Result, tick int, events ...int) {
	node := topology.MustParse("R00-M0-N0-C:J02-U01")
	tickStart := t0.Add(time.Duration(tick) * e.cfg.Step)
	tk := NewTick()
	for _, ev := range events {
		tk.Add(logs.Record{Time: tickStart, EventID: ev, Location: node})
	}
	hits := e.DetectOutliers(tk, tickStart)
	checks := e.MatchChains(hits, tick)
	e.FinishTick(tk, checks, tick, tickStart.Add(e.cfg.Step), res)
}

// TestSwapChainsKeepsActiveInstances: an in-flight partial match whose
// chain survives a refresh keeps matching across the swap, and chains
// the refresh adds become live immediately.
func TestSwapChainsKeepsActiveInstances(t *testing.T) {
	model := swapTestModel()
	e := NewEngine(model, nil, DefaultConfig())
	if e.ChainCount() != 1 {
		t.Fatalf("ChainCount = %d, want 1", e.ChainCount())
	}
	res := e.NewResult()

	// Event 1 opens an instance of the 3-chain; it has not fired yet.
	stepTick(e, res, 0, 1)
	if len(res.Predictions) != 0 || len(e.active) != 1 {
		t.Fatalf("after trigger: preds=%d active=%d", len(res.Predictions), len(e.active))
	}

	// A refresh adds a new pair chain 4 -> 5 and keeps the 3-chain.
	model.Chains = append(model.Chains, correlate.Chain{
		Itemset: gradual.Itemset{Items: []gradual.Item{
			{Event: 4, Delay: 0}, {Event: 5, Delay: 3},
		}},
		Predictive:  true,
		MaxSeverity: logs.Failure,
	})
	if n := e.SwapChains(); n != 2 {
		t.Fatalf("SwapChains = %d chains, want 2", n)
	}
	if len(e.active) != 1 {
		t.Fatalf("active instance lost across swap: %d", len(e.active))
	}

	// The surviving instance completes: event 2 at its mined delay fires
	// the old chain; the new pair chain fires on its own trigger.
	stepTick(e, res, 6, 2)
	stepTick(e, res, 8, 4)
	keys := map[string]bool{}
	for _, p := range res.Predictions {
		keys[p.ChainKey] = true
	}
	if !keys["1@0|2@6|3@12"] {
		t.Errorf("surviving instance did not fire after swap: %v", keys)
	}
	if !keys["4@0|5@3"] {
		t.Errorf("newly added chain not live after swap: %v", keys)
	}
}

// TestSwapChainsDropsRemovedChains: instances of a chain the refresh
// dropped expire at the swap and can no longer fire.
func TestSwapChainsDropsRemovedChains(t *testing.T) {
	model := swapTestModel()
	e := NewEngine(model, nil, DefaultConfig())
	res := e.NewResult()
	stepTick(e, res, 0, 1)
	if len(e.active) != 1 {
		t.Fatalf("no active instance: %d", len(e.active))
	}

	model.Chains = nil
	if n := e.SwapChains(); n != 0 {
		t.Fatalf("SwapChains = %d chains, want 0", n)
	}
	if len(e.active) != 0 {
		t.Fatalf("orphaned instance survived swap: %d", len(e.active))
	}
	stepTick(e, res, 6, 2)
	stepTick(e, res, 12, 3)
	if len(res.Predictions) != 0 {
		t.Fatalf("dropped chain still fired: %d predictions", len(res.Predictions))
	}
}

// TestSwapChainsReappliesSeverityFilter: a refresh that downgrades a
// terminal event below error severity must disarm its chains, exactly
// as NewEngine would.
func TestSwapChainsReappliesSeverityFilter(t *testing.T) {
	model := swapTestModel()
	e := NewEngine(model, nil, DefaultConfig())
	model.Severity[3] = logs.Info
	if n := e.SwapChains(); n != 0 {
		t.Fatalf("SwapChains = %d chains, want 0 after severity downgrade", n)
	}
}
