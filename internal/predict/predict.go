// Package predict implements ELSA's online phase: records stream in, are
// sampled into per-event signals tick by tick, pass the on-line outlier
// filter, and outliers advance partially matched correlation chains. When
// enough of a chain's prefix has been observed the engine emits a
// prediction carrying the expected failure time, the visible prediction
// window (after subtracting the modelled analysis time) and the predicted
// location scope from the chain's propagation profile — exactly the
// prediction process of the paper's Figure 8.
package predict

import (
	"sort"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/outlier"
	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/stats"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Prediction is one emitted failure forecast.
type Prediction struct {
	TriggeredAt  time.Time     // tick at which the chain prefix completed
	IssuedAt     time.Time     // TriggeredAt + analysis time (when visible)
	ExpectedAt   time.Time     // forecast failure time
	Lead         time.Duration // ExpectedAt - IssuedAt; <= 0 means too late
	AnalysisTime time.Duration

	// ExpectedEarliest/ExpectedLatest bound the forecast window. They
	// start at the static +/- quarter-span tolerance and tighten as the
	// engine confirms the chain's real delays online (dynamic prediction
	// windows, following the authors' earlier SLAML 2011 adaptive-window
	// work).
	ExpectedEarliest time.Time
	ExpectedLatest   time.Time

	Event     int    // predicted terminal event id
	ChainKey  string // chain that fired
	ChainSize int

	Trigger topology.Location // location of the first symptom
	Scope   topology.Scope    // predicted affected scope around Trigger

	Severity logs.Severity // severity of the predicted event type

	// Degraded marks a prediction emitted while the pipeline was shedding
	// load or running a stage in bypass mode: the tick that fired it may
	// have seen an incomplete record stream, so the forecast carries less
	// confidence than a clean-mode one.
	Degraded bool
}

// Late reports whether the prediction became visible only after the
// forecast failure time (no usable window).
func (p *Prediction) Late() bool { return p.Lead <= 0 }

// Config tunes the online engine.
type Config struct {
	Step      time.Duration
	Tolerance int // tick slack when matching chain delays

	// UseLocation attaches propagation scopes from the location profiles;
	// when false every prediction targets only the trigger component (the
	// ablation the paper reports as ~94% precision without location).
	UseLocation bool

	// Analysis-time model (Section VI.A): processing a tick costs
	// BaseCost + PerMessageCost * messages + PerCheckCost * chain lookups.
	BaseCost       time.Duration
	PerMessageCost time.Duration
	PerCheckCost   time.Duration

	// OutlierWindow is the causal window for the online filters of dense
	// signals.
	OutlierWindow int

	// LegacyFilterFactor scales the analysis cost for signal-only models:
	// the paper's pure signal-analysis predecessor used the slower
	// offline-style outlier detection of its reference [4], whose online
	// analysis window "exceeds 30 seconds when the system experiences
	// bursts" versus ~2.5 s for the hybrid's on-the-fly filter.
	LegacyFilterFactor float64
}

// DefaultConfig returns the engine parameters used in the experiments. The
// cost constants are calibrated so that the paper's regimes reproduce: at
// 5 msg/s a tick's analysis is negligible, at burst rates (~100 msg/s) it
// reaches seconds.
func DefaultConfig() Config {
	return Config{
		Step:               sig.DefaultStep,
		Tolerance:          2,
		UseLocation:        true,
		BaseCost:           time.Millisecond,
		PerMessageCost:     2500 * time.Microsecond,
		PerCheckCost:       50 * time.Microsecond,
		OutlierWindow:      outlier.DefaultWindow,
		LegacyFilterFactor: 13,
	}
}

// Stats aggregates run-wide counters.
type Stats struct {
	Ticks           int
	Messages        int
	MaxTickMessages int

	Analysis    stats.Online  // per-tick analysis times, seconds
	MaxAnalysis time.Duration // worst tick

	ChainsLoaded int            // prediction-capable chains in the model
	ChainsUsed   map[string]int // chain key -> predictions fired
	LatePreds    int
	LateRecords  int // stream stragglers older than their tick, dropped

	// Input-hardening and resilience accounting (internal/pipeline runs;
	// zero for direct Engine.Run calls).
	QuarantinedRecords int // malformed records diverted, never fatal
	DedupedRecords     int // exact-duplicate burst records suppressed
	ShedRecords        int // records dropped by overload shedding
	DegradedTicks      int // ticks processed while shedding or bypassing
	Degraded           bool

	// Stages holds per-stage pipeline counters when the run was driven
	// through internal/pipeline (nil for direct Engine.Run calls).
	Stages []StageStats
}

// StageStats is one pipeline stage's counter snapshot: records (or tick
// batches) in and out, drops, the deepest queue observed on the stage's
// input edge, wall time spent inside the stage body, plus the stage's
// hardening counters and supervision health.
type StageStats struct {
	Name     string
	In       int64
	Out      int64
	Dropped  int64
	MaxQueue int
	Wall     time.Duration

	// Hardening counters: quarantined/deduplicated records (ingest) and
	// shed records (overload).
	Quarantined int64
	Deduped     int64
	Shed        int64

	// Supervision health: recovered stage-body panics, supervised loop
	// restarts, invocations bypassed with the breaker open, breaker trip
	// and half-open probe counts, and the breaker state ("" when the
	// stage runs unsupervised).
	Panics   int64
	Restarts int64
	Bypassed int64
	Trips    int64
	Probes   int64
	Health   string
}

// Result is the outcome of an online run.
type Result struct {
	Predictions []Prediction
	Stats       Stats
}

// chainRef indexes one item of one chain.
type chainRef struct {
	chain *correlate.Chain
	idx   int
}

// Hit is one outlier observation within a tick: the sampling/filtering
// stages reduce a tick's records to a set of Hits, which is all the
// chain-matching stage consumes.
type Hit struct {
	Event int
	Loc   topology.Location
}

// Tick is one sampling interval's aggregate: per-event counts, the first
// location seen per event, and the number of stamped records. It is the
// unit of work flowing between the sampling and filtering stages.
type Tick struct {
	Counts   map[int]int
	FirstLoc map[int]topology.Location
	N        int
}

// NewTick returns an empty tick sample.
func NewTick() *Tick {
	return &Tick{Counts: make(map[int]int), FirstLoc: make(map[int]topology.Location)}
}

// Add folds one record into the tick. Records without an event id are
// ignored (they carry no signal).
func (t *Tick) Add(r logs.Record) {
	if r.EventID < 0 {
		return
	}
	t.N++
	t.Counts[r.EventID]++
	if _, ok := t.FirstLoc[r.EventID]; !ok {
		t.FirstLoc[r.EventID] = r.Location
	}
}

// SampleTick aggregates the records of one tick, skipping records that
// precede tickStart (stragglers from before the run window).
func SampleTick(recs []logs.Record, tickStart time.Time) *Tick {
	t := NewTick()
	for _, r := range recs {
		if r.Time.Before(tickStart) {
			continue
		}
		t.Add(r)
	}
	return t
}

// instance is a partially matched chain occurrence.
//
//elsa:snapshot
type instance struct {
	chain     *correlate.Chain
	startTick int
	matched   []bool
	//elsa:ephemeral popcount of matched; Restore recomputes it
	nMatched int
	trigger  topology.Location
	fired    bool
}

// Engine is the online predictor. Build one with NewEngine per test run;
// it is not safe for concurrent use.
//
//elsa:snapshot
type Engine struct {
	//elsa:ephemeral trained-model reference; Restore resolves the snapshot against it
	model *correlate.Model
	//elsa:ephemeral trained location profiles, loaded with the model
	profiles map[string]*location.Profile
	//elsa:ephemeral engine configuration is a constructor argument, not stream state
	cfg Config

	//elsa:ephemeral model-derived wiring rebuilt by NewEngine
	chains []correlate.Chain
	//elsa:ephemeral model-derived wiring rebuilt by NewEngine
	byEvent map[int][]chainRef // event id -> positions in chains
	//elsa:ephemeral model-derived wiring rebuilt by NewEngine
	firstEvents map[int][]*correlate.Chain

	detectors map[int]*outlier.Detector // dense events only
	active    []*instance
	spans     map[string]*spanTracker // chain key -> confirmed-delay stats
}

// spanTracker accumulates the observed trigger-to-terminal spans of one
// chain (in ticks) to adapt its prediction window.
//
//elsa:snapshot
type spanTracker struct {
	q10, q90 *stats.StreamingQuantile
	n        int
}

// minConfirmations is how many confirmed occurrences a chain needs before
// its adaptive window replaces the static one.
const minConfirmations = 5

// NewEngine prepares an engine from a trained model and its location
// profiles (nil profiles disable location prediction regardless of
// cfg.UseLocation).
func NewEngine(model *correlate.Model, profiles map[string]*location.Profile, cfg Config) *Engine {
	if cfg.Step <= 0 {
		cfg.Step = model.Step
	}
	e := &Engine{
		model:       model,
		profiles:    profiles,
		cfg:         cfg,
		byEvent:     make(map[int][]chainRef),
		firstEvents: make(map[int][]*correlate.Chain),
		detectors:   make(map[int]*outlier.Detector),
		spans:       make(map[string]*spanTracker),
	}
	e.rebuildChains()
	// Dense signals get a real online filter; silent signals use the
	// fast path (any occurrence is an outlier).
	for id, p := range model.Profiles {
		if p.Class != sig.Silent && model.Mode != correlate.DataMiningOnly {
			e.detectors[id] = outlier.NewDetector(cfg.OutlierWindow, model.Thresholds[id])
		}
	}
	return e
}

// rebuildChains derives the engine's chain wiring from the model's
// current chain set. Prediction-capable chains are the predictive (not
// all-INFO) ones ending in an error-severity event.
func (e *Engine) rebuildChains() {
	e.chains = e.chains[:0]
	e.byEvent = make(map[int][]chainRef)
	e.firstEvents = make(map[int][]*correlate.Chain)
	for _, c := range e.model.Chains {
		if !c.Predictive {
			continue
		}
		if !e.model.Severity[c.Last().Event].IsError() {
			continue
		}
		e.chains = append(e.chains, c)
	}
	for i := range e.chains {
		c := &e.chains[i]
		e.firstEvents[c.First()] = append(e.firstEvents[c.First()], c)
		for idx, it := range c.Items {
			if idx == 0 {
				continue
			}
			e.byEvent[it.Event] = append(e.byEvent[it.Event], chainRef{chain: c, idx: idx})
		}
	}
}

// SwapChains re-derives the chain wiring after the model's chain set
// changed underneath the engine (incremental retraining). Stream state
// survives: detectors keep their windows, span trackers their confirmed
// delays, and active instances whose chain still exists under the same
// key are re-pointed at the new chain value; instances of chains the
// refresh dropped or re-shaped expire immediately. Returns the number
// of prediction-capable chains now loaded.
func (e *Engine) SwapChains() int {
	// Instances hold pointers into the old e.chains backing array, which
	// rebuildChains reuses — resolve their keys first.
	old := e.active
	oldKeys := make([]string, len(old))
	for i, in := range old {
		oldKeys[i] = in.chain.Key()
	}
	e.rebuildChains()
	byKey := make(map[string]*correlate.Chain, len(e.chains))
	for i := range e.chains {
		byKey[e.chains[i].Key()] = &e.chains[i]
	}
	kept := old[:0]
	for i, in := range old {
		c, ok := byKey[oldKeys[i]]
		if !ok || len(in.matched) != len(c.Items) {
			continue
		}
		in.chain = c
		kept = append(kept, in)
	}
	for i := len(kept); i < len(old); i++ {
		old[i] = nil
	}
	e.active = kept
	return len(e.chains)
}

// ChainCount reports how many prediction-capable chains are loaded.
func (e *Engine) ChainCount() int { return len(e.chains) }

// Step returns the engine's sampling interval (normalised to the model's
// step when the config left it unset).
func (e *Engine) Step() time.Duration { return e.cfg.Step }

// NewResult returns an empty result primed with the engine's chain
// inventory; drivers accumulate ticks into it via FinishTick.
func (e *Engine) NewResult() *Result {
	return &Result{Stats: Stats{
		ChainsLoaded: len(e.chains),
		ChainsUsed:   make(map[string]int),
	}}
}

// Run streams the time-sorted, event-stamped records through the engine
// tick by tick over [start, end). It is the in-process reference driver:
// internal/pipeline composes exactly the same stage steps (SampleTick,
// DetectOutliers, MatchChains, FinishTick) across channels.
func (e *Engine) Run(recs []logs.Record, start, end time.Time) *Result {
	res := e.NewResult()
	nTicks := int(end.Sub(start) / e.cfg.Step)
	ri := 0
	for tick := 0; tick < nTicks; tick++ {
		tickStart := start.Add(time.Duration(tick) * e.cfg.Step)
		tickEnd := tickStart.Add(e.cfg.Step)
		lo := ri
		for ri < len(recs) && recs[ri].Time.Before(tickEnd) {
			ri++
		}
		e.processTick(recs[lo:ri], tick, tickStart, tickEnd, res)
	}
	return res
}

// processTick runs one sampling tick end to end: sample, filter, match,
// account analysis time, fire and expire.
func (e *Engine) processTick(cur []logs.Record, tick int, tickStart, tickEnd time.Time, res *Result) {
	t := SampleTick(cur, tickStart)
	hits := e.DetectOutliers(t, tickStart)
	checks := e.MatchChains(hits, tick)
	e.FinishTick(t, checks, tick, tickEnd, res)
}

// DetectorIDs returns the event ids that carry a dense online filter, in
// ascending order. Detector state per id is independent, so a caller may
// partition the ids into shards and observe each shard from its own
// worker — the basis of the pipeline's filter fan-out.
func (e *Engine) DetectorIDs() []int {
	ids := make([]int, 0, len(e.detectors))
	for id := range e.detectors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ObserveDetector feeds one dense event's tick value to its online
// filter, returning a Hit when the tick is an outlier occurrence.
// Every detector must be observed exactly once per tick, in tick order,
// so its window state evolves; concurrent calls are safe only across
// distinct ids. Periodic signals are scored on their phase residual,
// anchored to the training epoch, so scheduled beats pass.
//
//elsa:hotpath
func (e *Engine) ObserveDetector(id int, t *Tick, tickStart time.Time) (Hit, bool) {
	det := e.detectors[id]
	v := float64(t.Counts[id])
	if p := e.model.Profiles[id]; p.Class == sig.Periodic && len(p.Baseline) > 0 {
		phase := int(tickStart.Sub(e.model.TrainStart)/e.cfg.Step) % len(p.Baseline)
		if phase < 0 {
			phase += len(p.Baseline)
		}
		v -= p.Baseline[phase]
	}
	obs := det.Observe(v)
	if obs.Outlier && t.Counts[id] > 0 {
		return Hit{Event: id, Loc: t.FirstLoc[id]}, true
	}
	return Hit{}, false
}

// SparseHits appends the tick's sparse-path outliers to hits: events
// without a dense filter (silent signals and event types never seen in
// training) count any occurrence as an outlier. The appended tail is
// sorted so the function's output is deterministic on its own — the
// sparse ids come out of a map — rather than relying on every caller to
// canonicalise the merged hit set (they do, but elsavet rightly refuses
// to take that on faith).
func (e *Engine) SparseHits(t *Tick, hits []Hit) []Hit {
	n := len(hits)
	for id := range t.Counts {
		if _, dense := e.detectors[id]; dense {
			continue
		}
		hits = append(hits, Hit{Event: id, Loc: t.FirstLoc[id]})
	}
	SortHits(hits[n:])
	return hits
}

// DetectOutliers runs the full filtering stage for one tick: every dense
// detector observes its value, sparse events pass through, and the hit
// set is sorted for deterministic matching.
func (e *Engine) DetectOutliers(t *Tick, tickStart time.Time) []Hit {
	var hits []Hit
	for _, id := range e.DetectorIDs() {
		if h, ok := e.ObserveDetector(id, t, tickStart); ok {
			hits = append(hits, h)
		}
	}
	hits = e.SparseHits(t, hits)
	SortHits(hits)
	return hits
}

// MatchChains advances the chain-matching stage by one tick's sorted hit
// set and returns the number of chain checks performed (the analysis-time
// model's currency). Spawns run before advances so chains whose items
// share one tick (simultaneous sequences like CIODB) match within it.
//
//elsa:hotpath
func (e *Engine) MatchChains(hits []Hit, tick int) (checks int) {
	for _, h := range hits {
		checks += e.spawn(h.Event, h.Loc, tick)
	}
	for _, h := range hits {
		checks += e.advance(h.Event, tick)
	}
	return checks
}

// FinishTick accounts one tick into res: message counters, the modelled
// analysis time for n messages and checks chain lookups, then firing and
// expiry of active chain instances.
func (e *Engine) FinishTick(t *Tick, checks, tick int, tickEnd time.Time, res *Result) {
	res.Stats.Ticks++
	res.Stats.Messages += t.N
	if t.N > res.Stats.MaxTickMessages {
		res.Stats.MaxTickMessages = t.N
	}
	cost := e.cfg.BaseCost +
		time.Duration(t.N)*e.cfg.PerMessageCost +
		time.Duration(checks)*e.cfg.PerCheckCost
	if e.model.Mode == correlate.SignalOnly && e.cfg.LegacyFilterFactor > 1 {
		cost = time.Duration(float64(cost) * e.cfg.LegacyFilterFactor)
	}
	res.Stats.Analysis.Add(cost.Seconds())
	if cost > res.Stats.MaxAnalysis {
		res.Stats.MaxAnalysis = cost
	}
	e.fireAndExpire(tick, tickEnd, cost, res)
}

// spawn opens new instances for chains whose first item is event. An
// instance is not duplicated while another instance of the same chain with
// a start within tolerance is active — the paper skips events already in
// an active correlation list.
func (e *Engine) spawn(event int, loc topology.Location, tick int) (checks int) {
	for _, c := range e.firstEvents[event] {
		checks++
		dup := false
		for _, in := range e.active {
			if in.chain == c && abs(in.startTick-tick) <= e.cfg.Tolerance {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		in := &instance{
			chain:     c,
			startTick: tick,
			matched:   make([]bool, len(c.Items)),
			trigger:   loc,
		}
		in.matched[0] = true
		in.nMatched = 1
		e.active = append(e.active, in)
	}
	return checks
}

// advance marks items of active instances matched by an outlier of event
// at tick. Fired instances keep watching for their terminal item: its
// arrival confirms the chain and feeds the adaptive window tracker.
func (e *Engine) advance(event, tick int) (checks int) {
	refs := e.byEvent[event]
	if len(refs) == 0 {
		return 0
	}
	for _, in := range e.active {
		last := in.chain.Size() - 1
		for idx, it := range in.chain.Items {
			if it.Event != event || in.matched[idx] {
				continue
			}
			if in.fired && idx != last {
				continue
			}
			checks++
			if abs(in.startTick+it.Delay-tick) <= sig.DelayTolerance(it.Delay, e.cfg.Tolerance) {
				in.matched[idx] = true
				in.nMatched++
				if idx == last {
					e.confirm(in.chain.Key(), tick-in.startTick)
				}
			}
		}
	}
	return checks
}

// confirm records one observed trigger-to-terminal span for a chain.
func (e *Engine) confirm(key string, span int) {
	tr, ok := e.spans[key]
	if !ok {
		tr = &spanTracker{
			q10: stats.NewStreamingQuantile(0.1),
			q90: stats.NewStreamingQuantile(0.9),
		}
		e.spans[key] = tr
	}
	tr.q10.Add(float64(span))
	tr.q90.Add(float64(span))
	tr.n++
}

// required returns how many items must match before a chain fires: pairs
// fire on their trigger, longer chains once two events have confirmed the
// pattern. Firing early preserves the long visible windows the chains were
// mined for (a node-card sequence must predict ~45 minutes out, not after
// its last warning); the second event is what buys the hybrid method its
// precision edge over single-event pair triggers.
func required(size int) int {
	if size <= 2 {
		return 1
	}
	return 2
}

// fireAndExpire emits predictions from complete prefixes and drops
// instances whose window has passed.
func (e *Engine) fireAndExpire(tick int, tickEnd time.Time, cost time.Duration, res *Result) {
	kept := e.active[:0]
	for _, in := range e.active {
		span := in.chain.Span()
		if !in.fired && in.nMatched >= required(in.chain.Size()) {
			in.fired = true
			expected := tickEnd.Add(time.Duration(in.startTick+span-tick-1) * e.cfg.Step)
			issued := tickEnd.Add(cost)
			scope := topology.ScopeNode
			if e.cfg.UseLocation && e.profiles != nil {
				if p, ok := e.profiles[in.chain.Key()]; ok {
					scope = p.PredictScope()
				}
			}
			earlyTicks, lateTicks := e.windowTicks(in.chain.Key(), span)
			tickOf := func(endTick int) time.Time {
				return tickEnd.Add(time.Duration(in.startTick+endTick-tick-1) * e.cfg.Step)
			}
			pred := Prediction{
				TriggeredAt:      tickEnd,
				IssuedAt:         issued,
				ExpectedAt:       expected,
				ExpectedEarliest: tickOf(earlyTicks),
				ExpectedLatest:   tickOf(lateTicks),
				Lead:             expected.Sub(issued),
				AnalysisTime:     cost,
				Event:            in.chain.Last().Event,
				ChainKey:         in.chain.Key(),
				ChainSize:        in.chain.Size(),
				Trigger:          in.trigger,
				Scope:            scope,
				Severity:         e.model.Severity[in.chain.Last().Event],
			}
			if pred.Late() {
				res.Stats.LatePreds++
			}
			res.Predictions = append(res.Predictions, pred)
			res.Stats.ChainsUsed[in.chain.Key()]++
		}
		// Fired instances stay until expiry so the terminal event can
		// confirm the chain and feed the adaptive window.
		if tick <= in.startTick+span+sig.DelayTolerance(span, e.cfg.Tolerance) {
			kept = append(kept, in)
		}
	}
	e.active = kept
}

// windowTicks returns the forecast window bounds in ticks from the
// instance start: the chain's adaptive quantiles once enough occurrences
// confirmed, the static quarter-span tolerance before that.
func (e *Engine) windowTicks(key string, span int) (early, late int) {
	if tr, ok := e.spans[key]; ok && tr.n >= minConfirmations {
		return int(tr.q10.Value()), int(tr.q90.Value()) + 1
	}
	tol := sig.DelayTolerance(span, e.cfg.Tolerance)
	return span - tol, span + tol
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SortHits orders outlier hits by event id (insertion sort; outlier sets
// per tick are tiny). Hits within one tick never share an event id, so
// the order is total and matching is deterministic.
//
//elsa:hotpath
func SortHits(hits []Hit) {
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].Event < hits[j-1].Event; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
}
