package predict

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
)

// streamPipeline trains a model and returns engine inputs for streaming
// comparison tests.
func streamPipeline(t *testing.T, seed int64) (*correlate.Model, map[string]*location.Profile, *gen.Result, time.Time) {
	t.Helper()
	total := 6 * 24 * time.Hour
	cut := t0.Add(3 * 24 * time.Hour)
	res := gen.New(gen.BlueGeneL(), seed).Generate(t0, total)
	org := helo.New(0)
	org.Assign(res.Records)
	train, _, _ := res.Split(cut)
	model := correlate.Train(train, t0, cut, correlate.Hybrid, correlate.DefaultConfig())
	profiles := location.Extract(train, model.Chains, t0, model.Step, 1)
	return model, profiles, res, cut
}

func TestStreamMatchesBatch(t *testing.T) {
	model, profiles, res, cut := streamPipeline(t, 401)
	_, test, _ := res.Split(cut)

	batch := NewEngine(model, profiles, DefaultConfig()).Run(test, cut, res.End)

	stream := NewStream(NewEngine(model, profiles, DefaultConfig()), cut)
	var streamed []Prediction
	for _, r := range test {
		streamed = append(streamed, stream.Feed(r)...)
	}
	streamed = append(streamed, stream.AdvanceTo(res.End)...)
	final := stream.Close()

	if len(streamed) != len(batch.Predictions) {
		t.Fatalf("stream emitted %d predictions, batch %d", len(streamed), len(batch.Predictions))
	}
	for i := range streamed {
		if streamed[i] != batch.Predictions[i] {
			t.Fatalf("prediction %d differs:\nstream %+v\nbatch  %+v", i, streamed[i], batch.Predictions[i])
		}
	}
	if final.Stats.Messages != batch.Stats.Messages {
		t.Errorf("message counts differ: %d vs %d", final.Stats.Messages, batch.Stats.Messages)
	}
	if len(final.Stats.ChainsUsed) != len(batch.Stats.ChainsUsed) {
		t.Errorf("chains used differ: %d vs %d", len(final.Stats.ChainsUsed), len(batch.Stats.ChainsUsed))
	}
}

func TestStreamIncrementalDelivery(t *testing.T) {
	model, profiles, res, cut := streamPipeline(t, 402)
	_, test, _ := res.Split(cut)
	stream := NewStream(NewEngine(model, profiles, DefaultConfig()), cut)

	sawMidRun := false
	half := len(test) / 2
	for i, r := range test {
		if preds := stream.Feed(r); len(preds) > 0 && i < half {
			sawMidRun = true
		}
	}
	stream.Close()
	if !sawMidRun {
		t.Error("no prediction delivered before the stream ended")
	}
}

func TestStreamDropsStragglers(t *testing.T) {
	model, profiles, _, _ := streamPipeline(t, 403)
	stream := NewStream(NewEngine(model, profiles, DefaultConfig()), t0)
	// Advance well past tick 0, then feed a record from the past.
	stream.AdvanceTo(t0.Add(time.Minute))
	old := gen.New(gen.BlueGeneL(), 1).Generate(t0, time.Minute).Records
	if len(old) == 0 {
		t.Skip("no records generated in a minute")
	}
	r := old[0]
	r.EventID = 0
	stream.Feed(r)
	if got := stream.Result().Stats.LateRecords; got != 1 {
		t.Errorf("LateRecords = %d, want 1", got)
	}
}

func TestStreamClosedIsInert(t *testing.T) {
	model, profiles, _, _ := streamPipeline(t, 404)
	stream := NewStream(NewEngine(model, profiles, DefaultConfig()), t0)
	res1 := stream.Close()
	if preds := stream.AdvanceTo(t0.Add(time.Hour)); preds != nil {
		t.Error("closed stream advanced")
	}
	res2 := stream.Close()
	if res1 != res2 {
		t.Error("Close not idempotent")
	}
}

func TestStreamQuietAdvance(t *testing.T) {
	model, profiles, _, _ := streamPipeline(t, 405)
	stream := NewStream(NewEngine(model, profiles, DefaultConfig()), t0)
	// An hour of silence: ticks must still close.
	stream.AdvanceTo(t0.Add(time.Hour))
	if got := stream.Result().Stats.Ticks; got != 360 {
		t.Errorf("Ticks = %d, want 360", got)
	}
}
