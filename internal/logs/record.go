// Package logs defines the event-log record model the whole pipeline
// consumes, together with a line-oriented text codec and stream utilities.
//
// A record is the tuple the paper's analysis needs from any system log:
// timestamp, severity, location, reporting component and free-form message.
// Both the synthetic generator and (in principle) adapters for real logs
// produce this shape; everything downstream is system-independent.
package logs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/elsa-hpc/elsa/internal/topology"
)

// Severity grades a log record. The ordering matters: the pipeline treats
// Severe and above as error events when deciding which correlation chains
// can predict failures (the paper uses Blue Gene/L's severity field the
// same way).
type Severity int

// Severity levels, mildest first.
const (
	Info Severity = iota
	Warning
	Error
	Severe
	Failure
)

var severityNames = [...]string{"INFO", "WARNING", "ERROR", "SEVERE", "FAILURE"}

// String returns the upper-case level name used in the text format.
func (s Severity) String() string {
	if s < Info || s > Failure {
		return "UNKNOWN"
	}
	return severityNames[s]
}

// ParseSeverity decodes a severity name (case-insensitive). FATAL is
// accepted as an alias for FAILURE since real BG/L logs use both.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INFO":
		return Info, nil
	case "WARNING", "WARN":
		return Warning, nil
	case "ERROR":
		return Error, nil
	case "SEVERE":
		return Severe, nil
	case "FAILURE", "FATAL":
		return Failure, nil
	default:
		return Info, fmt.Errorf("logs: unknown severity %q", s)
	}
}

// IsError reports whether the severity indicates a problem (Severe or
// worse). Info and Warning records are symptoms at most.
func (s Severity) IsError() bool { return s >= Severe }

// Record is one log line after parsing.
type Record struct {
	Time      time.Time
	Severity  Severity
	Location  topology.Location
	Component string // reporting subsystem, e.g. KERNEL, MMCS, LINKCARD
	Message   string // free-form message body

	// EventID is the template id assigned by the HELO stage; -1 before
	// template matching has run.
	EventID int
}

// String renders the record in the canonical one-line text format:
//
//	RFC3339Nano SEVERITY LOCATION COMPONENT message...
func (r Record) String() string {
	loc := r.Location.String()
	comp := r.Component
	if comp == "" {
		comp = "-"
	}
	return fmt.Sprintf("%s %s %s %s %s",
		r.Time.UTC().Format(time.RFC3339Nano), r.Severity, loc, comp, r.Message)
}

// ParseRecord decodes one canonical text line. EventID is set to -1.
func ParseRecord(line string) (Record, error) {
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 5)
	if len(parts) < 5 {
		return Record{}, fmt.Errorf("logs: short record %q", line)
	}
	ts, err := time.Parse(time.RFC3339Nano, parts[0])
	if err != nil {
		return Record{}, fmt.Errorf("logs: bad timestamp in %q: %v", line, err)
	}
	sev, err := ParseSeverity(parts[1])
	if err != nil {
		return Record{}, fmt.Errorf("logs: %v in %q", err, line)
	}
	loc, err := topology.Parse(parts[2])
	if err != nil {
		return Record{}, fmt.Errorf("logs: %v in %q", err, line)
	}
	comp := parts[3]
	if comp == "-" {
		comp = ""
	}
	return Record{
		Time:      ts,
		Severity:  sev,
		Location:  loc,
		Component: comp,
		Message:   parts[4],
		EventID:   -1,
	}, nil
}

// SortByTime sorts records chronologically (stable, so simultaneous
// records keep generation order).
func SortByTime(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
}

// Window returns the sub-slice of time-sorted recs with Time in
// [from, to). It assumes recs is sorted by time.
func Window(recs []Record, from, to time.Time) []Record {
	lo := sort.Search(len(recs), func(i int) bool { return !recs[i].Time.Before(from) })
	hi := sort.Search(len(recs), func(i int) bool { return !recs[i].Time.Before(to) })
	return recs[lo:hi]
}

// FilterSeverity returns the records with severity >= min, preserving
// order.
func FilterSeverity(recs []Record, min Severity) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.Severity >= min {
			out = append(out, r)
		}
	}
	return out
}

// CountBySeverity tallies records per severity level.
func CountBySeverity(recs []Record) map[Severity]int {
	m := make(map[Severity]int)
	for _, r := range recs {
		m[r.Severity]++
	}
	return m
}

// Span returns the first and last timestamps in time-sorted recs, or zero
// times for an empty slice.
func Span(recs []Record) (first, last time.Time) {
	if len(recs) == 0 {
		return time.Time{}, time.Time{}
	}
	return recs[0].Time, recs[len(recs)-1].Time
}
