package logs

import "io"

// RecordSource is a pull-based record iterator. The streaming pipeline
// consumes sources instead of slices, so callers never need the whole
// log in memory: a source may wrap an in-memory batch (replay), a file
// reader, a network tail, or a generator.
//
// Next returns the next record and true, or the zero Record and false
// once the source is exhausted. After Next returns false, Err reports
// the error that ended the stream (nil on clean end-of-input).
type RecordSource interface {
	Next() (Record, bool)
	Err() error
}

// SliceSource replays an in-memory slice of records. It is how the
// batch prediction path drives the same streaming pipeline the online
// monitor runs.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource returns a source over recs. The slice is not copied;
// callers must not mutate it while the source is being drained.
func NewSliceSource(recs []Record) *SliceSource {
	return &SliceSource{recs: recs}
}

// Next returns the next record in slice order.
func (s *SliceSource) Next() (Record, bool) {
	if s.i >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// Err always returns nil: a slice cannot fail mid-stream.
func (s *SliceSource) Err() error { return nil }

// Remaining returns how many records have not been pulled yet.
func (s *SliceSource) Remaining() int { return len(s.recs) - s.i }

// ReaderSource lazily decodes canonical text records from an io.Reader,
// one line per Next call. Malformed lines end the stream with the
// decoding error in Err; use a tolerant wrapper if drops are preferred.
type ReaderSource struct {
	r   *Reader
	err error
}

// NewReaderSource wraps r in a lazy record source.
func NewReaderSource(r io.Reader) *ReaderSource {
	return &ReaderSource{r: NewReader(r)}
}

// Next decodes and returns the next record.
func (s *ReaderSource) Next() (Record, bool) {
	if s.err != nil {
		return Record{}, false
	}
	rec, err := s.r.Next()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return Record{}, false
	}
	return rec, true
}

// Err returns the error that ended the stream, or nil at clean EOF.
func (s *ReaderSource) Err() error { return s.err }

// FuncSource adapts a pull function to a RecordSource; useful for
// adapters and tests.
type FuncSource struct {
	fn  func() (Record, bool, error)
	err error
}

// NewFuncSource wraps fn. fn is called once per Next; a non-nil error
// ends the stream and surfaces via Err. An error returned together with
// a final record (ok true) does not drop that record: it is delivered
// first and the stream ends on the following Next — the
// record-then-error ordering io.Reader implementations use.
func NewFuncSource(fn func() (Record, bool, error)) *FuncSource {
	return &FuncSource{fn: fn}
}

// Next pulls the next record from the wrapped function.
func (s *FuncSource) Next() (Record, bool) {
	if s.err != nil {
		return Record{}, false
	}
	rec, ok, err := s.fn()
	if err != nil {
		s.err = err
		if ok {
			return rec, true
		}
		return Record{}, false
	}
	return rec, ok
}

// Err returns the error that ended the stream, if any.
func (s *FuncSource) Err() error { return s.err }

// Drain pulls every remaining record from src into a slice, returning
// the source's terminal error (nil on clean end).
func Drain(src RecordSource) ([]Record, error) {
	var out []Record
	for {
		rec, ok := src.Next()
		if !ok {
			return out, src.Err()
		}
		out = append(out, rec)
	}
}
