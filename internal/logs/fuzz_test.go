package logs

import (
	"testing"
)

// FuzzParseRecord checks the canonical-codec invariant: any line that
// parses must re-encode to a line that parses to the same record, and no
// input may panic.
func FuzzParseRecord(f *testing.F) {
	f.Add("2006-07-01T12:00:00Z SEVERE R00-M0-N0 KERNEL some message body")
	f.Add("2006-07-01T12:00:00.123456789Z INFO SYSTEM - hello")
	f.Add("2006-07-01T12:00:00Z FAILURE tg-c042 NFS rpc: bad tcp reclen 9 (non-terminal)")
	f.Add("garbage")
	f.Add("")
	f.Add("2006-07-01T12:00:00Z BOGUS R00 X msg")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		back, err := ParseRecord(rec.String())
		if err != nil {
			t.Fatalf("re-encode failed: %v (from %q)", err, line)
		}
		if back != rec {
			t.Fatalf("round trip changed record: %+v vs %+v", back, rec)
		}
	})
}
