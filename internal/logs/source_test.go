package logs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func sourceRecords(n int) []Record {
	base := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Time:     base.Add(time.Duration(i) * time.Second),
			Severity: Info,
			Message:  "heartbeat",
			EventID:  -1,
		}
	}
	return out
}

func TestSliceSourceDrains(t *testing.T) {
	recs := sourceRecords(5)
	src := NewSliceSource(recs)
	got, err := Drain(src)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("drained %d records, want %d", len(got), len(recs))
	}
	if src.Remaining() != 0 {
		t.Errorf("Remaining = %d after drain", src.Remaining())
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted source yielded a record")
	}
}

func TestReaderSourceDecodes(t *testing.T) {
	recs := sourceRecords(3)
	var sb strings.Builder
	if err := WriteAll(&sb, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Drain(NewReaderSource(strings.NewReader(sb.String())))
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if !got[i].Time.Equal(recs[i].Time) || got[i].Message != recs[i].Message {
			t.Errorf("record %d = %v, want %v", i, got[i], recs[i])
		}
	}
}

func TestReaderSourceSurfacesDecodeError(t *testing.T) {
	src := NewReaderSource(strings.NewReader("not a record\n"))
	if _, ok := src.Next(); ok {
		t.Fatal("malformed line yielded a record")
	}
	if src.Err() == nil {
		t.Fatal("Err = nil after malformed line")
	}
	// The source stays ended.
	if _, ok := src.Next(); ok {
		t.Error("source continued after error")
	}
}

func TestFuncSource(t *testing.T) {
	recs := sourceRecords(2)
	i := 0
	wantErr := errors.New("tail broke")
	src := NewFuncSource(func() (Record, bool, error) {
		if i < len(recs) {
			r := recs[i]
			i++
			return r, true, nil
		}
		return Record{}, false, wantErr
	})
	got, err := Drain(src)
	if len(got) != 2 {
		t.Fatalf("drained %d records, want 2", len(got))
	}
	if !errors.Is(err, wantErr) {
		t.Fatalf("Err = %v, want %v", err, wantErr)
	}
}

// TestFuncSourceRecordThenError pins the record-then-error ordering: an
// error arriving together with the final record (ok true) must deliver
// that record first and end the stream on the following Next — not drop
// the record, as backends that learn of a failure only while handing
// over their last buffered record depend on.
func TestFuncSourceRecordThenError(t *testing.T) {
	recs := sourceRecords(3)
	i := 0
	wantErr := errors.New("socket reset after final frame")
	src := NewFuncSource(func() (Record, bool, error) {
		r := recs[i]
		i++
		if i == len(recs) {
			return r, true, wantErr // final record and its error together
		}
		return r, true, nil
	})
	got, err := Drain(src)
	if len(got) != len(recs) {
		t.Fatalf("Drain delivered %d records, want %d (final record dropped?)", len(got), len(recs))
	}
	if got[len(got)-1].Message != recs[len(recs)-1].Message {
		t.Error("final record differs")
	}
	if !errors.Is(err, wantErr) {
		t.Fatalf("Drain error = %v, want %v", err, wantErr)
	}
	// The error is sticky: the stream stays ended afterwards.
	if _, ok := src.Next(); ok {
		t.Error("source continued past the delivered error")
	}
	if !errors.Is(src.Err(), wantErr) {
		t.Errorf("Err = %v, want %v", src.Err(), wantErr)
	}
}
