package logs

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	recs := []Record{
		rec(0, Info, "R00-M0-N0", "idoproxydb has been started"),
		rec(10*time.Second, Severe, "R00-M0-N0-C:J02-U01", "L3 major internal error"),
		rec(time.Minute, Failure, "tg-c042", "rpc: bad tcp reclen 1234 (non-terminal)"),
	}
	var sb strings.Builder
	if err := WriteAll(&sb, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, back[i], recs[i])
		}
	}
}

func TestReaderSkipsCommentsAndBlank(t *testing.T) {
	input := "# header comment\n\n" + rec(0, Info, "R00", "msg body here").String() + "\n"
	back, err := ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("got %d records, want 1", len(back))
	}
}

func TestReaderReportsLineNumber(t *testing.T) {
	input := rec(0, Info, "R00", "ok line").String() + "\nbroken line\n"
	r := NewReader(strings.NewReader(input))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 annotation", err)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&failWriter{after: 1})
	for i := 0; i < 10000; i++ {
		_ = w.Write(rec(0, Info, "R00", strings.Repeat("x", 100)))
	}
	if err := w.Flush(); err == nil {
		t.Error("expected sticky write error")
	}
}

func TestWriterCount(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	_ = w.Write(rec(0, Info, "R00", "a"))
	_ = w.Write(rec(0, Info, "R00", "b"))
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}
}
