package logs

import (
	"bufio"
	"fmt"
	"io"
)

// Writer streams records to an io.Writer in the canonical text format.
type Writer struct {
	bw  *bufio.Writer
	n   int
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriterSize(w, 1<<16)} }

// Write appends one record. Errors are sticky and re-reported by Flush.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.bw.WriteString(r.String()); err != nil {
		w.err = err
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Flush drains buffered output and returns any sticky error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Reader streams records from an io.Reader, one per line. Blank lines and
// lines starting with '#' are skipped.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r. Lines up to 1 MiB are supported.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// Next returns the next record, io.EOF at end of stream, or a decoding
// error annotated with the line number.
func (r *Reader) Next() (Record, error) {
	for r.sc.Scan() {
		r.line++
		line := r.sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll drains the stream into a slice, stopping at the first error
// other than EOF.
func ReadAll(r io.Reader) ([]Record, error) {
	rd := NewReader(r)
	var out []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// WriteAll writes every record and flushes.
func WriteAll(w io.Writer, recs []Record) error {
	lw := NewWriter(w)
	for _, r := range recs {
		if err := lw.Write(r); err != nil {
			return err
		}
	}
	return lw.Flush()
}
