package logs

import (
	"strings"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 7, 1, 12, 0, 0, 0, time.UTC)

func rec(offset time.Duration, sev Severity, loc, msg string) Record {
	return Record{
		Time:      t0.Add(offset),
		Severity:  sev,
		Location:  topology.MustParse(loc),
		Component: "KERNEL",
		Message:   msg,
		EventID:   -1,
	}
}

func TestSeverityString(t *testing.T) {
	cases := map[Severity]string{
		Info: "INFO", Warning: "WARNING", Error: "ERROR",
		Severe: "SEVERE", Failure: "FAILURE", Severity(42): "UNKNOWN",
	}
	for sev, want := range cases {
		if got := sev.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", sev, got, want)
		}
	}
}

func TestParseSeverity(t *testing.T) {
	for in, want := range map[string]Severity{
		"INFO": Info, "warning": Warning, "WARN": Warning,
		"Error": Error, "SEVERE": Severe, "FAILURE": Failure, "FATAL": Failure,
	} {
		got, err := ParseSeverity(in)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSeverity("bogus"); err == nil {
		t.Error("expected error for unknown severity")
	}
}

func TestSeverityIsError(t *testing.T) {
	if Info.IsError() || Warning.IsError() || Error.IsError() {
		t.Error("sub-severe levels should not be errors")
	}
	if !Severe.IsError() || !Failure.IsError() {
		t.Error("severe and failure should be errors")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := rec(0, Severe, "R00-M0-N0-C:J02-U01", "instruction cache parity error corrected")
	line := r.String()
	back, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	back.EventID = r.EventID
	if back != r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, r)
	}
}

func TestRecordRoundTripEmptyComponent(t *testing.T) {
	r := Record{Time: t0, Severity: Info, Location: topology.System, Message: "hello world", EventID: -1}
	back, err := ParseRecord(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Component != "" || back.Message != "hello world" {
		t.Errorf("got %+v", back)
	}
}

func TestParseRecordErrors(t *testing.T) {
	for _, line := range []string{
		"too short",
		"notatime SEVERE R00 KERNEL msg",
		"2006-07-01T12:00:00Z BOGUS R00 KERNEL msg",
		"2006-07-01T12:00:00Z SEVERE R0x- KERNEL msg",
	} {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q): expected error", line)
		}
	}
}

func TestSortAndWindow(t *testing.T) {
	recs := []Record{
		rec(30*time.Second, Info, "R00", "c"),
		rec(0, Info, "R00", "a"),
		rec(10*time.Second, Info, "R00", "b"),
	}
	SortByTime(recs)
	if recs[0].Message != "a" || recs[2].Message != "c" {
		t.Fatalf("sort order wrong: %v", recs)
	}
	w := Window(recs, t0.Add(5*time.Second), t0.Add(30*time.Second))
	if len(w) != 1 || w[0].Message != "b" {
		t.Errorf("Window = %v", w)
	}
	if got := Window(recs, t0.Add(time.Hour), t0.Add(2*time.Hour)); len(got) != 0 {
		t.Errorf("empty window returned %v", got)
	}
}

func TestSortStable(t *testing.T) {
	recs := []Record{
		rec(0, Info, "R00", "first"),
		rec(0, Info, "R00", "second"),
	}
	SortByTime(recs)
	if recs[0].Message != "first" {
		t.Error("stable sort violated for simultaneous records")
	}
}

func TestFilterAndCount(t *testing.T) {
	recs := []Record{
		rec(0, Info, "R00", "a"),
		rec(1, Severe, "R00", "b"),
		rec(2, Failure, "R00", "c"),
		rec(3, Warning, "R00", "d"),
	}
	errs := FilterSeverity(recs, Severe)
	if len(errs) != 2 {
		t.Errorf("FilterSeverity = %d records", len(errs))
	}
	counts := CountBySeverity(recs)
	if counts[Info] != 1 || counts[Severe] != 1 || counts[Failure] != 1 || counts[Warning] != 1 {
		t.Errorf("CountBySeverity = %v", counts)
	}
}

func TestSpan(t *testing.T) {
	first, last := Span(nil)
	if !first.IsZero() || !last.IsZero() {
		t.Error("empty span should be zero times")
	}
	recs := []Record{rec(0, Info, "R00", "a"), rec(time.Minute, Info, "R00", "b")}
	first, last = Span(recs)
	if !first.Equal(t0) || !last.Equal(t0.Add(time.Minute)) {
		t.Errorf("Span = %v, %v", first, last)
	}
}

func TestRecordStringFormat(t *testing.T) {
	r := rec(0, Failure, "R22-M0-N0-I:J18-U01", "rpc: bad tcp reclen")
	s := r.String()
	if !strings.HasPrefix(s, "2006-07-01T12:00:00Z FAILURE R22-M0-N0-I:J18-U01 KERNEL ") {
		t.Errorf("String = %q", s)
	}
}
