package logs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/elsa-hpc/elsa/internal/topology"
)

// randRecord builds a random but valid record (printable single-space
// message, valid location).
func randRecord(r *rand.Rand) Record {
	words := []string{"error", "detected", "in", "module", "d+", "card", "restart",
		"timeout", "0xdead", "l3", "ddr", "rpc:", "(non-terminal)", "*"}
	n := 1 + r.Intn(8)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = words[r.Intn(len(words))]
	}
	m := topology.BlueGeneL()
	var loc topology.Location
	switch r.Intn(4) {
	case 0:
		loc = topology.System
	case 1:
		loc = m.RandomNode(r)
	case 2:
		loc = m.RandomNodeCard(r)
	default:
		loc = topology.FlatNode("tg-c" + string(rune('0'+r.Intn(10))))
	}
	comps := []string{"KERNEL", "MMCS", "CIODB", "", "LINKCARD"}
	return Record{
		Time:      time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(r.Int63n(int64(30 * 24 * time.Hour)))),
		Severity:  Severity(r.Intn(5)),
		Location:  loc,
		Component: comps[r.Intn(len(comps))],
		Message:   strings.Join(parts, " "),
		EventID:   -1,
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		rec := randRecord(r)
		back, err := ParseRecord(rec.String())
		if err != nil {
			return false
		}
		return back == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestStreamRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := r.Intn(20)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randRecord(r)
		}
		var sb strings.Builder
		if err := WriteAll(&sb, recs); err != nil {
			return false
		}
		back, err := ReadAll(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if len(back) != len(recs) {
			return false
		}
		for i := range recs {
			if back[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestWindowPartitionProperty(t *testing.T) {
	// Window over any split point partitions a sorted slice.
	rng := rand.New(rand.NewSource(103))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 1 + r.Intn(50)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randRecord(r)
		}
		SortByTime(recs)
		first, last := Span(recs)
		mid := first.Add(time.Duration(r.Int63n(int64(last.Sub(first)) + 1)))
		left := Window(recs, first, mid)
		right := Window(recs, mid, last.Add(time.Nanosecond))
		return len(left)+len(right) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}
