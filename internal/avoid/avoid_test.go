package avoid

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/jobs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

func job(id int, start time.Time, dur time.Duration, nodes ...string) jobs.Job {
	j := jobs.Job{ID: id, Start: start, End: start.Add(dur)}
	for _, n := range nodes {
		j.Nodes = append(j.Nodes, topology.MustParse(n))
	}
	return j
}

func pred(lead time.Duration, trigger string, scope topology.Scope) predict.Prediction {
	issued := t0.Add(time.Hour)
	return predict.Prediction{
		IssuedAt:   issued,
		ExpectedAt: issued.Add(lead),
		Lead:       lead,
		Trigger:    topology.MustParse(trigger),
		Scope:      scope,
	}
}

func TestAdviseMigrateWithLongWindow(t *testing.T) {
	m := topology.BlueGeneL()
	active := []jobs.Job{
		job(0, t0, 10*time.Hour, "R00-M0-N0-C:J00-U00", "R00-M0-N0-C:J01-U00"),
		job(1, t0, 10*time.Hour, "R50-M1-N3-C:J05-U00"),
	}
	p := pred(45*time.Minute, "R00-M0-N0", topology.ScopeNodeCard)
	rec := Advise(m, active, p, DefaultConfig())
	if rec.Action != Migrate {
		t.Fatalf("Action = %v, want migrate", rec.Action)
	}
	if len(rec.Affected) != 1 || rec.Affected[0].ID != 0 {
		t.Errorf("Affected = %+v", rec.Affected)
	}
	if len(rec.Targets) < 2 {
		t.Fatalf("targets = %d, want >= 2", len(rec.Targets))
	}
	area := p.Trigger.Truncate(p.Scope)
	for _, tgt := range rec.Targets {
		if area.Contains(tgt) {
			t.Errorf("target %v inside blast radius", tgt)
		}
		for _, j := range active {
			for _, n := range j.Nodes {
				if n == tgt {
					t.Errorf("target %v is busy", tgt)
				}
			}
		}
	}
	if rec.SavedNodeHours <= 0 {
		t.Error("no node-hours at stake recorded")
	}
}

func TestAdviseCheckpointWithShortWindow(t *testing.T) {
	m := topology.BlueGeneL()
	active := []jobs.Job{job(0, t0, 10*time.Hour, "R00-M0-N0-C:J00-U00")}
	// 90 seconds: above checkpoint cost (75 s with safety), below
	// migration (5 min).
	p := pred(90*time.Second, "R00-M0-N0-C:J00-U00", topology.ScopeNode)
	rec := Advise(m, active, p, DefaultConfig())
	if rec.Action != CheckpointOnly {
		t.Fatalf("Action = %v, want checkpoint", rec.Action)
	}
	if len(rec.Targets) != 0 {
		t.Error("checkpoint recommendation should have no targets")
	}
}

func TestAdviseNoActionWhenTooLate(t *testing.T) {
	m := topology.BlueGeneL()
	active := []jobs.Job{job(0, t0, 10*time.Hour, "R00-M0-N0-C:J00-U00")}
	p := pred(10*time.Second, "R00-M0-N0-C:J00-U00", topology.ScopeNode)
	rec := Advise(m, active, p, DefaultConfig())
	if rec.Action != NoAction {
		t.Fatalf("Action = %v, want no-action", rec.Action)
	}
}

func TestAdviseNoAffectedJobs(t *testing.T) {
	m := topology.BlueGeneL()
	active := []jobs.Job{job(0, t0, 10*time.Hour, "R63-M1-N15-C:J31-U00")}
	p := pred(time.Hour, "R00-M0-N0", topology.ScopeNodeCard)
	rec := Advise(m, active, p, DefaultConfig())
	if rec.Action != NoAction || len(rec.Affected) != 0 {
		t.Fatalf("rec = %+v, want no-action/empty", rec)
	}
}

func TestAdviseSystemWidePredictionCannotMigrate(t *testing.T) {
	// A system-scope prediction leaves nowhere to migrate to: with a
	// long window the advisor must still fall back to checkpointing.
	m := topology.BlueGeneL()
	active := []jobs.Job{job(0, t0, 10*time.Hour, "R00-M0-N0-C:J00-U00")}
	p := pred(time.Hour, "SYSTEM", topology.ScopeSystem)
	rec := Advise(m, active, p, DefaultConfig())
	if rec.Action != CheckpointOnly {
		t.Fatalf("Action = %v, want checkpoint fallback", rec.Action)
	}
}

func TestActionString(t *testing.T) {
	if NoAction.String() != "no-action" || CheckpointOnly.String() != "checkpoint" ||
		Migrate.String() != "migrate" || Action(9).String() != "invalid" {
		t.Error("action names wrong")
	}
}

func TestRecommendationString(t *testing.T) {
	rec := Recommendation{Action: Migrate, SavedNodeHours: 12.5}
	if s := rec.String(); s == "" {
		t.Error("empty rendering")
	}
}
