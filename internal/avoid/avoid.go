// Package avoid turns predictions into failure-avoidance actions — the
// consumer side the paper motivates: "For checkpointing strategies,
// prediction with location information will allow the system to
// checkpoint data only on the failed components. For migration, only the
// tasks on failure prone components should be migrated." Given the active
// job set and a prediction, the advisor decides between migrating the
// affected tasks, checkpointing them in place, or doing nothing when the
// window is too short, and finds migration targets outside the predicted
// blast radius.
package avoid

import (
	"fmt"
	"time"

	"github.com/elsa-hpc/elsa/internal/jobs"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Action is the avoidance measure recommended for one prediction.
type Action int

// Possible recommendations.
const (
	// NoAction: the visible window is too short for any measure.
	NoAction Action = iota
	// CheckpointOnly: enough time to checkpoint the affected tasks
	// locally, not enough (or no room) to migrate them.
	CheckpointOnly
	// Migrate: enough time and capacity to move the affected tasks off
	// the failure-prone components.
	Migrate
)

// String names the action.
func (a Action) String() string {
	switch a {
	case NoAction:
		return "no-action"
	case CheckpointOnly:
		return "checkpoint"
	case Migrate:
		return "migrate"
	default:
		return "invalid"
	}
}

// Config carries the cost model of the avoidance measures.
type Config struct {
	// MigrationCost is the time to live-migrate one job's processes
	// (Wang et al.'s proactive process-level migration is in minutes).
	MigrationCost time.Duration
	// CheckpointCost is the time to checkpoint one job locally.
	CheckpointCost time.Duration
	// SafetyFactor scales the required window over the raw action cost.
	SafetyFactor float64
}

// DefaultConfig returns costs consistent with the paper's discussion:
// checkpointing a medium job in about a minute, migration a few times
// that.
func DefaultConfig() Config {
	return Config{
		MigrationCost:  4 * time.Minute,
		CheckpointCost: time.Minute,
		SafetyFactor:   1.25,
	}
}

// Recommendation is the advisor's output for one prediction.
type Recommendation struct {
	Action   Action
	Affected []jobs.Job // jobs with nodes inside the predicted scope
	// Targets are free nodes outside the blast radius, one per affected
	// node, when Action == Migrate.
	Targets []topology.Location
	// SavedNodeHours estimates the work protected by acting (affected
	// node-hours of progress since the jobs' last checkpoints are not
	// known here, so this is the remaining scheduled work).
	SavedNodeHours float64
}

// String renders the recommendation.
func (r Recommendation) String() string {
	return fmt.Sprintf("%s: %d jobs affected, %d targets, %.1f node-hours at stake",
		r.Action, len(r.Affected), len(r.Targets), r.SavedNodeHours)
}

// Advise decides the avoidance measure for one prediction given the
// currently active jobs.
func Advise(m topology.Machine, active []jobs.Job, pred predict.Prediction, cfg Config) Recommendation {
	area := pred.Trigger.Truncate(pred.Scope)
	var rec Recommendation

	// Affected jobs and their nodes inside the blast radius.
	affectedNodes := 0
	busy := make(map[topology.Location]bool)
	for i := range active {
		j := &active[i]
		hit := false
		for _, n := range j.Nodes {
			busy[n] = true
			if area.Contains(n) {
				hit = true
				affectedNodes++
			}
		}
		if hit {
			rec.Affected = append(rec.Affected, *j)
			remaining := j.End.Sub(pred.ExpectedAt)
			if remaining > 0 {
				rec.SavedNodeHours += float64(len(j.Nodes)) * remaining.Hours()
			}
		}
	}
	if len(rec.Affected) == 0 {
		rec.Action = NoAction
		return rec
	}

	window := pred.Lead
	needMigrate := time.Duration(float64(cfg.MigrationCost) * cfg.SafetyFactor)
	needCkpt := time.Duration(float64(cfg.CheckpointCost) * cfg.SafetyFactor)

	if window >= needMigrate {
		if targets := freeNodesOutside(m, area, busy, affectedNodes); len(targets) >= affectedNodes {
			rec.Action = Migrate
			rec.Targets = targets
			return rec
		}
	}
	if window >= needCkpt {
		rec.Action = CheckpointOnly
		return rec
	}
	rec.Action = NoAction
	return rec
}

// freeNodesOutside returns up to want nodes that are idle and outside the
// blast radius, scanning the machine in enumeration order.
func freeNodesOutside(m topology.Machine, area topology.Location, busy map[topology.Location]bool, want int) []topology.Location {
	if want <= 0 {
		return nil
	}
	var out []topology.Location
	n := m.NumNodes()
	for i := 0; i < n && len(out) < want; i++ {
		node := m.NodeByIndex(i)
		if busy[node] || area.Contains(node) {
			continue
		}
		out = append(out, node)
	}
	return out
}
