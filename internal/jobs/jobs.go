// Package jobs adds the application layer the paper's motivation talks
// about: parallel jobs run on the machine, failures kill every job
// touching an affected component, and a failure predictor converts lost
// work into a cheap proactive checkpoint. Simulating this layer turns
// precision/recall into the operators' currency — node-hours — and
// extends the paper's checkpoint analysis (Section VI.B) from one
// application to a whole workload.
package jobs

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/stats"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Job is one parallel application run.
type Job struct {
	ID    int
	Nodes []topology.Location
	Start time.Time
	End   time.Time // scheduled completion
}

// NodeHours returns the job's total reserved node-hours.
func (j *Job) NodeHours() float64 {
	return float64(len(j.Nodes)) * j.End.Sub(j.Start).Hours()
}

// WorkloadConfig shapes the synthetic job mix.
type WorkloadConfig struct {
	ArrivalMean time.Duration // mean gap between job starts
	MeanNodes   int           // typical allocation size
	MeanRuntime time.Duration // typical runtime
	Seed        int64
}

// DefaultWorkload returns a mix reminiscent of the paper's systems
// (NAMD/CM1-class runs: tens of nodes for hours).
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		ArrivalMean: 20 * time.Minute,
		MeanNodes:   32,
		MeanRuntime: 6 * time.Hour,
		Seed:        1,
	}
}

// GenerateWorkload creates jobs over [start, end) on the machine. Node
// allocations are contiguous index ranges, the common case on torus
// machines.
func GenerateWorkload(m topology.Machine, start, end time.Time, cfg WorkloadConfig) []Job {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Job
	t := start
	id := 0
	for {
		t = t.Add(time.Duration(stats.Exponential(rng, cfg.ArrivalMean.Seconds())) * time.Second)
		if !t.Before(end) {
			return out
		}
		// mu = ln(median) keeps the configured means as distribution
		// medians.
		n := int(stats.LogNormal(rng, math.Log(float64(cfg.MeanNodes)), 0.6))
		if n < 1 {
			n = 1
		}
		if n > m.NumNodes()/4 {
			n = m.NumNodes() / 4
		}
		run := time.Duration(stats.LogNormal(rng, math.Log(cfg.MeanRuntime.Seconds()), 0.5)) * time.Second
		jEnd := t.Add(run)
		if jEnd.After(end) {
			jEnd = end
		}
		base := rng.Intn(m.NumNodes() - n)
		nodes := make([]topology.Location, n)
		for i := 0; i < n; i++ {
			nodes[i] = m.NodeByIndex(base + i)
		}
		out = append(out, Job{ID: id, Nodes: nodes, Start: t, End: jEnd})
		id++
	}
}

// ImpactConfig tunes the impact accounting.
type ImpactConfig struct {
	// CheckpointInterval is the periodic checkpoint cadence of every job.
	CheckpointInterval time.Duration
	// CheckpointCost is the time one checkpoint takes.
	CheckpointCost time.Duration
	// Slack extends the prediction match window, as in the evaluator.
	Slack time.Duration
}

// DefaultImpact returns Young-style defaults for a 1-minute checkpoint.
func DefaultImpact() ImpactConfig {
	return ImpactConfig{
		CheckpointInterval: 54 * time.Minute, // sqrt(2*1min*1day)
		CheckpointCost:     time.Minute,
		Slack:              3 * time.Minute,
	}
}

// Outcome is the workload-level impact accounting.
type Outcome struct {
	Jobs           int
	NodeHoursTotal float64

	FailureHits     int // (failure, job) incidences
	LostNoPred      float64
	LostWithPred    float64
	ProactiveSaves  int // incidences neutralised by a timely prediction
	ReductionFactor float64
}

// Simulate accounts the node-hours each failure costs the workload, with
// and without the predictor. An unpredicted hit rolls the job back to its
// last periodic checkpoint (uniformly half an interval on average, but
// computed exactly from the schedule); a hit covered by a correct, timely
// prediction costs only one checkpoint.
func Simulate(jobsList []Job, failures []gen.FailureRecord, preds []predict.Prediction, cfg ImpactConfig) Outcome {
	out := Outcome{Jobs: len(jobsList)}
	for i := range jobsList {
		out.NodeHoursTotal += jobsList[i].NodeHours()
	}
	// Sort predictions by issue time for the coverage scan.
	byIssue := append([]predict.Prediction(nil), preds...)
	sort.Slice(byIssue, func(i, j int) bool { return byIssue[i].IssuedAt.Before(byIssue[j].IssuedAt) })

	for _, f := range failures {
		covered := covers(byIssue, f, cfg)
		for i := range jobsList {
			j := &jobsList[i]
			if f.Time.Before(j.Start) || !f.Time.Before(j.End) {
				continue
			}
			if !touches(j, f) {
				continue
			}
			out.FailureHits++
			// Work since the last periodic checkpoint.
			sinceCkpt := time.Duration(f.Time.Sub(j.Start) % cfg.CheckpointInterval)
			lost := float64(len(j.Nodes)) * sinceCkpt.Hours()
			out.LostNoPred += lost
			if covered {
				out.ProactiveSaves++
				out.LostWithPred += float64(len(j.Nodes)) * cfg.CheckpointCost.Hours()
			} else {
				out.LostWithPred += lost
			}
		}
	}
	if out.LostWithPred > 0 {
		out.ReductionFactor = out.LostNoPred / out.LostWithPred
	}
	return out
}

// covers reports whether any prediction forecast this failure in time to
// checkpoint (lead beyond the checkpoint cost) at a matching location.
func covers(preds []predict.Prediction, f gen.FailureRecord, cfg ImpactConfig) bool {
	for i := range preds {
		p := &preds[i]
		if p.IssuedAt.After(f.Time) {
			break
		}
		if p.Late() || p.Lead <= cfg.CheckpointCost {
			continue
		}
		if f.Time.After(p.ExpectedAt.Add(cfg.Slack)) {
			continue
		}
		area := p.Trigger.Truncate(p.Scope)
		for _, loc := range f.Locations {
			if area.Contains(loc) || loc.Contains(p.Trigger) {
				return true
			}
		}
	}
	return false
}

// touches reports whether a failure's locations intersect the job's
// allocation.
func touches(j *Job, f gen.FailureRecord) bool {
	for _, floc := range f.Locations {
		for _, n := range j.Nodes {
			if floc.Contains(n) || n.Contains(floc) {
				return true
			}
		}
	}
	return false
}
