package jobs

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

func TestGenerateWorkloadShape(t *testing.T) {
	m := topology.BlueGeneL()
	jobsList := GenerateWorkload(m, t0, t0.Add(48*time.Hour), DefaultWorkload())
	if len(jobsList) < 50 {
		t.Fatalf("only %d jobs in 48h", len(jobsList))
	}
	for _, j := range jobsList {
		if len(j.Nodes) < 1 {
			t.Fatal("empty allocation")
		}
		if j.Start.Before(t0) || j.End.After(t0.Add(48*time.Hour)) {
			t.Fatalf("job %d outside window: %v..%v", j.ID, j.Start, j.End)
		}
		if !j.End.After(j.Start) && j.End != j.Start {
			t.Fatalf("job %d negative runtime", j.ID)
		}
		if j.NodeHours() < 0 {
			t.Fatalf("job %d negative node-hours", j.ID)
		}
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	m := topology.BlueGeneL()
	a := GenerateWorkload(m, t0, t0.Add(24*time.Hour), DefaultWorkload())
	b := GenerateWorkload(m, t0, t0.Add(24*time.Hour), DefaultWorkload())
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Start.Equal(b[i].Start) || len(a[i].Nodes) != len(b[i].Nodes) {
			t.Fatalf("job %d differs", i)
		}
	}
}

// fixedJob builds one job over explicit nodes.
func fixedJob(id int, nodes []string, start time.Time, dur time.Duration) Job {
	j := Job{ID: id, Start: start, End: start.Add(dur)}
	for _, n := range nodes {
		j.Nodes = append(j.Nodes, topology.MustParse(n))
	}
	return j
}

func TestSimulateUnpredictedFailureCostsRollback(t *testing.T) {
	cfg := DefaultImpact()
	j := fixedJob(0, []string{"R00-M0-N0-C:J00-U00", "R00-M0-N0-C:J01-U00"}, t0, 10*time.Hour)
	// Failure 30 minutes after the job's last checkpoint boundary.
	f := gen.FailureRecord{
		Time:      t0.Add(cfg.CheckpointInterval + 30*time.Minute),
		Category:  "memory",
		Locations: []topology.Location{topology.MustParse("R00-M0-N0-C:J00-U00")},
	}
	out := Simulate([]Job{j}, []gen.FailureRecord{f}, nil, cfg)
	if out.FailureHits != 1 {
		t.Fatalf("hits = %d", out.FailureHits)
	}
	wantLost := 2 * 0.5 // 2 nodes * 30 minutes
	if diff := out.LostNoPred - wantLost; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("LostNoPred = %v node-hours, want %v", out.LostNoPred, wantLost)
	}
	if out.LostWithPred != out.LostNoPred {
		t.Error("uncovered failure should cost the same with prediction")
	}
	if out.ProactiveSaves != 0 {
		t.Error("no prediction given, yet a save recorded")
	}
}

func TestSimulateCoveredFailureCostsOneCheckpoint(t *testing.T) {
	cfg := DefaultImpact()
	j := fixedJob(0, []string{"R00-M0-N0-C:J00-U00"}, t0, 10*time.Hour)
	failAt := t0.Add(2 * time.Hour)
	f := gen.FailureRecord{
		Time:      failAt,
		Category:  "memory",
		Locations: []topology.Location{topology.MustParse("R00-M0-N0-C:J00-U00")},
	}
	pred := predict.Prediction{
		IssuedAt:   failAt.Add(-5 * time.Minute),
		ExpectedAt: failAt.Add(-time.Minute),
		Lead:       4 * time.Minute,
		Trigger:    topology.MustParse("R00-M0-N0-C:J00-U00"),
		Scope:      topology.ScopeNode,
	}
	out := Simulate([]Job{j}, []gen.FailureRecord{f}, []predict.Prediction{pred}, cfg)
	if out.ProactiveSaves != 1 {
		t.Fatalf("saves = %d", out.ProactiveSaves)
	}
	wantLost := cfg.CheckpointCost.Hours() // one node, one checkpoint
	if diff := out.LostWithPred - wantLost; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("LostWithPred = %v, want %v", out.LostWithPred, wantLost)
	}
	if out.LostNoPred <= out.LostWithPred {
		t.Error("prediction did not reduce loss")
	}
	if out.ReductionFactor <= 1 {
		t.Errorf("ReductionFactor = %v", out.ReductionFactor)
	}
}

func TestSimulateShortLeadCannotSave(t *testing.T) {
	cfg := DefaultImpact()
	j := fixedJob(0, []string{"R00-M0-N0-C:J00-U00"}, t0, 10*time.Hour)
	failAt := t0.Add(2 * time.Hour)
	f := gen.FailureRecord{
		Time:      failAt,
		Category:  "io",
		Locations: []topology.Location{topology.MustParse("R00-M0-N0-C:J00-U00")},
	}
	pred := predict.Prediction{
		IssuedAt:   failAt.Add(-10 * time.Second),
		ExpectedAt: failAt,
		Lead:       10 * time.Second, // below the 1-minute checkpoint cost
		Trigger:    topology.MustParse("R00-M0-N0-C:J00-U00"),
		Scope:      topology.ScopeNode,
	}
	out := Simulate([]Job{j}, []gen.FailureRecord{f}, []predict.Prediction{pred}, cfg)
	if out.ProactiveSaves != 0 {
		t.Error("a lead shorter than the checkpoint cost must not save work")
	}
}

func TestSimulateWrongLocationDoesNotSave(t *testing.T) {
	cfg := DefaultImpact()
	j := fixedJob(0, []string{"R00-M0-N0-C:J00-U00"}, t0, 10*time.Hour)
	failAt := t0.Add(time.Hour)
	f := gen.FailureRecord{
		Time:      failAt,
		Category:  "memory",
		Locations: []topology.Location{topology.MustParse("R00-M0-N0-C:J00-U00")},
	}
	pred := predict.Prediction{
		IssuedAt:   failAt.Add(-10 * time.Minute),
		ExpectedAt: failAt,
		Lead:       10 * time.Minute,
		Trigger:    topology.MustParse("R63-M1-N9-C:J00-U00"), // elsewhere
		Scope:      topology.ScopeNode,
	}
	out := Simulate([]Job{j}, []gen.FailureRecord{f}, []predict.Prediction{pred}, cfg)
	if out.ProactiveSaves != 0 {
		t.Error("wrong-location prediction must not save work")
	}
}

func TestSimulateFailureOutsideJobWindow(t *testing.T) {
	cfg := DefaultImpact()
	j := fixedJob(0, []string{"R00-M0-N0-C:J00-U00"}, t0, time.Hour)
	f := gen.FailureRecord{
		Time:      t0.Add(2 * time.Hour), // after the job finished
		Category:  "memory",
		Locations: []topology.Location{topology.MustParse("R00-M0-N0-C:J00-U00")},
	}
	out := Simulate([]Job{j}, []gen.FailureRecord{f}, nil, cfg)
	if out.FailureHits != 0 {
		t.Error("failure after job end should not hit")
	}
}

func TestSimulateMidplaneFailureHitsJob(t *testing.T) {
	cfg := DefaultImpact()
	j := fixedJob(0, []string{"R05-M1-N3-C:J07-U00"}, t0, 5*time.Hour)
	f := gen.FailureRecord{
		Time:      t0.Add(time.Hour),
		Category:  "power",
		Locations: []topology.Location{topology.MustParse("R05-M1")}, // whole midplane
	}
	out := Simulate([]Job{j}, []gen.FailureRecord{f}, nil, cfg)
	if out.FailureHits != 1 {
		t.Error("midplane-level failure should hit contained job node")
	}
}
