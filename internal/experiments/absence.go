package experiments

import (
	"fmt"
	"time"

	"github.com/elsa-hpc/elsa/internal/absence"
	"github.com/elsa-hpc/elsa/internal/stats"
)

// AbsenceResult evaluates the lack-of-messages detector on the rack-crash
// archetype: a crash mutes the rack's watchdog heartbeats immediately, but
// the first log *message* about it (the environmental monitor noticing)
// only appears minutes later. Occurrence-based correlation is blind here
// (the crash has no precursor events); the absence monitor must win the
// race against the operators' own notice.
type AbsenceResult struct {
	Crashes     int
	Detected    int
	FalseAlerts int

	// DetectionLatency measures alert time minus last heartbeat, in
	// seconds; LeadOverNotice measures how far ahead of the SEVERE
	// "lost contact" log message the alert came (positive = earlier).
	DetectionLatency stats.Online
	LeadOverNotice   stats.Online
}

// heartbeatPeriod must match the BG/L profile's rackwatch daemon.
const heartbeatPeriod = 2 * time.Minute

// noticeDelay must match the rackcrash archetype's final-event delay.
const noticeDelay = 10 * time.Minute

// Absence runs the monitor over the campaign's test window.
func Absence(c *Campaign) *AbsenceResult {
	org := c.Organizer()
	tmpl, ok := org.Match("rack watchdog heartbeat ok slot 17")
	if !ok {
		return &AbsenceResult{}
	}
	mon := absence.NewMonitor(absence.Watch{
		Event:  tmpl.ID,
		Period: heartbeatPeriod,
	})
	alerts := mon.Run(c.TestRecords(), c.Cut(), c.Log().End, 30*time.Second)

	res := &AbsenceResult{}
	type crash struct {
		rack    int
		silence time.Time // silence onset (the crash instant)
		notice  time.Time // the SEVERE log message
		hit     bool
	}
	var crashes []crash
	for _, f := range c.TestFailures() {
		if f.Archetype != "rackcrash" {
			continue
		}
		crashes = append(crashes, crash{
			rack:    f.Origin.Rack,
			silence: f.Time.Add(-noticeDelay),
			notice:  f.Time,
		})
	}
	res.Crashes = len(crashes)
	for _, a := range alerts {
		matched := false
		for i := range crashes {
			cr := &crashes[i]
			if a.Location.Rack != cr.rack {
				continue
			}
			// The alert belongs to this crash when it fires inside the
			// silence window.
			if a.DetectedAt.Before(cr.silence) || a.DetectedAt.After(cr.silence.Add(40*time.Minute)) {
				continue
			}
			matched = true
			if !cr.hit {
				cr.hit = true
				res.Detected++
				res.DetectionLatency.Add(a.DetectedAt.Sub(cr.silence).Seconds())
				res.LeadOverNotice.Add(cr.notice.Sub(a.DetectedAt).Seconds())
			}
			break
		}
		if !matched {
			res.FalseAlerts++
		}
	}
	return res
}

// String renders the detection outcome.
func (r *AbsenceResult) String() string {
	if r.Crashes == 0 {
		return "Absence detection — no rack crashes in window\n"
	}
	return fmt.Sprintf("Absence detection — %d/%d rack crashes detected from missing heartbeats, mean detection latency %.0fs after silence onset, mean lead over the operators' log notice %.0fs, %d false alerts\n",
		r.Detected, r.Crashes, r.DetectionLatency.Mean(), r.LeadOverNotice.Mean(), r.FalseAlerts)
}
