package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/sig"
)

// One quick campaign shared by the tests in this file.
var testCampaign = BGL(Quick)

func TestFig1ClassMix(t *testing.T) {
	r := Fig1(testCampaign)
	if r.Total == 0 {
		t.Fatal("no event types classified")
	}
	// The paper: silent signals are the majority of event types.
	if r.Counts[sig.Silent]*2 < r.Total {
		t.Errorf("silent not the majority: %v of %d", r.Counts, r.Total)
	}
	if r.Counts[sig.Periodic] == 0 {
		t.Error("no periodic signals despite periodic daemons")
	}
	if !strings.Contains(r.String(), "silent") {
		t.Error("rendering missing class names")
	}
}

func TestFig3FilterQuality(t *testing.T) {
	r := Fig3(7)
	if r.Detected < r.InjectedSpikes*9/10 {
		t.Errorf("detected %d/%d spikes", r.Detected, r.InjectedSpikes)
	}
	if r.FalseFlags > r.Samples/100 {
		t.Errorf("false flags %d too high", r.FalseFlags)
	}
	if r.VarAfter >= r.VarBefore {
		t.Error("replacement did not reduce variance")
	}
}

func TestFig4RecoversDelays(t *testing.T) {
	r := Fig4(7)
	if got := r.RecoveredDelays["S1->S2"]; got < 5 || got > 7 {
		t.Errorf("S1->S2 delay = %d, want ~6", got)
	}
	if got := r.RecoveredDelays["S1->S3"]; got < 9 || got > 11 {
		t.Errorf("S1->S3 delay = %d, want ~10", got)
	}
	if got := r.RecoveredDelays["S2->S3"]; got < 3 || got > 5 {
		t.Errorf("S2->S3 delay = %d, want ~4", got)
	}
}

func TestTable1FindsCoreSequences(t *testing.T) {
	r := Table1(testCampaign)
	found := 0
	for _, s := range r.Sections {
		if s.Found {
			found++
		}
	}
	if found < 2 {
		t.Errorf("only %d/4 example sequences extracted", found)
	}
	if !strings.Contains(r.String(), "Table I") {
		t.Error("rendering broken")
	}
}

func TestFig5Shape(t *testing.T) {
	r := Fig5(testCampaign)
	if r.Total == 0 {
		t.Fatal("no chains")
	}
	if r.Mean < 2 || r.Mean > 8 {
		t.Errorf("mean chain size = %v, implausible", r.Mean)
	}
}

func TestFig6HasLongTail(t *testing.T) {
	r := Fig6(testCampaign)
	if r.Hist.Total() == 0 {
		t.Fatal("no chains")
	}
	// Some sequences must exceed one minute (node-card class) and some be
	// fast (ciodb/multiline).
	if r.Hist.MinuteToTen()+r.Hist.OverTenMin() == 0 {
		t.Error("no sequences beyond one minute")
	}
	if r.Hist.Under10s()+r.Hist.TenToMinute() == 0 {
		t.Error("no fast sequences")
	}
}

func TestPairDelays(t *testing.T) {
	r := PairDelays(testCampaign)
	if r.Hist.Total() == 0 {
		t.Fatal("no pairs")
	}
	if r.NonPredictive <= 0 || r.NonPredictive >= 0.9 {
		t.Errorf("non-predictive share = %v, want a real minority share", r.NonPredictive)
	}
}

func TestTable2Extremes(t *testing.T) {
	r := Table2(testCampaign)
	if r.LongSpan <= r.ShortSpan {
		t.Errorf("long span %v not above short span %v", r.LongSpan, r.ShortSpan)
	}
	if r.LongSpan < time.Minute {
		t.Errorf("long span %v, want above a minute", r.LongSpan)
	}
}

func TestFig7Propagation(t *testing.T) {
	r := Fig7(testCampaign)
	if r.Breakdown.Chains == 0 {
		t.Fatal("no profiled chains")
	}
	if r.Breakdown.NoPropagate < 0.4 {
		t.Errorf("NoPropagate = %v, want clear majority", r.Breakdown.NoPropagate)
	}
}

func TestAnalysisTimeRegimes(t *testing.T) {
	r := AnalysisTime(testCampaign)
	if r.BurstAnalysis < 2*time.Second || r.BurstAnalysis > 4*time.Second {
		t.Errorf("burst analysis = %v, want ~2.5s", r.BurstAnalysis)
	}
	if r.MeanAnalysis >= r.BurstAnalysis {
		t.Error("mean analysis should be far below burst analysis")
	}
	if r.MeanMsgRate <= 0 {
		t.Error("no message rate measured")
	}
}

func TestTable3Shape(t *testing.T) {
	r := Table3(testCampaign)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	hy, sg, dm := r.Rows[0], r.Rows[1], r.Rows[2]
	if dm.Recall >= hy.Recall {
		t.Errorf("dm recall %v not below hybrid %v", dm.Recall, hy.Recall)
	}
	if hy.Precision < sg.Precision-0.03 {
		t.Errorf("hybrid precision %v clearly below signal %v", hy.Precision, sg.Precision)
	}
	if sg.SeqLoaded <= hy.SeqLoaded {
		t.Errorf("signal chains %d not above hybrid %d", sg.SeqLoaded, hy.SeqLoaded)
	}
}

func TestFig9Breakdown(t *testing.T) {
	r := Fig9(testCampaign)
	if len(r.Categories) < 3 {
		t.Fatalf("categories = %d", len(r.Categories))
	}
	shareSum := 0.0
	for _, c := range r.Categories {
		shareSum += c.Share
	}
	if shareSum < 0.99 || shareSum > 1.01 {
		t.Errorf("shares sum to %v", shareSum)
	}
}

func TestWindowsMonotone(t *testing.T) {
	r := Windows(testCampaign)
	if r.Over10s < r.Over1min || r.Over1min < r.Over10min {
		t.Errorf("window fractions not monotone: %+v", r)
	}
	if r.Over10s == 0 {
		t.Error("no predictions with usable window")
	}
}

func TestTable4Gains(t *testing.T) {
	r := Table4(testCampaign)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.MeasuredGain <= 0 {
		t.Errorf("measured gain = %v, want positive", r.MeasuredGain)
	}
}

func TestAppImpact(t *testing.T) {
	r := AppImpact(testCampaign)
	o := r.Outcome
	if o.Jobs == 0 || o.NodeHoursTotal <= 0 {
		t.Fatalf("empty workload: %+v", o)
	}
	if o.FailureHits == 0 {
		t.Fatal("no failure hit any job")
	}
	if o.ProactiveSaves == 0 {
		t.Error("predictor saved nothing")
	}
	if o.LostWithPred >= o.LostNoPred {
		t.Errorf("prediction did not reduce lost node-hours: %.1f vs %.1f",
			o.LostWithPred, o.LostNoPred)
	}
	if !strings.Contains(r.String(), "node-hours") {
		t.Error("rendering broken")
	}
}

func TestRobustnessSweep(t *testing.T) {
	r := Robustness(Quick, 3)
	if r.Seeds != 3 || len(r.PerSeed) != 3 {
		t.Fatalf("seeds = %d", r.Seeds)
	}
	if r.Recall.Mean() <= 0.2 {
		t.Errorf("mean recall = %v, implausibly low", r.Recall.Mean())
	}
	if r.Precision.Mean() <= 0.6 {
		t.Errorf("mean precision = %v, implausibly low", r.Precision.Mean())
	}
	// Different seeds must actually differ somewhere.
	same := true
	for _, p := range r.PerSeed[1:] {
		if p.Recall != r.PerSeed[0].Recall || p.Precision != r.PerSeed[0].Precision {
			same = false
		}
	}
	if same {
		t.Error("all seeds produced identical outcomes")
	}
	if !strings.Contains(r.String(), "seed") {
		t.Error("rendering broken")
	}
}

func TestAbsenceDetection(t *testing.T) {
	// Rack crashes are rare (30 h MTBF); use a longer test window so a
	// few land in it.
	c := BGL(Scale{TrainDays: 2, TestDays: 8, Seed: 7})
	r := Absence(c)
	if r.Crashes == 0 {
		t.Skip("no rack crashes at this seed")
	}
	if r.Detected < r.Crashes {
		t.Errorf("detected %d/%d crashes", r.Detected, r.Crashes)
	}
	if r.FalseAlerts > r.Crashes {
		t.Errorf("false alerts = %d", r.FalseAlerts)
	}
	// Detection must beat the operators' own notice on average.
	if r.LeadOverNotice.Mean() <= 0 {
		t.Errorf("mean lead over notice = %vs, want positive", r.LeadOverNotice.Mean())
	}
	if !strings.Contains(r.String(), "rack crashes") {
		t.Error("rendering broken")
	}
}

func TestMercuryPipelineCrossSystem(t *testing.T) {
	// The paper stresses platform independence: the same modules must run
	// on the flat Mercury cluster. Train/predict/evaluate end to end and
	// require a usable outcome.
	c := MercuryCampaign(Quick)
	out := c.Outcome(correlate.Hybrid)
	if out.ChainsLoaded == 0 {
		t.Fatal("no prediction-capable chains on mercury")
	}
	if out.Predictions == 0 {
		t.Fatal("no usable predictions on mercury")
	}
	if out.Precision < 0.5 {
		t.Errorf("mercury precision = %v, implausibly low", out.Precision)
	}
	if out.Recall <= 0.05 {
		t.Errorf("mercury recall = %v, implausibly low", out.Recall)
	}
}

func TestCSVFiles(t *testing.T) {
	files := CSVFiles(Quick)
	if len(files) < 10 {
		t.Fatalf("only %d csv files", len(files))
	}
	for name, content := range files {
		if !strings.HasSuffix(name, ".csv") {
			t.Errorf("file %q lacks .csv suffix", name)
		}
		lines := strings.Split(strings.TrimSpace(content), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: only %d lines", name, len(lines))
			continue
		}
		// Header (or comment + header) plus at least one data row, and
		// consistent comma counts on data rows.
		header := lines[0]
		if strings.HasPrefix(header, "#") {
			header = lines[1]
		}
		want := strings.Count(header, ",")
		if want == 0 {
			t.Errorf("%s: header %q has no columns", name, header)
		}
		for _, l := range lines {
			if strings.HasPrefix(l, "#") || l == header {
				continue
			}
			if strings.Count(l, ",") != want {
				t.Errorf("%s: row %q column count mismatch", name, l)
			}
		}
	}
}

func TestRunKnownAndUnknown(t *testing.T) {
	outStr, err := Run("table4", Quick)
	if err != nil || !strings.Contains(outStr, "Table IV") {
		t.Errorf("Run(table4) = %q, %v", outStr, err)
	}
	if _, err := Run("bogus", Quick); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Names()) < 10 {
		t.Error("experiment registry too small")
	}
}
