package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/elsa-hpc/elsa/internal/checkpoint"
	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/stats"
)

// Table1Result reproduces Table I: example correlated-event sequences.
type Table1Result struct {
	Sections []Table1Section
}

// Table1Section is one block of the table.
type Table1Section struct {
	Title string
	Text  string
	Found bool
}

// Table1 extracts the example sequences the paper lists: a memory error
// cascade, a node-card failure cascade, a multiline message pair and a
// component restart sequence.
func Table1(c *Campaign) *Table1Result {
	res := &Table1Result{}
	for _, want := range []struct{ title, substr string }{
		{"Memory error", "ddr failing"},
		{"Node card failure", "link card power module"},
		{"Multiline messages", "purpose registers"},
		{"Component restart sequence", "restarted"},
	} {
		sec := Table1Section{Title: want.title}
		if ch, ok := findChain(c, want.substr); ok {
			sec.Found = true
			sec.Text = chainText(c, ch)
		}
		res.Sections = append(res.Sections, sec)
	}
	return res
}

// String renders the sections.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I — sequences of correlated events\n")
	for _, s := range r.Sections {
		if !s.Found {
			fmt.Fprintf(&b, "  %s: (not extracted at this scale)\n", s.Title)
			continue
		}
		fmt.Fprintf(&b, "  %s\n%s", s.Title, s.Text)
	}
	return b.String()
}

// Table2Result reproduces Table II: the two delay extremes — a sequence
// with no prediction window and one with a very long one.
type Table2Result struct {
	ShortTitle string
	ShortSpan  time.Duration
	ShortText  string
	LongTitle  string
	LongSpan   time.Duration
	LongText   string
}

// Table2 finds the minimum- and maximum-span predictive chains.
func Table2(c *Campaign) *Table2Result {
	model := c.Model(correlate.Hybrid)
	res := &Table2Result{ShortTitle: "CIODB sequence", LongTitle: "Node card sequence"}
	first := true
	var short, long correlate.Chain
	for _, ch := range model.Chains {
		if !ch.Predictive {
			continue
		}
		if first {
			short, long = ch, ch
			first = false
			continue
		}
		if ch.Span() < short.Span() {
			short = ch
		}
		if ch.Span() > long.Span() {
			long = ch
		}
	}
	if first {
		return res
	}
	res.ShortSpan = time.Duration(short.Span()) * model.Step
	res.ShortText = chainText(c, short)
	res.LongSpan = time.Duration(long.Span()) * model.Step
	res.LongText = chainText(c, long)
	return res
}

// String renders the two extremes.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table II — sequences with extreme time delays\n")
	fmt.Fprintf(&b, "  %s (span %s)\n%s", r.ShortTitle, r.ShortSpan, r.ShortText)
	fmt.Fprintf(&b, "  %s (span %s)\n%s", r.LongTitle, r.LongSpan, r.LongText)
	return b.String()
}

// PairDelaysResult reproduces the Section IV.B numbers: the delay
// distribution over the initial pair correlations and the share of
// sequences with no predictive value.
type PairDelaysResult struct {
	Hist          *stats.DelayHistogram
	NonPredictive float64 // share of chains that are all-INFO (paper: ~23%)
}

// PairDelays computes the pair-delay mix from the signal-only model (whose
// chains are exactly the cross-correlation pairs) and the non-predictive
// share from the hybrid chain list.
func PairDelays(c *Campaign) *PairDelaysResult {
	pairs := c.Model(correlate.SignalOnly)
	res := &PairDelaysResult{Hist: stats.NewDelayHistogram()}
	for _, ch := range pairs.Chains {
		res.Hist.Add(time.Duration(ch.Span()) * pairs.Step)
	}
	hybrid := c.Model(correlate.Hybrid)
	if len(hybrid.Chains) > 0 {
		nonPred := 0
		for _, ch := range hybrid.Chains {
			if !ch.Predictive {
				nonPred++
			}
		}
		res.NonPredictive = float64(nonPred) / float64(len(hybrid.Chains))
	}
	return res
}

// String renders the distribution.
func (r *PairDelaysResult) String() string {
	return fmt.Sprintf("Section IV.B — pair correlation delays: %s; non-predictive sequences %.1f%%\n",
		r.Hist, 100*r.NonPredictive)
}

// AnalysisTimeResult reproduces the Section VI.A analysis-window numbers.
type AnalysisTimeResult struct {
	MeanMsgRate   float64       // messages per second over the run
	MeanAnalysis  time.Duration // average per-tick analysis time
	BurstAnalysis time.Duration // modelled analysis at 100 msg/s
	WorstAnalysis time.Duration // worst tick observed (NFS bursts)
	WorstMessages int
}

// AnalysisTime summarises the hybrid run's analysis-time model.
func AnalysisTime(c *Campaign) *AnalysisTimeResult {
	run := c.Run(correlate.Hybrid)
	st := run.Stats
	res := &AnalysisTimeResult{
		MeanAnalysis:  time.Duration(st.Analysis.Mean() * float64(time.Second)),
		WorstAnalysis: st.MaxAnalysis,
		WorstMessages: st.MaxTickMessages,
	}
	if st.Ticks > 0 {
		stepSec := 10.0
		res.MeanMsgRate = float64(st.Messages) / (float64(st.Ticks) * stepSec)
	}
	// The paper's burst regime: 100 msg/s for one 10 s tick.
	cfg := defaultEngineCost()
	res.BurstAnalysis = cfg.base + 1000*cfg.perMsg
	return res
}

type engineCost struct{ base, perMsg time.Duration }

func defaultEngineCost() engineCost {
	return engineCost{base: time.Millisecond, perMsg: 2500 * time.Microsecond}
}

// String renders the regimes.
func (r *AnalysisTimeResult) String() string {
	return fmt.Sprintf("Section VI.A — analysis time: mean rate %.2f msg/s, mean analysis %v, burst(100 msg/s) %v, worst observed %v (%d msgs)\n",
		r.MeanMsgRate, r.MeanAnalysis.Round(time.Microsecond), r.BurstAnalysis, r.WorstAnalysis.Round(time.Millisecond), r.WorstMessages)
}

// Table3Row is one method's row of Table III.
type Table3Row struct {
	Method        string
	Precision     float64
	Recall        float64
	SeqUsed       int
	SeqLoaded     int
	SeqUsedFrac   float64
	PredFailures  int
	LatePredCount int
}

// Table3Result reproduces Table III.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs all three methods on the campaign.
func Table3(c *Campaign) *Table3Result {
	res := &Table3Result{}
	for _, mode := range []correlate.Mode{correlate.Hybrid, correlate.SignalOnly, correlate.DataMiningOnly} {
		out := c.Outcome(mode)
		res.Rows = append(res.Rows, Table3Row{
			Method:        "ELSA " + mode.String(),
			Precision:     out.Precision,
			Recall:        out.Recall,
			SeqUsed:       out.ChainsUsed,
			SeqLoaded:     out.ChainsLoaded,
			SeqUsedFrac:   out.SeqUsedFraction(),
			PredFailures:  out.FailuresHit,
			LatePredCount: out.LateDropped,
		})
	}
	return res
}

// String renders the table.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table III — prediction methods\n")
	fmt.Fprintf(&b, "  %-16s %10s %8s %14s %12s\n", "Method", "Precision", "Recall", "Seq Used", "Pred Failures")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-16s %9.1f%% %7.1f%% %6d (%4.1f%%) %12d\n",
			row.Method, 100*row.Precision, 100*row.Recall,
			row.SeqUsed, 100*row.SeqUsedFrac, row.PredFailures)
	}
	return b.String()
}

// WindowsResult reproduces the visible-window analysis of Section VI.A.
type WindowsResult struct {
	Over10s   float64 // share of correct predictions with >10 s window
	Over1min  float64
	Over10min float64

	// Actionable shares: failures for which avoidance completes in time.
	OneMinuteActionOfPredicted float64 // 1-min checkpoint, share of predicted
	OneMinuteActionOfTotal     float64 // same, share of all failures
	TenSecondActionOfTotal     float64 // 10-s checkpoint (FTI-style)
}

// Windows derives the window statistics from the hybrid run.
func Windows(c *Campaign) *WindowsResult {
	out := c.Outcome(correlate.Hybrid)
	w := out.Windows()
	res := &WindowsResult{
		Over10s:   w.Over10s,
		Over1min:  w.Over1min,
		Over10min: w.Over10min,
	}
	// A proactive action taking A seconds is applicable to correct
	// predictions with Lead > A.
	if out.FailuresTotal > 0 && out.FailuresHit > 0 {
		predShare := float64(out.FailuresHit) / float64(out.FailuresTotal)
		res.OneMinuteActionOfPredicted = w.Over1min
		res.OneMinuteActionOfTotal = w.Over1min * predShare
		res.TenSecondActionOfTotal = w.Over10s * predShare
	}
	return res
}

// String renders the shares.
func (r *WindowsResult) String() string {
	return fmt.Sprintf("Section VI.A — visible windows: >10s %.1f%%, >1min %.1f%%, >10min %.1f%%; 1-min actions cover %.1f%% of predicted (%.1f%% of all) failures; 10-s actions cover %.1f%% of all\n",
		100*r.Over10s, 100*r.Over1min, 100*r.Over10min,
		100*r.OneMinuteActionOfPredicted, 100*r.OneMinuteActionOfTotal, 100*r.TenSecondActionOfTotal)
}

// Table4Result reproduces Table IV, optionally extended with a row using
// the campaign's own measured precision/recall.
type Table4Result struct {
	Rows []checkpoint.TableIVRow
	// Measured is the gain for this campaign's hybrid predictor on a
	// 1-day-MTTF, 1-minute-checkpoint system.
	MeasuredPrecision float64
	MeasuredRecall    float64
	MeasuredGain      float64
}

// Table4 computes the analytic table and the campaign-specific row.
func Table4(c *Campaign) *Table4Result {
	res := &Table4Result{Rows: checkpoint.TableIV()}
	out := c.Outcome(correlate.Hybrid)
	p := checkpoint.PaperParams(time.Minute, 24*time.Hour)
	res.MeasuredPrecision = out.Precision
	res.MeasuredRecall = out.Recall
	res.MeasuredGain = checkpoint.WasteGain(p, checkpoint.Predictor{
		Recall: out.Recall, Precision: out.Precision,
	})
	return res
}

// String renders the table with paper-vs-computed columns.
func (r *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table IV — checkpoint waste improvement\n")
	fmt.Fprintf(&b, "  %-8s %-10s %-7s %-9s %10s %10s\n", "C", "Precision", "Recall", "MTTF", "Gain", "Paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8s %9.0f%% %6.0f%% %-9s %9.2f%% %9.2f%%\n",
			row.C, 100*row.Precision, 100*row.Recall, row.MTTF,
			100*row.Gain, 100*row.PaperGain)
	}
	fmt.Fprintf(&b, "  measured hybrid predictor (P=%.1f%%, R=%.1f%%) on C=1min MTTF=1day: gain %.2f%%\n",
		100*r.MeasuredPrecision, 100*r.MeasuredRecall, 100*r.MeasuredGain)
	return b.String()
}
