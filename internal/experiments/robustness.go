package experiments

import (
	"fmt"
	"strings"
	"sync"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/stats"
)

// RobustnessResult sweeps the headline Table III numbers across campaign
// seeds, reporting mean and standard deviation — the sanity check a single
// ten-month log cannot provide and the paper's own future-work concern
// about short training windows.
type RobustnessResult struct {
	Seeds     int
	Precision stats.Online
	Recall    stats.Online
	// PerSeed keeps the individual points for inspection.
	PerSeed []RobustnessPoint
}

// RobustnessPoint is one seed's outcome.
type RobustnessPoint struct {
	Seed      int64
	Precision float64
	Recall    float64
}

// Robustness runs the hybrid pipeline across n seeds at the given scale,
// campaigns in parallel.
func Robustness(sc Scale, n int) *RobustnessResult {
	if n < 1 {
		n = 1
	}
	res := &RobustnessResult{Seeds: n, PerSeed: make([]RobustnessPoint, n)}
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := sc
			s.Seed = sc.Seed + int64(i)
			c := BGL(s)
			out := c.Outcome(correlate.Hybrid)
			res.PerSeed[i] = RobustnessPoint{Seed: s.Seed, Precision: out.Precision, Recall: out.Recall}
		}(i)
	}
	wg.Wait()
	for _, p := range res.PerSeed {
		res.Precision.Add(p.Precision)
		res.Recall.Add(p.Recall)
	}
	return res
}

// String renders the sweep.
func (r *RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness — hybrid across %d seeds: precision %.1f%% ± %.1f, recall %.1f%% ± %.1f\n",
		r.Seeds, 100*r.Precision.Mean(), 100*r.Precision.StdDev(),
		100*r.Recall.Mean(), 100*r.Recall.StdDev())
	for _, p := range r.PerSeed {
		fmt.Fprintf(&b, "  seed %-4d precision %5.1f%%  recall %5.1f%%\n",
			p.Seed, 100*p.Precision, 100*p.Recall)
	}
	return b.String()
}
