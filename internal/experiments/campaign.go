// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic substrate: it owns the end-to-end campaign
// (generate -> HELO -> train -> locate -> predict -> score) and exposes one
// driver per experiment, each returning a structured result with a text
// rendering that mirrors the rows/series the paper reports.
package experiments

import (
	"sync"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/evaluate"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/predict"
)

// Scale sets the size of a campaign. The paper trains on 3 months and
// tests on the remainder; the synthetic campaigns compress that to days so
// every experiment reruns in seconds while keeping hundreds of fault
// instances.
type Scale struct {
	TrainDays int
	TestDays  int
	Seed      int64
}

// Quick is the scale used by unit tests and benchmarks.
var Quick = Scale{TrainDays: 2, TestDays: 3, Seed: 42}

// Full is the scale used to produce EXPERIMENTS.md.
var Full = Scale{TrainDays: 5, TestDays: 11, Seed: 42}

// Start is the fixed campaign epoch.
var Start = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

// Campaign holds one generated system plus everything derived from it.
// Derivations are computed lazily and cached; a Campaign is safe for
// concurrent readers after the first access of each layer.
type Campaign struct {
	Profile gen.Profile
	Scale   Scale

	mu        sync.Mutex
	result    *gen.Result
	organizer *helo.Organizer
	train     []logs.Record
	test      []logs.Record
	failures  []gen.FailureRecord
	cut       time.Time

	models   map[correlate.Mode]*correlate.Model
	profiles map[correlate.Mode]map[string]*location.Profile
	runs     map[correlate.Mode]*predict.Result
	outcomes map[correlate.Mode]*evaluate.Outcome
}

// NewCampaign prepares a lazy campaign over the given machine profile.
func NewCampaign(prof gen.Profile, sc Scale) *Campaign {
	return &Campaign{
		Profile:  prof,
		Scale:    sc,
		models:   make(map[correlate.Mode]*correlate.Model),
		profiles: make(map[correlate.Mode]map[string]*location.Profile),
		runs:     make(map[correlate.Mode]*predict.Result),
		outcomes: make(map[correlate.Mode]*evaluate.Outcome),
	}
}

// BGL returns a Blue Gene/L campaign at the given scale.
func BGL(sc Scale) *Campaign { return NewCampaign(gen.BlueGeneL(), sc) }

// MercuryCampaign returns a Mercury campaign at the given scale.
func MercuryCampaign(sc Scale) *Campaign { return NewCampaign(gen.Mercury(), sc) }

// ensureLog generates and stamps the log (idempotent).
func (c *Campaign) ensureLog() {
	if c.result != nil {
		return
	}
	total := time.Duration(c.Scale.TrainDays+c.Scale.TestDays) * 24 * time.Hour
	c.cut = Start.Add(time.Duration(c.Scale.TrainDays) * 24 * time.Hour)
	c.result = gen.New(c.Profile, c.Scale.Seed).Generate(Start, total)
	c.organizer = helo.New(0)
	c.organizer.Assign(c.result.Records)
	c.train, c.test, c.failures = c.result.Split(c.cut)
}

// Log returns the full generated result.
func (c *Campaign) Log() *gen.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLog()
	return c.result
}

// Organizer returns the HELO instance that stamped the log.
func (c *Campaign) Organizer() *helo.Organizer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLog()
	return c.organizer
}

// TrainRecords returns the training window.
func (c *Campaign) TrainRecords() []logs.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLog()
	return c.train
}

// TestRecords returns the test window.
func (c *Campaign) TestRecords() []logs.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLog()
	return c.test
}

// TestFailures returns the ground-truth faults in the test window.
func (c *Campaign) TestFailures() []gen.FailureRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLog()
	return c.failures
}

// Cut returns the train/test boundary.
func (c *Campaign) Cut() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLog()
	return c.cut
}

// Model trains (once) and returns the correlation model for a mode.
func (c *Campaign) Model(mode correlate.Mode) *correlate.Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLog()
	if m, ok := c.models[mode]; ok {
		return m
	}
	m := correlate.Train(c.train, Start, c.cut, mode, correlate.DefaultConfig())
	c.models[mode] = m
	return m
}

// LocationProfiles returns the propagation profiles for a mode's chains.
func (c *Campaign) LocationProfiles(mode correlate.Mode) map[string]*location.Profile {
	m := c.Model(mode)
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.profiles[mode]; ok {
		return p
	}
	p := location.Extract(c.train, m.Chains, Start, m.Step, 1)
	c.profiles[mode] = p
	return p
}

// Run executes the online phase for a mode (once) and returns the result.
func (c *Campaign) Run(mode correlate.Mode) *predict.Result {
	m := c.Model(mode)
	profiles := c.LocationProfiles(mode)
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.runs[mode]; ok {
		return r
	}
	engine := predict.NewEngine(m, profiles, predict.DefaultConfig())
	r := engine.Run(c.test, c.cut, c.result.End)
	c.runs[mode] = r
	return r
}

// Outcome scores a mode's run against ground truth (once).
func (c *Campaign) Outcome(mode correlate.Mode) *evaluate.Outcome {
	r := c.Run(mode)
	c.mu.Lock()
	defer c.mu.Unlock()
	if o, ok := c.outcomes[mode]; ok {
		return o
	}
	o := evaluate.Score(r, c.failures, evaluate.DefaultMatchConfig())
	c.outcomes[mode] = o
	return o
}
