package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/outlier"
	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/stats"
)

// Fig1Result reproduces Figure 1: the population of signal classes over
// all event types, with one example template per class.
type Fig1Result struct {
	Counts   map[sig.Class]int
	Total    int
	Examples map[sig.Class]string // template text
}

// Fig1 classifies every event signal of the campaign.
func Fig1(c *Campaign) *Fig1Result {
	model := c.Model(correlate.Hybrid)
	templates := c.Organizer().Templates()
	res := &Fig1Result{
		Counts:   make(map[sig.Class]int),
		Examples: make(map[sig.Class]string),
	}
	ids := make([]int, 0, len(model.Profiles))
	for id := range model.Profiles {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := model.Profiles[id]
		res.Counts[p.Class]++
		res.Total++
		if _, ok := res.Examples[p.Class]; !ok && id < len(templates) {
			res.Examples[p.Class] = templates[id].String()
		}
	}
	return res
}

// String renders the class shares.
func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — signal classes over %d event types\n", r.Total)
	for _, cl := range []sig.Class{sig.Periodic, sig.Noise, sig.Silent} {
		share := 0.0
		if r.Total > 0 {
			share = float64(r.Counts[cl]) / float64(r.Total)
		}
		fmt.Fprintf(&b, "  %-8s %4d (%5.1f%%)  e.g. %s\n", cl, r.Counts[cl], 100*share, clip(r.Examples[cl], 60))
	}
	return b.String()
}

// Fig3Result reproduces Figure 3: the online outlier filter applied to a
// synthetic noise signal with injected spikes.
type Fig3Result struct {
	Samples        int
	InjectedSpikes int
	Detected       int
	MissedSpikes   int
	FalseFlags     int
	// VarBefore/VarAfter show the cleaning effect on the series.
	VarBefore, VarAfter float64
}

// Fig3 builds the synthetic signal, injects spikes and runs the filter.
func Fig3(seed int64) *Fig3Result {
	rng := rand.New(rand.NewSource(seed))
	n := 5000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = 20 + rng.NormFloat64()*2
	}
	spikeAt := map[int]bool{}
	for len(spikeAt) < 40 {
		i := 100 + rng.Intn(n-200)
		if !spikeAt[i] {
			spikeAt[i] = true
			samples[i] = 80 + rng.NormFloat64()*10
		}
	}
	profile := sig.Profile{Class: sig.Noise, Level: 20, Spread: 2}
	th := outlier.Threshold(profile, outlier.DefaultK, outlier.DefaultFloor)
	outliers, corrected := outlier.Filter(samples, 500, th)
	res := &Fig3Result{Samples: n, InjectedSpikes: len(spikeAt)}
	for _, i := range outliers {
		if spikeAt[i] {
			res.Detected++
		} else {
			res.FalseFlags++
		}
	}
	res.MissedSpikes = res.InjectedSpikes - res.Detected
	res.VarBefore = stats.Variance(samples)
	res.VarAfter = stats.Variance(corrected)
	return res
}

// String renders the filter outcome.
func (r *Fig3Result) String() string {
	return fmt.Sprintf("Figure 3 — online outlier filter: %d/%d injected spikes detected, %d false flags, variance %.1f -> %.1f\n",
		r.Detected, r.InjectedSpikes, r.FalseFlags, r.VarBefore, r.VarAfter)
}

// Fig4Result reproduces Figure 4: three binarised signals with fixed
// delays and the pair correlations the cross-correlation stage recovers.
type Fig4Result struct {
	TrueDelays      [2]int // S1->S2, S1->S3 in samples
	RecoveredDelays map[string]int
	Scores          map[string]float64
}

// Fig4 builds three spike trains (S2 and S3 trail S1) and recovers the
// delays.
func Fig4(seed int64) *Fig4Result {
	rng := rand.New(rand.NewSource(seed))
	res := &Fig4Result{TrueDelays: [2]int{6, 10},
		RecoveredDelays: map[string]int{}, Scores: map[string]float64{}}
	trains := sig.SpikeTrains{}
	var s1, s2, s3 []int
	for i := 0; i < 50; i++ {
		base := i*700 + rng.Intn(10)
		s1 = append(s1, base)
		s2 = append(s2, base+res.TrueDelays[0])
		s3 = append(s3, base+res.TrueDelays[1])
	}
	trains[1], trains[2], trains[3] = s1, s2, s3
	for _, p := range sig.AllPairs(trains, sig.DefaultCrossCorrConfig()) {
		key := fmt.Sprintf("S%d->S%d", p.A, p.B)
		res.RecoveredDelays[key] = p.Delay
		res.Scores[key] = p.Score
	}
	return res
}

// String renders the recovered correlation structure.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — correlation of binarised signals (true delays S1->S2=%d, S1->S3=%d samples)\n",
		r.TrueDelays[0], r.TrueDelays[1])
	keys := make([]string, 0, len(r.RecoveredDelays))
	for k := range r.RecoveredDelays {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s delay=%d score=%.2f\n", k, r.RecoveredDelays[k], r.Scores[k])
	}
	return b.String()
}

// Fig5Result reproduces Figure 5: the distribution of chain sizes.
type Fig5Result struct {
	System    string
	Sizes     map[int]int
	Mean      float64
	FracOver8 float64
	Total     int
}

// Fig5 computes the chain-size distribution for a campaign.
func Fig5(c *Campaign) *Fig5Result {
	model := c.Model(correlate.Hybrid)
	res := &Fig5Result{System: c.Profile.Name, Sizes: make(map[int]int)}
	sum := 0
	over8 := 0
	for _, ch := range model.Chains {
		res.Sizes[ch.Size()]++
		res.Total++
		sum += ch.Size()
		if ch.Size() > 8 {
			over8++
		}
	}
	if res.Total > 0 {
		res.Mean = float64(sum) / float64(res.Total)
		res.FracOver8 = float64(over8) / float64(res.Total)
	}
	return res
}

// String renders the size histogram.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — sequence sizes on %s: %d chains, mean %.1f, %.1f%% longer than 8\n",
		r.System, r.Total, r.Mean, 100*r.FracOver8)
	sizes := make([]int, 0, len(r.Sizes))
	for s := range r.Sizes {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Fprintf(&b, "  size %2d: %d\n", s, r.Sizes[s])
	}
	return b.String()
}

// Fig6Result reproduces Figure 6: the delay between a sequence's first
// symptom and its last event.
type Fig6Result struct {
	System string
	Hist   *stats.DelayHistogram
}

// Fig6 computes the first-to-last delay distribution over chains.
func Fig6(c *Campaign) *Fig6Result {
	model := c.Model(correlate.Hybrid)
	res := &Fig6Result{System: c.Profile.Name, Hist: stats.NewDelayHistogram()}
	for _, ch := range model.Chains {
		res.Hist.Add(time.Duration(ch.Span()) * model.Step)
	}
	return res
}

// String renders the bucket shares.
func (r *Fig6Result) String() string {
	return fmt.Sprintf("Figure 6 — first-to-last delays on %s: %s\n", r.System, r.Hist)
}

// Fig7Result reproduces Figure 7: propagation breakdown of correlations.
type Fig7Result struct {
	System    string
	Breakdown location.PropagationBreakdown
}

// Fig7 computes the propagation breakdown from the location profiles.
func Fig7(c *Campaign) *Fig7Result {
	profiles := c.LocationProfiles(correlate.Hybrid)
	return &Fig7Result{System: c.Profile.Name, Breakdown: location.Breakdown(profiles)}
}

// String renders the propagation shares.
func (r *Fig7Result) String() string {
	b := r.Breakdown
	return fmt.Sprintf("Figure 7 — propagation on %s over %d chains: none %.1f%%, node card %.1f%%, midplane %.1f%%, beyond midplane %.1f%% (mean affected %.1f)\n",
		r.System, b.Chains, 100*b.NoPropagate, 100*b.NodeCard, 100*b.Midplane, 100*b.BeyondMP, b.MeanAffected)
}

// Fig9Result reproduces Figure 9: the recall breakdown per error category.
type Fig9Result struct {
	Categories []CategoryBar
}

// CategoryBar is one bar: the category's share of all failures and the
// predicted (dark) portion.
type CategoryBar struct {
	Category  string
	Share     float64
	Recall    float64
	Predicted int
	Total     int
}

// Fig9 computes the per-category breakdown from the hybrid outcome.
func Fig9(c *Campaign) *Fig9Result {
	out := c.Outcome(correlate.Hybrid)
	res := &Fig9Result{}
	keys := make([]string, 0, len(out.ByCategory))
	for k := range out.ByCategory {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cs := out.ByCategory[k]
		res.Categories = append(res.Categories, CategoryBar{
			Category: cs.Category, Share: cs.Share, Recall: cs.Recall(),
			Predicted: cs.Predicted, Total: cs.Total,
		})
	}
	return res
}

// String renders the bars.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9 — recall breakdown by category\n")
	for _, c := range r.Categories {
		fmt.Fprintf(&b, "  %-10s share=%5.1f%%  recall=%5.1f%% (%d/%d)\n",
			c.Category, 100*c.Share, 100*c.Recall, c.Predicted, c.Total)
	}
	return b.String()
}

// chainText renders a chain as template lines with delays, used by the
// table experiments.
func chainText(c *Campaign, ch correlate.Chain) string {
	templates := c.Organizer().Templates()
	model := c.Model(correlate.Hybrid)
	var b strings.Builder
	for i, it := range ch.Items {
		name := fmt.Sprintf("event-%d", it.Event)
		if it.Event < len(templates) {
			name = templates[it.Event].String()
		}
		if i == 0 {
			fmt.Fprintf(&b, "    %s\n", clip(name, 76))
		} else {
			gap := time.Duration(it.Delay-ch.Items[i-1].Delay) * model.Step
			fmt.Fprintf(&b, "    after %-8s %s\n", gap, clip(name, 64))
		}
	}
	return b.String()
}

// findChain returns the first hybrid chain one of whose templates contains
// the substring.
func findChain(c *Campaign, substr string) (correlate.Chain, bool) {
	model := c.Model(correlate.Hybrid)
	templates := c.Organizer().Templates()
	for _, ch := range model.Chains {
		for _, it := range ch.Items {
			if it.Event < len(templates) && strings.Contains(templates[it.Event].String(), substr) {
				return ch, true
			}
		}
	}
	return correlate.Chain{}, false
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
