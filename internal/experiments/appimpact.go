package experiments

import (
	"fmt"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/jobs"
)

// AppImpactResult extends the paper's checkpoint analysis (Section VI.B)
// from one application to a whole workload: how many node-hours does the
// hybrid predictor save a realistic job mix?
type AppImpactResult struct {
	Outcome jobs.Outcome
}

// AppImpact runs the workload simulation over the campaign's test window
// using the hybrid predictor's actual predictions.
func AppImpact(c *Campaign) *AppImpactResult {
	run := c.Run(correlate.Hybrid)
	log := c.Log()
	workload := jobs.GenerateWorkload(c.Profile.Machine, c.Cut(), log.End, jobs.DefaultWorkload())
	out := jobs.Simulate(workload, c.TestFailures(), run.Predictions, jobs.DefaultImpact())
	return &AppImpactResult{Outcome: out}
}

// String renders the accounting.
func (r *AppImpactResult) String() string {
	o := r.Outcome
	return fmt.Sprintf("Workload impact — %d jobs (%.0f node-hours), %d failure hits: lost %.1f node-hours without prediction, %.1f with (%d proactive saves, %.1fx reduction)\n",
		o.Jobs, o.NodeHoursTotal, o.FailureHits, o.LostNoPred, o.LostWithPred,
		o.ProactiveSaves, o.ReductionFactor)
}
