package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/elsa-hpc/elsa/internal/sig"
)

// CSV renders the Figure 1 series (class, count, share).
func (r *Fig1Result) CSV() string {
	var b strings.Builder
	b.WriteString("class,count,share\n")
	for _, cl := range []sig.Class{sig.Periodic, sig.Noise, sig.Silent} {
		share := 0.0
		if r.Total > 0 {
			share = float64(r.Counts[cl]) / float64(r.Total)
		}
		fmt.Fprintf(&b, "%s,%d,%.4f\n", cl, r.Counts[cl], share)
	}
	return b.String()
}

// CSV renders the Figure 5 histogram (size, chains).
func (r *Fig5Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# system=%s mean=%.2f over8=%.4f\n", r.System, r.Mean, r.FracOver8)
	b.WriteString("size,chains\n")
	sizes := make([]int, 0, len(r.Sizes))
	for s := range r.Sizes {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Fprintf(&b, "%d,%d\n", s, r.Sizes[s])
	}
	return b.String()
}

// CSV renders the Figure 6 delay buckets (bucket, share).
func (r *Fig6Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# system=%s n=%d\n", r.System, r.Hist.Total())
	b.WriteString("bucket,share\n")
	fmt.Fprintf(&b, "under10s,%.4f\n", r.Hist.Under10s())
	fmt.Fprintf(&b, "10s-1min,%.4f\n", r.Hist.TenToMinute())
	fmt.Fprintf(&b, "1-10min,%.4f\n", r.Hist.MinuteToTen())
	fmt.Fprintf(&b, "over10min,%.4f\n", r.Hist.OverTenMin())
	return b.String()
}

// CSV renders the Figure 7 propagation shares.
func (r *Fig7Result) CSV() string {
	var b strings.Builder
	bd := r.Breakdown
	fmt.Fprintf(&b, "# system=%s chains=%d mean_affected=%.2f\n", r.System, bd.Chains, bd.MeanAffected)
	b.WriteString("scope,share\n")
	fmt.Fprintf(&b, "none,%.4f\nnodecard,%.4f\nmidplane,%.4f\nbeyond_midplane,%.4f\n",
		bd.NoPropagate, bd.NodeCard, bd.Midplane, bd.BeyondMP)
	return b.String()
}

// CSV renders the Figure 9 bars (category, share, recall).
func (r *Fig9Result) CSV() string {
	var b strings.Builder
	b.WriteString("category,share,recall,predicted,total\n")
	for _, c := range r.Categories {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%d,%d\n", c.Category, c.Share, c.Recall, c.Predicted, c.Total)
	}
	return b.String()
}

// CSV renders the Table III rows.
func (r *Table3Result) CSV() string {
	var b strings.Builder
	b.WriteString("method,precision,recall,seq_used,seq_loaded,pred_failures,late\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%d,%d,%d,%d\n",
			row.Method, row.Precision, row.Recall, row.SeqUsed, row.SeqLoaded,
			row.PredFailures, row.LatePredCount)
	}
	return b.String()
}

// CSV renders the Table IV rows with paper-vs-computed columns.
func (r *Table4Result) CSV() string {
	var b strings.Builder
	b.WriteString("c_seconds,precision,recall,mttf_hours,gain,paper_gain\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%.0f,%.2f,%.2f,%.1f,%.4f,%.4f\n",
			row.C.Seconds(), row.Precision, row.Recall, row.MTTF.Hours(),
			row.Gain, row.PaperGain)
	}
	return b.String()
}

// CSV renders the pair-delay buckets.
func (r *PairDelaysResult) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# non_predictive=%.4f n=%d\n", r.NonPredictive, r.Hist.Total())
	b.WriteString("bucket,share\n")
	fmt.Fprintf(&b, "under10s,%.4f\n", r.Hist.Under10s())
	fmt.Fprintf(&b, "10s-1min,%.4f\n", r.Hist.TenToMinute())
	fmt.Fprintf(&b, "1-10min,%.4f\n", r.Hist.MinuteToTen())
	fmt.Fprintf(&b, "over10min,%.4f\n", r.Hist.OverTenMin())
	return b.String()
}

// CSV renders the visible-window shares.
func (r *WindowsResult) CSV() string {
	var b strings.Builder
	b.WriteString("metric,value\n")
	fmt.Fprintf(&b, "over10s,%.4f\nover1min,%.4f\nover10min,%.4f\n", r.Over10s, r.Over1min, r.Over10min)
	fmt.Fprintf(&b, "one_min_of_predicted,%.4f\none_min_of_total,%.4f\nten_s_of_total,%.4f\n",
		r.OneMinuteActionOfPredicted, r.OneMinuteActionOfTotal, r.TenSecondActionOfTotal)
	return b.String()
}

// CSVFiles runs the plottable experiments at the given scale and returns
// the per-figure CSV payloads keyed by file name.
func CSVFiles(sc Scale) map[string]string {
	bgl := BGL(sc)
	mercury := MercuryCampaign(sc)
	return map[string]string{
		"fig1_signal_classes.csv":    Fig1(bgl).CSV(),
		"fig5_chain_sizes_bgl.csv":   Fig5(bgl).CSV(),
		"fig5_chain_sizes_merc.csv":  Fig5(mercury).CSV(),
		"fig6_sequence_delays.csv":   Fig6(bgl).CSV(),
		"fig7_propagation_bgl.csv":   Fig7(bgl).CSV(),
		"fig7_propagation_merc.csv":  Fig7(mercury).CSV(),
		"fig9_recall_breakdown.csv":  Fig9(bgl).CSV(),
		"table3_methods.csv":         Table3(bgl).CSV(),
		"table4_checkpoint_gain.csv": Table4(bgl).CSV(),
		"pair_delays.csv":            PairDelays(bgl).CSV(),
		"windows.csv":                Windows(bgl).CSV(),
	}
}
