package experiments

import (
	"fmt"
	"strings"
)

// Report runs every experiment at the given scale and renders the combined
// text report (the source of EXPERIMENTS.md). Experiments that need a
// second system run on the Mercury profile.
func Report(sc Scale) string {
	bgl := BGL(sc)
	mercury := MercuryCampaign(sc)

	var b strings.Builder
	fmt.Fprintf(&b, "ELSA reproduction report — scale: train %dd, test %dd, seed %d\n\n",
		sc.TrainDays, sc.TestDays, sc.Seed)

	b.WriteString(Fig1(bgl).String())
	b.WriteString("\n")
	b.WriteString(Fig3(sc.Seed).String())
	b.WriteString("\n")
	b.WriteString(Fig4(sc.Seed).String())
	b.WriteString("\n")
	b.WriteString(Table1(bgl).String())
	b.WriteString("\n")
	b.WriteString(Fig5(bgl).String())
	b.WriteString(Fig5(mercury).String())
	b.WriteString("\n")
	b.WriteString(Fig6(bgl).String())
	b.WriteString("\n")
	b.WriteString(PairDelays(bgl).String())
	b.WriteString("\n")
	b.WriteString(Table2(bgl).String())
	b.WriteString("\n")
	b.WriteString(Fig7(bgl).String())
	b.WriteString(Fig7(mercury).String())
	b.WriteString("\n")
	b.WriteString(AnalysisTime(bgl).String())
	b.WriteString("\n")
	b.WriteString(Table3(bgl).String())
	b.WriteString("\n")
	b.WriteString(Fig9(bgl).String())
	b.WriteString("\n")
	b.WriteString(Windows(bgl).String())
	b.WriteString("\n")
	b.WriteString(Table4(bgl).String())
	b.WriteString("\n")
	b.WriteString(AppImpact(bgl).String())
	b.WriteString("\n")
	b.WriteString(Absence(bgl).String())
	return b.String()
}

// Names lists the experiment ids understood by Run.
func Names() []string {
	return []string{"fig1", "fig3", "fig4", "table1", "fig5", "fig6",
		"pairdelays", "table2", "fig7", "analysistime", "table3", "fig9",
		"windows", "table4", "appimpact", "robustness", "absence"}
}

// Run executes one experiment by id and returns its rendering.
func Run(name string, sc Scale) (string, error) {
	bgl := BGL(sc)
	switch name {
	case "fig1":
		return Fig1(bgl).String(), nil
	case "fig3":
		return Fig3(sc.Seed).String(), nil
	case "fig4":
		return Fig4(sc.Seed).String(), nil
	case "table1":
		return Table1(bgl).String(), nil
	case "fig5":
		return Fig5(bgl).String() + Fig5(MercuryCampaign(sc)).String(), nil
	case "fig6":
		return Fig6(bgl).String(), nil
	case "pairdelays":
		return PairDelays(bgl).String(), nil
	case "table2":
		return Table2(bgl).String(), nil
	case "fig7":
		return Fig7(bgl).String() + Fig7(MercuryCampaign(sc)).String(), nil
	case "analysistime":
		return AnalysisTime(bgl).String(), nil
	case "table3":
		return Table3(bgl).String(), nil
	case "fig9":
		return Fig9(bgl).String(), nil
	case "windows":
		return Windows(bgl).String(), nil
	case "table4":
		return Table4(bgl).String(), nil
	case "appimpact":
		return AppImpact(bgl).String(), nil
	case "robustness":
		return Robustness(sc, 5).String(), nil
	case "absence":
		return Absence(bgl).String(), nil
	default:
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
}
