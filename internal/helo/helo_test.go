package helo

import (
	"fmt"
	"sync"
	"testing"

	"github.com/elsa-hpc/elsa/internal/logs"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("CE sym 25, at 0x0b85eee0, mask 0x05")
	want := []string{"ce", "sym", NumToken, "at", NumToken, "mask", NumToken}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestIsNumeric(t *testing.T) {
	for s, want := range map[string]bool{
		"123":       true,
		"1:136":     true,
		"3.14":      true,
		"0xdead":    true,
		"0xzz":      false,
		"l3":        false,
		"abc":       false,
		"":          false,
		"-":         false,
		"12-30":     true,
		"ddr3ecc":   false,
		"127.0.0.1": true,
	} {
		if got := isNumeric(s); got != want {
			t.Errorf("isNumeric(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestLearnMergesVariants(t *testing.T) {
	o := New(0)
	a := o.Learn("correctable error detected in directory 0x0a", logs.Warning)
	b := o.Learn("correctable error detected in directory 0x1f", logs.Warning)
	if a.ID != b.ID {
		t.Fatalf("variants split into templates %d and %d", a.ID, b.ID)
	}
	if a.Support != 2 {
		t.Errorf("Support = %d, want 2", a.Support)
	}
	// The numeric position is normalised, so it stays NumToken.
	if got := a.String(); got != "correctable error detected in directory d+" {
		t.Errorf("template = %q", got)
	}
}

func TestLearnWildcardsVariablePositions(t *testing.T) {
	o := New(0)
	o.Learn("problem communicating with service card alpha", logs.Severe)
	tmpl := o.Learn("problem communicating with service card bravo", logs.Severe)
	if got := tmpl.String(); got != "problem communicating with service card *" {
		t.Errorf("template = %q", got)
	}
}

func TestLearnSeparatesDistinctEvents(t *testing.T) {
	o := New(0)
	a := o.Learn("instruction cache parity error corrected", logs.Warning)
	b := o.Learn("ciodb exited abnormally due to signal: aborted", logs.Failure)
	if a.ID == b.ID {
		t.Error("distinct messages collapsed into one template")
	}
	if o.Len() != 2 {
		t.Errorf("Len = %d", o.Len())
	}
}

func TestLearnTracksMaxSeverity(t *testing.T) {
	o := New(0)
	o.Learn("node card vpd check failed slot 3", logs.Warning)
	tmpl := o.Learn("node card vpd check failed slot 7", logs.Severe)
	if tmpl.MaxSeverity != logs.Severe {
		t.Errorf("MaxSeverity = %v", tmpl.MaxSeverity)
	}
	tmpl = o.Learn("node card vpd check failed slot 9", logs.Info)
	if tmpl.MaxSeverity != logs.Severe {
		t.Error("MaxSeverity should not decrease")
	}
}

func TestMatchDoesNotMutate(t *testing.T) {
	o := New(0)
	o.Learn("ddr failing data registers: 11 22", logs.Severe)
	before := o.Len()
	if _, ok := o.Match("ddr failing data registers: 33 44"); !ok {
		t.Error("expected match")
	}
	if _, ok := o.Match("completely different message body here"); ok {
		t.Error("unexpected match")
	}
	if o.Len() != before {
		t.Error("Match created templates")
	}
}

func TestDifferentLengthsNeverMerge(t *testing.T) {
	o := New(0)
	a := o.Learn("general purpose registers:", logs.Info)
	b := o.Learn("general purpose registers: extra", logs.Info)
	if a.ID == b.ID {
		t.Error("different token counts merged")
	}
}

func TestTemplatesOrderedByID(t *testing.T) {
	o := New(0)
	for i := 0; i < 20; i++ {
		o.Learn(fmt.Sprintf("unique message body number %c end", 'a'+i), logs.Info)
	}
	ts := o.Templates()
	for i, tmpl := range ts {
		if tmpl.ID != i {
			t.Fatalf("template %d has id %d", i, tmpl.ID)
		}
	}
}

func TestAssignStampsEventIDs(t *testing.T) {
	o := New(0)
	recs := []logs.Record{
		{Message: "link card power module 1 is not accessible", Severity: logs.Severe},
		{Message: "link card power module 2 is not accessible", Severity: logs.Severe},
		{Message: "temperature over limit on link card", Severity: logs.Failure},
	}
	n := o.Assign(recs)
	if n != 2 {
		t.Fatalf("template count = %d, want 2", n)
	}
	if recs[0].EventID != recs[1].EventID {
		t.Error("same event type got different ids")
	}
	if recs[0].EventID == recs[2].EventID {
		t.Error("different event types share an id")
	}
}

func TestStableIDsAcrossReplay(t *testing.T) {
	msgs := []string{
		"ciodb has been restarted.",
		"mmcs db server has been started: ./mmcs_db_server --usedatabase bgl",
		"ciodb has been restarted.",
		"total of 14 ddr error(s) detected and corrected",
		"total of 9 ddr error(s) detected and corrected",
	}
	ids1 := replay(msgs)
	ids2 := replay(msgs)
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, ids1, ids2)
		}
	}
}

func replay(msgs []string) []int {
	o := New(0)
	out := make([]int, len(msgs))
	for i, m := range msgs {
		out[i] = o.Learn(m, logs.Info).ID
	}
	return out
}

func TestConcurrentLearn(t *testing.T) {
	o := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.Learn(fmt.Sprintf("worker message kind %d payload %d", i%10, i), logs.Info)
			}
		}(w)
	}
	wg.Wait()
	if o.Len() == 0 || o.Len() > 20 {
		t.Errorf("unexpected template count %d", o.Len())
	}
}

func TestEmptyMessage(t *testing.T) {
	o := New(0)
	tmpl := o.Learn("", logs.Info)
	if tmpl == nil {
		t.Fatal("empty message should still yield a template")
	}
	tmpl2 := o.Learn("", logs.Info)
	if tmpl.ID != tmpl2.ID {
		t.Error("empty messages should share a template")
	}
}
