package helo

import (
	"testing"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// FuzzLearn ensures template mining never panics and keeps its core
// invariants for arbitrary message bytes: the returned template matches
// the message's own token shape, and ids stay dense.
func FuzzLearn(f *testing.F) {
	f.Add("instruction cache parity error corrected")
	f.Add("ddr failing data registers: 12 34")
	f.Add("")
	f.Add("    ")
	f.Add("x")
	f.Add("0x1f 0x2e 0x3d")
	f.Add("lr:1 cr:2 xer:3 ctr:4")
	f.Fuzz(func(t *testing.T, msg string) {
		o := New(0)
		tm := o.Learn(msg, logs.Warning)
		if tm == nil {
			t.Fatal("nil template")
		}
		if tm.ID != 0 {
			t.Fatalf("first template id = %d", tm.ID)
		}
		if len(tm.Tokens) != len(Tokenize(msg)) {
			t.Fatal("template token count differs from message")
		}
		// Learning the same message again must not create a new template.
		tm2 := o.Learn(msg, logs.Warning)
		if tm2.ID != tm.ID {
			t.Fatalf("same message split into ids %d and %d", tm.ID, tm2.ID)
		}
	})
}
