// Package helo reimplements the Hierarchical Event Log Organizer the paper
// uses for preprocessing: it mines message templates (regular-expression
// like patterns with wildcard positions) from raw log messages and assigns
// every message a stable event-type id. The same code runs offline (mining
// on a training window) and online (matching the live stream, creating
// templates for genuinely new message shapes so the template set follows
// software upgrades).
package helo

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// Wildcard is the token standing for a variable position in a template.
const Wildcard = "*"

// NumToken replaces purely numeric tokens during normalisation, matching
// the "d+" convention in the paper's template listings.
const NumToken = "d+"

// Template is one mined event type: a token pattern where constant
// positions carry the literal token and variable positions carry Wildcard.
type Template struct {
	ID          int
	Tokens      []string
	Support     int           // messages matched so far
	MaxSeverity logs.Severity // highest severity seen on matching records
}

// String renders the template pattern.
func (t *Template) String() string { return strings.Join(t.Tokens, " ") }

// Matches reports whether the token sequence fits the template (same
// length, all constant positions equal).
func (t *Template) Matches(tokens []string) bool {
	if len(tokens) != len(t.Tokens) {
		return false
	}
	for i, tok := range t.Tokens {
		if tok != Wildcard && tok != tokens[i] {
			return false
		}
	}
	return true
}

// similarity scores how well a token sequence fits the template: exact
// constant matches count fully, wildcard positions count half — they are
// compatible but confirm nothing, so a template cannot degenerate into an
// all-wildcard pattern that absorbs every same-length message.
func (t *Template) similarity(tokens []string) float64 {
	if len(tokens) != len(t.Tokens) {
		return 0
	}
	if len(tokens) == 0 {
		return 1 // two empty messages are the same event type
	}
	same := 0.0
	for i, tok := range t.Tokens {
		switch {
		// Exact equality first: a literal "*" in a message must match a
		// template position holding "*" fully, not as a half-credit
		// wildcard.
		case tok == tokens[i]:
			same++
		case tok == Wildcard:
			same += 0.5
		}
	}
	return same / float64(len(tokens))
}

// absorb merges a token sequence into the template, wildcarding every
// position that disagrees.
func (t *Template) absorb(tokens []string) {
	for i, tok := range t.Tokens {
		if tok != Wildcard && tok != tokens[i] {
			t.Tokens[i] = Wildcard
		}
	}
}

// Tokenize normalises a raw message into tokens: lower-cased, whitespace
// split, with purely numeric and hex-literal tokens replaced by NumToken so
// that ids, counters and addresses do not explode the template space.
// Key:value tokens with numeric values ("lr:0x01a") keep their key and
// normalise the value ("lr:d+"), following HELO's handling of register
// dumps and structured fields.
func Tokenize(msg string) []string {
	fields := strings.Fields(strings.ToLower(msg))
	for i, f := range fields {
		if isNumeric(f) {
			fields[i] = NumToken
			continue
		}
		if k := strings.IndexByte(f, ':'); k > 0 && k < len(f)-1 && isNumeric(f[k+1:]) {
			fields[i] = f[:k+1] + NumToken
		}
	}
	return fields
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	body := s
	if strings.HasPrefix(body, "0x") && len(body) > 2 {
		for _, c := range body[2:] {
			if !isHexDigit(byte(c)) && !strings.ContainsRune(".,:-", c) {
				return false
			}
		}
		return true
	}
	digits := 0
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c == '.' || c == ',' || c == ':' || c == '-' || c == '+':
			// separators inside numbers and ranges
		default:
			return false
		}
	}
	return digits > 0
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
}

// Organizer mines and matches templates. It is safe for concurrent use.
type Organizer struct {
	mu        sync.RWMutex
	threshold float64
	groups    map[int][]*Template // indexed by token count
	all       []*Template
}

// DefaultThreshold is the similarity required to merge a message into an
// existing template instead of opening a new one.
const DefaultThreshold = 0.6

// New returns an empty Organizer. A non-positive threshold selects
// DefaultThreshold.
func New(threshold float64) *Organizer {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Organizer{threshold: threshold, groups: make(map[int][]*Template)}
}

// Restore rebuilds an Organizer from previously mined templates (loaded
// from a serialised model). Template ids must be dense and start at 0;
// Restore panics otherwise, since matching relies on id = slice index.
func Restore(threshold float64, templates []*Template) *Organizer {
	o := New(threshold)
	o.all = make([]*Template, len(templates))
	for _, t := range templates {
		if t.ID < 0 || t.ID >= len(templates) || o.all[t.ID] != nil {
			panic(fmt.Sprintf("helo: template ids not dense (id %d of %d)", t.ID, len(templates)))
		}
		o.all[t.ID] = t
		o.groups[len(t.Tokens)] = append(o.groups[len(t.Tokens)], t)
	}
	return o
}

// Threshold returns the merge-similarity threshold.
func (o *Organizer) Threshold() float64 { return o.threshold }

// Learn matches msg against the template set, merging it into the most
// similar template above the threshold or creating a new one, and returns
// the template. Severity tracks the worst level seen for the event type.
func (o *Organizer) Learn(msg string, sev logs.Severity) *Template {
	tokens := Tokenize(msg)
	o.mu.Lock()
	defer o.mu.Unlock()
	if best := o.bestLocked(tokens); best != nil {
		best.absorb(tokens)
		best.Support++
		if sev > best.MaxSeverity {
			best.MaxSeverity = sev
		}
		return best
	}
	t := &Template{
		ID:          len(o.all),
		Tokens:      append([]string(nil), tokens...),
		Support:     1,
		MaxSeverity: sev,
	}
	o.all = append(o.all, t)
	o.groups[len(tokens)] = append(o.groups[len(tokens)], t)
	return t
}

// bestLocked returns the most similar template above the threshold, or nil.
func (o *Organizer) bestLocked(tokens []string) *Template {
	var best *Template
	bestSim := o.threshold
	for _, t := range o.groups[len(tokens)] {
		if sim := t.similarity(tokens); sim >= bestSim {
			// Strict improvement keeps the earliest template on ties, so
			// ids are stable across replays.
			if best == nil || sim > bestSim {
				best, bestSim = t, sim
			}
		}
	}
	return best
}

// Match returns the template msg belongs to without mutating the set.
func (o *Organizer) Match(msg string) (*Template, bool) {
	tokens := Tokenize(msg)
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, t := range o.groups[len(tokens)] {
		if t.Matches(tokens) {
			return t, true
		}
	}
	if best := o.bestLocked(tokens); best != nil {
		return best, true
	}
	return nil, false
}

// Templates returns the mined templates ordered by id. The returned slice
// is a snapshot; the Template pointers are shared and their Support may
// keep growing.
func (o *Organizer) Templates() []*Template {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := append([]*Template(nil), o.all...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of templates mined so far.
func (o *Organizer) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.all)
}

// Assign runs Learn over every record and stamps EventID in place,
// returning the organizer's final template count.
func (o *Organizer) Assign(recs []logs.Record) int {
	for i := range recs {
		t := o.Learn(recs[i].Message, recs[i].Severity)
		recs[i].EventID = t.ID
	}
	return o.Len()
}
