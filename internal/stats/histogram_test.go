package stats

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 60, 600)
	if h.Buckets() != 4 {
		t.Fatalf("Buckets = %d, want 4", h.Buckets())
	}
	h.Add(5)    // bucket 0
	h.Add(10)   // exactly on an edge -> bucket 1
	h.Add(59.9) // bucket 1
	h.Add(60)   // bucket 2
	h.Add(700)  // bucket 3
	h.Add(-3)   // bucket 0
	wants := []int64{2, 2, 1, 1}
	for i, w := range wants {
		if got := h.Count(i); got != w {
			t.Errorf("Count(%d) = %d, want %d", i, got, w)
		}
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if got := h.Fraction(1); !almostEq(got, 2.0/6.0, 1e-12) {
		t.Errorf("Fraction(1) = %v", got)
	}
	if got := h.FractionAtOrAbove(2); !almostEq(got, 2.0/6.0, 1e-12) {
		t.Errorf("FractionAtOrAbove(2) = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1)
	if h.Fraction(0) != 0 || h.FractionAtOrAbove(0) != 0 {
		t.Error("empty histogram fractions should be 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no edges":       func() { NewHistogram() },
		"unsorted edges": func() { NewHistogram(5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(10)
	h.Add(1)
	s := h.String()
	if !strings.Contains(s, "(-inf, 10)") || !strings.Contains(s, "[10, +inf)") {
		t.Errorf("String missing bucket labels:\n%s", s)
	}
}

func TestDelayHistogramPaperBuckets(t *testing.T) {
	d := NewDelayHistogram()
	d.Add(3 * time.Second)
	d.Add(30 * time.Second)
	d.Add(45 * time.Second)
	d.Add(5 * time.Minute)
	d.Add(time.Hour)
	if d.Total() != 5 {
		t.Fatalf("Total = %d", d.Total())
	}
	if !almostEq(d.Under10s(), 0.2, 1e-12) {
		t.Errorf("Under10s = %v", d.Under10s())
	}
	if !almostEq(d.TenToMinute(), 0.4, 1e-12) {
		t.Errorf("TenToMinute = %v", d.TenToMinute())
	}
	if !almostEq(d.MinuteToTen(), 0.2, 1e-12) {
		t.Errorf("MinuteToTen = %v", d.MinuteToTen())
	}
	if !almostEq(d.OverTenMin(), 0.2, 1e-12) {
		t.Errorf("OverTenMin = %v", d.OverTenMin())
	}
	if s := d.String(); !strings.Contains(s, "n=5") {
		t.Errorf("String = %q", s)
	}
}
