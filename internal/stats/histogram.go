package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Histogram counts observations into fixed numeric bins. Edges must be
// strictly increasing; values below the first edge land in an implicit
// underflow bin and values at or above the last edge in an overflow bin.
type Histogram struct {
	edges  []float64
	counts []int64 // len(edges)+1 buckets
	total  int64
}

// NewHistogram builds a histogram over the given edges. It panics if fewer
// than one edge is given or the edges are not strictly increasing.
func NewHistogram(edges ...float64) *Histogram {
	if len(edges) == 0 {
		panic("stats: histogram needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly increasing")
		}
	}
	return &Histogram{
		edges:  append([]float64(nil), edges...),
		counts: make([]int64, len(edges)+1),
	}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := sort.SearchFloat64s(h.edges, v)
	// SearchFloat64s returns the first edge >= v; an exact hit on edge i
	// belongs to bucket i+1 ("at or above the edge").
	if i < len(h.edges) && h.edges[i] == v {
		i++
	}
	h.counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the count in bucket i (0 = underflow, len(edges) =
// overflow).
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Buckets returns the number of buckets including under/overflow.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Fraction returns bucket i's share of all observations (0 when empty).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// FractionAtOrAbove returns the share of observations in buckets >= i.
func (h *Histogram) FractionAtOrAbove(i int) float64 {
	if h.total == 0 {
		return 0
	}
	var c int64
	for j := i; j < len(h.counts); j++ {
		c += h.counts[j]
	}
	return float64(c) / float64(h.total)
}

// String renders the histogram one bucket per line with percentage shares.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.counts {
		var label string
		switch {
		case i == 0:
			label = fmt.Sprintf("(-inf, %g)", h.edges[0])
		case i == len(h.edges):
			label = fmt.Sprintf("[%g, +inf)", h.edges[len(h.edges)-1])
		default:
			label = fmt.Sprintf("[%g, %g)", h.edges[i-1], h.edges[i])
		}
		fmt.Fprintf(&b, "%-20s %8d  %5.1f%%\n", label, c, 100*h.Fraction(i))
	}
	return b.String()
}

// DelayHistogram is the specific bucketing the paper uses for delay
// distributions: <10 s, 10 s–1 min, 1–10 min, >10 min.
type DelayHistogram struct{ h *Histogram }

// NewDelayHistogram returns an empty paper-style delay histogram.
func NewDelayHistogram() *DelayHistogram {
	return &DelayHistogram{h: NewHistogram(10, 60, 600)}
}

// Add records one delay.
func (d *DelayHistogram) Add(delay time.Duration) { d.h.Add(delay.Seconds()) }

// Total returns the number of delays recorded.
func (d *DelayHistogram) Total() int64 { return d.h.Total() }

// Under10s returns the share of delays below ten seconds.
func (d *DelayHistogram) Under10s() float64 { return d.h.Fraction(0) }

// TenToMinute returns the share of delays in [10 s, 1 min).
func (d *DelayHistogram) TenToMinute() float64 { return d.h.Fraction(1) }

// MinuteToTen returns the share of delays in [1 min, 10 min).
func (d *DelayHistogram) MinuteToTen() float64 { return d.h.Fraction(2) }

// OverTenMin returns the share of delays of at least ten minutes.
func (d *DelayHistogram) OverTenMin() float64 { return d.h.Fraction(3) }

// String renders the four paper buckets.
func (d *DelayHistogram) String() string {
	return fmt.Sprintf("<10s %.1f%% | 10s-1min %.1f%% | 1-10min %.1f%% | >10min %.1f%% (n=%d)",
		100*d.Under10s(), 100*d.TenToMinute(), 100*d.MinuteToTen(), 100*d.OverTenMin(), d.Total())
}
