package stats

import (
	"math"
	"sort"
)

// MannWhitneyResult holds the outcome of a two-sided Mann-Whitney
// (Wilcoxon rank-sum) test.
type MannWhitneyResult struct {
	U float64 // U statistic for the first sample
	Z float64 // normal approximation z-score (tie-corrected); 0 when exact
	P float64 // two-sided p-value
	// Exact reports whether P came from the exact small-sample null
	// distribution rather than the normal approximation.
	Exact bool
}

// exactLimit is the largest per-sample size for which the exact null
// distribution is enumerated (only applicable to tie-free data).
const exactLimit = 10

// MannWhitney performs a two-sided Mann-Whitney U test of whether samples
// xs and ys come from the same distribution, using the normal approximation
// with tie correction and continuity correction. The paper uses this test
// (its reference [22]) to decide when a mined correlation is statistically
// significant. With an empty sample it reports P = 1 (no evidence).
func MannWhitney(xs, ys []float64) MannWhitneyResult {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{P: 1}
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, x := range xs {
		all = append(all, obs{x, true})
	}
	for _, y := range ys {
		all = append(all, obs{y, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, tracking tie groups for the variance correction.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.first {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2

	// Small tie-free samples get the exact null distribution — the
	// normal approximation is unreliable below ~10 observations per
	// sample, exactly where mined-chain supports live.
	if tieTerm == 0 && n1 <= exactLimit && n2 <= exactLimit {
		return MannWhitneyResult{U: u1, P: exactP(n1, n2, u1), Exact: true}
	}
	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	sigma2 := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations tied: no evidence of difference.
		return MannWhitneyResult{U: u1, P: 1}
	}
	sigma := math.Sqrt(sigma2)
	// Continuity correction toward the mean.
	diff := u1 - mu
	var z float64
	switch {
	case diff > 0.5:
		z = (diff - 0.5) / sigma
	case diff < -0.5:
		z = (diff + 0.5) / sigma
	default:
		z = 0
	}
	p := 2 * normSurvival(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u1, Z: z, P: p}
}

// normSurvival returns P(Z > z) for a standard normal variable.
func normSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// exactP returns the two-sided exact p-value for U = u with sample sizes
// n1, n2 and no ties, from the enumerated null distribution. counts[u]
// is the number of arrangements with statistic u, built by the standard
// recurrence f(n1, n2, u) = f(n1-1, n2, u-n2) + f(n1, n2-1, u).
func exactP(n1, n2 int, u float64) float64 {
	maxU := n1 * n2
	// f[i][j][k] = arrangements of i firsts and j seconds with U = k.
	// Rolled over i to keep memory flat.
	counts := make([][]float64, n2+1)
	for j := range counts {
		counts[j] = make([]float64, maxU+1)
		counts[j][0] = 1 // zero firsts: only U = 0
	}
	for i := 1; i <= n1; i++ {
		next := make([][]float64, n2+1)
		for j := 0; j <= n2; j++ {
			next[j] = make([]float64, maxU+1)
			for k := 0; k <= i*j; k++ {
				// Last element is a first (contributes j to U)...
				if k-j >= 0 {
					next[j][k] += counts[j][k-j]
				}
				// ...or a second.
				if j > 0 {
					next[j][k] += next[j-1][k]
				}
			}
		}
		counts = next
	}
	dist := counts[n2]
	total := 0.0
	for _, c := range dist {
		total += c
	}
	ui := int(u + 0.5)
	if ui > maxU {
		ui = maxU
	}
	lower, upper := 0.0, 0.0
	for k := 0; k <= ui; k++ {
		lower += dist[k]
	}
	for k := ui; k <= maxU; k++ {
		upper += dist[k]
	}
	p := 2 * math.Min(lower, upper) / total
	if p > 1 {
		p = 1
	}
	return p
}

// Significant reports whether the test rejects equality at level alpha.
func (r MannWhitneyResult) Significant(alpha float64) bool { return r.P < alpha }
