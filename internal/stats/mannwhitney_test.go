package stats

import (
	"math/rand"
	"testing"
)

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	r := MannWhitney(xs, xs)
	if r.P < 0.9 {
		t.Errorf("identical samples: P = %v, want ~1", r.P)
	}
	if r.Significant(0.05) {
		t.Error("identical samples should not be significant")
	}
}

func TestMannWhitneySeparatedSamples(t *testing.T) {
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) + 100
	}
	r := MannWhitney(xs, ys)
	if !r.Significant(0.001) {
		t.Errorf("fully separated samples: P = %v, want << 0.001", r.P)
	}
	if r.U != 0 {
		t.Errorf("U = %v, want 0 for fully dominated sample", r.U)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	r := MannWhitney(nil, []float64{1, 2})
	if r.P != 1 {
		t.Errorf("empty sample: P = %v, want 1", r.P)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	xs := []float64{5, 5, 5}
	ys := []float64{5, 5, 5, 5}
	r := MannWhitney(xs, ys)
	if r.P != 1 {
		t.Errorf("all tied: P = %v, want 1", r.P)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 10+rng.Intn(20))
		ys := make([]float64, 10+rng.Intn(20))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for i := range ys {
			ys[i] = rng.NormFloat64() + 0.5
		}
		a := MannWhitney(xs, ys)
		b := MannWhitney(ys, xs)
		if !almostEq(a.P, b.P, 1e-9) {
			t.Fatalf("P not symmetric: %v vs %v", a.P, b.P)
		}
		// U1 + U2 = n1*n2.
		if !almostEq(a.U+b.U, float64(len(xs)*len(ys)), 1e-9) {
			t.Fatalf("U1+U2 = %v, want %v", a.U+b.U, len(xs)*len(ys))
		}
	}
}

func TestMannWhitneyExactKnownValue(t *testing.T) {
	// Fully separated samples of size 4 vs 4, no ties: U = 0 and the
	// exact two-sided p is 2 * 1/C(8,4) = 2/70.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r := MannWhitney(xs, ys)
	if !r.Exact {
		t.Fatal("small tie-free samples should use the exact test")
	}
	if r.U != 0 {
		t.Errorf("U = %v, want 0", r.U)
	}
	want := 2.0 / 70.0
	if !almostEq(r.P, want, 1e-12) {
		t.Errorf("P = %v, want %v", r.P, want)
	}
}

func TestMannWhitneyExactSymmetricNull(t *testing.T) {
	// Interleaved samples: U near its mean, p near 1.
	xs := []float64{1, 3, 5, 7}
	ys := []float64{2, 4, 6, 8}
	r := MannWhitney(xs, ys)
	if !r.Exact {
		t.Fatal("expected exact path")
	}
	if r.P < 0.5 {
		t.Errorf("interleaved samples P = %v, want large", r.P)
	}
}

func TestMannWhitneyExactMatchesApproxAtBoundary(t *testing.T) {
	// At n = 10 vs 10 the exact and normal-approximation p-values should
	// agree within a few percent for a moderate shift.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		xs := make([]float64, 10)
		ys := make([]float64, 11) // 11 forces the approximation path
		exact := make([]float64, 10)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			exact[i] = xs[i]
		}
		for i := range ys {
			ys[i] = rng.NormFloat64() + 1
		}
		re := MannWhitney(xs, ys[:10])
		ra := MannWhitney(xs, ys)
		if !re.Exact || ra.Exact {
			t.Fatal("path selection wrong")
		}
		// Not the same data, so only sanity-check both are probabilities.
		if re.P < 0 || re.P > 1 || ra.P < 0 || ra.P > 1 {
			t.Fatalf("p out of range: %v, %v", re.P, ra.P)
		}
	}
}

func TestMannWhitneyTiesUseApproximation(t *testing.T) {
	xs := []float64{1, 2, 2, 4}
	ys := []float64{2, 5, 6, 7}
	if r := MannWhitney(xs, ys); r.Exact {
		t.Error("tied data must use the tie-corrected approximation")
	}
}

func TestMannWhitneyExactFalsePositiveRate(t *testing.T) {
	// Under the null with n=8 vs 8 (exact path), rejections at alpha=0.05
	// must not exceed 5% materially (the exact test is conservative).
	rng := rand.New(rand.NewSource(20))
	trials, rejected := 2000, 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 8)
		ys := make([]float64, 8)
		for j := range xs {
			xs[j] = rng.NormFloat64()
			ys[j] = rng.NormFloat64()
		}
		if MannWhitney(xs, ys).Significant(0.05) {
			rejected++
		}
	}
	if rate := float64(rejected) / float64(trials); rate > 0.06 {
		t.Errorf("exact null rejection rate = %v, want <= 0.05 (conservative)", rate)
	}
}

func TestMannWhitneyFalsePositiveRate(t *testing.T) {
	// Under the null hypothesis the rejection rate at alpha=0.05 should be
	// close to 5%.
	rng := rand.New(rand.NewSource(6))
	trials, rejected := 2000, 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 25)
		ys := make([]float64, 25)
		for j := range xs {
			xs[j] = rng.NormFloat64()
			ys[j] = rng.NormFloat64()
		}
		if MannWhitney(xs, ys).Significant(0.05) {
			rejected++
		}
	}
	rate := float64(rejected) / float64(trials)
	if rate > 0.08 || rate < 0.02 {
		t.Errorf("null rejection rate = %v, want ~0.05", rate)
	}
}

func TestMannWhitneyPower(t *testing.T) {
	// A strong shift must be detected nearly always.
	rng := rand.New(rand.NewSource(8))
	trials, rejected := 200, 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for j := range xs {
			xs[j] = rng.NormFloat64()
			ys[j] = rng.NormFloat64() + 2
		}
		if MannWhitney(xs, ys).Significant(0.05) {
			rejected++
		}
	}
	if rate := float64(rejected) / float64(trials); rate < 0.95 {
		t.Errorf("power = %v, want > 0.95", rate)
	}
}
