// Package stats provides the statistical primitives the ELSA pipeline is
// built on: descriptive statistics and robust estimators (median, MAD),
// streaming moments, the Mann-Whitney U test used to accept correlations,
// histograms for the distribution figures, and seeded random samplers for
// the synthetic workload generator.
//
// Everything is deterministic given an explicit *rand.Rand; nothing reads
// global randomness.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when fewer than
// two points).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it (0 for empty input).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// MedianInPlace sorts xs and returns its median; it avoids the copy Median
// makes and is used in the hot outlier-detection path.
func MedianInPlace(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo]
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// MAD returns the median absolute deviation of xs about its median. It is
// the robust spread estimator used to calibrate outlier thresholds.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return MedianInPlace(dev)
}

// MADSigma converts a MAD value to a standard-deviation-equivalent scale
// assuming Gaussian data (sigma ~= 1.4826 * MAD).
func MADSigma(mad float64) float64 { return 1.4826 * mad }

// ZeroFraction returns the fraction of entries in xs equal to zero. Signal
// classification uses it to recognise "silent" event types.
func ZeroFraction(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	z := 0
	for _, x := range xs {
		if x == 0 {
			z++
		}
	}
	return float64(z) / float64(len(xs))
}

// MinMax returns the smallest and largest values in xs (0, 0 for empty
// input).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
