package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var o Online
	for i := 0; i < 20000; i++ {
		o.Add(Exponential(rng, 7.5))
	}
	if !almostEq(o.Mean(), 7.5, 0.2) {
		t.Errorf("exponential mean = %v, want ~7.5", o.Mean())
	}
	if Exponential(rng, -1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mean := range []float64{0.5, 3, 12, 50} {
		var o Online
		for i := 0; i < 20000; i++ {
			o.Add(float64(Poisson(rng, mean)))
		}
		if !almostEq(o.Mean(), mean, 0.05*mean+0.1) {
			t.Errorf("poisson(%v) mean = %v", mean, o.Mean())
		}
		if !almostEq(o.Variance(), mean, 0.15*mean+0.2) {
			t.Errorf("poisson(%v) variance = %v", mean, o.Variance())
		}
	}
	if Poisson(rng, 0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 20001)
	for i := range xs {
		xs[i] = LogNormal(rng, math.Log(30), 1.0)
	}
	// Median of a lognormal is exp(mu) = 30.
	if got := Median(xs); !almostEq(got, 30, 2.5) {
		t.Errorf("lognormal median = %v, want ~30", got)
	}
}

func TestWeibullMean(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var o Online
	// shape 1 reduces to exponential with the given scale.
	for i := 0; i < 20000; i++ {
		o.Add(Weibull(rng, 1, 4))
	}
	if !almostEq(o.Mean(), 4, 0.15) {
		t.Errorf("weibull(1,4) mean = %v, want ~4", o.Mean())
	}
	if Weibull(rng, 0, 1) != 0 || Weibull(rng, 1, 0) != 0 {
		t.Error("degenerate weibull should yield 0")
	}
}

func TestBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	hits := 0
	for i := 0; i < 10000; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	if rate := float64(hits) / 10000; !almostEq(rate, 0.3, 0.02) {
		t.Errorf("bernoulli rate = %v", rate)
	}
}

func TestClampedNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 1000; i++ {
		if v := ClampedNormal(rng, 0, 5, 0); v < 0 {
			t.Fatalf("clamped value %v below floor", v)
		}
	}
}
